(* Example 7.6: a problem whose volume complexity is exponentially
   smaller than its CONGEST round complexity.

   Two complete binary trees joined at the roots; U-leaves must learn
   the bits held by the mirrored V-leaves.  A query algorithm climbs,
   crosses and descends: O(log n) volume.  In CONGEST all n/2 bits
   squeeze through the single root edge: Theta(n/B) rounds.

   Run with: dune exec examples/congest_vs_volume.exe *)

module Graph = Vc_graph.Graph
module Probe = Vc_model.Probe
module Lcl = Vc_lcl.Lcl
module Gap = Volcomp.Gap_example

let () =
  Fmt.pr "depth   n      query-volume   CONGEST rounds (B=16 / 64 / 256)@.";
  List.iter
    (fun depth ->
      let inst = Gap.make ~depth ~seed:1L in
      let n = Graph.n inst.Gap.graph in
      let leaf = (n / 2) - 1 in
      let q = Probe.run ~world:(Gap.world inst) ~origin:leaf Gap.solve.Lcl.solve in
      let rounds b = (Gap.run_congest inst ~bandwidth:b).Vc_model.Congest.rounds in
      Fmt.pr "%5d %6d %10d %17d / %4d / %4d@." depth n q.Probe.volume (rounds 16) (rounds 64)
        (rounds 256))
    [ 4; 6; 8; 10 ];
  Fmt.pr "@.volume grows like log n; rounds grow like n/B: the Delta^Theta(D) gap of@.";
  Fmt.pr "Observation 7.5 is real (and the B*rounds product tracks the cut's n bits).@."
