type model =
  | Constant
  | Log_star
  | Log
  | Root of int
  | Linear

let equal_model a b =
  match (a, b) with
  | Constant, Constant | Log_star, Log_star | Log, Log | Linear, Linear -> true
  | Root i, Root j -> i = j
  | (Constant | Log_star | Log | Root _ | Linear), _ -> false

let pp_model ppf = function
  | Constant -> Fmt.string ppf "Theta(1)"
  | Log_star -> Fmt.string ppf "Theta(log* n)"
  | Log -> Fmt.string ppf "Theta(log n)"
  | Root k -> Fmt.pf ppf "Theta(n^(1/%d))" k
  | Linear -> Fmt.string ppf "Theta(n)"

let log2 x = log x /. log 2.0

let log_star x =
  let rec loop x acc = if x <= 2.0 then acc +. 1.0 else loop (log2 x) (acc +. 1.0) in
  if x <= 1.0 then 1.0 else loop x 0.0

let eval m n =
  let n = Float.max n 2.0 in
  match m with
  | Constant -> 1.0
  | Log_star -> log_star n
  | Log -> log2 n
  | Root k -> Float.pow n (1.0 /. float_of_int k)
  | Linear -> n

let candidates = [ Constant; Log_star; Log; Root 4; Root 3; Root 2; Linear ]

let score m points =
  if List.length points < 2 then invalid_arg "Fit.score: need at least 2 points";
  let ratios =
    List.map
      (fun (n, y) -> log (Float.max y 1.0 /. eval m (float_of_int n)))
      points
  in
  let len = float_of_int (List.length ratios) in
  let mean = List.fold_left ( +. ) 0.0 ratios /. len in
  List.fold_left (fun acc r -> acc +. ((r -. mean) ** 2.0)) 0.0 ratios /. len

let best_fit points =
  let scored = List.map (fun m -> (m, score m points)) candidates in
  (* stable, with an epsilon: near-ties between classes (e.g. a flat
     series fits Constant and Log_star equally up to rounding) resolve
     to the simpler candidate, listed first *)
  let ranked =
    List.stable_sort
      (fun (_, a) (_, b) -> if Float.abs (a -. b) < 1e-9 then 0 else compare a b)
      scored
  in
  match ranked with
  | [] -> invalid_arg "Fit.best_fit: no candidates"
  | (best, _) :: _ -> (best, ranked)
