module Graph = Vc_graph.Graph

let gather_from ctx ~from ~radius =
  let depth = Hashtbl.create 64 in
  let queue = Queue.create () in
  Hashtbl.add depth from 0;
  Queue.add from queue;
  let order = ref [ (from, 0) ] in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    let d = Hashtbl.find depth v in
    if d < radius then
      for port = 1 to Probe.degree ctx v do
        let u = Probe.query ctx ~at:v ~port in
        if not (Hashtbl.mem depth u) then begin
          Hashtbl.add depth u (d + 1);
          order := (u, d + 1) :: !order;
          Queue.add u queue
        end
      done
  done;
  List.rev !order

let gather ctx ~radius = gather_from ctx ~from:(Probe.origin ctx) ~radius

let adjacency ctx v =
  let deg = Probe.degree ctx v in
  let rec loop port acc =
    if port > deg then List.rev acc
    else
      match Probe.resolved ctx ~at:v ~port with
      | Some u -> loop (port + 1) ((port, u) :: acc)
      | None -> loop (port + 1) acc
  in
  loop 1 []
