(** Content-addressed on-disk snapshot store.

    Snapshots are keyed by (problem, size, seed, builder-version); the
    builder version is the invalidation rule — bump it when any
    instance builder's output changes, and every old file becomes an
    automatic miss (the loaded header is always re-checked against the
    requested key, so hash collisions and stale files can never serve a
    wrong instance).

    {!publish} is atomic (temp file + rename in the same directory) and
    best-effort: a store that cannot be written degrades to building,
    never to failing.  All traffic is metered under [serve.snap.*]:
    [hits], [misses], [published], [errors] counters and the [load_us]
    histogram. *)

type t

val create : dir:string -> builder_version:string -> t
(** Creates [dir] (and parents) if missing. *)

val dir : t -> string
val builder_version : t -> string

val path : t -> problem:string -> size:int -> seed:int64 -> string
(** The file a snapshot for this key lives at (whether or not it
    exists): a human-readable problem slug plus the FNV-1a hash of the
    full key. *)

val load : t -> problem:string -> size:int -> seed:int64 -> Snap.loaded option
(** [None] on any miss: absent file, corrupt file, or a header that does
    not match the key (including a different builder version). *)

val publish :
  t ->
  problem:string ->
  size:int ->
  seed:int64 ->
  n:int ->
  segments:(string * Vc_graph.Iarr.t) list ->
  bool
(** Atomically install a snapshot for the key; [false] if writing
    failed (best-effort — callers proceed with the built instance). *)

val files : t -> string list
(** Paths of every [.snap] file in the store, sorted. *)
