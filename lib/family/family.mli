(** Graph families beyond paths and trees (ROADMAP scenario diversity).

    Deterministic, seed-reproducible builders for the terrains named by
    the related work — 2-d torus grids ("LCL problems on grids"), random
    d-regular graphs (Chang, "LCL Problems Beyond Paths and Trees") and
    Margulis/shift-style expanders — all emitted straight into the
    validated CSR {!Vc_graph.Graph.t} representation, so snapshots, the
    lazy BFS world and the batched IR executor work on them unchanged. *)

module Graph = Vc_graph.Graph

(** {1 2-d torus grids} *)

val torus : w:int -> h:int -> Graph.t
(** {!Vc_graph.Builder.torus}: node [(x, y)] is index [y*w + x]; port 1
    leads east, 2 west, 3 north, 4 south (the grid normal form). *)

val torus_coords : w:int -> Graph.node -> int * int
(** [(x, y)] of a node index in the unshuffled torus numbering. *)

val torus_dims : size:int -> int * int
(** Near-square even side lengths [(w, h)] with [w*h >= max 16 size].
    Even sides keep the parity 4-colouring proper across the wrap. *)

val torus_of_size : size:int -> seed:int64 -> Graph.t
(** The {!torus_dims} torus with seed-shuffled identifiers. *)

(** {1 Random d-regular graphs} *)

val random_regular : n:int -> d:int -> seed:int64 -> Graph.t
(** Configuration model: [n*d] stubs paired by a seeded shuffle; any
    pairing containing a self-loop or parallel edge is rejected whole
    and resampled, so the result is simple and exactly [d]-regular.
    @raise Invalid_argument unless [d >= 2], [n > d] and [n*d] even. *)

val regular_of_size : d:int -> size:int -> seed:int64 -> Graph.t
(** [size] rounded up to the nearest feasible [n] (at least [d + 2],
    [n*d] even). *)

(** {1 Margulis/shift-style expanders} *)

val expander : n:int -> Graph.t
(** The shift expander on [Z_n] ([n] odd, [>= 5]): the cycle [x — x+1]
    plus the chords [x — 2x mod n], deduplicated.  Degree between 2 and
    4; deterministic (no randomness in the structure). *)

val expander_of_size : size:int -> seed:int64 -> Graph.t
(** [size] rounded up to the nearest odd [n >= 5], identifiers
    seed-shuffled. *)

(** {1 The family table} *)

type info = {
  f_name : string;  (** CLI name: ["torus"], ["d-regular"], ["expander"] *)
  f_description : string;
  f_min_size : int;
  f_max_degree : int;
  f_build : size:int -> seed:int64 -> Graph.t;
}

val all : info list
val find : string -> info option
(** By {!info.f_name}, case-insensitive. *)
