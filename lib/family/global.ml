module Probe = Vc_model.Probe
module Ball = Vc_model.Ball

type t = {
  origin : Vc_graph.Graph.node;
  members : Vc_graph.Graph.node list;
  root : Vc_graph.Graph.node;
  adj : Vc_graph.Graph.node -> (int * Vc_graph.Graph.node) list;
  id : Vc_graph.Graph.node -> int;
}

let gather ctx =
  let origin = Probe.origin ctx in
  let ball = Ball.gather ctx ~radius:(Probe.n ctx) in
  let members = List.map fst ball in
  let id v = Probe.id ctx v in
  let root =
    List.fold_left (fun best v -> if id v < id best then v else best) origin members
  in
  { origin; members; root; adj = (fun v -> Ball.adjacency ctx v); id }

let by_id c vs = List.sort (fun a b -> compare (c.id a) (c.id b)) vs
