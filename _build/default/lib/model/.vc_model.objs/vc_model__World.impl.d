lib/model/world.ml: Array Vc_graph View
