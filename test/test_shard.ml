(* Tests for the sharded serving tier: qcheck properties of the
   consistent-hash ring (total coverage, removal stability, determinism
   pinned to the FNV-1a reference vectors), decoder fuzzing (torn
   frames, garbage, truncated length prefixes — the decoder must never
   raise), and fault injection against a real supervisor: SIGSTOP a
   worker so a request is provably in flight, SIGKILL it, and assert
   the structured [worker_lost] reply, the automatic respawn, the
   session re-warm and byte-identical post-recovery answers while the
   other shard keeps serving.

   Ordering constraint: this module forks — the supervisor runs in a
   forked child and its workers are forked grandchildren
   ({!Supervisor.fork_spawn}) — so its suites must run before any suite
   that spawns a domain (Test_measure, Test_exec, Test_serve, ...);
   fork is only safe while the test process is still single-domain. *)

module Json = Vc_obs.Json
module Metrics = Vc_obs.Metrics
module Registry = Vc_check.Registry
module Protocol = Vc_serve.Protocol
module Handler = Vc_serve.Handler
module Server = Vc_serve.Server
module Shard = Vc_serve.Shard
module Supervisor = Vc_serve.Supervisor
module Ring = Vc_serve.Ring

(* --- hash ring --------------------------------------------------------------- *)

(* Cross-process determinism, pinned: the ring must compute FNV-1a 64
   (never Hashtbl.hash, which is unspecified across versions), so the
   reference test vectors are hard facts any other process — a client in
   another language, a future compiler — will reproduce. *)
let test_ring_hash_vectors () =
  let check name expect s =
    Alcotest.(check int64) name expect (Ring.hash64 s)
  in
  check "fnv1a64 offset basis" 0xcbf29ce484222325L "";
  check "fnv1a64 of 'a'" 0xaf63dc4c8601ec8cL "a";
  check "fnv1a64 of 'foobar'" 0x85944171f73967e8L "foobar"

let test_ring_basics () =
  (match Ring.create [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty ring accepted");
  (match Ring.create ~vnodes:0 [ 0 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "vnodes 0 accepted");
  let r = Ring.create [ 2; 0; 1; 1 ] in
  Alcotest.(check (list int)) "shards sorted, deduplicated" [ 0; 1; 2 ] (Ring.shards r);
  (match Ring.remove (Ring.create [ 0 ]) 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "removed the last shard");
  (* the session key folds case exactly like the registry's lookup *)
  let s = Ring.create [ 0; 1; 2; 3 ] in
  Alcotest.(check int) "session key is case-insensitive"
    (Ring.lookup_session s ~problem:"DegreeParity" ~size:16 ~seed:7L)
    (Ring.lookup_session s ~problem:"degreeparity" ~size:16 ~seed:7L)

let key_gen = QCheck.Gen.(string_size ~gen:printable (int_bound 48))

let ring_arb =
  QCheck.make
    ~print:(fun (workers, keys) ->
      Printf.sprintf "workers %d; keys [%s]" workers
        (String.concat "; " (List.map String.escaped keys)))
    QCheck.Gen.(pair (int_range 1 8) (list_size (int_range 1 40) key_gen))

let qcheck_ring_total =
  QCheck.Test.make ~count:200 ~name:"Ring: every key maps to a live shard" ring_arb
    (fun (workers, keys) ->
      let r = Ring.create (List.init workers Fun.id) in
      List.for_all (fun k -> let s = Ring.lookup r k in s >= 0 && s < workers) keys)

let qcheck_ring_deterministic =
  QCheck.Test.make ~count:200 ~name:"Ring: independently built rings agree" ring_arb
    (fun (workers, keys) ->
      (* shard-id order must not matter either *)
      let a = Ring.create (List.init workers Fun.id) in
      let b = Ring.create (List.rev (List.init workers Fun.id)) in
      List.for_all (fun k -> Ring.lookup a k = Ring.lookup b k) keys)

let qcheck_ring_stable =
  QCheck.Test.make ~count:200
    ~name:"Ring: removing one shard only remaps that shard's keys"
    (QCheck.make
       ~print:(fun ((workers, victim), keys) ->
         Printf.sprintf "workers %d victim %d; %d keys" workers victim (List.length keys))
       QCheck.Gen.(
         pair
           (int_range 2 8 >>= fun w -> map (fun v -> (w, v)) (int_bound (w - 1)))
           (list_size (int_range 1 40) key_gen)))
    (fun ((workers, victim), keys) ->
      let before = Ring.create (List.init workers Fun.id) in
      let after = Ring.remove before victim in
      List.for_all
        (fun k ->
          let s = Ring.lookup before k in
          if s = victim then Ring.lookup after k <> victim else Ring.lookup after k = s)
        keys)

(* --- decoder fuzz ------------------------------------------------------------ *)

let feed_string dec s = Protocol.feed dec (Bytes.of_string s) (String.length s)

(* Drain everything available; Error is a legal terminal outcome,
   an exception never is. *)
let drain_all dec =
  let rec go acc =
    match Protocol.next_frame dec with
    | Ok (Some b) -> go (b :: acc)
    | Ok None -> Ok (List.rev acc)
    | Error e -> Error e
  in
  go []

let body_gen = QCheck.Gen.(string_size ~gen:(char_range '\000' '\255') (int_bound 200))

let qcheck_fuzz_chunked =
  QCheck.Test.make ~count:300
    ~name:"Protocol: torn frames reassemble identically at any split"
    (QCheck.make
       ~print:(fun (bodies, cuts) ->
         Printf.sprintf "%d bodies, cuts [%s]" (List.length bodies)
           (String.concat ";" (List.map string_of_int cuts)))
       QCheck.Gen.(
         pair (list_size (int_range 1 6) body_gen) (list_size (int_bound 30) (int_range 1 50))))
    (fun (bodies, cuts) ->
      let wire = String.concat "" (List.map Protocol.frame bodies) in
      let dec = Protocol.decoder () in
      let got = ref [] in
      let off = ref 0 in
      let cuts = ref (cuts @ [ String.length wire ]) in
      while !off < String.length wire do
        let step =
          match !cuts with
          | c :: rest ->
              cuts := rest;
              min c (String.length wire - !off)
          | [] -> String.length wire - !off
        in
        feed_string dec (String.sub wire !off step);
        off := !off + step;
        match drain_all dec with
        | Ok bs -> got := !got @ bs
        | Error e -> QCheck.Test.fail_reportf "framing error on valid stream: %s" e
      done;
      !got = bodies)

let qcheck_fuzz_truncated =
  QCheck.Test.make ~count:300
    ~name:"Protocol: a truncated frame is incomplete, never an error"
    (QCheck.make
       ~print:(fun (body, cut) -> Printf.sprintf "%S cut at %d" body cut)
       QCheck.Gen.(pair body_gen (int_bound 1000)))
    (fun (body, cut) ->
      let frame = Protocol.frame body in
      (* every strict prefix — including mid-length-prefix cuts like
         "12" of "123 ..." — must leave the decoder waiting for more *)
      let cut = cut mod String.length frame in
      let dec = Protocol.decoder () in
      feed_string dec (String.sub frame 0 cut);
      match drain_all dec with
      | Ok [] -> true
      | Ok bs -> QCheck.Test.fail_reportf "prefix produced %d frame(s)" (List.length bs)
      | Error e -> QCheck.Test.fail_reportf "prefix rejected: %s" e)

let qcheck_fuzz_garbage =
  QCheck.Test.make ~count:500 ~name:"Protocol: random bytes never raise"
    (QCheck.make
       ~print:(fun chunks -> Printf.sprintf "%d chunks" (List.length chunks))
       QCheck.Gen.(list_size (int_bound 8) body_gen))
    (fun chunks ->
      let dec = Protocol.decoder () in
      (* any outcome but an exception is fine; once the stream errors the
         connection would be dropped, so stop feeding *)
      (try
         List.iter
           (fun chunk ->
             feed_string dec chunk;
             match drain_all dec with Ok _ -> () | Error _ -> raise Exit)
           chunks
       with Exit -> ());
      true)

(* --- fault injection ---------------------------------------------------------- *)

(* The supervisor loop blocks, so it runs in a forked child (workers are
   its forked grandchildren); the test drives it as a client over a
   Unix-domain socket.  The listening socket is bound before the fork,
   so the backlog accepts our connect even before the child enters its
   select loop — no retry dance. *)
let with_supervisor ?(workers = 2) ?(cache_capacity = 4) ?(queue_depth = 8) ?snap_dir f =
  let dir = Filename.temp_file "vc_shard" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let path = Filename.concat dir "s.sock" in
  let listen = Server.listen_unix ~path in
  match Unix.fork () with
  | 0 ->
      let code =
        try
          (* with a snapshot store the test reads the supervisor's own
             rewarm_snap/rewarm_build counters, so metering must be on in
             this process too, not just in the workers *)
          if snap_dir <> None then Metrics.set_enabled true;
          ignore
            (Supervisor.run ~workers ~cache_capacity ~queue_depth
               ~spawn:
                 (Supervisor.fork_spawn (fun () ->
                      Metrics.set_enabled true;
                      let store = Option.map (fun d -> Registry.store ~dir:d) snap_dir in
                      Handler.create ~cache_capacity ?store ()))
               ~listen ()
              : int);
          0
        with _ -> 1
      in
      Unix._exit code
  | pid ->
      Unix.close listen;
      let finally () =
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        (try ignore (Unix.waitpid [] pid : int * Unix.process_status)
         with Unix.Unix_error _ -> ());
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        try Unix.rmdir dir with Unix.Unix_error _ -> ()
      in
      Fun.protect ~finally (fun () ->
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_UNIX path);
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () -> f fd))

let send_raw fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

let send_request fd req = send_raw fd (Protocol.frame (Json.to_string (Protocol.request_to_json req)))

(* Raw frame bodies, not parsed replies: the whole point of the sharded
   tier is byte-identity, so the assertions compare wire bytes. *)
let read_bodies fd count =
  let dec = Protocol.decoder () in
  let buf = Bytes.create 4096 in
  let got = ref [] in
  while List.length !got < count do
    match Protocol.next_frame dec with
    | Ok (Some body) -> got := body :: !got
    | Error msg -> Alcotest.failf "reply framing: %s" msg
    | Ok None -> (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> Alcotest.fail "supervisor closed the connection"
        | n -> Protocol.feed dec buf n)
  done;
  List.rev !got

let read_body fd = match read_bodies fd 1 with [ b ] -> b | _ -> assert false

let parse_reply body =
  match Result.bind (Json.parse body) Protocol.reply_of_json with
  | Ok r -> r
  | Error msg -> Alcotest.failf "unparseable reply %s: %s" body msg

(* One stats row per shard: (shard, pid, alive, respawns, warm, worker stats). *)
let shard_rows body =
  match (parse_reply body).Protocol.body with
  | Error (c, m) -> Alcotest.failf "stats errored %s: %s" (Protocol.code_to_string c) m
  | Ok payload -> (
      match Json.member payload "shards" with
      | Some (Json.List rows) ->
          List.map
            (fun row ->
              let int k = Option.bind (Json.member row k) Json.to_int in
              let get k = match int k with Some v -> v | None -> Alcotest.failf "stats row lacks %s" k in
              let alive =
                match Option.bind (Json.member row "alive") Json.to_bool with
                | Some b -> b
                | None -> Alcotest.fail "stats row lacks alive"
              in
              (get "shard", get "pid", alive, get "respawns", get "warm", Json.member row "stats"))
            rows
      | _ -> Alcotest.fail "stats payload lacks shards rows")

let row rows shard =
  match List.find_opt (fun (s, _, _, _, _, _) -> s = shard) rows with
  | Some r -> r
  | None -> Alcotest.failf "no stats row for shard %d" shard

(* A named counter out of a stats payload's metrics block (0 if absent):
   used for the workers' embedded stats and the supervisor's own. *)
let counter_of payload name =
  Option.value ~default:0
    (Option.bind
       (Option.bind
          (Option.bind (Json.member payload "metrics") (fun m -> Json.member m "counters"))
          (fun c -> Json.member c name))
       Json.to_int)

(* The worker's own serve.requests.warm counter, from its embedded stats
   payload — proof the respawned child actually replayed the ledger. *)
let warm_requests_of worker_stats =
  match worker_stats with
  | Some stats -> counter_of stats "serve.requests.warm"
  | None -> 0

let stats_payload body =
  match (parse_reply body).Protocol.body with
  | Ok payload -> payload
  | Error (c, m) -> Alcotest.failf "stats errored %s: %s" (Protocol.code_to_string c) m

let problem = "DegreeParity"
let size = 16

(* The test computes placement with the same ring the supervisor builds,
   so it can aim requests at a chosen shard by searching seeds. *)
let seed_for ring shard =
  let rec go seed =
    if Ring.lookup_session ring ~problem ~size ~seed = shard then seed else go (Int64.add seed 1L)
  in
  go 1L

let expect_ok ~id q =
  let twin = Handler.create () in
  match Handler.handle twin q with
  | Ok payload -> Json.to_string (Protocol.ok_reply ~id payload)
  | Error (_, msg) -> Alcotest.failf "twin handler failed: %s" msg

let test_worker_kill_recovery () =
  with_supervisor ~workers:2 (fun fd ->
      let ring = Ring.create [ 0; 1 ] in
      let seed_a = seed_for ring 0 and seed_b = seed_for ring 1 in
      let q_a = Protocol.Probe { problem; size; seed = seed_a; origin = 0 } in
      let q_b = Protocol.Probe { problem; size; seed = seed_b; origin = 0 } in
      let ask id query =
        send_request fd { Protocol.id; deadline_ms = None; query };
        read_body fd
      in
      (* warm one session per shard; replies are byte-identical to a
         single-process server's *)
      Alcotest.(check string) "shard 0 answer" (expect_ok ~id:1 q_a) (ask 1 q_a);
      Alcotest.(check string) "shard 1 answer" (expect_ok ~id:2 q_b) (ask 2 q_b);
      let rows = shard_rows (ask 3 Protocol.Stats) in
      Alcotest.(check int) "two shards" 2 (List.length rows);
      let pid_a = match row rows 0 with _, pid, true, 0, 1, _ -> pid | _ ->
        Alcotest.fail "shard 0 not (alive, 0 respawns, 1 warm)"
      in
      (match row rows 1 with _, _, true, 0, 1, _ -> () | _ ->
        Alcotest.fail "shard 1 not (alive, 0 respawns, 1 warm)");
      (* stop the worker so the next request is provably in flight, then
         kill it: the supervisor must fail the in-flight request with
         worker_lost — deterministically, every run *)
      Unix.kill pid_a Sys.sigstop;
      send_request fd { Protocol.id = 4; deadline_ms = None; query = q_a };
      send_request fd { Protocol.id = 5; deadline_ms = None; query = q_b };
      (* the other shard answers while shard 0 is wedged *)
      Alcotest.(check string) "shard 1 undisturbed" (expect_ok ~id:5 q_b) (read_body fd);
      Unix.kill pid_a Sys.sigkill;
      (match (parse_reply (read_body fd)).Protocol.body with
      | Error (Protocol.Worker_lost, _) -> ()
      | Error (c, m) ->
          Alcotest.failf "in-flight request: expected worker_lost, got %s: %s"
            (Protocol.code_to_string c) m
      | Ok _ -> Alcotest.fail "in-flight request answered by a dead worker");
      (* the respawned worker serves the same session, same bytes *)
      Alcotest.(check string) "post-recovery answer" (expect_ok ~id:6 q_a) (ask 6 q_a);
      let rows = shard_rows (ask 7 Protocol.Stats) in
      (match row rows 0 with
      | _, pid, true, 1, 1, stats ->
          if pid = pid_a then Alcotest.fail "shard 0 pid unchanged after respawn";
          if warm_requests_of stats < 1 then
            Alcotest.fail "respawned worker was not re-warmed from the ledger"
      | _ -> Alcotest.fail "shard 0 not (alive, 1 respawn, 1 warm) after recovery");
      (match row rows 1 with
      | _, _, true, 0, 1, _ -> ()
      | _ -> Alcotest.fail "shard 1 disturbed by shard 0's death");
      match (parse_reply (ask 8 Protocol.Shutdown)).Protocol.body with
      | Ok _ -> ()
      | Error (c, m) -> Alcotest.failf "shutdown errored %s: %s" (Protocol.code_to_string c) m)

(* With a snapshot store configured, the post-kill re-warm must take the
   mmap-load path, not rebuild: the first build published the instance,
   so the respawned worker's ledger replay is a store hit.  Asserted
   from both ends — the worker's serve.snap.hits counter and the
   supervisor's rewarm_snap/rewarm_build split — plus byte-identity of
   the post-recovery answer against a snapshot-free twin. *)
let test_snap_rewarm () =
  let snap_dir = Filename.temp_file "vc_shard_snap" "" in
  Sys.remove snap_dir;
  let finally () =
    let store = Registry.store ~dir:snap_dir in
    List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) (Registry.Store.files store);
    try Unix.rmdir snap_dir with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally @@ fun () ->
  with_supervisor ~workers:2 ~snap_dir (fun fd ->
      let ring = Ring.create [ 0; 1 ] in
      let seed_a = seed_for ring 0 and seed_b = seed_for ring 1 in
      let q_a = Protocol.Probe { problem; size; seed = seed_a; origin = 0 } in
      let q_b = Protocol.Probe { problem; size; seed = seed_b; origin = 0 } in
      let ask id query =
        send_request fd { Protocol.id; deadline_ms = None; query };
        read_body fd
      in
      (* first contact builds the instance and publishes the snapshot *)
      Alcotest.(check string) "warm-up answer" (expect_ok ~id:1 q_a) (ask 1 q_a);
      let pid_a =
        match row (shard_rows (ask 2 Protocol.Stats)) 0 with
        | _, pid, true, 0, 1, _ -> pid
        | _ -> Alcotest.fail "shard 0 not (alive, 0 respawns, 1 warm)"
      in
      Alcotest.(check bool) "snapshot published" true
        (Registry.Store.files (Registry.store ~dir:snap_dir) <> []);
      (* kill mid-flight, exactly like the recovery test: shard 1's reply
         proves the supervisor forwarded the stopped shard's request
         before the kill lands *)
      Unix.kill pid_a Sys.sigstop;
      send_request fd { Protocol.id = 3; deadline_ms = None; query = q_a };
      send_request fd { Protocol.id = 30; deadline_ms = None; query = q_b };
      Alcotest.(check string) "shard 1 undisturbed" (expect_ok ~id:30 q_b) (read_body fd);
      Unix.kill pid_a Sys.sigkill;
      (match (parse_reply (read_body fd)).Protocol.body with
      | Error (Protocol.Worker_lost, _) -> ()
      | Error (c, m) ->
          Alcotest.failf "expected worker_lost, got %s: %s" (Protocol.code_to_string c) m
      | Ok _ -> Alcotest.fail "in-flight request answered by a dead worker");
      (* the respawned worker re-warmed from the store, same bytes *)
      Alcotest.(check string) "post-recovery answer" (expect_ok ~id:4 q_a) (ask 4 q_a);
      let stats = stats_payload (ask 5 Protocol.Stats) in
      (match row (shard_rows (ask 6 Protocol.Stats)) 0 with
      | _, _, true, 1, 1, worker_stats -> (
          match worker_stats with
          | Some w ->
              if counter_of w "serve.snap.hits" < 1 then
                Alcotest.fail "respawned worker re-warmed without a snapshot hit"
          | None -> Alcotest.fail "shard 0 row lacks worker stats")
      | _ -> Alcotest.fail "shard 0 not (alive, 1 respawn, 1 warm) after recovery");
      if counter_of stats "serve.shard.rewarm_snap" < 1 then
        Alcotest.fail "supervisor counted no snapshot re-warm";
      Alcotest.(check int) "no rebuild re-warm" 0 (counter_of stats "serve.shard.rewarm_build");
      ignore (ask 7 Protocol.Shutdown : string))

(* Admission control composes with supervision: a wedged worker's queue
   fills to queue_depth, later arrivals shed with overloaded (never a
   hang), and the eventual kill fails exactly the admitted ones. *)
let test_wedged_shard_sheds () =
  with_supervisor ~workers:2 ~queue_depth:2 (fun fd ->
      let ring = Ring.create [ 0; 1 ] in
      let seed_a = seed_for ring 0 in
      let q_a = Protocol.Probe { problem; size; seed = seed_a; origin = 0 } in
      let ask id query =
        send_request fd { Protocol.id; deadline_ms = None; query };
        read_body fd
      in
      Alcotest.(check string) "warm-up answer" (expect_ok ~id:1 q_a) (ask 1 q_a);
      let pid_a =
        match row (shard_rows (ask 2 Protocol.Stats)) 0 with
        | _, pid, true, _, _, _ -> pid
        | _ -> Alcotest.fail "shard 0 not alive"
      in
      Unix.kill pid_a Sys.sigstop;
      (* depth 2: ids 3,4 admitted (in flight), 5 must shed immediately *)
      List.iter (fun id -> send_request fd { Protocol.id = id; deadline_ms = None; query = q_a }) [ 3; 4; 5 ];
      (match (parse_reply (read_body fd)).Protocol.body with
      | Error (Protocol.Overloaded, _) -> ()
      | Error (c, m) -> Alcotest.failf "expected overloaded, got %s: %s" (Protocol.code_to_string c) m
      | Ok _ -> Alcotest.fail "over-depth request not shed");
      Unix.kill pid_a Sys.sigkill;
      List.iter
        (fun body ->
          match (parse_reply body).Protocol.body with
          | Error (Protocol.Worker_lost, _) -> ()
          | Error (c, m) -> Alcotest.failf "expected worker_lost, got %s: %s" (Protocol.code_to_string c) m
          | Ok _ -> Alcotest.fail "admitted request answered by a dead worker")
        (read_bodies fd 2);
      (* recovery: same session, same bytes, fresh worker *)
      Alcotest.(check string) "post-shed recovery" (expect_ok ~id:6 q_a) (ask 6 q_a);
      ignore (ask 7 Protocol.Shutdown : string))

let suites =
  [
    ( "shard:ring",
      [
        Alcotest.test_case "FNV-1a reference vectors" `Quick test_ring_hash_vectors;
        Alcotest.test_case "construction and case folding" `Quick test_ring_basics;
        QCheck_alcotest.to_alcotest qcheck_ring_total;
        QCheck_alcotest.to_alcotest qcheck_ring_deterministic;
        QCheck_alcotest.to_alcotest qcheck_ring_stable;
      ] );
    ( "shard:decoder-fuzz",
      [
        QCheck_alcotest.to_alcotest qcheck_fuzz_chunked;
        QCheck_alcotest.to_alcotest qcheck_fuzz_truncated;
        QCheck_alcotest.to_alcotest qcheck_fuzz_garbage;
      ] );
    ( "shard:fault-injection",
      [
        Alcotest.test_case "kill mid-flight: lost, respawn, re-warm" `Quick
          test_worker_kill_recovery;
        Alcotest.test_case "re-warm loads the snapshot, not a rebuild" `Quick
          test_snap_rewarm;
        Alcotest.test_case "wedged shard sheds, others serve" `Quick test_wedged_shard_sheds;
      ] );
  ]
