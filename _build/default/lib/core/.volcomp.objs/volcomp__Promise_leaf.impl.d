lib/core/promise_leaf.ml: Array Leaf_coloring List Probe_tree Vc_graph Vc_lcl Vc_model
