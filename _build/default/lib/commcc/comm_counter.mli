(** Two-party communication accounting for query embeddings
    (paper Definitions 2.7–2.8 and Theorem 2.9).

    When a graph problem instance is an embedding [E(x, y)] of a Boolean
    function, Alice (holding [x]) and Bob (holding [y]) can simulate any
    query algorithm on [E(x, y)]; the bits they must exchange to answer
    the algorithm's queries upper-bound the communication of the
    resulting protocol, hence (Theorem 2.9) the algorithm's query count
    is at least R(f) divided by the per-query cost.

    A [Comm_counter.t] records this simulation: each query is charged
    the number of input bits its answer depends on.  Experiments use it
    to certify that an observed solver run would have transmitted at
    least [k] bits — giving the measured side of the Ω(n) BalancedTree
    volume bound (Proposition 4.9). *)

type t

val create : unit -> t

val charge : t -> bits:int -> unit
(** Record a query whose answer required exchanging [bits] bits. *)

val free : t -> unit
(** Record a query answerable with no communication (its answer is
    independent of both private inputs). *)

val queries : t -> int
(** Total queries recorded (free and charged). *)

val charged_queries : t -> int

val bits : t -> int
(** Total bits exchanged. *)

val max_bits_per_query : t -> int
(** The worst single query's cost [B]; Theorem 2.9 divides by it. *)

val implied_query_lower_bound : t -> comm_lower_bound:int -> int
(** [implied_query_lower_bound t ~comm_lower_bound] is
    [comm_lower_bound / B] (with [B = max 1 (max_bits_per_query t)]):
    the minimum number of queries any algorithm must spend, given that
    computing the embedded function needs [comm_lower_bound] bits. *)
