lib/graph/builder.mli: Graph Vc_rng
