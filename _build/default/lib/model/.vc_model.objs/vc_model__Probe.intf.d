lib/model/probe.mli: Vc_graph Vc_rng View World
