(** The shared generator and shrinker kit for conformance testing.

    Every random object the checking subsystem needs — bounded-degree
    port-numbered graphs, colored binary-tree labelings (Definition 3.1),
    pseudo-tree instances, and adversarial "garbage" labelings for
    robustness fuzzing — is produced here, as a deterministic function of
    a seed.  The test suites ([test/]) and the differential oracle
    ({!Oracle}) both draw from this kit, so a failure reported anywhere
    is reproducible from its seed alone.

    The qcheck side exposes graphs as first-class {e specs} (shape, size,
    seed) rather than opaque [Graph.t] values: specs print compactly in
    counterexamples and shrink by halving the size, so a failing property
    minimizes to the smallest graph of the same family that still
    fails. *)

module Graph = Vc_graph.Graph
module TL = Vc_graph.Tree_labels
module Splitmix = Vc_rng.Splitmix

(** {1 Graph specs (qcheck)} *)

type shape =
  | Path
  | Cycle
  | Complete_tree
  | Random_tree
  | Cubic
  | Torus  (** {!Vc_family.Family.torus_of_size}: even-sided, normal-form ports *)
  | D_regular  (** {!Vc_family.Family.regular_of_size} at d = 4 *)
  | Expander  (** {!Vc_family.Family.expander_of_size} *)

val all_shapes : shape list
val pp_shape : Format.formatter -> shape -> unit

type graph_spec = {
  shape : shape;
  size : int;  (** approximate node count; clamped to the shape's minimum *)
  g_seed : int64;
}

val pp_spec : Format.formatter -> graph_spec -> unit

val build : graph_spec -> Graph.t
(** Deterministic: the same spec always builds the identical graph
    (structure, ports and identifiers). *)

val spec :
  ?shapes:shape list ->
  ?min_size:int ->
  ?max_size:int ->
  unit ->
  graph_spec QCheck.arbitrary
(** Arbitrary spec over the given shapes (default: all) with sizes in
    [[min_size, max_size]] (defaults 8 and 64).  Shrinks by repeatedly
    halving [size] towards [min_size]. *)

(** {1 Labeled instances (Definition 3.1 and pseudo-trees)} *)

val colored_tree : n:int -> seed:int64 -> Volcomp.Leaf_coloring.instance
(** A random all-consistent colored binary-tree labeling. *)

val pseudo_tree : cycle_len:int -> seed:int64 -> Volcomp.Leaf_coloring.instance
(** A pseudo-tree whose [G_T] contains one directed cycle (Observation
    3.7's cycle case). *)

(** {1 Garbage labelings (robustness fuzzing)}

    Nothing in an LCL input promises well-formed pointers; solvers and
    checkers must be total on arbitrary labels.  These generators
    produce uniformly garbage inputs — pointers possibly exceeding the
    degree, arbitrary colors and levels. *)

val garbage_ptr : Splitmix.t -> int -> TL.ptr
(** Uniform over [{bot} ∪ [1, deg + 2]] — may exceed the real degree. *)

val garbage_color : Splitmix.t -> TL.color

val garbage_graph : Splitmix.t -> Graph.t
(** A random near-cubic graph or a random binary tree, 20–50 nodes. *)

val garbage_leaf_input : Splitmix.t -> Volcomp.Leaf_coloring.node_input

val garbage_balanced_input : Splitmix.t -> Volcomp.Balanced_tree.node_input

val garbage_hybrid_input : Splitmix.t -> Volcomp.Hybrid_thc.node_input

(** {1 Random probe programs (qcheck)}

    Well-formed-by-construction {!Vc_ir.Ir.program}s for fuzzing the two
    executors against each other.  Programs are laid out as guarded
    blocks with forward-only control flow (a branch or jump targets a
    strictly later block or the terminal exit block), so they terminate
    structurally; probes and pops appear both guarded ([C_port_ok] /
    [C_queue_empty]) and unguarded, and about half the programs declare
    a finite volume or distance envelope, so the truncation paths are
    exercised as thoroughly as the happy paths. *)

type program_spec = { p_blocks : int; p_seed : int64 }

val pp_program_spec : Format.formatter -> program_spec -> unit

val build_ir_program : program_spec -> Vc_ir.Ir.program
(** Deterministic: the same spec always builds the identical program.
    Always passes {!Vc_ir.Ir.validate} (the qcheck property re-asserts
    this).  Block bodies are drawn from per-block splits of the seed and
    the exit/envelope from seed-only streams, so [p_blocks - 1] yields
    the program's literal prefix — the shrinker drops whole blocks. *)

val ir_spec : program_spec -> (int, int) Vc_ir.Ir.spec
(** {!build_ir_program} bound to the generated-program observation
    encoding: inputs are node identifiers ({!ir_input}), observation
    fields are port-sized hashes of them, outputs are ints — constants
    plus one checksum combinator folding over everything the env
    exposes, so any executor divergence flips the output. *)

val ir_input : Graph.t -> Graph.node -> int
(** The instance input generated programs run against: [Graph.id]. *)

val ir_program :
  ?min_blocks:int -> ?max_blocks:int -> unit -> program_spec QCheck.arbitrary
(** Arbitrary program spec with [min_blocks] (default 1) to [max_blocks]
    (default 8) body blocks; shrinks by dropping trailing blocks. *)
