test/test_graph.ml: Alcotest Array Int64 List QCheck QCheck_alcotest Vc_graph Vc_rng
