(* Robustness suite: the solvers are total functions of their inputs.

   LCL inputs are arbitrary labelings — nothing promises that pointers
   describe trees.  Every solver must terminate without raising on
   garbage labels (their outputs need not be valid: the checkers define
   validity, and conditions can be vacuous or unsatisfiable on garbage).
   Plus: the Proposition 5.13 distance lower-bound shape and the
   Question 7.8 randomness-consumption accounting. *)

module Graph = Vc_graph.Graph
module Probe = Vc_model.Probe
module Lcl = Vc_lcl.Lcl
module Randomness = Vc_rng.Randomness
module Splitmix = Vc_rng.Splitmix
module LC = Volcomp.Leaf_coloring
module H = Volcomp.Hierarchical_thc
module Hy = Volcomp.Hybrid_thc
module BT = Volcomp.Balanced_tree

(* garbage labelings come from the shared kit, so the oracle's fuzzer
   and this suite exercise the same input distribution *)
module Gen = Vc_check.Gen

let run_safely ~world ?randomness origins solve =
  List.for_all
    (fun v ->
      match Probe.run ~world ?randomness ~budget:(Probe.volume_budget 500) ~origin:v solve with
      | _ -> true
      | exception Probe.Illegal _ -> false)
    origins

let prop_leafcoloring_total =
  QCheck.Test.make ~name:"fuzz: LeafColoring solvers never crash on garbage labels" ~count:25
    QCheck.int64
    (fun seed ->
      let rng = Splitmix.create seed in
      let g = Gen.garbage_graph rng in
      let n = Graph.n g in
      let inputs = Array.init n (fun _ -> Gen.garbage_leaf_input rng) in
      let world = Vc_model.World.of_graph g ~input:(fun v -> inputs.(v)) in
      let rand = Randomness.create ~seed:(Splitmix.next rng) ~n () in
      let origins = [ 0; n / 2; n - 1 ] in
      run_safely ~world origins LC.solve_distance.Lcl.solve
      && run_safely ~world ~randomness:rand origins LC.solve_random_walk.Lcl.solve)

let prop_balancedtree_total =
  QCheck.Test.make ~name:"fuzz: BalancedTree solver never crashes on garbage labels" ~count:25
    QCheck.int64
    (fun seed ->
      let rng = Splitmix.create seed in
      let g = Gen.garbage_graph rng in
      let n = Graph.n g in
      let inputs = Array.init n (fun _ -> Gen.garbage_balanced_input rng) in
      let world = Vc_model.World.of_graph g ~input:(fun v -> inputs.(v)) in
      run_safely ~world [ 0; n / 2; n - 1 ] BT.solve_distance.Lcl.solve)

let prop_hthc_total =
  QCheck.Test.make ~name:"fuzz: Hierarchical-THC solvers never crash on garbage labels"
    ~count:20 QCheck.int64
    (fun seed ->
      let rng = Splitmix.create seed in
      let g = Gen.garbage_graph rng in
      let n = Graph.n g in
      let inputs = Array.init n (fun _ -> Gen.garbage_leaf_input rng) in
      let world = Vc_model.World.of_graph g ~input:(fun v -> inputs.(v)) in
      let rand = Randomness.create ~seed:(Splitmix.next rng) ~n () in
      let origins = [ 0; n - 1 ] in
      run_safely ~world origins (H.solve_deterministic ~k:2).Lcl.solve
      && run_safely ~world ~randomness:rand origins ((H.solve_waypoint ~k:2 ()).Lcl.solve))

let prop_hybrid_total =
  QCheck.Test.make ~name:"fuzz: Hybrid-THC solvers never crash on garbage labels" ~count:20
    QCheck.int64
    (fun seed ->
      let rng = Splitmix.create seed in
      let g = Gen.garbage_graph rng in
      let n = Graph.n g in
      let inputs = Array.init n (fun _ -> Gen.garbage_hybrid_input rng) in
      let world = Vc_model.World.of_graph g ~input:(fun v -> inputs.(v)) in
      let origins = [ 0; n - 1 ] in
      run_safely ~world origins (Hy.solve_distance ~k:2).Lcl.solve
      && run_safely ~world origins (Hy.solve_volume_deterministic ~k:2).Lcl.solve)

let prop_checkers_total =
  QCheck.Test.make ~name:"fuzz: checkers accept or reject but never crash" ~count:20
    QCheck.int64
    (fun seed ->
      let rng = Splitmix.create seed in
      let g = Gen.garbage_graph rng in
      let n = Graph.n g in
      let inputs = Array.init n (fun _ -> Gen.garbage_leaf_input rng) in
      let out = Array.init n (fun _ -> Gen.garbage_color rng) in
      let _ =
        Lcl.check LC.problem g ~input:(fun v -> inputs.(v)) ~output:(fun v -> out.(v))
      in
      true)

(* --- Proposition 5.13: the distance lower bound shape --------------------- *)

let test_hthc_distance_truncation_fails () =
  (* On the balanced instances every component has backbone len ~
     n^{1/k}; an algorithm confined to distance n^{1/k}/4 cannot even
     finish the component scan. *)
  let inst = H.uniform_instance ~k:2 ~len:40 ~seed:21L in
  let g = H.graph inst in
  let n = Graph.n g in
  let world = H.world inst in
  let cap = H.kth_root n 2 / 4 in
  let aborted = ref 0 and total = ref 0 in
  Graph.iter_nodes g (fun v ->
      if v mod 97 = 0 then begin
        incr total;
        let r =
          Probe.run ~world ~budget:(Probe.distance_budget cap) ~origin:v
            (H.solve_deterministic ~k:2).Lcl.solve
        in
        if r.Probe.aborted then incr aborted
      end);
  Alcotest.(check bool)
    (Printf.sprintf "%d/%d sampled runs exceeded distance %d" !aborted !total cap)
    true
    (!aborted > !total / 2)

(* --- Question 7.8: bounded randomness consumption -------------------------- *)

let test_rand_bits_bounded () =
  (* RWtoLeaf reads exactly one bit per walk step (O(log n) whp);
     the way-point solver reads 30 bits per election. *)
  let inst = LC.random_instance ~n:513 ~seed:22L in
  let n = Graph.n inst.LC.graph in
  let world = LC.world inst in
  let rand = Randomness.create ~seed:23L ~n () in
  let logn = Volcomp.Probe_tree.log2_ceil n in
  Graph.iter_nodes inst.LC.graph (fun v ->
      if v mod 16 = 0 then begin
        let r = Probe.run ~world ~randomness:rand ~origin:v LC.solve_random_walk.Lcl.solve in
        Alcotest.(check bool) "bits <= walk length bound" true (r.Probe.rand_bits <= 16 * logn)
      end);
  let hinst, hot = H.hard_instance ~k:2 ~target_n:2_000 ~seed:24L in
  let hn = Graph.n (H.graph hinst) in
  let hrand = Randomness.create ~seed:25L ~n:hn () in
  let r =
    Probe.run ~world:(H.world hinst) ~randomness:hrand ~origin:hot
      ((H.solve_waypoint ~k:2 ()).Lcl.solve)
  in
  Alcotest.(check bool) "waypoint bits <= 30 * volume" true
    (r.Probe.rand_bits <= 30 * r.Probe.volume)

let suites =
  [
    ( "robustness:fuzz",
      [
        QCheck_alcotest.to_alcotest prop_leafcoloring_total;
        QCheck_alcotest.to_alcotest prop_balancedtree_total;
        QCheck_alcotest.to_alcotest prop_hthc_total;
        QCheck_alcotest.to_alcotest prop_hybrid_total;
        QCheck_alcotest.to_alcotest prop_checkers_total;
      ] );
    ( "robustness:bounds",
      [
        Alcotest.test_case "Prop 5.13 distance truncation" `Quick test_hthc_distance_truncation_fails;
        Alcotest.test_case "Q7.8 randomness consumption" `Quick test_rand_bits_bounded;
      ] );
  ]
