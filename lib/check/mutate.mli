(** The mutation fuzzer's core: apply a seeded perturbation to a valid
    (input, output) pair and verify that the problem's checker behaves
    like an LCL checker should.

    A checker is only trustworthy if it {e rejects} invalid outputs, and
    nothing in the ordinary test suites exercises that direction
    adversarially.  Given a mutation at a site [v], two things must hold
    of [Lcl.check]:

    - if the mutated labeling is invalid, the checker rejects it;
    - every reported violation is anchored at a node within the
      problem's checkability radius of [v] — a local checker at [u] only
      inspects [N_u(radius)], so a mutation at [v] can only create
      violations at nodes within distance [radius] of [v].  (The starting
      output is globally valid, so there are no pre-existing violations
      to confuse the account.)

    Acceptance of a mutant is {e not} a failure by itself: LCLs admit
    many valid outputs and a perturbation can land on another one.  The
    oracle instead requires that, per problem, at least one seeded
    mutant is rejected — see {!Oracle}. *)

module Graph = Vc_graph.Graph

type ('i, 'o) t = {
  site : Graph.node;  (** where the perturbation was applied *)
  input : (Graph.node -> 'i) option;
      (** [Some f] when the mutation perturbs the input labeling
          ("break one tree-label constraint"); [None] leaves it as-is *)
  output : Graph.node -> 'o;  (** the perturbed output labeling *)
}

type outcome = {
  kind : string;  (** mutation kind, e.g. ["relabel-node"] *)
  site : Graph.node;  (** [-1] when the reference output could not be built *)
  rejected : bool;
  in_radius : bool;
      (** all violations lie within the checkability radius of [site];
          vacuously true when the mutant was accepted *)
  detail : string;  (** first violation (or failure reason), for logs *)
}

val pp_outcome : Format.formatter -> outcome -> unit

val check :
  problem:('i, 'o) Vc_lcl.Lcl.t ->
  graph:Graph.t ->
  input:(Graph.node -> 'i) ->
  kind:string ->
  ('i, 'o) t ->
  outcome
(** Run the checker on the mutated labeling and classify the result.
    [input] is the unmutated input, used when [t.input] is [None]. *)

val reference_failure : msg:string -> outcome
(** The outcome recorded when the reference solver failed to produce a
    valid output to mutate (a conformance failure in its own right;
    the oracle reports it). *)
