(* The probe-program IR: validator, JSON codec, and the differential
   guarantee — reference interpreter ≡ closure solver ≡ batched executor,
   outputs and full cost envelopes, on consistent and adversarial
   instances, with and without budgets. *)

module Graph = Vc_graph.Graph
module TL = Vc_graph.Tree_labels
module Probe = Vc_model.Probe
module Lcl = Vc_lcl.Lcl
module Pool = Vc_exec.Pool
module Json = Vc_obs.Json
module Ir = Vc_ir.Ir
module Exec = Vc_ir.Exec
module Library = Vc_ir.Library
module LC = Volcomp.Leaf_coloring

let pp_result ppf (r : 'o Probe.result) =
  Fmt.pf ppf "{output=%s; volume=%d; distance=%d; queries=%d; rand_bits=%d; aborted=%b}"
    (match r.Probe.output with None -> "None" | Some o -> Fmt.str "Some %d" (Hashtbl.hash o))
    r.Probe.volume r.Probe.distance r.Probe.queries r.Probe.rand_bits r.Probe.aborted

let check_result what a b =
  if a <> b then Alcotest.failf "%s: %a <> %a" what pp_result a pp_result b

(* --- shipped programs validate -------------------------------------------- *)

let test_validate_shipped () =
  List.iter
    (fun name ->
      match Library.program ~name ~n:1024 with
      | None -> Alcotest.failf "unknown program %s" name
      | Some p -> (
          match Ir.validate p with
          | Ok () -> ()
          | Error e -> Alcotest.failf "%s does not validate: %s" name e))
    (Library.names ())

let test_validator_rejects () =
  let reject what p =
    match Ir.validate p with
    | Ok () -> Alcotest.failf "validator accepted %s" what
    | Error _ -> ()
  in
  let base =
    {
      Ir.name = "bad";
      n_regs = 1;
      n_queues = 0;
      obs_arity = 0;
      n_consts = 1;
      n_fns = 0;
      declared = Probe.unlimited;
      max_steps = None;
      code = [| Ir.Out_const 0 |];
    }
  in
  reject "empty program" { base with code = [||] };
  reject "register out of range" { base with code = [| Ir.Mark 1; Ir.Out_const 0 |] };
  reject "branch target out of range"
    { base with code = [| Ir.Branch { cond = Ir.C_marked 0; if_true = 5; if_false = 0 } |] };
  reject "empty probe path"
    { base with code = [| Ir.Probe { at = 0; path = [||]; dst = 0 }; Ir.Out_const 0 |] };
  reject "fall off the end" { base with code = [| Ir.Mark 0 |] };
  reject "bad output index" { base with code = [| Ir.Out_const 3 |] };
  reject "queue out of range"
    { base with code = [| Ir.Push { queue = 0; src = 0 }; Ir.Out_const 0 |] };
  reject "field out of range"
    {
      base with
      code = [| Ir.Branch { cond = Ir.C_label_eq (0, 2, 1); if_true = 1; if_false = 1 }; Ir.Out_const 0 |];
    }

let test_json_roundtrip () =
  List.iter
    (fun name ->
      let p = Option.get (Library.program ~name ~n:4096) in
      let s = Json.to_string (Ir.program_to_json p) in
      match Json.parse s with
      | Error e -> Alcotest.failf "%s: emitted JSON does not parse: %s" name e
      | Ok j -> (
          match Ir.program_of_json j with
          | Error e -> Alcotest.failf "%s: decode failed: %s" name e
          | Ok p' -> if p <> p' then Alcotest.failf "%s: JSON roundtrip changed the program" name))
    (Library.names ())

(* --- differential: closure ≡ reference ≡ batched --------------------------- *)

let budgets =
  [
    ("unlimited", Probe.unlimited);
    ("vol5", Probe.volume_budget 5);
    ("dist2", Probe.distance_budget 2);
    ("vol3+dist1", { Probe.max_volume = Some 3; max_distance = Some 1 });
  ]

let differential (type i o) ~what (spec : (i, o) Ir.spec) ~graph ~input ~world
    (solver : (i, o) Lcl.solver) =
  let n = Graph.n graph in
  let origins = Array.init n (fun v -> v) in
  List.iter
    (fun (bname, budget) ->
      let eff = Ir.effective_budget spec.Ir.program budget in
      let batch = Exec.run_batch ~budget spec ~graph ~input ~origins in
      Array.iteri
        (fun i v ->
          let closure = Probe.run ~world ~budget:eff ~origin:v solver.Lcl.solve in
          let reference = Exec.run ~budget spec ~world ~origin:v in
          check_result (Fmt.str "%s/%s origin %d: closure vs reference" what bname v) closure
            reference;
          check_result
            (Fmt.str "%s/%s origin %d: reference vs batched" what bname v)
            reference batch.(i))
        origins)
    budgets

let test_differential_library () =
  List.iter
    (fun (name, size, seed) ->
      match Library.instance ~name ~size ~seed with
      | None -> Alcotest.failf "unknown program %s" name
      | Some (Library.Packed { spec; graph; input; world; solver; pp_output = _ }) ->
          differential ~what:(Fmt.str "%s/n=%d" name size) spec ~graph ~input ~world solver)
    [
      ("degree-parity", 33, 1L);
      ("degree-parity", 64, 2L);
      ("cycle-coloring", 3, 3L);
      ("cycle-coloring", 9, 4L);
      ("cycle-coloring", 64, 5L);
      ("probe-tree-status", 31, 6L);
      ("leaf-coloring", 15, 7L);
      ("leaf-coloring", 63, 8L);
    ]

(* The status macro and the BFS must also agree on adversarial
   pseudo-trees: G_T cycles and inconsistent nodes. *)
let test_differential_adversarial () =
  let status_solver =
    Lcl.solver ~name:"status" ~randomized:false (fun ctx ->
        Volcomp.Probe_tree.status ~pointers:LC.pointers ctx (Probe.origin ctx))
  in
  List.iter
    (fun (what, inst) ->
      let graph = inst.LC.graph and input = LC.input inst and world = LC.world inst in
      differential ~what:(what ^ "/status") Library.probe_tree_status ~graph ~input ~world
        status_solver;
      differential ~what:(what ^ "/leaf") Library.leaf_coloring ~graph ~input ~world
        LC.solve_distance)
    [
      ("cycle-instance", LC.cycle_instance ~cycle_len:5 ~seed:9L);
      ("figure4", LC.figure4_instance);
      ("hard-distance", LC.hard_distance_instance ~depth:4 ~leaf_color:TL.Blue);
    ]

(* Batched execution through a pool is bit-identical to sequential. *)
let test_batch_pool () =
  match Library.instance ~name:"leaf-coloring" ~size:127 ~seed:11L with
  | None -> Alcotest.fail "unknown program"
  | Some (Library.Packed { spec; graph; input; _ }) ->
      let n = Graph.n graph in
      let origins = Array.init n (fun v -> v) in
      let seq = Exec.run_batch spec ~graph ~input ~origins in
      Pool.with_pool ~domains:4 (fun pool ->
          let par = Exec.run_batch ~pool spec ~graph ~input ~origins in
          Array.iteri (fun i r -> check_result (Fmt.str "pool origin %d" i) seq.(i) r) par)

(* Runaway programs truncate at the step cap instead of looping. *)
let test_step_cap () =
  let p =
    {
      Ir.name = "spin";
      n_regs = 1;
      n_queues = 0;
      obs_arity = 0;
      n_consts = 1;
      n_fns = 0;
      declared = Probe.unlimited;
      max_steps = Some 100;
      code = [| Ir.Jump 0; Ir.Out_const 0 |];
    }
  in
  let spec = { Ir.program = p; obs = (fun () _ -> 0); consts = [| () |]; fns = [||] } in
  let g = Vc_graph.Builder.cycle 8 in
  let world = Vc_model.World.of_graph g ~input:(fun _ -> ()) in
  let r = Exec.run spec ~world ~origin:0 in
  if not r.Probe.aborted then Alcotest.fail "reference: spin loop did not truncate";
  let b = Exec.run_batch spec ~graph:g ~input:(fun _ -> ()) ~origins:[| 0 |] in
  check_result "spin: reference vs batched" r b.(0)

(* [Runner.measure]'s IR fast path must be invisible in the results:
   same stats record, same outputs, bit for bit, with and without a
   budget. *)
let test_measure_ir_identity () =
  let module Runner = Vc_measure.Runner in
  List.iter
    (fun (name, size) ->
      match Library.instance ~name ~size ~seed:13L with
      | None -> Alcotest.failf "unknown program %s" name
      | Some (Library.Packed { spec; graph; input; world; solver; _ }) ->
          let origins = List.init (Graph.n graph) Fun.id in
          let ir = { Runner.ir_spec = spec; ir_graph = graph; ir_input = input } in
          List.iter
            (fun budget ->
              let closure = Runner.measure ~world ~solver ?budget ~origins () in
              let batched = Runner.measure ~world ~solver ?budget ~ir ~origins () in
              if closure <> batched then
                Alcotest.failf "%s/n=%d: IR fast path changed measure results" name size)
            [ None; Some (Probe.volume_budget 5) ])
    [ ("degree-parity", 48); ("cycle-coloring", 32); ("leaf-coloring", 63) ]

(* --- qcheck: random programs from the Gen kit ------------------------------ *)

module Gen = Vc_check.Gen

let prop_generated_validate =
  QCheck.Test.make ~count:300 ~name:"generated programs validate"
    (Gen.ir_program ())
    (fun ps ->
      match Ir.validate_spec (Gen.ir_spec ps) with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_reportf "%a: %s" Gen.pp_program_spec ps e)

(* The fuzzed mirror of [test_differential_library]: random programs on
   random graphs, under every corpus budget, must agree between the
   reference interpreter and the batched executor — outputs and full
   cost vectors. *)
let prop_batched_eq_reference =
  QCheck.Test.make ~count:60 ~name:"batched executor = reference interpreter"
    (QCheck.pair (Gen.ir_program ()) (Gen.spec ~min_size:3 ~max_size:32 ()))
    (fun (ps, gs) ->
      let spec = Gen.ir_spec ps in
      let g = Gen.build gs in
      let input = Gen.ir_input g in
      let world = Vc_model.World.of_graph g ~input in
      let origins = Array.init (Graph.n g) (fun v -> v) in
      List.iter
        (fun (bname, budget) ->
          let batch = Exec.run_batch ~budget spec ~graph:g ~input ~origins in
          Array.iteri
            (fun i v ->
              let reference = Exec.run ~budget spec ~world ~origin:v in
              if reference <> batch.(i) then
                QCheck.Test.fail_reportf "%a on %a / %s origin %d: %a <> %a"
                  Gen.pp_program_spec ps Gen.pp_spec gs bname v pp_result reference pp_result
                  batch.(i))
            origins)
        budgets;
      true)

let prop_cost_within_budget =
  QCheck.Test.make ~count:60 ~name:"cost meter never exceeds the declared envelope"
    (QCheck.pair (Gen.ir_program ()) (Gen.spec ~min_size:3 ~max_size:32 ()))
    (fun (ps, gs) ->
      let spec = Gen.ir_spec ps in
      let g = Gen.build gs in
      let input = Gen.ir_input g in
      let origins = Array.init (Graph.n g) (fun v -> v) in
      let eff = Ir.effective_budget spec.Ir.program Probe.unlimited in
      let cap = function Some c -> c | None -> max_int in
      let batch = Exec.run_batch spec ~graph:g ~input ~origins in
      Array.iteri
        (fun v r ->
          if
            r.Probe.volume > cap eff.Probe.max_volume
            || r.Probe.distance > cap eff.Probe.max_distance
          then
            QCheck.Test.fail_reportf "%a on %a origin %d: %a exceeds declared %s"
              Gen.pp_program_spec ps Gen.pp_spec gs v pp_result r
              (Fmt.str "{vol=%a; dist=%a}" (Fmt.option Fmt.int) eff.Probe.max_volume
                 (Fmt.option Fmt.int) eff.Probe.max_distance))
        batch;
      true)

let suites =
  [
    ( "ir",
      [
        Alcotest.test_case "shipped programs validate" `Quick test_validate_shipped;
        Alcotest.test_case "validator rejects malformed programs" `Quick test_validator_rejects;
        Alcotest.test_case "program JSON roundtrip" `Quick test_json_roundtrip;
        Alcotest.test_case "closure = reference = batched (library)" `Quick
          test_differential_library;
        Alcotest.test_case "differential on adversarial instances" `Quick
          test_differential_adversarial;
        Alcotest.test_case "pooled batch is bit-identical" `Quick test_batch_pool;
        Alcotest.test_case "step cap truncates runaway programs" `Quick test_step_cap;
        Alcotest.test_case "Runner.measure IR fast path is bit-identical" `Quick
          test_measure_ir_identity;
        QCheck_alcotest.to_alcotest prop_generated_validate;
        QCheck_alcotest.to_alcotest prop_batched_eq_reference;
        QCheck_alcotest.to_alcotest prop_cost_within_budget;
      ] );
  ]
