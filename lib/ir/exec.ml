module Graph = Vc_graph.Graph
module Probe = Vc_model.Probe
module Metrics = Vc_obs.Metrics
module Pool = Vc_exec.Pool

let m_runs = Metrics.counter "ir.batch.runs"
let m_origins = Metrics.counter "ir.batch.origins"
let m_steps = Metrics.counter "ir.batch.steps"
let m_queries = Metrics.counter "ir.batch.queries"

(* --- reference interpreter --------------------------------------------------

   One origin, driven through the instrumented {!Probe.ctx}: every hop of
   a [Probe] instruction is a [Probe.query], so volume, distance and
   query accounting are the model executor's own.  This is the semantics
   the batched executor must reproduce bit-for-bit. *)

let solver (spec : ('i, 'o) Ir.spec) (ctx : 'i Probe.ctx) : 'o =
  let p = spec.Ir.program in
  let origin = Probe.origin ctx in
  let cap = Ir.step_cap ~n:(Probe.n ctx) p in
  let code_len = Array.length p.Ir.code in
  let regs = Array.make p.Ir.n_regs origin in
  let marked : (Graph.node, unit) Hashtbl.t = Hashtbl.create 16 in
  let queues = Array.init p.Ir.n_queues (fun _ -> Queue.create ()) in
  let qlog = ref [] in
  let qlen = ref 0 in
  let obs_at v f = spec.Ir.obs (Probe.input ctx v) f in
  let port_at v = function Ir.P_const c -> c | Ir.P_field f -> obs_at v f in
  let eval_cond = function
    | Ir.C_deg_le (r, k) -> Probe.degree ctx regs.(r) <= k
    | Ir.C_deg_eq (r, k) -> Probe.degree ctx regs.(r) = k
    | Ir.C_deg_mod (r, m, k) -> Probe.degree ctx regs.(r) mod m = k
    | Ir.C_port_ok (r, sel) ->
        let v = regs.(r) in
        let pt = port_at v sel in
        pt >= 1 && pt <= Probe.degree ctx v
    | Ir.C_label_eq (r, f, k) -> obs_at regs.(r) f = k
    | Ir.C_field_eq (r, f1, f2) -> obs_at regs.(r) f1 = obs_at regs.(r) f2
    | Ir.C_node_eq (r1, r2) -> regs.(r1) = regs.(r2)
    | Ir.C_marked r -> Hashtbl.mem marked regs.(r)
    | Ir.C_queue_empty q -> Queue.is_empty queues.(q)
  in
  let env () =
    let log = Array.of_list (List.rev !qlog) in
    {
      Ir.e_origin = origin;
      e_n = Probe.n ctx;
      e_reg = (fun r -> regs.(r));
      e_queries = !qlen;
      e_query = (fun i -> log.(i));
      e_id = Probe.id ctx;
      e_degree = Probe.degree ctx;
      e_input = Probe.input ctx;
    }
  in
  let rec step pc steps =
    if steps >= cap then Probe.truncate ctx
    else if pc < 0 || pc >= code_len then Probe.truncate ctx
    else
      match p.Ir.code.(pc) with
      | Ir.Probe { at; path; dst } ->
          let cur = ref regs.(at) in
          Array.iter
            (fun sel ->
              let v = !cur in
              let pt = port_at v sel in
              if pt < 1 || pt > Probe.degree ctx v then Probe.truncate ctx;
              let u = Probe.query ctx ~at:v ~port:pt in
              qlog := u :: !qlog;
              incr qlen;
              cur := u)
            path;
          regs.(dst) <- !cur;
          step (pc + 1) (steps + 1)
      | Ir.Jump t -> step t (steps + 1)
      | Ir.Branch { cond; if_true; if_false } ->
          step (if eval_cond cond then if_true else if_false) (steps + 1)
      | Ir.Move { src; dst } ->
          regs.(dst) <- regs.(src);
          step (pc + 1) (steps + 1)
      | Ir.Mark r ->
          Hashtbl.replace marked regs.(r) ();
          step (pc + 1) (steps + 1)
      | Ir.Push { queue; src } ->
          Queue.push regs.(src) queues.(queue);
          step (pc + 1) (steps + 1)
      | Ir.Pop { queue; dst } ->
          if Queue.is_empty queues.(queue) then Probe.truncate ctx
          else begin
            regs.(dst) <- Queue.pop queues.(queue);
            step (pc + 1) (steps + 1)
          end
      | Ir.Out_const k -> spec.Ir.consts.(k)
      | Ir.Out_fn k -> spec.Ir.fns.(k) (env ())
      | Ir.Halt -> Probe.truncate ctx
  in
  step 0 0

let run ?(budget = Probe.unlimited) spec ~world ~origin =
  Probe.run ~world
    ~budget:(Ir.effective_budget spec.Ir.program budget)
    ~origin (solver spec)

(* --- batched executor -------------------------------------------------------

   The whole point of the IR: one flat loop over the CSR arrays advances
   many origins with zero per-origin allocation.  All per-origin maps of
   the reference path (visited set, marks, queues, distance oracle)
   become epoch-stamped scratch arrays reused across the batch — the
   same validity-iff-[stamp = epoch] discipline as [World]'s BFS
   scratch, with one shared epoch bumped per origin.  The incremental
   BFS is inlined (private arrays, not [World]'s pool) so distances cost
   Θ(ball) without a session handshake per origin. *)

type state = {
  count : int;  (* node-count key of the arrays below *)
  mutable regs : int array;
  v_stamp : int array;  (* visited iff [= epoch] *)
  m_stamp : int array;  (* marked iff [= epoch] *)
  d_stamp : int array;  (* BFS-discovered iff [= epoch] *)
  d_dist : int array;
  d_queue : int array;
  mutable d_head : int;
  mutable d_tail : int;
  mutable epoch : int;
  mutable q_buf : int array array;
  mutable q_head : int array;
  mutable q_tail : int array;
  mutable qlog : int array;
}

let make_state count =
  {
    count;
    regs = Array.make 8 0;
    v_stamp = Array.make count 0;
    m_stamp = Array.make count 0;
    d_stamp = Array.make count 0;
    d_dist = Array.make count 0;
    d_queue = Array.make count 0;
    d_head = 0;
    d_tail = 0;
    epoch = 0;
    q_buf = [||];
    q_head = [||];
    q_tail = [||];
    qlog = Array.make 64 0;
  }

let state_pool : (int, state) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4)

(* Check the state {e out} of the per-domain pool while in use: a
   re-entrant [run_batch] on the same domain (an [obs] or output
   combinator that itself batches — pathological but cheap to defend
   against) then allocates fresh instead of trampling the epoch. *)
let with_state count f =
  let pool = Domain.DLS.get state_pool in
  let st =
    match Hashtbl.find_opt pool count with
    | Some st ->
        Hashtbl.remove pool count;
        st
    | None -> make_state count
  in
  Fun.protect ~finally:(fun () -> Hashtbl.replace pool count st) (fun () -> f st)

let grow_int_array a len = Array.append a (Array.make (max len (Array.length a)) 0)

let begin_origin st (p : Ir.program) ~needs_bfs origin =
  st.epoch <- st.epoch + 1;
  if Array.length st.regs < p.Ir.n_regs then st.regs <- Array.make p.Ir.n_regs 0;
  (* Manual loop: [Array.fill] is a runtime call, and [n_regs] is tiny. *)
  for r = 0 to p.Ir.n_regs - 1 do
    st.regs.(r) <- origin
  done;
  if Array.length st.q_head < p.Ir.n_queues then begin
    st.q_buf <-
      Array.append st.q_buf
        (Array.init (p.Ir.n_queues - Array.length st.q_buf) (fun _ -> Array.make 16 0));
    st.q_head <- Array.make p.Ir.n_queues 0;
    st.q_tail <- Array.make p.Ir.n_queues 0
  end
  else
    for q = 0 to p.Ir.n_queues - 1 do
      st.q_head.(q) <- 0;
      st.q_tail.(q) <- 0
    done;
  if needs_bfs then begin
    st.d_stamp.(origin) <- st.epoch;
    st.d_dist.(origin) <- 0;
    st.d_queue.(0) <- origin;
    st.d_head <- 0;
    st.d_tail <- 1
  end;
  st.v_stamp.(origin) <- st.epoch

(* Identical to [World.lazy_dist]: BFS discovery order yields true
   distances, an exhausted frontier certifies unreachability.  The
   neighbor scan is a port loop, not [iter_neighbors], so advancing the
   frontier allocates nothing. *)
let bfs_dist st g v =
  if st.d_stamp.(v) = st.epoch then st.d_dist.(v)
  else begin
    let off = Graph.csr_offsets g and tgt = Graph.csr_targets g in
    while st.d_head < st.d_tail && st.d_stamp.(v) <> st.epoch do
      let u = st.d_queue.(st.d_head) in
      st.d_head <- st.d_head + 1;
      let du = st.d_dist.(u) + 1 in
      let stop = Bigarray.Array1.unsafe_get off (u + 1) - 1 in
      for e = Bigarray.Array1.unsafe_get off u to stop do
        let w = Bigarray.Array1.unsafe_get tgt e in
        if st.d_stamp.(w) <> st.epoch then begin
          st.d_stamp.(w) <- st.epoch;
          st.d_dist.(w) <- du;
          st.d_queue.(st.d_tail) <- w;
          st.d_tail <- st.d_tail + 1
        end
      done
    done;
    if st.d_stamp.(v) = st.epoch then st.d_dist.(v) else max_int
  end

exception Truncated

let illegal fmt = Fmt.kstr (fun s -> raise (Probe.Illegal s)) fmt

type 'o sink = {
  k_out : 'o array;  (* valid iff [not k_aborted.(i)] *)
  k_volume : int array;
  k_distance : int array;
  k_queries : int array;
  k_aborted : bool array;
}

let sink ~none k =
  if k < 0 then invalid_arg "Exec.sink: negative length";
  {
    k_out = Array.make k none;
    k_volume = Array.make k 0;
    k_distance = Array.make k 0;
    k_queries = Array.make k 0;
    k_aborted = Array.make k false;
  }

(* Run origins [lo, hi) of the batch on one scratch state, writing each
   result into the sink's flat arrays.  Everything loop-invariant — the
   cost-meter refs, the condition evaluator, the observation accessors,
   the output-combinator environment's closures — is allocated once
   here, and the sink rows are unboxed-int stores, so the steady-state
   per-origin path allocates nothing at all (an [Out_fn] program's env
   record and whatever its combinator builds are the only exceptions).
   That floor is what the bench gate measures. *)
let exec_range spec g input claimed_n vol_cap dist_cap cap st origins snk lo hi =
  let p = spec.Ir.program in
  let code = p.Ir.code in
  let code_len = Array.length code in
  (* The query log only feeds [e_query]; a program with no output
     combinator can never read it, so skip the writes.  Likewise the BFS
     distance oracle only answers [admit]s — a program with no [Probe]
     instruction never admits, so skip seeding the frontier. *)
  let log_queries = p.Ir.n_fns > 0 in
  let needs_bfs = Array.exists (function Ir.Probe _ -> true | _ -> false) code in
  (* Cost meter: mirrors [Probe]'s ctx field for field.  [n_queries] is
     bumped before the admit that may abort, volume counts distinct
     visits only, the origin is free — so the result vector below is
     byte-identical to the reference path's. *)
  let origin = ref 0 in
  let n_queries = ref 0 in
  let visit_count = ref 1 in
  let max_dist = ref 0 in
  let qlen = ref 0 in
  let steps = ref 0 in
  let total_steps = ref 0 in
  let total_queries = ref 0 in
  (* Budget caps as plain-int sentinels, so the admit hot path branches
     on an immediate instead of matching an option. *)
  let vol_cap = match vol_cap with Some c -> c | None -> max_int in
  let dist_cap = match dist_cap with Some c -> c | None -> max_int in
  (* CSR rows hoisted to direct Bigarray handles: [Graph.degree] and
     [Graph.unsafe_neighbor] are cross-module calls that the compiler
     does not flatten here, and the probe dispatch loop pays them per
     queried port — same treatment [bfs_dist] already gets. *)
  let off = Graph.csr_offsets g and tgt = Graph.csr_targets g in
  let degree_of v =
    Bigarray.Array1.unsafe_get off (v + 1) - Bigarray.Array1.unsafe_get off v
  in
  let admit v =
    if st.v_stamp.(v) <> st.epoch then begin
      if !visit_count >= vol_cap then raise_notrace Truncated;
      (* Inline the stamped-already fast path: [bfs_dist] contains a loop
         so the compiler never inlines the call itself. *)
      let d = if st.d_stamp.(v) = st.epoch then st.d_dist.(v) else bfs_dist st g v in
      if d > dist_cap then raise_notrace Truncated;
      st.v_stamp.(v) <- st.epoch;
      incr visit_count;
      if d > !max_dist then max_dist := d
    end
  in
  (* [input] is pure by contract but may build its value afresh per call
     (e.g. a record of label-array reads), and condition chains read
     several fields of the same node back to back — a one-entry cache
     turns those into a single construction. *)
  let cache_v = ref (-1) in
  let cache_i = ref None in
  let input_of v =
    if !cache_v = v then match !cache_i with Some x -> x | None -> input v
    else begin
      let x = input v in
      cache_v := v;
      cache_i := Some x;
      x
    end
  in
  let obs_at v f =
    if st.v_stamp.(v) <> st.epoch then illegal "view of unvisited node %d" v;
    spec.Ir.obs (input_of v) f
  in
  let deg v =
    (* The stamp check guarantees [v] was admitted, so the unsafe row
       read below cannot stray. *)
    if st.v_stamp.(v) <> st.epoch then illegal "view of unvisited node %d" v;
    degree_of v
  in
  let port_at v = function Ir.P_const c -> c | Ir.P_field f -> obs_at v f in
  let eval_cond = function
    | Ir.C_deg_le (r, k) -> deg st.regs.(r) <= k
    | Ir.C_deg_eq (r, k) -> deg st.regs.(r) = k
    | Ir.C_deg_mod (r, m, k) -> deg st.regs.(r) mod m = k
    | Ir.C_port_ok (r, sel) ->
        let v = st.regs.(r) in
        let pt = port_at v sel in
        pt >= 1 && pt <= deg v
    | Ir.C_label_eq (r, f, k) -> obs_at st.regs.(r) f = k
    | Ir.C_field_eq (r, f1, f2) -> obs_at st.regs.(r) f1 = obs_at st.regs.(r) f2
    | Ir.C_node_eq (r1, r2) -> st.regs.(r1) = st.regs.(r2)
    | Ir.C_marked r -> st.m_stamp.(st.regs.(r)) = st.epoch
    | Ir.C_queue_empty q -> st.q_head.(q) >= st.q_tail.(q)
  in
  (* The env's closures read the live scratch, so they are shared across
     the whole range; only the record itself (whose [e_origin] and
     [e_queries] are plain ints) is allocated per [Out_fn] run.  As on
     the reference path, the env is only valid during the combinator
     call — the scratch it reads is recycled for the next origin. *)
  let e_reg r =
    if r < 0 || r >= p.Ir.n_regs then invalid_arg "Ir env: register out of range"
    else st.regs.(r)
  in
  let e_query i =
    if i < 0 || i >= !qlen then invalid_arg "Ir env: query index out of range"
    else st.qlog.(i)
  in
  let e_id v =
    if st.v_stamp.(v) <> st.epoch then illegal "view of unvisited node %d" v;
    Graph.id g v
  in
  let e_input v =
    if st.v_stamp.(v) <> st.epoch then illegal "view of unvisited node %d" v;
    input_of v
  in
  let env () =
    {
      Ir.e_origin = !origin;
      e_n = claimed_n;
      e_reg;
      e_queries = !qlen;
      e_query;
      e_id;
      e_degree = deg;
      e_input;
    }
  in
  let finished = ref false in
  let pc = ref 0 in
  (* Hoisted walk cursor for [Probe] paths: without flambda a [ref] bound
     inside the dispatch loop is a fresh minor-heap block per probe. *)
  let cur = ref 0 in
  for i = lo to hi - 1 do
    origin := origins.(i);
    begin_origin st p ~needs_bfs !origin;
    n_queries := 0;
    visit_count := 1;
    max_dist := 0;
    qlen := 0;
    steps := 0;
    finished := false;
    pc := 0;
    let aborted =
      match
        while not !finished do
          if !steps >= cap then raise_notrace Truncated;
          if !pc < 0 || !pc >= code_len then raise_notrace Truncated;
          (match code.(!pc) with
          | Ir.Probe { at; path; dst } ->
              cur := st.regs.(at);
              for j = 0 to Array.length path - 1 do
                let v = !cur in
                let pt =
                  match path.(j) with Ir.P_const c -> c | Ir.P_field f -> obs_at v f
                in
                if pt < 1 || pt > degree_of v then raise_notrace Truncated;
                incr n_queries;
                let u =
                  Bigarray.Array1.unsafe_get tgt
                    (Bigarray.Array1.unsafe_get off v + pt - 1)
                in
                if log_queries then begin
                  if !qlen >= Array.length st.qlog then
                    st.qlog <- grow_int_array st.qlog (!qlen + 1);
                  st.qlog.(!qlen) <- u
                end;
                incr qlen;
                admit u;
                cur := u
              done;
              st.regs.(dst) <- !cur;
              incr pc
          | Ir.Jump t -> pc := t
          | Ir.Branch { cond; if_true; if_false } ->
              pc := if eval_cond cond then if_true else if_false
          | Ir.Move { src; dst } ->
              st.regs.(dst) <- st.regs.(src);
              incr pc
          | Ir.Mark r ->
              st.m_stamp.(st.regs.(r)) <- st.epoch;
              incr pc
          | Ir.Push { queue; src } ->
              let t = st.q_tail.(queue) in
              if t >= Array.length st.q_buf.(queue) then
                st.q_buf.(queue) <- grow_int_array st.q_buf.(queue) (t + 1);
              st.q_buf.(queue).(t) <- st.regs.(src);
              st.q_tail.(queue) <- t + 1;
              incr pc
          | Ir.Pop { queue; dst } ->
              let h = st.q_head.(queue) in
              if h >= st.q_tail.(queue) then raise_notrace Truncated;
              st.regs.(dst) <- st.q_buf.(queue).(h);
              st.q_head.(queue) <- h + 1;
              incr pc
          | Ir.Out_const k ->
              snk.k_out.(i) <- spec.Ir.consts.(k);
              finished := true
          | Ir.Out_fn k ->
              snk.k_out.(i) <- spec.Ir.fns.(k) (env ());
              finished := true
          | Ir.Halt -> raise_notrace Truncated);
          incr steps
        done
      with
      | () -> false
      | exception Truncated -> true
    in
    total_steps := !total_steps + !steps;
    total_queries := !total_queries + !n_queries;
    snk.k_volume.(i) <- !visit_count;
    snk.k_distance.(i) <- !max_dist;
    snk.k_queries.(i) <- !n_queries;
    snk.k_aborted.(i) <- aborted
  done;
  Metrics.add m_steps !total_steps;
  Metrics.add m_queries !total_queries

let run_batch_into ?claimed_n ?(budget = Probe.unlimited) ?pool spec ~graph ~input ~origins
    ~sink:snk =
  let claimed_n = match claimed_n with Some n -> n | None -> Graph.n graph in
  let count = Graph.n graph in
  let k = Array.length origins in
  if Array.length snk.k_out < k then invalid_arg "Exec.run_batch_into: sink shorter than batch";
  Metrics.incr m_runs;
  Metrics.add m_origins k;
  let eff = Ir.effective_budget spec.Ir.program budget in
  let cap = Ir.step_cap ~n:claimed_n spec.Ir.program in
  let run_range lo hi =
    with_state count (fun st ->
        exec_range spec graph input claimed_n eff.Probe.max_volume eff.Probe.max_distance cap
          st origins snk lo hi)
  in
  match pool with
  | None -> run_range 0 k
  | Some pool when Pool.domains pool <= 1 || k <= 1 -> run_range 0 k
  | Some pool ->
      (* Chunk count is a function of (k, domains) only, and each slot is
         computed independently, so the output is scheduling-invariant. *)
      let nchunks = min k (4 * Pool.domains pool) in
      let chunks =
        List.init nchunks (fun c ->
            let lo = c * k / nchunks and hi = (c + 1) * k / nchunks in
            (lo, hi))
      in
      ignore (Pool.map pool (fun (lo, hi) -> run_range lo hi) chunks)

let run_batch ?claimed_n ?budget ?pool spec ~graph ~input ~origins =
  let k = Array.length origins in
  (* [None] is a fine placeholder: [k_out] slots are only read behind a
     false [k_aborted], by which point they hold a [Some]. *)
  let snk = sink ~none:None k in
  let boxed =
    {
      Ir.program = spec.Ir.program;
      obs = spec.Ir.obs;
      consts = Array.map Option.some spec.Ir.consts;
      fns = Array.map (fun f env -> Some (f env)) spec.Ir.fns;
    }
  in
  run_batch_into ?claimed_n ?budget ?pool boxed ~graph ~input ~origins ~sink:snk;
  Array.init k (fun i ->
      let aborted = snk.k_aborted.(i) in
      {
        Probe.output = (if aborted then None else snk.k_out.(i));
        volume = snk.k_volume.(i);
        distance = snk.k_distance.(i);
        queries = snk.k_queries.(i);
        rand_bits = 0;
        aborted;
      })
