(* Tests for the serving layer: the LRU session cache (model-checked
   eviction), the wire protocol (codec + incremental framing), the
   handler's byte-identity with direct computation, the mix parser, and
   an in-process end-to-end run of the select-loop server covering the
   deadline and load-shedding paths. *)

module Json = Vc_obs.Json
module Lru = Vc_serve.Lru
module Protocol = Vc_serve.Protocol
module Handler = Vc_serve.Handler
module Server = Vc_serve.Server
module Loadgen = Vc_serve.Loadgen
module Conform = Vc_serve.Conform
module Registry = Vc_check.Registry

(* --- LRU -------------------------------------------------------------------- *)

let test_lru_basic () =
  (match Lru.create ~capacity:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 accepted");
  let c = Lru.create ~capacity:2 in
  Alcotest.(check int) "empty" 0 (Lru.length c);
  Alcotest.(check bool) "no eviction below capacity" true (Lru.add c 1 "a" = None);
  Alcotest.(check bool) "no eviction at capacity" true (Lru.add c 2 "b" = None);
  Alcotest.(check (option string)) "find bumps" (Some "a") (Lru.find c 1);
  (* 2 is now least recent: adding 3 evicts it *)
  (match Lru.add c 3 "c" with
  | Some (2, "b") -> ()
  | _ -> Alcotest.fail "expected (2, b) evicted");
  Alcotest.(check bool) "evicted key gone" false (Lru.mem c 2);
  Alcotest.(check int) "length stays at capacity" 2 (Lru.length c);
  (* rebinding a resident key never evicts *)
  (match Lru.add c 1 "a2" with
  | None -> ()
  | Some _ -> Alcotest.fail "rebind evicted");
  Alcotest.(check (option string)) "rebind updates" (Some "a2") (Lru.find c 1)

(* Model-based qcheck: drive the cache and a naive MRU-first assoc-list
   model with the same operation sequence; to_list and every eviction
   must agree at each step. *)
type lru_op = Add of int * int | Find of int | Mem of int

let lru_op_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map2 (fun k v -> Add (k, v)) (int_bound 7) (int_bound 99));
        (2, map (fun k -> Find k) (int_bound 7));
        (1, map (fun k -> Mem k) (int_bound 7));
      ])

let pp_lru_op = function
  | Add (k, v) -> Printf.sprintf "add %d %d" k v
  | Find k -> Printf.sprintf "find %d" k
  | Mem k -> Printf.sprintf "mem %d" k

let model_find model k =
  match List.assoc_opt k !model with
  | None -> None
  | Some v ->
      model := (k, v) :: List.remove_assoc k !model;
      Some v

let model_add model ~capacity k v =
  if List.mem_assoc k !model then begin
    model := (k, v) :: List.remove_assoc k !model;
    None
  end
  else begin
    model := (k, v) :: !model;
    if List.length !model <= capacity then None
    else begin
      let rec split acc = function
        | [] -> assert false
        | [ last ] -> (List.rev acc, last)
        | x :: rest -> split (x :: acc) rest
      in
      let keep, evicted = split [] !model in
      model := keep;
      Some evicted
    end
  end

let qcheck_lru_model =
  QCheck.Test.make ~count:300 ~name:"Lru: agrees with the MRU-list model"
    (QCheck.make
       ~print:(fun (cap, ops) ->
         Printf.sprintf "capacity %d: %s" cap (String.concat "; " (List.map pp_lru_op ops)))
       QCheck.Gen.(pair (int_range 1 4) (list_size (int_bound 40) lru_op_gen)))
    (fun (capacity, ops) ->
      let cache = Lru.create ~capacity in
      let model = ref [] in
      List.for_all
        (fun op ->
          let step_ok =
            match op with
            | Add (k, v) -> Lru.add cache k v = model_add model ~capacity k v
            | Find k -> Lru.find cache k = model_find model k
            | Mem k -> Lru.mem cache k = List.mem_assoc k !model
          in
          step_ok && Lru.to_list cache = !model && Lru.length cache = List.length !model)
        ops)

(* --- protocol codec --------------------------------------------------------- *)

let sample_requests =
  [
    { Protocol.id = 0; deadline_ms = None; query = Protocol.List };
    { Protocol.id = 1; deadline_ms = Some 0; query = Protocol.Stats };
    { Protocol.id = 7; deadline_ms = Some 250; query = Protocol.Shutdown };
    {
      Protocol.id = 12;
      deadline_ms = None;
      query = Protocol.Solve { problem = "LeafColoring"; size = 15; seed = -3L };
    };
    {
      Protocol.id = 13;
      deadline_ms = Some 1000;
      query = Protocol.Probe { problem = "CycleColoring3"; size = 9; seed = Int64.min_int; origin = 4 };
    };
    {
      Protocol.id = 14;
      deadline_ms = None;
      query = Protocol.Trace { problem = "DegreeParity"; size = 16; seed = Int64.max_int; origin = 0 };
    };
  ]

let test_request_roundtrip () =
  List.iter
    (fun req ->
      let s = Json.to_string (Protocol.request_to_json req) in
      match Result.bind (Json.parse s) Protocol.request_of_json with
      | Ok req' -> Alcotest.(check bool) s true (req' = req)
      | Error msg -> Alcotest.failf "%s: %s" s msg)
    sample_requests

let test_request_rejects () =
  List.iter
    (fun src ->
      match Result.bind (Json.parse src) Protocol.request_of_json with
      | Ok _ -> Alcotest.failf "accepted %s" src
      | Error _ -> ())
    [
      "{}";
      "{\"kind\":\"list\"}";
      "{\"id\":-1,\"kind\":\"list\"}";
      "{\"id\":1,\"kind\":\"nonsense\"}";
      "{\"id\":1,\"kind\":\"list\",\"deadline_ms\":-5}";
      "{\"id\":1,\"kind\":\"list\",\"deadline_ms\":\"soon\"}";
      "{\"id\":1,\"kind\":\"solve\",\"problem\":\"x\",\"size\":4}";
      "{\"id\":1,\"kind\":\"solve\",\"problem\":\"x\",\"size\":4,\"seed\":17}";
      "{\"id\":1,\"kind\":\"probe\",\"problem\":\"x\",\"size\":4,\"seed\":\"17\"}";
    ]

let test_reply_roundtrip () =
  let ok = Protocol.ok_reply ~id:5 (Json.Obj [ ("n", Json.Int 3) ]) in
  (match Result.bind (Json.parse (Json.to_string ok)) Protocol.reply_of_json with
  | Ok { Protocol.r_id = 5; body = Ok payload } ->
      Alcotest.(check (option int)) "payload" (Some 3) (Option.bind (Json.member payload "n") Json.to_int)
  | _ -> Alcotest.fail "ok reply did not round-trip");
  let err = Protocol.error_reply ~id:6 ~code:Protocol.Overloaded ~message:"queue full" in
  match Result.bind (Json.parse (Json.to_string err)) Protocol.reply_of_json with
  | Ok { Protocol.r_id = 6; body = Error (Protocol.Overloaded, "queue full") } -> ()
  | _ -> Alcotest.fail "error reply did not round-trip"

let feed_string dec s = Protocol.feed dec (Bytes.of_string s) (String.length s)

let test_framing_incremental () =
  let bodies = [ "{\"id\":1}"; "{}"; String.make 1000 'x' ] in
  let wire = String.concat "" (List.map Protocol.frame bodies) in
  (* byte-at-a-time feeding must produce exactly the three bodies *)
  let dec = Protocol.decoder () in
  let got = ref [] in
  String.iter
    (fun c ->
      feed_string dec (String.make 1 c);
      let rec drain () =
        match Protocol.next_frame dec with
        | Ok (Some b) ->
            got := b :: !got;
            drain ()
        | Ok None -> ()
        | Error msg -> Alcotest.failf "framing error: %s" msg
      in
      drain ())
    wire;
  Alcotest.(check (list string)) "byte-at-a-time" bodies (List.rev !got);
  (* all three in one feed *)
  let dec = Protocol.decoder () in
  feed_string dec wire;
  let rec drain acc =
    match Protocol.next_frame dec with
    | Ok (Some b) -> drain (b :: acc)
    | Ok None -> List.rev acc
    | Error msg -> Alcotest.failf "framing error: %s" msg
  in
  Alcotest.(check (list string)) "single feed" bodies (drain [])

let test_framing_rejects () =
  let bad s =
    let dec = Protocol.decoder () in
    feed_string dec s;
    let rec drain () =
      match Protocol.next_frame dec with
      | Ok (Some _) -> drain ()
      | Ok None -> Alcotest.failf "accepted %S" s
      | Error _ -> ()
    in
    drain ()
  in
  bad "x{}\n";
  bad "99999999999 {}\n";
  (* length prefix over the 16 MiB cap *)
  bad (Printf.sprintf "%d %s\n" (Protocol.max_frame_bytes + 1) "{}");
  (* body longer than declared: the byte after it must be the newline *)
  bad "2 {}x\n"

(* --- handler ---------------------------------------------------------------- *)

(* Byte-identity for every registry problem: Conform.probe is the exact
   closure `volcomp check` injects as the oracle's seventh probe. *)
let test_handler_byte_identity () =
  List.iter
    (fun (e : Registry.entry) ->
      match e.quick_sizes with
      | [] -> ()
      | size :: _ -> (
          match Conform.probe e ~size ~seed:91L with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "%s: %s" e.name msg))
    (Registry.all ())

let test_handler_errors () =
  let h = Handler.create () in
  (match Handler.handle h (Protocol.Solve { problem = "no-such"; size = 4; seed = 1L }) with
  | Error (Protocol.Unknown_problem, _) -> ()
  | _ -> Alcotest.fail "unknown problem not reported");
  match Handler.handle h (Protocol.Probe { problem = "DegreeParity"; size = 16; seed = 1L; origin = 99 })
  with
  | Error (Protocol.Bad_origin, _) -> ()
  | _ -> Alcotest.fail "bad origin not reported"

let test_handler_cache_bounded () =
  let h = Handler.create ~cache_capacity:2 () in
  let solve seed =
    match Handler.handle h (Protocol.Solve { problem = "DegreeParity"; size = 16; seed }) with
    | Ok p -> Json.to_string p
    | Error (_, msg) -> Alcotest.failf "solve: %s" msg
  in
  let first = solve 1L in
  Alcotest.(check int) "one resident" 1 (Handler.cache_length h);
  Alcotest.(check string) "cache hit answers identically" first (solve 1L);
  ignore (solve 2L : string);
  ignore (solve 3L : string);
  Alcotest.(check int) "capacity bounds residents" 2 (Handler.cache_length h);
  Alcotest.(check string) "rebuilt after eviction, same bytes" first (solve 1L)

(* --- loadgen mix parser ------------------------------------------------------ *)

let test_parse_mix () =
  (match Loadgen.parse_mix "probe:4,solve" with
  | Ok [ ("probe", 4); ("solve", 1) ] -> ()
  | Ok _ -> Alcotest.fail "wrong mix"
  | Error msg -> Alcotest.fail msg);
  List.iter
    (fun s ->
      match Loadgen.parse_mix s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ ""; "shutdown"; "probe:0"; "probe:x"; "frobnicate:2" ]

(* --- end-to-end server ------------------------------------------------------- *)

(* Run the select loop on its own domain against a Unix-domain socket,
   drive it from this one, and join on shutdown.  One batch of frames
   written in a single write exercises batching, the bounded queue
   (depth 1 -> overloaded), and the deadline path (deadline_ms = 0
   expires deterministically at dispatch). *)
let with_server ?queue_depth f =
  let dir = Filename.temp_file "volcomp_serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let path = Filename.concat dir "s.sock" in
  let listen = Server.listen_unix ~path in
  let handler = Handler.create () in
  let server = Domain.spawn (fun () -> Server.run ~handler ?queue_depth ~listen ()) in
  let finally () =
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    (try Unix.rmdir dir with Unix.Unix_error _ -> ())
  in
  Fun.protect ~finally (fun () ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      let answered =
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            f fd;
            Domain.join server)
      in
      answered)

let send_raw fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

let frame_request req = Protocol.frame (Json.to_string (Protocol.request_to_json req))

let read_replies fd count =
  let dec = Protocol.decoder () in
  let buf = Bytes.create 4096 in
  let replies = ref [] in
  while List.length !replies < count do
    match Protocol.next_frame dec with
    | Ok (Some body) -> (
        match Result.bind (Json.parse body) Protocol.reply_of_json with
        | Ok r -> replies := r :: !replies
        | Error msg -> Alcotest.failf "bad reply: %s" msg)
    | Error msg -> Alcotest.failf "reply framing: %s" msg
    | Ok None -> (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> Alcotest.fail "server closed the connection"
        | n -> Protocol.feed dec buf n)
  done;
  List.rev !replies

let body_of id replies =
  match List.find_opt (fun r -> r.Protocol.r_id = id) replies with
  | Some r -> r.Protocol.body
  | None -> Alcotest.failf "no reply for id %d" id

let test_server_end_to_end () =
  let answered =
    with_server (fun fd ->
        let q = Protocol.Probe { problem = "DegreeParity"; size = 16; seed = 5L; origin = 2 } in
        send_raw fd (frame_request { Protocol.id = 1; deadline_ms = None; query = q });
        let direct =
          match Handler.handle (Handler.create ()) q with
          | Ok p -> Json.to_string p
          | Error (_, msg) -> Alcotest.failf "direct: %s" msg
        in
        (match body_of 1 (read_replies fd 1) with
        | Ok payload ->
            Alcotest.(check string) "wire payload is byte-identical" direct (Json.to_string payload)
        | Error (c, m) -> Alcotest.failf "error %s: %s" (Protocol.code_to_string c) m);
        (* a deadline of 0 ms has always expired by dispatch time *)
        send_raw fd (frame_request { Protocol.id = 2; deadline_ms = Some 0; query = q });
        (match body_of 2 (read_replies fd 1) with
        | Error (Protocol.Deadline_exceeded, _) -> ()
        | Error (c, _) -> Alcotest.failf "expected deadline_exceeded, got %s" (Protocol.code_to_string c)
        | Ok _ -> Alcotest.fail "expired request answered");
        (* malformed JSON on a well-formed frame: one bad_request, conn survives *)
        send_raw fd (Protocol.frame "{nope");
        (match body_of 0 (read_replies fd 1) with
        | Error (Protocol.Bad_request, _) -> ()
        | _ -> Alcotest.fail "malformed JSON not rejected");
        send_raw fd (frame_request { Protocol.id = 9; deadline_ms = None; query = Protocol.Shutdown });
        match body_of 9 (read_replies fd 1) with
        | Ok payload ->
            Alcotest.(check (option bool)) "bye" (Some true)
              (Option.bind (Json.member payload "bye") Json.to_bool)
        | Error _ -> Alcotest.fail "shutdown errored")
  in
  Alcotest.(check int) "answered count" 4 answered

let test_server_sheds_load () =
  let answered =
    with_server ~queue_depth:1 (fun fd ->
        let q = Protocol.Stats in
        let burst =
          String.concat ""
            (List.map
               (fun id -> frame_request { Protocol.id; deadline_ms = None; query = q })
               [ 1; 2; 3 ])
        in
        (* one write -> one read cycle on the server: the queue (depth 1)
           takes request 1; 2 and 3 must be shed, not dropped or hung *)
        send_raw fd burst;
        let replies = read_replies fd 3 in
        (match body_of 1 replies with
        | Ok _ -> ()
        | Error (c, _) -> Alcotest.failf "request 1: %s" (Protocol.code_to_string c));
        List.iter
          (fun id ->
            match body_of id replies with
            | Error (Protocol.Overloaded, _) -> ()
            | Error (c, _) ->
                Alcotest.failf "request %d: expected overloaded, got %s" id
                  (Protocol.code_to_string c)
            | Ok _ -> Alcotest.failf "request %d: not shed" id)
          [ 2; 3 ];
        send_raw fd (frame_request { Protocol.id = 4; deadline_ms = None; query = Protocol.Shutdown });
        ignore (read_replies fd 1 : Protocol.reply list))
  in
  Alcotest.(check int) "answered count" 4 answered

let suites =
  [
    ( "serve:lru",
      [
        Alcotest.test_case "basics" `Quick test_lru_basic;
        QCheck_alcotest.to_alcotest qcheck_lru_model;
      ] );
    ( "serve:protocol",
      [
        Alcotest.test_case "request round-trip" `Quick test_request_roundtrip;
        Alcotest.test_case "request rejects" `Quick test_request_rejects;
        Alcotest.test_case "reply round-trip" `Quick test_reply_roundtrip;
        Alcotest.test_case "incremental framing" `Quick test_framing_incremental;
        Alcotest.test_case "framing rejects" `Quick test_framing_rejects;
      ] );
    ( "serve:handler",
      [
        Alcotest.test_case "byte-identity across the registry" `Slow test_handler_byte_identity;
        Alcotest.test_case "structured errors" `Quick test_handler_errors;
        Alcotest.test_case "session cache bounded" `Quick test_handler_cache_bounded;
      ] );
    ( "serve:loadgen",
      [ Alcotest.test_case "mix parser" `Quick test_parse_mix ] );
    ( "serve:server",
      [
        Alcotest.test_case "end-to-end over a socket" `Quick test_server_end_to_end;
        Alcotest.test_case "bounded queue sheds load" `Quick test_server_sheds_load;
      ] );
  ]
