lib/model/local.ml: Array Hashtbl Queue Vc_graph View World
