(* Tests for the measurement harness: growth-class fitting, the runner,
   and the experiment pipeline itself (on tiny ladders). *)

module Fit = Vc_measure.Fit
module Runner = Vc_measure.Runner
module Experiments = Vc_measure.Experiments
module Graph = Vc_graph.Graph
module Builder = Vc_graph.Builder
module Probe = Vc_model.Probe
module Trivial = Volcomp.Trivial_lcl

let model_t = Alcotest.testable Fit.pp_model Fit.equal_model

let ladder = [ 64; 256; 1024; 4096; 16384 ]

let series f = List.map (fun n -> (n, f (float_of_int n))) ladder

let test_fit_constant () =
  let best, _ = Fit.best_fit (series (fun _ -> 7.0)) in
  Alcotest.check model_t "constant" Fit.Constant best

let test_fit_log () =
  let best, _ = Fit.best_fit (series (fun n -> 3.0 *. log n /. log 2.0)) in
  Alcotest.check model_t "log" Fit.Log best

let test_fit_sqrt () =
  let best, _ = Fit.best_fit (series (fun n -> 2.0 *. sqrt n)) in
  Alcotest.check model_t "sqrt" (Fit.Root 2) best

let test_fit_cbrt () =
  let best, _ = Fit.best_fit (series (fun n -> 5.0 *. Float.pow n (1.0 /. 3.0))) in
  Alcotest.check model_t "cbrt" (Fit.Root 3) best

let test_fit_linear () =
  let best, _ = Fit.best_fit (series (fun n -> 0.4 *. n)) in
  Alcotest.check model_t "linear" Fit.Linear best

let test_fit_noise_tolerant () =
  (* multiplicative noise of +/-15% must not change the class *)
  let noisy =
    List.mapi
      (fun i (n, y) -> (n, y *. (if i mod 2 = 0 then 1.15 else 0.87)))
      (series (fun n -> 2.0 *. sqrt n))
  in
  let best, _ = Fit.best_fit noisy in
  Alcotest.check model_t "still sqrt" (Fit.Root 2) best

let test_fit_rejects_short_series () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Fit.score Fit.Log [ (10, 1.0) ]);
       false
     with Invalid_argument _ -> true)

let test_log_star () =
  Alcotest.(check bool) "log*(2^16) small" true (Fit.log_star 65536.0 <= 5.0);
  Alcotest.(check bool) "monotone" true (Fit.log_star 1e9 >= Fit.log_star 100.0)

let test_runner_stats () =
  let g = Builder.path 9 in
  let world = Trivial.world g in
  let stats, outputs =
    Runner.measure ~world ~solver:Trivial.solve ~origins:(Graph.nodes g) ()
  in
  Alcotest.(check int) "runs" 9 stats.Runner.runs;
  Alcotest.(check int) "outputs" 9 (List.length outputs);
  Alcotest.(check int) "volume 1" 1 stats.Runner.max_volume;
  Alcotest.(check int) "aborted 0" 0 stats.Runner.aborted

let test_runner_abort_counted () =
  let g = Builder.path 9 in
  let world = Trivial.world g in
  let greedy =
    Vc_lcl.Lcl.solver ~name:"greedy" ~randomized:false (fun ctx ->
        let rec go v =
          let d = Probe.degree ctx v in
          go (Probe.query ctx ~at:v ~port:d)
        in
        go (Probe.origin ctx))
  in
  let stats, outputs =
    Runner.measure ~world ~solver:greedy ~budget:(Probe.volume_budget 2) ~origins:[ 0; 4 ] ()
  in
  Alcotest.(check int) "both aborted" 2 stats.Runner.aborted;
  Alcotest.(check int) "no outputs" 0 (List.length outputs)

let test_sample_origins_distinct () =
  let g = Builder.cycle 50 in
  let sample = Runner.sample_origins g ~count:20 ~seed:3L in
  Alcotest.(check int) "20 samples" 20 (List.length sample);
  Alcotest.(check int) "distinct" 20 (List.length (List.sort_uniq compare sample))

let test_solve_and_check_valid () =
  let g = Builder.complete_binary_tree ~depth:4 in
  let stats, valid =
    Runner.solve_and_check ~world:(Trivial.world g) ~problem:Trivial.problem ~graph:g
      ~input:(fun _ -> ()) ~solver:Trivial.solve ()
  in
  Alcotest.(check bool) "valid" true valid;
  Alcotest.(check int) "all nodes" (Graph.n g) stats.Runner.runs

(* End-to-end: two representative experiment reports on their quick
   ladders must agree with the paper. *)
let test_experiment_leafcoloring_agrees () =
  let r = Experiments.table1_leafcoloring ~quick:true () in
  Alcotest.(check bool) "leafcoloring row reproduces" true (Experiments.all_agree r)

let test_experiment_figure12_agrees () =
  let r = Experiments.figure12_classes ~quick:true () in
  Alcotest.(check bool) "figure 1-2 classes reproduce" true (Experiments.all_agree r)

let test_experiment_adversary_agrees () =
  let r = Experiments.figure8_adversary ~quick:true () in
  Alcotest.(check bool) "adversary report reproduces" true (Experiments.all_agree r)

let suites =
  [
    ( "measure:fit",
      [
        Alcotest.test_case "constant" `Quick test_fit_constant;
        Alcotest.test_case "log" `Quick test_fit_log;
        Alcotest.test_case "sqrt" `Quick test_fit_sqrt;
        Alcotest.test_case "cbrt" `Quick test_fit_cbrt;
        Alcotest.test_case "linear" `Quick test_fit_linear;
        Alcotest.test_case "noise tolerant" `Quick test_fit_noise_tolerant;
        Alcotest.test_case "rejects short series" `Quick test_fit_rejects_short_series;
        Alcotest.test_case "log star" `Quick test_log_star;
      ] );
    ( "measure:runner",
      [
        Alcotest.test_case "stats" `Quick test_runner_stats;
        Alcotest.test_case "abort counted" `Quick test_runner_abort_counted;
        Alcotest.test_case "sample origins" `Quick test_sample_origins_distinct;
        Alcotest.test_case "solve and check" `Quick test_solve_and_check_valid;
      ] );
    ( "measure:experiments",
      [
        Alcotest.test_case "leafcoloring row" `Slow test_experiment_leafcoloring_agrees;
        Alcotest.test_case "figure 1-2" `Slow test_experiment_figure12_agrees;
        Alcotest.test_case "adversary report" `Slow test_experiment_adversary_agrees;
      ] );
  ]
