(** Maximal matching, encoded by ports: a node outputs the port of its
    matched partner, or 0 when unmatched.

    The radius-1 checker demands reciprocation (my partner's output
    points back at me) and maximality (an unmatched node has no
    unmatched neighbor) — together exactly "the set of chosen edges is a
    maximal matching". *)

type output = int
(** 0, or a port in [1 .. degree]. *)

val problem : (unit, output) Vc_lcl.Lcl.t

val world : Vc_graph.Graph.t -> unit Vc_model.World.t

val solve_greedy : (unit, output) Vc_lcl.Lcl.solver
(** Deterministic reference: gather the component, scan edges in
    ascending (min id, max id) order, match both-free endpoints.  A
    canonical function of the component, so all origins agree. *)

val solvers : (unit, output) Vc_lcl.Lcl.solver list
