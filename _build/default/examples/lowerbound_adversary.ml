(* The interactive deterministic-volume lower bound for LeafColoring
   (Proposition 3.13) as an executable argument.

   The adversary poses as a world with n nodes, grows a red tree in
   response to every probe, and never reveals a leaf.  An algorithm that
   halts before spending n/3 queries is completed into a true instance
   whose leaves all carry the *other* color — so its answer is provably
   wrong, and the machine checks that.

   Run with: dune exec examples/lowerbound_adversary.exe *)

module Graph = Vc_graph.Graph
module TL = Vc_graph.Tree_labels
module Probe = Vc_model.Probe
module Lcl = Vc_lcl.Lcl
module LC = Volcomp.Leaf_coloring
module Adv = Volcomp.Adversary_leaf

(* A plausible-looking but hasty deterministic algorithm: inspect the
   first few levels and echo the majority input color. *)
let majority_sampler =
  Lcl.solver ~name:"3-level majority sampler" ~randomized:false (fun ctx ->
      let v0 = Probe.origin ctx in
      match Volcomp.Probe_tree.status ~pointers:LC.pointers ctx v0 with
      | TL.Leaf | TL.Inconsistent -> (Probe.input ctx v0).LC.color
      | TL.Internal ->
          let reds = ref 0 and blues = ref 0 in
          let ball = Vc_model.Ball.gather ctx ~radius:3 in
          List.iter
            (fun (v, _) ->
              match (Probe.input ctx v).LC.color with
              | TL.Red -> incr reds
              | TL.Blue -> incr blues)
            ball;
          if !reds >= !blues then TL.Red else TL.Blue)

let duel name solver n =
  Fmt.pr "%s vs adversary (n = %d):@." name n;
  (match Adv.duel ~claimed_n:n solver with
  | Adv.Survived { volume } ->
      Fmt.pr "  SURVIVED — but only by querying %d nodes (>= n/3 = %d)@." volume (n / 3)
  | Adv.Fooled { volume; algorithm_output; forced_output; instance } ->
      Fmt.pr "  FOOLED after only %d volume: it answered %a, but on the completed@." volume
        TL.pp_color algorithm_output;
      Fmt.pr "  %d-node instance every valid solution makes the origin output %a@."
        (Graph.n instance.LC.graph) TL.pp_color forced_output);
  Fmt.pr "@."

let () =
  Fmt.pr "Proposition 3.13: every deterministic LeafColoring algorithm needs n/3 queries@.@.";
  List.iter
    (fun n ->
      duel "honest nearest-leaf solver" LC.solve_distance n;
      duel "3-level majority sampler" majority_sampler n)
    [ 120; 600; 3000 ];
  Fmt.pr "The dichotomy is the theorem: pay Omega(n) volume or answer wrongly.@."
