lib/rng/splitmix.mli:
