lib/lcl/lcl.mli: Format Vc_graph Vc_model
