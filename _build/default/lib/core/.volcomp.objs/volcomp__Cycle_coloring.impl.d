lib/core/cycle_coloring.ml: Array Hashtbl List Vc_graph Vc_lcl Vc_model
