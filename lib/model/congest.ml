module Graph = Vc_graph.Graph
module Metrics = Vc_obs.Metrics

let m_messages = Metrics.counter "congest.messages"
let m_bits = Metrics.counter "congest.bits"
let m_round_bits = Metrics.histogram "congest.round_bits"

type 'msg outgoing = (int * 'msg) list

type ('i, 'msg, 'state, 'o) algorithm = {
  init : n:int -> id:int -> degree:int -> input:'i -> 'state * 'msg outgoing;
  round : 'state -> inbox:(int * 'msg) list -> 'state * 'msg outgoing * 'o option;
  message_bits : 'msg -> int;
}

type 'o result = {
  outputs : 'o option array;
  rounds : int;
  max_message_bits : int;
  total_bits : int;
}

exception Bandwidth_exceeded of { round : int; bits : int; limit : int }

let run ~graph ~input ?bandwidth ~max_rounds algo =
  let count = Graph.n graph in
  let outputs = Array.make count None in
  let states = Array.make count None in
  (* in_flight.(v) collects (port-at-v, msg) arriving at v next round. *)
  let in_flight = Array.make count [] in
  let max_bits = ref 0 in
  let total_bits = ref 0 in
  let round_bits = ref 0 in
  let pending = ref false in
  let deliver ~round_no sender out =
    List.iter
      (fun (port, msg) ->
        let bits = algo.message_bits msg in
        (match bandwidth with
        | Some limit when bits > limit ->
            raise (Bandwidth_exceeded { round = round_no; bits; limit })
        | Some _ | None -> ());
        if bits > !max_bits then max_bits := bits;
        total_bits := !total_bits + bits;
        round_bits := !round_bits + bits;
        Metrics.incr m_messages;
        Metrics.add m_bits bits;
        let receiver = Graph.neighbor graph sender port in
        let back_port =
          match Graph.port_to graph receiver sender with
          | Some p -> p
          | None -> assert false
        in
        in_flight.(receiver) <- (back_port, msg) :: in_flight.(receiver);
        pending := true)
      out
  in
  (* Round 0: initialization. *)
  Graph.iter_nodes graph (fun v ->
      let state, out =
        algo.init ~n:count ~id:(Graph.id graph v) ~degree:(Graph.degree graph v)
          ~input:(input v)
      in
      states.(v) <- Some state;
      deliver ~round_no:0 v out);
  Metrics.observe m_round_bits !round_bits;
  let all_decided () = Array.for_all Option.is_some outputs in
  let rounds = ref 0 in
  while (!pending || not (all_decided ())) && !rounds < max_rounds do
    incr rounds;
    round_bits := 0;
    let inboxes = Array.map (fun msgs -> List.rev msgs) in_flight in
    Array.fill in_flight 0 count [];
    pending := false;
    Graph.iter_nodes graph (fun v ->
        let state = match states.(v) with Some s -> s | None -> assert false in
        let state, out, decision = algo.round state ~inbox:inboxes.(v) in
        states.(v) <- Some state;
        (match (decision, outputs.(v)) with
        | Some o, None -> outputs.(v) <- Some o
        | Some _, Some _ | None, _ -> ());
        deliver ~round_no:!rounds v out);
    Metrics.observe m_round_bits !round_bits
  done;
  { outputs; rounds = !rounds; max_message_bits = !max_bits; total_bits = !total_bits }
