(** One worker under supervision: child process, socketpair channel,
    and the shard's warm-session ledger (see {!Supervisor} for the loop
    that drives these).

    The ledger mirrors the worker's resident-instance LRU — same
    capacity, same recency order — so after a respawn the supervisor can
    replay [warm] queries and restore the sessions the dead worker had
    built.  All fields are owned by the supervisor's single loop; there
    is no locking. *)

type spawn = shard:int -> fd:Unix.file_descr -> close_fds:Unix.file_descr list -> int
(** Start a worker for shard [shard], serving [fd] (one end of a
    socketpair; the callee owns it).  [close_fds] lists the supervisor's
    other descriptors — a fork-based spawn must close them in the child,
    an exec-based spawn can ignore them (they are close-on-exec).
    Returns the child pid. *)

type t = {
  id : int;
  warm : (string, Protocol.query) Lru.t;
  mutable pid : int;
  mutable fd : Unix.file_descr;
  mutable dec : Protocol.decoder;
  mutable alive : bool;
  mutable inflight : int;  (** requests forwarded, reply not yet seen *)
  mutable respawns : int;
}

val create : spawn:spawn -> warm_capacity:int -> close_fds:Unix.file_descr list -> int -> t
(** Socketpair + spawn; the worker end is closed in the parent, the
    parent end is close-on-exec. *)

val mark_dead : t -> unit
(** Close the channel and flag the shard down (idempotent). *)

val reap : t -> unit
(** [waitpid] the dead child (EINTR-safe; a vanished child is fine). *)

val respawn : spawn:spawn -> close_fds:Unix.file_descr list -> t -> unit
(** Start a fresh worker on a fresh socketpair for the same shard id;
    resets the channel and in-flight count, increments [respawns].  The
    warm ledger survives — it is the re-warm work list. *)

val send : t -> string -> bool
(** Frame and write one body; [false] if the worker is (now) dead. *)

val note_warm : t -> key:string -> Protocol.query -> unit
(** Record that the worker now holds this session resident (insert or
    recency-bump, evicting as the mirrored capacity dictates). *)

val warm_count : t -> int

val warm_queries : t -> Protocol.query list
(** The ledger's queries, oldest first — replaying them in order
    reproduces the worker's LRU recency. *)
