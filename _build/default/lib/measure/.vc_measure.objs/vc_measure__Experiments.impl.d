lib/measure/experiments.ml: Array Fit Fmt Int64 List Printf Runner Vc_commcc Vc_graph Vc_lcl Vc_model Vc_rng Volcomp
