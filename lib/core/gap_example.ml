module Graph = Vc_graph.Graph
module Builder = Vc_graph.Builder
module Probe = Vc_model.Probe
module World = Vc_model.World
module Congest = Vc_model.Congest
module Lcl = Vc_lcl.Lcl
module Splitmix = Vc_rng.Splitmix

type side = U | V

type node_input = {
  side : side;
  index : int;
  depth : int;
  bit : bool option;
}

type instance = {
  graph : Graph.t;
  inputs : node_input array;
  bits : bool array;
}

let leaf_count ~depth = 1 lsl depth

let first_leaf ~depth = (1 lsl depth) - 1

let make ~depth ~seed =
  if depth < 1 then invalid_arg "Gap_example.make: depth must be >= 1";
  let tree = Builder.complete_binary_tree ~depth in
  let graph, off = Builder.disjoint_union [ tree; tree ] in
  let graph = Builder.attach graph ~extra_edges:[ (0, off.(1)) ] in
  let rng = Splitmix.create seed in
  let bits = Array.init (leaf_count ~depth) (fun _ -> Splitmix.bool rng) in
  let inputs =
    Array.init (Graph.n graph) (fun v ->
        let side = if v < off.(1) then U else V in
        let index = if v < off.(1) then v else v - off.(1) in
        let bit =
          match side with
          | V when index >= first_leaf ~depth -> Some bits.(index - first_leaf ~depth)
          | V | U -> None
        in
        { side; index; depth; bit })
  in
  { graph; inputs; bits }

let input inst v = inst.inputs.(v)

let world inst = World.of_graph inst.graph ~input:(input inst)

let is_u_leaf i = i.side = U && i.index >= first_leaf ~depth:i.depth

let problem : (node_input, bool option) Lcl.t =
  let valid_at _g ~input ~output v =
    let i = input v in
    if is_u_leaf i then begin
      (* find the matching V-leaf's bit through the input labeling *)
      let pos = i.index - first_leaf ~depth:i.depth in
      match output v with
      | Some b ->
          (* the expected bit is recoverable only globally; checkers are
             given the whole graph, so scan for the V-leaf *)
          let expected = ref None in
          Graph.iter_nodes _g (fun w ->
              let iw = input w in
              if iw.side = V && iw.index = i.index then expected := iw.bit);
          (match !expected with
          | Some e when Bool.equal e b -> Ok ()
          | Some _ -> Error (Fmt.str "U-leaf %d reports the wrong bit" pos)
          | None -> Error "malformed instance: missing V-leaf")
      | None -> Error "U-leaf must output a bit"
    end
    else
      match output v with
      | None -> Ok ()
      | Some _ -> Error "only U-leaves produce bits"
  in
  { Lcl.name = "LeafBitCopy (Ex 7.6)"; radius = max_int; valid_at }

(* --- the O(log n)-volume query solver ----------------------------------- *)

(* Structural port conventions of Builder.complete_binary_tree + attach:
   root has children on ports 1,2 and the cross edge on port 3;
   non-root internal nodes have parent on 1 and children on 2,3;
   leaves have parent on 1. *)
let child_port ~is_root ~right = if is_root then (if right then 2 else 1) else if right then 3 else 2

let solve =
  Lcl.solver ~name:"climb-cross-descend" ~randomized:false (fun ctx ->
      let v0 = Probe.origin ctx in
      let i0 = Probe.input ctx v0 in
      if not (is_u_leaf i0) then None
      else begin
        (* climb to the U-root *)
        let rec climb v = if (Probe.input ctx v).index = 0 then v else climb (Probe.query ctx ~at:v ~port:1) in
        let u_root = climb v0 in
        let v_root = Probe.query ctx ~at:u_root ~port:3 in
        (* descend the mirrored heap path *)
        let path =
          let rec up x acc = if x = 0 then acc else up ((x - 1) / 2) ((x mod 2 = 1) :: acc) in
          (* true = left child (odd heap index) *)
          up i0.index []
        in
        let rec descend v = function
          | [] -> v
          | is_left :: rest ->
              let is_root = (Probe.input ctx v).index = 0 in
              descend (Probe.query ctx ~at:v ~port:(child_port ~is_root ~right:(not is_left))) rest
        in
        let v_leaf = descend v_root path in
        (Probe.input ctx v_leaf).bit
      end)

(* --- the pipelined CONGEST router ---------------------------------------- *)

type router_state = {
  me : node_input;
  degree : int;
  cap : int;  (** items per edge per round *)
  mutable pending : (int * (int * bool) list) list;  (** per outgoing port *)
  mutable decided : bool option option;
}

let item_bits ~depth = depth + 2

(* Route one item at a U-side node: the port leading towards the leaf
   with heap index [target]. *)
let u_route ~me target =
  let rec contains sub t = if t < sub then false else if t = sub then true else contains sub ((t - 1) / 2) in
  let left = (2 * me.index) + 1 and right = (2 * me.index) + 2 in
  let is_root = me.index = 0 in
  if contains left target then child_port ~is_root ~right:false
  else if contains right target then child_port ~is_root ~right:true
  else (* towards the parent: cannot happen for correctly routed items *)
    1

let enqueue st port items =
  if items <> [] then
    st.pending <-
      (match List.assoc_opt port st.pending with
      | Some old -> (port, old @ items) :: List.remove_assoc port st.pending
      | None -> (port, items) :: st.pending)

let drain st =
  let out =
    List.filter_map
      (fun (port, items) ->
        match items with
        | [] -> None
        | _ :: _ ->
            let rec take k = function
              | [] -> ([], [])
              | x :: rest when k > 0 ->
                  let sent, kept = take (k - 1) rest in
                  (x :: sent, kept)
              | rest -> ([], rest)
            in
            let sent, kept = take st.cap items in
            st.pending <- (port, kept) :: List.remove_assoc port st.pending;
            if sent = [] then None else Some (port, sent))
      st.pending
  in
  out

let route st items =
  List.iter
    (fun ((leaf_heap, b) as item) ->
      match st.me.side with
      | V ->
          (* upward towards the V-root, then across *)
          if st.me.index = 0 then enqueue st 3 [ item ] else enqueue st 1 [ item ]
      | U ->
          if st.me.index = leaf_heap then st.decided <- Some (Some b)
          else enqueue st (u_route ~me:st.me leaf_heap) [ item ])
    items

let congest_route ~bandwidth =
  {
    Congest.init =
      (fun ~n:_ ~id:_ ~degree ~input:me ->
        let cap = max 1 (bandwidth / item_bits ~depth:me.depth) in
        let st = { me; degree; cap; pending = []; decided = None } in
        (match me.bit with
        | Some b -> route st [ (me.index, b) ]
        | None -> ());
        (st, drain st));
    round =
      (fun st ~inbox ->
        route st (List.concat_map snd inbox);
        let decision =
          match st.decided with
          | Some d -> Some d
          | None -> if is_u_leaf st.me then None else Some None
        in
        (st, drain st, decision));
    message_bits = (fun items -> List.length items * item_bits ~depth:0);
  }

let run_congest inst ~bandwidth =
  let depth = inst.inputs.(0).depth in
  let algo =
    { (congest_route ~bandwidth) with
      Congest.message_bits = (fun items -> List.length items * item_bits ~depth) }
  in
  Congest.run ~graph:inst.graph ~input:(input inst) ~bandwidth ~max_rounds:(10 * Graph.n inst.graph)
    algo

let solvers = [ solve ]
