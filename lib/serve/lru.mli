(** A small bounded LRU map — the serving layer's session cache.

    Keys are compared with structural equality and hashed with
    [Hashtbl.hash]; capacity is fixed at {!create} and adding beyond it
    evicts the least-recently-used binding.  {!find} counts as a use.

    The implementation is a hash table over an intrusive doubly-linked
    recency list, so every operation is O(1).  The eviction order is a
    pure function of the operation sequence (no clocks, no randomness) —
    which is what the model-based qcheck property in [test/test_serve.ml]
    pins down.

    Not thread-safe: the server mutates its cache only on the dispatch
    loop's domain. *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : ('k, 'v) t -> int

val length : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** Look the key up and, when bound, make it the most recently used. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Membership {e without} touching recency. *)

val add : ('k, 'v) t -> 'k -> 'v -> ('k * 'v) option
(** Bind (or rebind) the key as most recently used and return the
    binding this pushed out, if the cache was full.  Rebinding an
    existing key never evicts. *)

val to_list : ('k, 'v) t -> ('k * 'v) list
(** Bindings, most recently used first. *)
