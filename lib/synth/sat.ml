(* CDCL in the MiniSat lineage, deterministic throughout.

   Internal representation: variables are 0-based, a literal is
   [2v + sign] with sign 1 for negation, so [lit lxor 1] negates and
   [lit lsr 1] recovers the variable.  The public API speaks DIMACS
   (1-based, sign by arithmetic sign).

   The clause database holds originals and learned clauses alike; the
   [originals] and [proof] logs keep the separation the DRUP replay of
   {!certify_unsat} needs.  Watches are per-literal growable arrays of
   clause indices; the first two positions of every attached clause are
   its watched literals. *)

type stats = {
  decisions : int;
  conflicts : int;
  propagations : int;
  learned : int;
  max_learned_len : int;
  restarts : int;
}

type t = {
  mutable nvars : int;
  (* per-variable state, sized [cap] *)
  mutable cap : int;
  mutable assign : int array;  (* -1 unassigned, else 0/1 *)
  mutable level : int array;
  mutable reason : int array;  (* clause index, -1 for decisions/facts *)
  mutable activity : float array;
  mutable phase : bool array;
  mutable seen : bool array;
  (* VSIDS order: indexed binary max-heap over variables *)
  mutable heap : int array;
  mutable heap_len : int;
  mutable heap_pos : int array;  (* -1 when not in heap *)
  mutable var_inc : float;
  (* clause database *)
  mutable clauses : int array array;
  mutable n_clauses : int;
  (* watches, indexed by literal (sized 2*cap) *)
  mutable w_data : int array array;
  mutable w_len : int array;
  (* trail *)
  mutable trail : int array;
  mutable trail_len : int;
  mutable lim : int array;
  mutable lim_len : int;
  mutable qhead : int;
  (* verdict state *)
  mutable unsat : bool;
  mutable model : int array;
  mutable have_model : bool;
  (* clauses added since the last attach, reversed *)
  mutable pending : int array list;
  (* certification logs, reversed *)
  mutable originals : int array list;
  mutable proof : int array list;
  (* stats *)
  mutable s_decisions : int;
  mutable s_conflicts : int;
  mutable s_props : int;
  mutable s_learned : int;
  mutable s_maxlen : int;
  mutable s_restarts : int;
}

let create () =
  {
    nvars = 0;
    cap = 0;
    assign = [||];
    level = [||];
    reason = [||];
    activity = [||];
    phase = [||];
    seen = [||];
    heap = [||];
    heap_len = 0;
    heap_pos = [||];
    var_inc = 1.0;
    clauses = [||];
    n_clauses = 0;
    w_data = [||];
    w_len = [||];
    trail = [||];
    trail_len = 0;
    lim = [||];
    lim_len = 0;
    qhead = 0;
    unsat = false;
    model = [||];
    have_model = false;
    pending = [];
    originals = [];
    proof = [];
    s_decisions = 0;
    s_conflicts = 0;
    s_props = 0;
    s_learned = 0;
    s_maxlen = 0;
    s_restarts = 0;
  }

let n_vars t = t.nvars

let stats t =
  {
    decisions = t.s_decisions;
    conflicts = t.s_conflicts;
    propagations = t.s_props;
    learned = t.s_learned;
    max_learned_len = t.s_maxlen;
    restarts = t.s_restarts;
  }

(* --- growable storage ------------------------------------------------------ *)

let grow_int a n d =
  let b = Array.make n d in
  Array.blit a 0 b 0 (Array.length a);
  b

let grow_bool a n =
  let b = Array.make n false in
  Array.blit a 0 b 0 (Array.length a);
  b

let grow_float a n =
  let b = Array.make n 0.0 in
  Array.blit a 0 b 0 (Array.length a);
  b

let grow_arr a n =
  let b = Array.make n [||] in
  Array.blit a 0 b 0 (Array.length a);
  b

let ensure_cap t n =
  if n > t.cap then begin
    let c = max n (max 16 (2 * t.cap)) in
    t.assign <- grow_int t.assign c (-1);
    t.level <- grow_int t.level c 0;
    t.reason <- grow_int t.reason c (-1);
    t.activity <- grow_float t.activity c;
    t.phase <- grow_bool t.phase c;
    t.seen <- grow_bool t.seen c;
    t.heap <- grow_int t.heap c 0;
    t.heap_pos <- grow_int t.heap_pos c (-1);
    t.trail <- grow_int t.trail c 0;
    t.lim <- grow_int t.lim c 0;
    t.w_data <- grow_arr t.w_data (2 * c);
    t.w_len <- grow_int t.w_len (2 * c) 0;
    t.cap <- c
  end

(* --- VSIDS heap ------------------------------------------------------------ *)

(* Higher activity wins; ties break to the smaller variable index, so
   the decision order — hence the whole run — is deterministic. *)
let heap_less t a b =
  t.activity.(a) > t.activity.(b) || (t.activity.(a) = t.activity.(b) && a < b)

let rec sift_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    let vi = t.heap.(i) and vp = t.heap.(p) in
    if heap_less t vi vp then begin
      t.heap.(i) <- vp;
      t.heap.(p) <- vi;
      t.heap_pos.(vp) <- i;
      t.heap_pos.(vi) <- p;
      sift_up t p
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 in
  if l < t.heap_len then begin
    let r = l + 1 in
    let c = if r < t.heap_len && heap_less t t.heap.(r) t.heap.(l) then r else l in
    if heap_less t t.heap.(c) t.heap.(i) then begin
      let vi = t.heap.(i) and vc = t.heap.(c) in
      t.heap.(i) <- vc;
      t.heap.(c) <- vi;
      t.heap_pos.(vc) <- i;
      t.heap_pos.(vi) <- c;
      sift_down t c
    end
  end

let heap_insert t v =
  if t.heap_pos.(v) < 0 then begin
    t.heap.(t.heap_len) <- v;
    t.heap_pos.(v) <- t.heap_len;
    t.heap_len <- t.heap_len + 1;
    sift_up t t.heap_pos.(v)
  end

let heap_pop t =
  let v = t.heap.(0) in
  t.heap_len <- t.heap_len - 1;
  t.heap_pos.(v) <- -1;
  if t.heap_len > 0 then begin
    let last = t.heap.(t.heap_len) in
    t.heap.(0) <- last;
    t.heap_pos.(last) <- 0;
    sift_down t 0
  end;
  v

let bump t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then begin
    for u = 0 to t.nvars - 1 do
      t.activity.(u) <- t.activity.(u) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end;
  if t.heap_pos.(v) >= 0 then sift_up t t.heap_pos.(v)

let decay t = t.var_inc <- t.var_inc /. 0.95

(* --- variables and literals ------------------------------------------------ *)

let new_var t =
  ensure_cap t (t.nvars + 1);
  let v = t.nvars in
  t.nvars <- v + 1;
  heap_insert t v;
  v + 1

(* [-1] unassigned, else the literal's truth value as 0/1. *)
let lit_value t lit =
  let a = t.assign.(lit lsr 1) in
  if a < 0 then -1 else a lxor (lit land 1)

let dimacs_of_lit lit =
  let v = (lit lsr 1) + 1 in
  if lit land 1 = 1 then -v else v

let lit_of_dimacs t l =
  if l = 0 then invalid_arg "Sat: zero literal";
  let v = abs l in
  if v > t.nvars then invalid_arg (Printf.sprintf "Sat: variable %d not allocated" v);
  (2 * (v - 1)) lor (if l < 0 then 1 else 0)

(* --- clause database ------------------------------------------------------- *)

let push_clause t c =
  if t.n_clauses >= Array.length t.clauses then
    t.clauses <- grow_arr t.clauses (max 16 (2 * t.n_clauses));
  let ci = t.n_clauses in
  t.clauses.(ci) <- c;
  t.n_clauses <- ci + 1;
  ci

let watch_add t lit ci =
  let n = t.w_len.(lit) in
  if n >= Array.length t.w_data.(lit) then
    t.w_data.(lit) <- grow_int t.w_data.(lit) (max 4 (2 * n)) 0;
  t.w_data.(lit).(n) <- ci;
  t.w_len.(lit) <- n + 1

let attach t c =
  let ci = push_clause t c in
  watch_add t c.(0) ci;
  watch_add t c.(1) ci;
  ci

(* --- trail ----------------------------------------------------------------- *)

let enqueue t lit reason =
  let v = lit lsr 1 in
  t.assign.(v) <- (lit land 1) lxor 1;
  t.level.(v) <- t.lim_len;
  t.reason.(v) <- reason;
  t.trail.(t.trail_len) <- lit;
  t.trail_len <- t.trail_len + 1

let backtrack t blevel =
  if t.lim_len > blevel then begin
    let bound = t.lim.(blevel) in
    for i = t.trail_len - 1 downto bound do
      let v = t.trail.(i) lsr 1 in
      t.phase.(v) <- t.assign.(v) = 1;
      t.assign.(v) <- -1;
      heap_insert t v
    done;
    t.trail_len <- bound;
    t.qhead <- bound;
    t.lim_len <- blevel
  end

(* --- adding clauses -------------------------------------------------------- *)

(* Normalize to sorted, deduplicated internal literals; [None] for a
   tautology. *)
let normalize t lits =
  let ls = List.sort_uniq compare (List.map (lit_of_dimacs t) lits) in
  let rec taut = function
    | a :: (b :: _ as rest) -> (a lxor 1 = b && a lsr 1 = b lsr 1) || taut rest
    | _ -> false
  in
  if taut ls then None else Some (Array.of_list ls)

let add_clause t lits =
  match normalize t lits with
  | None -> ()
  | Some c ->
      t.originals <- c :: t.originals;
      if Array.length c = 0 then begin
        if not t.unsat then begin
          t.unsat <- true;
          t.proof <- [||] :: t.proof
        end
      end
      else t.pending <- c :: t.pending

(* Attach everything added since the last solve.  Runs at level 0;
   clauses are simplified against the level-0 assignment (sound: the
   dropped literals are level-0 false, the dropped clauses level-0
   true), so watched literals are never false at attach time. *)
let attach_pending t =
  let cs = List.rev t.pending in
  t.pending <- [];
  List.iter
    (fun c ->
      if not t.unsat then begin
        let keep = ref [] in
        let is_true = ref false in
        Array.iter
          (fun l ->
            match lit_value t l with
            | 1 -> is_true := true
            | 0 -> ()
            | _ -> keep := l :: !keep)
          c;
        if not !is_true then
          match List.rev !keep with
          | [] ->
              t.unsat <- true;
              t.proof <- [||] :: t.proof
          | [ l ] -> enqueue t l (-1)
          | l0 :: l1 :: _ as ls ->
              ignore l0;
              ignore l1;
              ignore (attach t (Array.of_list ls))
      end)
    cs

(* --- propagation ----------------------------------------------------------- *)

(* Returns the conflicting clause index, or -1. *)
let propagate t =
  let conflict = ref (-1) in
  while !conflict < 0 && t.qhead < t.trail_len do
    let lit = t.trail.(t.qhead) in
    t.qhead <- t.qhead + 1;
    let false_lit = lit lxor 1 in
    let ws = t.w_data.(false_lit) in
    let n = t.w_len.(false_lit) in
    let j = ref 0 in
    let i = ref 0 in
    while !i < n do
      let ci = ws.(!i) in
      let c = t.clauses.(ci) in
      (* Ensure the false literal sits at position 1. *)
      if c.(0) = false_lit then begin
        c.(0) <- c.(1);
        c.(1) <- false_lit
      end;
      if lit_value t c.(0) = 1 then begin
        ws.(!j) <- ci;
        incr j
      end
      else begin
        (* Look for a replacement watch. *)
        let len = Array.length c in
        let k = ref 2 in
        while !k < len && lit_value t c.(!k) = 0 do
          incr k
        done;
        if !k < len then begin
          c.(1) <- c.(!k);
          c.(!k) <- false_lit;
          watch_add t c.(1) ci
        end
        else begin
          ws.(!j) <- ci;
          incr j;
          if lit_value t c.(0) = 0 then begin
            (* Conflict: keep the rest of the watch list and stop. *)
            conflict := ci;
            incr i;
            while !i < n do
              ws.(!j) <- ws.(!i);
              incr j;
              incr i
            done;
            i := n (* exit *)
          end
          else begin
            enqueue t c.(0) ci;
            t.s_props <- t.s_props + 1
          end
        end
      end;
      if !conflict < 0 then incr i
    done;
    t.w_len.(false_lit) <- !j
  done;
  !conflict

(* --- conflict analysis (first UIP) ----------------------------------------- *)

(* Returns the learned clause (asserting literal first, a literal of the
   backjump level second when the clause is long) and the backjump
   level. *)
let analyze t confl0 =
  let learnt = ref [] in
  let btlevel = ref 0 in
  let pathc = ref 0 in
  let p = ref (-1) in
  let confl = ref confl0 in
  let idx = ref (t.trail_len - 1) in
  let first = ref true in
  let continue = ref true in
  while !continue do
    let c = t.clauses.(!confl) in
    let start = if !first then 0 else 1 in
    for j = start to Array.length c - 1 do
      let q = c.(j) in
      let v = q lsr 1 in
      if (not t.seen.(v)) && t.level.(v) > 0 then begin
        t.seen.(v) <- true;
        bump t v;
        if t.level.(v) >= t.lim_len then incr pathc
        else begin
          learnt := q :: !learnt;
          if t.level.(v) > !btlevel then btlevel := t.level.(v)
        end
      end
    done;
    while not t.seen.(t.trail.(!idx) lsr 1) do
      decr idx
    done;
    p := t.trail.(!idx);
    decr idx;
    let v = !p lsr 1 in
    t.seen.(v) <- false;
    confl := t.reason.(v);
    decr pathc;
    first := false;
    if !pathc = 0 then continue := false
  done;
  let tail = !learnt in
  List.iter (fun q -> t.seen.(q lsr 1) <- false) tail;
  let c = Array.of_list ((!p lxor 1) :: tail) in
  (* Put a literal of the backjump level at position 1 so both watches
     are sound after the backjump. *)
  if Array.length c > 1 then begin
    let k = ref 1 in
    for j = 1 to Array.length c - 1 do
      if t.level.(c.(j) lsr 1) = !btlevel then k := j
    done;
    let tmp = c.(1) in
    c.(1) <- c.(!k);
    c.(!k) <- tmp
  end;
  (c, !btlevel)

(* --- Luby restarts --------------------------------------------------------- *)

(* The reluctant-doubling sequence 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
let luby x0 =
  let size = ref 1 and seq = ref 0 in
  while !size < x0 + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref x0 in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  1 lsl !seq

let restart_base = 64

(* --- solving --------------------------------------------------------------- *)

type verdict = Sat | Unsat

let record_learnt t c =
  t.proof <- c :: t.proof;
  t.s_learned <- t.s_learned + 1;
  if Array.length c > t.s_maxlen then t.s_maxlen <- Array.length c

let solve t =
  backtrack t 0;
  attach_pending t;
  if (not t.unsat) && propagate t >= 0 then begin
    t.unsat <- true;
    t.proof <- [||] :: t.proof
  end;
  if t.unsat then Unsat
  else begin
    let verdict = ref None in
    let restarts = ref 0 in
    let since_restart = ref 0 in
    let limit = ref (restart_base * luby 0) in
    while !verdict = None do
      let confl = propagate t in
      if confl >= 0 then begin
        t.s_conflicts <- t.s_conflicts + 1;
        if t.lim_len = 0 then begin
          t.unsat <- true;
          t.proof <- [||] :: t.proof;
          verdict := Some Unsat
        end
        else begin
          let c, blevel = analyze t confl in
          record_learnt t c;
          backtrack t blevel;
          if Array.length c = 1 then enqueue t c.(0) (-1)
          else begin
            let ci = attach t c in
            enqueue t c.(0) ci
          end;
          decay t;
          incr since_restart;
          if !since_restart >= !limit then begin
            t.s_restarts <- t.s_restarts + 1;
            incr restarts;
            since_restart := 0;
            limit := restart_base * luby !restarts;
            backtrack t 0
          end
        end
      end
      else if t.trail_len = t.nvars then begin
        t.model <- Array.copy t.assign;
        t.have_model <- true;
        backtrack t 0;
        verdict := Some Sat
      end
      else begin
        (* Decide. *)
        let v = ref (-1) in
        while !v < 0 && t.heap_len > 0 do
          let u = heap_pop t in
          if t.assign.(u) < 0 then v := u
        done;
        if !v < 0 then begin
          (* Every remaining variable is assigned; the trail-length test
             above missed only because of duplicates — not possible, but
             close the loop safely. *)
          t.model <- Array.copy t.assign;
          t.have_model <- true;
          backtrack t 0;
          verdict := Some Sat
        end
        else begin
          t.s_decisions <- t.s_decisions + 1;
          t.lim.(t.lim_len) <- t.trail_len;
          t.lim_len <- t.lim_len + 1;
          let lit = (2 * !v) lor if t.phase.(!v) then 0 else 1 in
          enqueue t lit (-1)
        end
      end
    done;
    Option.get !verdict
  end

let value t v =
  if v < 1 || v > t.nvars then invalid_arg "Sat.value: variable out of range";
  if not t.have_model then invalid_arg "Sat.value: no model";
  if v - 1 >= Array.length t.model then invalid_arg "Sat.value: variable newer than model";
  t.model.(v - 1) = 1

let simplify t =
  backtrack t 0;
  attach_pending t;
  if (not t.unsat) && propagate t >= 0 then begin
    t.unsat <- true;
    t.proof <- [||] :: t.proof
  end;
  if t.unsat then `Unsat
  else `Fixed (List.init t.trail_len (fun i -> dimacs_of_lit t.trail.(i)))

(* --- DRUP certification ---------------------------------------------------- *)

(* An independent propagator over plain clause lists: no watches, no
   sharing with the solver's state.  For each proof step, assume the
   negation of the learned clause and propagate to a conflict using the
   database accumulated so far (originals first, then earlier learned
   clauses).  Work is counted in clause-literal visits against
   [budget]. *)
let certify_unsat ?(budget = 200_000_000) t =
  if not t.unsat then Error "certify_unsat: last verdict was not UNSAT"
  else begin
    let db = ref (Array.of_list (List.rev t.originals)) in
    let db_len = ref (Array.length !db) in
    let steps = List.rev t.proof in
    (* occurrence lists, extended as learned clauses are accepted *)
    let nlits = 2 * max 1 t.nvars in
    let occ = Array.make nlits [] in
    let add_occ ci c = Array.iter (fun l -> occ.(l) <- ci :: occ.(l)) c in
    Array.iteri add_occ !db;
    let push_db c =
      if !db_len >= Array.length !db then db := grow_arr !db (max 16 (2 * !db_len));
      !db.(!db_len) <- c;
      add_occ !db_len c;
      incr db_len
    in
    (* epoch-stamped assignment: valid iff stamp = epoch *)
    let stamp = Array.make (max 1 t.nvars) 0 in
    let va = Array.make (max 1 t.nvars) 0 in
    let epoch = ref 0 in
    let work = ref 0 in
    let lv l =
      let v = l lsr 1 in
      if stamp.(v) <> !epoch then -1 else va.(v) lxor (l land 1)
    in
    let set_true l =
      let v = l lsr 1 in
      stamp.(v) <- !epoch;
      va.(v) <- (l land 1) lxor 1
    in
    let exception Conflict in
    let exception Out_of_budget in
    (* Returns true iff propagation reaches a conflict. *)
    let rup assumption =
      incr epoch;
      let queue = Queue.create () in
      try
        (* assume the negation of every literal of the step *)
        Array.iter
          (fun l ->
            let nl = l lxor 1 in
            match lv nl with
            | 0 -> raise Conflict
            | 1 -> ()
            | _ ->
                set_true nl;
                Queue.push nl queue)
          assumption;
        (* seed with the database's unit (and empty) clauses *)
        for ci = 0 to !db_len - 1 do
          let c = !db.(ci) in
          match Array.length c with
          | 0 -> raise Conflict
          | 1 -> (
              incr work;
              match lv c.(0) with
              | 0 -> raise Conflict
              | 1 -> ()
              | _ ->
                  set_true c.(0);
                  Queue.push c.(0) queue)
          | _ -> ()
        done;
        while not (Queue.is_empty queue) do
          let l = Queue.pop queue in
          let falsified = l lxor 1 in
          List.iter
            (fun ci ->
              let c = !db.(ci) in
              work := !work + Array.length c;
              if !work > budget then raise Out_of_budget;
              (* scan for satisfied / unassigned literals *)
              let unassigned = ref (-1) in
              let n_unassigned = ref 0 in
              let satisfied = ref false in
              Array.iter
                (fun m ->
                  if not !satisfied then
                    match lv m with
                    | 1 -> satisfied := true
                    | -1 ->
                        incr n_unassigned;
                        unassigned := m
                    | _ -> ())
                c;
              if not !satisfied then
                if !n_unassigned = 0 then raise Conflict
                else if !n_unassigned = 1 && lv !unassigned < 0 then begin
                  set_true !unassigned;
                  Queue.push !unassigned queue
                end)
            occ.(falsified)
        done;
        false
      with
      | Conflict -> true
      | Out_of_budget -> raise Out_of_budget
    in
    try
      let rec go i = function
        | [] -> Error "certify_unsat: proof log is empty"
        | [ last ] ->
            if Array.length last <> 0 then
              Error "certify_unsat: proof does not end with the empty clause"
            else if rup last then Ok ()
            else Error "certify_unsat: final conflict is not implied by unit propagation"
        | c :: rest ->
            if rup c then begin
              push_db c;
              go (i + 1) rest
            end
            else Error (Printf.sprintf "certify_unsat: proof step %d is not RUP" i)
      in
      go 0 steps
    with Out_of_budget -> Error "certify_unsat: certification budget exceeded"
  end
