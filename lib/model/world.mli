(** The "world" an execution runs against.

    The probe model of Section 2.2 does not care whether queries are
    answered by a fixed labeled graph or by an adversary that invents the
    graph on the fly — lower-bound arguments such as the process P of
    Proposition 3.13 exploit exactly this.  A [World.t] is therefore an
    abstract query-answering service; {!of_graph} wraps a concrete
    labeled graph, while adversaries implement the record directly.

    An execution starts by calling {!start}, which fixes the origin node
    and returns a session; all queries of that execution go through the
    session.  Sessions of adversarial worlds are typically stateful.

    {b Laziness.}  {!of_graph} sessions answer [dist] with an
    {e incremental} BFS: the frontier expands only as far as the largest
    distance actually demanded, so a probe run costs Θ(ball · Δ) rather
    than the Θ(n) of a full-graph BFS.  The BFS state lives in
    epoch-stamped scratch arrays pooled per domain and reused across
    sessions; distances returned are bit-identical to an eager full BFS
    (unreachable nodes report [max_int]).  {!of_graph_eager} keeps the
    eager behavior for differential testing.

    {b Thread-safety contract.}  A [t] destined for the parallel runner
    ({!Vc_measure.Runner.measure} with [?pool]) must be shareable across
    domains: [start] may be called concurrently, and the sessions it
    returns must not communicate through shared mutable state.  The
    {!of_graph} worlds satisfy this — {!Vc_graph.Graph.t} is immutable
    after construction and BFS scratch is domain-local
    ([Domain.DLS]-pooled, never shared between domains).  A {e session}
    is never shareable: it belongs to the single execution (and domain)
    that started it.  On one domain, sessions may be interleaved: a
    session whose pooled scratch has been claimed by a younger session
    transparently falls back to a private scratch and replays its BFS,
    so correctness never depends on session discipline.  Stateful
    adversarial worlds (e.g. {!Volcomp.Adversary_leaf.world_internal},
    or the communication-counting worlds of {!Vc_commcc}) violate the
    [t] contract by design and must be driven sequentially. *)

type 'i session = {
  view : Vc_graph.Graph.node -> 'i View.t;
      (** View of a node that has already been revealed to this
          execution (the origin, or the result of an earlier
          [resolve]). *)
  resolve : Vc_graph.Graph.node -> port:int -> Vc_graph.Graph.node;
      (** Answer [query(w, j)].  Precondition (enforced by the
          executor, not the world): [w] was revealed earlier and
          [1 <= j <= degree w].  Returns the node on the other side. *)
  dist : Vc_graph.Graph.node -> int;
      (** Graph distance from the execution's origin to a revealed node,
          used for DIST cost accounting (Definition 2.1).  Adversarial
          worlds report distances in the graph built so far; for the
          pendant-growth adversaries of the paper these distances are
          already final. *)
}

type 'i t = {
  n : int;  (** the number of nodes, given to every algorithm as input *)
  max_degree : int;
      (** an upper bound on node degrees, used by the executor to pack
          [(node, port)] pairs into integer keys; graph-backed worlds
          report the true Δ, adversarial worlds any sound bound *)
  start : Vc_graph.Graph.node -> 'i session;
}

val of_graph : Vc_graph.Graph.t -> input:(Vc_graph.Graph.node -> 'i) -> 'i t
(** The standard world: a fixed graph with a fixed input labeling.
    Distances are answered by an incremental per-session BFS that stops
    at the largest distance demanded. *)

val of_graph_claiming :
  n:int -> Vc_graph.Graph.t -> input:(Vc_graph.Graph.node -> 'i) -> 'i t
(** Like {!of_graph} but reports [n] instead of the true node count —
    used by experiments that embed a small gadget in a nominally larger
    instance. *)

val of_graph_eager : Vc_graph.Graph.t -> input:(Vc_graph.Graph.node -> 'i) -> 'i t
(** Like {!of_graph} but each session runs one full-graph BFS up front,
    exactly as the pre-lazy implementation did.  Kept for differential
    testing: any observable divergence from {!of_graph} is a bug. *)

val of_graph_eager_claiming :
  n:int -> Vc_graph.Graph.t -> input:(Vc_graph.Graph.node -> 'i) -> 'i t
(** Eager variant of {!of_graph_claiming}. *)
