(** 3-coloring of consistently oriented cycles: the class-B
    ("symmetry breaking") reference problem for Figures 1–2.

    Cole–Vishkin color reduction [15]: starting from the unique
    identifiers, each round replaces a node's color by the position of
    the lowest bit in which it differs from its predecessor's color
    (plus that bit), shrinking the palette from [K] to [O(log K)];
    after Θ(log* n) rounds six colors remain, and three final
    conflict-resolution rounds reach three colors.  A node's output
    depends only on the identifiers within distance O(log* n), so both
    distance and volume are Θ(log* n) — the paper's class B, where
    distance and volume complexities agree (Section 1.2, citing Even et
    al. [17] for the volume side). *)

val problem : (unit, int) Vc_lcl.Lcl.t
(** Proper 3-coloring with colors {0, 1, 2}; radius 1. *)

val solve : (unit, int) Vc_lcl.Lcl.solver
(** Deterministic Cole–Vishkin on cycles built by
    {!Vc_graph.Builder.cycle} (port 1 = successor, port 2 =
    predecessor). *)

val solvers : (unit, int) Vc_lcl.Lcl.solver list
(** All conformance-tested solvers of the problem ([[solve]]). *)

val world : Vc_graph.Graph.t -> unit Vc_model.World.t

val rounds_needed : n:int -> int
(** The number of reduction rounds the solver will use for an [n]-node
    cycle: Θ(log* n).  Exposed so experiments can plot the predicted
    radius against the measured cost. *)

val reduce : own:int -> pred:int -> int
(** One Cole–Vishkin reduction step: encode the lowest bit position in
    which [own] differs from [pred], plus that bit.  Exposed so the IR
    port of the solver ({!Vc_ir.Library}) shares the exact reduction the
    closure uses. *)
