(* Tests for LeafColoring (paper Section 3): checker, both solvers, the
   hard instances and the interactive deterministic-volume adversary. *)

module TL = Vc_graph.Tree_labels
module Graph = Vc_graph.Graph
module Probe = Vc_model.Probe
module Lcl = Vc_lcl.Lcl
module LC = Volcomp.Leaf_coloring
module Adv = Volcomp.Adversary_leaf
module Randomness = Vc_rng.Randomness

let color_t = Alcotest.testable TL.pp_color TL.equal_color

(* Solve an instance by running a solver from every node. *)
let solve_all ?randomness inst (solver : (LC.node_input, TL.color) Lcl.solver) =
  let world = LC.world inst in
  let n = Graph.n inst.LC.graph in
  let costs = ref [] in
  let out =
    Array.init n (fun v ->
        let r = Probe.run ~world ?randomness ~origin:v solver.Lcl.solve in
        costs := r :: !costs;
        match r.Probe.output with Some c -> c | None -> Alcotest.fail "solver aborted")
  in
  (out, !costs)

let check_valid inst out =
  match Lcl.check LC.problem inst.LC.graph ~input:(LC.input inst) ~output:(fun v -> out.(v)) with
  | Ok () -> ()
  | Error vs ->
      Alcotest.failf "invalid output: %a" Fmt.(list ~sep:comma Lcl.pp_violation) vs

let rand_for inst seed =
  Randomness.create ~seed ~n:(Graph.n inst.LC.graph) ()

(* --- checker ----------------------------------------------------------- *)

let test_checker_accepts_forced () =
  let inst = LC.hard_distance_instance ~depth:4 ~leaf_color:TL.Blue in
  match LC.unique_valid_output inst with
  | None -> Alcotest.fail "complete tree should have forced output"
  | Some out ->
      check_valid inst out;
      Alcotest.check color_t "root forced to leaf color" TL.Blue out.(0)

let test_checker_rejects_wrong_root () =
  let inst = LC.hard_distance_instance ~depth:3 ~leaf_color:TL.Blue in
  match LC.unique_valid_output inst with
  | None -> Alcotest.fail "forced output expected"
  | Some out ->
      let out' = Array.copy out in
      out'.(0) <- TL.Red;
      Alcotest.(check bool) "rejected" false
        (Lcl.is_valid LC.problem inst.LC.graph ~input:(LC.input inst)
           ~output:(fun v -> out'.(v)))

let test_checker_rejects_lying_leaf () =
  let inst = LC.hard_distance_instance ~depth:2 ~leaf_color:TL.Blue in
  match LC.unique_valid_output inst with
  | None -> Alcotest.fail "forced output expected"
  | Some out ->
      let leaf = 6 in
      Alcotest.(check int) "leaf degree" 1 (Graph.degree inst.LC.graph leaf);
      let out' = Array.copy out in
      out'.(leaf) <- TL.Red;
      Alcotest.(check bool) "rejected" false
        (Lcl.is_valid LC.problem inst.LC.graph ~input:(LC.input inst)
           ~output:(fun v -> out'.(v)))

let test_inconsistent_nodes_echo () =
  let inst = LC.figure4_instance in
  let out, _ = solve_all inst LC.solve_distance in
  check_valid inst out

(* --- deterministic distance solver (Prop 3.9) --------------------------- *)

let test_solve_distance_random_instances () =
  List.iter
    (fun seed ->
      let inst = LC.random_instance ~n:129 ~seed in
      let out, _ = solve_all inst LC.solve_distance in
      check_valid inst out)
    [ 1L; 2L; 3L; 4L; 5L ]

let test_solve_distance_cycle_instance () =
  let inst = LC.cycle_instance ~cycle_len:17 ~seed:7L in
  let out, _ = solve_all inst LC.solve_distance in
  check_valid inst out

let test_solve_distance_cost_logarithmic () =
  let inst = LC.hard_distance_instance ~depth:9 ~leaf_color:TL.Blue in
  let n = Graph.n inst.LC.graph in
  let _, costs = solve_all inst LC.solve_distance in
  let logn = Volcomp.Probe_tree.log2_ceil n in
  List.iter
    (fun (r : TL.color Probe.result) ->
      Alcotest.(check bool) "distance O(log n)" true (r.Probe.distance <= logn + 2))
    costs

(* --- randomized random-walk solver (Alg 1) ------------------------------ *)

let test_random_walk_valid_on_trees () =
  List.iter
    (fun seed ->
      let inst = LC.random_instance ~n:201 ~seed in
      let rand = rand_for inst (Int64.add seed 100L) in
      let out, _ = solve_all ~randomness:rand inst LC.solve_random_walk in
      check_valid inst out)
    [ 11L; 12L; 13L ]

let test_random_walk_valid_on_cycles () =
  List.iter
    (fun seed ->
      let inst = LC.cycle_instance ~cycle_len:33 ~seed in
      let rand = rand_for inst (Int64.add seed 500L) in
      let out, _ = solve_all ~randomness:rand inst LC.solve_random_walk in
      check_valid inst out)
    [ 21L; 22L; 23L ]

let test_random_walk_volume_logarithmic () =
  (* On a complete binary tree, RWtoLeaf reaches a leaf in exactly
     depth steps, so volume is O(log n) deterministically here; on
     random trees it is O(log n) w.h.p. — checked with a generous
     constant over many seeds. *)
  let inst = LC.random_instance ~n:1025 ~seed:31L in
  let n = Graph.n inst.LC.graph in
  let logn = Volcomp.Probe_tree.log2_ceil n in
  let rand = rand_for inst 32L in
  let _, costs = solve_all ~randomness:rand inst LC.solve_random_walk in
  let worst = List.fold_left (fun acc (r : TL.color Probe.result) -> max acc r.Probe.volume) 0 costs in
  Alcotest.(check bool)
    (Printf.sprintf "worst volume %d <= 64 log n (%d)" worst (64 * logn))
    true
    (worst <= 64 * logn)

let test_random_walk_agreement_along_path () =
  (* All walks started anywhere in a tree component must settle on one
     leaf color per G_T path: validity of the assembled output captures
     exactly that, so this is the integration check on a deep instance. *)
  let inst = LC.random_instance ~n:511 ~seed:41L in
  let rand = rand_for inst 42L in
  let out, _ = solve_all ~randomness:rand inst LC.solve_random_walk in
  check_valid inst out

let test_random_walk_no_flip_fails_on_cycles () =
  (* Ablation: without the revisit flip, when every cycle node's bit
     points along the cycle the walk rotates forever (it gets
     step-capped and outputs junk).  The trap event has probability
     2^-cycle_len per randomness seed, so use a short cycle, colors that
     make any trapped output invalid (alternating colors on the cycle,
     anti-parent colors on the leaves), and scan seeds until the trap is
     hit.  The flipped variant must stay valid on the very same seeds. *)
  let cycle_len = 4 in
  let inst = LC.cycle_instance ~cycle_len ~seed:3L in
  Array.iteri
    (fun v _ ->
      if v < cycle_len then inst.LC.colors.(v) <- (if v mod 2 = 0 then TL.Red else TL.Blue)
      else inst.LC.colors.(v) <- TL.flip_color inst.LC.colors.(v - cycle_len))
    inst.LC.colors;
  let valid_under solver seed =
    let rand = rand_for inst (Int64.of_int seed) in
    let out, _ = solve_all ~randomness:rand inst solver in
    Lcl.is_valid LC.problem inst.LC.graph ~input:(LC.input inst) ~output:(fun v -> out.(v))
  in
  let rec find_failure seed =
    if seed > 500 then None
    else if not (valid_under LC.solve_random_walk_no_flip seed) then Some seed
    else find_failure (seed + 1)
  in
  match find_failure 1 with
  | None -> Alcotest.fail "no-flip variant never trapped in 500 seeds"
  | Some seed ->
      Alcotest.(check bool) "flip rule repairs the same seed" true
        (valid_under LC.solve_random_walk seed)

(* --- Proposition 3.12: distance lower bound ------------------------------ *)

let test_distance_lower_bound () =
  (* A distance-(k-1) algorithm at the root cannot see any leaf, so its
     output is independent of the leaf color: it must fail on one of the
     two instances. *)
  let depth = 6 in
  let run leaf_color =
    let inst = LC.hard_distance_instance ~depth ~leaf_color in
    let world = LC.world inst in
    let r =
      Probe.run ~world ~budget:(Probe.distance_budget (depth - 1)) ~origin:0
        LC.solve_distance.Lcl.solve
    in
    (* An aborted run models "truncate and output arbitrarily": fix Red. *)
    match r.Probe.output with Some c -> c | None -> TL.Red
  in
  let on_blue = run TL.Blue and on_red = run TL.Red in
  Alcotest.check color_t "output independent of leaf color" on_blue on_red;
  Alcotest.(check bool) "hence fails on one instance" true
    (not (TL.equal_color on_blue TL.Blue) || not (TL.equal_color on_red TL.Red))

let test_full_distance_solver_sees_leaves () =
  let depth = 6 in
  List.iter
    (fun leaf_color ->
      let inst = LC.hard_distance_instance ~depth ~leaf_color in
      let out, _ = solve_all inst LC.solve_distance in
      check_valid inst out;
      Alcotest.check color_t "root echoes leaf color" leaf_color out.(0))
    [ TL.Red; TL.Blue ]

(* --- Proposition 3.13: the interactive adversary ------------------------- *)

(* A deterministic algorithm that gives up quickly: classify the origin;
   if internal, look a couple of levels down and output the majority
   input color seen. *)
let impatient_solver =
  Lcl.solver ~name:"impatient" ~randomized:false (fun ctx ->
      let v0 = Probe.origin ctx in
      match Volcomp.Probe_tree.status ~pointers:LC.pointers ctx v0 with
      | TL.Leaf | TL.Inconsistent -> (Probe.input ctx v0).LC.color
      | TL.Internal -> (
          match Volcomp.Probe_tree.children ~pointers:LC.pointers ctx v0 with
          | None -> (Probe.input ctx v0).LC.color
          | Some (lc, _) -> (Probe.input ctx lc).LC.color))

let test_adversary_fools_impatient () =
  match Adv.duel ~claimed_n:300 impatient_solver with
  | Adv.Survived _ -> Alcotest.fail "impatient solver should be fooled"
  | Adv.Fooled { algorithm_output; forced_output; instance; _ } ->
      Alcotest.(check bool) "output differs from forced" false
        (TL.equal_color algorithm_output forced_output);
      (* The completed instance must itself be a well-formed LeafColoring
         instance whose forced output is consistent. *)
      let inst = instance in
      (match LC.unique_valid_output inst with
      | None -> Alcotest.fail "completed instance must have forced output"
      | Some out -> check_valid inst out)

let test_adversary_cannot_fool_thorough () =
  (* The honest solver keeps digging for a leaf; within the n/3 query
     budget the adversary can only answer with more internal nodes, so
     the solver exceeds the budget: Survived, never Fooled. *)
  match Adv.duel ~claimed_n:300 LC.solve_distance with
  | Adv.Survived { volume } -> Alcotest.(check bool) "paid >= n/3 volume" true (volume >= 100)
  | Adv.Fooled _ -> Alcotest.fail "honest solver must not be fooled below n/3 volume"

let test_adversary_rejects_randomized () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Adv.duel ~claimed_n:100 LC.solve_random_walk);
       false
     with Invalid_argument _ -> true)

let test_adversary_instance_size_bounded () =
  match Adv.duel ~claimed_n:300 impatient_solver with
  | Adv.Survived _ -> Alcotest.fail "expected Fooled"
  | Adv.Fooled { instance; _ } ->
      Alcotest.(check bool) "completed instance fits the claim" true
        (Graph.n instance.LC.graph <= 300)

(* --- properties ---------------------------------------------------------- *)

let prop_both_solvers_agree_with_checker =
  QCheck.Test.make ~name:"leafcoloring: both solvers valid on random instances" ~count:15
    QCheck.(int_range 9 120)
    (fun n ->
      let seed = Int64.of_int (n * 31) in
      let inst = LC.random_instance ~n ~seed in
      let out_d, _ = solve_all inst LC.solve_distance in
      let rand = rand_for inst (Int64.of_int ((n * 7) + 1)) in
      let out_r, _ = solve_all ~randomness:rand inst LC.solve_random_walk in
      Lcl.is_valid LC.problem inst.LC.graph ~input:(LC.input inst) ~output:(fun v -> out_d.(v))
      && Lcl.is_valid LC.problem inst.LC.graph ~input:(LC.input inst) ~output:(fun v ->
             out_r.(v)))

let prop_dist_le_vol =
  QCheck.Test.make ~name:"leafcoloring: DIST <= VOL on every run (Lemma 2.5)" ~count:10
    QCheck.(int_range 9 80)
    (fun n ->
      let inst = LC.random_instance ~n ~seed:(Int64.of_int n) in
      let world = LC.world inst in
      Graph.fold_nodes inst.LC.graph ~init:true ~f:(fun acc v ->
          let r = Probe.run ~world ~origin:v LC.solve_distance.Lcl.solve in
          acc && r.Probe.distance <= r.Probe.volume))

let suites =
  [
    ( "leafcoloring:checker",
      [
        Alcotest.test_case "accepts forced output" `Quick test_checker_accepts_forced;
        Alcotest.test_case "rejects wrong root" `Quick test_checker_rejects_wrong_root;
        Alcotest.test_case "rejects lying leaf" `Quick test_checker_rejects_lying_leaf;
        Alcotest.test_case "figure-4 style instance" `Quick test_inconsistent_nodes_echo;
      ] );
    ( "leafcoloring:solve-distance",
      [
        Alcotest.test_case "random instances" `Quick test_solve_distance_random_instances;
        Alcotest.test_case "cycle instance" `Quick test_solve_distance_cycle_instance;
        Alcotest.test_case "distance O(log n)" `Quick test_solve_distance_cost_logarithmic;
        Alcotest.test_case "sees leaves at full radius" `Quick test_full_distance_solver_sees_leaves;
      ] );
    ( "leafcoloring:random-walk",
      [
        Alcotest.test_case "valid on trees" `Quick test_random_walk_valid_on_trees;
        Alcotest.test_case "valid on cycles" `Quick test_random_walk_valid_on_cycles;
        Alcotest.test_case "volume O(log n)" `Slow test_random_walk_volume_logarithmic;
        Alcotest.test_case "agreement along paths" `Quick test_random_walk_agreement_along_path;
        Alcotest.test_case "no-flip ablation fails" `Quick test_random_walk_no_flip_fails_on_cycles;
      ] );
    ( "leafcoloring:lower-bounds",
      [
        Alcotest.test_case "Prop 3.12 distance bound" `Quick test_distance_lower_bound;
        Alcotest.test_case "adversary fools impatient" `Quick test_adversary_fools_impatient;
        Alcotest.test_case "adversary vs thorough" `Quick test_adversary_cannot_fool_thorough;
        Alcotest.test_case "adversary rejects randomized" `Quick test_adversary_rejects_randomized;
        Alcotest.test_case "completed instance bounded" `Quick test_adversary_instance_size_bounded;
      ] );
    ( "leafcoloring:properties",
      [
        QCheck_alcotest.to_alcotest prop_both_solvers_agree_with_checker;
        QCheck_alcotest.to_alcotest prop_dist_le_vol;
      ] );
  ]
