lib/core/balanced_tree.ml: Array Fmt Hashtbl List Probe_tree Vc_commcc Vc_graph Vc_lcl Vc_model
