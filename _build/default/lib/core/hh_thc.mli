(** Hierarchical-or-hybrid 2½-coloring, HH-THC(k, ℓ) (paper Section 6.1).

    Every node carries one extra input bit.  Nodes with bit 0 must solve
    Hierarchical-THC(ℓ) (their explicit input level is ignored; levels
    are recomputed from the right-child chains); nodes with bit 1 must
    solve Hybrid-THC(k).  Since the two subproblems live on the induced
    subgraphs, a solver simply dispatches on its own bit, and each
    complexity measure of HH-THC(k, ℓ) is the max of the two sides
    (Theorem 6.5): for k ≤ ℓ,

    - R-DIST = D-DIST = Θ(n^{1/ℓ})  (dominated by the bit-0 side),
    - R-VOL = Θ̃(n^{1/k})            (dominated by the bit-1 side),
    - D-VOL = Θ̃(n). *)

module TL = Vc_graph.Tree_labels
module Graph = Vc_graph.Graph

type node_input = {
  hy : Hybrid_thc.node_input;
  bit : bool;  (** [false] = solve Hierarchical-THC(ℓ); [true] = Hybrid-THC(k) *)
}

type output = Hybrid_thc.output
(** Bit-0 nodes use the [Sym] constructor only. *)

type instance = {
  graph : Graph.t;
  labels : node_input array;
  k : int;  (** Hybrid side parameter *)
  l : int;  (** Hierarchical side parameter; [k <= l] *)
}

val input : instance -> Graph.node -> node_input
val world : instance -> node_input Vc_model.World.t

val problem : k:int -> l:int -> (node_input, output) Vc_lcl.Lcl.t
(** Definition 6.4: validity of each induced subgraph under its own
    problem.  Pointers crossing the bit boundary are masked, mirroring
    the induced-subgraph semantics. *)

val mixed_instance :
  hier:Hierarchical_thc.instance -> hybrid:Hybrid_thc.instance -> instance
(** Disjoint union: the hierarchical instance's nodes get bit 0, the
    hybrid instance's nodes bit 1.
    @raise Invalid_argument unless [hier.k >= hybrid.k] (i.e. ℓ ≥ k). *)

val uniform_instance : k:int -> l:int -> size_hint:int -> seed:int64 -> instance
(** A mixed instance with a uniform Hierarchical-THC(ℓ) side and a
    uniform Hybrid-THC(k) side, each roughly [size_hint/2] nodes. *)

val solve_distance : k:int -> l:int -> (node_input, output) Vc_lcl.Lcl.solver
(** Deterministic dispatch: bit 0 runs Algorithm 2 (distance Θ(n^{1/ℓ})),
    bit 1 runs the all-exempt strategy (distance Θ(log n)). *)

val solve_volume_deterministic : k:int -> l:int -> (node_input, output) Vc_lcl.Lcl.solver

val solve_volume_waypoint :
  k:int -> l:int -> ?c:float -> unit -> (node_input, output) Vc_lcl.Lcl.solver
(** Randomized dispatch: volume Õ(n^{1/k}) overall. *)

val solvers : k:int -> l:int -> (node_input, output) Vc_lcl.Lcl.solver list
