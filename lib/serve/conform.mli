(** The oracle's seventh probe: serving-layer round-trip identity.

    [lib/check] cannot depend on this library (the handler serves
    registry trials), so the probe lives here and the CLI injects it via
    {!Vc_check.Oracle.run}'s [?serve] argument. *)

val probe : Vc_check.Registry.entry -> size:int -> seed:int64 -> (unit, string) result
(** Round-trip one trial's queries through the {e full} wire path —
    {!Protocol.request_to_json}, framing, the incremental decoder,
    request parsing, {!Handler.handle}, reply encoding, reply parsing —
    and compare every payload byte-for-byte against direct in-process
    computation on an identically-built trial: [solve] once, [probe] and
    [trace] from three origins (first, middle, last node).  Also checks
    that an unknown problem and an out-of-range origin come back as the
    structured [unknown_problem] / [bad_origin] errors.  [Error]
    describes the first divergence. *)
