module Metrics = Vc_obs.Metrics
module Iarr = Vc_graph.Iarr

(* Metrics live under the serving namespace: the store's hit/miss/load
   behaviour is what `serve stats` reports to operators. *)
let hits_c = Metrics.counter "serve.snap.hits"
let misses_c = Metrics.counter "serve.snap.misses"
let published_c = Metrics.counter "serve.snap.published"
let errors_c = Metrics.counter "serve.snap.errors"
let load_h = Metrics.histogram "serve.snap.load_us"

type t = {
  dir : string;
  builder_version : string;
}

let rec mkdir_p dir =
  if dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ~dir ~builder_version =
  mkdir_p dir;
  { dir; builder_version }

let dir t = t.dir
let builder_version t = t.builder_version

(* Content-addressed filename: a readable problem slug plus the FNV-1a
   of the full key.  The hash alone would suffice for correctness (the
   loaded header is re-checked against the key anyway); the slug is for
   humans running `volcomp snap ls`. *)
let slug problem =
  String.init (String.length problem) (fun i ->
      match problem.[i] with
      | ('a' .. 'z' | '0' .. '9') as c -> c
      | 'A' .. 'Z' -> Char.lowercase_ascii problem.[i]
      | _ -> '-')

let key_string t ~problem ~size ~seed =
  Fmt.str "%s\x00%d\x00%Ld\x00%s" problem size seed t.builder_version

let filename t ~problem ~size ~seed =
  Fmt.str "%s-%d-%016Lx.snap" (slug problem) size
    (Snap.fnv_string (key_string t ~problem ~size ~seed))

let path t ~problem ~size ~seed = Filename.concat t.dir (filename t ~problem ~size ~seed)

let now_us () = Unix.gettimeofday () *. 1e6

(* A loaded snapshot counts as a hit only if its header matches the
   requested key exactly — a filename hash collision or a stale
   builder-version file is a miss, never a wrong answer. *)
let load t ~problem ~size ~seed =
  let p = path t ~problem ~size ~seed in
  if not (Sys.file_exists p) then begin
    Metrics.incr misses_c;
    None
  end
  else begin
    let t0 = now_us () in
    match Snap.load ~path:p with
    | Ok l
      when l.Snap.hdr.Snap.problem = problem
           && l.Snap.hdr.Snap.size = size
           && l.Snap.hdr.Snap.seed = seed
           && l.Snap.hdr.Snap.builder_version = t.builder_version ->
        Metrics.incr hits_c;
        Metrics.observe load_h (int_of_float (Float.max 0. (now_us () -. t0)));
        Some l
    | Ok _ ->
        Metrics.incr misses_c;
        None
    | Error _ ->
        Metrics.incr errors_c;
        Metrics.incr misses_c;
        None
  end

(* Atomic publish: write to a unique temp file in the same directory,
   then rename over the final name.  Readers either see the old file or
   the complete new one; concurrent publishers race benignly (same key,
   same bytes).  Best-effort by design — a full disk must not fail the
   build that was going to happen anyway. *)
let publish t ~problem ~size ~seed ~n ~segments =
  let final = path t ~problem ~size ~seed in
  let tmp = Fmt.str "%s.tmp.%d" final (Unix.getpid ()) in
  match
    Snap.write ~path:tmp ~builder_version:t.builder_version ~problem ~size ~seed ~n ~segments
  with
  | Ok () -> (
      match Unix.rename tmp final with
      | () ->
          Metrics.incr published_c;
          true
      | exception Unix.Unix_error _ ->
          (try Sys.remove tmp with Sys_error _ -> ());
          false)
  | Error _ ->
      (try Sys.remove tmp with Sys_error _ -> ());
      false

let files t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> []
  | entries ->
      Array.to_list entries
      |> List.filter (fun f -> Filename.check_suffix f ".snap")
      |> List.sort String.compare
      |> List.map (Filename.concat t.dir)
