module Graph = Vc_graph.Graph
module Builder = Vc_graph.Builder
module TL = Vc_graph.Tree_labels
module Splitmix = Vc_rng.Splitmix
module Randomness = Vc_rng.Randomness
module World = Vc_model.World
module Probe = Vc_model.Probe
module Lcl = Vc_lcl.Lcl
module Runner = Vc_measure.Runner
module Pool = Vc_exec.Pool
module Trace = Vc_obs.Trace
module Ir = Vc_ir.Ir
module Ir_exec = Vc_ir.Exec
module Ir_lib = Vc_ir.Library
module TR = Volcomp.Trivial_lcl
module CC = Volcomp.Cycle_coloring
module SO = Volcomp.Sinkless
module LC = Volcomp.Leaf_coloring
module LCC = Volcomp.Leaf_coloring_congest
module PL = Volcomp.Promise_leaf
module BT = Volcomp.Balanced_tree
module BTC = Volcomp.Balanced_tree_congest
module H = Volcomp.Hierarchical_thc
module Hy = Volcomp.Hybrid_thc
module HH = Volcomp.Hh_thc
module Gap = Volcomp.Gap_example
module Family = Vc_family.Family
module F4 = Vc_family.Coloring4
module FM = Vc_family.Matching
module FI = Vc_family.Mis
module Snap = Vc_snap.Snap
module Store = Vc_snap.Store
module Iarr = Vc_graph.Iarr

type solver_outcome = {
  solver : string;
  randomized : bool;
  stats : Runner.stats;
  valid : bool;
}

type probe_summary = {
  pr_solver : string;
  pr_volume : int;
  pr_distance : int;
  pr_queries : int;
  pr_rand_bits : int;
  pr_aborted : bool;
  pr_output : int;
}

type trial = {
  t_n : int;
  t_source : [ `Built | `Snapshot ];
  run_solvers : ?pool:Pool.t -> unit -> solver_outcome list;
  probe_origin :
    ?trace:Vc_obs.Trace.sink -> origin:int -> unit -> (probe_summary, string) result;
  merge_consistency : widths:int list -> (unit, string) result;
  cross_model : (string * (unit -> (unit, string) result)) list;
  lazy_vs_eager : unit -> (unit, string) result;
  ir_vs_closure : (unit -> (unit, string) result) option;
  mutate : Splitmix.t -> Mutate.outcome list;
  trace_record : path:string -> header:Vc_obs.Json.t -> origin:int -> (unit, string) result;
  trace_replay : events:Trace.event list -> origin:int -> (unit, string) result;
  trace_roundtrip : unit -> (unit, string) result;
}

type entry = {
  name : string;
  family : string;
  radius : int;
  sizes : int list;
  quick_sizes : int list;
  ir : bool;
  make : ?store:Store.t -> size:int -> seed:int64 -> unit -> trial;
  acquire : ?store:Store.t -> size:int -> seed:int64 -> unit -> int;
}

(* --- shared helpers ------------------------------------------------------ *)

let assemble outputs =
  let missing = Array.fold_left (fun c o -> if o = None then c + 1 else c) 0 outputs in
  if missing > 0 then Error (Fmt.str "%d of %d nodes undecided" missing (Array.length outputs))
  else Ok (Array.map (function Some o -> o | None -> assert false) outputs)

let first_violation = function
  | v :: _ -> Fmt.str "%a" Lcl.pp_violation v
  | [] -> "invalid (no violation record)"

let congest_check ~problem ~graph ~input (result : _ Vc_model.Congest.result) =
  match assemble result.Vc_model.Congest.outputs with
  | Error e -> Error ("congest: " ^ e)
  | Ok out -> (
      match Lcl.check problem graph ~input ~output:(fun v -> out.(v)) with
      | Ok () -> Ok ()
      | Error vs -> Error ("congest output invalid: " ^ first_violation vs))

let pick rng = function
  | [] -> None
  | xs -> Some (List.nth xs (Splitmix.int rng ~bound:(List.length xs)))

let nodes_where graph p = List.filter p (Graph.nodes graph)

(* A mutant that only touches the (already copied) output array. *)
let out_mutant site out = Some { Mutate.site; input = None; output = (fun v -> out.(v)) }

let any_node rng out = Splitmix.int rng ~bound:(Array.length out)

(* Package one concrete instance as a trial.  The reference output (the
   mutation fuzzer's starting point) is the first deterministic solver's,
   computed lazily once per trial; per-solver randomness is derived from
   the trial seed and the solver's position, so every probe is
   reproducible from the trial's (size, seed) alone. *)
let make_trial (type i o) ~(problem : (i, o) Lcl.t) ~graph ~(input : Graph.node -> i) ~world
    ~(solvers : (i, o) Lcl.solver list) ?(regime = Randomness.Private) ?(cross_model = []) ?ir
    ?(source = `Built)
    ~(mutants : (string * (Splitmix.t -> o array -> (i, o) Mutate.t option)) list) ~seed () :
    trial =
  let n = Graph.n graph in
  let randomness_for idx (s : _ Lcl.solver) =
    if s.Lcl.randomized then
      Some (Randomness.create ~regime ~seed:(Int64.add seed (Int64.of_int (1 + idx))) ~n ())
    else None
  in
  let run_solvers ?pool () =
    List.mapi
      (fun idx s ->
        let stats, valid =
          Runner.solve_and_check ~world ~problem ~graph ~input ~solver:s
            ?randomness:(randomness_for idx s) ?pool ()
        in
        { solver = s.Lcl.solver_name; randomized = s.Lcl.randomized; stats; valid })
      solvers
  in
  let ref_solver =
    match List.find_opt (fun s -> not s.Lcl.randomized) solvers with
    | Some s -> s
    | None -> List.hd solvers
  in
  let merge_consistency ~widths =
    let run ?pool () =
      fst
        (Runner.solve_and_check ~world ~problem ~graph ~input ~solver:ref_solver
           ?randomness:(randomness_for 0 ref_solver) ?pool ())
    in
    let base = run () in
    List.fold_left
      (fun acc w ->
        match acc with
        | Error _ -> acc
        | Ok () ->
            let stats = Pool.with_pool ~domains:w (fun pool -> run ~pool ()) in
            if stats = base then Ok ()
            else
              Error
                (Fmt.str "%s: stats at pool width %d differ from sequential"
                   ref_solver.Lcl.solver_name w))
      (Ok ()) widths
  in
  let reference =
    lazy
      (let stats, outs =
         Runner.measure ~world ~solver:ref_solver ?randomness:(randomness_for 0 ref_solver)
           ~origins:(Graph.nodes graph) ()
       in
       if stats.Runner.aborted > 0 then Error "reference solver aborted"
       else
         let arr = Array.make n None in
         List.iter (fun (v, o) -> arr.(v) <- Some o) outs;
         match assemble arr with
         | Error e -> Error ("reference: " ^ e)
         | Ok out -> (
             match Lcl.check problem graph ~input ~output:(fun v -> out.(v)) with
             | Ok () -> Ok out
             | Error vs -> Error ("reference output invalid: " ^ first_violation vs)))
  in
  let mutate rng =
    match Lazy.force reference with
    | Error msg -> [ Mutate.reference_failure ~msg ]
    | Ok out ->
        List.filter_map
          (fun (kind, build) ->
            match build rng (Array.copy out) with
            | None -> None
            | Some m -> Some (Mutate.check ~problem ~graph ~input ~kind m))
          mutants
  in
  (* Differential probe: the lazy incremental-BFS world must be
     observationally identical to an eager full-BFS world — same output,
     volume, distance, queries, rand bits, abort flag — for every solver
     from every origin.  The eager twin claims the same [n] as the
     trial's world so budgets and [Probe.n] agree. *)
  let lazy_vs_eager () =
    let eager = World.of_graph_eager_claiming ~n:world.World.n graph ~input in
    let result = ref (Ok ()) in
    List.iteri
      (fun idx (s : _ Lcl.solver) ->
        if !result = Ok () then
          Graph.iter_nodes graph (fun origin ->
              if !result = Ok () then begin
                let probe w =
                  Probe.run ~world:w ?randomness:(randomness_for idx s) ~origin s.Lcl.solve
                in
                if probe world <> probe eager then
                  result :=
                    Error
                      (Fmt.str "%s: lazy and eager results diverge at origin %d"
                         s.Lcl.solver_name origin)
              end))
      solvers;
    !result
  in
  (* Probe 8: the IR port must reproduce the reference closure solver bit
     for bit — output and full cost envelope — from every origin, under
     the reference interpreter and the batched executor alike.  Budgeted
     passes pin down the abort envelope too: a truncated IR run must
     abort at exactly the same (volume, distance, queries) as the
     truncated closure. *)
  let ir_vs_closure =
    Option.map
      (fun (spec : (i, o) Ir.spec) () ->
        match Ir.validate_spec spec with
        | Error e -> Error ("program does not validate: " ^ e)
        | Ok () ->
            let origins = Array.init n (fun v -> v) in
            let check_budget acc budget =
              match acc with
              | Error _ -> acc
              | Ok () ->
                  let eff = Ir.effective_budget spec.Ir.program budget in
                  let batch =
                    Ir_exec.run_batch ~claimed_n:world.World.n ~budget spec ~graph ~input
                      ~origins
                  in
                  let result = ref (Ok ()) in
                  Array.iteri
                    (fun i origin ->
                      if !result = Ok () then begin
                        let closure =
                          Probe.run ~world ~budget:eff ~origin ref_solver.Lcl.solve
                        in
                        let interp = Ir_exec.run ~budget spec ~world ~origin in
                        if closure <> interp then
                          result :=
                            Error
                              (Fmt.str "interpreter diverges from %s at origin %d"
                                 ref_solver.Lcl.solver_name origin)
                        else if interp <> batch.(i) then
                          result :=
                            Error (Fmt.str "batched executor diverges at origin %d" origin)
                      end)
                    origins;
                  !result
            in
            List.fold_left check_budget (Ok ())
              [ Probe.unlimited; Probe.volume_budget 5; Probe.distance_budget 2 ])
      ir
  in
  (* Record/replay probes.  A fresh [Randomness] is built per run from
     the trial seed, so a recording run and its replay read identical
     random bits — the transcript must therefore match event for
     event. *)
  let reference_run ?trace origin =
    Probe.run ~world ?randomness:(randomness_for 0 ref_solver) ?trace ~origin
      ref_solver.Lcl.solve
  in
  (* One reference run from one origin, summarized — what the serving
     layer answers [probe] (and, with a ring sink, [trace]) requests
     with.  Deterministic: randomness derivation matches [run_solvers]. *)
  let probe_origin ?trace ~origin () =
    if origin < 0 || origin >= n then
      Error (Fmt.str "origin %d out of range (instance has %d nodes)" origin n)
    else
      let r = reference_run ?trace origin in
      Ok
        {
          pr_solver = ref_solver.Lcl.solver_name;
          pr_volume = r.Probe.volume;
          pr_distance = r.Probe.distance;
          pr_queries = r.Probe.queries;
          pr_rand_bits = r.Probe.rand_bits;
          pr_aborted = r.Probe.aborted;
          pr_output = Hashtbl.hash r.Probe.output;
        }
  in
  let trace_record ~path ~header ~origin =
    if origin < 0 || origin >= n then
      Error (Fmt.str "origin %d out of range (instance has %d nodes)" origin n)
    else begin
      let sink = Trace.to_file ~path ~header in
      Fun.protect
        ~finally:(fun () -> Trace.close sink)
        (fun () -> ignore (reference_run ~trace:sink origin : _ Probe.result));
      Ok ()
    end
  in
  let trace_replay ~events ~origin =
    if origin < 0 || origin >= n then
      Error (Fmt.str "origin %d out of range (instance has %d nodes)" origin n)
    else
      let sink = Trace.checking ~expect:events in
      match reference_run ~trace:sink origin with
      | (_ : _ Probe.result) -> Trace.checking_result sink
      | exception Trace.Replay_mismatch msg -> Error msg
  in
  (* Probe 6: for every solver from every origin, record a transcript,
     push every event through its JSONL encoding and back, then re-drive
     the run against the decoded transcript.  Both the event sequence and
     the final [Probe.result] must be bit-identical. *)
  let trace_roundtrip () =
    let result = ref (Ok ()) in
    List.iteri
      (fun idx (s : _ Lcl.solver) ->
        if !result = Ok () then
          Graph.iter_nodes graph (fun origin ->
              if !result = Ok () then begin
                let run ?trace () =
                  Probe.run ~world ?randomness:(randomness_for idx s) ?trace ~origin
                    s.Lcl.solve
                in
                let ring = Trace.ring () in
                let recorded = run ~trace:ring () in
                let decoded =
                  List.fold_left
                    (fun acc ev ->
                      match acc with
                      | Error _ -> acc
                      | Ok evs -> (
                          match Trace.event_of_json (Trace.event_to_json ev) with
                          | Ok ev' when Trace.equal_event ev ev' -> Ok (ev' :: evs)
                          | Ok _ ->
                              Error
                                (Fmt.str "%s: JSON round-trip altered {%a} at origin %d"
                                   s.Lcl.solver_name Trace.pp_event ev origin)
                          | Error msg ->
                              Error
                                (Fmt.str "%s: JSON round-trip failed at origin %d: %s"
                                   s.Lcl.solver_name origin msg)))
                    (Ok []) (Trace.events ring)
                in
                match decoded with
                | Error _ as e -> result := e
                | Ok rev_events -> (
                    let sink = Trace.checking ~expect:(List.rev rev_events) in
                    match run ~trace:sink () with
                    | exception Trace.Replay_mismatch msg ->
                        result :=
                          Error (Fmt.str "%s at origin %d: %s" s.Lcl.solver_name origin msg)
                    | replayed ->
                        if replayed <> recorded then
                          result :=
                            Error
                              (Fmt.str "%s: replayed result differs at origin %d"
                                 s.Lcl.solver_name origin)
                        else (
                          match Trace.checking_result sink with
                          | Ok () -> ()
                          | Error msg ->
                              result :=
                                Error
                                  (Fmt.str "%s at origin %d: %s" s.Lcl.solver_name origin msg)))
              end))
      solvers;
    !result
  in
  {
    t_n = n;
    t_source = source;
    run_solvers;
    probe_origin;
    merge_consistency;
    cross_model;
    lazy_vs_eager;
    ir_vs_closure;
    mutate;
    trace_record;
    trace_replay;
    trace_roundtrip;
  }

(* --- snapshot codecs ------------------------------------------------------ *)

(* Bump whenever any instance builder's output changes: every existing
   snapshot becomes a structured miss and is rebuilt (and re-published)
   on the next touch — the store's only invalidation rule. *)
(* Bumped to v2 when the graph-family builders landed (torus, d-regular,
   expander): any v1 snapshot store must answer [None] (a cold build),
   never a stale instance. *)
let builder_version = "registry-v2"

let store ~dir = Store.create ~dir ~builder_version

(* How one problem's instance flattens into named snapshot segments and
   back.  [dec] is total: any missing or mis-sized segment is [None],
   which callers treat as a store miss and fall back to building. *)
type 'inst snapper = {
  enc : 'inst -> (string * Iarr.t) list;
  dec : Snap.loaded -> 'inst option;
  n_of : 'inst -> int;
}

let graph_segments g =
  [
    ("g.meta", Iarr.of_array [| Graph.max_degree g |]);
    ("g.ids", Graph.csr_ids g);
    ("g.off", Graph.csr_offsets g);
    ("g.tgt", Graph.csr_targets g);
  ]

(* The graph's rows are adopted as zero-copy views of the mapped file:
   the snapshot checksum stands in for [Graph.create]'s validation. *)
let graph_of_snapshot l =
  match
    ( Snap.seg_find l "g.meta",
      Snap.seg_find l "g.ids",
      Snap.seg_find l "g.off",
      Snap.seg_find l "g.tgt" )
  with
  | Some meta, Some ids, Some off, Some tgt
    when Iarr.length meta = 1
         && Iarr.length ids = l.Snap.hdr.Snap.n
         && Iarr.length off = Iarr.length ids + 1 ->
      Some (Graph.unsafe_of_csr ~ids ~off ~tgt ~max_degree:(Iarr.get meta 0))
  | _ -> None

let graph_snapper = { enc = graph_segments; dec = graph_of_snapshot; n_of = Graph.n }

let seg_n l name =
  match Snap.seg_find l name with
  | Some a when Iarr.length a = l.Snap.hdr.Snap.n -> Some a
  | Some _ | None -> None

let int_of_color = function TL.Red -> 0 | TL.Blue -> 1
let color_of_int i = if i = 0 then TL.Red else TL.Blue
let int_of_bool b = if b then 1 else 0

let lc_snapper =
  let enc (inst : LC.instance) =
    let n = Graph.n inst.LC.graph in
    graph_segments inst.LC.graph
    @ [
        ("tl.parent", inst.LC.labels.TL.parent);
        ("tl.left", inst.LC.labels.TL.left);
        ("tl.right", inst.LC.labels.TL.right);
        ("lc.color", Iarr.init n (fun v -> int_of_color inst.LC.colors.(v)));
      ]
  in
  let dec l =
    match
      ( graph_of_snapshot l,
        seg_n l "tl.parent",
        seg_n l "tl.left",
        seg_n l "tl.right",
        seg_n l "lc.color" )
    with
    | Some graph, Some parent, Some left, Some right, Some color ->
        Some
          {
            LC.graph;
            labels = { TL.parent; left; right };
            colors = Array.init (Graph.n graph) (fun v -> color_of_int (Iarr.get color v));
          }
    | _ -> None
  in
  { enc; dec; n_of = (fun (i : LC.instance) -> Graph.n i.LC.graph) }

let h_snapper ~k =
  {
    enc = (fun (inst : H.instance) -> lc_snapper.enc inst.H.base);
    dec = (fun l -> Option.map (fun base -> { H.base; k }) (lc_snapper.dec l));
    n_of = (fun (i : H.instance) -> Graph.n i.H.base.LC.graph);
  }

let bt_snapper =
  let enc (inst : BT.instance) =
    let n = Graph.n inst.BT.graph in
    let f sel = Iarr.init n (fun v -> sel inst.BT.labels.(v)) in
    graph_segments inst.BT.graph
    @ [
        ("bt.parent", f (fun i -> i.BT.parent));
        ("bt.left", f (fun i -> i.BT.left));
        ("bt.right", f (fun i -> i.BT.right));
        ("bt.left_nbr", f (fun i -> i.BT.left_nbr));
        ("bt.right_nbr", f (fun i -> i.BT.right_nbr));
      ]
  in
  let dec l =
    match
      ( graph_of_snapshot l,
        seg_n l "bt.parent",
        seg_n l "bt.left",
        seg_n l "bt.right",
        seg_n l "bt.left_nbr",
        seg_n l "bt.right_nbr" )
    with
    | Some graph, Some p, Some lt, Some rt, Some ln, Some rn ->
        Some
          {
            BT.graph;
            labels =
              Array.init (Graph.n graph) (fun v ->
                  {
                    BT.parent = Iarr.get p v;
                    left = Iarr.get lt v;
                    right = Iarr.get rt v;
                    left_nbr = Iarr.get ln v;
                    right_nbr = Iarr.get rn v;
                  });
          }
    | _ -> None
  in
  { enc; dec; n_of = (fun (i : BT.instance) -> Graph.n i.BT.graph) }

let hy_segments n label =
  let f sel = Iarr.init n (fun v -> sel (label v)) in
  [
    ("hy.parent", f (fun (i : Hy.node_input) -> i.Hy.parent));
    ("hy.left", f (fun i -> i.Hy.left));
    ("hy.right", f (fun i -> i.Hy.right));
    ("hy.left_nbr", f (fun i -> i.Hy.left_nbr));
    ("hy.right_nbr", f (fun i -> i.Hy.right_nbr));
    ("hy.color", f (fun i -> int_of_color i.Hy.color));
    ("hy.level", f (fun i -> i.Hy.level));
  ]

let hy_labels_of l =
  match
    ( seg_n l "hy.parent",
      seg_n l "hy.left",
      seg_n l "hy.right",
      seg_n l "hy.left_nbr",
      seg_n l "hy.right_nbr",
      seg_n l "hy.color",
      seg_n l "hy.level" )
  with
  | Some p, Some lt, Some rt, Some ln, Some rn, Some c, Some lv ->
      Some
        (Array.init l.Snap.hdr.Snap.n (fun v ->
             {
               Hy.parent = Iarr.get p v;
               left = Iarr.get lt v;
               right = Iarr.get rt v;
               left_nbr = Iarr.get ln v;
               right_nbr = Iarr.get rn v;
               color = color_of_int (Iarr.get c v);
               level = Iarr.get lv v;
             }))
  | _ -> None

let hy_snapper ~k =
  {
    enc =
      (fun (inst : Hy.instance) ->
        graph_segments inst.Hy.graph
        @ hy_segments (Graph.n inst.Hy.graph) (fun v -> inst.Hy.labels.(v)));
    dec =
      (fun l ->
        match (graph_of_snapshot l, hy_labels_of l) with
        | Some graph, Some labels -> Some { Hy.graph; labels; k }
        | _ -> None);
    n_of = (fun (i : Hy.instance) -> Graph.n i.Hy.graph);
  }

let hh_snapper ~k ~level =
  {
    enc =
      (fun (inst : HH.instance) ->
        let n = Graph.n inst.HH.graph in
        graph_segments inst.HH.graph
        @ hy_segments n (fun v -> inst.HH.labels.(v).HH.hy)
        @ [ ("hh.bit", Iarr.init n (fun v -> int_of_bool inst.HH.labels.(v).HH.bit)) ]);
    dec =
      (fun ld ->
        match (graph_of_snapshot ld, hy_labels_of ld, seg_n ld "hh.bit") with
        | Some graph, Some hy, Some bit ->
            Some
              {
                HH.graph;
                labels =
                  Array.init (Graph.n graph) (fun v ->
                      { HH.hy = hy.(v); bit = Iarr.get bit v <> 0 });
                k;
                l = level;
              }
        | _ -> None);
    n_of = (fun (i : HH.instance) -> Graph.n i.HH.graph);
  }

let gap_snapper =
  let enc (inst : Gap.instance) =
    let n = Graph.n inst.Gap.graph in
    let f sel = Iarr.init n (fun v -> sel inst.Gap.inputs.(v)) in
    graph_segments inst.Gap.graph
    @ [
        ("gap.side", f (fun (i : Gap.node_input) -> match i.Gap.side with Gap.U -> 0 | Gap.V -> 1));
        ("gap.index", f (fun i -> i.Gap.index));
        ("gap.depth", f (fun i -> i.Gap.depth));
        ( "gap.bit",
          f (fun i -> match i.Gap.bit with None -> 0 | Some false -> 1 | Some true -> 2) );
        ("gap.bits", Iarr.init (Array.length inst.Gap.bits) (fun i -> int_of_bool inst.Gap.bits.(i)));
      ]
  in
  let dec ld =
    match
      ( graph_of_snapshot ld,
        seg_n ld "gap.side",
        seg_n ld "gap.index",
        seg_n ld "gap.depth",
        seg_n ld "gap.bit",
        Snap.seg_find ld "gap.bits" )
    with
    | Some graph, Some side, Some index, Some depth, Some bit, Some bits ->
        Some
          {
            Gap.graph;
            inputs =
              Array.init (Graph.n graph) (fun v ->
                  {
                    Gap.side = (if Iarr.get side v = 0 then Gap.U else Gap.V);
                    index = Iarr.get index v;
                    depth = Iarr.get depth v;
                    bit =
                      (match Iarr.get bit v with
                      | 0 -> None
                      | 1 -> Some false
                      | _ -> Some true);
                  });
            bits = Array.init (Iarr.length bits) (fun i -> Iarr.get bits i <> 0);
          }
    | _ -> None
  in
  { enc; dec; n_of = (fun (i : Gap.instance) -> Graph.n i.Gap.graph) }

(* Store consultation shared by every entry: a hit decodes zero-copy
   views of the mapped file; a miss builds and (best-effort) publishes,
   so a configured store self-populates — the property the shard tier's
   post-kill re-warm relies on. *)
let acquire_with ?store:st ~problem ~snapper ~build ~size ~seed () =
  match st with
  | None -> (build (), `Built)
  | Some st -> (
      match Store.load st ~problem ~size ~seed with
      | Some l -> (
          match snapper.dec l with Some inst -> (inst, `Snapshot) | None -> (build (), `Built))
      | None ->
          let inst = build () in
          ignore
            (Store.publish st ~problem ~size ~seed ~n:(snapper.n_of inst)
               ~segments:(snapper.enc inst)
              : bool);
          (inst, `Built))

let snap_entry ~name ~family ~radius ~sizes ~quick_sizes ~ir ~snapper ~build ~trial_of =
  let acquire_inst ?store ~size ~seed () =
    acquire_with ?store ~problem:name ~snapper ~build:(fun () -> build ~size ~seed) ~size ~seed
      ()
  in
  {
    name;
    family;
    radius;
    sizes;
    quick_sizes;
    ir;
    make =
      (fun ?store ~size ~seed () ->
        let inst, source = acquire_inst ?store ~size ~seed () in
        trial_of ~seed ~source inst);
    acquire =
      (fun ?store ~size ~seed () -> snapper.n_of (fst (acquire_inst ?store ~size ~seed ())));
  }

(* --- entries, in paper order --------------------------------------------- *)

let degree_parity =
  let problem = TR.problem in
  snap_entry ~name:problem.Lcl.name ~family:"cubic" ~radius:problem.Lcl.radius
    ~sizes:[ 24; 40 ] ~quick_sizes:[ 16 ] ~ir:true ~snapper:graph_snapper
    ~build:(fun ~size ~seed -> Gen.build { Gen.shape = Gen.Cubic; size; g_seed = seed })
    ~trial_of:(fun ~seed ~source graph ->
      let input _ = () in
      make_trial ~problem ~graph ~input ~world:(TR.world graph) ~solvers:TR.solvers
        ~ir:Ir_lib.degree_parity
        ~mutants:
          [
            ( "flip-parity",
              fun rng out ->
                let v = any_node rng out in
                out.(v) <- (match out.(v) with TR.Even -> TR.Odd | TR.Odd -> TR.Even);
                out_mutant v out );
          ]
        ~source ~seed ())

let cycle_coloring =
  let problem = CC.problem in
  snap_entry ~name:problem.Lcl.name ~family:"cycle" ~radius:problem.Lcl.radius
    ~sizes:[ 16; 33 ] ~quick_sizes:[ 9 ] ~ir:true ~snapper:graph_snapper
    ~build:(fun ~size ~seed ->
      (* shuffled identifiers vary the ColeâVishkin trajectory per seed *)
      Graph.shuffle_ids (Builder.cycle (max 3 size)) ~rng:(Splitmix.create seed))
    ~trial_of:(fun ~seed ~source graph ->
      let input _ = () in
      make_trial ~problem ~graph ~input ~world:(CC.world graph) ~solvers:CC.solvers
        ~ir:(Ir_lib.cycle_coloring ~n:(Graph.n graph))
        ~mutants:
          [
            ( "copy-neighbor",
              fun rng out ->
                let v = any_node rng out in
                out.(v) <- out.(Graph.neighbor graph v 1);
                out_mutant v out );
            ( "out-of-palette",
              fun rng out ->
                let v = any_node rng out in
                out.(v) <- 3;
                out_mutant v out );
          ]
        ~source ~seed ())

let sinkless =
  let problem = SO.problem in
  snap_entry ~name:problem.Lcl.name ~family:"cubic" ~radius:problem.Lcl.radius
    ~sizes:[ 20; 32 ] ~quick_sizes:[ 12 ] ~ir:false ~snapper:graph_snapper
    ~build:(fun ~size ~seed -> SO.random_cubic ~n:(max 8 size) ~seed)
    ~trial_of:(fun ~seed ~source graph ->
      let input _ = () in
      let flip = function SO.Outgoing -> SO.Incoming | SO.Incoming -> SO.Outgoing in
      make_trial ~problem ~graph ~input ~world:(SO.world graph) ~solvers:SO.solvers
        ~mutants:
          [
            ( "swap-port",
              fun rng out ->
                let v = any_node rng out in
                let p = Splitmix.int rng ~bound:(Graph.degree graph v) in
                (* replace, don't mutate: the inner array is shared with
                   the reference output *)
                let a = Array.copy out.(v) in
                a.(p) <- flip a.(p);
                out.(v) <- a;
                out_mutant v out );
            ( "make-sink",
              fun rng out ->
                let v = any_node rng out in
                out.(v) <- Array.make (Graph.degree graph v) SO.Incoming;
                out_mutant v out );
          ]
        ~source ~seed ())

(* Mutation kinds shared by LeafColoring and its promise variant. *)
let lc_mutants inst =
  let graph = inst.LC.graph in
  let leaves =
    nodes_where graph (fun v -> TL.equal_status (TL.status graph inst.LC.labels v) TL.Leaf)
  in
  [
    ( "relabel-node",
      fun rng out ->
        let v = any_node rng out in
        out.(v) <- TL.flip_color out.(v);
        out_mutant v out );
    ( "recolor-leaf",
      fun rng out ->
        match pick rng leaves with
        | None -> None
        | Some v ->
            out.(v) <- TL.flip_color out.(v);
            out_mutant v out );
    ( "break-input-color",
      fun rng out ->
        match pick rng leaves with
        | None -> None
        | Some v ->
            let base = LC.input inst in
            let mutated u =
              if u = v then { (base u) with LC.color = TL.flip_color (base u).LC.color }
              else base u
            in
            Some { Mutate.site = v; input = Some mutated; output = (fun u -> out.(u)) } );
  ]

let leaf_coloring =
  let problem = LC.problem in
  snap_entry ~name:problem.Lcl.name ~family:"tree" ~radius:problem.Lcl.radius
    ~sizes:[ 31; 63 ] ~quick_sizes:[ 15 ] ~ir:true ~snapper:lc_snapper
    ~build:(fun ~size ~seed -> LC.random_instance ~n:size ~seed)
    ~trial_of:(fun ~seed ~source inst ->
      let graph = inst.LC.graph in
      let input = LC.input inst in
      make_trial ~problem ~graph ~input ~world:(LC.world inst) ~solvers:LC.solvers
        ~cross_model:
          [ ("congest", fun () -> congest_check ~problem ~graph ~input (LCC.run inst ())) ]
        ~ir:Ir_lib.leaf_coloring ~mutants:(lc_mutants inst) ~source ~seed ())

let promise_leaf =
  let problem = LC.problem in
  snap_entry ~name:"PromiseLeafColoring (secret)" ~family:"tree" ~radius:problem.Lcl.radius
    ~sizes:[ 31; 63 ] ~quick_sizes:[ 15 ] ~ir:true ~snapper:lc_snapper
    ~build:(fun ~size ~seed ->
      let leaf_color = if Int64.logand seed 1L = 0L then TL.Red else TL.Blue in
      PL.promise_instance ~n:size ~leaf_color ~seed)
    ~trial_of:(fun ~seed ~source inst ->
      let graph = inst.LC.graph in
      let input = LC.input inst in
      (* the promise entry's reference solver is [LC.solve_distance],
         exactly what the leaf-coloring program ports *)
      make_trial ~problem ~graph ~input ~world:(LC.world inst)
        ~solvers:(LC.solve_distance :: PL.solvers)
        ~regime:Randomness.Secret ~ir:Ir_lib.leaf_coloring ~mutants:(lc_mutants inst)
        ~source ~seed ())

let balanced_tree =
  let problem = BT.problem in
  snap_entry ~name:problem.Lcl.name ~family:"tree" ~radius:problem.Lcl.radius ~sizes:[ 3; 4 ]
    ~quick_sizes:[ 3 ] ~ir:false ~snapper:bt_snapper
    ~build:(fun ~size ~seed ->
      if Int64.logand seed 1L = 1L then BT.broken_pair_instance ~depth:size ~break:0
      else BT.balanced_instance ~depth:size)
    ~trial_of:(fun ~seed ~source inst ->
      let graph = inst.BT.graph in
      let input = BT.input inst in
      (* consistent nodes whose output is forced by Definition 4.3:
         every leaf, and every incompatible internal node *)
      let forced =
        nodes_where graph (fun v ->
            match BT.status inst v with
            | TL.Inconsistent -> false
            | TL.Leaf -> true
            | TL.Internal -> not (BT.compatible inst v))
      in
      let laterals =
        nodes_where graph (fun v -> inst.BT.labels.(v).BT.left_nbr <> TL.bot)
      in
      let flip = function BT.Bal -> BT.Unbal | BT.Unbal -> BT.Bal in
      make_trial ~problem ~graph ~input ~world:(BT.world inst) ~solvers:BT.solvers
        ~cross_model:
          [ ("congest", fun () -> congest_check ~problem ~graph ~input (BTC.run inst ())) ]
        ~mutants:
          [
            ( "flip-verdict",
              fun rng out ->
                match pick rng forced with
                | None -> None
                | Some v ->
                    out.(v) <- { out.(v) with BT.verdict = flip out.(v).BT.verdict };
                    out_mutant v out );
            ( "swap-port",
              fun rng out ->
                match pick rng forced with
                | None -> None
                | Some v ->
                    out.(v) <-
                      { out.(v) with BT.port = (if out.(v).BT.port = TL.bot then 1 else TL.bot) };
                    out_mutant v out );
            ( "erase-lateral",
              fun rng out ->
                match pick rng laterals with
                | None -> None
                | Some v ->
                    let mutated u =
                      if u = v then { (input u) with BT.left_nbr = TL.bot } else input u
                    in
                    Some { Mutate.site = v; input = Some mutated; output = (fun u -> out.(u)) } );
          ]
        ~source ~seed ())

let hierarchical =
  let k = 2 in
  let problem = H.problem ~k in
  snap_entry ~name:problem.Lcl.name ~family:"tree" ~radius:problem.Lcl.radius ~sizes:[ 4; 5 ]
    ~quick_sizes:[ 3 ] ~ir:false ~snapper:(h_snapper ~k)
    ~build:(fun ~size ~seed -> H.uniform_instance ~k ~len:size ~seed)
    ~trial_of:(fun ~seed ~source inst ->
      let graph = H.graph inst in
      let input = H.input inst in
      let access = H.graph_access inst in
      let level1 = nodes_where graph (fun v -> H.level access ~k v = 1) in
      make_trial ~problem ~graph ~input ~world:(H.world inst) ~solvers:(H.solvers ~k)
        ~mutants:
          [
            ( "exempt-level-1",
              fun rng out ->
                match pick rng level1 with
                | None -> None
                | Some v ->
                    out.(v) <- H.Exempt;
                    out_mutant v out );
            ( "relabel-rotate",
              fun rng out ->
                let v = any_node rng out in
                out.(v) <-
                  (match out.(v) with
                  | H.Chromatic TL.Red -> H.Chromatic TL.Blue
                  | H.Chromatic TL.Blue -> H.Decline
                  | H.Decline -> H.Exempt
                  | H.Exempt -> H.Chromatic TL.Red);
                out_mutant v out );
          ]
        ~source ~seed ())

let rotate_sym = function
  | H.Chromatic TL.Red -> H.Chromatic TL.Blue
  | H.Chromatic TL.Blue -> H.Decline
  | H.Decline -> H.Exempt
  | H.Exempt -> H.Chromatic TL.Red

let hybrid =
  let k = 2 in
  let problem = Hy.problem ~k in
  snap_entry ~name:problem.Lcl.name ~family:"tree" ~radius:problem.Lcl.radius ~sizes:[ 3; 4 ]
    ~quick_sizes:[ 3 ] ~ir:false ~snapper:(hy_snapper ~k)
    ~build:(fun ~size ~seed -> Hy.uniform_instance ~k ~len:size ~bt_depth:3 ~seed)
    ~trial_of:(fun ~seed ~source inst ->
      let graph = inst.Hy.graph in
      let input = Hy.input inst in
      let high = nodes_where graph (fun v -> (input v).Hy.level >= 2) in
      make_trial ~problem ~graph ~input ~world:(Hy.world inst) ~solvers:(Hy.solvers ~k)
        ~mutants:
          [
            ( "solved-junk",
              fun rng out ->
                match pick rng high with
                | None -> None
                | Some v ->
                    out.(v) <- Hy.Solved { BT.verdict = BT.Bal; port = TL.bot };
                    out_mutant v out );
            ( "relabel-node",
              fun rng out ->
                let v = any_node rng out in
                out.(v) <-
                  (match out.(v) with
                  | Hy.Sym s -> Hy.Sym (rotate_sym s)
                  | Hy.Solved o -> Hy.Solved { o with BT.verdict = BT.Unbal });
                out_mutant v out );
          ]
        ~source ~seed ())

let hh =
  let k = 2 and l = 3 in
  let problem = HH.problem ~k ~l in
  snap_entry ~name:problem.Lcl.name ~family:"tree" ~radius:problem.Lcl.radius ~sizes:[ 60 ]
    ~quick_sizes:[ 40 ] ~ir:false ~snapper:(hh_snapper ~k ~level:l)
    ~build:(fun ~size ~seed -> HH.uniform_instance ~k ~l ~size_hint:size ~seed)
    ~trial_of:(fun ~seed ~source inst ->
      let graph = inst.HH.graph in
      let input = HH.input inst in
      let hy_high =
        nodes_where graph (fun v ->
            let i = input v in
            i.HH.bit && i.HH.hy.Hy.level >= 2)
      in
      make_trial ~problem ~graph ~input ~world:(HH.world inst) ~solvers:(HH.solvers ~k ~l)
        ~mutants:
          [
            ( "solved-junk-bit1",
              fun rng out ->
                match pick rng hy_high with
                | None -> None
                | Some v ->
                    out.(v) <- Hy.Solved { BT.verdict = BT.Bal; port = TL.bot };
                    out_mutant v out );
            ( "relabel-node",
              fun rng out ->
                let v = any_node rng out in
                out.(v) <-
                  (match out.(v) with
                  | Hy.Sym s -> Hy.Sym (rotate_sym s)
                  | Hy.Solved o -> Hy.Solved { o with BT.verdict = BT.Unbal });
                out_mutant v out );
          ]
        ~source ~seed ())

let gap =
  let problem = Gap.problem in
  snap_entry ~name:problem.Lcl.name ~family:"tree" ~radius:problem.Lcl.radius ~sizes:[ 4; 5 ]
    ~quick_sizes:[ 3 ] ~ir:false ~snapper:gap_snapper
    ~build:(fun ~size ~seed -> Gap.make ~depth:size ~seed)
    ~trial_of:(fun ~seed ~source inst ->
      let graph = inst.Gap.graph in
      let input = Gap.input inst in
      let partition out =
        let some = ref [] and none = ref [] in
        Array.iteri
          (fun v o -> match o with Some _ -> some := v :: !some | None -> none := v :: !none)
          out;
        (!some, !none)
      in
      make_trial ~problem ~graph ~input ~world:(Gap.world inst) ~solvers:Gap.solvers
        ~cross_model:
          [
            ( "congest",
              fun () ->
                congest_check ~problem ~graph ~input (Gap.run_congest inst ~bandwidth:8) );
          ]
        ~mutants:
          [
            ( "flip-bit",
              fun rng out ->
                match pick rng (fst (partition out)) with
                | None -> None
                | Some v ->
                    out.(v) <- Option.map not out.(v);
                    out_mutant v out );
            ( "spurious-output",
              fun rng out ->
                match pick rng (snd (partition out)) with
                | None -> None
                | Some v ->
                    out.(v) <- Some true;
                    out_mutant v out );
          ]
        ~source ~seed ())

(* --- graph families beyond paths and trees (lib/family) ------------------ *)

(* Every marquee family problem is registered once per applicable family
   under a family-qualified name; the instances are pure graphs, so
   [graph_snapper] covers snapshots with no extra segments. *)

let coloring_mutants graph =
  [
    ( "copy-neighbor",
      fun rng out ->
        let v = any_node rng out in
        out.(v) <- out.(Graph.neighbor graph v 1);
        out_mutant v out );
    ( "out-of-palette",
      fun rng out ->
        let v = any_node rng out in
        out.(v) <- F4.palette;
        out_mutant v out );
  ]

let coloring_entry ~name ~family ~sizes ~quick_sizes ~solver ~build =
  let problem = Lcl.with_name F4.problem ~name in
  snap_entry ~name ~family ~radius:problem.Lcl.radius ~sizes ~quick_sizes ~ir:false
    ~snapper:graph_snapper ~build
    ~trial_of:(fun ~seed ~source graph ->
      make_trial ~problem ~graph ~input:(fun _ -> ()) ~world:(F4.world graph)
        ~solvers:[ solver ] ~mutants:(coloring_mutants graph) ~source ~seed ())

let torus_coloring =
  coloring_entry ~name:"TorusColoring4" ~family:"torus" ~sizes:[ 36; 64 ] ~quick_sizes:[ 16 ]
    ~solver:F4.solve_torus
    ~build:(fun ~size ~seed -> Family.torus_of_size ~size ~seed)

let regular_coloring =
  (* d = 3: the greedy mex stays within the 4-colour palette *)
  coloring_entry ~name:"RegularColoring4" ~family:"d-regular" ~sizes:[ 24; 40 ]
    ~quick_sizes:[ 12 ] ~solver:F4.solve_greedy
    ~build:(fun ~size ~seed -> Family.regular_of_size ~d:3 ~size ~seed)

let matching_mutants graph =
  [
    ( "unmatch",
      fun rng out ->
        (* dropping a matched node leaves its partner pointing at it *)
        (match pick rng (nodes_where graph (fun v -> out.(v) > 0)) with
        | None -> None
        | Some v ->
            out.(v) <- 0;
            out_mutant v out) );
    ( "false-match",
      fun rng out ->
        (* an unmatched node claims port 1; maximality says that
           neighbor is matched elsewhere, so reciprocity breaks *)
        match pick rng (nodes_where graph (fun v -> out.(v) = 0 && Graph.degree graph v > 0)) with
        | None -> None
        | Some v ->
            out.(v) <- 1;
            out_mutant v out );
  ]

let matching_entry ~name ~family ~sizes ~quick_sizes ~build =
  let problem = Lcl.with_name FM.problem ~name in
  snap_entry ~name ~family ~radius:problem.Lcl.radius ~sizes ~quick_sizes ~ir:false
    ~snapper:graph_snapper ~build
    ~trial_of:(fun ~seed ~source graph ->
      make_trial ~problem ~graph ~input:(fun _ -> ()) ~world:(FM.world graph)
        ~solvers:FM.solvers ~mutants:(matching_mutants graph) ~source ~seed ())

let torus_matching =
  matching_entry ~name:"TorusMatching" ~family:"torus" ~sizes:[ 36; 64 ] ~quick_sizes:[ 16 ]
    ~build:(fun ~size ~seed -> Family.torus_of_size ~size ~seed)

let regular_matching =
  matching_entry ~name:"RegularMatching" ~family:"d-regular" ~sizes:[ 24; 40 ]
    ~quick_sizes:[ 12 ]
    ~build:(fun ~size ~seed -> Family.regular_of_size ~d:4 ~size ~seed)

let mis_mutants =
  [
    ( "drop-member",
      fun rng out ->
        (* a dropped member has no set neighbor (independence), so it is
           left uncovered *)
        (match
           Array.to_seqi out |> Seq.filter (fun (_, b) -> b) |> List.of_seq
           |> List.map fst
           |> pick rng
         with
        | None -> None
        | Some v ->
            out.(v) <- false;
            out_mutant v out) );
    ( "add-member",
      fun rng out ->
        (* maximality guarantees an excluded node has a set neighbor, so
           adding it breaks independence *)
        match
          Array.to_seqi out |> Seq.filter (fun (_, b) -> not b) |> List.of_seq
          |> List.map fst
          |> pick rng
        with
        | None -> None
        | Some v ->
            out.(v) <- true;
            out_mutant v out );
  ]

let mis_entry ~name ~family ~sizes ~quick_sizes ~build =
  let problem = Lcl.with_name FI.problem ~name in
  snap_entry ~name ~family ~radius:problem.Lcl.radius ~sizes ~quick_sizes ~ir:false
    ~snapper:graph_snapper ~build
    ~trial_of:(fun ~seed ~source graph ->
      make_trial ~problem ~graph ~input:(fun _ -> ()) ~world:(FI.world graph)
        ~solvers:FI.solvers ~mutants:mis_mutants ~source ~seed ())

let regular_mis =
  mis_entry ~name:"RegularMIS" ~family:"d-regular" ~sizes:[ 24; 40 ] ~quick_sizes:[ 12 ]
    ~build:(fun ~size ~seed -> Family.regular_of_size ~d:4 ~size ~seed)

let expander_mis =
  mis_entry ~name:"ExpanderMIS" ~family:"expander" ~sizes:[ 25; 41 ] ~quick_sizes:[ 13 ]
    ~build:(fun ~size ~seed -> Family.expander_of_size ~size ~seed)

let regular_sinkless =
  (* Question 7.3's playground on exactly d-regular instances: the
     second family next to the random-cubic entry above. *)
  let problem = Lcl.with_name SO.problem ~name:"RegularSinkless" in
  snap_entry ~name:"RegularSinkless" ~family:"d-regular" ~radius:problem.Lcl.radius
    ~sizes:[ 20; 32 ] ~quick_sizes:[ 12 ] ~ir:false ~snapper:graph_snapper
    ~build:(fun ~size ~seed -> Family.regular_of_size ~d:4 ~size ~seed)
    ~trial_of:(fun ~seed ~source graph ->
      let flip = function SO.Outgoing -> SO.Incoming | SO.Incoming -> SO.Outgoing in
      make_trial ~problem ~graph ~input:(fun _ -> ()) ~world:(SO.world graph)
        ~solvers:SO.solvers
        ~mutants:
          [
            ( "swap-port",
              fun rng out ->
                let v = any_node rng out in
                let p = Splitmix.int rng ~bound:(Graph.degree graph v) in
                let a = Array.copy out.(v) in
                a.(p) <- flip a.(p);
                out.(v) <- a;
                out_mutant v out );
            ( "make-sink",
              fun rng out ->
                let v = any_node rng out in
                out.(v) <- Array.make (Graph.degree graph v) SO.Incoming;
                out_mutant v out );
          ]
        ~source ~seed ())

let all () =
  [
    degree_parity;
    cycle_coloring;
    sinkless;
    leaf_coloring;
    promise_leaf;
    balanced_tree;
    hierarchical;
    hybrid;
    hh;
    gap;
    torus_coloring;
    regular_coloring;
    torus_matching;
    regular_matching;
    regular_mis;
    expander_mis;
    regular_sinkless;
  ]
