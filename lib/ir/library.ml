module Graph = Vc_graph.Graph
module Builder = Vc_graph.Builder
module TL = Vc_graph.Tree_labels
module Splitmix = Vc_rng.Splitmix
module World = Vc_model.World
module Probe = Vc_model.Probe
module Lcl = Vc_lcl.Lcl
module TR = Volcomp.Trivial_lcl
module CC = Volcomp.Cycle_coloring
module LC = Volcomp.Leaf_coloring
module PT = Volcomp.Probe_tree
open Ir

(* Observation encoding shared by the tree-labeling programs: fields
   expose a node's three pointers and its input color as small ints. *)
let f_parent = 0

let f_left = 1

let f_right = 2

(* field 3 is the input color: Red = 0, Blue = 1 *)

let tree_obs (inp : LC.node_input) f =
  match f with
  | 0 -> inp.LC.parent
  | 1 -> inp.LC.left
  | 2 -> inp.LC.right
  | 3 -> ( match inp.LC.color with TL.Red -> 0 | TL.Blue -> 1)
  | _ -> invalid_arg "Library.tree_obs: field out of range"

let unit_obs () _ = 0

(* --- degree parity --------------------------------------------------------- *)

let degree_parity : (unit, TR.parity) spec =
  let program =
    {
      name = "degree-parity";
      n_regs = 1;
      n_queues = 0;
      obs_arity = 0;
      n_consts = 2;
      n_fns = 0;
      declared = Probe.unlimited;
      max_steps = None;
      code =
        [|
          Branch { cond = C_deg_mod (0, 2, 0); if_true = 1; if_false = 2 };
          Out_const 0;
          Out_const 1;
        |];
    }
  in
  { program; obs = unit_obs; consts = [| TR.Even; TR.Odd |]; fns = [||] }

(* --- Cole–Vishkin cycle coloring ------------------------------------------- *)

(* The probe schedule is two straight-line walks (offsets +1..+3 on port
   1, then -1..-(t+3) on port 2); all color arithmetic happens in the
   output combinator over the identifiers of the logged query results.
   Offsets — not node identities — index the window, so wrap-around on
   tiny cycles behaves exactly like the closure solver, whose hashtable
   is also offset-keyed. *)
(* One scratch array is the only allocation.  A Cole–Vishkin round reads
   positions [j] and [j - 1] of the previous round and writes [j], so
   sweeping [j] {e downward} updates in place without a snapshot: the
   [j - 1] read always sees the old value.  The conflict passes are also
   snapshot-free: colors are proper along the window (identifiers are
   distinct on adjacent nodes and [reduce] preserves properness), so a
   position being recolored away from [c] never has a [c]-colored
   neighbor, meaning the neighbor values it reads were not modified in
   this pass.  The per-[c] window — positions of -3..3 with [c]-many
   shrink steps applied — tightens monotonically in [c], so testing the
   current bounds alone equals the cumulative filter of the
   round-by-round formulation. *)
(* The window scratch is domain-local and fully overwritten by the fill
   phase below, so the combinator stays pure in effect while the hot
   batch path allocates nothing per call.  No re-entrancy hazard: the
   combinator never calls back into an executor. *)
let cv_scratch : int array ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [||])

let cv_fn ~t env =
  let lo = -(t + 3) and hi = 3 in
  let at j = j - lo in
  let cell = Domain.DLS.get cv_scratch in
  if Array.length !cell < hi - lo + 1 then cell := Array.make (hi - lo + 1) 0;
  let color = !cell in
  let id = env.e_id and query = env.e_query in
  color.(at 0) <- id env.e_origin;
  for i = 0 to 2 do
    color.(at (i + 1)) <- id (query i)
  done;
  for i = 0 to t + 2 do
    color.(at (-(i + 1))) <- id (query (3 + i))
  done;
  for r = 1 to t do
    for j = hi downto lo + r do
      color.(at j) <- CC.reduce ~own:color.(at j) ~pred:color.(at (j - 1))
    done
  done;
  for c = 3 to 5 do
    for j = -3 to 3 do
      if j > lo + t + (c - 3) && j < hi - (c - 3) && color.(at j) = c then begin
        let l = color.(at (j - 1)) and r = color.(at (j + 1)) in
        color.(at j) <-
          (if 0 <> l && 0 <> r then 0 else if 1 <> l && 1 <> r then 1 else 2)
      end
    done
  done;
  color.(at 0)

let cycle_coloring ~n : (unit, int) spec =
  let t = CC.rounds_needed ~n in
  let a = Asm.create () in
  Asm.probe a ~at:0 ~path:[| P_const 1; P_const 1; P_const 1 |] ~dst:1;
  Asm.probe a ~at:0 ~path:(Array.make (t + 3) (P_const 2)) ~dst:1;
  Asm.out_fn a 0;
  let program =
    Asm.assemble a ~name:"cycle-coloring" ~n_regs:2 ~n_queues:0 ~obs_arity:0 ~n_consts:0
      ~n_fns:1 ()
  in
  { program; obs = unit_obs; consts = [||]; fns = [| cv_fn ~t |] }

(* --- the Definition 3.3 status decision, as an IR macro -------------------- *)

(* [emit_internal] replicates [Tree_labels.status_gen]'s [internal u]
   with short-circuit fidelity: the two queries of a reciprocated-child
   check are only issued once every cheaper (query-free) conjunct has
   passed, so the query count agrees with the closure on every input,
   consistent or not. *)
let emit_internal a ~u ~c ~t ~if_true ~if_false =
  let l1 = Asm.label a
  and l2 = Asm.label a
  and l3 = Asm.label a
  and l4 = Asm.label a
  and l5 = Asm.label a
  and l6 = Asm.label a
  and l7 = Asm.label a
  and l8 = Asm.label a in
  Asm.branch a (C_port_ok (u, P_field f_left)) ~if_true:l1 ~if_false;
  Asm.place a l1;
  Asm.branch a (C_port_ok (u, P_field f_right)) ~if_true:l2 ~if_false;
  Asm.place a l2;
  Asm.branch a (C_field_eq (u, f_left, f_right)) ~if_true:if_false ~if_false:l3;
  Asm.place a l3;
  Asm.branch a (C_field_eq (u, f_parent, f_left)) ~if_true:if_false ~if_false:l4;
  Asm.place a l4;
  Asm.branch a (C_field_eq (u, f_parent, f_right)) ~if_true:if_false ~if_false:l5;
  Asm.place a l5;
  Asm.probe a ~at:u ~path:[| P_field f_left |] ~dst:c;
  Asm.branch a (C_port_ok (c, P_field f_parent)) ~if_true:l6 ~if_false;
  Asm.place a l6;
  Asm.probe a ~at:c ~path:[| P_field f_parent |] ~dst:t;
  Asm.branch a (C_node_eq (t, u)) ~if_true:l7 ~if_false;
  Asm.place a l7;
  Asm.probe a ~at:u ~path:[| P_field f_right |] ~dst:c;
  Asm.branch a (C_port_ok (c, P_field f_parent)) ~if_true:l8 ~if_false;
  Asm.place a l8;
  Asm.probe a ~at:c ~path:[| P_field f_parent |] ~dst:t;
  Asm.branch a (C_node_eq (t, u)) ~if_true ~if_false

let emit_status a ~v ~p ~c ~t ~on_internal ~on_leaf ~on_inconsistent =
  let notint = Asm.label a and have_parent = Asm.label a in
  emit_internal a ~u:v ~c ~t ~if_true:on_internal ~if_false:notint;
  Asm.place a notint;
  Asm.branch a (C_port_ok (v, P_field f_parent)) ~if_true:have_parent ~if_false:on_inconsistent;
  Asm.place a have_parent;
  Asm.probe a ~at:v ~path:[| P_field f_parent |] ~dst:p;
  emit_internal a ~u:p ~c ~t ~if_true:on_leaf ~if_false:on_inconsistent

let probe_tree_status : (LC.node_input, TL.status) spec =
  let a = Asm.create () in
  let int_l = Asm.label a and leaf_l = Asm.label a and inc_l = Asm.label a in
  emit_status a ~v:0 ~p:1 ~c:2 ~t:3 ~on_internal:int_l ~on_leaf:leaf_l ~on_inconsistent:inc_l;
  Asm.place a int_l;
  Asm.out_const a 0;
  Asm.place a leaf_l;
  Asm.out_const a 1;
  Asm.place a inc_l;
  Asm.out_const a 2;
  let program =
    Asm.assemble a ~name:"probe-tree-status" ~n_regs:4 ~n_queues:0 ~obs_arity:4 ~n_consts:3
      ~n_fns:0 ()
  in
  {
    program;
    obs = tree_obs;
    consts = [| TL.Internal; TL.Leaf; TL.Inconsistent |];
    fns = [||];
  }

(* --- LeafColoring, Proposition 3.9 ----------------------------------------- *)

(* Register plan: r0 origin, r1 current node (and the node whose input
   color the output combinator reads), r2/r3 left/right children, r4
   parent scratch, r5/r6 status-macro scratch.  Queue 0 is the current
   BFS frontier, queue 1 stages it for the expand pass.  The schedule —
   scan the whole frontier for a leaf, then re-status and expand every
   member — reproduces the closure's probe order exactly, including the
   re-issued status queries of [children] and the seen-set asymmetry of
   the first frontier (left child pushed even when already seen). *)
let leaf_coloring : (LC.node_input, TL.color) spec =
  let a = Asm.create () in
  let int0 = Asm.label a
  and child0 = Asm.label a
  and found0 = Asm.label a
  and found = Asm.label a
  and fallback = Asm.label a
  and trap = Asm.label a
  and d0 = Asm.label a
  and mark_d = Asm.label a
  and push_d = Asm.label a
  and round = Asm.label a
  and scan = Asm.label a
  and scan1 = Asm.label a
  and scan_int = Asm.label a
  and expand = Asm.label a
  and exp1 = Asm.label a
  and exp2 = Asm.label a
  and exp3 = Asm.label a
  and add_l = Asm.label a
  and add_r = Asm.label a in
  let status ~v ~on_internal ~on_leaf ~on_inconsistent =
    emit_status a ~v ~p:4 ~c:5 ~t:6 ~on_internal ~on_leaf ~on_inconsistent
  in
  (* status #1 at the origin *)
  status ~v:0 ~on_internal:int0 ~on_leaf:found0 ~on_inconsistent:found0;
  Asm.place a int0;
  Asm.mark a 0;
  (* children v0 = status #2 + the two child queries *)
  status ~v:0 ~on_internal:child0 ~on_leaf:trap ~on_inconsistent:trap;
  Asm.place a child0;
  Asm.probe a ~at:0 ~path:[| P_field f_left |] ~dst:2;
  Asm.probe a ~at:0 ~path:[| P_field f_right |] ~dst:3;
  Asm.mark a 2;
  Asm.push a ~queue:0 ~src:2;
  Asm.branch a (C_node_eq (2, 3)) ~if_true:round ~if_false:d0;
  Asm.place a d0;
  Asm.branch a (C_marked 3) ~if_true:push_d ~if_false:mark_d;
  Asm.place a mark_d;
  Asm.mark a 3;
  Asm.place a push_d;
  Asm.push a ~queue:0 ~src:3;
  Asm.jump a round;
  (* one BFS round: scan for a leaf, then expand *)
  Asm.place a round;
  Asm.branch a (C_queue_empty 0) ~if_true:fallback ~if_false:scan;
  Asm.place a scan;
  Asm.branch a (C_queue_empty 0) ~if_true:expand ~if_false:scan1;
  Asm.place a scan1;
  Asm.pop a ~queue:0 ~dst:1;
  status ~v:1 ~on_internal:scan_int ~on_leaf:found ~on_inconsistent:found;
  Asm.place a scan_int;
  Asm.push a ~queue:1 ~src:1;
  Asm.jump a scan;
  Asm.place a expand;
  Asm.branch a (C_queue_empty 1) ~if_true:round ~if_false:exp1;
  Asm.place a exp1;
  Asm.pop a ~queue:1 ~dst:1;
  status ~v:1 ~on_internal:exp2 ~on_leaf:trap ~on_inconsistent:trap;
  Asm.place a exp2;
  Asm.probe a ~at:1 ~path:[| P_field f_left |] ~dst:2;
  Asm.probe a ~at:1 ~path:[| P_field f_right |] ~dst:3;
  Asm.branch a (C_marked 2) ~if_true:exp3 ~if_false:add_l;
  Asm.place a add_l;
  Asm.mark a 2;
  Asm.push a ~queue:0 ~src:2;
  Asm.place a exp3;
  Asm.branch a (C_marked 3) ~if_true:expand ~if_false:add_r;
  Asm.place a add_r;
  Asm.mark a 3;
  Asm.push a ~queue:0 ~src:3;
  Asm.jump a expand;
  (* outputs *)
  Asm.place a found0;
  Asm.place a fallback;
  Asm.move a ~src:0 ~dst:1;
  Asm.place a found;
  Asm.out_fn a 0;
  (* The re-issued status of [children] answers consistently with the
     first status (repeat queries are consistent), so the non-internal
     arms are unreachable; trap defensively via truncation. *)
  Asm.place a trap;
  Asm.halt a;
  let program =
    Asm.assemble a ~name:"leaf-coloring" ~n_regs:7 ~n_queues:2 ~obs_arity:4 ~n_consts:0
      ~n_fns:1 ()
  in
  let out env = (env.e_input (env.e_reg 1)).LC.color in
  { program; obs = tree_obs; consts = [||]; fns = [| out |] }

(* --- catalogue -------------------------------------------------------------- *)

type packed =
  | Packed : {
      spec : ('i, 'o) spec;
      graph : Graph.t;
      input : Graph.node -> 'i;
      world : 'i World.t;
      solver : ('i, 'o) Lcl.solver;
      pp_output : Format.formatter -> 'o -> unit;
    }
      -> packed

let status_solver =
  Lcl.solver ~name:"status (Def 3.3)" ~randomized:false (fun ctx ->
      PT.status ~pointers:LC.pointers ctx (Probe.origin ctx))

let names () = [ "degree-parity"; "cycle-coloring"; "probe-tree-status"; "leaf-coloring" ]

let program ~name ~n =
  match name with
  | "degree-parity" -> Some degree_parity.program
  | "cycle-coloring" -> Some (cycle_coloring ~n).program
  | "probe-tree-status" -> Some probe_tree_status.program
  | "leaf-coloring" -> Some leaf_coloring.program
  | _ -> None

let instance ~name ~size ~seed =
  match name with
  | "degree-parity" ->
      let g = Builder.random_binary_tree ~n:size ~rng:(Splitmix.create seed) in
      Some
        (Packed
           {
             spec = degree_parity;
             graph = g;
             input = (fun _ -> ());
             world = TR.world g;
             solver = TR.solve;
             pp_output = TR.pp_parity;
           })
  | "cycle-coloring" ->
      let g = Graph.shuffle_ids (Builder.cycle size) ~rng:(Splitmix.create seed) in
      Some
        (Packed
           {
             spec = cycle_coloring ~n:(Graph.n g);
             graph = g;
             input = (fun _ -> ());
             world = CC.world g;
             solver = CC.solve;
             pp_output = Fmt.int;
           })
  | "probe-tree-status" | "leaf-coloring" ->
      let inst = LC.random_instance ~n:size ~seed in
      let graph = inst.LC.graph in
      let input = LC.input inst in
      let world = LC.world inst in
      if name = "probe-tree-status" then
        Some
          (Packed
             {
               spec = probe_tree_status;
               graph;
               input;
               world;
               solver = status_solver;
               pp_output = TL.pp_status;
             })
      else
        Some
          (Packed
             {
               spec = leaf_coloring;
               graph;
               input;
               world;
               solver = LC.solve_distance;
               pp_output = TL.pp_color;
             })
  | _ -> None
