module Graph = Vc_graph.Graph
module Ir = Vc_ir.Ir
module Exec = Vc_ir.Exec
module Lcl = Vc_lcl.Lcl

type template = {
  t_name : string;
  n_regs : int;
  obs_arity : int;
  n_consts : int;
  slots : Ir.instr array array;
}

type universe =
  | U : {
      u_name : string;
      lcl : ('i, 'o) Lcl.t;
      consts : 'o array;
      obs : 'i -> int -> int;
      instances : (string * Graph.t * (Graph.node -> 'i)) array;
    }
      -> universe

type outcome = Synthesized of Ir.program | Unsat_at_budget

type report = {
  outcome : outcome;
  cegis_iters : int;
  instances_encoded : int;
  sat_stats : Sat.stats;
  n_vars : int;
  n_clauses : int;
  certified : bool option;
  wall_s : float;
}

(* --- template checking ----------------------------------------------------- *)

let check_template t =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let len = Array.length t.slots in
  if len = 0 then err "template %s: no slots" t.t_name
  else if t.n_regs < 1 then err "template %s: n_regs < 1" t.t_name
  else if t.n_consts < 1 then err "template %s: n_consts < 1" t.t_name
  else if t.obs_arity < 0 then err "template %s: negative obs_arity" t.t_name
  else begin
    let problem = ref None in
    let fail s fmt =
      Format.kasprintf
        (fun m -> if !problem = None then problem := Some (Printf.sprintf "slot %d: %s" s m))
        fmt
    in
    let reg s r = if r < 0 || r >= t.n_regs then fail s "register %d out of range" r in
    let field s f = if f < 0 || f >= t.obs_arity then fail s "field %d out of range" f in
    let port s = function
      | Ir.P_const c -> if c < 1 then fail s "port constant %d < 1" c
      | Ir.P_field f -> field s f
    in
    let target s tgt =
      if tgt <= s || tgt >= len then fail s "target %d not strictly forward (len %d)" tgt len
    in
    let cond s = function
      | Ir.C_deg_le (r, _) | Ir.C_deg_eq (r, _) -> reg s r
      | Ir.C_deg_mod (r, m, _) ->
          reg s r;
          if m < 1 then fail s "modulus %d < 1" m
      | Ir.C_port_ok (r, sel) ->
          reg s r;
          port s sel
      | Ir.C_label_eq (r, f, _) ->
          reg s r;
          field s f
      | Ir.C_field_eq (r, f1, f2) ->
          reg s r;
          field s f1;
          field s f2
      | Ir.C_node_eq (r1, r2) ->
          reg s r1;
          reg s r2
      | Ir.C_marked _ | Ir.C_queue_empty _ -> fail s "marks/queues outside the fragment"
    in
    Array.iteri
      (fun s menu ->
        if Array.length menu = 0 then fail s "empty menu";
        Array.iter
          (fun instr ->
            match instr with
            | Ir.Probe { at; path; dst } ->
                reg s at;
                reg s dst;
                if Array.length path = 0 then fail s "empty probe path";
                Array.iter (port s) path;
                if s = len - 1 then fail s "probe in terminal slot"
            | Ir.Move { src; dst } ->
                reg s src;
                reg s dst;
                if s = len - 1 then fail s "move in terminal slot"
            | Ir.Jump tgt -> target s tgt
            | Ir.Branch { cond = c; if_true; if_false } ->
                cond s c;
                target s if_true;
                target s if_false
            | Ir.Out_const k ->
                if k < 0 || k >= t.n_consts then fail s "output %d out of range" k
            | Ir.Mark _ | Ir.Push _ | Ir.Pop _ | Ir.Out_fn _ | Ir.Halt ->
                fail s "instruction outside the fragment")
          menu)
      t.slots;
    (* terminal slot: only outputs, so control cannot fall off the end *)
    Array.iter
      (function
        | Ir.Out_const _ -> ()
        | _ -> if !problem = None then problem := Some "terminal slot has a non-output")
      t.slots.(len - 1);
    match !problem with
    | Some m -> err "template %s: %s" t.t_name m
    | None -> Ok ()
  end

(* --- symbolic execution of one menu entry ---------------------------------- *)

(* A state of the forward-only machine on a concrete instance: program
   counter, register valuation, visited set as a bitmask (instances are
   capped at 62 nodes).  Volume is the popcount of the mask. *)
type state = { pc : int; regs : int array; mask : int }

type step = Next of state | Out of int | Trunc

let popcount m =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go m 0

let exec_instr ~g ~obs ~dist ~volume ~radius st instr =
  let deg v = Graph.degree g v in
  let port_at v = function Ir.P_const c -> c | Ir.P_field f -> obs v f in
  let eval_cond = function
    | Ir.C_deg_le (r, k) -> deg st.regs.(r) <= k
    | Ir.C_deg_eq (r, k) -> deg st.regs.(r) = k
    | Ir.C_deg_mod (r, m, k) -> deg st.regs.(r) mod m = k
    | Ir.C_port_ok (r, sel) ->
        let v = st.regs.(r) in
        let pt = port_at v sel in
        pt >= 1 && pt <= deg v
    | Ir.C_label_eq (r, f, k) -> obs st.regs.(r) f = k
    | Ir.C_field_eq (r, f1, f2) -> obs st.regs.(r) f1 = obs st.regs.(r) f2
    | Ir.C_node_eq (r1, r2) -> st.regs.(r1) = st.regs.(r2)
    | Ir.C_marked _ | Ir.C_queue_empty _ -> assert false
  in
  match instr with
  | Ir.Out_const k -> Out k
  | Ir.Jump t -> Next { st with pc = t }
  | Ir.Branch { cond; if_true; if_false } ->
      Next { st with pc = (if eval_cond cond then if_true else if_false) }
  | Ir.Move { src; dst } ->
      let regs = Array.copy st.regs in
      regs.(dst) <- regs.(src);
      Next { pc = st.pc + 1; regs; mask = st.mask }
  | Ir.Probe { at; path; dst } -> (
      (* Mirrors Exec hop for hop: port validity first, then the admit
         with its volume-then-distance truncation order. *)
      let exception T in
      try
        let cur = ref st.regs.(at) in
        let mask = ref st.mask in
        Array.iter
          (fun sel ->
            let v = !cur in
            let pt = port_at v sel in
            if pt < 1 || pt > deg v then raise_notrace T;
            let u = Graph.neighbor g v pt in
            if !mask land (1 lsl u) = 0 then begin
              if popcount !mask >= volume then raise_notrace T;
              if dist.(u) > radius then raise_notrace T;
              mask := !mask lor (1 lsl u)
            end;
            cur := u)
          path;
        let regs = Array.copy st.regs in
        regs.(dst) <- !cur;
        Next { pc = st.pc + 1; regs; mask = !mask }
      with T -> Trunc)
  | Ir.Mark _ | Ir.Push _ | Ir.Pop _ | Ir.Out_fn _ | Ir.Halt -> assert false

(* --- per-instance encoding ------------------------------------------------- *)

let bfs_dist g origin =
  let n = Graph.n g in
  let dist = Array.make n max_int in
  let q = Queue.create () in
  dist.(origin) <- 0;
  Queue.push origin q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    Array.iter
      (fun u ->
        if dist.(u) = max_int then begin
          dist.(u) <- dist.(v) + 1;
          Queue.push u q
        end)
      (Graph.neighbors g v)
  done;
  dist

let ball_enum_cap = 65536

(* Encode one instance: output variables per node, the symbolic
   execution DAG per origin, and the checker's blocking clauses. *)
let encode_instance (type i o) cnf ~ch ~(template : template) ~volume ~radius
    ~(lcl : (i, o) Lcl.t) ~(consts : o array) ~(obs : i -> int -> int) (g : Graph.t)
    (input : Graph.node -> i) =
  let n = Graph.n g in
  if n > 62 then Error (Printf.sprintf "instance with %d nodes exceeds the 62-node cap" n)
  else begin
    let nc = template.n_consts in
    (* y.(u).(k): node u outputs consts.(k) *)
    let y = Array.init n (fun _ -> Array.init nc (fun _ -> Cnf.fresh cnf)) in
    Array.iter (fun row -> Cnf.exactly_one cnf (Array.to_list row)) y;
    let obs_node v f = obs (input v) f in
    (* the execution DAG, one per origin *)
    for origin = 0 to n - 1 do
      let dist = bfs_dist g origin in
      let tbl = Hashtbl.create 64 in
      let work = Queue.create () in
      let var_of st =
        let key = (st.pc, Array.to_list st.regs, st.mask) in
        match Hashtbl.find_opt tbl key with
        | Some v -> v
        | None ->
            let v = Cnf.fresh cnf in
            Hashtbl.add tbl key v;
            Queue.push (st, v) work;
            v
      in
      let root =
        { pc = 0; regs = Array.make template.n_regs origin; mask = 1 lsl origin }
      in
      Cnf.add cnf [ var_of root ];
      while not (Queue.is_empty work) do
        let st, av = Queue.pop work in
        Array.iteri
          (fun m instr ->
            let choice = ch.(st.pc).(m) in
            match exec_instr ~g ~obs:obs_node ~dist ~volume ~radius st instr with
            | Trunc -> Cnf.add cnf [ -av; -choice ]
            | Out k -> Cnf.add cnf [ -av; -choice; y.(origin).(k) ]
            | Next st' -> Cnf.add cnf [ -av; -choice; var_of st' ])
          template.slots.(st.pc)
      done
    done;
    (* checker: block every invalid output assignment of each node's
       checking ball *)
    let err = ref None in
    for u = 0 to n - 1 do
      if !err = None then begin
        let du = bfs_dist g u in
        let ball =
          List.filter (fun v -> du.(v) <= lcl.Lcl.radius) (List.init n Fun.id)
        in
        let b = List.length ball in
        let combos =
          let rec pow acc i = if i = 0 then acc else pow (acc * nc) (i - 1) in
          pow 1 b
        in
        if combos > ball_enum_cap then
          err :=
            Some
              (Printf.sprintf "checker ball of node %d needs %d combinations (cap %d)" u
                 combos ball_enum_cap)
        else begin
          let ball = Array.of_list ball in
          let assign = Array.make n 0 in
          for c = 0 to combos - 1 do
            let x = ref c in
            Array.iter
              (fun v ->
                assign.(v) <- !x mod nc;
                x := !x / nc)
              ball;
            let output v = consts.(assign.(v)) in
            match lcl.Lcl.valid_at g ~input ~output u with
            | Ok () -> ()
            | Error _ ->
                Cnf.add cnf
                  (Array.to_list (Array.map (fun v -> -y.(v).(assign.(v))) ball))
          done
        end
      end
    done;
    match !err with Some e -> Error e | None -> Ok ()
  end

(* --- decoding and counterexample checking ---------------------------------- *)

let decode_program cnf ~ch ~(template : template) ~volume ~radius =
  (* Reconstruct each chosen instruction through the JSON codec, so the
     wire path is part of every CEGIS iteration. *)
  let chosen s =
    let menu = template.slots.(s) in
    let rec find m =
      if m >= Array.length menu then Error (Printf.sprintf "slot %d: no choice set" s)
      else if Cnf.value cnf ch.(s).(m) then
        Ir.instr_of_json (Ir.instr_to_json menu.(m))
      else find (m + 1)
    in
    find 0
  in
  let rec all s acc =
    if s >= Array.length template.slots then Ok (List.rev acc)
    else match chosen s with Error e -> Error e | Ok i -> all (s + 1) (i :: acc)
  in
  match all 0 [] with
  | Error e -> Error ("decode: " ^ e)
  | Ok code ->
      let program =
        {
          Ir.name = template.t_name;
          n_regs = template.n_regs;
          n_queues = 0;
          obs_arity = template.obs_arity;
          n_consts = template.n_consts;
          n_fns = 0;
          declared =
            {
              Vc_model.Probe.max_volume = Some volume;
              max_distance = Some radius;
            };
          max_steps = None;
          code = Array.of_list code;
        }
      in
      (match Ir.validate program with
      | Ok () -> Ok program
      | Error e -> Error ("decoded witness fails Ir.validate: " ^ e))

(* Run the candidate on one instance from every origin: reference and
   batched executors must agree byte for byte, every run must complete
   within the declared envelope, and the assembled outputs must satisfy
   the checker.  [Ok true] = instance passed. *)
let check_candidate (type i o) (spec : (i, o) Ir.spec) ~(lcl : (i, o) Lcl.t)
    (g : Graph.t) (input : Graph.node -> i) =
  let n = Graph.n g in
  let origins = Array.init n Fun.id in
  let batched = Exec.run_batch spec ~graph:g ~input ~origins in
  let world = Vc_model.World.of_graph g ~input in
  let mismatch = ref None in
  Array.iteri
    (fun i origin ->
      if !mismatch = None then begin
        let reference = Exec.run spec ~world ~origin in
        if compare reference batched.(i) <> 0 then
          mismatch := Some (Printf.sprintf "origin %d: run vs run_batch diverge" origin)
      end)
    origins;
  match !mismatch with
  | Some e -> Error e
  | None ->
      let all_output =
        Array.for_all
          (fun (r : o Vc_model.Probe.result) -> (not r.aborted) && r.output <> None)
          batched
      in
      if not all_output then Ok false
      else begin
        let out = Array.map (fun (r : o Vc_model.Probe.result) -> Option.get r.output) batched in
        Ok (Lcl.is_valid lcl g ~input ~output:(fun v -> out.(v)))
      end

let recheck (U u) program =
  match Ir.validate program with
  | Error e -> Error ("witness fails Ir.validate: " ^ e)
  | Ok () ->
      let spec = { Ir.program; obs = u.obs; consts = u.consts; fns = [||] } in
      Array.fold_left
        (fun acc (label, g, input) ->
          match acc with
          | Error _ -> acc
          | Ok () -> (
              match check_candidate spec ~lcl:u.lcl g input with
              | Error e -> Error (Printf.sprintf "instance %s: %s" label e)
              | Ok false -> Error (Printf.sprintf "witness fails instance %s" label)
              | Ok true -> Ok ()))
        (Ok ()) u.instances

(* --- the CEGIS loop -------------------------------------------------------- *)

let synthesize ?(seed_instances = 2) ?(max_cegis = 32) ?(certify = false) ?dimacs_out
    (U u) ~template ~volume ~radius =
  let t0 = Unix.gettimeofday () in
  match check_template template with
  | Error e -> Error e
  | Ok () ->
      let cnf = Cnf.create () in
      let finish outcome ~iters ~encoded ~certified =
        Option.iter (Cnf.write_dimacs cnf) dimacs_out;
        Ok
          {
            outcome;
            cegis_iters = iters;
            instances_encoded = encoded;
            sat_stats = Cnf.stats cnf;
            n_vars = Cnf.n_vars cnf;
            n_clauses = Cnf.n_clauses cnf;
            certified;
            wall_s = Unix.gettimeofday () -. t0;
          }
      in
      if volume < 1 || radius < 0 then
        (* The origin is always visited: VOL >= 1 is an axiom of the
           model, not something the executor's budget can catch (an
           origin-only program never admits). *)
        finish Unsat_at_budget ~iters:0 ~encoded:0 ~certified:None
      else begin
        let ch =
          Array.map
            (fun menu -> Array.map (fun _ -> Cnf.fresh cnf) menu)
            template.slots
        in
        Array.iter (fun row -> Cnf.exactly_one cnf (Array.to_list row)) ch;
        let n_inst = Array.length u.instances in
        if n_inst = 0 then Error "empty instance corpus"
        else begin
          let encoded = Array.make n_inst false in
          let encode_idx i =
            let _, g, input = u.instances.(i) in
            encoded.(i) <- true;
            encode_instance cnf ~ch ~template ~volume ~radius ~lcl:u.lcl
              ~consts:u.consts ~obs:u.obs g input
          in
          let rec seed i =
            if i >= min seed_instances n_inst then Ok ()
            else match encode_idx i with Error e -> Error e | Ok () -> seed (i + 1)
          in
          match seed 0 with
          | Error e -> Error e
          | Ok () ->
              let rec loop iters =
                if iters >= max_cegis then
                  Error (Printf.sprintf "CEGIS did not converge in %d iterations" max_cegis)
                else
                  match Cnf.solve cnf with
                  | Sat -> (
                      match decode_program cnf ~ch ~template ~volume ~radius with
                      | Error e -> Error e
                      | Ok program -> (
                          let spec =
                            { Ir.program; obs = u.obs; consts = u.consts; fns = [||] }
                          in
                          let failing = ref None in
                          let fatal = ref None in
                          Array.iteri
                            (fun i (label, g, input) ->
                              if !failing = None && !fatal = None then
                                match check_candidate spec ~lcl:u.lcl g input with
                                | Error e ->
                                    fatal :=
                                      Some (Printf.sprintf "instance %s: %s" label e)
                                | Ok true -> ()
                                | Ok false ->
                                    if encoded.(i) then
                                      fatal :=
                                        Some
                                          (Printf.sprintf
                                             "encoding divergence: witness fails \
                                              already-encoded instance %s"
                                             label)
                                    else failing := Some i)
                            u.instances;
                          match (!fatal, !failing) with
                          | Some e, _ -> Error e
                          | None, None ->
                              finish (Synthesized program) ~iters:(iters + 1)
                                ~encoded:
                                  (Array.fold_left
                                     (fun acc b -> if b then acc + 1 else acc)
                                     0 encoded)
                                ~certified:None
                          | None, Some i -> (
                              match encode_idx i with
                              | Error e -> Error e
                              | Ok () -> loop (iters + 1))))
                  | Unsat ->
                      let certified =
                        if certify then
                          match Cnf.certify_unsat cnf with
                          | Ok () -> Some true
                          | Error _ -> Some false
                        else None
                      in
                      finish Unsat_at_budget ~iters:(iters + 1)
                        ~encoded:
                          (Array.fold_left
                             (fun acc b -> if b then acc + 1 else acc)
                             0 encoded)
                        ~certified
              in
              loop 0
        end
      end
