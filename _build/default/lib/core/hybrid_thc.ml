module TL = Vc_graph.Tree_labels
module Graph = Vc_graph.Graph
module Probe = Vc_model.Probe
module World = Vc_model.World
module Lcl = Vc_lcl.Lcl
module Splitmix = Vc_rng.Splitmix
module BT = Balanced_tree
module H = Hierarchical_thc

type node_input = {
  parent : TL.ptr;
  left : TL.ptr;
  right : TL.ptr;
  left_nbr : TL.ptr;
  right_nbr : TL.ptr;
  color : TL.color;
  level : int;
}

let pp_node_input ppf i =
  Fmt.pf ppf "P=%d LC=%d RC=%d LN=%d RN=%d chi=%a lvl=%d" i.parent i.left i.right i.left_nbr
    i.right_nbr TL.pp_color i.color i.level

type output =
  | Solved of BT.output
  | Sym of H.output

let equal_output a b =
  match (a, b) with
  | Solved x, Solved y -> BT.equal_output x y
  | Sym x, Sym y -> H.equal_output x y
  | (Solved _ | Sym _), _ -> false

let pp_output ppf = function
  | Solved o -> BT.pp_output ppf o
  | Sym o -> H.pp_output ppf o

type instance = {
  graph : Graph.t;
  labels : node_input array;
  k : int;
}

let input inst v = inst.labels.(v)

let world inst = World.of_graph inst.graph ~input:(input inst)

(* --- structural accessors ---------------------------------------------- *)

type 'a access = {
  degree : Graph.node -> int;
  node_input : Graph.node -> node_input;
  follow : Graph.node -> TL.ptr -> Graph.node;
}

let resolve a v p =
  if p = TL.bot || p < 1 || p > a.degree v then None else Some (a.follow v p)

let lvl ~k a v =
  let l = (a.node_input v).level in
  if l < 1 || l > k + 1 then k + 1 else l

let reciprocated_child a v p =
  match resolve a v p with
  | None -> None
  | Some u -> (
      match resolve a u (a.node_input u).parent with
      | Some v' when v' = v -> Some u
      | Some _ | None -> None)

(* The hung subtree edge of a level >= 2 node: reciprocated right child
   one level down. *)
let rc_child ~k a v =
  match reciprocated_child a v (a.node_input v).right with
  | Some u when lvl ~k a u = lvl ~k a v - 1 -> Some u
  | Some _ | None -> None

let backbone_child ~k a v =
  match reciprocated_child a v (a.node_input v).left with
  | Some u when lvl ~k a u = lvl ~k a v -> Some u
  | Some _ | None -> None

let backbone_parent ~k a v =
  match resolve a v (a.node_input v).parent with
  | None -> None
  | Some u -> (
      match reciprocated_child a u (a.node_input u).left with
      | Some v' when v' = v && lvl ~k a u = lvl ~k a v -> Some u
      | Some _ | None -> None)

(* The BalancedTree view of a level-1 node: pointers leaving level 1 are
   masked to ⊥ (the level-1 subgraph is what Definition 6.1 checks);
   unresolvable pointers are kept so BalancedTree sees the defect. *)
let bt_input ~k a v =
  let mask p =
    match resolve a v p with
    | None -> p
    | Some u -> if lvl ~k a u = 1 then p else TL.bot
  in
  let i = a.node_input v in
  if lvl ~k a v <> 1 then
    { BT.parent = TL.bot; left = TL.bot; right = TL.bot; left_nbr = TL.bot; right_nbr = TL.bot }
  else
    {
      BT.parent = mask i.parent;
      left = mask i.left;
      right = mask i.right;
      left_nbr = mask i.left_nbr;
      right_nbr = mask i.right_nbr;
    }

(* Neighbors of a level-1 node in the pseudo-forest G_T of its
   BalancedTree component (for the unanimous-decline rule). *)
let bt_gt_neighbors ~k a v =
  let i = bt_input ~k a v in
  let child p =
    match reciprocated_child a v p with
    | Some u when lvl ~k a u = 1 -> [ u ]
    | Some _ | None -> []
  in
  let parent =
    match resolve a v i.BT.parent with
    | Some u
      when lvl ~k a u = 1
           && (reciprocated_child a u (a.node_input u).left = Some v
              || reciprocated_child a u (a.node_input u).right = Some v) ->
        [ u ]
    | Some _ | None -> []
  in
  parent @ child i.BT.left @ child i.BT.right

(* --- the LCL checker (Definition 6.1) ----------------------------------- *)

let junk_bt = { BT.verdict = BT.Unbal; port = -1 }

let problem ~k : (node_input, output) Lcl.t =
  let valid_at g ~input:inp ~output:out v =
    let a = { degree = Graph.degree g; node_input = inp; follow = Graph.neighbor g } in
    let l = lvl ~k a v in
    let chi u = (inp u).color in
    let err fmt = Fmt.kstr (fun s -> Error s) fmt in
    let sym u = match out u with Sym s -> Some s | Solved _ -> None in
    if l > k then
      match out v with
      | Sym H.Exempt -> Ok ()
      | o -> err "level > k must be exempt, got %a" pp_output o
    else if l = 1 then begin
      match out v with
      | Sym H.Decline ->
          if
            List.for_all
              (fun u -> match out u with Sym H.Decline -> true | Sym _ | Solved _ -> false)
              (bt_gt_neighbors ~k a v)
          then Ok ()
          else err "declining level-1 node has a non-declining G_T neighbor"
      | Solved _ | Sym _ ->
          (* BalancedTree validity on the masked level-1 subgraph; any
             non-BalancedTree output of a referenced node reads as junk
             and fails the comparison. *)
          let bt_out u = match out u with Solved o -> o | Sym _ -> junk_bt in
          BT.problem.Lcl.valid_at g ~input:(bt_input ~k a) ~output:bt_out v
    end
    else begin
      (* levels 2..k: Definition 5.5 conditions, with exemption at level
         2 requiring a solved BalancedTree below (Definition 6.1). *)
      let rc_out = Option.map out (rc_child ~k a v) in
      let rc_solved =
        if l = 2 then match rc_out with Some (Solved _) -> true | Some (Sym _) | None -> false
        else
          match rc_out with
          | Some (Sym (H.Chromatic _ | H.Exempt)) -> true
          | Some (Sym H.Decline) | Some (Solved _) | None -> false
      in
      let bc = backbone_child ~k a v in
      let is_leaf = bc = None in
      let top = l = k && k >= 3 in
      match out v with
      | Solved _ -> err "levels >= 2 must output an R/B/D/X symbol"
      | Sym s -> (
          match s with
          | H.Exempt -> if rc_solved then Ok () else err "exempt requires a solved subtree"
          | H.Decline ->
              if top then err "level-k nodes may not decline"
              else if is_leaf then Ok ()
              else (
                match Option.bind bc sym with
                | Some H.Decline -> Ok ()
                | Some H.Exempt -> Ok () (* condition 4(c): D above an exempt node *)
                | Some (H.Chromatic _) | None ->
                    err "declining backbone node must sit above D or X")
          | H.Chromatic c ->
              if is_leaf then
                if TL.equal_color c (chi v) then Ok ()
                else err "chromatic leaf must echo its input color"
              else (
                match Option.bind bc sym with
                | Some H.Exempt ->
                    if TL.equal_color c (chi v) then Ok ()
                    else err "above an exempt node: must echo own input color"
                | Some (H.Chromatic c') when TL.equal_color c c' -> Ok ()
                | Some (H.Chromatic _ | H.Decline) | None ->
                    err "chromatic backbone node must copy its child or sit above X"))
    end
  in
  { Lcl.name = Printf.sprintf "Hybrid-THC(%d)" k; radius = 2 * (k + 2); valid_at }

(* --- instance generators -------------------------------------------------- *)

type builder = {
  mutable parent_of : (int * int) list;
  mutable left_of : (int * int) list;
  mutable right_of : (int * int) list;
  mutable ln_of : (int * int) list;
  mutable rn_of : (int * int) list;
  mutable level_of : (int * int) list;
  mutable next : int;
}

let new_node b l =
  let v = b.next in
  b.next <- v + 1;
  b.level_of <- (v, l) :: b.level_of;
  v

(* A fully compatible BalancedTree of the given depth, all nodes at
   level 1, rooted below [parent]. *)
let gen_bt b ~depth ~parent =
  let size = (1 lsl (depth + 1)) - 1 in
  let base = b.next in
  for _ = 1 to size do
    ignore (new_node b 1)
  done;
  let node i = base + i in
  for i = 0 to size - 1 do
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    if l < size then begin
      b.left_of <- (node i, node l) :: b.left_of;
      b.parent_of <- (node l, node i) :: b.parent_of
    end;
    if r < size then begin
      b.right_of <- (node i, node r) :: b.right_of;
      b.parent_of <- (node r, node i) :: b.parent_of
    end
  done;
  (* lateral pointers between consecutive nodes of each depth row *)
  for d = 1 to depth do
    let first = (1 lsl d) - 1 in
    for i = 0 to (1 lsl d) - 2 do
      b.rn_of <- (node (first + i), node (first + i + 1)) :: b.rn_of;
      b.ln_of <- (node (first + i + 1), node (first + i)) :: b.ln_of
    done
  done;
  b.parent_of <- (node 0, parent) :: b.parent_of;
  node 0

let rec gen_backbone b ~k ~len l ~sub =
  let backbone = Array.init (max 1 len) (fun _ -> new_node b l) in
  for i = 0 to Array.length backbone - 2 do
    b.left_of <- (backbone.(i), backbone.(i + 1)) :: b.left_of;
    b.parent_of <- (backbone.(i + 1), backbone.(i)) :: b.parent_of
  done;
  Array.iteri
    (fun i v ->
      let root = sub ~parent:v ~level:(l - 1) ~index:i in
      b.right_of <- (v, root) :: b.right_of;
      if l - 1 > 1 then b.parent_of <- (root, v) :: b.parent_of)
    backbone;
  ignore k;
  backbone.(0)

and gen_uniform b ~k ~len ~bt_depth l ~parent =
  if l = 1 then gen_bt b ~depth:bt_depth ~parent
  else
    gen_backbone b ~k ~len l ~sub:(fun ~parent ~level ~index:_ ->
        gen_uniform b ~k ~len ~bt_depth level ~parent)

let finish b ~k ~seed =
  let n = b.next in
  let undirected l = List.map (fun (v, u) -> (min v u, max v u)) l in
  let edges =
    List.sort_uniq compare
      (undirected b.left_of @ undirected b.right_of @ undirected b.rn_of
     @ undirected b.parent_of)
  in
  let g = Graph.of_edges ~n edges in
  let assoc l =
    let tbl = Hashtbl.create (List.length l) in
    List.iter (fun (v, u) -> Hashtbl.replace tbl v u) l;
    fun v -> Hashtbl.find_opt tbl v
  in
  let parent = assoc b.parent_of
  and left = assoc b.left_of
  and right = assoc b.right_of
  and ln = assoc b.ln_of
  and rn = assoc b.rn_of
  and level = assoc b.level_of in
  let rng = Splitmix.create seed in
  let port v = function
    | None -> TL.bot
    | Some u -> ( match Graph.port_to g v u with Some p -> p | None -> TL.bot)
  in
  let labels =
    Array.init n (fun v ->
        {
          parent = port v (parent v);
          left = port v (left v);
          right = port v (right v);
          left_nbr = port v (ln v);
          right_nbr = port v (rn v);
          color = (if Splitmix.bool rng then TL.Red else TL.Blue);
          level = (match level v with Some l -> l | None -> 1);
        })
  in
  { graph = g; labels; k }

let fresh_builder () =
  { parent_of = []; left_of = []; right_of = []; ln_of = []; rn_of = []; level_of = []; next = 0 }

let uniform_instance ~k ~len ~bt_depth ~seed =
  if k < 2 then invalid_arg "Hybrid_thc.uniform_instance: k must be >= 2";
  let b = fresh_builder () in
  ignore (gen_uniform b ~k ~len ~bt_depth k ~parent:(-1));
  finish b ~k ~seed

let hard_instance ~k ~target_n ~seed =
  if k < 2 then invalid_arg "Hybrid_thc.hard_instance: k must be >= 2";
  let r =
    max 8 (int_of_float (Float.round (Float.pow (float_of_int target_n) (1.0 /. float_of_int k))))
  in
  let backbone_len = 3 * r in
  let run_len = max 1 (r / 4) in
  let run_start = (backbone_len - run_len) / 2 in
  (* The run's BalancedTrees must exceed the scan threshold (≈ 2.5·r
     for this shape) without dominating n: aim for ≈ 3r nodes each, so
     n ≈ (run_len)·3r ≈ 0.75·r² and the threshold 2√n stays below both
     the backbone length (3r) and the tree size. *)
  let big_depth = max 2 (Probe_tree.log2_ceil ((3 * r) + 1) - 1) in
  let small_depth = 1 in
  let b = fresh_builder () in
  let rec gen_hard l ~parent =
    if l = 1 then gen_bt b ~depth:big_depth ~parent
    else
      gen_backbone b ~k ~len:backbone_len l ~sub:(fun ~parent ~level ~index ->
          if index >= run_start && index < run_start + run_len then gen_hard level ~parent
          else if level = 1 then gen_bt b ~depth:small_depth ~parent
          else gen_uniform b ~k ~len:2 ~bt_depth:small_depth level ~parent)
  in
  let top = gen_hard k ~parent:(-1) in
  let inst = finish b ~k ~seed in
  (inst, top + run_start + (run_len / 2))

(* --- solvers ---------------------------------------------------------------- *)

let probe_access ctx =
  {
    degree = Probe.degree ctx;
    node_input = (fun v -> Probe.input ctx v);
    follow = (fun v p -> Probe.query ctx ~at:v ~port:p);
  }

let solve_bt ~k a ~n v =
  BT.solve_core ~degree:a.degree ~input:(bt_input ~k a) ~follow:a.follow ~n v

(* The O(log n)-distance strategy of Theorem 6.3: solve the BalancedTree
   at level 1; every higher node exempts itself, anchored on the fact
   that the component below it is always solved. *)
let solve_distance_access ~k ~access:a ~n v0 =
  let l = lvl ~k a v0 in
  if l > k then Sym H.Exempt
  else if l = 1 then Solved (solve_bt ~k a ~n v0)
  else
    match rc_child ~k a v0 with
    | Some _ -> Sym H.Exempt
    | None ->
        (* no hung subtree: cannot exempt; echo the input color, which
           is valid for a backbone leaf *)
        Sym (H.Chromatic (a.node_input v0).color)

let solve_distance ~k =
  Lcl.solver
    ~name:(Printf.sprintf "all-exempt+BT(k=%d) (Thm 6.3)" k)
    ~randomized:false
    (fun ctx ->
      solve_distance_access ~k ~access:(probe_access ctx) ~n:(Probe.n ctx) (Probe.origin ctx))

(* Size of the level-1 BalancedTree component around [v], counted up to
   [limit] by BFS over the masked structure. *)
let bt_component_size ~k a ~limit v =
  let seen = Hashtbl.create 64 in
  Hashtbl.add seen v ();
  let queue = Queue.create () in
  Queue.add v queue;
  let count = ref 1 in
  while (not (Queue.is_empty queue)) && !count <= limit do
    let u = Queue.pop queue in
    List.iter
      (fun w ->
        if not (Hashtbl.mem seen w) then begin
          Hashtbl.add seen w ();
          incr count;
          Queue.add w queue
        end)
      (bt_gt_neighbors ~k a u)
  done;
  !count

(* Backbone component scan at levels >= 2, as in Hierarchical-THC. *)
let scan_component ~k a ~id ~threshold ~limit v =
  let rec down u steps acc =
    if steps > limit then `Cut acc
    else
      match backbone_child ~k a u with
      | None -> `Leaf (u, acc)
      | Some w -> if w = v then `Cycle acc else down w (steps + 1) (w :: acc)
  in
  match down v 0 [ v ] with
  | `Cycle members ->
      if List.length members <= threshold then
        `Small (List.fold_left (fun best u -> if id u < id best then u else best) v members)
      else `Deep
  | `Cut _ -> `Deep
  | `Leaf (leaf, members) -> (
      let rec up u steps acc =
        if steps > limit then `Cut acc
        else
          match backbone_parent ~k a u with
          | None -> `Root acc
          | Some w -> up w (steps + 1) (w :: acc)
      in
      match up v 0 members with
      | `Cut _ -> `Deep
      | `Root members -> if List.length members <= threshold then `Small leaf else `Deep)

let solve_volume_access ~k ~is_waypoint ~access:a ~n ~id v0 =
  let threshold = 2 * H.kth_root n k in
  let chi v = (a.node_input v).color in
  let bt_small v = bt_component_size ~k a ~limit:(threshold + 1) v <= threshold in
  let rec solve v l =
    if l > k then Sym H.Exempt
    else if l = 1 then
      if bt_small v then Solved (solve_bt ~k a ~n v) else Sym H.Decline
    else
      match scan_component ~k a ~id ~threshold ~limit:(threshold + 1) v with
      | `Small anchor -> Sym (H.Chromatic (chi anchor))
      | `Deep ->
          let rc_solved u =
            is_waypoint u
            &&
            match rc_child ~k a u with
            | None -> false
            | Some r ->
                if l = 2 then bt_small r
                else (
                  match solve r (l - 1) with
                  | Sym (H.Chromatic _ | H.Exempt) -> true
                  | Sym H.Decline | Solved _ -> false)
          in
          Sym
            (H.backbone_solve
               ~bc:(backbone_child ~k a)
               ~bp:(backbone_parent ~k a)
               ~chi ~rc_solved
               ~decline_allowed:(l = 2 || l < k)
               ~threshold v)
  in
  solve v0 (lvl ~k a v0)

let solve_volume_gen ~k ~is_waypoint ctx =
  solve_volume_access ~k ~is_waypoint ~access:(probe_access ctx) ~n:(Probe.n ctx)
    ~id:(Probe.id ctx) (Probe.origin ctx)

let solve_volume_deterministic ~k =
  Lcl.solver
    ~name:(Printf.sprintf "hybrid volume, deterministic (k=%d)" k)
    ~randomized:false
    (fun ctx -> solve_volume_gen ~k ~is_waypoint:(fun _ -> true) ctx)

let solve_volume_waypoint ~k ?(c = 3.0) () =
  Lcl.solver
    ~name:(Printf.sprintf "hybrid volume, way-point (k=%d, c=%.1f)" k c)
    ~randomized:true
    (fun ctx ->
      let n = Probe.n ctx in
      let p =
        Float.min 1.0 (c *. log (float_of_int (max 2 n)) /. float_of_int (H.kth_root n k))
      in
      let is_waypoint v =
        let scaled = int_of_float (p *. 1073741824.0) in
        let rec value i acc =
          if i = 30 then acc
          else value (i + 1) ((2 * acc) + if Probe.rand_bit_at ctx v i then 1 else 0)
        in
        value 0 0 < scaled
      in
      solve_volume_gen ~k ~is_waypoint ctx)

let solvers ~k =
  [ solve_distance ~k; solve_volume_deterministic ~k; solve_volume_waypoint ~k () ]
