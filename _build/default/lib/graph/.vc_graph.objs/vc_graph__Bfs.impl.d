lib/graph/bfs.ml: Array Graph Hashtbl List Queue
