(** Experiment runner: execute a solver over many start nodes, collect
    DIST/VOL statistics (Definitions 2.1–2.2 take the supremum over
    start nodes), and check the assembled output with the problem's own
    local checker. *)

module Graph = Vc_graph.Graph
module Lcl = Vc_lcl.Lcl

type stats = {
  runs : int;
  max_volume : int;
  mean_volume : float;
  max_distance : int;
  mean_distance : float;
  max_queries : int;
  max_rand_bits : int;
  aborted : int;
}

val pp_stats : Format.formatter -> stats -> unit

val measure :
  world:'i Vc_model.World.t ->
  solver:('i, 'o) Lcl.solver ->
  ?randomness:Vc_rng.Randomness.t ->
  ?budget:Vc_model.Probe.budget ->
  origins:Graph.node list ->
  unit ->
  stats * (Graph.node * 'o) list
(** Run the solver from each origin; aborted runs contribute their cost
    but no output. *)

val solve_and_check :
  world:'i Vc_model.World.t ->
  problem:('i, 'o) Lcl.t ->
  graph:Graph.t ->
  input:(Graph.node -> 'i) ->
  solver:('i, 'o) Lcl.solver ->
  ?randomness:Vc_rng.Randomness.t ->
  unit ->
  stats * bool
(** Run from {e every} node, assemble the full output labeling, and
    report whether it is globally valid. *)

val sample_origins : Graph.t -> count:int -> seed:int64 -> Graph.node list
(** Deterministic sample of distinct start nodes. *)
