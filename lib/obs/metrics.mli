(** Monotonic counters and power-of-two histograms for the paper's cost
    quantities (probes issued, BFS nodes expanded, randomness bits,
    CONGEST bits per round, pool chunks, …).

    {b Cost model.}  Collection is globally off by default.  Every
    {!incr}/{!add}/{!observe} first reads one mutable [bool]; when
    collection is disabled that read-and-branch is the {e entire} cost,
    so instrumented hot paths stay within noise of their uninstrumented
    form ([volcomp bench --micro] gates this at 5%).  When enabled,
    updates are [Atomic] fetch-and-adds, so counts from a parallel
    {!Vc_exec.Pool} fan-out are exact: atomic adds commute, hence totals
    are deterministic even though interleavings are not.

    {b Registration} is idempotent by name and happens at module
    initialization time of the instrumented libraries; a counter handle
    is just a name plus one atomic cell.  Toggle collection only at
    quiescent points (no pool jobs in flight): the enable flag is a
    plain racy-read [bool] by design. *)

type counter
type histogram

val counter : string -> counter
(** Register (or look up) the counter with this name. *)

val histogram : string -> histogram
(** Register (or look up) the histogram with this name.  Buckets are
    powers of two: bucket 0 holds observations [<= 0], bucket [k >= 1]
    holds observations in [[2^(k-1), 2^k)]. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val with_enabled : (unit -> 'a) -> 'a
(** Run with collection on, restoring the previous state afterwards. *)

val incr : counter -> unit
val add : counter -> int -> unit

val record_max : counter -> int -> unit
(** Raise the counter to [v] if [v] exceeds its current value (a
    monotone high-water mark, e.g. peak in-flight depth).  Lock-free and
    race-safe: concurrent recorders keep the maximum. *)

val observe : histogram -> int -> unit

val value : counter -> int

val reset : unit -> unit
(** Zero every registered counter and histogram (registrations stay). *)

val snapshot : unit -> (string * int) list
(** All counters, sorted by name. *)

val snapshot_histograms : unit -> (string * (int * int) list) list
(** All histograms, sorted by name; each as [(bucket lower bound,
    count)] for the non-empty buckets, in increasing bound order. *)

val to_json : unit -> Json.t
(** [{"counters":{name:value,…},"histograms":{name:{"total":n,
    "buckets":[[lo,count],…]},…}}], names sorted. *)

val pp : Format.formatter -> unit -> unit
(** Human-readable table of the current snapshot. *)
