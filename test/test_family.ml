(* Structural properties of the graph-family builders (lib/family) and
   the checkers of the marquee family problems.  The builders feed the
   conformance registry, the measurement ladders and the CLI, so their
   invariants — normal-form torus ports, simple exactly-d-regular
   configuration graphs, bounded-degree expanders — are pinned here at
   the unit level; the registry probes then exercise them end to end. *)

module Graph = Vc_graph.Graph
module Family = Vc_family.Family
module C4 = Vc_family.Coloring4
module Matching = Vc_family.Matching
module Mis = Vc_family.Mis
module Gen = Vc_check.Gen
module Lcl = Vc_lcl.Lcl

(* --- torus grids ----------------------------------------------------------- *)

(* The unshuffled torus must carry the grid normal form exactly: node
   (x, y) is index y*w + x, port 1 leads east, 2 west, 3 north, 4 south,
   all with wraparound. *)
let test_torus_ports () =
  List.iter
    (fun (w, h) ->
      let g = Family.torus ~w ~h in
      Alcotest.(check int) (Printf.sprintf "%dx%d node count" w h) (w * h) (Graph.n g);
      for v = 0 to (w * h) - 1 do
        let x = v mod w and y = v / w in
        Alcotest.(check (pair int int))
          (Printf.sprintf "coords of %d" v)
          (x, y)
          (Family.torus_coords ~w v);
        Alcotest.(check int) (Printf.sprintf "degree of %d" v) 4 (Graph.degree g v);
        let expect port = Graph.neighbor g v port in
        Alcotest.(check int) "east" ((y * w) + ((x + 1) mod w)) (expect 1);
        Alcotest.(check int) "west" ((y * w) + ((x + w - 1) mod w)) (expect 2);
        Alcotest.(check int) "north" ((((y + 1) mod h) * w) + x) (expect 3);
        Alcotest.(check int) "south" ((((y + h - 1) mod h) * w) + x) (expect 4)
      done)
    [ (4, 4); (6, 4); (5, 3) ]

let test_torus_dims () =
  List.iter
    (fun size ->
      let w, h = Family.torus_dims ~size in
      let msg what = Printf.sprintf "size=%d %s" size what in
      Alcotest.(check bool) (msg "w even") true (w mod 2 = 0);
      Alcotest.(check bool) (msg "h even") true (h mod 2 = 0);
      Alcotest.(check bool) (msg "capacity") true (w * h >= max 16 size);
      (* near-square: the sides differ by at most one doubling step *)
      Alcotest.(check bool) (msg "near-square") true (abs (w - h) <= max w h / 2))
    [ 1; 16; 36; 64; 100; 1000 ]

let test_torus_of_size_valid () =
  List.iter
    (fun size ->
      let g = Family.torus_of_size ~size ~seed:9L in
      Alcotest.(check bool)
        (Printf.sprintf "size=%d connected" size)
        true (Graph.is_connected g);
      Alcotest.(check int) (Printf.sprintf "size=%d max degree" size) 4 (Graph.max_degree g))
    [ 16; 36; 100 ]

(* --- random d-regular (configuration model) -------------------------------- *)

let simple_and_regular ~d g =
  Graph.fold_nodes g ~init:true ~f:(fun ok v ->
      let ns = Graph.neighbors g v in
      let distinct =
        Array.for_all (fun w -> w <> v) ns
        && Array.length (Array.of_seq (List.to_seq (List.sort_uniq compare (Array.to_list ns))))
           = Array.length ns
      in
      ok && Array.length ns = d && distinct)

let qcheck_regular_simple =
  QCheck.Test.make ~count:60 ~name:"Family: configuration model is simple and d-regular"
    QCheck.(triple (int_range 2 4) (int_range 0 30) (int_range 0 1000))
    (fun (d, extra, seed) ->
      let n0 = d + 2 + extra in
      let n = if n0 * d mod 2 = 1 then n0 + 1 else n0 in
      let g = Family.random_regular ~n ~d ~seed:(Int64.of_int seed) in
      Graph.n g = n && simple_and_regular ~d g)

let test_regular_of_size_rounds_up () =
  List.iter
    (fun (d, size) ->
      let g = Family.regular_of_size ~d ~size ~seed:3L in
      let n = Graph.n g in
      let msg what = Printf.sprintf "d=%d size=%d %s" d size what in
      Alcotest.(check bool) (msg "n >= size") true (n >= min size (d + 2) || n >= d + 2);
      Alcotest.(check bool) (msg "n*d even") true (n * d mod 2 = 0);
      Alcotest.(check bool) (msg "simple d-regular") true (simple_and_regular ~d g))
    [ (3, 4); (3, 9); (4, 6); (4, 25) ]

(* --- shift expanders -------------------------------------------------------- *)

let test_expander_structure () =
  List.iter
    (fun n ->
      let g = Family.expander ~n in
      Alcotest.(check int) (Printf.sprintf "n=%d nodes" n) n (Graph.n g);
      Alcotest.(check bool) (Printf.sprintf "n=%d connected" n) true (Graph.is_connected g);
      Graph.iter_nodes g (fun v ->
          let deg = Graph.degree g v in
          if deg < 2 || deg > 4 then
            Alcotest.failf "n=%d node %d degree %d outside [2, 4]" n v deg))
    [ 5; 7; 25; 101 ]

(* --- the family table and Gen integration ----------------------------------- *)

let test_family_table () =
  Alcotest.(check int) "three families" 3 (List.length Family.all);
  List.iter
    (fun info ->
      (match Family.find info.Family.f_name with
      | Some found -> Alcotest.(check string) "find" info.Family.f_name found.Family.f_name
      | None -> Alcotest.failf "family %s not found" info.Family.f_name);
      let g = info.Family.f_build ~size:info.Family.f_min_size ~seed:1L in
      Alcotest.(check bool)
        (info.Family.f_name ^ " min-size build connected")
        true (Graph.is_connected g);
      Alcotest.(check bool)
        (info.Family.f_name ^ " degree bound")
        true
        (Graph.max_degree g <= info.Family.f_max_degree))
    Family.all;
  Alcotest.(check bool) "find is case-insensitive" true (Family.find "TORUS" <> None);
  Alcotest.(check bool) "unknown family" true (Family.find "hypercube" = None)

(* Shrinking a spec halves its size towards the shape minimum; every
   intermediate spec must still build a valid clamped graph, so a
   minimized counterexample is always reproducible. *)
let test_gen_shrink_chain () =
  List.iter
    (fun shape ->
      let rec down size =
        let g = Gen.build { Gen.shape; size; g_seed = 11L } in
        Alcotest.(check bool)
          (Format.asprintf "%a size=%d connected" Gen.pp_shape shape size)
          true (Graph.is_connected g);
        Alcotest.(check bool)
          (Format.asprintf "%a size=%d clamped" Gen.pp_shape shape size)
          true
          (Graph.n g >= 1);
        if size > 1 then down (size / 2)
      in
      down 64)
    [ Gen.Torus; Gen.D_regular; Gen.Expander ]

(* --- checker units ----------------------------------------------------------- *)

let unit_input _ = ()

let check_ok name problem g output =
  match Lcl.check problem g ~input:unit_input ~output with
  | Ok () -> ()
  | Error vs ->
      Alcotest.failf "%s: expected valid, got %d violation(s): %a" name (List.length vs)
        Lcl.pp_violation (List.hd vs)

let check_rejected name problem g output =
  if Lcl.is_valid problem g ~input:unit_input ~output then
    Alcotest.failf "%s: expected a violation, checker accepted" name

let test_coloring4_checker () =
  let g = Family.torus ~w:4 ~h:4 in
  let parity v =
    let x, y = Family.torus_coords ~w:4 v in
    (2 * (y mod 2)) + (x mod 2)
  in
  check_ok "parity colouring" C4.problem g parity;
  check_rejected "monochromatic" C4.problem g (fun _ -> 0);
  check_rejected "out of palette" C4.problem g (fun v -> if v = 0 then C4.palette else parity v)

let test_matching_checker () =
  (* a 4-cycle: matching {0-1, 2-3} via mutual ports *)
  let g = Vc_graph.Builder.cycle 4 in
  let partner v =
    let pair = if v mod 2 = 0 then v + 1 else v - 1 in
    match Graph.port_to g v pair with
    | Some p -> p
    | None -> Alcotest.failf "no port %d -> %d" v pair
  in
  check_ok "perfect matching" Matching.problem g partner;
  check_rejected "all unmatched is not maximal" Matching.problem g (fun _ -> 0);
  (* 0 points at 1 but 1 claims unmatched: reciprocation fails *)
  check_rejected "unreciprocated" Matching.problem g (fun v -> if v = 0 then partner 0 else 0)

let test_mis_checker () =
  let g = Vc_graph.Builder.cycle 6 in
  check_ok "alternating MIS" Mis.problem g (fun v -> v mod 2 = 0);
  check_rejected "empty set is not maximal" Mis.problem g (fun _ -> false);
  check_rejected "adjacent members" Mis.problem g (fun v -> v <= 1)

(* Reference solvers are canonical functions of the component: solving
   through the probe model at every origin must assemble a labeling the
   problem's own checker accepts, on at least two families each. *)
let solve_all world solver g =
  let out =
    Array.init (Graph.n g) (fun v ->
        match Vc_model.Probe.run ~world ~origin:v solver.Lcl.solve with
        | { Vc_model.Probe.output = Some o; _ } -> o
        | _ -> Alcotest.failf "%s aborted at origin %d" solver.Lcl.solver_name v)
  in
  fun v -> out.(v)

let test_family_solvers_validate () =
  let expect name problem world solver g =
    let output = solve_all (world g) solver g in
    check_ok name problem g output
  in
  expect "coloring4 on torus" C4.problem C4.world C4.solve_torus
    (Family.torus_of_size ~size:16 ~seed:5L);
  expect "coloring4 on 3-regular" C4.problem C4.world C4.solve_greedy
    (Family.regular_of_size ~d:3 ~size:10 ~seed:5L);
  expect "matching on torus" Matching.problem Matching.world Matching.solve_greedy
    (Family.torus_of_size ~size:16 ~seed:6L);
  expect "matching on 4-regular" Matching.problem Matching.world Matching.solve_greedy
    (Family.regular_of_size ~d:4 ~size:12 ~seed:6L);
  expect "mis on 4-regular" Mis.problem Mis.world Mis.solve_greedy
    (Family.regular_of_size ~d:4 ~size:12 ~seed:7L);
  expect "mis on expander" Mis.problem Mis.world Mis.solve_greedy
    (Family.expander_of_size ~size:15 ~seed:7L)

let suites =
  [
    ( "family",
      [
        Alcotest.test_case "torus carries the grid normal form" `Quick test_torus_ports;
        Alcotest.test_case "torus_dims: even near-square capacity" `Quick test_torus_dims;
        Alcotest.test_case "torus_of_size builds valid graphs" `Quick test_torus_of_size_valid;
        Alcotest.test_case "regular_of_size rounds to feasible n" `Quick
          test_regular_of_size_rounds_up;
        Alcotest.test_case "expander: bounded degree, connected" `Quick test_expander_structure;
        Alcotest.test_case "family table: find, min sizes, degree bounds" `Quick
          test_family_table;
        Alcotest.test_case "Gen shrink chain stays buildable" `Quick test_gen_shrink_chain;
        Alcotest.test_case "coloring4 checker accepts/rejects" `Quick test_coloring4_checker;
        Alcotest.test_case "matching checker accepts/rejects" `Quick test_matching_checker;
        Alcotest.test_case "mis checker accepts/rejects" `Quick test_mis_checker;
        Alcotest.test_case "reference solvers validate on two families each" `Quick
          test_family_solvers_validate;
        QCheck_alcotest.to_alcotest qcheck_regular_simple;
      ] );
  ]
