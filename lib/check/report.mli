(** Conformance run results: aggregation, verdicts, human and JSON
    rendering.

    A report is pure data — {!Oracle} fills it in, the [volcomp check]
    CLI renders it.  The JSON shape mirrors [volcomp bench --json]: one
    top-level object with the run parameters and one entry per problem,
    so dashboards can ingest both with the same tooling. *)

type solver_agg = {
  s_name : string;
  s_randomized : bool;
  s_trials : int;  (** instances this solver ran on *)
  s_valid : int;  (** instances on which its output passed the checker *)
  s_max_volume : int;
  s_max_distance : int;
  s_max_rand_bits : int;
}

type kind_agg = {
  k_kind : string;  (** mutation kind, e.g. ["relabel-node"] *)
  k_total : int;
  k_rejected : int;
  k_out_of_radius : int;
      (** rejections with a violation outside the checkability radius of
          the mutation site — always a conformance failure *)
}

type problem_report = {
  p_name : string;
  p_radius : int;
  p_instances : int;
  p_solvers : solver_agg list;
  p_merge_consistent : bool;
  p_cross_model : (string * bool) list;
  p_lazy_eager : bool;
      (** lazy and eager worlds produced bit-identical probe results *)
  p_ir : bool option;
      (** the {!Vc_ir} port reproduced the reference closure solver bit
          for bit (outputs and cost envelopes, interpreter and batched
          executor); [None] when the entry has no IR port or the probe
          was skipped *)
  p_replay : bool;
      (** recorded transcripts replayed bit-identically ({!Vc_obs.Trace}) *)
  p_serve : bool option;
      (** in-process serving round-trip ([lib/serve] protocol encode →
          decode → handle → encode) produced byte-identical payloads to
          direct computation; [None] when the probe was not supplied
          (the serving layer sits above this library, so the CLI injects
          it via {!Oracle.run}'s [?serve]) *)
  p_shard : bool option;
      (** a real multi-process sharded tier ([serve --workers N]) served
          a fixed corpus byte-identically to a single-process server;
          [None] when the probe was not supplied (injected via
          {!Oracle.run}'s [?shard], checked on the smallest trial only) *)
  p_snap : bool option;
      (** snapshot-loaded instances (oracle probe ["snap"]) reproduced
          freshly built trials byte-identically: solver outcomes, probe
          cost vectors and trace transcripts; [None] when skipped *)
  p_synth : bool option;
      (** SAT-based synthesis (oracle probe ["synth"]) re-derived the
          problem's volume classification: a witness program was found
          at the known-feasible budget and independently rechecked, the
          budget below it was proven UNSAT (DRUP-certified), and the
          verdicts sit consistently against the live adversary bound;
          [None] when the probe was not supplied (injected via
          {!Oracle.run}'s [?synth]) or the problem has no synthesis
          universe *)
  p_mutations : kind_agg list;
  p_probes_skipped : string list;
      (** probes excluded by {!Oracle.run}'s [?probes] filter; skipped
          probes keep their vacuous defaults *)
  p_failures : string list;
      (** human-readable conformance failures; empty means conformant *)
}

type t = {
  seed : int64;
  count : int;
  domains : int;
  quick : bool;
  problems : problem_report list;
}

val mutations_total : problem_report -> int
val mutations_rejected : problem_report -> int

val problem_ok : problem_report -> bool
(** No failures, and the fuzzer rejected at least one mutant (a problem
    whose checker never rejects anything proves nothing) — unless the
    mutation probe itself was skipped. *)

val ok : t -> bool

val pp : Format.formatter -> t -> unit
(** Human summary: one block per problem plus a final verdict line. *)

val to_json : t -> string

val write_json : t -> path:string -> unit
