(** The daemon's brain: query → result payload, over a warm session
    cache.

    A handler owns an {!Lru} cache of {e resident instances} — built
    registry trials keyed by [(problem, size, seed)] — so repeated
    queries against one instance skip graph construction and reuse the
    lazy incremental-BFS worlds of [lib/model].  Cache bookkeeping and
    instance building happen in {!prepare}, which must run on the
    dispatch loop's domain; the thunk it returns does only per-request
    work (probe runs, solver sweeps) and is safe to execute on any
    {!Vc_exec.Pool} worker, concurrently with thunks for the same
    instance — worlds are domain-shareable by the {!Vc_model.World}
    contract, and every run derives fresh randomness.

    All accounting goes through {!Vc_obs.Metrics} ([serve.*] counters
    and [serve.latency_us.*] histograms), so it is free when collection
    is disabled (the in-process conformance probe) and exact when the
    daemon enables it. *)

module Json = Vc_obs.Json

type t

val create :
  ?entries:Vc_check.Registry.entry list ->
  ?cache_capacity:int ->
  ?store:Vc_check.Registry.Store.t ->
  unit ->
  t
(** [entries] defaults to {!Vc_check.Registry.all}; [cache_capacity]
    (default 8) bounds the resident-instance cache; [store] makes cache
    misses consult (and populate) a snapshot store instead of always
    rebuilding. *)

val prepare : t -> Protocol.query -> (unit -> (Json.t, Protocol.error_code * string) result)
(** Resolve the query against the registry and cache {e now} (single
    threaded), returning the compute thunk.  Resolution failures
    (unknown problem, bad origin) are captured in the thunk's result so
    the dispatch path is uniform. *)

val handle : t -> Protocol.query -> (Json.t, Protocol.error_code * string) result
(** [handle t q] is [prepare t q ()] — the in-process round-trip used by
    the conformance probe and unit tests. *)

val cache_length : t -> int

val instance_n :
  t -> problem:string -> size:int -> seed:int64 -> (int, Protocol.error_code * string) result
(** Node count of the [(problem, size, seed)] instance, building (and
    caching) it if needed — the load generator uses this to draw valid
    probe origins. *)

(** {1 Accounting (called by the server loop)} *)

val note_request : Protocol.query -> unit
(** Bump [serve.requests.<kind>]. *)

val note_error : Protocol.error_code -> unit
(** Bump [serve.errors.<code>]. *)

val observe_latency : kind:string -> int -> unit
(** Record one request's latency (µs) in [serve.latency_us.<kind>]. *)

val stats_payload : t -> Json.t
(** The [stats] reply: cache occupancy/capacity plus the full
    {!Vc_obs.Metrics} snapshot (counters and histograms). *)
