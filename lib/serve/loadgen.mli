(** Load generators for the serving daemon — a closed loop and an open
    loop.

    {b Closed loop} ({!run}): [clients] connections each keep exactly
    one request in flight; every round, all clients write their next
    request before any reply is read, so the server's select loop sees
    them together and dispatches them as one batch.

    {b Open loop} ({!run_open}): requests arrive as a Poisson process at
    a target rate — exponential inter-arrival gaps, derived
    deterministically from the seed — regardless of how fast the server
    answers.  Arrivals are fanned out round-robin over non-blocking
    connections (by default one per shard the server reports, so a
    sharded tier's worker channels stay independently busy), and
    latency is measured from the {e scheduled} arrival so client-side
    backlog is charged to the tail (no coordinated omission).  This is
    the loop that finds the saturation point: pushed past capacity the
    server sheds with [overloaded], reported as {!open_summary.os_shed}.

    In both loops the request plan — kinds drawn from a weighted [mix],
    instances drawn from the registry's quick sizes over a small set of
    derived seeds (to exercise both cache hits and evictions), origins
    uniform over the instance's nodes — is a deterministic function of
    [seed].

    With [verify] on, every successful reply's payload is re-encoded and
    compared {e byte-for-byte} against the answer computed in-process by
    a twin {!Handler} over the same registry: the wire (and the shard
    tier) adds latency, not meaning.  ([stats] replies are structurally
    checked instead — the daemon's metrics legitimately differ from the
    twin's.)

    Latency is reported as nearest-rank p50/p95/p99 per request kind;
    with fewer than 3 samples the ranks collapse onto one observation,
    so they are reported as absent ([None], JSON [null]) rather than
    fabricated. *)

module Json = Vc_obs.Json

type config = {
  clients : int;
  requests : int;  (** total, spread round-robin over the clients *)
  mix : (string * int) list;  (** request kind → weight, weights > 0 *)
  seed : int64;
  deadline_ms : int option;  (** attached to every generated request *)
  verify : bool;
  shutdown : bool;  (** finish with a [shutdown] request on client 0 *)
}

val default_mix : (string * int) list
(** [solve:1, probe:4, trace:1, list:1, stats:1]. *)

val parse_mix : string -> ((string * int) list, string) result
(** Parse ["kind:weight,kind:weight,…"] (weight defaults to 1); kinds
    are [solve]/[probe]/[trace]/[warm]/[list]/[stats]. *)

type percentiles = {
  l_count : int;
  l_p50_us : int option;  (** [None] when count < 3 *)
  l_p95_us : int option;
  l_p99_us : int option;
  l_max_us : int;
}

type summary = {
  s_clients : int;
  s_requests : int;  (** requests sent (excluding the final shutdown) *)
  s_ok : int;
  s_errors : (string * int) list;  (** error code → count, sorted *)
  s_mismatches : int;  (** verified replies that differed from the twin *)
  s_wall_s : float;
  s_latency : (string * percentiles) list;  (** per kind, sorted *)
  s_server_stats : Json.t option;  (** the daemon's final [stats] payload *)
}

val run : connect:(unit -> Unix.file_descr) -> config -> (summary, string) result
(** Drive the daemon reachable via [connect] (called once per client).
    [Error] means the run could not complete (connection refused, stream
    closed mid-reply) — protocol-level error replies are counted in the
    summary, not fatal. *)

type open_config = {
  o_rate : float;  (** target arrival rate, requests/s; must be > 0 *)
  o_requests : int;
  o_conns : int option;
      (** [None]: one connection per shard the server's [stats] reports
          (1 for a single-process server) *)
  o_mix : (string * int) list;
  o_seed : int64;
  o_verify : bool;
  o_shutdown : bool;
  o_prewarm : bool;
      (** Issue a [warm] query for every distinct session in the plan
          over a blocking side connection before the measured phase, so
          instance construction is never charged to the first measured
          request of a session. *)
}

type open_summary = {
  os_rate : float;  (** target rate *)
  os_achieved : float;  (** requests / wall — equals the target only below saturation *)
  os_conns : int;
  os_requests : int;
  os_ok : int;
  os_shed : int;  (** [overloaded] replies *)
  os_worker_lost : int;  (** [worker_lost] replies *)
  os_errors : (string * int) list;
  os_mismatches : int;
  os_wall_s : float;  (** first send to last reply *)
  os_latency : (string * percentiles) list;
  os_queue_depth : (int * int) list;
      (** shard → in-flight depth at the final [stats] snapshot *)
  os_prewarm : (int * int) option;
      (** [(sessions, cold_starts)] when the run prewarmed: sessions
          warmed ahead of the measured phase and how many were cold
          (server built or snapshot-loaded rather than cache-hit) *)
  os_server_stats : Json.t option;
}

val run_open : connect:(unit -> Unix.file_descr) -> open_config -> (open_summary, string) result
(** Open-loop run against the daemon reachable via [connect] (called
    once per connection, plus once for shard discovery). *)

val summary_to_json : summary -> Json.t
val open_summary_to_json : open_summary -> Json.t
val pp_summary : Format.formatter -> summary -> unit
val pp_open_summary : Format.formatter -> open_summary -> unit
