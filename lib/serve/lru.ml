(* Hash table over an intrusive doubly-linked recency list; the list's
   head is the most recently used binding, the tail the eviction
   victim.  A sentinel node closes the ring so link surgery never
   branches on emptiness. *)

type ('k, 'v) node = {
  mutable key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node;
  mutable next : ('k, 'v) node;
}

type ('k, 'v) t = {
  cap : int;
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  mutable sentinel : ('k, 'v) node option;
      (* allocated lazily on first [add]: a sentinel needs a key/value to
         inhabit its fields, and we have none until then *)
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  { cap = capacity; tbl = Hashtbl.create (2 * capacity); sentinel = None }

let capacity t = t.cap
let length t = Hashtbl.length t.tbl

let unlink n =
  n.prev.next <- n.next;
  n.next.prev <- n.prev

let link_after s n =
  n.prev <- s;
  n.next <- s.next;
  s.next.prev <- n;
  s.next <- n

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> None
  | Some n ->
      (match t.sentinel with
      | Some s when s.next != n ->
          unlink n;
          link_after s n
      | _ -> ());
      Some n.value

let mem t k = Hashtbl.mem t.tbl k

let add t k v =
  match Hashtbl.find_opt t.tbl k with
  | Some n ->
      n.value <- v;
      (match t.sentinel with
      | Some s when s.next != n ->
          unlink n;
          link_after s n
      | _ -> ());
      None
  | None ->
      let s =
        match t.sentinel with
        | Some s -> s
        | None ->
            let rec s = { key = k; value = v; prev = s; next = s } in
            t.sentinel <- Some s;
            s
      in
      let evicted =
        if Hashtbl.length t.tbl >= t.cap then begin
          let victim = s.prev in
          unlink victim;
          Hashtbl.remove t.tbl victim.key;
          Some (victim.key, victim.value)
        end
        else None
      in
      let n = { key = k; value = v; prev = s; next = s } in
      link_after s n;
      Hashtbl.replace t.tbl k n;
      evicted

let to_list t =
  match t.sentinel with
  | None -> []
  | Some s ->
      let rec go n acc = if n == s then List.rev acc else go n.next ((n.key, n.value) :: acc) in
      go s.next []
