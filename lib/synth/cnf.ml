type t = {
  sat : Sat.t;
  mutable rev_clauses : int list list;
  mutable n_clauses : int;
}

let create () = { sat = Sat.create (); rev_clauses = []; n_clauses = 0 }
let fresh t = Sat.new_var t.sat
let n_vars t = Sat.n_vars t.sat

let add t lits =
  Sat.add_clause t.sat lits;
  t.rev_clauses <- lits :: t.rev_clauses;
  t.n_clauses <- t.n_clauses + 1

let implies t a b = add t [ -a; b ]
let implies_clause t a ls = add t (-a :: ls)

let at_most_one t ls =
  let rec pairs = function
    | [] -> ()
    | a :: rest ->
        List.iter (fun b -> add t [ -a; -b ]) rest;
        pairs rest
  in
  pairs ls

let exactly_one t ls =
  add t ls;
  at_most_one t ls

let define_and t ls =
  let g = fresh t in
  List.iter (fun l -> implies t g l) ls;
  add t (g :: List.map (fun l -> -l) ls);
  g

let solve t = Sat.solve t.sat
let value t v = Sat.value t.sat v
let simplify t = Sat.simplify t.sat
let stats t = Sat.stats t.sat
let certify_unsat ?budget t = Sat.certify_unsat ?budget t.sat
let n_clauses t = t.n_clauses
let clauses t = List.rev t.rev_clauses

let to_dimacs t =
  let buf = Buffer.create (64 * (t.n_clauses + 1)) in
  Buffer.add_string buf (Printf.sprintf "p cnf %d %d\n" (n_vars t) t.n_clauses);
  List.iter
    (fun c ->
      List.iter (fun l -> Buffer.add_string buf (Printf.sprintf "%d " l)) c;
      Buffer.add_string buf "0\n")
    (clauses t);
  Buffer.contents buf

let write_dimacs t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_dimacs t))

let of_dimacs text =
  let lines = String.split_on_char '\n' text in
  let t = create () in
  let declared_vars = ref (-1) in
  let declared_cls = ref (-1) in
  let cur = ref [] in
  let err = ref None in
  let fail msg = if !err = None then err := Some msg in
  let token tok =
    match int_of_string_opt tok with
    | None -> fail (Printf.sprintf "bad literal %S" tok)
    | Some 0 ->
        add t (List.rev !cur);
        cur := []
    | Some l ->
        let v = abs l in
        if !declared_vars < 0 then fail "literal before p-line"
        else if v > !declared_vars then
          fail (Printf.sprintf "literal %d out of declared range %d" l !declared_vars)
        else cur := l :: !cur
  in
  List.iter
    (fun line ->
      if !err = None then
        let line = String.trim line in
        if line = "" || line.[0] = 'c' then ()
        else if line.[0] = 'p' then begin
          if !declared_vars >= 0 then fail "duplicate p-line"
          else
            match String.split_on_char ' ' line |> List.filter (( <> ) "") with
            | [ "p"; "cnf"; nv; nc ] -> (
                match (int_of_string_opt nv, int_of_string_opt nc) with
                | Some nv, Some nc when nv >= 0 && nc >= 0 ->
                    declared_vars := nv;
                    declared_cls := nc;
                    for _ = 1 to nv do
                      ignore (fresh t)
                    done
                | _ -> fail (Printf.sprintf "bad p-line %S" line))
            | _ -> fail (Printf.sprintf "bad p-line %S" line)
        end
        else if !declared_vars < 0 then fail "clause before p-line"
        else
          String.split_on_char ' ' line
          |> List.filter (( <> ) "")
          |> List.iter (fun tok -> if !err = None then token tok))
    lines;
  match !err with
  | Some msg -> Error ("dimacs: " ^ msg)
  | None ->
      if !declared_vars < 0 then Error "dimacs: missing p-line"
      else if !cur <> [] then Error "dimacs: unterminated clause"
      else if !declared_cls >= 0 && t.n_clauses <> !declared_cls then
        Error
          (Printf.sprintf "dimacs: header declares %d clauses, found %d" !declared_cls
             t.n_clauses)
      else Ok t
