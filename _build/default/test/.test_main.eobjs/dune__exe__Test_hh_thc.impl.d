test/test_hh_thc.ml: Alcotest Array List Vc_graph Vc_lcl Vc_model Vc_rng Volcomp
