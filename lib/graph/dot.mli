(** Graphviz DOT export, for inspecting instances by eye.

    Nodes are labeled with their identifiers (and an optional per-node
    annotation, e.g. an input color or a solver output); edges carry
    their port numbers on both ends so that labelings can be read off
    the picture.  A recorded probe transcript ({!Vc_obs.Trace}) can be
    turned into a {!ball} and overlaid: the visited ball is filled and
    the traversed edges are drawn thick, which makes "seeing far vs.
    seeing wide" literally visible. *)

val to_string :
  ?name:string ->
  ?node_label:(Graph.node -> string) ->
  ?highlight:(Graph.node -> bool) ->
  ?highlight_edge:(Graph.node -> Graph.node -> bool) ->
  Graph.t ->
  string
(** Render as an undirected [graph]; [node_label]'s text is appended to
    the identifier; highlighted nodes are drawn filled, highlighted
    edges thick ([highlight_edge] is consulted in both orientations). *)

val to_file :
  path:string ->
  ?name:string ->
  ?node_label:(Graph.node -> string) ->
  ?highlight:(Graph.node -> bool) ->
  ?highlight_edge:(Graph.node -> Graph.node -> bool) ->
  Graph.t ->
  unit

type ball = {
  ball_origin : Graph.node option;  (** origin of the first recorded session, if any *)
  in_ball : Graph.node -> bool;  (** the node's view was admitted during the run *)
  probed_edge : Graph.node -> Graph.node -> bool;
      (** some probe traversed this edge (orientation-insensitive) *)
}
(** The footprint of a recorded probe session. *)

val trace_ball : Vc_obs.Trace.event list -> ball
(** Fold a transcript (e.g. from {!Vc_obs.Trace.load} or a ring sink)
    into its probed ball.  Pairs with [to_string]'s [highlight] /
    [highlight_edge] to render the part of the instance the solver
    actually saw. *)
