(** Maximal independent set: a boolean per node; no two set members are
    adjacent (independence), and every excluded node has a set neighbor
    (maximality).  Both conditions are radius-1 checkable, making MIS
    the textbook LCL on general bounded-degree graphs. *)

type output = bool

val problem : (unit, output) Vc_lcl.Lcl.t

val world : Vc_graph.Graph.t -> unit Vc_model.World.t

val solve_greedy : (unit, output) Vc_lcl.Lcl.solver
(** Deterministic reference: the lexicographically-first MIS (ascending
    identifiers, join unless a smaller-id neighbor joined).  A canonical
    function of the component, so all origins agree. *)

val solvers : (unit, output) Vc_lcl.Lcl.solver list
