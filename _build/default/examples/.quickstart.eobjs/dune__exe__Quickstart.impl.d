examples/quickstart.ml: Fmt Vc_graph Vc_lcl Vc_measure Vc_model Vc_rng Volcomp
