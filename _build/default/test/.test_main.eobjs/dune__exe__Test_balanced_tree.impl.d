test/test_balanced_tree.ml: Alcotest Array Fmt Gen List Printf QCheck QCheck_alcotest Vc_commcc Vc_graph Vc_lcl Vc_model Volcomp
