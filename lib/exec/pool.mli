(** A reusable pool of worker domains for embarrassingly parallel work.

    The pool owns [domains - 1] worker domains (stdlib {!Domain}) blocked
    on a [Mutex]/[Condition] work queue; the calling domain always
    participates in every {!map}/{!map_reduce}, so a pool of size 1 spawns
    no domains and degenerates to the sequential path.  Work items are
    distributed by chunked self-scheduling: the input is cut into
    contiguous chunks of a deterministic size (a function of the input
    length and [domains] only) and idle participants grab the next chunk
    off a shared counter.  Chunk boundaries — and therefore the shape of
    any chunk-level reduction — do not depend on scheduling, which is what
    makes {!map_reduce} reproducible.

    {b Determinism.}  [map t f xs] evaluates [f] on every element exactly
    once and returns results in input order, so it equals [List.map f xs]
    whenever [f] is pure.  [map_reduce] folds chunk partials left to
    right; it equals the sequential fold whenever [combine] is
    associative and [init] is an identity for [combine].

    {b Exceptions.}  If [f] raises, the exception raised by the
    {e lowest-indexed} failing element is re-raised (with its backtrace)
    in the caller — matching [List.map]'s choice of exception on pure
    inputs.  On a pool of width [>= 2] every remaining element is still
    evaluated first; a width-1 pool stops at the raising element, like
    [List.map].

    {b Width 1.}  A pool of width 1 is a pure sequential fast path:
    {!create} spawns no domains, and {!map}/{!map_reduce} bypass the
    work queue entirely (no atomics, no chunking) and run on the calling
    domain.

    {b Nesting.}  Calling {!map} from inside a task running on this pool
    is allowed and cannot deadlock: the inner caller participates in its
    own work, and helper jobs that arrive after the work is drained
    return immediately.

    {b Thread-safety.}  All operations on a pool may be called from any
    domain.  The values produced by [f] are published to the caller with
    a proper happens-before edge, so no additional synchronisation is
    needed to read the results. *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns [domains - 1] worker domains.  When
    [domains] is omitted it is taken from {!default_domains}.
    @raise Invalid_argument if [domains < 1]. *)

val domains : t -> int
(** Total parallelism of the pool, including the calling domain. *)

val worker_count : t -> int
(** Number of worker domains actually spawned ([domains t - 1], and [0]
    after {!shutdown} or for a width-1 pool). *)

val default_domains : unit -> int
(** The [VOLCOMP_JOBS] environment variable if set, otherwise
    [Domain.recommended_domain_count ()].
    @raise Invalid_argument if [VOLCOMP_JOBS] is not a positive integer. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f xs] is [List.map f xs], computed on the pool. *)

val map_reduce :
  t -> map:('a -> 'b) -> combine:('b -> 'b -> 'b) -> init:'b -> 'a list -> 'b
(** [map_reduce t ~map ~combine ~init xs] is
    [List.fold_left (fun acc x -> combine acc (map x)) init xs] for
    associative [combine] with identity [init].  Each chunk is reduced
    in element order as it is mapped (no intermediate list), and chunk
    partials are folded into [init] in chunk order. *)

val shutdown : t -> unit
(** Terminate and join the worker domains.  Call once no {!map} is in
    flight; afterwards the pool must not be used again.  Idempotent. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and shuts it down
    afterwards, also on exception. *)
