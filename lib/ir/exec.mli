(** The two IR executors.

    {!solver}/{!run} is the {e reference} semantics: one origin,
    interpreted through {!Vc_model.Probe.ctx}, so costs are accounted by
    the model executor itself.  {!run_batch_into} is the {e fast} path:
    many origins through one flat loop over the CSR arrays with
    epoch-stamped scratch reused across the batch (and pooled per
    domain, so a {!Vc_exec.Pool} fan-out reuses state too), results
    written into a caller-provided {!sink} of flat arrays — zero
    per-origin allocation, which is what the bench gate measures.
    {!run_batch} wraps it when per-origin result records are the
    convenient shape.  Oracle probe 8 asserts reference and batched
    agree bit for bit (outputs and cost envelopes) on the registry
    corpus; the qcheck properties in [test/test_ir.ml] assert it on
    random programs. *)

val solver : ('i, 'o) Ir.spec -> 'i Vc_model.Probe.ctx -> 'o
(** The interpreter as a plain algorithm, usable anywhere a closure
    solver is.  Enforces the {!Ir.step_cap}; does {e not} apply the
    program's declared budget (the surrounding [Probe.run] owns budget
    enforcement — use {!run} to get the intersection). *)

val run :
  ?budget:Vc_model.Probe.budget ->
  ('i, 'o) Ir.spec ->
  world:'i Vc_model.World.t ->
  origin:Vc_graph.Graph.node ->
  'o Vc_model.Probe.result
(** Reference execution under {!Ir.effective_budget}. *)

type 'o sink = {
  k_out : 'o array;  (** output per origin, valid iff [not k_aborted.(i)] *)
  k_volume : int array;
  k_distance : int array;
  k_queries : int array;
  k_aborted : bool array;
}
(** Struct-of-arrays result buffers for {!run_batch_into}: four unboxed
    rows plus the output row, so a batch writes no per-origin heap
    objects.  Reusable across batches — only the first
    [Array.length origins] slots are written, and stale [k_out] entries
    hide behind their [k_aborted] flag. *)

val sink : none:'o -> int -> 'o sink
(** A fresh sink of the given capacity, its output row filled with the
    [none] placeholder.
    @raise Invalid_argument on a negative capacity. *)

val run_batch_into :
  ?claimed_n:int ->
  ?budget:Vc_model.Probe.budget ->
  ?pool:Vc_exec.Pool.t ->
  ('i, 'o) Ir.spec ->
  graph:Vc_graph.Graph.t ->
  input:(Vc_graph.Graph.node -> 'i) ->
  origins:Vc_graph.Graph.node array ->
  sink:'o sink ->
  unit
(** Batched execution into the sink's rows, slot [i] for origin [i] —
    the allocation-free core.  Parameters as in {!run_batch}.
    @raise Invalid_argument if the sink is shorter than the batch. *)

val run_batch :
  ?claimed_n:int ->
  ?budget:Vc_model.Probe.budget ->
  ?pool:Vc_exec.Pool.t ->
  ('i, 'o) Ir.spec ->
  graph:Vc_graph.Graph.t ->
  input:(Vc_graph.Graph.node -> 'i) ->
  origins:Vc_graph.Graph.node array ->
  'o Vc_model.Probe.result array
(** Batched execution; results in origin order, each the exact record
    {!run} would produce.  [claimed_n] is the [n] announced to programs
    and the step cap (defaults to [Graph.n graph]; pass the world's
    claimed [n] when they differ).  With a [pool], origins are cut into
    deterministic contiguous chunks, so output is scheduling-invariant.
    [input] and the spec's [obs]/[fns] must be pure and thread-safe. *)
