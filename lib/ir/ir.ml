module Graph = Vc_graph.Graph
module Probe = Vc_model.Probe
module Json = Vc_obs.Json

type reg = int

type queue = int

type field = int

type port_sel =
  | P_const of int
  | P_field of field

type cond =
  | C_deg_le of reg * int
  | C_deg_eq of reg * int
  | C_deg_mod of reg * int * int
  | C_port_ok of reg * port_sel
  | C_label_eq of reg * field * int
  | C_field_eq of reg * field * field
  | C_node_eq of reg * reg
  | C_marked of reg
  | C_queue_empty of queue

type instr =
  | Probe of { at : reg; path : port_sel array; dst : reg }
  | Jump of int
  | Branch of { cond : cond; if_true : int; if_false : int }
  | Move of { src : reg; dst : reg }
  | Mark of reg
  | Push of { queue : queue; src : reg }
  | Pop of { queue : queue; dst : reg }
  | Out_const of int
  | Out_fn of int
  | Halt

type program = {
  name : string;
  n_regs : int;
  n_queues : int;
  obs_arity : int;
  n_consts : int;
  n_fns : int;
  declared : Probe.budget;
  max_steps : int option;
  code : instr array;
}

type 'i env = {
  e_origin : Graph.node;
  e_n : int;
  e_reg : reg -> Graph.node;
  e_queries : int;
  e_query : int -> Graph.node;
  e_id : Graph.node -> int;
  e_degree : Graph.node -> int;
  e_input : Graph.node -> 'i;
}

type ('i, 'o) spec = {
  program : program;
  obs : 'i -> field -> int;
  consts : 'o array;
  fns : ('i env -> 'o) array;
}

(* --- cost model ----------------------------------------------------------- *)

(* The step cap bounds instruction executions per origin, making every
   program — including a wire-shipped hostile one — terminate.  The
   default is a deterministic function of (claimed n, code length) only,
   so the reference interpreter and the batched executor always truncate
   at the identical step, keeping their results bit-identical even on
   runaway programs. *)
let default_step_cap ~n p = 4096 + (256 * n) + (16 * Array.length p.code)

let step_cap ~n p = match p.max_steps with Some s -> s | None -> default_step_cap ~n p

let intersect_budget a b =
  let m x y =
    match (x, y) with
    | None, z | z, None -> z
    | Some x, Some y -> Some (min x y)
  in
  {
    Probe.max_volume = m a.Probe.max_volume b.Probe.max_volume;
    max_distance = m a.Probe.max_distance b.Probe.max_distance;
  }

let effective_budget p budget = intersect_budget p.declared budget

(* --- validator ------------------------------------------------------------ *)

let validate p =
  let len = Array.length p.code in
  let err fmt = Fmt.kstr Result.error fmt in
  let check_reg what r =
    if r < 0 || r >= p.n_regs then err "%s: register r%d out of range [0, %d)" what r p.n_regs
    else Ok ()
  in
  let check_queue what q =
    if q < 0 || q >= p.n_queues then err "%s: queue q%d out of range [0, %d)" what q p.n_queues
    else Ok ()
  in
  let check_field what f =
    if f < 0 || f >= p.obs_arity then
      err "%s: observation field %d out of range [0, %d)" what f p.obs_arity
    else Ok ()
  in
  let check_port what = function
    | P_const c -> if c < 1 then err "%s: literal port %d < 1" what c else Ok ()
    | P_field f -> check_field what f
  in
  let check_target what t =
    if t < 0 || t >= len then err "%s: branch target %d out of range [0, %d)" what t len
    else Ok ()
  in
  let ( >>= ) r f = Result.bind r (fun () -> f ()) in
  let check_cond what = function
    | C_deg_le (r, _) | C_deg_eq (r, _) -> check_reg what r
    | C_deg_mod (r, m, _) ->
        check_reg what r >>= fun () ->
        if m < 1 then err "%s: modulus %d < 1" what m else Ok ()
    | C_port_ok (r, sel) -> check_reg what r >>= fun () -> check_port what sel
    | C_label_eq (r, f, _) -> check_reg what r >>= fun () -> check_field what f
    | C_field_eq (r, f1, f2) ->
        check_reg what r >>= fun () ->
        check_field what f1 >>= fun () -> check_field what f2
    | C_node_eq (r1, r2) -> check_reg what r1 >>= fun () -> check_reg what r2
    | C_marked r -> check_reg what r
    | C_queue_empty q -> check_queue what q
  in
  let terminal = function
    | Out_const _ | Out_fn _ | Halt | Jump _ | Branch _ -> true
    | Probe _ | Move _ | Mark _ | Push _ | Pop _ -> false
  in
  let check_instr i instr =
    let what = Fmt.str "instruction %d" i in
    (match instr with
    | Probe { at; path; dst } ->
        check_reg what at >>= fun () ->
        check_reg what dst >>= fun () ->
        if Array.length path = 0 then err "%s: empty probe path" what
        else
          Array.fold_left
            (fun acc sel -> acc >>= fun () -> check_port what sel)
            (Ok ()) path
    | Jump t -> check_target what t
    | Branch { cond; if_true; if_false } ->
        check_cond what cond >>= fun () ->
        check_target what if_true >>= fun () -> check_target what if_false
    | Move { src; dst } -> check_reg what src >>= fun () -> check_reg what dst
    | Mark r -> check_reg what r
    | Push { queue; src } -> check_queue what queue >>= fun () -> check_reg what src
    | Pop { queue; dst } -> check_queue what queue >>= fun () -> check_reg what dst
    | Out_const k ->
        if k < 0 || k >= p.n_consts then
          err "%s: output constant %d out of range [0, %d)" what k p.n_consts
        else Ok ()
    | Out_fn k ->
        if k < 0 || k >= p.n_fns then
          err "%s: output combinator %d out of range [0, %d)" what k p.n_fns
        else Ok ()
    | Halt -> Ok ())
    >>= fun () ->
    if i = len - 1 && not (terminal instr) then
      err "%s: control falls off the end of the program" what
    else Ok ()
  in
  if len = 0 then err "%s: empty program" p.name
  else if p.n_regs < 1 then err "%s: programs need at least one register" p.name
  else if p.n_queues < 0 then err "%s: negative queue count" p.name
  else if p.obs_arity < 0 then err "%s: negative observation arity" p.name
  else if p.n_consts < 0 || p.n_fns < 0 then err "%s: negative output-table size" p.name
  else if
    match p.declared.Probe.max_volume with Some v -> v < 1 | None -> false
  then err "%s: declared volume budget < 1" p.name
  else if
    match p.declared.Probe.max_distance with Some d -> d < 0 | None -> false
  then err "%s: declared distance budget < 0" p.name
  else if match p.max_steps with Some s -> s < 1 | None -> false then
    err "%s: step cap < 1" p.name
  else
    let rec go i =
      if i >= len then Ok ()
      else match check_instr i p.code.(i) with Ok () -> go (i + 1) | Error _ as e -> e
    in
    go 0

let validate_spec spec =
  let p = spec.program in
  match validate p with
  | Error _ as e -> e
  | Ok () ->
      if Array.length spec.consts <> p.n_consts then
        Error
          (Fmt.str "%s: binding has %d constants, program declares %d" p.name
             (Array.length spec.consts) p.n_consts)
      else if Array.length spec.fns <> p.n_fns then
        Error
          (Fmt.str "%s: binding has %d combinators, program declares %d" p.name
             (Array.length spec.fns) p.n_fns)
      else Ok ()

(* --- printing ------------------------------------------------------------- *)

let pp_port ppf = function
  | P_const c -> Fmt.pf ppf "%d" c
  | P_field f -> Fmt.pf ppf "obs[%d]" f

let pp_cond ppf = function
  | C_deg_le (r, k) -> Fmt.pf ppf "deg(r%d) <= %d" r k
  | C_deg_eq (r, k) -> Fmt.pf ppf "deg(r%d) = %d" r k
  | C_deg_mod (r, m, k) -> Fmt.pf ppf "deg(r%d) mod %d = %d" r m k
  | C_port_ok (r, sel) -> Fmt.pf ppf "port_ok(r%d, %a)" r pp_port sel
  | C_label_eq (r, f, k) -> Fmt.pf ppf "obs[%d](r%d) = %d" f r k
  | C_field_eq (r, f1, f2) -> Fmt.pf ppf "obs[%d](r%d) = obs[%d](r%d)" f1 r f2 r
  | C_node_eq (r1, r2) -> Fmt.pf ppf "r%d = r%d" r1 r2
  | C_marked r -> Fmt.pf ppf "marked(r%d)" r
  | C_queue_empty q -> Fmt.pf ppf "empty(q%d)" q

let pp_instr ppf = function
  | Probe { at; path; dst } ->
      Fmt.pf ppf "probe   r%d <- r%d via [%a]" dst at
        Fmt.(array ~sep:(any " ") pp_port)
        path
  | Jump t -> Fmt.pf ppf "jump    %d" t
  | Branch { cond; if_true; if_false } ->
      Fmt.pf ppf "branch  %a ? %d : %d" pp_cond cond if_true if_false
  | Move { src; dst } -> Fmt.pf ppf "move    r%d <- r%d" dst src
  | Mark r -> Fmt.pf ppf "mark    r%d" r
  | Push { queue; src } -> Fmt.pf ppf "push    q%d <- r%d" queue src
  | Pop { queue; dst } -> Fmt.pf ppf "pop     r%d <- q%d" dst queue
  | Out_const k -> Fmt.pf ppf "out     const[%d]" k
  | Out_fn k -> Fmt.pf ppf "out     fn[%d]" k
  | Halt -> Fmt.pf ppf "halt"

let pp_program ppf p =
  let budget ppf (b : Probe.budget) =
    let opt ppf = function None -> Fmt.string ppf "-" | Some v -> Fmt.int ppf v in
    Fmt.pf ppf "vol=%a dist=%a" opt b.Probe.max_volume opt b.Probe.max_distance
  in
  Fmt.pf ppf "@[<v>program %s: %d instr, %d regs, %d queues, obs arity %d, %d consts, %d fns@,"
    p.name (Array.length p.code) p.n_regs p.n_queues p.obs_arity p.n_consts p.n_fns;
  Fmt.pf ppf "declared budget: %a; step cap: %s@," budget p.declared
    (match p.max_steps with None -> "default" | Some s -> string_of_int s);
  Array.iteri (fun i instr -> Fmt.pf ppf "%4d: %a@," i pp_instr instr) p.code;
  Fmt.pf ppf "@]"

(* --- JSON codec ------------------------------------------------------------ *)

(* Programs (not bindings: the output tables are problem-typed OCaml
   values) round-trip through JSON, which is what makes them
   wire-shippable: a serve client can submit a probe schedule, and the
   validator plus the step cap make running it safe. *)

let port_to_json = function
  | P_const c -> Json.Int c
  | P_field f -> Json.Obj [ ("field", Json.Int f) ]

let port_of_json = function
  | Json.Int c -> Ok (P_const c)
  | Json.Obj _ as j -> (
      match Option.bind (Json.member j "field") Json.to_int with
      | Some f -> Ok (P_field f)
      | None -> Error "port: object without integer \"field\"")
  | _ -> Error "port: expected integer or {\"field\": i}"

let cond_to_json c =
  let obj op fields = Json.Obj (("op", Json.String op) :: fields) in
  match c with
  | C_deg_le (r, k) -> obj "deg_le" [ ("reg", Json.Int r); ("k", Json.Int k) ]
  | C_deg_eq (r, k) -> obj "deg_eq" [ ("reg", Json.Int r); ("k", Json.Int k) ]
  | C_deg_mod (r, m, k) ->
      obj "deg_mod" [ ("reg", Json.Int r); ("m", Json.Int m); ("k", Json.Int k) ]
  | C_port_ok (r, sel) -> obj "port_ok" [ ("reg", Json.Int r); ("port", port_to_json sel) ]
  | C_label_eq (r, f, k) ->
      obj "label_eq" [ ("reg", Json.Int r); ("f", Json.Int f); ("k", Json.Int k) ]
  | C_field_eq (r, f1, f2) ->
      obj "field_eq" [ ("reg", Json.Int r); ("f1", Json.Int f1); ("f2", Json.Int f2) ]
  | C_node_eq (r1, r2) -> obj "node_eq" [ ("r1", Json.Int r1); ("r2", Json.Int r2) ]
  | C_marked r -> obj "marked" [ ("reg", Json.Int r) ]
  | C_queue_empty q -> obj "queue_empty" [ ("queue", Json.Int q) ]

let cond_of_json j =
  let int k = Option.bind (Json.member j k) Json.to_int in
  let req k = match int k with Some v -> Ok v | None -> Error ("cond: missing " ^ k) in
  let ( let* ) = Result.bind in
  match Option.bind (Json.member j "op") Json.to_str with
  | Some "deg_le" ->
      let* r = req "reg" in
      let* k = req "k" in
      Ok (C_deg_le (r, k))
  | Some "deg_eq" ->
      let* r = req "reg" in
      let* k = req "k" in
      Ok (C_deg_eq (r, k))
  | Some "deg_mod" ->
      let* r = req "reg" in
      let* m = req "m" in
      let* k = req "k" in
      Ok (C_deg_mod (r, m, k))
  | Some "port_ok" -> (
      let* r = req "reg" in
      match Json.member j "port" with
      | Some pj ->
          let* sel = port_of_json pj in
          Ok (C_port_ok (r, sel))
      | None -> Error "cond: missing port")
  | Some "label_eq" ->
      let* r = req "reg" in
      let* f = req "f" in
      let* k = req "k" in
      Ok (C_label_eq (r, f, k))
  | Some "field_eq" ->
      let* r = req "reg" in
      let* f1 = req "f1" in
      let* f2 = req "f2" in
      Ok (C_field_eq (r, f1, f2))
  | Some "node_eq" ->
      let* r1 = req "r1" in
      let* r2 = req "r2" in
      Ok (C_node_eq (r1, r2))
  | Some "marked" ->
      let* r = req "reg" in
      Ok (C_marked r)
  | Some "queue_empty" ->
      let* q = req "queue" in
      Ok (C_queue_empty q)
  | Some op -> Error ("cond: unknown op " ^ op)
  | None -> Error "cond: missing op"

let instr_to_json i =
  let obj op fields = Json.Obj (("op", Json.String op) :: fields) in
  match i with
  | Probe { at; path; dst } ->
      obj "probe"
        [
          ("at", Json.Int at);
          ("path", Json.List (Array.to_list (Array.map port_to_json path)));
          ("dst", Json.Int dst);
        ]
  | Jump t -> obj "jump" [ ("to", Json.Int t) ]
  | Branch { cond; if_true; if_false } ->
      obj "branch"
        [
          ("cond", cond_to_json cond);
          ("if_true", Json.Int if_true);
          ("if_false", Json.Int if_false);
        ]
  | Move { src; dst } -> obj "move" [ ("src", Json.Int src); ("dst", Json.Int dst) ]
  | Mark r -> obj "mark" [ ("reg", Json.Int r) ]
  | Push { queue; src } -> obj "push" [ ("queue", Json.Int queue); ("src", Json.Int src) ]
  | Pop { queue; dst } -> obj "pop" [ ("queue", Json.Int queue); ("dst", Json.Int dst) ]
  | Out_const k -> obj "out_const" [ ("k", Json.Int k) ]
  | Out_fn k -> obj "out_fn" [ ("k", Json.Int k) ]
  | Halt -> obj "halt" []

let instr_of_json j =
  let int k = Option.bind (Json.member j k) Json.to_int in
  let req k = match int k with Some v -> Ok v | None -> Error ("instr: missing " ^ k) in
  let ( let* ) = Result.bind in
  match Option.bind (Json.member j "op") Json.to_str with
  | Some "probe" -> (
      let* at = req "at" in
      let* dst = req "dst" in
      match Json.member j "path" with
      | Some (Json.List ps) ->
          let* path =
            List.fold_left
              (fun acc pj ->
                let* acc = acc in
                let* sel = port_of_json pj in
                Ok (sel :: acc))
              (Ok []) ps
          in
          Ok (Probe { at; path = Array.of_list (List.rev path); dst })
      | _ -> Error "probe: missing path list")
  | Some "jump" ->
      let* t = req "to" in
      Ok (Jump t)
  | Some "branch" -> (
      let* if_true = req "if_true" in
      let* if_false = req "if_false" in
      match Json.member j "cond" with
      | Some cj ->
          let* cond = cond_of_json cj in
          Ok (Branch { cond; if_true; if_false })
      | None -> Error "branch: missing cond")
  | Some "move" ->
      let* src = req "src" in
      let* dst = req "dst" in
      Ok (Move { src; dst })
  | Some "mark" ->
      let* r = req "reg" in
      Ok (Mark r)
  | Some "push" ->
      let* queue = req "queue" in
      let* src = req "src" in
      Ok (Push { queue; src })
  | Some "pop" ->
      let* queue = req "queue" in
      let* dst = req "dst" in
      Ok (Pop { queue; dst })
  | Some "out_const" ->
      let* k = req "k" in
      Ok (Out_const k)
  | Some "out_fn" ->
      let* k = req "k" in
      Ok (Out_fn k)
  | Some "halt" -> Ok Halt
  | Some op -> Error ("instr: unknown op " ^ op)
  | None -> Error "instr: missing op"

let program_to_json p =
  let opt = function None -> Json.Null | Some v -> Json.Int v in
  Json.Obj
    [
      ("volcomp_ir", Json.Int 1);
      ("name", Json.String p.name);
      ("n_regs", Json.Int p.n_regs);
      ("n_queues", Json.Int p.n_queues);
      ("obs_arity", Json.Int p.obs_arity);
      ("n_consts", Json.Int p.n_consts);
      ("n_fns", Json.Int p.n_fns);
      ("max_volume", opt p.declared.Probe.max_volume);
      ("max_distance", opt p.declared.Probe.max_distance);
      ("max_steps", opt p.max_steps);
      ("code", Json.List (Array.to_list (Array.map instr_to_json p.code)));
    ]

let program_of_json j =
  let ( let* ) = Result.bind in
  let int k = Option.bind (Json.member j k) Json.to_int in
  let req k = match int k with Some v -> Ok v | None -> Error ("program: missing " ^ k) in
  let opt k = match Json.member j k with Some Json.Null | None -> None | Some v -> Json.to_int v in
  let* () =
    match int "volcomp_ir" with
    | Some 1 -> Ok ()
    | Some v -> Error (Fmt.str "program: unsupported volcomp_ir version %d" v)
    | None -> Error "program: missing volcomp_ir version tag"
  in
  let* name =
    match Option.bind (Json.member j "name") Json.to_str with
    | Some n -> Ok n
    | None -> Error "program: missing name"
  in
  let* n_regs = req "n_regs" in
  let* n_queues = req "n_queues" in
  let* obs_arity = req "obs_arity" in
  let* n_consts = req "n_consts" in
  let* n_fns = req "n_fns" in
  let* code =
    match Json.member j "code" with
    | Some (Json.List is) ->
        let* rev =
          List.fold_left
            (fun acc ij ->
              let* acc = acc in
              let* i = instr_of_json ij in
              Ok (i :: acc))
            (Ok []) is
        in
        Ok (Array.of_list (List.rev rev))
    | _ -> Error "program: missing code list"
  in
  let p =
    {
      name;
      n_regs;
      n_queues;
      obs_arity;
      n_consts;
      n_fns;
      declared =
        { Probe.max_volume = opt "max_volume"; max_distance = opt "max_distance" };
      max_steps = opt "max_steps";
      code;
    }
  in
  match validate p with Ok () -> Ok p | Error e -> Error e

(* --- assembler ------------------------------------------------------------- *)

(* A tiny two-pass assembler: emit instructions against symbolic labels,
   then resolve.  The hand-compiled solver ports in {!Library} read much
   better this way than with absolute targets. *)

module Asm = struct
  type label = int

  type t = {
    mutable items : [ `Instr of instr | `Lbl of label ] list; (* reversed *)
    mutable next_label : int;
  }

  let create () = { items = []; next_label = 0 }

  let label t =
    let l = t.next_label in
    t.next_label <- l + 1;
    l

  let place t l = t.items <- `Lbl l :: t.items

  let emit t i = t.items <- `Instr i :: t.items

  (* Emitted targets are labels; [assemble] rewrites them to indices. *)
  let probe t ~at ~path ~dst = emit t (Probe { at; path; dst })

  let jump t l = emit t (Jump l)

  let branch t cond ~if_true ~if_false = emit t (Branch { cond; if_true; if_false })

  let move t ~src ~dst = emit t (Move { src; dst })

  let mark t r = emit t (Mark r)

  let push t ~queue ~src = emit t (Push { queue; src })

  let pop t ~queue ~dst = emit t (Pop { queue; dst })

  let out_const t k = emit t (Out_const k)

  let out_fn t k = emit t (Out_fn k)

  let halt t = emit t Halt

  let assemble t ~name ~n_regs ~n_queues ~obs_arity ~n_consts ~n_fns ?(declared = Probe.unlimited)
      ?max_steps () =
    let items = List.rev t.items in
    let at = Array.make t.next_label (-1) in
    let pc = ref 0 in
    List.iter
      (function
        | `Lbl l -> at.(l) <- !pc
        | `Instr _ -> incr pc)
      items;
    let resolve l =
      if l < 0 || l >= Array.length at || at.(l) < 0 then
        invalid_arg (Fmt.str "Ir.Asm.assemble: unplaced label %d" l)
      else at.(l)
    in
    let code =
      List.filter_map
        (function
          | `Lbl _ -> None
          | `Instr (Jump l) -> Some (Jump (resolve l))
          | `Instr (Branch { cond; if_true; if_false }) ->
              Some (Branch { cond; if_true = resolve if_true; if_false = resolve if_false })
          | `Instr i -> Some i)
        items
    in
    let p =
      {
        name;
        n_regs;
        n_queues;
        obs_arity;
        n_consts;
        n_fns;
        declared;
        max_steps;
        code = Array.of_list code;
      }
    in
    match validate p with
    | Ok () -> p
    | Error e -> invalid_arg ("Ir.Asm.assemble: " ^ e)
end
