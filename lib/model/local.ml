module Graph = Vc_graph.Graph

type 'i record = {
  degree : int;
  id : int;
  input : 'i;
  ports : Graph.node option array;
}

type 'i knowledge = (Graph.node, 'i record) Hashtbl.t

let nodes_known k = Hashtbl.length k

type 'i gathering = {
  views : 'i knowledge array;
  rounds : int;
  max_message_bits : int;
}

(* Merge [incoming] into [mine]; records about the same node only ever
   grow their known-ports set. *)
let merge mine incoming =
  Hashtbl.iter
    (fun v (r : _ record) ->
      match Hashtbl.find_opt mine v with
      | None -> Hashtbl.replace mine v { r with ports = Array.copy r.ports }
      | Some existing ->
          Array.iteri
            (fun i t -> match t with Some _ when existing.ports.(i) = None -> existing.ports.(i) <- t | Some _ | None -> ())
            r.ports)
    incoming

let record_bits (r : _ record) = 64 * (2 + Array.length r.ports)

let knowledge_bits k = Hashtbl.fold (fun _ r acc -> acc + record_bits r) k 0

(* Synchronous flooding, run directly (per-round semantics identical to
   a LOCAL execution): in each round every node merges its neighbors'
   previous-round knowledge and learns which node sits on each of its
   ports. *)
let gather ~graph ~input ~rounds =
  let n = Graph.n graph in
  let fresh v : _ knowledge =
    let k = Hashtbl.create 16 in
    Hashtbl.replace k v
      {
        degree = Graph.degree graph v;
        id = Graph.id graph v;
        input = input v;
        ports = Array.make (Graph.degree graph v) None;
      };
    k
  in
  let current = ref (Array.init n fresh) in
  let max_bits = ref 0 in
  for _ = 1 to rounds do
    let next =
      Array.mapi
        (fun v k ->
          (* deep-copy records so merges do not alias across nodes *)
          let mine' : _ knowledge = Hashtbl.create (Hashtbl.length k) in
          Hashtbl.iter (fun u r -> Hashtbl.replace mine' u { r with ports = Array.copy r.ports }) k;
          for port = 1 to Graph.degree graph v do
            let u = Graph.neighbor graph v port in
            let msg = !current.(u) in
            max_bits := max !max_bits (knowledge_bits msg);
            merge mine' msg;
            (* receiving on port [port] reveals that edge *)
            (Hashtbl.find mine' v).ports.(port - 1) <- Some u
          done;
          mine')
        !current
    in
    current := next
  done;
  { views = !current; rounds; max_message_bits = !max_bits }

exception Outside_ball of Graph.node

let world_of_knowledge ~n ~origin know =
  let find v =
    match Hashtbl.find_opt know v with Some r -> r | None -> raise (Outside_ball v)
  in
  (* BFS distances within the knowledge subgraph *)
  let distances () =
    let dist = Hashtbl.create 64 in
    let queue = Queue.create () in
    Hashtbl.replace dist origin 0;
    Queue.add origin queue;
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      let d = Hashtbl.find dist v in
      match Hashtbl.find_opt know v with
      | None -> ()
      | Some r ->
          Array.iter
            (function
              | Some u when not (Hashtbl.mem dist u) ->
                  Hashtbl.replace dist u (d + 1);
                  Queue.add u queue
              | Some _ | None -> ())
            r.ports
    done;
    dist
  in
  let start origin' =
    if origin' <> origin then invalid_arg "Local.world_of_knowledge: wrong origin";
    let dist = distances () in
    {
      World.view =
        (fun v ->
          let r = find v in
          { View.node = v; id = r.id; degree = r.degree; input = r.input });
      resolve =
        (fun w ~port ->
          let r = find w in
          match r.ports.(port - 1) with
          | Some u -> u
          | None -> raise (Outside_ball w));
      dist = (fun v -> match Hashtbl.find_opt dist v with Some d -> d | None -> max_int);
    }
  in
  let max_degree = Hashtbl.fold (fun _ r acc -> max acc r.degree) know 0 in
  { World.n; max_degree; start }
