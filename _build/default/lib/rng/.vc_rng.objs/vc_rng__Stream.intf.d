lib/rng/stream.mli: Splitmix
