(* Tests for the probe executor, worlds, ball gathering and CONGEST. *)

module Graph = Vc_graph.Graph
module Builder = Vc_graph.Builder
module Probe = Vc_model.Probe
module World = Vc_model.World
module Ball = Vc_model.Ball
module Congest = Vc_model.Congest
module Randomness = Vc_rng.Randomness

let unit_world g = World.of_graph g ~input:(fun _ -> ())

let test_origin_visible () =
  let w = unit_world (Builder.path 4) in
  let r =
    Probe.run ~world:w ~origin:2 (fun ctx ->
        Alcotest.(check int) "origin" 2 (Probe.origin ctx);
        Alcotest.(check int) "n" 4 (Probe.n ctx);
        Alcotest.(check int) "initial volume" 1 (Probe.volume ctx);
        Probe.id ctx 2)
  in
  Alcotest.(check (option int)) "id of origin" (Some 3) r.Probe.output

let test_query_extends_visited () =
  let w = unit_world (Builder.path 4) in
  let r =
    Probe.run ~world:w ~origin:0 (fun ctx ->
        let u = Probe.query ctx ~at:0 ~port:1 in
        Alcotest.(check int) "neighbor" 1 u;
        Alcotest.(check bool) "now visited" true (Probe.visited ctx u);
        Probe.query ctx ~at:u ~port:2)
  in
  Alcotest.(check (option int)) "second hop" (Some 2) r.Probe.output;
  Alcotest.(check int) "volume 3" 3 r.Probe.volume;
  Alcotest.(check int) "distance 2" 2 r.Probe.distance;
  Alcotest.(check int) "queries 2" 2 r.Probe.queries

let test_query_from_unvisited_rejected () =
  let w = unit_world (Builder.path 4) in
  let r =
    Probe.run ~world:w ~origin:0 (fun ctx ->
        try
          ignore (Probe.query ctx ~at:3 ~port:1);
          false
        with Probe.Illegal _ -> true)
  in
  Alcotest.(check (option bool)) "illegal" (Some true) r.Probe.output

let test_invalid_port_rejected () =
  let w = unit_world (Builder.path 4) in
  let r =
    Probe.run ~world:w ~origin:0 (fun ctx ->
        try
          ignore (Probe.query ctx ~at:0 ~port:2);
          false
        with Probe.Illegal _ -> true)
  in
  Alcotest.(check (option bool)) "illegal" (Some true) r.Probe.output

let test_requery_free_volume () =
  let w = unit_world (Builder.path 4) in
  let r =
    Probe.run ~world:w ~origin:0 (fun ctx ->
        ignore (Probe.query ctx ~at:0 ~port:1);
        ignore (Probe.query ctx ~at:0 ~port:1);
        ignore (Probe.query ctx ~at:0 ~port:1))
  in
  Alcotest.(check int) "volume 2" 2 r.Probe.volume;
  Alcotest.(check int) "queries 3" 3 r.Probe.queries

let test_volume_budget_aborts () =
  let w = unit_world (Builder.path 10) in
  let r =
    Probe.run ~world:w ~budget:(Probe.volume_budget 3) ~origin:0 (fun ctx ->
        let rec go v = go (Probe.query ctx ~at:v ~port:(Graph.degree (Builder.path 10) v)) in
        go 0)
  in
  Alcotest.(check bool) "aborted" true r.Probe.aborted;
  Alcotest.(check bool) "no output" true (Option.is_none r.Probe.output);
  Alcotest.(check int) "volume capped" 3 r.Probe.volume

let test_distance_budget_aborts () =
  let w = unit_world (Builder.path 10) in
  let r =
    Probe.run ~world:w ~budget:(Probe.distance_budget 2) ~origin:0 (fun ctx ->
        let rec go v = go (Probe.query ctx ~at:v ~port:(if v = 0 then 1 else 2)) in
        go 0)
  in
  Alcotest.(check bool) "aborted" true r.Probe.aborted;
  Alcotest.(check int) "distance capped" 2 r.Probe.distance

let test_deterministic_rand_rejected () =
  let w = unit_world (Builder.path 4) in
  let r =
    Probe.run ~world:w ~origin:0 (fun ctx ->
        try
          ignore (Probe.rand_bit ctx 0);
          false
        with Probe.Illegal _ -> true)
  in
  Alcotest.(check (option bool)) "illegal" (Some true) r.Probe.output

let test_rand_bits_consistent_across_runs () =
  let g = Builder.path 4 in
  let w = unit_world g in
  let rand = Randomness.create ~seed:9L ~n:4 () in
  let read origin =
    (Probe.run ~world:w ~randomness:rand ~origin (fun ctx ->
         ignore (Probe.query ctx ~at:origin ~port:1);
         let v = Graph.neighbor g origin 1 in
         List.init 8 (fun i -> Probe.rand_bit_at ctx v i)))
      .Probe.output
  in
  (* Nodes 0 and 2 both read node 1's bits (ports: node 0 port 1 -> 1;
     node 2 port 1 -> 1? node 2's port 1 is node 1 in a path built from
     edges (0,1),(1,2),(2,3)). *)
  Alcotest.(check (option (list bool))) "same bits seen by different executions" (read 0) (read 2)

let test_secret_randomness_enforced () =
  let w = unit_world (Builder.path 4) in
  let rand = Randomness.create ~regime:Randomness.Secret ~seed:9L ~n:4 () in
  let r =
    Probe.run ~world:w ~randomness:rand ~origin:0 (fun ctx ->
        ignore (Probe.rand_bit ctx 0);
        let u = Probe.query ctx ~at:0 ~port:1 in
        try
          ignore (Probe.rand_bit ctx u);
          false
        with Probe.Illegal _ -> true)
  in
  Alcotest.(check (option bool)) "own ok, other's forbidden" (Some true) r.Probe.output

let test_rand_accounting () =
  let w = unit_world (Builder.path 4) in
  let rand = Randomness.create ~seed:9L ~n:4 () in
  let r =
    Probe.run ~world:w ~randomness:rand ~origin:0 (fun ctx ->
        ignore (Probe.rand_bit ctx 0);
        ignore (Probe.rand_bit ctx 0);
        ignore (Probe.rand_bit_at ctx 0 5))
  in
  Alcotest.(check int) "3 bits read" 3 r.Probe.rand_bits

let test_ball_gather () =
  let g = Builder.complete_binary_tree ~depth:3 in
  let w = unit_world g in
  let r =
    Probe.run ~world:w ~origin:0 (fun ctx ->
        let ball = Ball.gather ctx ~radius:2 in
        List.length ball)
  in
  Alcotest.(check (option int)) "ball size" (Some 7) r.Probe.output;
  (* gathering radius 2 queries all ports of depth<2 nodes: visits depth 3? no *)
  Alcotest.(check int) "distance exactly 2" 2 r.Probe.distance;
  Alcotest.(check int) "volume equals ball size" 7 r.Probe.volume

let test_ball_depths_match_bfs () =
  let g = Builder.cycle 9 in
  let w = unit_world g in
  let r =
    Probe.run ~world:w ~origin:4 (fun ctx -> Ball.gather ctx ~radius:3)
  in
  let expected = Vc_graph.Bfs.distances_upto g 4 ~radius:3 in
  Alcotest.(check (option (list (pair int int)))) "bfs agreement" (Some expected) r.Probe.output

let test_lemma_2_5_volume_of_distance_sim () =
  (* Gathering radius T costs volume <= Delta^T + 1 (Lemma 2.5). *)
  let g = Builder.complete_binary_tree ~depth:5 in
  let w = unit_world g in
  List.iter
    (fun t ->
      let r = Probe.run ~world:w ~origin:0 (fun ctx -> ignore (Ball.gather ctx ~radius:t)) in
      let _, upper = Vc_lcl.Lcl.volume_bounds_from_distance ~delta:(Graph.max_degree g) ~distance:t in
      Alcotest.(check bool) "vol <= Delta^T + 1" true (r.Probe.volume <= upper);
      Alcotest.(check bool) "dist <= vol" true (r.Probe.distance <= r.Probe.volume))
    [ 0; 1; 2; 3 ]

(* --- Worlds: lazy sessions vs eager sessions -------------------------- *)

let test_lazy_dist_matches_bfs () =
  let g = Builder.complete_binary_tree ~depth:4 in
  let w = unit_world g in
  Graph.iter_nodes g (fun origin ->
      let s = w.World.start origin in
      let expected = Vc_graph.Bfs.distances g origin in
      (* Demand distances in node order, not BFS order, so the session
         repeatedly has to expand its frontier mid-stream. *)
      Graph.iter_nodes g (fun v ->
          Alcotest.(check int) "dist matches full BFS" expected.(v) (s.World.dist v)))

let test_lazy_dist_unreachable_max_int () =
  let g, _ = Builder.disjoint_union [ Builder.path 3; Builder.cycle 4 ] in
  let lazy_w = unit_world g in
  let eager_w = World.of_graph_eager g ~input:(fun _ -> ()) in
  let sl = lazy_w.World.start 0 in
  let se = eager_w.World.start 0 in
  Graph.iter_nodes g (fun v ->
      Alcotest.(check int) "lazy = eager" (se.World.dist v) (sl.World.dist v));
  Alcotest.(check bool) "unreachable is max_int" true (sl.World.dist 5 = max_int)

let test_interleaved_sessions_independent () =
  (* A younger session claims the pooled scratch; the older session must
     transparently fall back to private scratch and keep answering. *)
  let g = Builder.cycle 12 in
  let w = unit_world g in
  let s0 = w.World.start 0 in
  Alcotest.(check int) "s0 before interleave" 1 (s0.World.dist 1);
  let s6 = w.World.start 6 in
  Alcotest.(check int) "s6 own origin" 0 (s6.World.dist 6);
  Alcotest.(check int) "s0 after interleave" 6 (s0.World.dist 6);
  Alcotest.(check int) "s0 far node" 4 (s0.World.dist 8);
  Alcotest.(check int) "s6 still answers" 6 (s6.World.dist 0)

let test_lazy_eager_probe_results_identical () =
  let g = Builder.complete_binary_tree ~depth:4 in
  let lazy_w = unit_world g in
  let eager_w = World.of_graph_eager g ~input:(fun _ -> ()) in
  let algo ctx = List.length (Ball.gather ctx ~radius:2) in
  Graph.iter_nodes g (fun origin ->
      let a = Probe.run ~world:lazy_w ~origin algo in
      let b = Probe.run ~world:eager_w ~origin algo in
      Alcotest.(check bool) "full probe results identical" true (a = b))

(* --- CONGEST ---------------------------------------------------------- *)

(* Flood the maximum identifier: a classic O(diameter) CONGEST task with
   O(log n)-bit messages. *)
let flood_max_algorithm ~rounds_needed =
  let open Congest in
  {
    init =
      (fun ~n:_ ~id ~degree ~input:() ->
        let out = List.init degree (fun p -> (p + 1, id)) in
        ((id, degree, 0), out));
    round =
      (fun (best, degree, age) ~inbox ->
        let best' = List.fold_left (fun acc (_, m) -> max acc m) best inbox in
        let out = if best' > best then List.init degree (fun p -> (p + 1, best')) else [] in
        let age = age + 1 in
        let decision = if age >= rounds_needed then Some best' else None in
        ((best', degree, age), out, decision));
    message_bits = (fun _ -> 32);
  }

let test_congest_flood_max () =
  let g = Builder.path 8 in
  let res =
    Congest.run ~graph:g ~input:(fun _ -> ()) ~max_rounds:50 (flood_max_algorithm ~rounds_needed:8)
  in
  Array.iter
    (fun o -> Alcotest.(check (option int)) "max id everywhere" (Some 8) o)
    res.Congest.outputs;
  Alcotest.(check bool) "rounds bounded" true (res.Congest.rounds <= 20)

let test_congest_bandwidth_enforced () =
  let g = Builder.path 3 in
  let algo =
    {
      Congest.init = (fun ~n:_ ~id:_ ~degree ~input:() -> ((), List.init degree (fun p -> (p + 1, ()))));
      round = (fun () ~inbox:_ -> ((), [], Some ()));
      message_bits = (fun () -> 100);
    }
  in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Congest.run ~graph:g ~input:(fun _ -> ()) ~bandwidth:32 ~max_rounds:5 algo);
       false
     with Congest.Bandwidth_exceeded _ -> true)

let suites =
  [
    ( "model:probe",
      [
        Alcotest.test_case "origin visible" `Quick test_origin_visible;
        Alcotest.test_case "query extends visited" `Quick test_query_extends_visited;
        Alcotest.test_case "query from unvisited rejected" `Quick test_query_from_unvisited_rejected;
        Alcotest.test_case "invalid port rejected" `Quick test_invalid_port_rejected;
        Alcotest.test_case "requery free volume" `Quick test_requery_free_volume;
        Alcotest.test_case "volume budget aborts" `Quick test_volume_budget_aborts;
        Alcotest.test_case "distance budget aborts" `Quick test_distance_budget_aborts;
        Alcotest.test_case "deterministic rand rejected" `Quick test_deterministic_rand_rejected;
        Alcotest.test_case "rand bits consistent" `Quick test_rand_bits_consistent_across_runs;
        Alcotest.test_case "secret randomness enforced" `Quick test_secret_randomness_enforced;
        Alcotest.test_case "rand accounting" `Quick test_rand_accounting;
      ] );
    ( "model:world",
      [
        Alcotest.test_case "lazy dist matches full BFS" `Quick test_lazy_dist_matches_bfs;
        Alcotest.test_case "unreachable nodes agree" `Quick test_lazy_dist_unreachable_max_int;
        Alcotest.test_case "interleaved sessions" `Quick test_interleaved_sessions_independent;
        Alcotest.test_case "lazy/eager probe results" `Quick test_lazy_eager_probe_results_identical;
      ] );
    ( "model:ball",
      [
        Alcotest.test_case "gather" `Quick test_ball_gather;
        Alcotest.test_case "depths match bfs" `Quick test_ball_depths_match_bfs;
        Alcotest.test_case "lemma 2.5 simulation bound" `Quick test_lemma_2_5_volume_of_distance_sim;
      ] );
    ( "model:congest",
      [
        Alcotest.test_case "flood max" `Quick test_congest_flood_max;
        Alcotest.test_case "bandwidth enforced" `Quick test_congest_bandwidth_enforced;
      ] );
  ]
