(** The oracle's serving-layer probes: round-trip identity (probe 8) and
    sharded-tier identity (probe 9).

    [lib/check] cannot depend on this library (the handler serves
    registry trials), so the probes live here and the CLI injects them
    via {!Vc_check.Oracle.run}'s [?serve] and [?shard] arguments. *)

val probe : Vc_check.Registry.entry -> size:int -> seed:int64 -> (unit, string) result
(** Round-trip one trial's queries through the {e full} wire path —
    {!Protocol.request_to_json}, framing, the incremental decoder,
    request parsing, {!Handler.handle}, reply encoding, reply parsing —
    and compare every payload byte-for-byte against direct in-process
    computation on an identically-built trial: [solve] once, [probe] and
    [trace] from three origins (first, middle, last node), [warm] once.
    Also checks that an unknown problem and an out-of-range origin come
    back as the structured [unknown_problem] / [bad_origin] errors.
    [Error] describes the first divergence. *)

val shard_probe :
  exe:string ->
  workers:int ->
  Vc_check.Registry.entry ->
  size:int ->
  seed:int64 ->
  (unit, string) result
(** Spawn a real sharded tier — [exe serve --workers N --socket tmp] —
    and drive a fixed corpus (solve, warm, probes and traces from three
    origins, list, unknown problem, out-of-range origin) through it,
    asserting every reply is {e byte-for-byte} the reply a
    single-process server over the full registry would send.  Finishes
    by checking the merged [stats] reports all [workers] alive, then
    shuts the tier down and reaps it (also on failure).  [Error]
    describes the first divergence. *)
