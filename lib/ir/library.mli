(** The shipped IR ports of the core solvers, with their closure
    counterparts as differential oracles.

    Each port reproduces its closure solver's probe schedule {e exactly}
    — same queries, same order, including quirks like [children]'s
    re-issued status queries in LeafColoring — so oracle probe 8 can
    demand byte-identical outputs {e and} cost envelopes. *)

module TL = Vc_graph.Tree_labels
module LC = Volcomp.Leaf_coloring
module TR = Volcomp.Trivial_lcl

val degree_parity : (unit, TR.parity) Ir.spec
(** Branch on origin degree parity; 0 queries. *)

val cycle_coloring : n:int -> (unit, int) Ir.spec
(** Cole–Vishkin on oriented cycles: two straight-line walks (3 hops on
    port 1, [rounds_needed n + 3] hops on port 2), color arithmetic in
    the output combinator over the logged identifiers. *)

val probe_tree_status : (LC.node_input, TL.status) Ir.spec
(** The Definition 3.3 status decision at the origin, as a standalone
    program (also the macro inside {!leaf_coloring}). *)

val leaf_coloring : (LC.node_input, TL.color) Ir.spec
(** Proposition 3.9's nearest-leaf BFS, queue-based. *)

val tree_obs : LC.node_input -> int -> int
(** The observation encoding of the tree-labeling programs: fields 0–2
    are the parent/left/right pointers, field 3 the input color
    (Red = 0, Blue = 1). *)

val status_solver : (LC.node_input, TL.status) Vc_lcl.Lcl.solver
(** The closure oracle of {!probe_tree_status} (Definition 3.3 via
    [Probe_tree.status]); also what the bench rows race against. *)

(** {1 Catalogue (for the [volcomp ir] CLI and tests)} *)

type packed =
  | Packed : {
      spec : ('i, 'o) Ir.spec;
      graph : Vc_graph.Graph.t;
      input : Vc_graph.Graph.node -> 'i;
      world : 'i Vc_model.World.t;
      solver : ('i, 'o) Vc_lcl.Lcl.solver;  (** the closure oracle *)
      pp_output : Format.formatter -> 'o -> unit;
    }
      -> packed

val names : unit -> string list

val program : name:string -> n:int -> Ir.program option
(** The program alone ([n] parameterizes {!cycle_coloring}). *)

val instance : name:string -> size:int -> seed:int64 -> packed option
(** A deterministic instance on the program's natural graph family. *)
