lib/measure/tail_bounds.ml: Vc_rng
