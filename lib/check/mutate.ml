module Graph = Vc_graph.Graph
module Bfs = Vc_graph.Bfs
module Lcl = Vc_lcl.Lcl

type ('i, 'o) t = {
  site : Graph.node;
  input : (Graph.node -> 'i) option;
  output : Graph.node -> 'o;
}

type outcome = {
  kind : string;
  site : Graph.node;
  rejected : bool;
  in_radius : bool;
  detail : string;
}

let pp_outcome ppf o =
  Fmt.pf ppf "%s@%d: %s%s%s" o.kind o.site
    (if o.rejected then "rejected" else "accepted")
    (if o.in_radius then "" else " OUT-OF-RADIUS")
    (if o.detail = "" then "" else " (" ^ o.detail ^ ")")

let check ~problem ~graph ~input ~kind (m : _ t) =
  let input = Option.value m.input ~default:input in
  match Lcl.check problem graph ~input ~output:m.output with
  | Ok () -> { kind; site = m.site; rejected = false; in_radius = true; detail = "" }
  | Error violations ->
      let radius = problem.Lcl.radius in
      let in_radius =
        (* a radius at least n covers the whole graph (e.g. the non-LCL
           Example 7.6 problem advertises max_int) *)
        radius >= Graph.n graph
        ||
        let dist = Bfs.distances graph m.site in
        List.for_all (fun v -> dist.(v.Lcl.node) <= radius) violations
      in
      let detail =
        match violations with
        | v :: _ -> Fmt.str "%a" Lcl.pp_violation v
        | [] -> "rejected with no violation record"
      in
      { kind; site = m.site; rejected = true; in_radius; detail }

let reference_failure ~msg =
  { kind = "reference"; site = -1; rejected = false; in_radius = false; detail = msg }
