type 'i t = {
  node : Vc_graph.Graph.node;
  id : int;
  degree : int;
  input : 'i;
}

let pp pp_input ppf v =
  Fmt.pf ppf "@[<h>{node=%d; id=%d; deg=%d; input=%a}@]" v.node v.id v.degree pp_input v.input
