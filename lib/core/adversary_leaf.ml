module TL = Vc_graph.Tree_labels
module Graph = Vc_graph.Graph
module Probe = Vc_model.Probe
module World = Vc_model.World
module Lcl = Vc_lcl.Lcl

type verdict =
  | Fooled of {
      volume : int;
      instance : Leaf_coloring.instance;
      algorithm_output : TL.color;
      forced_output : TL.color;
    }
  | Survived of { volume : int }

let pp_verdict ppf = function
  | Fooled f ->
      Fmt.pf ppf "fooled: output %a after volume %d, but the completed instance forces %a"
        TL.pp_color f.algorithm_output f.volume TL.pp_color f.forced_output
  | Survived s -> Fmt.pf ppf "survived: spent volume %d (>= n/3)" s.volume

(* Growth state: every materialized node records its degree, served
   input, per-port assignment (-1 when the port has not been revealed)
   and tree depth (= distance from the origin, final because only
   pendant nodes are ever added). *)
type anode = {
  degree : int;
  served : Leaf_coloring.node_input;
  ports : int array;
  depth : int;
}

type state = {
  mutable count : int;
  nodes : (int, anode) Hashtbl.t;
}

let root_input =
  { Leaf_coloring.parent = TL.bot; left = 1; right = 2; color = TL.Red }

let child_input = { Leaf_coloring.parent = 1; left = 2; right = 3; color = TL.Red }

let fresh_state () =
  let st = { count = 1; nodes = Hashtbl.create 64 } in
  Hashtbl.add st.nodes 0 { degree = 2; served = root_input; ports = [| -1; -1 |]; depth = 0 };
  st

let world_internal ~claimed_n =
  let st = fresh_state () in
  let start origin =
    if origin <> 0 then invalid_arg "Adversary_leaf.world: executions must start at node 0";
    let view v =
      let a = Hashtbl.find st.nodes v in
      { Vc_model.View.node = v; id = v + 1; degree = a.degree; input = a.served }
    in
    let resolve w ~port =
      let a = Hashtbl.find st.nodes w in
      let slot = port - 1 in
      if a.ports.(slot) >= 0 then a.ports.(slot)
      else begin
        (* Grow a fresh internal-looking node hanging off port [port]. *)
        let u = st.count in
        st.count <- st.count + 1;
        Hashtbl.add st.nodes u
          { degree = 3; served = child_input; ports = [| w; -1; -1 |]; depth = a.depth + 1 };
        a.ports.(slot) <- u;
        u
      end
    in
    let dist v = (Hashtbl.find st.nodes v).depth in
    { World.view; resolve; dist }
  in
  let materialized () = st.count in
  (* Every node the adversary ever materializes is a tree node of degree
     at most 3, so 3 is a sound packing bound for the executor. *)
  (({ World.n = claimed_n; max_degree = 3; start } : Leaf_coloring.node_input World.t),
   materialized, st)

let world ~claimed_n =
  let w, materialized, _ = world_internal ~claimed_n in
  (w, materialized)

let complete ~claimed_n ~explored_adj ~inputs ~origin_output =
  ignore claimed_n;
  let m = List.length explored_adj in
  let adj_tbl = Hashtbl.create m in
  List.iter (fun (v, ports) -> Hashtbl.add adj_tbl v (Array.copy ports)) explored_adj;
  let input_tbl = Hashtbl.create m in
  List.iter (fun (v, i) -> Hashtbl.add input_tbl v i) inputs;
  (* Hang a leaf on every unassigned port. *)
  let next = ref m in
  let leaf_parent = Hashtbl.create m in
  for v = 0 to m - 1 do
    let ports = Hashtbl.find adj_tbl v in
    Array.iteri
      (fun slot u ->
        if u < 0 then begin
          let leaf = !next in
          incr next;
          ports.(slot) <- leaf;
          Hashtbl.add leaf_parent leaf v
        end)
      ports
  done;
  let total = !next in
  let adj =
    Array.init total (fun v ->
        match Hashtbl.find_opt adj_tbl v with
        | Some ports -> ports
        | None -> [| Hashtbl.find leaf_parent v |])
  in
  let ids = Array.init total (fun v -> v + 1) in
  let graph = Graph.create ~ids ~adj in
  let labels = TL.make ~n:total in
  let colors = Array.make total TL.Red in
  for v = 0 to total - 1 do
    if v < m then begin
      let i = Hashtbl.find input_tbl v in
      labels.TL.parent.{v} <- i.Leaf_coloring.parent;
      labels.TL.left.{v} <- i.Leaf_coloring.left;
      labels.TL.right.{v} <- i.Leaf_coloring.right;
      colors.(v) <- i.Leaf_coloring.color
    end
    else begin
      labels.TL.parent.{v} <- 1;
      labels.TL.left.{v} <- TL.bot;
      labels.TL.right.{v} <- TL.bot;
      colors.(v) <- TL.flip_color origin_output
    end
  done;
  Leaf_coloring.of_tree graph labels ~colors

let duel ~claimed_n (solver : (Leaf_coloring.node_input, TL.color) Lcl.solver) =
  if solver.Lcl.randomized then
    invalid_arg "Adversary_leaf.duel: the adversary only defeats deterministic algorithms";
  let w, _materialized, st = world_internal ~claimed_n in
  let budget = Probe.volume_budget (claimed_n / 3) in
  let res = Probe.run ~world:w ~budget ~origin:0 solver.Lcl.solve in
  match res.Probe.output with
  | None -> Survived { volume = res.Probe.volume }
  | Some c ->
      let explored_adj =
        List.init st.count (fun v -> (v, (Hashtbl.find st.nodes v).ports))
      in
      let inputs = List.init st.count (fun v -> (v, (Hashtbl.find st.nodes v).served)) in
      let inst = complete ~claimed_n ~explored_adj ~inputs ~origin_output:c in
      (* Determinism replay: on the completed instance the algorithm sees
         the very same answers, so it must repeat its output. *)
      let w2 =
        World.of_graph_claiming ~n:claimed_n inst.Leaf_coloring.graph
          ~input:(Leaf_coloring.input inst)
      in
      let res2 = Probe.run ~world:w2 ~origin:0 solver.Lcl.solve in
      let c2 =
        match res2.Probe.output with
        | Some c2 -> c2
        | None -> failwith "Adversary_leaf.duel: replay aborted unexpectedly"
      in
      if not (TL.equal_color c c2) then
        failwith "Adversary_leaf.duel: solver is not deterministic (replay diverged)";
      let forced =
        match Leaf_coloring.unique_valid_output inst with
        | Some f -> f.(0)
        | None -> TL.flip_color c
      in
      Fooled { volume = res.Probe.volume; instance = inst; algorithm_output = c2; forced_output = forced }
