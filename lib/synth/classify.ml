module Graph = Vc_graph.Graph
module Builder = Vc_graph.Builder
module TL = Vc_graph.Tree_labels
module Splitmix = Vc_rng.Splitmix
module Ir = Vc_ir.Ir
module Library = Vc_ir.Library
module Lcl = Vc_lcl.Lcl
module LC = Volcomp.Leaf_coloring
module Json = Vc_obs.Json

type spec = {
  s_name : string;
  s_registry : string;
  s_family : string;
  s_radius : int;
  s_volume : int;
  s_unsat_volume : int;
  s_bound : int option;
  s_universe : Encode.universe;
  s_template : Encode.template;
}

(* --- template building blocks ---------------------------------------------- *)

let br cond t f = Ir.Branch { cond; if_true = t; if_false = f }

(* All C_label_eq tests over the given registers, fields and values,
   with the slot's fixed targets. *)
let label_menu ~regs ~fields ~vals t f =
  List.concat_map
    (fun r ->
      List.concat_map
        (fun fd -> List.map (fun k -> br (Ir.C_label_eq (r, fd, k)) t f) vals)
        fields)
    regs
  |> Array.of_list

let outs n = Array.init n (fun k -> Ir.Out_const k)

(* --- degree parity ---------------------------------------------------------- *)

let degree_parity_spec () =
  let module TR = Volcomp.Trivial_lcl in
  let template =
    {
      Encode.t_name = "synth-degree-parity";
      n_regs = 1;
      obs_arity = 0;
      n_consts = 2;
      slots =
        [|
          [|
            br (Ir.C_deg_mod (0, 2, 0)) 1 2;
            br (Ir.C_deg_mod (0, 2, 1)) 1 2;
            br (Ir.C_deg_le (0, 1)) 1 2;
            br (Ir.C_deg_eq (0, 2)) 1 2;
            Ir.Jump 1;
            Ir.Jump 2;
          |];
          outs 2;
          outs 2;
        |];
    }
  in
  let unit_input _ = () in
  let instances =
    [|
      ("path-6", Builder.path 6, unit_input);
      ("ctree-d2", Builder.complete_binary_tree ~depth:2, unit_input);
      ("cycle-5", Builder.cycle 5, unit_input);
      ( "rtree-9",
        Builder.random_binary_tree ~n:9 ~rng:(Splitmix.create 11L),
        unit_input );
    |]
  in
  {
    s_name = "degree-parity";
    s_registry = "DegreeParity";
    s_family = "cubic";
    s_radius = 0;
    s_volume = 1;
    s_unsat_volume = 0;
    s_bound = None;
    s_universe =
      Encode.U
        {
          u_name = "degree-parity";
          lcl = TR.problem;
          consts = [| TR.Even; TR.Odd |];
          obs = (fun () _ -> 0);
          instances;
        };
    s_template = template;
  }

(* --- cycle coloring (after normalization) ----------------------------------- *)

(* The input promise: a proper 4-coloring, i.e. what Θ(log* n) rounds of
   Cole–Vishkin have already paid for.  A volume-bounded one-shot
   program cannot express the unbounded id-driven reduction, but the
   last normalization step 4 → 3 is a finite local function — that step
   is what gets synthesized. *)
let cycle43_lcl : (int, int) Lcl.t =
  {
    Lcl.name = "CycleColoring3+normalized";
    radius = 1;
    valid_at =
      (fun g ~input:_ ~output u ->
        let o = output u in
        if o < 0 || o > 2 then Error (Printf.sprintf "color %d outside {0,1,2}" o)
        else if Array.exists (fun w -> output w = o) (Graph.neighbors g u) then
          Error (Printf.sprintf "color %d shared with a neighbor" o)
        else Ok ());
  }

let cycle_coloring_spec () =
  let own_menu t f = label_menu ~regs:[ 0; 1; 2 ] ~fields:[ 0 ] ~vals:[ 0; 1; 2; 3 ] t f in
  let probe_menu =
    List.concat_map
      (fun at ->
        List.concat_map
          (fun port ->
            List.map
              (fun dst -> Ir.Probe { at; path = [| Ir.P_const port |]; dst })
              [ 1; 2 ])
          [ 1; 2 ])
      [ 0; 1 ]
    |> Array.of_list
  in
  (* Decision-tree skeleton: three own-color tests with early outputs,
     two probes, then a cascade resolving the two neighbor colors.  The
     intended witness is "keep colors 0–2; a 3-node outputs the mex of
     its neighbors' colors", but the solver is free to find any program
     the corpus and checker admit. *)
  let template =
    {
      Encode.t_name = "synth-cycle-coloring";
      n_regs = 3;
      obs_arity = 1;
      n_consts = 3;
      slots =
        [|
          own_menu 1 2;
          (* 0 *)
          outs 3;
          (* 1 *)
          own_menu 3 4;
          (* 2 *)
          outs 3;
          (* 3 *)
          own_menu 5 6;
          (* 4 *)
          outs 3;
          (* 5 *)
          probe_menu;
          (* 6 *)
          probe_menu;
          (* 7 *)
          own_menu 9 14;
          (* 8 *)
          own_menu 10 11;
          (* 9 *)
          outs 3;
          (* 10 *)
          own_menu 12 13;
          (* 11 *)
          outs 3;
          (* 12 *)
          outs 3;
          (* 13 *)
          own_menu 15 20;
          (* 14 *)
          own_menu 16 17;
          (* 15 *)
          outs 3;
          (* 16 *)
          own_menu 18 19;
          (* 17 *)
          outs 3;
          (* 18 *)
          outs 3;
          (* 19 *)
          own_menu 21 22;
          (* 20 *)
          outs 3;
          (* 21 *)
          own_menu 23 24;
          (* 22 *)
          outs 3;
          (* 23 *)
          outs 3;
          (* 24 *)
        |];
    }
  in
  let crafted label colors =
    (label, Builder.cycle (Array.length colors), fun v -> colors.(v))
  in
  (* The corpus must be rich enough that no volume-2 program survives.
     Every volume-2 behavior is a rule "probe the p(own)-neighbor,
     output f(own, seen)"; a rule survives a cycle family iff f is a
     proper 3-coloring of the conflict graph the family induces on the
     twelve (own, seen) pairs.  The seven cycles below were found by a
     grow-then-prune search so that for {e all sixteen} direction maps
     [p] that conflict graph is non-3-colorable — so CEGIS refutes
     every volume-2 candidate and the budget-2 CNF goes UNSAT (the
     shipped template can only express constant [p], masks 0 and 15;
     the corpus over-covers on purpose).  The first cycle additionally
     exercises the color-3-heavy pattern whose volume-3 witness is the
     mex rule. *)
  let instances =
    [|
      crafted "cycle-6-mex" [| 0; 3; 1; 3; 2; 3 |];
      crafted "cycle-6-r0" [| 2; 3; 1; 0; 3; 1 |];
      crafted "cycle-5-r1" [| 1; 2; 0; 2; 3 |];
      crafted "cycle-5-r2" [| 3; 2; 1; 2; 0 |];
      crafted "cycle-5-r3" [| 2; 1; 0; 3; 1 |];
      crafted "cycle-5-r4" [| 1; 3; 2; 0; 3 |];
      crafted "cycle-6-r5" [| 1; 0; 2; 3; 2; 0 |];
      crafted "cycle-5-r6" [| 3; 2; 0; 3; 2 |];
    |]
  in
  {
    s_name = "cycle-coloring";
    s_registry = "CycleColoring3";
    s_family = "cycle";
    s_radius = 1;
    s_volume = 3;
    (* Budget 2 is also UNSAT on this corpus (the refutation above), but
       that proof costs the solver ~10^5 conflicts — minutes on one core
       — so the per-check probe pins the instant certified rung instead;
       [volcomp synth --problem cycle-coloring] still descends through
       the budget-2 refutation.  See EXPERIMENTS.md. *)
    s_unsat_volume = 1;
    s_bound = None;
    s_universe =
      Encode.U
        {
          u_name = "cycle-coloring";
          lcl = cycle43_lcl;
          consts = [| 0; 1; 2 |];
          obs = (fun color f -> if f = 0 then color else 0);
          instances;
        };
    s_template = template;
  }

(* --- leaf coloring ----------------------------------------------------------- *)

let leaf_coloring_spec () =
  let br_menu t f = label_menu ~regs:[ 0; 1 ] ~fields:[ 0; 1; 2; 3 ] ~vals:[ 0; 1 ] t f in
  let probe_menu =
    List.concat_map
      (fun at ->
        List.map (fun sel -> Ir.Probe { at; path = [| sel |]; dst = 1 })
          [
            Ir.P_field 0;
            Ir.P_field 1;
            Ir.P_field 2;
            Ir.P_const 1;
            Ir.P_const 2;
            Ir.P_const 3;
          ])
      [ 0; 1 ]
    |> Array.of_list
  in
  (* Three rounds of "if the walker sits on a leaf, report its color,
     else descend"; the corpus is the Proposition 3.12 certificate
     family, where any correct program must carry the root's walker all
     the way to a leaf. *)
  let template =
    {
      Encode.t_name = "synth-leaf-coloring";
      n_regs = 2;
      obs_arity = 4;
      n_consts = 2;
      slots =
        [|
          br_menu 1 4;
          (* 0 *)
          br_menu 2 3;
          (* 1 *)
          outs 2;
          (* 2 *)
          outs 2;
          (* 3 *)
          probe_menu;
          (* 4 *)
          br_menu 6 9;
          (* 5 *)
          br_menu 7 8;
          (* 6 *)
          outs 2;
          (* 7 *)
          outs 2;
          (* 8 *)
          probe_menu;
          (* 9 *)
          br_menu 11 14;
          (* 10 *)
          br_menu 12 13;
          (* 11 *)
          outs 2;
          (* 12 *)
          outs 2;
          (* 13 *)
          probe_menu;
          (* 14 *)
          br_menu 16 17;
          (* 15 *)
          outs 2;
          (* 16 *)
          outs 2;
          (* 17 *)
        |];
    }
  in
  let hard color label =
    let inst = LC.hard_distance_instance ~depth:3 ~leaf_color:color in
    (label, inst.LC.graph, LC.input inst)
  in
  let instances = [| hard TL.Red "hard-red-15"; hard TL.Blue "hard-blue-15" |] in
  {
    s_name = "leaf-coloring";
    s_registry = "LeafColoring";
    s_family = "tree";
    s_radius = 3;
    s_volume = 4;
    (* Budget 3 is the rung directly below the witness and is also UNSAT
       (see EXPERIMENTS.md), but its ~1.9 * 10^4-clause proof takes the
       quadratic DRUP replay minutes to certify, so the per-check probe
       pins budget 2 — certified in under a second and still strictly
       below the Proposition 3.13 bound of 5.  The @synth-smoke rule
       checks the budget-3 refutation itself (uncertified). *)
    s_unsat_volume = 2;
    s_bound = Some 5;
    s_universe =
      Encode.U
        {
          u_name = "leaf-coloring";
          lcl = LC.problem;
          consts = [| TL.Red; TL.Blue |];
          obs = Library.tree_obs;
          instances;
        };
    s_template = template;
  }

(* --- registry ---------------------------------------------------------------- *)

let specs () = [ degree_parity_spec (); cycle_coloring_spec (); leaf_coloring_spec () ]

let find name =
  let lc = String.lowercase_ascii name in
  List.find_opt
    (fun s -> String.lowercase_ascii s.s_name = lc || String.lowercase_ascii s.s_registry = lc)
    (specs ())

let specs_for ~family =
  let lc = String.lowercase_ascii family in
  List.filter (fun s -> String.lowercase_ascii s.s_family = lc) (specs ())

(* --- running ----------------------------------------------------------------- *)

type verdict = {
  v_problem : string;
  v_volume : int;
  v_radius : int;
  v_sat : bool;
  v_report : Encode.report;
}

let run ?certify ?dimacs_out spec ~volume =
  match
    Encode.synthesize ?certify ?dimacs_out spec.s_universe ~template:spec.s_template
      ~volume ~radius:spec.s_radius
  with
  | Error e -> Error (Printf.sprintf "%s at volume %d: %s" spec.s_name volume e)
  | Ok report ->
      Ok
        {
          v_problem = spec.s_name;
          v_volume = volume;
          v_radius = spec.s_radius;
          v_sat = (match report.Encode.outcome with Synthesized _ -> true | _ -> false);
          v_report = report;
        }

let ladder ?certify spec =
  let rec go volume acc =
    match run ?certify spec ~volume with
    | Error e -> Error e
    | Ok v ->
        if v.v_sat && volume > 0 then go (volume - 1) (v :: acc)
        else Ok (List.rev (v :: acc))
  in
  go spec.s_volume []

(* --- rendering --------------------------------------------------------------- *)

let verdict_json v =
  let r = v.v_report in
  let st = r.Encode.sat_stats in
  Json.Obj
    [
      ("problem", Json.String v.v_problem);
      ("volume", Json.Int v.v_volume);
      ("radius", Json.Int v.v_radius);
      ("sat", Json.Bool v.v_sat);
      ("cegis_iters", Json.Int r.Encode.cegis_iters);
      ("instances_encoded", Json.Int r.Encode.instances_encoded);
      ("vars", Json.Int r.Encode.n_vars);
      ("clauses", Json.Int r.Encode.n_clauses);
      ("decisions", Json.Int st.Sat.decisions);
      ("conflicts", Json.Int st.Sat.conflicts);
      ("propagations", Json.Int st.Sat.propagations);
      ("learned", Json.Int st.Sat.learned);
      ("restarts", Json.Int st.Sat.restarts);
      ( "certified",
        match r.Encode.certified with None -> Json.Null | Some b -> Json.Bool b );
      ("wall_s", Json.Float r.Encode.wall_s);
      ( "program",
        match r.Encode.outcome with
        | Encode.Synthesized p -> Ir.program_to_json p
        | Encode.Unsat_at_budget -> Json.Null );
    ]

let table_json vs = Json.Obj [ ("verdicts", Json.List (List.map verdict_json vs)) ]

let pp_verdict ppf v =
  let r = v.v_report in
  Format.fprintf ppf "%-16s vol<=%d dist<=%d  %s  (cegis %d, conflicts %d%s, %.2fs)"
    v.v_problem v.v_volume v.v_radius
    (if v.v_sat then "SAT" else "UNSAT")
    r.Encode.cegis_iters r.Encode.sat_stats.Sat.conflicts
    (match r.Encode.certified with
    | Some true -> ", certified"
    | Some false -> ", CERTIFICATION FAILED"
    | None -> "")
    r.Encode.wall_s

(* --- oracle probe 11 ---------------------------------------------------------- *)

let probe_one spec =
  let ( let* ) = Result.bind in
  let* sat_v = run spec ~volume:spec.s_volume in
  let* () =
    if sat_v.v_sat then Ok ()
    else
      Error
        (Printf.sprintf "synth: %s expected SAT at volume %d" spec.s_name spec.s_volume)
  in
  let* program =
    match sat_v.v_report.Encode.outcome with
    | Encode.Synthesized p -> Ok p
    | Encode.Unsat_at_budget -> Error "synth: SAT verdict without a witness"
  in
  (* distrust the loop's own bookkeeping: re-validate and re-run *)
  let* () = Encode.recheck spec.s_universe program in
  let* unsat_v = run ~certify:true spec ~volume:spec.s_unsat_volume in
  let* () =
    if not unsat_v.v_sat then Ok ()
    else
      Error
        (Printf.sprintf "synth: %s expected UNSAT at volume %d" spec.s_name
           spec.s_unsat_volume)
  in
  let* () =
    if spec.s_unsat_volume < 1 then Ok () (* VOL >= 1 axiom short-circuit: no proof log *)
    else if unsat_v.v_report.Encode.certified = Some true then Ok ()
    else Error (Printf.sprintf "synth: %s UNSAT proof failed DRUP replay" spec.s_name)
  in
  match spec.s_bound with
  | None -> Ok ()
  | Some bound -> (
      let* () =
        if spec.s_unsat_volume < bound then Ok ()
        else Error "synth: UNSAT budget not below the claimed adversary bound"
      in
      (* the bound is not a constant in a table — re-derive it live *)
      match Volcomp.Adversary_leaf.duel ~claimed_n:15 LC.solve_distance with
      | Volcomp.Adversary_leaf.Survived { volume } ->
          if volume >= bound then Ok ()
          else
            Error
              (Printf.sprintf
                 "synth: adversary conceded at volume %d, below the claimed bound %d"
                 volume bound)
      | Volcomp.Adversary_leaf.Fooled _ ->
          Error "synth: adversary fooled the reference solver")

let oracle_probe ~registry_name =
  match find registry_name with
  | None -> None
  | Some spec -> Some (probe_one spec)
