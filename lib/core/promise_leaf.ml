module TL = Vc_graph.Tree_labels
module Graph = Vc_graph.Graph
module Probe = Vc_model.Probe
module Lcl = Vc_lcl.Lcl
module LC = Leaf_coloring

let promise_instance ~n ~leaf_color ~seed =
  let inst = LC.random_instance ~n ~seed in
  let g = inst.LC.graph in
  Graph.iter_nodes g (fun v ->
      match TL.status g inst.LC.labels v with
      | TL.Leaf | TL.Inconsistent -> inst.LC.colors.(v) <- leaf_color
      | TL.Internal -> ());
  inst

let satisfies_promise inst =
  let g = inst.LC.graph in
  let colors =
    Graph.fold_nodes g ~init:[] ~f:(fun acc v ->
        match TL.status g inst.LC.labels v with
        | TL.Leaf -> inst.LC.colors.(v) :: acc
        | TL.Internal | TL.Inconsistent -> acc)
  in
  match colors with
  | [] -> true
  | c :: rest -> List.for_all (TL.equal_color c) rest

let solve_secret_walk =
  Lcl.solver ~name:"secret-randomness downward walk" ~randomized:true (fun ctx ->
      let v0 = Probe.origin ctx in
      let n = Probe.n ctx in
      let cap = (4 * n) + 16 in
      let rec walk v steps =
        if steps > cap then (Probe.input ctx v0).LC.color
        else
          match Probe_tree.status ~pointers:LC.pointers ctx v with
          | TL.Leaf | TL.Inconsistent -> (Probe.input ctx v).LC.color
          | TL.Internal -> (
              match Probe_tree.children ~pointers:LC.pointers ctx v with
              | None -> (Probe.input ctx v).LC.color
              | Some (lc, rc) ->
                  (* steered by the origin's own sequential bits only *)
                  walk (if Probe.rand_bit ctx v0 then rc else lc) (steps + 1))
      in
      walk v0 0)

let solvers = [ solve_secret_walk ]
