type t = {
  gen : Splitmix.t;
  mutable bits : Bytes.t; (* memoized bits, one per byte for simplicity *)
  mutable materialized : int; (* number of memoized bits *)
  mutable cursor : int;
}

let m_bits_materialized = Vc_obs.Metrics.counter "rng.bits_materialized"

let create gen = { gen; bits = Bytes.create 16; materialized = 0; cursor = 0 }

let of_seed s = create (Splitmix.create s)

let ensure s i =
  if i >= Bytes.length s.bits then begin
    let len = max (2 * Bytes.length s.bits) (i + 1) in
    let fresh = Bytes.create len in
    Bytes.blit s.bits 0 fresh 0 s.materialized;
    s.bits <- fresh
  end;
  if s.materialized <= i then begin
    Vc_obs.Metrics.add m_bits_materialized (i + 1 - s.materialized);
    while s.materialized <= i do
      let b = if Splitmix.bool s.gen then '\001' else '\000' in
      Bytes.set s.bits s.materialized b;
      s.materialized <- s.materialized + 1
    done
  end

let bit s i =
  if i < 0 then invalid_arg "Stream.bit: negative index";
  ensure s i;
  Bytes.get s.bits i = '\001'

let next_bit s =
  let b = bit s s.cursor in
  s.cursor <- s.cursor + 1;
  b

let reset_cursor s = s.cursor <- 0

let bits_consumed s = s.materialized
