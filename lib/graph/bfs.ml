(* Full BFS from [v] into caller-provided scratch: [dist] must be filled
   with [max_int] except [dist.(v) = 0], and [queue] must hold [v] at
   index 0.  Uses the allocation-free neighbor iterator and a flat array
   queue — every node enters the queue at most once. *)
let m_nodes_expanded = Vc_obs.Metrics.counter "bfs.nodes_expanded"

let bfs_into g v dist queue =
  dist.(v) <- 0;
  queue.(0) <- v;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let u = queue.(!head) in
    incr head;
    let d = dist.(u) + 1 in
    Graph.iter_neighbors g u (fun w ->
        if dist.(w) = max_int then begin
          dist.(w) <- d;
          queue.(!tail) <- w;
          incr tail
        end)
  done;
  Vc_obs.Metrics.add m_nodes_expanded !head

let distances g v =
  let count = Graph.n g in
  let dist = Array.make count max_int in
  let queue = Array.make (max count 1) 0 in
  bfs_into g v dist queue;
  dist

let distances_upto g v ~radius =
  let dist = Hashtbl.create 64 in
  Hashtbl.add dist v 0;
  let queue = Queue.create () in
  Queue.add v queue;
  let out = ref [ (v, 0) ] in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    let d = Hashtbl.find dist u in
    if d < radius then
      Graph.iter_neighbors g u (fun w ->
          if not (Hashtbl.mem dist w) then begin
            Hashtbl.add dist w (d + 1);
            out := (w, d + 1) :: !out;
            Queue.add w queue
          end)
  done;
  List.rev !out

let ball g v ~radius = List.map fst (distances_upto g v ~radius)

let dist g u v =
  let d = (distances g u).(v) in
  if d = max_int then None else Some d

let eccentricity g v =
  Array.fold_left (fun acc d -> if d = max_int then acc else max acc d) 0 (distances g v)

let diameter g =
  let count = Graph.n g in
  if count = 0 then 0
  else begin
    (* One dist array and one queue, reset and reused across all sources. *)
    let dist = Array.make count max_int in
    let queue = Array.make count 0 in
    let best = ref 0 in
    for v = 0 to count - 1 do
      Array.fill dist 0 count max_int;
      bfs_into g v dist queue;
      Array.iter (fun d -> if d <> max_int && d > !best then best := d) dist
    done;
    !best
  end
