(* Tests for the sinkless-orientation playground (paper Question 7.3). *)

module Graph = Vc_graph.Graph
module Probe = Vc_model.Probe
module Lcl = Vc_lcl.Lcl
module SO = Volcomp.Sinkless
module Randomness = Vc_rng.Randomness

let solve_all ?randomness g (solver : (unit, SO.output) Lcl.solver) =
  let world = SO.world g in
  Array.init (Graph.n g) (fun v ->
      match (Probe.run ~world ?randomness ~origin:v solver.Lcl.solve).Probe.output with
      | Some o -> o
      | None -> Alcotest.fail "solver aborted")

let is_valid g out =
  Lcl.is_valid SO.problem g ~input:(fun _ -> ()) ~output:(fun v -> out.(v))

let test_random_cubic_degrees () =
  List.iter
    (fun n ->
      let g = SO.random_cubic ~n ~seed:(Int64.of_int n) in
      Alcotest.(check int) "n nodes" n (Graph.n g);
      Alcotest.(check bool) "connected" true (Graph.is_connected g);
      Graph.iter_nodes g (fun v ->
          Alcotest.(check bool) "degree 3 or 4" true
            (Graph.degree g v = 3 || Graph.degree g v = 4)))
    [ 10; 11; 40 ]

let test_global_solver_valid () =
  List.iter
    (fun (n, seed) ->
      let g = SO.random_cubic ~n ~seed in
      let out = solve_all g SO.solve_global in
      Alcotest.(check bool) (Printf.sprintf "valid on n=%d" n) true (is_valid g out))
    [ (10, 1L); (23, 2L); (60, 3L); (101, 4L) ]

let test_global_solver_linear_volume () =
  let g = SO.random_cubic ~n:60 ~seed:5L in
  let world = SO.world g in
  let r = Probe.run ~world ~origin:0 SO.solve_global.Lcl.solve in
  Alcotest.(check int) "explores everything" 60 r.Probe.volume

let test_checker_rejects_sink () =
  let g = SO.random_cubic ~n:10 ~seed:6L in
  let out = solve_all g SO.solve_global in
  let out = Array.copy out in
  (* flipping all of node 0's ports to Incoming breaks agreement and/or
     creates a sink *)
  out.(0) <- Array.map (fun _ -> SO.Incoming) out.(0);
  Alcotest.(check bool) "rejected" false (is_valid g out)

let test_one_round_random_fails_at_scale () =
  (* With ~n/2^4 expected sinks, a 200-node instance virtually always
     has one; scan a few seeds and require at least one failure, and
     also that failures are local sinks rather than edge disagreements
     (agreement is guaranteed by construction). *)
  let g = SO.random_cubic ~n:200 ~seed:7L in
  let failures = ref 0 in
  for s = 1 to 5 do
    let randomness = Randomness.create ~seed:(Int64.of_int s) ~n:(Graph.n g) () in
    let out = solve_all ~randomness g SO.solve_one_round_random in
    (* edge agreement must hold even when invalid *)
    Graph.iter_nodes g (fun v ->
        Array.iteri
          (fun i d ->
            let w = Graph.neighbor g v (i + 1) in
            match Graph.port_to g w v with
            | Some q ->
                Alcotest.(check bool) "edge agreement" true
                  (match (d, out.(w).(q - 1)) with
                  | SO.Outgoing, SO.Incoming | SO.Incoming, SO.Outgoing -> true
                  | (SO.Outgoing | SO.Incoming), _ -> false)
            | None -> Alcotest.fail "malformed")
          out.(v));
    if not (is_valid g out) then incr failures
  done;
  Alcotest.(check bool) "uncoordinated orientation sinks somewhere" true (!failures > 0)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let test_dot_export_renders () =
  let g = SO.random_cubic ~n:10 ~seed:8L in
  let dot = Vc_graph.Dot.to_string ~name:"so" g in
  Alcotest.(check bool) "mentions every node" true
    (List.for_all (fun v -> contains dot (Printf.sprintf "n%d " v)) (Graph.nodes g));
  Alcotest.(check bool) "has edges" true (contains dot "--")

let suites =
  [
    ( "sinkless",
      [
        Alcotest.test_case "random cubic degrees" `Quick test_random_cubic_degrees;
        Alcotest.test_case "global solver valid" `Quick test_global_solver_valid;
        Alcotest.test_case "global solver linear volume" `Quick test_global_solver_linear_volume;
        Alcotest.test_case "checker rejects sink" `Quick test_checker_rejects_sink;
        Alcotest.test_case "one-round random fails" `Quick test_one_round_random_fails_at_scale;
        Alcotest.test_case "dot export" `Quick test_dot_export_renders;
      ] );
  ]
