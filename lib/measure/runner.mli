(** Experiment runner: execute a solver over many start nodes, collect
    DIST/VOL statistics (Definitions 2.1–2.2 take the supremum over
    start nodes), and check the assembled output with the problem's own
    local checker.

    Passing [?pool] fans the start nodes out across the pool's domains.
    Because each probe run opens its own {!Vc_model.World.session} and
    works on a domain-local {!Vc_rng.Randomness.fork}, and {!merge} is an
    exact integer monoid, the parallel path returns stats and outputs
    {e bit-identical} to the sequential path — the world merely has to
    honour the shareability contract documented in {!Vc_model.World}.
    Graph-backed worlds additionally reuse one set of domain-local BFS
    scratch arrays across the whole origin fan-out (an O(1) epoch bump
    per session, no per-origin allocation). *)

module Graph = Vc_graph.Graph
module Lcl = Vc_lcl.Lcl

type stats = {
  runs : int;
  max_volume : int;
  sum_volume : int;
  max_distance : int;
  sum_distance : int;
  max_queries : int;
  max_rand_bits : int;
  aborted : int;
}
(** All-integer cost summary of a batch of runs.  Keeping sums (not
    means) makes {!merge} exact, so merge order can never leak into
    results. *)

val empty : stats
(** The {!merge} identity. *)

val add : stats -> 'o Vc_model.Probe.result -> stats
(** Fold one probe run into the summary. *)

val merge : stats -> stats -> stats
(** Associative, commutative combination of two disjoint batches, with
    identity {!empty}; used to fold per-domain partial stats. *)

val mean_volume : stats -> float

val mean_distance : stats -> float

val pp_stats : Format.formatter -> stats -> unit

type ('i, 'o) ir_target = {
  ir_spec : ('i, 'o) Vc_ir.Ir.spec;
  ir_graph : Graph.t;
  ir_input : Graph.node -> 'i;
}
(** An IR port of the measured solver, enabling the batched fast path.
    The spec must be a faithful port (oracle probe 8's guarantee): the
    stats and outputs {!measure} returns through it are bit-identical to
    the closure path's.  The graph and input must be the ones backing
    [world], whose claimed [n] is announced to the program. *)

val measure :
  world:'i Vc_model.World.t ->
  solver:('i, 'o) Lcl.solver ->
  ?randomness:Vc_rng.Randomness.t ->
  ?budget:Vc_model.Probe.budget ->
  ?pool:Vc_exec.Pool.t ->
  ?ir:('i, 'o) ir_target ->
  origins:Graph.node list ->
  unit ->
  stats * (Graph.node * 'o) list
(** Run the solver from each origin; aborted runs contribute their cost
    but no output.  Outputs are in origin order.  With [?pool] the runs
    are distributed over the pool's domains (the world must be
    domain-shareable); a pool of width 1 takes the sequential path.

    With [?ir] (and no [?randomness] — IR programs are deterministic),
    the origins ride {!Vc_ir.Exec.run_batch} instead of per-origin
    closure interpretation: same stats and outputs, bit for bit, minus
    the per-origin dispatch cost.  The program's declared budget should
    be unlimited (as all shipped programs') so the effective budget is
    exactly [?budget], matching the closure path. *)

val solve_and_check :
  world:'i Vc_model.World.t ->
  problem:('i, 'o) Lcl.t ->
  graph:Graph.t ->
  input:(Graph.node -> 'i) ->
  solver:('i, 'o) Lcl.solver ->
  ?randomness:Vc_rng.Randomness.t ->
  ?pool:Vc_exec.Pool.t ->
  ?ir:('i, 'o) ir_target ->
  unit ->
  stats * bool
(** Run from {e every} node, assemble the full output labeling, and
    report whether it is globally valid.  [?ir] as in {!measure}. *)

val sample_origins : Graph.t -> count:int -> seed:int64 -> Graph.node list
(** Deterministic sample of [count] distinct start nodes by partial
    Fisher–Yates (all nodes when [count >= n]).
    @raise Invalid_argument if [count <= 0]. *)
