module Graph = Vc_graph.Graph
module Builder = Vc_graph.Builder
module TL = Vc_graph.Tree_labels
module Probe = Vc_model.Probe
module Lcl = Vc_lcl.Lcl
module Randomness = Vc_rng.Randomness
module LC = Volcomp.Leaf_coloring
module BT = Volcomp.Balanced_tree
module H = Volcomp.Hierarchical_thc
module Hy = Volcomp.Hybrid_thc
module HH = Volcomp.Hh_thc
module Adv = Volcomp.Adversary_leaf
module CC = Volcomp.Cycle_coloring
module Trivial = Volcomp.Trivial_lcl
module Gap = Volcomp.Gap_example
module Disjointness = Vc_commcc.Disjointness
module Comm_counter = Vc_commcc.Comm_counter
module Family = Vc_family.Family
module F4 = Vc_family.Coloring4
module FM = Vc_family.Matching
module FI = Vc_family.Mis
module SO = Volcomp.Sinkless

type measurement = {
  quantity : string;
  paper_claim : string;
  expected : Fit.model list;
  points : (int * float) list;
}

let fitted m = fst (Fit.best_fit m.points)

let agrees m = List.exists (Fit.equal_model (fitted m)) m.expected

type report = {
  title : string;
  measurements : measurement list;
  notes : string list;
}

let pp_measurement ppf m =
  let f = Fmt.str "%a" Fit.pp_model (fitted m) in
  Fmt.pf ppf "@[<h>%-8s paper %-18s fitted %-16s %s  points:%a@]" m.quantity m.paper_claim f
    (if agrees m then "[OK]" else "[MISMATCH]")
    Fmt.(list ~sep:sp (pair ~sep:(any ":") int (float_dfrac 0)))
    m.points

let pp_report ppf r =
  Fmt.pf ppf "@[<v>== %s ==@,%a" r.title Fmt.(list ~sep:cut pp_measurement) r.measurements;
  List.iter (fun n -> Fmt.pf ppf "@,   note: %s" n) r.notes;
  Fmt.pf ppf "@]@."

let all_agree r = List.for_all agrees r.measurements

(* --- measurement helpers ------------------------------------------------- *)

(* Ladder selection.  [quick] is the CI profile.  The standard profile
   gained two rungs per ladder when world sessions went lazy (a probe
   run now costs Θ(ball·Δ) instead of Θ(n), so instance construction —
   not probing — is the dominant cost); [deep] extends each ladder
   further still for long calibration runs. *)
let ladder ~quick ~deep ~quick_rungs ~std ~deep_rungs =
  if quick then quick_rungs else if deep then std @ deep_rungs else std

let origins_for g ~extra =
  extra @ Runner.sample_origins g ~count:24 ~seed:99L

let max_stat stats pick = float_of_int (pick stats)

let measure_max ~world ~solver ?randomness ?pool ?ir ~origins () =
  let stats, _ = Runner.measure ~world ~solver ?randomness ?pool ?ir ~origins () in
  stats

(* Ladders whose solver has an IR port ride the batched executor —
   probe 8 keeps the stats bit-identical, so the fitted curves cannot
   move; only the wall-clock does. *)
let ir_target spec graph input =
  { Runner.ir_spec = spec; ir_graph = graph; ir_input = input }

(* Ladder rows are independent; with a pool they run on separate domains
   (and each row's origin fan-out may itself use the pool — nested maps
   are safe and deterministic). *)
let pmap pool f xs =
  match pool with
  | Some p when Vc_exec.Pool.domains p > 1 -> Vc_exec.Pool.map p f xs
  | Some _ | None -> List.map f xs

(* --- Table 1 row 1: LeafColoring ------------------------------------------ *)

let table1_leafcoloring ?pool ?(deep = false) ~quick () =
  let depths =
    ladder ~quick ~deep ~quick_rungs:[ 6; 8; 10 ]
      ~std:[ 7; 9; 11; 13; 15; 17 ]
      ~deep_rungs:[ 19; 21 ]
  in
  let per_depth d =
    let inst = LC.hard_distance_instance ~depth:d ~leaf_color:TL.Blue in
    let g = inst.LC.graph in
    let n = Graph.n g in
    let world = LC.world inst in
    let origins = origins_for g ~extra:[ 0 ] in
    let det =
      measure_max ~world ~solver:LC.solve_distance ?pool
        ~ir:(ir_target Vc_ir.Library.leaf_coloring g (LC.input inst))
        ~origins ()
    in
    let rand = Randomness.create ~seed:(Int64.of_int d) ~n () in
    let rw = measure_max ~world ~solver:LC.solve_random_walk ~randomness:rand ?pool ~origins () in
    let adv_vol =
      match Adv.duel ~claimed_n:n LC.solve_distance with
      | Adv.Survived { volume } -> float_of_int volume
      | Adv.Fooled _ -> 0.0
    in
    (n, det, rw, adv_vol)
  in
  let rows = pmap pool per_depth depths in
  {
    title = "Table 1, row LeafColoring (Thm 3.6)";
    measurements =
      [
        {
          quantity = "R-DIST";
          paper_claim = "Theta(log n)";
          expected = [ Fit.Log ];
          points = List.map (fun (n, _, rw, _) -> (n, max_stat rw (fun s -> s.Runner.max_distance))) rows;
        };
        {
          quantity = "D-DIST";
          paper_claim = "Theta(log n)";
          expected = [ Fit.Log ];
          points = List.map (fun (n, det, _, _) -> (n, max_stat det (fun s -> s.Runner.max_distance))) rows;
        };
        {
          quantity = "R-VOL";
          paper_claim = "Theta(log n)";
          expected = [ Fit.Log ];
          points = List.map (fun (n, _, rw, _) -> (n, max_stat rw (fun s -> s.Runner.max_volume))) rows;
        };
        {
          quantity = "D-VOL";
          paper_claim = "Theta(n)";
          expected = [ Fit.Linear ];
          points = List.map (fun (n, _, _, adv) -> (n, adv)) rows;
        };
      ];
    notes =
      [
        "D-VOL series: volume forced out of the honest deterministic solver by the \
         interactive adversary of Prop 3.13 before its n/3-query budget aborts it.";
      ];
  }

(* --- Table 1 row 2: BalancedTree ------------------------------------------- *)

let table1_balancedtree ?pool ?(deep = false) ~quick () =
  let sizes =
    ladder ~quick ~deep ~quick_rungs:[ 16; 64; 256 ]
      ~std:[ 16; 64; 256; 1024; 4096; 16384 ]
      ~deep_rungs:[ 65536 ]
  in
  let per_size sz =
    let disj = Disjointness.random_promise ~n:sz ~intersecting:false ~seed:(Int64.of_int sz) in
    let inst = BT.embed_disjointness disj in
    let g = inst.BT.graph in
    let n = Graph.n g in
    let world = BT.world inst in
    let origins = origins_for g ~extra:[ 0 ] in
    let det = measure_max ~world ~solver:BT.solve_distance ?pool ~origins () in
    let counter = Comm_counter.create () in
    let cw = BT.comm_world inst ~counter in
    (* [cw] counts communication through shared state: sequential only. *)
    let root_run = Probe.run ~world:cw ~origin:0 BT.solve_distance.Lcl.solve in
    (n, det, root_run, Comm_counter.bits counter)
  in
  let rows = pmap pool per_size sizes in
  {
    title = "Table 1, row BalancedTree (Thm 4.5)";
    measurements =
      [
        {
          quantity = "R-DIST";
          paper_claim = "Theta(log n)";
          expected = [ Fit.Log ];
          points = List.map (fun (n, det, _, _) -> (n, max_stat det (fun s -> s.Runner.max_distance))) rows;
        };
        {
          quantity = "D-DIST";
          paper_claim = "Theta(log n)";
          expected = [ Fit.Log ];
          points = List.map (fun (n, det, _, _) -> (n, max_stat det (fun s -> s.Runner.max_distance))) rows;
        };
        {
          quantity = "R-VOL";
          paper_claim = "Theta(n)";
          expected = [ Fit.Linear ];
          points =
            (* communication witness: bits/2 queries are forced by the
               disjointness embedding (Thm 2.9 + Prop 4.9), randomized
               or not *)
            List.map (fun (n, _, _, bits) -> (n, float_of_int (bits / 2))) rows;
        };
        {
          quantity = "D-VOL";
          paper_claim = "Theta(n)";
          expected = [ Fit.Linear ];
          points = List.map (fun (n, _, run, _) -> (n, float_of_int run.Probe.volume)) rows;
        };
      ];
    notes =
      [
        "R-VOL series is the query count certified by the Alice/Bob bit-exchange \
         accountant on disjoint instances (a lower-bound witness valid for randomized \
         algorithms too); D-VOL is the root run's measured volume.";
      ];
  }

(* --- Table 1 row 3: Hierarchical-THC(k) ------------------------------------- *)

let table1_hierarchical_thc ?pool ?(deep = false) ~quick ~k () =
  let targets =
    ladder ~quick ~deep
      ~quick_rungs:[ 2_000; 8_000; 32_000 ]
      ~std:[ 4_000; 16_000; 64_000; 256_000; 1_024_000; 4_096_000 ]
      ~deep_rungs:[ 16_384_000 ]
  in
  let per_target t =
    let inst, hot = H.hard_instance ~k ~target_n:t ~seed:(Int64.of_int t) in
    let g = H.graph inst in
    let n = Graph.n g in
    let world = H.world inst in
    let det = Probe.run ~world ~origin:hot (H.solve_deterministic ~k).Lcl.solve in
    (* for k >= 3, n^{1/k} is so small at feasible sizes that the
       way-point rate saturates; a smaller c keeps p in its asymptotic
       regime (the validity/volume trade-off is swept by the ablation) *)
    let c = if k >= 3 then 0.75 else 1.5 in
    (* the cost of a randomized algorithm is its high-probability cost:
       take the worst of a few seeds *)
    let way_runs =
      List.map
        (fun s ->
          let rand = Randomness.create ~seed:(Int64.of_int ((t * 7) + s)) ~n () in
          Probe.run ~world ~randomness:rand ~origin:hot ((H.solve_waypoint ~k ~c ()).Lcl.solve))
        [ 1; 2; 3 ]
    in
    let way =
      List.fold_left
        (fun acc r ->
          {
            acc with
            Probe.volume = max acc.Probe.volume r.Probe.volume;
            distance = max acc.Probe.distance r.Probe.distance;
          })
        (List.hd way_runs) (List.tl way_runs)
    in
    (n, det, way)
  in
  let rows = pmap pool per_target targets in
  let root_models = [ Fit.Root k; (if k = 2 then Fit.Root 3 else Fit.Root (k + 1)) ] in
  {
    title = Printf.sprintf "Table 1, row Hierarchical-THC(%d) (Thm 5.9)" k;
    measurements =
      [
        {
          quantity = "R-DIST";
          paper_claim = Printf.sprintf "Theta(n^(1/%d))" k;
          expected = root_models;
          points = List.map (fun (n, _, way) -> (n, float_of_int way.Probe.distance)) rows;
        };
        {
          quantity = "D-DIST";
          paper_claim = Printf.sprintf "Theta(n^(1/%d))" k;
          expected = root_models;
          points = List.map (fun (n, det, _) -> (n, float_of_int det.Probe.distance)) rows;
        };
        {
          quantity = "R-VOL";
          paper_claim = Printf.sprintf "~Theta(n^(1/%d))" k;
          (* the suppressed log^{O(k)} n factor is comparable to n^{1/k}
             at feasible sizes, so the adjacent classes are accepted *)
          expected = [ Fit.Root k; Fit.Root (max 2 (k - 1)); Fit.Root (k + 1) ];
          points = List.map (fun (n, _, way) -> (n, float_of_int way.Probe.volume)) rows;
        };
        {
          quantity = "D-VOL";
          paper_claim = "~Theta(n)";
          expected = [ Fit.Linear; Fit.Root 2 ];
          points = List.map (fun (n, det, _) -> (n, float_of_int det.Probe.volume)) rows;
        };
      ];
    notes =
      [
        "Measured from the middle of the run of unsolvable subtrees (the worst start \
         node); ~Theta rows accept the adjacent class because the suppressed \
         log^{O(k)} n factor rivals n^{1/k} at feasible sizes.";
        (let det_total = List.fold_left (fun acc (_, d, _) -> acc + d.Probe.volume) 0 rows in
         let way_total = List.fold_left (fun acc (_, _, w) -> acc + w.Probe.volume) 0 rows in
         Printf.sprintf
           "deterministic/randomized volume ratio across the ladder: %.1fx (grows with n)"
           (float_of_int det_total /. float_of_int (max 1 way_total)));
      ];
  }

(* --- Table 1 row 4: Hybrid-THC(k) -------------------------------------------- *)

let table1_hybrid_thc ?pool ?(deep = false) ~quick () =
  let k = 2 in
  let targets =
    ladder ~quick ~deep
      ~quick_rungs:[ 2_000; 8_000; 32_000 ]
      ~std:[ 4_000; 16_000; 64_000; 256_000; 1_024_000; 4_096_000 ]
      ~deep_rungs:[ 16_384_000 ]
  in
  let per_target t =
    let inst, hot = Hy.hard_instance ~k ~target_n:t ~seed:(Int64.of_int t) in
    let n = Graph.n inst.Hy.graph in
    let world = Hy.world inst in
    let dist_run = Probe.run ~world ~origin:hot (Hy.solve_distance ~k).Lcl.solve in
    let det = Probe.run ~world ~origin:hot (Hy.solve_volume_deterministic ~k).Lcl.solve in
    let rand = Randomness.create ~seed:(Int64.of_int (t + 1)) ~n () in
    let way =
      Probe.run ~world ~randomness:rand ~origin:hot
        ((Hy.solve_volume_waypoint ~k ~c:1.5 ()).Lcl.solve)
    in
    (* the distance solver's DIST is dominated by the BalancedTree
       below a level-1 start; sample a few level-1 nodes too *)
    let bt_starts =
      List.filter (fun v -> (Hy.input inst v).Hy.level = 1)
        (Runner.sample_origins inst.Hy.graph ~count:16 ~seed:3L)
    in
    (* DIST is a sup over start nodes, witnessed at the root of the
       deepest BalancedTree component: the root's output must name a
       leaf pair, so the distance solver descends the whole depth
       (~ log of the component size — the Theta(log n) term of
       Thm 6.3).  A small random sample misses that one component at
       large n, so locate it by climbing every level-1 node's parent
       chain. *)
    let deepest_bt_root =
      let g = inst.Hy.graph in
      let rec climb u d =
        let inp = Hy.input inst u in
        if inp.Hy.level <> 1 || inp.Hy.parent = TL.bot then (u, d)
        else
          let p = Graph.neighbor g u inp.Hy.parent in
          if (Hy.input inst p).Hy.level <> 1 then (u, d) else climb p (d + 1)
      in
      let best = ref hot in
      let best_d = ref (-1) in
      Graph.iter_nodes g (fun v ->
          if (Hy.input inst v).Hy.level = 1 then begin
            let root, d = climb v 0 in
            if d > !best_d then begin
              best_d := d;
              best := root
            end
          end);
      !best
    in
    let dist_stats =
      measure_max ~world ~solver:(Hy.solve_distance ~k) ?pool
        ~origins:(hot :: deepest_bt_root :: bt_starts) ()
    in
    ignore dist_run;
    (n, dist_stats, det, way)
  in
  let rows = pmap pool per_target targets in
  {
    title = "Table 1, row Hybrid-THC(2) (Thm 6.3)";
    measurements =
      [
        {
          quantity = "R-DIST";
          paper_claim = "Theta(log n)";
          expected = [ Fit.Log ];
          points = List.map (fun (n, d, _, _) -> (n, max_stat d (fun s -> s.Runner.max_distance))) rows;
        };
        {
          quantity = "D-DIST";
          paper_claim = "Theta(log n)";
          expected = [ Fit.Log ];
          points = List.map (fun (n, d, _, _) -> (n, max_stat d (fun s -> s.Runner.max_distance))) rows;
        };
        {
          quantity = "R-VOL";
          paper_claim = "~Theta(n^(1/2))";
          expected = [ Fit.Root 2; Fit.Root 3 ];
          points = List.map (fun (n, _, _, way) -> (n, float_of_int way.Probe.volume)) rows;
        };
        {
          quantity = "D-VOL";
          paper_claim = "~Theta(n)";
          expected = [ Fit.Linear; Fit.Root 2 ];
          points = List.map (fun (n, _, det, _) -> (n, float_of_int det.Probe.volume)) rows;
        };
      ];
    notes =
      [
        "Distance is logarithmic even though randomized volume is polynomial: the \
         paper's 'distance logarithmic in randomized volume' family.";
      ];
  }

(* --- Table 1 row 5: HH-THC(k, l) ---------------------------------------------- *)

let table1_hh_thc ?pool ?(deep = false) ~quick () =
  let k = 2 and l = 3 in
  let targets =
    ladder ~quick ~deep
      ~quick_rungs:[ 2_000; 8_000; 32_000 ]
      ~std:[ 4_000; 16_000; 64_000; 256_000; 1_024_000; 4_096_000 ]
      ~deep_rungs:[ 16_384_000 ]
  in
  let per_target t =
    (* Complexity is a supremum over instances, and no single instance
       can carry both a full-strength deep hierarchical side and a
       full-strength hybrid side (each alone weighs ~n).  Witness the
       distance measures on a mixed instance whose bit-0 side is hard,
       and the volume measures on one whose bit-1 side is hard; the
       other side is a small filler in each case. *)
    let hier_a, h_hot = H.hard_instance ~k:l ~target_n:t ~seed:(Int64.of_int t) in
    let filler_hy = Hy.uniform_instance ~k ~len:4 ~bt_depth:2 ~seed:(Int64.of_int (t + 1)) in
    let inst_a = HH.mixed_instance ~hier:hier_a ~hybrid:filler_hy in
    let world_a = HH.world inst_a in
    let filler_h = H.uniform_instance ~k:l ~len:3 ~seed:(Int64.of_int (t + 2)) in
    let hybrid_b, hy_hot = Hy.hard_instance ~k ~target_n:t ~seed:(Int64.of_int (t + 3)) in
    let inst_b = HH.mixed_instance ~hier:filler_h ~hybrid:hybrid_b in
    let world_b = HH.world inst_b in
    let n_a = Graph.n inst_a.HH.graph and n_b = Graph.n inst_b.HH.graph in
    let b_hot = n_b - Graph.n hybrid_b.Hy.graph + hy_hot in
    let dist_run = Probe.run ~world:world_a ~origin:h_hot (HH.solve_distance ~k ~l).Lcl.solve in
    let det_vol =
      Probe.run ~world:world_b ~origin:b_hot (HH.solve_volume_deterministic ~k ~l).Lcl.solve
    in
    let way_vol =
      List.fold_left
        (fun acc seed ->
          let rand = Randomness.create ~seed:(Int64.of_int ((t * 11) + seed)) ~n:n_b () in
          let r =
            Probe.run ~world:world_b ~randomness:rand ~origin:b_hot
              ((HH.solve_volume_waypoint ~k ~l ~c:1.5 ()).Lcl.solve)
          in
          max acc r.Probe.volume)
        0 [ 1; 2; 3 ]
    in
    (n_a, n_b, dist_run, det_vol, way_vol)
  in
  let rows = pmap pool per_target targets in
  {
    title = "Table 1, row HH-THC(2,3) (Thm 6.5)";
    measurements =
      [
        {
          quantity = "R-DIST";
          paper_claim = "Theta(n^(1/3))";
          expected = [ Fit.Root 3; Fit.Root 4 ];
          points = List.map (fun (n, _, d, _, _) -> (n, float_of_int d.Probe.distance)) rows;
        };
        {
          quantity = "D-DIST";
          paper_claim = "Theta(n^(1/3))";
          expected = [ Fit.Root 3; Fit.Root 4 ];
          points = List.map (fun (n, _, d, _, _) -> (n, float_of_int d.Probe.distance)) rows;
        };
        {
          quantity = "R-VOL";
          paper_claim = "~Theta(n^(1/2))";
          expected = [ Fit.Root 2; Fit.Root 3 ];
          points = List.map (fun (_, n, _, _, w) -> (n, float_of_int w)) rows;
        };
        {
          quantity = "D-VOL";
          paper_claim = "~Theta(n)";
          expected = [ Fit.Linear; Fit.Root 2 ];
          points = List.map (fun (_, n, _, dv, _) -> (n, float_of_int dv.Probe.volume)) rows;
        };
      ];
    notes =
      [ "distance witnessed on a mixed instance with a hard bit-0 side; volume on one \
         with a hard bit-1 side (complexity is a sup over instances)" ];
  }

(* --- Figures 1-2: classes A and B ---------------------------------------------- *)

let figure12_classes ?pool ?(deep = false) ~quick () =
  let sizes =
    ladder ~quick ~deep
      ~quick_rungs:[ 255; 1023; 4095 ]
      ~std:[ 255; 2047; 16383; 65535; 262143; 1048575 ]
      ~deep_rungs:[ 4194303 ]
  in
  let parity_points =
    pmap pool
      (fun n ->
        let depth = Volcomp.Probe_tree.log2_ceil (n + 1) - 1 in
        let g = Builder.complete_binary_tree ~depth in
        let stats =
          measure_max ~world:(Trivial.world g) ~solver:Trivial.solve ?pool
            ~ir:(ir_target Vc_ir.Library.degree_parity g (fun _ -> ()))
            ~origins:(Runner.sample_origins g ~count:16 ~seed:1L)
            ()
        in
        (Graph.n g, max_stat stats (fun s -> s.Runner.max_volume)))
      sizes
  in
  let cycle_sizes =
    ladder ~quick ~deep
      ~quick_rungs:[ 256; 4096; 65536 ]
      ~std:[ 256; 4096; 65536; 1048576; 4194304; 16777216 ]
      ~deep_rungs:[ 67108864 ]
  in
  let cycle_points pick =
    pmap pool
      (fun n ->
        let g = Builder.cycle n in
        let stats =
          measure_max ~world:(CC.world g) ~solver:CC.solve ?pool
            ~ir:(ir_target (Vc_ir.Library.cycle_coloring ~n) g (fun _ -> ()))
            ~origins:(Runner.sample_origins g ~count:16 ~seed:2L)
            ()
        in
        (n, max_stat stats pick))
      cycle_sizes
  in
  {
    title = "Figures 1-2: class A (DegreeParity) and class B (Cole-Vishkin 3-coloring)";
    measurements =
      [
        {
          quantity = "A:VOL";
          paper_claim = "Theta(1)";
          expected = [ Fit.Constant ];
          points = parity_points;
        };
        {
          quantity = "B:DIST";
          paper_claim = "Theta(log* n)";
          expected = [ Fit.Log_star; Fit.Constant ];
          points = cycle_points (fun s -> s.Runner.max_distance);
        };
        {
          quantity = "B:VOL";
          paper_claim = "Theta(log* n)";
          expected = [ Fit.Log_star; Fit.Constant ];
          points = cycle_points (fun s -> s.Runner.max_volume);
        };
      ];
    notes =
      [
        "Class B's volume matches its distance (Even et al. [17], paper Sec 1.2); at \
         feasible sizes log* n is nearly constant, so Theta(1) is accepted as a fit.";
      ];
  }

(* --- Figure 3: the contribution lines ------------------------------------------- *)

let figure3_lines ~quick reports =
  ignore quick;
  (* derived from already-computed reports: nothing to parallelize *)
  let line r =
    let get q =
      match List.find_opt (fun m -> m.quantity = q) r.measurements with
      | Some m -> Fmt.str "%a" Fit.pp_model (fitted m)
      | None -> "-"
    in
    Fmt.str "%-40s volume (R=%s, D=%s)  <->  distance (R=%s, D=%s)" r.title (get "R-VOL")
      (get "D-VOL") (get "R-DIST") (get "D-DIST")
  in
  {
    title = "Figure 3: volume <-> distance lines (fitted classes per problem)";
    measurements = [];
    notes = List.map line reports;
  }

(* --- Figure 8 / Prop 3.13: the adversary ------------------------------------------ *)

let figure8_adversary ?pool ?(deep = false) ~quick () =
  let sizes =
    ladder ~quick ~deep
      ~quick_rungs:[ 300; 1_200; 4_800 ]
      ~std:[ 300; 1_200; 4_800; 19_200; 76_800; 307_200 ]
      ~deep_rungs:[ 1_228_800 ]
  in
  (* each duel drives a stateful adversarial world — rows parallelize,
     the duel itself must stay on one domain *)
  let survived =
    pmap pool
      (fun n ->
        match Adv.duel ~claimed_n:n LC.solve_distance with
        | Adv.Survived { volume } -> (n, float_of_int volume)
        | Adv.Fooled _ -> (n, 0.0))
      sizes
  in
  let impatient =
    Lcl.solver ~name:"impatient" ~randomized:false (fun ctx ->
        let v0 = Probe.origin ctx in
        match Volcomp.Probe_tree.status ~pointers:LC.pointers ctx v0 with
        | TL.Leaf | TL.Inconsistent -> (Probe.input ctx v0).LC.color
        | TL.Internal -> TL.Red)
  in
  let fooled =
    List.for_all
      (fun n ->
        match Adv.duel ~claimed_n:n impatient with
        | Adv.Fooled _ -> true
        | Adv.Survived _ -> false)
      sizes
  in
  {
    title = "Prop 3.13 (Fig 8 flavor): interactive D-VOL adversary for LeafColoring";
    measurements =
      [
        {
          quantity = "D-VOL";
          paper_claim = "Omega(n)";
          expected = [ Fit.Linear ];
          points = survived;
        };
      ];
    notes =
      [
        Printf.sprintf
          "honest solver survives only by spending >= n/3 volume at every size; hasty \
           solver fooled at every size: %b"
          fooled;
      ];
  }

(* --- Example 7.6: volume vs CONGEST ------------------------------------------------ *)

let congest_gap ?pool ?(deep = false) ~quick () =
  let depth = if quick then 7 else 9 in
  let inst = Gap.make ~depth ~seed:1L in
  let n = Graph.n inst.Gap.graph in
  let bandwidths = [ 16; 32; 64; 128; 256 ] in
  let rounds =
    pmap pool
      (fun b -> (b, float_of_int (Gap.run_congest inst ~bandwidth:b).Vc_model.Congest.rounds))
      bandwidths
  in
  let vol_points =
    pmap pool
      (fun d ->
        let inst = Gap.make ~depth:d ~seed:2L in
        let leaf = Graph.n inst.Gap.graph / 2 - 1 in
        let r = Probe.run ~world:(Gap.world inst) ~origin:leaf Gap.solve.Lcl.solve in
        (Graph.n inst.Gap.graph, float_of_int r.Probe.volume))
      (ladder ~quick ~deep ~quick_rungs:[ 5; 7; 9 ]
         ~std:[ 5; 7; 9; 11; 13; 15; 17 ]
         ~deep_rungs:[ 19 ])
  in
  {
    title = Printf.sprintf "Example 7.6: volume vs CONGEST (n = %d)" n;
    measurements =
      [
        {
          quantity = "VOL";
          paper_claim = "O(log n)";
          expected = [ Fit.Log ];
          points = vol_points;
        };
      ];
    notes =
      List.map
        (fun (b, r) ->
          Printf.sprintf "CONGEST rounds at B=%3d: %5.0f  (B*rounds = %6.0f ~ n log n bits)" b r
            (float_of_int b *. r))
        rounds
      @ [ "rounds scale as ~1/B: the root edge is an Omega(n/B) bottleneck" ];
  }

(* --- Observation 7.4: BalancedTree in CONGEST ---------------------------------------- *)

let congest_balancedtree ?pool ?(deep = false) ~quick () =
  let depths =
    ladder ~quick ~deep ~quick_rungs:[ 4; 6; 8 ] ~std:[ 4; 6; 8; 10; 12; 14 ]
      ~deep_rungs:[ 16 ]
  in
  let rows =
    pmap pool
      (fun depth ->
        let inst = BT.broken_pair_instance ~depth ~break:((1 lsl (depth - 1)) - 1) in
        let n = Graph.n inst.BT.graph in
        let res = Volcomp.Balanced_tree_congest.run inst () in
        let out v =
          match res.Vc_model.Congest.outputs.(v) with
          | Some o -> o
          | None -> { BT.verdict = BT.Bal; port = 0 }
        in
        let valid = Lcl.is_valid BT.problem inst.BT.graph ~input:(BT.input inst) ~output:out in
        let vol = (Probe.run ~world:(BT.world inst) ~origin:0 BT.solve_distance.Lcl.solve).Probe.volume in
        (n, res.Vc_model.Congest.rounds, vol, valid))
      depths
  in
  {
    title = "Observation 7.4: BalancedTree solved in CONGEST";
    measurements =
      [
        {
          quantity = "ROUNDS";
          paper_claim = "O(log n)";
          expected = [ Fit.Log ];
          points = List.map (fun (n, r, _, _) -> (n, float_of_int r)) rows;
        };
        {
          quantity = "VOL";
          paper_claim = "Theta(n)";
          expected = [ Fit.Linear ];
          points = List.map (fun (n, _, v, _) -> (n, float_of_int v)) rows;
        };
      ];
    notes =
      [
        Printf.sprintf "all CONGEST outputs checker-valid: %b"
          (List.for_all (fun (_, _, _, ok) -> ok) rows);
        "the same problem costs Theta(n) volume but O(log n) CONGEST rounds with \
         O(log n)-bit messages: the Delta^Theta(T) bound of Lemma 2.5 is tight";
      ];
  }

(* --- Question 7.3 playground: graph families beyond paths and trees ----------------- *)

(* The [lib/family] marquee problems all run canonical whole-component
   solvers, so VOL is the component size exactly (Theta(n)) and DIST is
   the origin's eccentricity — the terrain, not the algorithm, decides
   how far "seeing wide" forces you to see.  On near-square tori the
   eccentricity is Theta(sqrt n); on random 4-regular graphs and shift
   expanders it is Theta(log n): the same volume buys wildly different
   distance, which is the seeing-far-vs-seeing-wide contrast of the
   title, measured on Question 7.3's playground. *)

let family_torus ?pool ?(deep = false) ~quick () =
  let sizes =
    ladder ~quick ~deep ~quick_rungs:[ 16; 36; 64 ]
      ~std:[ 36; 100; 256; 576; 1156; 2304 ]
      ~deep_rungs:[ 4624 ]
  in
  let per_size sz =
    let g = Family.torus_of_size ~size:sz ~seed:(Int64.of_int sz) in
    let n = Graph.n g in
    let origins = origins_for g ~extra:[ 0 ] in
    let col = measure_max ~world:(F4.world g) ~solver:F4.solve_torus ?pool ~origins () in
    let mat = measure_max ~world:(FM.world g) ~solver:FM.solve_greedy ?pool ~origins () in
    (n, col, mat)
  in
  let rows = pmap pool per_size sizes in
  let points proj pick = List.map (fun (n, c, m) -> (n, max_stat (proj (c, m)) pick)) rows in
  let dist s = s.Runner.max_distance and vol s = s.Runner.max_volume in
  {
    title = "Families: 2-d torus grid (seeing far: DIST Theta(sqrt n))";
    measurements =
      [
        {
          quantity = "C4:DIST";
          paper_claim = "Theta(n^(1/2))";
          expected = [ Fit.Root 2 ];
          points = points fst dist;
        };
        {
          quantity = "C4:VOL";
          paper_claim = "Theta(n)";
          expected = [ Fit.Linear ];
          points = points fst vol;
        };
        {
          quantity = "MM:DIST";
          paper_claim = "Theta(n^(1/2))";
          expected = [ Fit.Root 2 ];
          points = points snd dist;
        };
        {
          quantity = "MM:VOL";
          paper_claim = "Theta(n)";
          expected = [ Fit.Linear ];
          points = points snd vol;
        };
      ];
    notes =
      [
        "4-colouring (parity of the normal-form coordinates) and maximal matching, both \
         whole-component canonical solvers: VOL is the component size, DIST the origin's \
         eccentricity — Theta(sqrt n) on near-square even-sided tori.";
      ];
  }

let family_regular ?pool ?(deep = false) ~quick () =
  let sizes =
    ladder ~quick ~deep ~quick_rungs:[ 12; 24; 48 ]
      ~std:[ 24; 48; 96; 192; 384; 768 ]
      ~deep_rungs:[ 1536 ]
  in
  (* log n vs n^(1/4) are near-indistinguishable at feasible sizes, so
     the DIST rows accept the adjacent root classes alongside Log *)
  let log_like = [ Fit.Log; Fit.Root 4; Fit.Root 3 ] in
  let per_size sz =
    let g = Family.regular_of_size ~d:4 ~size:sz ~seed:(Int64.of_int ((sz * 3) + 1)) in
    let origins = origins_for g ~extra:[ 0 ] in
    let mis = measure_max ~world:(FI.world g) ~solver:FI.solve_greedy ?pool ~origins () in
    let so = measure_max ~world:(SO.world g) ~solver:SO.solve_global ?pool ~origins () in
    let ex = Family.expander_of_size ~size:sz ~seed:(Int64.of_int sz) in
    let ex_origins = origins_for ex ~extra:[ 0 ] in
    let emis = measure_max ~world:(FI.world ex) ~solver:FI.solve_greedy ?pool ~origins:ex_origins () in
    (Graph.n g, Graph.n ex, mis, so, emis)
  in
  let rows = pmap pool per_size sizes in
  let reg proj pick = List.map (fun (n, _, mis, so, _) -> (n, max_stat (proj (mis, so)) pick)) rows in
  let exp_pts pick = List.map (fun (_, n, _, _, e) -> (n, max_stat e pick)) rows in
  let dist s = s.Runner.max_distance and vol s = s.Runner.max_volume in
  {
    title = "Families: random 4-regular + expander (seeing wide: DIST Theta(log n), Q7.3)";
    measurements =
      [
        {
          quantity = "MIS:DIST";
          paper_claim = "Theta(log n)";
          expected = log_like;
          points = reg fst dist;
        };
        {
          quantity = "MIS:VOL";
          paper_claim = "Theta(n)";
          expected = [ Fit.Linear ];
          points = reg fst vol;
        };
        {
          quantity = "SO:DIST";
          paper_claim = "Theta(log n)";
          expected = log_like;
          points = reg snd dist;
        };
        {
          quantity = "SO:VOL";
          paper_claim = "Theta(n)";
          expected = [ Fit.Linear ];
          points = reg snd vol;
        };
        {
          quantity = "XMIS:DIST";
          paper_claim = "Theta(log n)";
          expected = log_like;
          points = exp_pts dist;
        };
        {
          quantity = "XMIS:VOL";
          paper_claim = "Theta(n)";
          expected = [ Fit.Linear ];
          points = exp_pts vol;
        };
      ];
    notes =
      [
        "SO rows are Question 7.3's sinkless orientation on random 4-regular graphs: the \
         global reference solver pays Theta(n) volume at Theta(log n) distance; whether \
         o(n) volume suffices is exactly the paper's open question.";
        "XMIS rows run MIS on the deterministic shift expander over Z_n (cycle + 2x \
         chords): logarithmic-diameter terrain without randomness in the structure.";
      ];
  }

let family_ladders ?pool ?deep ~quick () =
  [ family_torus ?pool ?deep ~quick (); family_regular ?pool ?deep ~quick () ]

(* --- ablations ----------------------------------------------------------------------- *)

let ablation_waypoint_rate ?pool ~quick () =
  let k = 2 in
  let target = if quick then 10_000 else 40_000 in
  let inst, hot = H.hard_instance ~k ~target_n:target ~seed:5L in
  let n = Graph.n (H.graph inst) in
  let world = H.world inst in
  let small_inst, _ = H.hard_instance ~k ~target_n:500 ~seed:6L in
  let cs = [ 0.25; 0.5; 1.0; 2.0; 3.0 ] in
  let notes =
    pmap pool
      (fun c ->
        let rand = Randomness.create ~seed:7L ~n () in
        let run =
          Probe.run ~world ~randomness:rand ~origin:hot ((H.solve_waypoint ~k ~c ()).Lcl.solve)
        in
        (* validity failure rate over seeds, on the small instance *)
        let failures = ref 0 in
        let trials = 5 in
        for s = 1 to trials do
          let rand =
            Randomness.create ~seed:(Int64.of_int (100 + s)) ~n:(Graph.n (H.graph small_inst)) ()
          in
          let _, valid =
            Runner.solve_and_check ~world:(H.world small_inst) ~problem:(H.problem ~k)
              ~graph:(H.graph small_inst) ~input:(H.input small_inst)
              ~solver:(H.solve_waypoint ~k ~c ()) ~randomness:rand ?pool ()
          in
          if not valid then incr failures
        done;
        Printf.sprintf "c=%.2f: hot-node volume %6d (n=%d), validity failures %d/%d" c
          run.Probe.volume n !failures trials)
      cs
  in
  {
    title = "Ablation: way-point rate constant c (p = c log n / n^(1/k))";
    measurements = [];
    notes =
      notes
      @ [ "smaller c shrinks volume but reduces the anchor density the proofs of \
           Lemmas 5.16/5.18 rely on" ];
  }

let ablation_walk_flip ~quick () =
  (* tiny 4-cycle instances: pool fan-out would cost more than the runs *)
  let trials = if quick then 40 else 200 in
  let count solver =
    let failures = ref 0 in
    for s = 1 to trials do
      let inst = LC.cycle_instance ~cycle_len:4 ~seed:(Int64.of_int s) in
      let n = Graph.n inst.LC.graph in
      let rand = Randomness.create ~seed:(Int64.of_int (1000 + s)) ~n () in
      let _, valid =
        Runner.solve_and_check ~world:(LC.world inst) ~problem:LC.problem ~graph:inst.LC.graph
          ~input:(LC.input inst) ~solver ~randomness:rand ()
      in
      if not valid then incr failures
    done;
    !failures
  in
  let with_flip = count LC.solve_random_walk in
  let without_flip = count LC.solve_random_walk_no_flip in
  {
    title = "Ablation: RWtoLeaf revisit-flip rule (Alg 1 lines 4-5)";
    measurements = [];
    notes =
      [
        Printf.sprintf "with flip:    %d/%d invalid outputs on 4-cycles" with_flip trials;
        Printf.sprintf "without flip: %d/%d invalid outputs (the walk traps itself on the \
                        directed cycle with prob 2^-4 per seed)" without_flip trials;
      ];
  }

let all ?pool ?deep ~quick () =
  let t1 =
    [
      table1_leafcoloring ?pool ?deep ~quick ();
      table1_balancedtree ?pool ?deep ~quick ();
      table1_hierarchical_thc ?pool ?deep ~quick ~k:2 ();
      table1_hierarchical_thc ?pool ?deep ~quick ~k:3 ();
      table1_hybrid_thc ?pool ?deep ~quick ();
      table1_hh_thc ?pool ?deep ~quick ();
    ]
  in
  t1
  @ [
      figure12_classes ?pool ?deep ~quick ();
      figure8_adversary ?pool ?deep ~quick ();
      congest_gap ?pool ?deep ~quick ();
      congest_balancedtree ?pool ?deep ~quick ();
    ]
  @ family_ladders ?pool ?deep ~quick ()
  @ [
      ablation_waypoint_rate ?pool ~quick ();
      ablation_walk_flip ~quick ();
      figure3_lines ~quick t1;
    ]
