(* Cross-model property tests: the probe executor against BFS ground
   truth, and the CONGEST router against the query solver on the
   Example 7.6 instances. *)

module Graph = Vc_graph.Graph
module Bfs = Vc_graph.Bfs
module Probe = Vc_model.Probe
module Ball = Vc_model.Ball
module Lcl = Vc_lcl.Lcl
module Gap = Volcomp.Gap_example
module TL = Vc_graph.Tree_labels
module Splitmix = Vc_rng.Splitmix

(* graphs come as Gen.spec values: counterexamples print as (shape, size,
   seed) and shrink to the smallest graph of the family that still fails *)
module Gen = Vc_check.Gen

let prop_probe_distance_equals_bfs =
  QCheck.Test.make
    ~name:"probe DIST accounting equals true BFS distance of the farthest visited node"
    ~count:30
    (QCheck.pair (Gen.spec ~min_size:8 ~max_size:60 ()) QCheck.int64)
    (fun (gspec, seed) ->
      let rng = Splitmix.create seed in
      let g = Gen.build gspec in
      let world = Vc_model.World.of_graph g ~input:(fun _ -> ()) in
      let origin = Splitmix.int rng ~bound:(Graph.n g) in
      let steps = 1 + Splitmix.int rng ~bound:20 in
      let r =
        Probe.run ~world ~origin (fun ctx ->
            (* random exploration: repeatedly query a random port of a
               random visited node *)
            let visited = ref [ origin ] in
            for _ = 1 to steps do
              let at = List.nth !visited (Splitmix.int rng ~bound:(List.length !visited)) in
              let port = 1 + Splitmix.int rng ~bound:(Probe.degree ctx at) in
              let u = Probe.query ctx ~at ~port in
              if not (List.mem u !visited) then visited := u :: !visited
            done;
            !visited)
      in
      match r.Probe.output with
      | None -> false
      | Some visited ->
          let dist = Bfs.distances g origin in
          let expected = List.fold_left (fun acc v -> max acc dist.(v)) 0 visited in
          r.Probe.distance = expected && r.Probe.volume = List.length visited)

let prop_ball_gather_equals_bfs_ball =
  QCheck.Test.make ~name:"ball gathering visits exactly the BFS ball" ~count:30
    (QCheck.pair (Gen.spec ~min_size:30 ~max_size:70 ()) (QCheck.int_range 3 5))
    (fun (gspec, radius) ->
      let g = Gen.build gspec in
      let world = Vc_model.World.of_graph g ~input:(fun _ -> ()) in
      let origin = Splitmix.int (Splitmix.create gspec.Gen.g_seed) ~bound:(Graph.n g) in
      let r =
        Probe.run ~world ~origin (fun ctx ->
            List.sort compare (List.map fst (Ball.gather ctx ~radius)))
      in
      let expected = List.sort compare (Bfs.ball g origin ~radius) in
      r.Probe.output = Some expected)

let prop_congest_router_matches_query_solver =
  QCheck.Test.make ~name:"Ex 7.6: CONGEST router delivers the query solver's answers"
    ~count:10
    QCheck.(pair int64 (int_range 3 6))
    (fun (seed, depth) ->
      let inst = Gap.make ~depth ~seed in
      let res = Gap.run_congest inst ~bandwidth:64 in
      let world = Gap.world inst in
      Graph.fold_nodes inst.Gap.graph ~init:true ~f:(fun acc v ->
          acc
          &&
          let q = Probe.run ~world ~origin:v Gap.solve.Lcl.solve in
          match (q.Probe.output, res.Vc_model.Congest.outputs.(v)) with
          | Some a, Some b -> a = b
          | (Some _ | None), _ -> false))

let prop_shuffled_ids_preserve_validity =
  QCheck.Test.make ~name:"identifier assignment does not affect solver validity" ~count:10
    QCheck.int64
    (fun seed ->
      (* LeafColoring validity is id-independent; re-shuffling ids and
         re-solving must stay valid *)
      let inst = Volcomp.Leaf_coloring.random_instance ~n:65 ~seed in
      let module LC = Volcomp.Leaf_coloring in
      let g' = Graph.shuffle_ids inst.LC.graph ~rng:(Splitmix.create (Int64.add seed 1L)) in
      let inst' = { inst with LC.graph = g' } in
      let world = LC.world inst' in
      let out =
        Array.init (Graph.n g') (fun v ->
            match (Probe.run ~world ~origin:v LC.solve_distance.Lcl.solve).Probe.output with
            | Some c -> c
            | None -> TL.Red)
      in
      Lcl.is_valid LC.problem g' ~input:(LC.input inst') ~output:(fun v -> out.(v)))

let suites =
  [
    ( "cross-model",
      [
        QCheck_alcotest.to_alcotest prop_probe_distance_equals_bfs;
        QCheck_alcotest.to_alcotest prop_ball_gather_equals_bfs_ball;
        QCheck_alcotest.to_alcotest prop_congest_router_matches_query_solver;
        QCheck_alcotest.to_alcotest prop_shuffled_ids_preserve_validity;
      ] );
  ]
