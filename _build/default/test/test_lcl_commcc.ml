(* Tests for the LCL framework and the communication-complexity
   substrate. *)

module Lcl = Vc_lcl.Lcl
module Graph = Vc_graph.Graph
module Builder = Vc_graph.Builder
module Disjointness = Vc_commcc.Disjointness
module Comm_counter = Vc_commcc.Comm_counter

(* A toy LCL: output must equal the input bit. *)
let echo_problem : (bool, bool) Lcl.t =
  {
    Lcl.name = "Echo";
    radius = 0;
    valid_at =
      (fun _g ~input ~output v ->
        if Bool.equal (input v) (output v) then Ok () else Error "must echo input");
  }

let test_check_collects_all_violations () =
  let g = Builder.path 5 in
  match Lcl.check echo_problem g ~input:(fun _ -> true) ~output:(fun v -> v mod 2 = 0) with
  | Ok () -> Alcotest.fail "should be invalid"
  | Error vs ->
      Alcotest.(check int) "two violations (odd nodes)" 2 (List.length vs);
      Alcotest.(check (list int)) "at nodes 1 and 3" [ 1; 3 ]
        (List.map (fun v -> v.Lcl.node) vs)

let test_is_valid_positive () =
  let g = Builder.path 5 in
  Alcotest.(check bool) "valid" true
    (Lcl.is_valid echo_problem g ~input:(fun v -> v = 0) ~output:(fun v -> v = 0))

let test_lemma_2_5_bounds () =
  let lo, hi = Lcl.volume_bounds_from_distance ~delta:3 ~distance:4 in
  Alcotest.(check int) "lower = T" 4 lo;
  Alcotest.(check int) "upper = 3^4 + 1" 82 hi;
  let _, hi = Lcl.volume_bounds_from_distance ~delta:3 ~distance:60 in
  Alcotest.(check int) "saturates" max_int hi

let test_disjointness_eval () =
  let d = Disjointness.create ~x:[| true; false; true |] ~y:[| false; true; true |] in
  Alcotest.(check bool) "intersecting" false (Disjointness.eval d);
  Alcotest.(check int) "intersection size" 1 (Disjointness.intersection_size d);
  let d2 = Disjointness.create ~x:[| true; false |] ~y:[| false; true |] in
  Alcotest.(check bool) "disjoint" true (Disjointness.eval d2)

let test_disjointness_promise () =
  List.iter
    (fun intersecting ->
      let d = Disjointness.random_promise ~n:64 ~intersecting ~seed:5L in
      let expected = if intersecting then 1 else 0 in
      Alcotest.(check int) "promise holds" expected (Disjointness.intersection_size d))
    [ true; false ]

let test_disjointness_rejects_mismatch () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Disjointness.create ~x:[| true |] ~y:[||]);
       false
     with Invalid_argument _ -> true)

let test_comm_counter () =
  let c = Comm_counter.create () in
  Comm_counter.free c;
  Comm_counter.charge c ~bits:2;
  Comm_counter.charge c ~bits:5;
  Alcotest.(check int) "queries" 3 (Comm_counter.queries c);
  Alcotest.(check int) "charged" 2 (Comm_counter.charged_queries c);
  Alcotest.(check int) "bits" 7 (Comm_counter.bits c);
  Alcotest.(check int) "max per query" 5 (Comm_counter.max_bits_per_query c);
  Alcotest.(check int) "implied bound" 20 (Comm_counter.implied_query_lower_bound c ~comm_lower_bound:100)

let suites =
  [
    ( "lcl",
      [
        Alcotest.test_case "check collects violations" `Quick test_check_collects_all_violations;
        Alcotest.test_case "is_valid" `Quick test_is_valid_positive;
        Alcotest.test_case "lemma 2.5 bounds" `Quick test_lemma_2_5_bounds;
      ] );
    ( "commcc",
      [
        Alcotest.test_case "disjointness eval" `Quick test_disjointness_eval;
        Alcotest.test_case "disjointness promise" `Quick test_disjointness_promise;
        Alcotest.test_case "rejects mismatch" `Quick test_disjointness_rejects_mismatch;
        Alcotest.test_case "comm counter" `Quick test_comm_counter;
      ] );
  ]
