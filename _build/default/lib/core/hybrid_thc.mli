(** Hybrid balanced 2½-coloring, Hybrid-THC(k) (paper Section 6).

    A hybrid of {!Balanced_tree} and {!Hierarchical_thc}: every node
    carries an explicit input level in [1 .. k+1].  Level-1 nodes form
    BalancedTree instances (hung below level-2 backbone nodes); levels
    ≥ 2 behave like Hierarchical-THC, except that a level-2 node may
    only exempt itself if the BalancedTree below it is actually solved
    (its root outputs a (β, port) pair, not D).  A level-1 component may
    alternatively decline unanimously.

    Complexities (Theorem 6.3): R-DIST = D-DIST = Θ(log n) — every
    BalancedTree is solvable in O(log n) distance, so all higher levels
    can exempt themselves — yet R-VOL = Θ̃(n^{1/k}) and D-VOL = Θ̃(n),
    because BalancedTree costs Θ(volume of the component) to solve
    (Proposition 4.9).  This is the paper's "distance logarithmic in
    randomized volume" family. *)

module TL = Vc_graph.Tree_labels
module Graph = Vc_graph.Graph
module BT = Balanced_tree
module H = Hierarchical_thc

type node_input = {
  parent : TL.ptr;
  left : TL.ptr;
  right : TL.ptr;
  left_nbr : TL.ptr;
  right_nbr : TL.ptr;
  color : TL.color;
  level : int;
}

val pp_node_input : Format.formatter -> node_input -> unit

type output =
  | Solved of BT.output  (** a level-1 BalancedTree answer *)
  | Sym of H.output  (** an R/B/D/X symbol *)

val equal_output : output -> output -> bool
val pp_output : Format.formatter -> output -> unit

type instance = {
  graph : Graph.t;
  labels : node_input array;
  k : int;
}

val input : instance -> Graph.node -> node_input
val world : instance -> node_input Vc_model.World.t

val problem : k:int -> (node_input, output) Vc_lcl.Lcl.t
(** The validity conditions of Definition 6.1. *)

(** {1 Instance generators} *)

val uniform_instance : k:int -> len:int -> bt_depth:int -> seed:int64 -> instance
(** Backbones of [len] nodes at every level ≥ 2; every level-2 node
    hangs a fully compatible BalancedTree of depth [bt_depth]. *)

val hard_instance : k:int -> target_n:int -> seed:int64 -> instance * Graph.node
(** Deep backbones whose middle run hangs BalancedTree components larger
    than the scan threshold (unsolvable within the volume budget, so
    their parents cannot exempt and must search), with small trees
    elsewhere.  Returns the instance and the worst start node. *)

(** {1 Algorithms} *)

type 'a access = {
  degree : Graph.node -> int;
  node_input : Graph.node -> node_input;
  follow : Graph.node -> TL.ptr -> Graph.node;
}
(** Data accessors, as in {!Hierarchical_thc.access}. *)

val solve_distance_access : k:int -> access:'a access -> n:int -> Graph.node -> output

val solve_volume_access :
  k:int ->
  is_waypoint:(Graph.node -> bool) ->
  access:'a access ->
  n:int ->
  id:(Graph.node -> int) ->
  Graph.node ->
  output
(** Accessor-generic forms of the solvers below, used by HH-THC. *)

val solve_distance : k:int -> (node_input, output) Vc_lcl.Lcl.solver
(** Theorem 6.3's O(log n)-distance strategy: level-1 nodes run the
    BalancedTree solver, all other nodes exempt themselves. *)

val solve_volume_deterministic : k:int -> (node_input, output) Vc_lcl.Lcl.solver
(** The deterministic volume algorithm (declines deep BalancedTrees,
    scans short ones); Θ̃(n) volume on hard instances. *)

val solve_volume_waypoint : k:int -> ?c:float -> unit -> (node_input, output) Vc_lcl.Lcl.solver
(** The way-point algorithm of Theorem 6.3: volume Õ(n^{1/k}) w.h.p. *)

val solvers : k:int -> (node_input, output) Vc_lcl.Lcl.solver list
