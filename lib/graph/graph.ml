type node = int
type port = int

(* Compressed sparse row over {!Iarr} (bigarray) storage: node [v]'s
   neighbors, in port order, are [tgt.{off.{v}} .. tgt.{off.{v+1} - 1}].
   Bigarray rows make a graph snapshottable as raw bytes ([lib/snap]):
   a mapped file region is used as [ids]/[off]/[tgt] directly, shared
   read-only across processes.

   The id index is built lazily: it only serves [node_of_id], and
   snapshot loads must not pay an O(n) hashtable build for an accessor
   most workloads never call. *)
type t = {
  ids : Iarr.t;
  off : Iarr.t;
  tgt : Iarr.t;
  mutable id_index : (int, node) Hashtbl.t option;
  max_degree : int;
}

let n g = Iarr.length g.ids

let degree g v = Iarr.get g.off (v + 1) - Iarr.get g.off v

let max_degree g = g.max_degree

let id g v = Iarr.get g.ids v

let id_index g =
  match g.id_index with
  | Some tbl -> tbl
  | None ->
      let count = n g in
      let tbl = Hashtbl.create count in
      for v = 0 to count - 1 do
        Hashtbl.replace tbl (Iarr.get g.ids v) v
      done;
      g.id_index <- Some tbl;
      tbl

let node_of_id g i = Hashtbl.find_opt (id_index g) i

let neighbor g v p =
  if p < 1 || p > degree g v then
    invalid_arg
      (Printf.sprintf "Graph.neighbor: port %d invalid at node %d (degree %d)" p v (degree g v));
  Iarr.get g.tgt (Iarr.get g.off v + p - 1)

let unsafe_neighbor g v p = Iarr.unsafe_get g.tgt (Iarr.unsafe_get g.off v + p - 1)

let csr_offsets g = g.off
let csr_targets g = g.tgt
let csr_ids g = g.ids

(* Port-order row scan.  Bounded degree makes this effectively O(1); it
   replaces the reverse-lookup hashtable of earlier versions, whose O(m)
   construction and heap footprint defeated zero-rebuild snapshot
   loads. *)
let port_to g v w =
  if v < 0 || w < 0 || v >= n g || w >= n g then None
  else begin
    let lo = Iarr.get g.off v and hi = Iarr.get g.off (v + 1) in
    let found = ref None in
    let e = ref lo in
    while !found = None && !e < hi do
      if Iarr.unsafe_get g.tgt !e = w then found := Some (!e - lo + 1);
      incr e
    done;
    !found
  end

let neighbors g v =
  let base = Iarr.get g.off v in
  Array.init (degree g v) (fun i -> Iarr.unsafe_get g.tgt (base + i))

let iter_neighbors g v f =
  let stop = Iarr.get g.off (v + 1) - 1 in
  for e = Iarr.get g.off v to stop do
    f (Iarr.unsafe_get g.tgt e)
  done

let fold_neighbors g v ~init ~f =
  let acc = ref init in
  iter_neighbors g v (fun w -> acc := f !acc w);
  !acc

(* Trusted constructor for snapshot loads: the checksummed snapshot is
   the validity witness, so no structural checks run here.  [ids], [off]
   and [tgt] are adopted as-is (typically views into a mapped file). *)
let unsafe_of_csr ~ids ~off ~tgt ~max_degree =
  if Iarr.length off <> Iarr.length ids + 1 then
    invalid_arg "Graph.unsafe_of_csr: off must have n+1 entries";
  { ids; off; tgt; id_index = None; max_degree }

let create ~ids ~adj =
  let count = Array.length ids in
  if Array.length adj <> count then invalid_arg "Graph.create: ids/adj length mismatch";
  let id_index = Hashtbl.create count in
  Array.iteri
    (fun v i ->
      if Hashtbl.mem id_index i then invalid_arg "Graph.create: duplicate identifier";
      Hashtbl.add id_index i v)
    ids;
  let off = Iarr.create (count + 1) in
  Iarr.set off 0 0;
  for v = 0 to count - 1 do
    Iarr.set off (v + 1) (Iarr.get off v + Array.length adj.(v))
  done;
  let m = Iarr.get off count in
  let tgt = Iarr.make m 0 in
  let max_degree = ref 0 in
  for v = 0 to count - 1 do
    let row = adj.(v) in
    let d = Array.length row in
    if d > !max_degree then max_degree := d;
    for p = 1 to d do
      let w = row.(p - 1) in
      if w < 0 || w >= count then invalid_arg "Graph.create: neighbor out of range";
      if w = v then invalid_arg "Graph.create: self-loop";
      for q = 1 to p - 1 do
        if row.(q - 1) = w then invalid_arg "Graph.create: parallel edge"
      done;
      Iarr.set tgt (Iarr.get off v + p - 1) w
    done
  done;
  (* Symmetry: every directed edge must have its reverse.  A row scan on
     the far endpoint replaces the old hashtable witness; degrees are
     bounded, so this stays O(m·Δ). *)
  for v = 0 to count - 1 do
    for e = Iarr.get off v to Iarr.get off (v + 1) - 1 do
      let w = Iarr.get tgt e in
      let ok = ref false in
      for e' = Iarr.get off w to Iarr.get off (w + 1) - 1 do
        if Iarr.get tgt e' = v then ok := true
      done;
      if not !ok then invalid_arg "Graph.create: asymmetric adjacency"
    done
  done;
  { ids = Iarr.of_array ids; off; tgt; id_index = Some id_index; max_degree = !max_degree }

let of_edges ?ids ~n:count edges =
  let buckets = Array.make count [] in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= count || v < 0 || v >= count then
        invalid_arg "Graph.of_edges: endpoint out of range";
      buckets.(u) <- v :: buckets.(u);
      buckets.(v) <- u :: buckets.(v))
    edges;
  let adj = Array.map (fun l -> Array.of_list (List.rev l)) buckets in
  let ids = match ids with Some a -> a | None -> Array.init count (fun v -> v + 1) in
  create ~ids ~adj

let nodes g = List.init (n g) Fun.id

let iter_nodes g f =
  for v = 0 to n g - 1 do
    f v
  done

let edges g =
  let acc = ref [] in
  iter_nodes g (fun v -> iter_neighbors g v (fun w -> if v < w then acc := (v, w) :: !acc));
  !acc

let fold_nodes g ~init ~f =
  let acc = ref init in
  iter_nodes g (fun v -> acc := f !acc v);
  !acc

let is_connected g =
  let count = n g in
  if count = 0 then true
  else begin
    let seen = Array.make count false in
    let queue = Array.make count 0 in
    seen.(0) <- true;
    let head = ref 0 and tail = ref 1 in
    while !head < !tail do
      let v = queue.(!head) in
      incr head;
      iter_neighbors g v (fun w ->
          if not seen.(w) then begin
            seen.(w) <- true;
            queue.(!tail) <- w;
            incr tail
          end)
    done;
    !tail = count
  end

let relabel_ids g ~ids =
  create ~ids ~adj:(Array.init (n g) (fun v -> neighbors g v))

let shuffle_ids g ~rng =
  let count = n g in
  let perm = Array.init count (fun v -> v + 1) in
  for i = count - 1 downto 1 do
    let j = Vc_rng.Splitmix.int rng ~bound:(i + 1) in
    let tmp = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- tmp
  done;
  relabel_ids g ~ids:perm

let pp ppf g =
  iter_nodes g (fun v ->
      Fmt.pf ppf "@[node %d (id %d):" v (Iarr.get g.ids v);
      for p = 1 to degree g v do
        Fmt.pf ppf " %d->%d" p (Iarr.get g.tgt (Iarr.get g.off v + p - 1))
      done;
      Fmt.pf ppf "@]@.")
