(** Promise-LeafColoring under secret randomness (paper Section 7.4).

    The promise version of LeafColoring assumes all leaves carry the
    same input color, so a node need not coordinate with anyone: it is
    enough to find {e some} leaf and echo it.  A downward random walk
    steered by the {e origin's own} random bits — usable even in the
    secret-randomness regime, where other nodes' bits are invisible —
    reaches a leaf within O(log n) steps w.h.p., exhibiting a problem
    where secret randomness beats deterministic volume.

    On non-promise instances the secret walk is useless: different
    origins land on differently-colored leaves, violating LeafColoring
    validity — the accompanying test demonstrates the failure. *)

module TL = Vc_graph.Tree_labels

val promise_instance : n:int -> leaf_color:TL.color -> seed:int64 -> Leaf_coloring.instance
(** A random tree instance whose leaves all carry [leaf_color]. *)

val satisfies_promise : Leaf_coloring.instance -> bool

val solve_secret_walk : (Leaf_coloring.node_input, TL.color) Vc_lcl.Lcl.solver
(** The downward walk using only the origin's private random string;
    legal under {!Vc_rng.Randomness.Secret}. *)

val solvers : (Leaf_coloring.node_input, TL.color) Vc_lcl.Lcl.solver list
(** All conformance-tested solvers ([[solve_secret_walk]]); only valid
    on promise instances. *)
