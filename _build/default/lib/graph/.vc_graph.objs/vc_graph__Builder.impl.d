lib/graph/builder.ml: Array Graph List Vc_rng
