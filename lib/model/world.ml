module Graph = Vc_graph.Graph
module Bfs = Vc_graph.Bfs

type 'i session = {
  view : Graph.node -> 'i View.t;
  resolve : Graph.node -> port:int -> Graph.node;
  dist : Graph.node -> int;
}

type 'i t = {
  n : int;
  max_degree : int;
  start : Graph.node -> 'i session;
}

(* --- incremental BFS scratch ---------------------------------------------

   A session's [dist] runs a BFS from the origin that expands only as far
   as the distances actually demanded, so a probe run costs Θ(ball · Δ)
   instead of the Θ(n) of an eager full-graph BFS.  The frontier state
   lives in epoch-stamped scratch arrays: [dist.(v)] is valid iff
   [stamp.(v) = epoch], so starting a new session is an O(1) epoch bump,
   not an O(n) clear.

   Scratch is pooled per domain (keyed by node count) and reused across
   every session and world on that domain — in particular across the
   whole origin fan-out of [Runner.measure_par].  If a session finds its
   scratch claimed by a younger session (interleaved sessions on one
   domain), it falls back to a freshly allocated private scratch and
   re-seeds the BFS from its origin: distances are pure, so the fallback
   is invisible except in speed. *)

let m_sessions = Vc_obs.Metrics.counter "world.sessions"
let m_bfs_expanded = Vc_obs.Metrics.counter "world.bfs_expanded"

type scratch = {
  s_dist : int array;
  s_stamp : int array;
  s_queue : int array;  (* BFS discovery order; each node enters once *)
  mutable s_head : int;
  mutable s_tail : int;
  mutable s_epoch : int;
}

let make_scratch count =
  {
    s_dist = Array.make count 0;
    s_stamp = Array.make count 0;
    s_queue = Array.make count 0;
    s_head = 0;
    s_tail = 0;
    s_epoch = 0;
  }

let scratch_pool : (int, scratch) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4)

let scratch_for count =
  let pool = Domain.DLS.get scratch_pool in
  match Hashtbl.find_opt pool count with
  | Some sc -> sc
  | None ->
      let sc = make_scratch count in
      Hashtbl.add pool count sc;
      sc

let seed_scratch sc origin =
  sc.s_epoch <- sc.s_epoch + 1;
  sc.s_head <- 0;
  sc.s_stamp.(origin) <- sc.s_epoch;
  sc.s_dist.(origin) <- 0;
  sc.s_queue.(0) <- origin;
  sc.s_tail <- 1

(* [lazy_dist g origin] is a session-private distance oracle.  BFS
   discovery order yields true distances, and an exhausted frontier
   certifies unreachability, so results are bit-identical to
   [Bfs.distances g origin] (including [max_int] for unreachable). *)
let lazy_dist g origin =
  let count = Graph.n g in
  let sc = ref (scratch_for count) in
  seed_scratch !sc origin;
  let epoch = ref (!sc).s_epoch in
  fun v ->
    let s =
      let s = !sc in
      if s.s_epoch = !epoch then s
      else begin
        (* The pooled scratch was claimed by a newer session: retire to a
           private copy and replay the BFS from the origin. *)
        let priv = make_scratch count in
        seed_scratch priv origin;
        sc := priv;
        epoch := priv.s_epoch;
        priv
      end
    in
    if s.s_stamp.(v) = s.s_epoch then s.s_dist.(v)
    else begin
      while s.s_head < s.s_tail && s.s_stamp.(v) <> s.s_epoch do
        let u = s.s_queue.(s.s_head) in
        s.s_head <- s.s_head + 1;
        Vc_obs.Metrics.incr m_bfs_expanded;
        let du = s.s_dist.(u) + 1 in
        Graph.iter_neighbors g u (fun w ->
            if s.s_stamp.(w) <> s.s_epoch then begin
              s.s_stamp.(w) <- s.s_epoch;
              s.s_dist.(w) <- du;
              s.s_queue.(s.s_tail) <- w;
              s.s_tail <- s.s_tail + 1
            end)
      done;
      if s.s_stamp.(v) = s.s_epoch then s.s_dist.(v) else max_int
    end

let session_of_graph g ~input ~dist origin =
  Vc_obs.Metrics.incr m_sessions;
  {
    view =
      (fun v -> { View.node = v; id = Graph.id g v; degree = Graph.degree g v; input = input v });
    resolve = (fun w ~port -> Graph.neighbor g w port);
    dist = dist origin;
  }

let of_graph_claiming ~n g ~input =
  let start = session_of_graph g ~input ~dist:(fun origin -> lazy_dist g origin) in
  { n; max_degree = Graph.max_degree g; start }

let of_graph g ~input = of_graph_claiming ~n:(Graph.n g) g ~input

let of_graph_eager_claiming ~n g ~input =
  let start =
    session_of_graph g ~input ~dist:(fun origin ->
        let distances = Bfs.distances g origin in
        fun v -> distances.(v))
  in
  { n; max_degree = Graph.max_degree g; start }

let of_graph_eager g ~input = of_graph_eager_claiming ~n:(Graph.n g) g ~input
