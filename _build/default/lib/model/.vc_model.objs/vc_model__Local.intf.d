lib/model/local.mli: Vc_graph World
