lib/core/hh_thc.ml: Array Float Hierarchical_thc Hybrid_thc Int64 Leaf_coloring Printf Vc_graph Vc_lcl Vc_model
