lib/core/trivial_lcl.mli: Format Vc_graph Vc_lcl Vc_model
