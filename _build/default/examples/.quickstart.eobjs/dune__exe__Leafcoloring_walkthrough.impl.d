examples/leafcoloring_walkthrough.ml: Array Fmt List Vc_graph Vc_lcl Vc_model Volcomp
