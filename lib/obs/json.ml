type t =
  | Null
  | Bool of bool
  | Int of int
  | I64 of int64
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int v -> Buffer.add_string b (string_of_int v)
  | I64 v -> Buffer.add_string b (Int64.to_string v)
  | Float v ->
      (* the %.6g-with-null-NaN convention of the pre-existing emitters *)
      Buffer.add_string b (if Float.is_nan v then "null" else Printf.sprintf "%.6g" v)
  | String s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | List vs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          write b v)
        vs;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          write b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  write b v;
  Buffer.contents b

(* --- parsing ---------------------------------------------------------------- *)

exception Bad of int * string

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None
let bad st msg = raise (Bad (st.pos, msg))
let advance st = st.pos <- st.pos + 1

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | Some d -> bad st (Printf.sprintf "expected %C, found %C" c d)
  | None -> bad st (Printf.sprintf "expected %C, found end of input" c)

let skip_ws st =
  let continue = ref true in
  while !continue do
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') -> advance st
    | _ -> continue := false
  done

let expect_keyword st kw = String.iter (fun c -> expect st c) kw

let is_digit = function '0' .. '9' -> true | _ -> false
let is_hex = function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false

let parse_digits st =
  if not (match peek st with Some c -> is_digit c | None -> false) then bad st "expected a digit";
  while (match peek st with Some c -> is_digit c | None -> false) do
    advance st
  done

let parse_number st =
  let start = st.pos in
  let integral = ref true in
  if peek st = Some '-' then advance st;
  (match peek st with
  | Some '0' -> advance st
  | Some c when is_digit c -> parse_digits st
  | _ -> bad st "expected a digit");
  if peek st = Some '.' then begin
    integral := false;
    advance st;
    parse_digits st
  end;
  (match peek st with
  | Some ('e' | 'E') ->
      integral := false;
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      parse_digits st
  | _ -> ());
  let lit = String.sub st.src start (st.pos - start) in
  if !integral then
    match int_of_string_opt lit with
    | Some v -> Int v
    | None -> (
        match Int64.of_string_opt lit with
        | Some v -> I64 v
        | None -> Float (float_of_string lit))
  else Float (float_of_string lit)

let parse_string_body st =
  expect st '"';
  let b = Buffer.create 16 in
  let closed = ref false in
  while not !closed do
    match peek st with
    | None -> bad st "unterminated string"
    | Some '"' ->
        advance st;
        closed := true
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some '"' -> advance st; Buffer.add_char b '"'
        | Some '\\' -> advance st; Buffer.add_char b '\\'
        | Some '/' -> advance st; Buffer.add_char b '/'
        | Some 'b' -> advance st; Buffer.add_char b '\b'
        | Some 'f' -> advance st; Buffer.add_char b '\012'
        | Some 'n' -> advance st; Buffer.add_char b '\n'
        | Some 'r' -> advance st; Buffer.add_char b '\r'
        | Some 't' -> advance st; Buffer.add_char b '\t'
        | Some 'u' ->
            advance st;
            let code = ref 0 in
            for _ = 1 to 4 do
              match peek st with
              | Some c when is_hex c ->
                  advance st;
                  let d =
                    match c with
                    | '0' .. '9' -> Char.code c - Char.code '0'
                    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
                    | _ -> Char.code c - Char.code 'A' + 10
                  in
                  code := (!code * 16) + d
              | _ -> bad st "expected four hex digits after \\u"
            done;
            (* traces only escape control characters, so plain bytes are
               enough; other BMP code points round-trip as UTF-8 *)
            if !code < 0x80 then Buffer.add_char b (Char.chr !code)
            else if !code < 0x800 then begin
              Buffer.add_char b (Char.chr (0xc0 lor (!code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (!code land 0x3f)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xe0 lor (!code lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((!code lsr 6) land 0x3f)));
              Buffer.add_char b (Char.chr (0x80 lor (!code land 0x3f)))
            end
        | _ -> bad st "invalid escape sequence")
    | Some c when Char.code c < 0x20 -> bad st "unescaped control character in string"
    | Some c ->
        advance st;
        Buffer.add_char b c
  done;
  Buffer.contents b

(* The parser now also reads untrusted bytes (the serving layer's
   request sockets), so recursion depth is bounded: without the guard a
   ["[[[[…"] of ~10^5 brackets kills the process with [Stack_overflow]
   instead of returning [Error]. *)
let max_depth = 512

let rec parse_value st depth =
  skip_ws st;
  if depth > max_depth then bad st (Printf.sprintf "nesting deeper than %d" max_depth);
  match peek st with
  | Some '{' -> parse_object st depth
  | Some '[' -> parse_array st depth
  | Some '"' -> String (parse_string_body st)
  | Some 't' -> expect_keyword st "true"; Bool true
  | Some 'f' -> expect_keyword st "false"; Bool false
  | Some 'n' -> expect_keyword st "null"; Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> bad st (Printf.sprintf "unexpected character %C" c)
  | None -> bad st "expected a JSON value, found end of input"

and parse_object st depth =
  expect st '{';
  skip_ws st;
  if peek st = Some '}' then begin
    advance st;
    Obj []
  end
  else begin
    let fields = ref [] in
    let continue = ref true in
    while !continue do
      skip_ws st;
      let key = parse_string_body st in
      skip_ws st;
      expect st ':';
      let v = parse_value st (depth + 1) in
      fields := (key, v) :: !fields;
      skip_ws st;
      match peek st with
      | Some ',' -> advance st
      | Some '}' ->
          advance st;
          continue := false
      | _ -> bad st "expected ',' or '}' in object"
    done;
    Obj (List.rev !fields)
  end

and parse_array st depth =
  expect st '[';
  skip_ws st;
  if peek st = Some ']' then begin
    advance st;
    List []
  end
  else begin
    let items = ref [] in
    let continue = ref true in
    while !continue do
      items := parse_value st (depth + 1) :: !items;
      skip_ws st;
      match peek st with
      | Some ',' -> advance st
      | Some ']' ->
          advance st;
          continue := false
      | _ -> bad st "expected ',' or ']' in array"
    done;
    List (List.rev !items)
  end

let parse src =
  let st = { src; pos = 0 } in
  match
    let v = parse_value st 0 in
    skip_ws st;
    if st.pos <> String.length src then bad st "trailing garbage after JSON value";
    v
  with
  | v -> Ok v
  | exception Bad (pos, msg) -> Error (Printf.sprintf "byte %d: %s" pos msg)

(* --- accessors -------------------------------------------------------------- *)

let member v key =
  match v with Obj fields -> List.assoc_opt key fields | _ -> None

let to_int = function
  | Int v -> Some v
  | I64 v ->
      if v >= Int64.of_int min_int && v <= Int64.of_int max_int then Some (Int64.to_int v)
      else None
  | _ -> None

let to_i64 = function Int v -> Some (Int64.of_int v) | I64 v -> Some v | _ -> None
let to_bool = function Bool v -> Some v | _ -> None
let to_str = function String s -> Some s | _ -> None
