(** Growth-class fitting.

    The paper's Table 1 and Figures 1–3 classify problems by asymptotic
    growth (Θ(1), Θ(log* n), Θ(log n), Θ(n^{1/k}), Θ(n)).  Our
    reproduction claim is that the measured cost curve of each
    algorithm falls into the paper's class.  [best_fit] scores each
    candidate class by the variance of [log (y / g(n))] over the
    measured points — a curve genuinely proportional to [g] has a
    near-constant ratio — and returns the classes ordered by score. *)

type model =
  | Constant
  | Log_star
  | Log
  | Root of int  (** n^{1/k} for k >= 2 *)
  | Linear

val equal_model : model -> model -> bool
val pp_model : Format.formatter -> model -> unit

val eval : model -> float -> float
(** [eval m n] is g(n) for the class's representative function (with
    g >= 1 everywhere). *)

val log_star : float -> float
(** Iterated logarithm (base 2), as a float for scoring. *)

val candidates : model list
(** [Constant; Log_star; Log; Root 4; Root 3; Root 2; Linear]. *)

val score : model -> (int * float) list -> float
(** Variance of the log-ratio; lower is better.
    @raise Invalid_argument on fewer than 2 points. *)

val best_fit : (int * float) list -> model * (model * float) list
(** The winning model and the full ranking. *)
