(* Tests for the measurement harness: growth-class fitting, the runner,
   and the experiment pipeline itself (on tiny ladders). *)

module Fit = Vc_measure.Fit
module Runner = Vc_measure.Runner
module Experiments = Vc_measure.Experiments
module Graph = Vc_graph.Graph
module Builder = Vc_graph.Builder
module Probe = Vc_model.Probe
module Trivial = Volcomp.Trivial_lcl

let model_t = Alcotest.testable Fit.pp_model Fit.equal_model

let ladder = [ 64; 256; 1024; 4096; 16384 ]

let series f = List.map (fun n -> (n, f (float_of_int n))) ladder

let test_fit_constant () =
  let best, _ = Fit.best_fit (series (fun _ -> 7.0)) in
  Alcotest.check model_t "constant" Fit.Constant best

let test_fit_log () =
  let best, _ = Fit.best_fit (series (fun n -> 3.0 *. log n /. log 2.0)) in
  Alcotest.check model_t "log" Fit.Log best

let test_fit_sqrt () =
  let best, _ = Fit.best_fit (series (fun n -> 2.0 *. sqrt n)) in
  Alcotest.check model_t "sqrt" (Fit.Root 2) best

let test_fit_cbrt () =
  let best, _ = Fit.best_fit (series (fun n -> 5.0 *. Float.pow n (1.0 /. 3.0))) in
  Alcotest.check model_t "cbrt" (Fit.Root 3) best

let test_fit_linear () =
  let best, _ = Fit.best_fit (series (fun n -> 0.4 *. n)) in
  Alcotest.check model_t "linear" Fit.Linear best

let test_fit_noise_tolerant () =
  (* multiplicative noise of +/-15% must not change the class *)
  let noisy =
    List.mapi
      (fun i (n, y) -> (n, y *. (if i mod 2 = 0 then 1.15 else 0.87)))
      (series (fun n -> 2.0 *. sqrt n))
  in
  let best, _ = Fit.best_fit noisy in
  Alcotest.check model_t "still sqrt" (Fit.Root 2) best

let test_fit_log_star () =
  (* log* n = 4 for every n from 17 up to 2^65536, so on the standard
     ladder a log*-curve is literally constant: separating the classes
     needs points straddling the tower boundaries at 4, 16, 2^16 *)
  let towers = [ 4; 16; 256; 1 lsl 62 ] in
  let pts = List.map (fun n -> (n, 4.0 *. Fit.log_star (float_of_int n))) towers in
  let best, ranking = Fit.best_fit pts in
  Alcotest.check model_t "log star" Fit.Log_star best;
  Alcotest.(check bool) "winning score is ~0" true (snd (List.hd ranking) < 1e-12);
  (* on the flat ladder the documented epsilon tie-break kicks in and
     resolves to the simpler class *)
  let flat, _ = Fit.best_fit (series (fun n -> 4.0 *. Fit.log_star n)) in
  Alcotest.check model_t "flat ladder resolves to Constant" Fit.Constant flat

let test_fit_root4 () =
  let best, _ = Fit.best_fit (series (fun n -> 3.0 *. Float.pow n 0.25)) in
  Alcotest.check model_t "fourth root" (Fit.Root 4) best

let test_fit_near_tie_ranking_stable () =
  (* n^0.4 sits between Root 3 and Root 2; the closer exponent must win,
     and +/-10% noise must neither change the winner nor break the
     ascending order of the reported ranking *)
  let clean = series (fun n -> Float.pow n 0.4) in
  let noisy =
    List.mapi (fun i (n, y) -> (n, y *. (if i mod 2 = 0 then 1.1 else 0.9))) clean
  in
  (* best_fit deliberately collapses scores within 1e-9 into ties, so
     "ascending" must allow that epsilon *)
  let rec ascending = function
    | (_, a) :: ((_, b) :: _ as tl) -> a <= b +. 1e-9 && ascending tl
    | _ -> true
  in
  List.iter
    (fun (msg, pts) ->
      let best, ranking = Fit.best_fit pts in
      Alcotest.check model_t (msg ^ ": winner") (Fit.Root 3) best;
      Alcotest.(check int) (msg ^ ": all candidates ranked")
        (List.length Fit.candidates) (List.length ranking);
      Alcotest.(check bool) (msg ^ ": scores ascending") true (ascending ranking);
      Alcotest.check model_t (msg ^ ": runner-up is the other root")
        (Fit.Root 2)
        (fst (List.nth ranking 1)))
    [ ("clean", clean); ("noisy", noisy) ]

let test_fit_permutation_invariant () =
  (* scores are variances over the point set; the order in which points
     are listed must not affect the ranking *)
  let pts = series (fun n -> 2.0 *. sqrt n) in
  let models (best, ranking) = best :: List.map fst ranking in
  Alcotest.(check (list model_t)) "reversed points, same ranking"
    (models (Fit.best_fit pts))
    (models (Fit.best_fit (List.rev pts)))

let test_fit_rejects_short_series () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Fit.score Fit.Log [ (10, 1.0) ]);
       false
     with Invalid_argument _ -> true)

let test_log_star () =
  Alcotest.(check bool) "log*(2^16) small" true (Fit.log_star 65536.0 <= 5.0);
  Alcotest.(check bool) "monotone" true (Fit.log_star 1e9 >= Fit.log_star 100.0)

(* qcheck: Runner.merge is an exact integer monoid — associative and
   commutative with identity Runner.empty — so fold order (and hence the
   pool's chunk partition) can never leak into merged stats. *)
let arb_stats =
  let gen =
    QCheck.Gen.(
      map
        (function
          | [ runs; mv; sv; md; sd; mq; mr; ab ] ->
              {
                Runner.runs;
                max_volume = mv;
                sum_volume = sv;
                max_distance = md;
                sum_distance = sd;
                max_queries = mq;
                max_rand_bits = mr;
                aborted = ab;
              }
          | _ -> assert false)
        (list_repeat 8 small_nat))
  in
  QCheck.make ~print:(Format.asprintf "%a" Runner.pp_stats) gen

let qcheck_merge_monoid =
  QCheck.Test.make ~count:200 ~name:"Runner.merge is a commutative monoid"
    QCheck.(triple arb_stats arb_stats arb_stats)
    (fun (a, b, c) ->
      Runner.merge a (Runner.merge b c) = Runner.merge (Runner.merge a b) c
      && Runner.merge a b = Runner.merge b a
      && Runner.merge Runner.empty a = a
      && Runner.merge a Runner.empty = a)

let test_runner_stats () =
  let g = Builder.path 9 in
  let world = Trivial.world g in
  let stats, outputs =
    Runner.measure ~world ~solver:Trivial.solve ~origins:(Graph.nodes g) ()
  in
  Alcotest.(check int) "runs" 9 stats.Runner.runs;
  Alcotest.(check int) "outputs" 9 (List.length outputs);
  Alcotest.(check int) "volume 1" 1 stats.Runner.max_volume;
  Alcotest.(check int) "aborted 0" 0 stats.Runner.aborted

let test_runner_abort_counted () =
  let g = Builder.path 9 in
  let world = Trivial.world g in
  let greedy =
    Vc_lcl.Lcl.solver ~name:"greedy" ~randomized:false (fun ctx ->
        let rec go v =
          let d = Probe.degree ctx v in
          go (Probe.query ctx ~at:v ~port:d)
        in
        go (Probe.origin ctx))
  in
  let stats, outputs =
    Runner.measure ~world ~solver:greedy ~budget:(Probe.volume_budget 2) ~origins:[ 0; 4 ] ()
  in
  Alcotest.(check int) "both aborted" 2 stats.Runner.aborted;
  Alcotest.(check int) "no outputs" 0 (List.length outputs)

let test_sample_origins_distinct () =
  let g = Builder.cycle 50 in
  let sample = Runner.sample_origins g ~count:20 ~seed:3L in
  Alcotest.(check int) "20 samples" 20 (List.length sample);
  Alcotest.(check int) "distinct" 20 (List.length (List.sort_uniq compare sample))

let test_solve_and_check_valid () =
  let g = Builder.complete_binary_tree ~depth:4 in
  let stats, valid =
    Runner.solve_and_check ~world:(Trivial.world g) ~problem:Trivial.problem ~graph:g
      ~input:(fun _ -> ()) ~solver:Trivial.solve ()
  in
  Alcotest.(check bool) "valid" true valid;
  Alcotest.(check int) "all nodes" (Graph.n g) stats.Runner.runs

(* End-to-end: two representative experiment reports on their quick
   ladders must agree with the paper. *)
let test_experiment_leafcoloring_agrees () =
  let r = Experiments.table1_leafcoloring ~quick:true () in
  Alcotest.(check bool) "leafcoloring row reproduces" true (Experiments.all_agree r)

let test_experiment_figure12_agrees () =
  let r = Experiments.figure12_classes ~quick:true () in
  Alcotest.(check bool) "figure 1-2 classes reproduce" true (Experiments.all_agree r)

let test_experiment_adversary_agrees () =
  let r = Experiments.figure8_adversary ~quick:true () in
  Alcotest.(check bool) "adversary report reproduces" true (Experiments.all_agree r)

let suites =
  [
    ( "measure:fit",
      [
        Alcotest.test_case "constant" `Quick test_fit_constant;
        Alcotest.test_case "log" `Quick test_fit_log;
        Alcotest.test_case "sqrt" `Quick test_fit_sqrt;
        Alcotest.test_case "cbrt" `Quick test_fit_cbrt;
        Alcotest.test_case "linear" `Quick test_fit_linear;
        Alcotest.test_case "noise tolerant" `Quick test_fit_noise_tolerant;
        Alcotest.test_case "log-star curve" `Quick test_fit_log_star;
        Alcotest.test_case "fourth root" `Quick test_fit_root4;
        Alcotest.test_case "near-tie ranking stable" `Quick test_fit_near_tie_ranking_stable;
        Alcotest.test_case "permutation invariant" `Quick test_fit_permutation_invariant;
        Alcotest.test_case "rejects short series" `Quick test_fit_rejects_short_series;
        Alcotest.test_case "log star" `Quick test_log_star;
      ] );
    ( "measure:runner",
      [
        Alcotest.test_case "stats" `Quick test_runner_stats;
        QCheck_alcotest.to_alcotest qcheck_merge_monoid;
        Alcotest.test_case "abort counted" `Quick test_runner_abort_counted;
        Alcotest.test_case "sample origins" `Quick test_sample_origins_distinct;
        Alcotest.test_case "solve and check" `Quick test_solve_and_check_valid;
      ] );
    ( "measure:experiments",
      [
        Alcotest.test_case "leafcoloring row" `Slow test_experiment_leafcoloring_agrees;
        Alcotest.test_case "figure 1-2" `Slow test_experiment_figure12_agrees;
        Alcotest.test_case "adversary report" `Slow test_experiment_adversary_agrees;
      ] );
  ]
