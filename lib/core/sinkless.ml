module Graph = Vc_graph.Graph
module Builder = Vc_graph.Builder
module Probe = Vc_model.Probe
module Ball = Vc_model.Ball
module World = Vc_model.World
module Lcl = Vc_lcl.Lcl
module Splitmix = Vc_rng.Splitmix

type direction = Outgoing | Incoming

type output = direction array

let opposite = function Outgoing -> Incoming | Incoming -> Outgoing

let problem : (unit, output) Lcl.t =
  let valid_at g ~input:_ ~output v =
    let dirs = output v in
    if Array.length dirs <> Graph.degree g v then Error "one direction per port required"
    else begin
      let ok = ref (Ok ()) in
      for p = 1 to Graph.degree g v do
        let w = Graph.neighbor g v p in
        match Graph.port_to g w v with
        | None -> ok := Error "malformed graph"
        | Some q ->
            let mine = dirs.(p - 1) and theirs = (output w).(q - 1) in
            if not (theirs = opposite mine) then
              ok := Error (Fmt.str "edge via port %d oriented inconsistently" p)
      done;
      match !ok with
      | Error _ as e -> e
      | Ok () ->
          if Array.exists (fun d -> d = Outgoing) dirs then Ok ()
          else Error "sink: no outgoing edge"
    end
  in
  { Lcl.name = "SinklessOrientation"; radius = 1; valid_at }

let world g = World.of_graph g ~input:(fun _ -> ())

(* A Hamiltonian cycle plus a (near-)perfect matching: all degrees 3,
   except possibly one degree-4 node when n is odd. *)
let random_cubic ~n ~seed =
  if n < 6 then invalid_arg "Sinkless.random_cubic: n must be >= 6";
  let rng = Splitmix.create seed in
  let cycle_edges = List.init n (fun i -> (i, (i + 1) mod n)) in
  let adjacent a b = (a + 1) mod n = b || (b + 1) mod n = a in
  let rec matching attempt =
    if attempt > 200 then failwith "Sinkless.random_cubic: could not sample a matching";
    let perm = Array.init n Fun.id in
    for i = n - 1 downto 1 do
      let j = Splitmix.int rng ~bound:(i + 1) in
      let tmp = perm.(i) in
      perm.(i) <- perm.(j);
      perm.(j) <- tmp
    done;
    let pairs = ref [] in
    let ok = ref true in
    for i = 0 to (n / 2) - 1 do
      let a = perm.(2 * i) and b = perm.((2 * i) + 1) in
      if adjacent a b then ok := false else pairs := (a, b) :: !pairs
    done;
    (* odd n: hook the leftover node to someone non-adjacent *)
    if n mod 2 = 1 then begin
      let leftover = perm.(n - 1) in
      let partner = perm.(Splitmix.int rng ~bound:(n - 1)) in
      if adjacent leftover partner || leftover = partner then ok := false
      else pairs := (leftover, partner) :: !pairs
    end;
    if !ok then !pairs else matching (attempt + 1)
  in
  Graph.of_edges ~n (cycle_edges @ matching 0)

(* --- the global solver ---------------------------------------------------- *)

(* Canonical orientation of an explored component: BFS (ports ascending)
   from the minimum-id node; the first non-tree edge in scan order
   closes the canonical cycle, which is oriented cyclically; all other
   tree edges point child -> parent (towards the cycle/root); remaining
   non-tree edges point from smaller to larger id.  Everything is a
   deterministic function of the component, so every origin agrees. *)
let solve_global_fn ctx =
  let v0 = Probe.origin ctx in
  let ball = Ball.gather ctx ~radius:(Probe.n ctx) in
  let members = List.map fst ball in
  let adj v = Ball.adjacency ctx v in
  let id v = Probe.id ctx v in
  let root =
    List.fold_left (fun best v -> if id v < id best then v else best) v0 members
  in
  (* BFS with ascending ports *)
  let parent = Hashtbl.create 64 in
  let order = ref [] in
  let seen = Hashtbl.create 64 in
  let queue = Queue.create () in
  Hashtbl.replace seen root ();
  Queue.add root queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order := v :: !order;
    List.iter
      (fun (_, w) ->
        if not (Hashtbl.mem seen w) then begin
          Hashtbl.replace seen w ();
          Hashtbl.replace parent w v;
          Queue.add w queue
        end)
      (adj v)
  done;
  let order = List.rev !order in
  let is_tree_edge u w =
    Hashtbl.find_opt parent u = Some w || Hashtbl.find_opt parent w = Some u
  in
  (* first non-tree edge in scan order *)
  let closing =
    List.fold_left
      (fun acc u ->
        match acc with
        | Some _ -> acc
        | None ->
            List.fold_left
              (fun acc (_, w) ->
                match acc with
                | Some _ -> acc
                | None -> if w <> u && not (is_tree_edge u w) then Some (u, w) else None)
              None (adj u))
      None order
  in
  (* the canonical cycle as a directed successor map *)
  let successor = Hashtbl.create 16 in
  (match closing with
  | None -> () (* a tree component: impossible at min degree 3, but safe *)
  | Some (u, w) ->
      let rec ancestors v acc =
        match Hashtbl.find_opt parent v with
        | None -> v :: acc
        | Some p -> ancestors p (v :: acc)
      in
      (* paths root..u and root..w; drop the common prefix to the lca *)
      let pu = ancestors u [] and pw = ancestors w [] in
      let rec strip pu pw =
        match (pu, pw) with
        | a :: (a' :: _ as pu'), b :: (b' :: _ as pw') when a = b && a' = b' -> strip pu' pw'
        | _ -> (pu, pw)
      in
      let pu, pw = strip pu pw in
      (* pu = lca..u, pw = lca..w; cycle: u -> ... -> lca -> ... -> w -> u *)
      let up = List.rev pu in
      (* u towards lca *)
      List.iteri
        (fun i v -> match List.nth_opt up (i + 1) with Some nxt -> Hashtbl.replace successor v nxt | None -> ())
        up;
      (* lca towards w *)
      (match pw with
      | [] -> ()
      | _ :: _ ->
          List.iteri
            (fun i v ->
              match List.nth_opt pw (i + 1) with
              | Some nxt -> Hashtbl.replace successor v nxt
              | None -> ())
            pw);
      Hashtbl.replace successor w u);
  (* Re-root the spanning tree at the minimum-id cycle node: every cycle
     node is sinkless via its successor edge and every off-cycle node via
     its child -> parent edge, so only the tree root could ever lack an
     outgoing edge — and the new root sits on the cycle.  (The original
     BFS root is only guaranteed a cycle edge when the first closing edge
     happens to pass through it.) *)
  let parent =
    if Hashtbl.length successor = 0 then parent
    else begin
      let cycle_root =
        Hashtbl.fold (fun v _ best -> if id v < id best then v else best) successor
          (Hashtbl.fold (fun v _ _ -> v) successor root)
      in
      let parent' = Hashtbl.create 64 in
      let seen' = Hashtbl.create 64 in
      let queue' = Queue.create () in
      Hashtbl.replace seen' cycle_root ();
      Queue.add cycle_root queue';
      while not (Queue.is_empty queue') do
        let v = Queue.pop queue' in
        List.iter
          (fun (_, w) ->
            if not (Hashtbl.mem seen' w) then begin
              Hashtbl.replace seen' w ();
              Hashtbl.replace parent' w v;
              Queue.add w queue'
            end)
          (adj v)
      done;
      parent'
    end
  in
  (* orientation of one edge, from [v]'s perspective *)
  let direction v w =
    if Hashtbl.find_opt successor v = Some w then Outgoing
    else if Hashtbl.find_opt successor w = Some v then Incoming
    else if Hashtbl.find_opt parent v = Some w then Outgoing (* child -> parent *)
    else if Hashtbl.find_opt parent w = Some v then Incoming
    else if id v < id w then Outgoing
    else Incoming
  in
  Array.init (Probe.degree ctx v0) (fun i ->
      let w = Probe.query ctx ~at:v0 ~port:(i + 1) in
      direction v0 w)

let solve_global = Lcl.solver ~name:"global cycle orientation" ~randomized:false solve_global_fn

(* --- the distance-1 strawman ----------------------------------------------- *)

let solve_one_round_random =
  Lcl.solver ~name:"one-round random orientation" ~randomized:true (fun ctx ->
      let v0 = Probe.origin ctx in
      let key v = (Probe.rand_bit_at ctx v 0, Probe.id ctx v) in
      let mine = key v0 in
      Array.init (Probe.degree ctx v0) (fun i ->
          let w = Probe.query ctx ~at:v0 ~port:(i + 1) in
          (* the lexicographically larger endpoint owns the edge *)
          if mine > key w then Outgoing else Incoming))

(* [solve_one_round_random] is deliberately excluded: failing somewhere
   is its point (see the mli), so it does not belong in the conformance
   set. *)
let solvers = [ solve_global ]
