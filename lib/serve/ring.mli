(** Deterministic consistent-hash ring: session key → shard id.

    Each shard contributes [vnodes] points ([hash64 "<shard>/<replica>"])
    on a 64-bit circle; a key routes to the shard owning the first point
    at or clockwise-after the key's hash.  Properties the supervisor and
    its tests rely on:

    - {b total}: every key maps to some live shard;
    - {b stable}: removing one shard only remaps keys that shard owned —
      every other key keeps its placement, so a worker death never
      invalidates the warm sessions of the survivors;
    - {b deterministic across processes}: the hash is FNV-1a 64 spelled
      out below (never [Hashtbl.hash]), so a client, the supervisor and
      a test harness all compute identical placement. *)

type t

val default_vnodes : int
(** 64 — enough for a few-percent load spread at single-digit shard
    counts without making lookup tables noticeable. *)

val create : ?vnodes:int -> int list -> t
(** Ring over the given shard ids (deduplicated; order-insensitive).
    Raises [Invalid_argument] on an empty list or [vnodes < 1]. *)

val shards : t -> int list
(** Live shard ids, sorted ascending. *)

val vnodes : t -> int

val remove : t -> int -> t
(** Ring without the given shard.  Raises [Invalid_argument] if it was
    the last one. *)

val hash64 : string -> int64
(** FNV-1a, 64-bit. *)

val session_key : problem:string -> size:int -> seed:int64 -> string
(** The routing key of one warm world.  The problem name is case-folded
    to match the registry's case-insensitive lookup. *)

val lookup : t -> string -> int
(** The shard owning this key. *)

val lookup_session : t -> problem:string -> size:int -> seed:int64 -> int
(** [lookup] of [session_key]. *)
