module Graph = Vc_graph.Graph
module Probe = Vc_model.Probe
module Lcl = Vc_lcl.Lcl

type parity = Even | Odd

let equal_parity a b =
  match (a, b) with Even, Even | Odd, Odd -> true | (Even | Odd), _ -> false

let pp_parity ppf = function Even -> Fmt.string ppf "even" | Odd -> Fmt.string ppf "odd"

let parity_of_degree d = if d mod 2 = 0 then Even else Odd

let problem : (unit, parity) Lcl.t =
  let valid_at g ~input:_ ~output v =
    if equal_parity (output v) (parity_of_degree (Graph.degree g v)) then Ok ()
    else Error "output must be the parity of the node's degree"
  in
  { Lcl.name = "DegreeParity"; radius = 0; valid_at }

let solve =
  Lcl.solver ~name:"degree parity" ~randomized:false (fun ctx ->
      parity_of_degree (Probe.degree ctx (Probe.origin ctx)))

let world g = Vc_model.World.of_graph g ~input:(fun _ -> ())

let solvers = [ solve ]
