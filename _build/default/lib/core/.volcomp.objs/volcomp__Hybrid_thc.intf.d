lib/core/hybrid_thc.mli: Balanced_tree Format Hierarchical_thc Vc_graph Vc_lcl Vc_model
