(** Tree labelings and the induced pseudo-forest [G_T]
    (paper Definitions 3.1, 3.3, 4.1 and Observation 3.7).

    A {e tree labeling} gives every node three pointers — parent, left
    child, right child — each either ⊥ or a port number of that node.
    The labeling is pure input data: nothing forces it to describe a real
    tree, and the whole point of the paper's constructions is that nodes
    must {e locally} discover whether it does.  A node is {e internal}
    when both of its child pointers are reciprocated, {e leaf} when it is
    not internal but its parent is, and {e inconsistent} otherwise.

    The consistent nodes with the edges "internal parent → child" form a
    directed pseudo-forest [G_T]: out-degree 0 or 2, in-degree 0 or 1, at
    most one directed cycle per component. *)

type ptr = int
(** ⊥ is represented as [0]; any positive value is a port number. *)

val bot : ptr
(** The ⊥ pointer. *)

type t = {
  parent : Iarr.t;
  left : Iarr.t;
  right : Iarr.t;
}
(** One pointer triple per node, each row an {!Iarr.t} (bigarray) so a
    labeling snapshots and loads as raw bytes alongside its graph. *)

type status = Internal | Leaf | Inconsistent

val equal_status : status -> status -> bool
val pp_status : Format.formatter -> status -> unit

type color = Red | Blue

val equal_color : color -> color -> bool
val pp_color : Format.formatter -> color -> unit
val flip_color : color -> color

type colored = {
  labels : t;
  color : color array;
}
(** A colored tree labeling (Definition 3.1): pointers plus an input
    color per node. *)

type balanced = {
  tree : t;
  left_nbr : ptr array;
  right_nbr : ptr array;
}
(** A balanced tree labeling (Definition 4.1): pointers plus lateral
    left/right-neighbor pointers. *)

val make : n:int -> t
(** All-⊥ labeling for [n] nodes. *)

val deref : Graph.t -> t -> Graph.node -> ptr -> Graph.node option
(** [deref g lab v p] follows pointer [p] out of [v]: [None] when [p] is
    ⊥ or not a valid port at [v]. *)

(** {1 Status}

    [status] evaluates Definition 3.3 with full knowledge of the graph.
    [status_gen] is the same decision procedure parameterised over data
    accessors, so probe-model algorithms can run it against their query
    interface and pay for exactly the nodes it touches. *)

val status_gen :
  degree:(Graph.node -> int) ->
  pointers:(Graph.node -> ptr * ptr * ptr) ->
  follow:(Graph.node -> ptr -> Graph.node) ->
  Graph.node ->
  status
(** [pointers v] returns [(parent, left, right)] of [v]; [follow v p]
    resolves a pointer already known to be a valid port at [v] (it is
    called only with [1 <= p <= degree v]). *)

val status : Graph.t -> t -> Graph.node -> status

val is_internal : Graph.t -> t -> Graph.node -> bool
val is_leaf : Graph.t -> t -> Graph.node -> bool
val is_consistent : Graph.t -> t -> Graph.node -> bool

(** {1 The pseudo-forest [G_T]} *)

val gt_children : Graph.t -> t -> Graph.node -> (Graph.node * Graph.node) option
(** [gt_children g lab v] is [Some (left_child, right_child)] when [v] is
    internal, [None] otherwise.  Both children belong to [G_T]. *)

val gt_parent : Graph.t -> t -> Graph.node -> Graph.node option
(** [gt_parent g lab v] is the [G_T]-parent of [v]: the node [u] reached
    by [v]'s parent pointer, provided [v] is consistent and [u] is
    internal with [v] as one of its reciprocated children. *)

val gt_nodes : Graph.t -> t -> Graph.node list
(** Consistent nodes, i.e. the vertex set of [G_T]. *)

(** {1 Building labelings} *)

val of_structure :
  Graph.t ->
  parent:(Graph.node -> Graph.node option) ->
  left:(Graph.node -> Graph.node option) ->
  right:(Graph.node -> Graph.node option) ->
  t
(** Compute the port-level labeling matching a structural description.
    @raise Invalid_argument if a named node is not adjacent. *)

val of_complete_binary_tree : depth:int -> Graph.t * t
(** The complete binary tree of {!Builder.complete_binary_tree} together
    with its consistent labeling. *)

val of_random_binary_tree : n:int -> rng:Vc_rng.Splitmix.t -> Graph.t * t
(** A random all-internal-or-leaf tree with its consistent labeling. *)

val copy : t -> t
