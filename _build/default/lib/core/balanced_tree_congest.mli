(** BalancedTree in the CONGEST model (paper Observation 7.4).

    The paper notes that BalancedTree — whose volume complexity is Θ(n) —
    is solvable in O(log n) CONGEST rounds with O(log n)-bit messages:
    nodes exchange identifiers and pointer targets for a constant number
    of rounds to evaluate their own status and compatibility, then
    incompatibility announcements flood up the pseudo-forest [G_T]; by
    Lemma 4.6 every unbalanced node hears of a defect within its
    nearest-leaf distance ≤ log n.  Together with Lemma 2.5 this makes
    the ∆^Θ(T) relation between CONGEST time and volume tight.

    The implementation is a faithful synchronous message-passing
    protocol: no node ever reads anything but its own input and the
    messages on its ports. *)

type message
(** Identifiers, pointer tables, statuses, or defect announcements;
    every message fits in O(log n) bits. *)

type state

val algorithm :
  unit ->
  (Balanced_tree.node_input, message, state, Balanced_tree.output) Vc_model.Congest.algorithm

val run :
  Balanced_tree.instance -> ?bandwidth:int -> unit -> Balanced_tree.output Vc_model.Congest.result
(** Run the protocol to quiescence (at most [2 log n + O(1)] rounds).
    Default bandwidth 512 bits, ample for the O(log n)-bit messages. *)
