(* Tests for the LOCAL full-information simulator (Remark 2.3) and the
   Section 2.6 tail bounds. *)

module Graph = Vc_graph.Graph
module Builder = Vc_graph.Builder
module TL = Vc_graph.Tree_labels
module Probe = Vc_model.Probe
module Local = Vc_model.Local
module Lcl = Vc_lcl.Lcl
module LC = Volcomp.Leaf_coloring
module TB = Vc_measure.Tail_bounds
module Randomness = Vc_rng.Randomness
module Splitmix = Vc_rng.Splitmix

(* --- LOCAL gathering ---------------------------------------------------- *)

let test_gather_ball_sizes () =
  let g = Builder.complete_binary_tree ~depth:4 in
  let got = Local.gather ~graph:g ~input:(fun _ -> ()) ~rounds:2 in
  (* the root's 2-ball has 7 nodes; a leaf's has 4 (leaf, parent,
     grandparent, sibling) *)
  Alcotest.(check int) "root knows 7" 7 (Local.nodes_known got.Local.views.(0));
  let leaf = List.hd (Builder.leaves_of_complete_tree ~depth:4) in
  Alcotest.(check int) "leaf knows 4" 4 (Local.nodes_known got.Local.views.(leaf))

let test_gather_message_growth () =
  (* message sizes grow like Delta^T: the LOCAL/CONGEST separation *)
  let g = Builder.complete_binary_tree ~depth:7 in
  let bits r = (Local.gather ~graph:g ~input:(fun _ -> ()) ~rounds:r).Local.max_message_bits in
  let b2 = bits 2 and b5 = bits 5 in
  Alcotest.(check bool)
    (Printf.sprintf "b5=%d >= 4*b2=%d" b5 (4 * b2))
    true (b5 >= 4 * b2)

let test_remark_2_3_replay () =
  (* Remark 2.3, executable: the deterministic LeafColoring solver has
     DIST <= log n + 2; replaying it against every node's (log n + 3)-
     round knowledge yields exactly the outputs of the true world. *)
  let inst = LC.random_instance ~n:201 ~seed:3L in
  let g = inst.LC.graph in
  let n = Graph.n g in
  let rounds = Volcomp.Probe_tree.log2_ceil n + 3 in
  let got = Local.gather ~graph:g ~input:(LC.input inst) ~rounds in
  let true_world = LC.world inst in
  Graph.iter_nodes g (fun v ->
      let truth = Probe.run ~world:true_world ~origin:v LC.solve_distance.Lcl.solve in
      let kworld = Local.world_of_knowledge ~n ~origin:v got.Local.views.(v) in
      let replay = Probe.run ~world:kworld ~origin:v LC.solve_distance.Lcl.solve in
      Alcotest.(check bool)
        (Printf.sprintf "node %d same output" v)
        true
        (match (truth.Probe.output, replay.Probe.output) with
        | Some a, Some b -> TL.equal_color a b
        | (Some _ | None), _ -> false);
      Alcotest.(check int) "same volume" truth.Probe.volume replay.Probe.volume)

let test_outside_ball_detected () =
  let g = Builder.path 10 in
  let got = Local.gather ~graph:g ~input:(fun _ -> ()) ~rounds:2 in
  let w = Local.world_of_knowledge ~n:10 ~origin:0 got.Local.views.(0) in
  let r =
    Probe.run ~world:w ~origin:0 (fun ctx ->
        (* walk right past the knowledge horizon *)
        try
          let a = Probe.query ctx ~at:0 ~port:1 in
          let b = Probe.query ctx ~at:a ~port:2 in
          let c = Probe.query ctx ~at:b ~port:2 in
          ignore c;
          false
        with Local.Outside_ball _ -> true)
  in
  Alcotest.(check (option bool)) "strays detected" (Some true) r.Probe.output

(* --- tail bounds ----------------------------------------------------------- *)

let test_chernoff_formulas () =
  Alcotest.(check bool) "upper decreasing in mu" true
    (TB.chernoff_upper ~mu:100.0 ~delta:0.5 < TB.chernoff_upper ~mu:10.0 ~delta:0.5);
  Alcotest.(check bool) "lower tighter than upper" true
    (TB.chernoff_lower ~mu:10.0 ~delta:0.5 <= TB.chernoff_upper ~mu:10.0 ~delta:0.5);
  Alcotest.(check bool) "rejects delta >= 1" true
    (try
       ignore (TB.chernoff_upper ~mu:1.0 ~delta:1.5);
       false
     with Invalid_argument _ -> true)

let test_chernoff_dominates_empirical () =
  List.iter
    (fun (m, p, delta) ->
      let bound = TB.chernoff_upper ~mu:(float_of_int m *. p) ~delta in
      let emp = TB.empirical_binomial_upper_tail ~trials:3000 ~m ~p ~delta ~seed:5L in
      Alcotest.(check bool)
        (Printf.sprintf "m=%d p=%.2f d=%.2f: emp %.4f <= bound %.4f (+slack)" m p delta emp bound)
        true
        (emp <= bound +. 0.02);
      let lbound = TB.chernoff_lower ~mu:(float_of_int m *. p) ~delta in
      let lemp = TB.empirical_binomial_lower_tail ~trials:3000 ~m ~p ~delta ~seed:6L in
      Alcotest.(check bool) "lower tail dominated" true (lemp <= lbound +. 0.02))
    [ (200, 0.5, 0.3); (500, 0.2, 0.5); (100, 0.8, 0.2) ]

let test_negative_binomial_dominates_empirical () =
  List.iter
    (fun (k, p, c) ->
      let bound = TB.negative_binomial_tail ~k ~p ~c in
      let emp = TB.empirical_negative_binomial_tail ~trials:3000 ~k ~p ~c ~seed:7L in
      Alcotest.(check bool)
        (Printf.sprintf "k=%d p=%.2f c=%.1f: emp %.4f <= bound %.4f (+slack)" k p c emp bound)
        true
        (emp <= bound +. 0.02))
    [ (10, 0.5, 2.0); (20, 0.3, 1.5); (8, 0.9, 3.0) ]

let test_empirical_rejects_empty_sample () =
  (* an empty sample has no empirical frequency; hits/trials would
     silently return nan *)
  let raises f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  List.iter
    (fun trials ->
      Alcotest.(check bool)
        (Printf.sprintf "binomial upper, trials=%d" trials)
        true
        (raises (fun () ->
             TB.empirical_binomial_upper_tail ~trials ~m:10 ~p:0.5 ~delta:0.2 ~seed:1L));
      Alcotest.(check bool)
        (Printf.sprintf "binomial lower, trials=%d" trials)
        true
        (raises (fun () ->
             TB.empirical_binomial_lower_tail ~trials ~m:10 ~p:0.5 ~delta:0.2 ~seed:1L));
      Alcotest.(check bool)
        (Printf.sprintf "negative binomial, trials=%d" trials)
        true
        (raises (fun () ->
             TB.empirical_negative_binomial_tail ~trials ~k:3 ~p:0.5 ~c:2.0 ~seed:1L)))
    [ 0; -5 ]

let test_empirical_single_trial () =
  (* a single run is a 0/1 indicator, never anything in between *)
  let in01 x = x = 0.0 || x = 1.0 in
  for seed = 1 to 10 do
    let seed = Int64.of_int seed in
    Alcotest.(check bool) "binomial single trial" true
      (in01 (TB.empirical_binomial_upper_tail ~trials:1 ~m:20 ~p:0.5 ~delta:0.1 ~seed));
    Alcotest.(check bool) "negative binomial single trial" true
      (in01 (TB.empirical_negative_binomial_tail ~trials:1 ~k:5 ~p:0.4 ~c:1.2 ~seed))
  done

let test_rwtoleaf_walk_length_tail () =
  (* The Prop 3.10 claim instantiated: P(walk length >= 16 log n) is
     tiny.  We measure walk lengths through the volume of RWtoLeaf runs
     (volume ~ a constant times walk length). *)
  let inst = LC.random_instance ~n:513 ~seed:8L in
  let n = Graph.n inst.LC.graph in
  let world = LC.world inst in
  let logn = Volcomp.Probe_tree.log2_ceil n in
  let violations = ref 0 in
  let runs = ref 0 in
  for seed = 1 to 20 do
    let rand = Randomness.create ~seed:(Int64.of_int seed) ~n () in
    Graph.iter_nodes inst.LC.graph (fun v ->
        if v mod 8 = 0 then begin
          incr runs;
          let r = Probe.run ~world ~randomness:rand ~origin:v LC.solve_random_walk.Lcl.solve in
          (* each walk step costs at most 8 queries/visits *)
          if r.Probe.volume > 8 * 16 * logn then incr violations
        end)
  done;
  Alcotest.(check int)
    (Printf.sprintf "no 16-log-n violations in %d runs" !runs)
    0 !violations

let test_waypoint_density_chernoff () =
  (* Lemma 5.16's shape: in windows of m nodes with waypoint probability
     p, the count exceeds twice its mean with frequency below the
     Chernoff bound. *)
  let rng = Splitmix.create 9L in
  let m = 400 and p = 0.05 in
  let mu = float_of_int m *. p in
  let trials = 2000 in
  let crowded = ref 0 in
  for _ = 1 to trials do
    let count = ref 0 in
    for _ = 1 to m do
      if Splitmix.float rng < p then incr count
    done;
    if float_of_int !count >= 2.0 *. mu then incr crowded
  done;
  let emp = float_of_int !crowded /. float_of_int trials in
  let bound = TB.chernoff_upper ~mu ~delta:0.99 in
  Alcotest.(check bool)
    (Printf.sprintf "crowded windows %.4f <= %.4f (+slack)" emp bound)
    true
    (emp <= bound +. 0.02)

let suites =
  [
    ( "model:local",
      [
        Alcotest.test_case "ball sizes" `Quick test_gather_ball_sizes;
        Alcotest.test_case "message growth Delta^T" `Quick test_gather_message_growth;
        Alcotest.test_case "Remark 2.3 replay" `Slow test_remark_2_3_replay;
        Alcotest.test_case "outside ball detected" `Quick test_outside_ball_detected;
      ] );
    ( "measure:tail-bounds",
      [
        Alcotest.test_case "chernoff formulas" `Quick test_chernoff_formulas;
        Alcotest.test_case "chernoff dominates empirical" `Slow test_chernoff_dominates_empirical;
        Alcotest.test_case "neg-binomial dominates empirical" `Slow test_negative_binomial_dominates_empirical;
        Alcotest.test_case "empirical rejects empty sample" `Quick test_empirical_rejects_empty_sample;
        Alcotest.test_case "empirical single trial is 0/1" `Quick test_empirical_single_trial;
        Alcotest.test_case "RWtoLeaf walk-length tail" `Slow test_rwtoleaf_walk_length_tail;
        Alcotest.test_case "waypoint density (Lemma 5.16)" `Quick test_waypoint_density_chernoff;
      ] );
  ]
