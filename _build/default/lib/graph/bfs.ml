let distances g v =
  let dist = Array.make (Graph.n g) max_int in
  let queue = Queue.create () in
  dist.(v) <- 0;
  Queue.add v queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    let d = dist.(u) in
    Array.iter
      (fun w ->
        if dist.(w) = max_int then begin
          dist.(w) <- d + 1;
          Queue.add w queue
        end)
      (Graph.neighbors g u)
  done;
  dist

let distances_upto g v ~radius =
  let dist = Hashtbl.create 64 in
  let queue = Queue.create () in
  Hashtbl.add dist v 0;
  Queue.add v queue;
  let out = ref [ (v, 0) ] in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    let d = Hashtbl.find dist u in
    if d < radius then
      Array.iter
        (fun w ->
          if not (Hashtbl.mem dist w) then begin
            Hashtbl.add dist w (d + 1);
            out := (w, d + 1) :: !out;
            Queue.add w queue
          end)
        (Graph.neighbors g u)
  done;
  List.rev !out

let ball g v ~radius = List.map fst (distances_upto g v ~radius)

let dist g u v =
  let d = (distances g u).(v) in
  if d = max_int then None else Some d

let eccentricity g v =
  Array.fold_left (fun acc d -> if d = max_int then acc else max acc d) 0 (distances g v)

let diameter g =
  Graph.fold_nodes g ~init:0 ~f:(fun acc v -> max acc (eccentricity g v))
