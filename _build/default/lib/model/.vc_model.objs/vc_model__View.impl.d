lib/model/view.ml: Fmt Vc_graph
