test/test_aux_problems.ml: Alcotest Array List Option Printf Vc_graph Vc_lcl Vc_model Vc_rng Volcomp
