module Splitmix = Vc_rng.Splitmix

let check_delta delta =
  if delta <= 0.0 || delta >= 1.0 then
    invalid_arg "Tail_bounds: delta must be in (0, 1)"

let chernoff_upper ~mu ~delta =
  check_delta delta;
  exp (-.mu *. delta *. delta /. 3.0)

let chernoff_lower ~mu ~delta =
  check_delta delta;
  exp (-.mu *. delta *. delta /. 2.0)

let negative_binomial_tail ~k ~p ~c =
  if c <= 1.0 then invalid_arg "Tail_bounds: c must exceed 1";
  if k < 1 then invalid_arg "Tail_bounds: k must be >= 1";
  if p <= 0.0 || p > 1.0 then invalid_arg "Tail_bounds: p must be in (0, 1]";
  exp (-.float_of_int k *. ((c -. 1.0) ** 2.0) /. (2.0 *. c))

let bernoulli rng p = Splitmix.float rng < p

let check_trials trials =
  if trials <= 0 then invalid_arg "Tail_bounds: trials must be >= 1"

let empirical_binomial_tail ~trials ~m ~p ~threshold ~seed =
  check_trials trials;
  let rng = Splitmix.create seed in
  let hits = ref 0 in
  for _ = 1 to trials do
    let y = ref 0 in
    for _ = 1 to m do
      if bernoulli rng p then incr y
    done;
    if threshold !y then incr hits
  done;
  float_of_int !hits /. float_of_int trials

let empirical_binomial_upper_tail ~trials ~m ~p ~delta ~seed =
  let mu = float_of_int m *. p in
  empirical_binomial_tail ~trials ~m ~p
    ~threshold:(fun y -> float_of_int y >= (1.0 +. delta) *. mu)
    ~seed

let empirical_binomial_lower_tail ~trials ~m ~p ~delta ~seed =
  let mu = float_of_int m *. p in
  empirical_binomial_tail ~trials ~m ~p
    ~threshold:(fun y -> float_of_int y <= (1.0 -. delta) *. mu)
    ~seed

let empirical_negative_binomial_tail ~trials ~k ~p ~c ~seed =
  check_trials trials;
  let rng = Splitmix.create seed in
  let cutoff = c *. float_of_int k /. p in
  let hits = ref 0 in
  for _ = 1 to trials do
    let successes = ref 0 in
    let steps = ref 0 in
    while !successes < k && float_of_int !steps <= cutoff do
      incr steps;
      if bernoulli rng p then incr successes
    done;
    if !successes < k then incr hits
  done;
  float_of_int !hits /. float_of_int trials
