lib/core/adversary_leaf.ml: Array Fmt Hashtbl Leaf_coloring List Vc_graph Vc_lcl Vc_model
