(** Sharded serving tier: a supervisor process that forks/execs [N]
    worker daemons and routes requests to them over per-worker
    socketpairs.

    Routing is by consistent hash ({!Ring}) of the request's
    [(problem, size, seed)] session key, so every warm world is resident
    on exactly one shard and repeat queries for an instance always hit
    the worker that already built it.  Workers run the ordinary
    single-connection {!Server} loop over the same {!Protocol} codec;
    the supervisor re-encodes the request with a unique internal id and,
    on reply, splices the client's id back into the reply bytes without
    re-encoding the payload — a sharded response is byte-for-byte the
    response a single-process server would have sent.

    Fault handling: a worker death (EOF or broken pipe on its channel)
    fails every in-flight request on that shard with a structured
    [worker_lost] error, reaps the child, respawns a replacement, and
    re-warms it by replaying the shard's warm-session ledger
    ({!Shard.warm_queries}) oldest-first — with a snapshot store
    configured the replay loads instances by mmap instead of
    rebuilding, and the [serve.shard.rewarm_snap] /
    [serve.shard.rewarm_build] counters record which path each
    completed re-warm took.  Other shards are undisturbed.
    Per-shard admission control sheds with [overloaded] once a shard has
    [queue_depth] requests in flight.

    [list] is answered locally (byte-identical payload); [stats]
    broadcasts to every live worker and merges the parts under
    ["cache"]/["metrics"] (supervisor's own, including the
    [serve.shard.*] counters) plus ["workers"] and a per-shard
    ["shards"] breakdown carrying each worker's pid, in-flight count,
    respawn count, warm-ledger size and its own stats payload. *)

val fork_spawn : (unit -> Handler.t) -> Shard.spawn
(** Workers are forked children running {!Server.run_conn} on a handler
    made {e in the child} by the supplied thunk.  Fork is only safe
    before any domain has been spawned in this process — test harnesses
    use this; the CLI uses {!exec_spawn}. *)

val exec_spawn :
  ?jobs:int -> ?snap_dir:string -> cache:int -> queue_depth:int -> string -> Shard.spawn
(** Workers are fresh processes: [exe serve --worker --cache N
    --queue-depth N -j jobs] (plus [--snap-dir DIR] when [snap_dir] is
    given, so every worker shares one snapshot store) with the
    socketpair end as stdin.  Safe regardless of domains. *)

val run :
  workers:int ->
  ?cache_capacity:int ->
  ?queue_depth:int ->
  ?vnodes:int ->
  spawn:Shard.spawn ->
  listen:Unix.file_descr ->
  unit ->
  int
(** Spawn [workers] shards and serve [listen] until a [shutdown]
    request; returns the number of replies written to clients.
    [cache_capacity] (default 8) sizes each worker's resident-instance
    cache and the supervisor's mirrored warm ledgers; [queue_depth]
    (default 64) bounds per-shard in-flight requests.  Closes [listen]
    and the worker channels, and reaps every child, before returning. *)
