(** Locally checkable labeling problems (paper Definitions 2.4 and 2.6).

    An LCL is a graph problem whose global validity is equivalent to
    validity in every radius-[c] neighborhood for a constant [c].  We
    represent a problem by its per-node local checker; {!check} then
    derives the global verifier by quantifying the checker over all
    nodes, which is exactly the LCL semantics.

    A {!solver} is a probe-model algorithm producing one node's output;
    the executor in {!Vc_model.Probe} accounts its DIST and VOL costs, so
    "the complexity of a problem" (Definition 2.4) is measured by running
    solvers from every node and checking the assembled output with the
    problem's own checker. *)

type ('i, 'o) t = {
  name : string;
  radius : int;
      (** the checkability radius [c]; informational (checkers receive
          the whole graph but must only inspect [N_v(radius)]). *)
  valid_at :
    Vc_graph.Graph.t ->
    input:(Vc_graph.Graph.node -> 'i) ->
    output:(Vc_graph.Graph.node -> 'o) ->
    Vc_graph.Graph.node ->
    (unit, string) result;
      (** Local validity at one node; [Error reason] explains the
          violation. *)
}

type violation = {
  node : Vc_graph.Graph.node;
  reason : string;
}

val pp_violation : Format.formatter -> violation -> unit

val check :
  ('i, 'o) t ->
  Vc_graph.Graph.t ->
  input:(Vc_graph.Graph.node -> 'i) ->
  output:(Vc_graph.Graph.node -> 'o) ->
  (unit, violation list) result
(** Global validity: the local checker holds at every node. *)

val is_valid :
  ('i, 'o) t ->
  Vc_graph.Graph.t ->
  input:(Vc_graph.Graph.node -> 'i) ->
  output:(Vc_graph.Graph.node -> 'o) ->
  bool

val with_name : ('i, 'o) t -> name:string -> ('i, 'o) t
(** The same checker under a different name — one LCL registered once
    per graph family (e.g. 4-colouring on torus grids and on d-regular
    graphs) without duplicating its [valid_at]. *)

(** {1 Solvers} *)

type ('i, 'o) solver = {
  solver_name : string;
  randomized : bool;
      (** randomized solvers require a {!Vc_rng.Randomness.t} at run
          time; deterministic ones must never call [rand_bit]. *)
  solve : 'i Vc_model.Probe.ctx -> 'o;
}

val solver : name:string -> randomized:bool -> ('i Vc_model.Probe.ctx -> 'o) -> ('i, 'o) solver

(** {1 Model relations} *)

val volume_bounds_from_distance : delta:int -> distance:int -> int * int
(** Lemma 2.5: a problem solvable in distance [T] on graphs of maximum
    degree [delta] has volume between [T] and [delta^T + 1] (the returned
    pair, capped at [max_int] on overflow). *)

val distance_lower_bound_from_volume : volume:int -> int
(** Lemma 2.5's converse direction: volume [m] implies the distance cost
    was at most [m]; hence a distance lower bound is a volume lower
    bound.  Returns the trivial translation (identity). *)
