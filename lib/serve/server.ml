module Pool = Vc_exec.Pool
module Json = Vc_obs.Json

(* --- listening sockets ------------------------------------------------------- *)

let listen_unix ~path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let listen_tcp ~port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  fd

(* --- connections ------------------------------------------------------------- *)

type conn = {
  fd : Unix.file_descr;
  dec : Protocol.decoder;
  mutable alive : bool;
}

let close_conn c =
  if c.alive then begin
    c.alive <- false;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

(* Blocking write of a whole reply; replies are small, and a peer that
   stops reading only stalls its own connection's replies. *)
let write_conn c s =
  if c.alive then
    try
      let len = String.length s in
      let off = ref 0 in
      while !off < len do
        off := !off + Unix.write_substring c.fd s !off (len - !off)
      done
    with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> close_conn c

type pending = {
  p_conn : conn;
  p_req : Protocol.request;
  p_arrival : float;  (** [Unix.gettimeofday] at frame completion *)
}

let expired p ~now =
  match p.p_req.Protocol.deadline_ms with
  | None -> false
  | Some d -> (now -. p.p_arrival) *. 1000. >= float_of_int d

(* --- the loop ---------------------------------------------------------------- *)

(* One loop serves both modes: [listen = Some fd] is the daemon
   (accepting forever until shutdown), [listen = None] with pre-wired
   [fds] is a supervisor worker (serving its socketpair until EOF or
   shutdown — when the last connection dies the worker is done). *)
let serve ~handler ?pool ?(queue_depth = 64) ?listen ?(fds = []) () =
  if queue_depth < 1 then invalid_arg "Server.run: queue_depth must be >= 1";
  let conns =
    ref (List.map (fun fd -> { fd; dec = Protocol.decoder (); alive = true }) fds)
  in
  let queue = Queue.create () in
  let answered = ref 0 in
  let stopping = ref false in
  let reply c json =
    write_conn c (Protocol.frame (Json.to_string json));
    incr answered
  in
  let reply_error c ~id ~code ~message =
    Handler.note_error code;
    reply c (Protocol.error_reply ~id ~code ~message)
  in
  let buf = Bytes.create 65536 in
  (* Drain every complete frame the connection has buffered; a stream
     that is malformed at the framing layer gets one terminal error. *)
  let rec drain_frames c =
    match Protocol.next_frame c.dec with
    | Ok None -> ()
    | Error msg ->
        reply_error c ~id:0 ~code:Protocol.Bad_request ~message:("bad frame: " ^ msg);
        close_conn c
    | Ok (Some body) ->
        let arrival = Unix.gettimeofday () in
        (match Json.parse body with
        | Error msg -> reply_error c ~id:0 ~code:Protocol.Bad_request ~message:msg
        | Ok v -> (
            match Protocol.request_of_json v with
            | Error msg ->
                let id =
                  match Option.bind (Json.member v "id") Json.to_int with
                  | Some id when id >= 0 -> id
                  | _ -> 0
                in
                reply_error c ~id ~code:Protocol.Bad_request ~message:msg
            | Ok req ->
                Handler.note_request req.Protocol.query;
                if Queue.length queue >= queue_depth then
                  reply_error c ~id:req.Protocol.id ~code:Protocol.Overloaded
                    ~message:
                      (Printf.sprintf "queue full (%d requests pending)" (Queue.length queue))
                else Queue.add { p_conn = c; p_req = req; p_arrival = arrival } queue));
        if c.alive then drain_frames c
  in
  let read_conn c =
    match Unix.read c.fd buf 0 (Bytes.length buf) with
    | 0 -> close_conn c
    | n ->
        Protocol.feed c.dec buf n;
        drain_frames c
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> close_conn c
  in
  (* Dispatch the whole queue as one batch: deadline triage and
     [Handler.prepare] on this domain, compute thunks on the pool,
     replies in arrival order. *)
  let dispatch () =
    if not (Queue.is_empty queue) then begin
      let now = Unix.gettimeofday () in
      let batch = List.of_seq (Queue.to_seq queue) in
      Queue.clear queue;
      let thunks =
        List.map
          (fun p ->
            if expired p ~now then fun () ->
              Error
                ( Protocol.Deadline_exceeded,
                  Printf.sprintf "deadline of %d ms expired before dispatch"
                    (Option.value p.p_req.Protocol.deadline_ms ~default:0) )
            else
              match Handler.prepare handler p.p_req.Protocol.query with
              | thunk -> fun () -> ( try thunk () with exn -> Error (Protocol.Server_error, Printexc.to_string exn))
              | exception exn ->
                  let msg = Printexc.to_string exn in
                  fun () -> Error (Protocol.Server_error, msg))
          batch
      in
      let results =
        match pool with
        | Some p when List.length thunks > 1 -> Pool.map p (fun f -> f ()) thunks
        | _ -> List.map (fun f -> f ()) thunks
      in
      List.iter2
        (fun p result ->
          let id = p.p_req.Protocol.id in
          (match result with
          | Ok payload -> reply p.p_conn (Protocol.ok_reply ~id payload)
          | Error (code, message) -> reply_error p.p_conn ~id ~code ~message);
          let us =
            int_of_float (Float.max 0. ((Unix.gettimeofday () -. p.p_arrival) *. 1e6))
          in
          Handler.observe_latency ~kind:(Protocol.kind p.p_req.Protocol.query) us;
          if p.p_req.Protocol.query = Protocol.Shutdown then stopping := true)
        batch results
    end
  in
  let serving () =
    (not !stopping)
    && (listen <> None || List.exists (fun c -> c.alive) !conns)
  in
  while serving () do
    conns := List.filter (fun c -> c.alive) !conns;
    let watch =
      (match listen with Some l -> [ l ] | None -> []) @ List.map (fun c -> c.fd) !conns
    in
    let readable, _, _ = Unix.select watch [] [] (-1.0) in
    (match listen with
    | Some l when List.mem l readable ->
        let fd, _ = Unix.accept ~cloexec:true l in
        conns := { fd; dec = Protocol.decoder (); alive = true } :: !conns
    | _ -> ());
    List.iter (fun c -> if c.alive && List.mem c.fd readable then read_conn c) !conns;
    dispatch ()
  done;
  List.iter close_conn !conns;
  (match listen with
  | Some l -> ( try Unix.close l with Unix.Unix_error _ -> ())
  | None -> ());
  !answered

let run ~handler ?pool ?queue_depth ~listen () = serve ~handler ?pool ?queue_depth ~listen ()

let run_conn ~handler ?pool ?queue_depth ~fd () = serve ~handler ?pool ?queue_depth ~fds:[ fd ] ()
