(* @snap-smoke driver: the snapshot store must work end to end through
   the real binaries, not just in-process.  The run builds a store with
   the `volcomp snap` CLI, byte-verifies it with `snap verify`, boots a
   2-worker sharded `volcomp serve --snap-dir` tier against it, and
   demands:

     - the first Warm of the pre-built session answers source "snap"
       (the mmap-load path, not a rebuild);
     - after SIGKILL of the worker holding the session, the respawned
       worker re-warms from the store (its serve.snap.hits counter and
       the supervisor's serve.shard.rewarm_snap counter both move);
     - the session stays resident afterwards (source "cache").

   The emitted JSON (outcome flags plus the tier's final merged stats
   payload) is validated by the strict independent parser in the dune
   alias. *)

module Json = Vc_obs.Json
module Protocol = Vc_serve.Protocol
module Ring = Vc_serve.Ring

let problem = "DegreeParity"

exception Failed of string

let failf fmt = Printf.ksprintf (fun m -> raise (Failed m)) fmt

(* --- subprocesses -------------------------------------------------------------- *)

let run_cmd argv =
  let pid =
    Unix.create_process argv.(0) argv Unix.stdin Unix.stdout Unix.stderr
  in
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED c -> failf "%s exited %d" (String.concat " " (Array.to_list argv)) c
  | _, (Unix.WSIGNALED s | Unix.WSTOPPED s) ->
      failf "%s killed by signal %d" (String.concat " " (Array.to_list argv)) s

(* --- tiny client ---------------------------------------------------------------- *)

let send_raw fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

let send_request fd req =
  send_raw fd (Protocol.frame (Json.to_string (Protocol.request_to_json req)))

let read_body fd =
  let dec = Protocol.decoder () in
  let buf = Bytes.create 4096 in
  let rec go () =
    match Protocol.next_frame dec with
    | Ok (Some body) -> body
    | Error msg -> failf "reply framing: %s" msg
    | Ok None -> (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> failf "server closed the connection"
        | n ->
            Protocol.feed dec buf n;
            go ())
  in
  go ()

let parse_reply body =
  match Result.bind (Json.parse body) Protocol.reply_of_json with
  | Ok r -> r
  | Error msg -> failf "unparseable reply %s: %s" body msg

let ok_payload body =
  match (parse_reply body).Protocol.body with
  | Ok payload -> payload
  | Error (c, m) -> failf "request errored %s: %s" (Protocol.code_to_string c) m

let ask fd id query =
  send_request fd { Protocol.id; deadline_ms = None; query };
  read_body fd

(* --- stats plumbing ------------------------------------------------------------- *)

let counter_of payload name =
  Option.value ~default:0
    (Option.bind
       (Option.bind
          (Option.bind (Json.member payload "metrics") (fun m -> Json.member m "counters"))
          (fun c -> Json.member c name))
       Json.to_int)

let shard_row payload shard =
  match Json.member payload "shards" with
  | Some (Json.List rows) -> (
      match
        List.find_opt
          (fun row -> Option.bind (Json.member row "shard") Json.to_int = Some shard)
          rows
      with
      | Some row -> row
      | None -> failf "no stats row for shard %d" shard)
  | _ -> failf "stats payload lacks shards rows"

let row_int row key =
  match Option.bind (Json.member row key) Json.to_int with
  | Some v -> v
  | None -> failf "stats row lacks %s" key

let row_alive row =
  match Option.bind (Json.member row "alive") Json.to_bool with
  | Some b -> b
  | None -> failf "stats row lacks alive"

let worker_stats row =
  match Json.member row "stats" with
  | Some s -> s
  | None -> failf "stats row lacks worker stats"

(* --- the smoke ------------------------------------------------------------------- *)

let with_tmp_dir prefix f =
  let dir = Filename.temp_file prefix "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let finally () =
    (match Sys.readdir dir with
    | names ->
        Array.iter
          (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
          names
    | exception Sys_error _ -> ());
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally (fun () -> f dir)

let connect_with_retry path =
  let deadline = Unix.gettimeofday () +. 10. in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when Unix.gettimeofday () < deadline ->
        Unix.close fd;
        ignore (Unix.select [] [] [] 0.05 : _ * _ * _);
        go ()
    | exception e ->
        Unix.close fd;
        raise e
  in
  go ()

let one_smoke ~exe ~size ~seed =
  with_tmp_dir "vc_snap_store" @@ fun store_dir ->
  with_tmp_dir "vc_snap_sock" @@ fun sock_dir ->
  (* 1. build the store from the CLI, then byte-verify it *)
  run_cmd
    [|
      exe; "snap"; "build"; "--dir"; store_dir; "--only"; problem; "--size";
      string_of_int size; "--seed"; Int64.to_string seed;
    |];
  run_cmd [| exe; "snap"; "verify"; "--dir"; store_dir |];
  (* 2. boot a sharded tier against it *)
  let sock = Filename.concat sock_dir "s.sock" in
  let server_pid =
    Unix.create_process exe
      [| exe; "serve"; "--socket"; sock; "--workers"; "2"; "--snap-dir"; store_dir |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  let finally () =
    (try Unix.kill server_pid Sys.sigkill with Unix.Unix_error _ -> ());
    try ignore (Unix.waitpid [] server_pid : int * Unix.process_status)
    with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally @@ fun () ->
  let fd = connect_with_retry sock in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let q_warm = Protocol.Warm { problem; size; seed } in
  (* 3. the pre-built session must come off the store, not a rebuild *)
  let source_of body =
    match Option.bind (Json.member (ok_payload body) "source") Json.to_str with
    | Some s -> s
    | None -> failf "warm reply lacks source"
  in
  let first_source = source_of (ask fd 1 q_warm) in
  if first_source <> "snap" then failf "first warm answered %S, want \"snap\"" first_source;
  (* 4. kill the worker holding the session *)
  let shard = Ring.lookup_session (Ring.create [ 0; 1 ]) ~problem ~size ~seed in
  let stats0 = ok_payload (ask fd 2 Protocol.Stats) in
  let victim = row_int (shard_row stats0 shard) "pid" in
  Unix.kill victim Sys.sigkill;
  (* 5. wait for the respawn and the snapshot re-warm to land *)
  let deadline = Unix.gettimeofday () +. 10. in
  let rec settle id =
    let stats = ok_payload (ask fd id Protocol.Stats) in
    let row = shard_row stats shard in
    if
      row_alive row
      && row_int row "respawns" = 1
      && counter_of stats "serve.shard.rewarm_snap" >= 1
      && counter_of (worker_stats row) "serve.snap.hits" >= 1
    then (stats, id)
    else if Unix.gettimeofday () > deadline then
      failf "re-warm never hit the store: respawns %d, rewarm_snap %d, worker snap hits %d"
        (row_int row "respawns")
        (counter_of stats "serve.shard.rewarm_snap")
        (counter_of (worker_stats row) "serve.snap.hits")
    else begin
      ignore (Unix.select [] [] [] 0.05 : _ * _ * _);
      settle (id + 1)
    end
  in
  let final_stats, id = settle 3 in
  if counter_of final_stats "serve.shard.rewarm_build" > 0 then
    failf "re-warm rebuilt %d session(s) despite the store"
      (counter_of final_stats "serve.shard.rewarm_build");
  (* 6. the session is resident again *)
  let post_source = source_of (ask fd (id + 1) q_warm) in
  if post_source <> "cache" then
    failf "post-recovery warm answered %S, want \"cache\"" post_source;
  ignore (ok_payload (ask fd (id + 2) Protocol.Shutdown) : Json.t);
  (match Unix.waitpid [] server_pid with
  | _, Unix.WEXITED 0 -> ()
  | _, st ->
      let d =
        match st with
        | Unix.WEXITED c -> Printf.sprintf "exit %d" c
        | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
        | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s
      in
      failf "serve daemon did not shut down cleanly (%s)" d);
  (first_source, post_source, final_stats)

(* --- driver ---------------------------------------------------------------------- *)

let usage () =
  prerr_endline "usage: snap_smoke --exe VOLCOMP [--json PATH] [--size N] [--seed N]";
  exit 2

let () =
  let exe = ref None and json_path = ref None and size = ref 16 and seed = ref 42L in
  let rec parse = function
    | [] -> ()
    | "--exe" :: p :: rest ->
        exe := Some p;
        parse rest
    | "--json" :: p :: rest ->
        json_path := Some p;
        parse rest
    | "--size" :: n :: rest ->
        (match int_of_string_opt n with Some v when v > 0 -> size := v | _ -> usage ());
        parse rest
    | "--seed" :: n :: rest ->
        (match Int64.of_string_opt n with Some v -> seed := v | _ -> usage ());
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let exe = match !exe with Some e -> e | None -> usage () in
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let outcome =
    match one_smoke ~exe ~size:!size ~seed:!seed with
    | first, post, stats -> Ok (first, post, stats)
    | exception Failed msg -> Error msg
    | exception e -> Error (Printexc.to_string e)
  in
  let ok = Result.is_ok outcome in
  let summary =
    match outcome with
    | Ok (first, post, stats) ->
        Json.Obj
          [
            ("ok", Json.Bool true);
            ("problem", Json.String problem);
            ("size", Json.Int !size);
            ("first_warm_source", Json.String first);
            ("post_recovery_source", Json.String post);
            ("final_stats", stats);
          ]
    | Error msg -> Json.Obj [ ("ok", Json.Bool false); ("error", Json.String msg) ]
  in
  (match !json_path with
  | Some path ->
      let oc = open_out path in
      output_string oc (Json.to_string summary);
      output_char oc '\n';
      close_out oc
  | None -> ());
  (match outcome with
  | Ok (first, post, _) ->
      Printf.printf
        "snap-smoke: store built by CLI, first warm %S, killed worker re-warmed from \
         snapshot, post-recovery warm %S\n"
        first post
  | Error msg -> Printf.eprintf "snap-smoke: FAIL: %s\n" msg);
  exit (if ok then 0 else 1)
