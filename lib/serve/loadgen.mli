(** Closed-loop load generator for the serving daemon.

    [clients] connections each keep exactly one request in flight; every
    round, all clients write their next request before any reply is read,
    so the server's select loop sees them together and dispatches them as
    one batch.  The request plan — kinds drawn from a weighted [mix],
    instances drawn from the registry's quick sizes over a small set of
    derived seeds (to exercise both cache hits and evictions), origins
    uniform over the instance's nodes — is a deterministic function of
    [seed].

    With [verify] on, every successful reply's payload is re-encoded and
    compared {e byte-for-byte} against the answer computed in-process by
    a twin {!Handler} over the same registry: the wire adds latency, not
    meaning.  ([stats] replies are structurally checked instead — the
    daemon's metrics legitimately differ from the twin's.)

    Latency is measured per request from frame write to reply decode and
    reported as nearest-rank p50/p95/p99 per request kind. *)

module Json = Vc_obs.Json

type config = {
  clients : int;
  requests : int;  (** total, spread round-robin over the clients *)
  mix : (string * int) list;  (** request kind → weight, weights > 0 *)
  seed : int64;
  deadline_ms : int option;  (** attached to every generated request *)
  verify : bool;
  shutdown : bool;  (** finish with a [shutdown] request on client 0 *)
}

val default_mix : (string * int) list
(** [solve:1, probe:4, trace:1, list:1, stats:1]. *)

val parse_mix : string -> ((string * int) list, string) result
(** Parse ["kind:weight,kind:weight,…"] (weight defaults to 1); kinds
    are [solve]/[probe]/[trace]/[list]/[stats]. *)

type percentiles = {
  l_count : int;
  l_p50_us : int;
  l_p95_us : int;
  l_p99_us : int;
  l_max_us : int;
}

type summary = {
  s_clients : int;
  s_requests : int;  (** requests sent (excluding the final shutdown) *)
  s_ok : int;
  s_errors : (string * int) list;  (** error code → count, sorted *)
  s_mismatches : int;  (** verified replies that differed from the twin *)
  s_wall_s : float;
  s_latency : (string * percentiles) list;  (** per kind, sorted *)
  s_server_stats : Json.t option;  (** the daemon's final [stats] payload *)
}

val run : connect:(unit -> Unix.file_descr) -> config -> (summary, string) result
(** Drive the daemon reachable via [connect] (called once per client).
    [Error] means the run could not complete (connection refused, stream
    closed mid-reply) — protocol-level error replies are counted in the
    summary, not fatal. *)

val summary_to_json : summary -> Json.t
val pp_summary : Format.formatter -> summary -> unit
