(* Tests for HH-THC(k, l) (paper Section 6.1): the dispatch problem that
   combines Hierarchical-THC(l) with Hybrid-THC(k). *)

module Graph = Vc_graph.Graph
module Probe = Vc_model.Probe
module Lcl = Vc_lcl.Lcl
module HH = Volcomp.Hh_thc
module H = Volcomp.Hierarchical_thc
module Hy = Volcomp.Hybrid_thc
module Randomness = Vc_rng.Randomness

let solve_all ?randomness inst (solver : (HH.node_input, HH.output) Lcl.solver) =
  let world = HH.world inst in
  let n = Graph.n inst.HH.graph in
  let out =
    Array.init n (fun v ->
        match (Probe.run ~world ?randomness ~origin:v solver.Lcl.solve).Probe.output with
        | Some o -> o
        | None -> Alcotest.fail "solver aborted")
  in
  out

let check_valid inst out =
  match
    Lcl.check
      (HH.problem ~k:inst.HH.k ~l:inst.HH.l)
      inst.HH.graph ~input:(HH.input inst)
      ~output:(fun v -> out.(v))
  with
  | Ok () -> ()
  | Error vs ->
      Alcotest.failf "invalid (%d violations), first: %a" (List.length vs) Lcl.pp_violation
        (List.hd vs)

let test_mixed_instance_shape () =
  let inst = HH.uniform_instance ~k:2 ~l:3 ~size_hint:300 ~seed:1L in
  let bits0 =
    Array.fold_left (fun acc (i : HH.node_input) -> if i.HH.bit then acc else acc + 1) 0
      inst.HH.labels
  in
  Alcotest.(check bool) "has bit-0 nodes" true (bits0 > 0);
  Alcotest.(check bool) "has bit-1 nodes" true (bits0 < Graph.n inst.HH.graph);
  Alcotest.(check bool) "disconnected union" false (Graph.is_connected inst.HH.graph)

let test_distance_solver_valid () =
  List.iter
    (fun (k, l) ->
      let inst = HH.uniform_instance ~k ~l ~size_hint:300 ~seed:2L in
      let out = solve_all inst (HH.solve_distance ~k ~l) in
      check_valid inst out)
    [ (2, 2); (2, 3); (3, 3) ]

let test_volume_deterministic_valid () =
  let inst = HH.uniform_instance ~k:2 ~l:3 ~size_hint:300 ~seed:3L in
  let out = solve_all inst (HH.solve_volume_deterministic ~k:2 ~l:3) in
  check_valid inst out

let test_volume_waypoint_valid () =
  let inst = HH.uniform_instance ~k:2 ~l:3 ~size_hint:300 ~seed:4L in
  let rand = Randomness.create ~seed:5L ~n:(Graph.n inst.HH.graph) () in
  let out = solve_all ~randomness:rand inst (HH.solve_volume_waypoint ~k:2 ~l:3 ()) in
  check_valid inst out

let test_rejects_k_above_l () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (HH.uniform_instance ~k:3 ~l:2 ~size_hint:100 ~seed:1L);
       false
     with Invalid_argument _ -> true)

let test_hard_mixed_instance () =
  (* combine a hard hierarchical side with a hard hybrid side *)
  let hier, _ = H.hard_instance ~k:3 ~target_n:600 ~seed:6L in
  let hybrid, _ = Hy.hard_instance ~k:2 ~target_n:400 ~seed:7L in
  let inst = HH.mixed_instance ~hier ~hybrid in
  let out = solve_all inst (HH.solve_volume_deterministic ~k:2 ~l:3) in
  check_valid inst out;
  let rand = Randomness.create ~seed:8L ~n:(Graph.n inst.HH.graph) () in
  let out_r = solve_all ~randomness:rand inst (HH.solve_volume_waypoint ~k:2 ~l:3 ()) in
  check_valid inst out_r

let suites =
  [
    ( "hhthc",
      [
        Alcotest.test_case "mixed instance shape" `Quick test_mixed_instance_shape;
        Alcotest.test_case "distance solver valid" `Quick test_distance_solver_valid;
        Alcotest.test_case "volume deterministic valid" `Quick test_volume_deterministic_valid;
        Alcotest.test_case "volume way-point valid" `Quick test_volume_waypoint_valid;
        Alcotest.test_case "rejects k > l" `Quick test_rejects_k_above_l;
        Alcotest.test_case "hard mixed instance" `Quick test_hard_mixed_instance;
      ] );
  ]
