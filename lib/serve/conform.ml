module Json = Vc_obs.Json
module Trace = Vc_obs.Trace
module Registry = Vc_check.Registry

let ( let* ) = Result.bind

(* Push one request through the same codec path the daemon uses:
   encode, frame, incremental decode, parse, handle, encode the reply,
   parse it back.  Returns the reply body. *)
let round_trip handler req =
  let wire = Protocol.frame (Json.to_string (Protocol.request_to_json req)) in
  let dec = Protocol.decoder () in
  Protocol.feed dec (Bytes.of_string wire) (String.length wire);
  let* body =
    match Protocol.next_frame dec with
    | Ok (Some body) -> Ok body
    | Ok None -> Error "request frame did not decode in one piece"
    | Error msg -> Error ("request framing: " ^ msg)
  in
  let* v = Json.parse body in
  let* parsed = Protocol.request_of_json v in
  if parsed <> req then Error "request changed across encode/decode"
  else
    let reply_json =
      match Handler.handle handler parsed.Protocol.query with
      | Ok payload -> Protocol.ok_reply ~id:parsed.Protocol.id payload
      | Error (code, message) -> Protocol.error_reply ~id:parsed.Protocol.id ~code ~message
    in
    let reply_wire = Protocol.frame (Json.to_string reply_json) in
    let rdec = Protocol.decoder () in
    Protocol.feed rdec (Bytes.of_string reply_wire) (String.length reply_wire);
    let* rbody =
      match Protocol.next_frame rdec with
      | Ok (Some b) -> Ok b
      | Ok None -> Error "reply frame did not decode in one piece"
      | Error msg -> Error ("reply framing: " ^ msg)
    in
    let* rv = Json.parse rbody in
    let* reply = Protocol.reply_of_json rv in
    if reply.Protocol.r_id <> req.Protocol.id then
      Error
        (Printf.sprintf "reply id %d for request id %d" reply.Protocol.r_id req.Protocol.id)
    else Ok reply.Protocol.body

let expect_payload handler ~what query ~direct =
  let req = { Protocol.id = 1; deadline_ms = None; query } in
  let* body = round_trip handler req in
  match body with
  | Error (code, msg) ->
      Error (Printf.sprintf "%s: error %s (%s)" what (Protocol.code_to_string code) msg)
  | Ok payload ->
      let served = Json.to_string payload in
      let wanted = Json.to_string direct in
      if served <> wanted then
        Error
          (Printf.sprintf "%s: served payload differs from direct computation\n  served: %s\n  direct: %s"
             what served wanted)
      else Ok ()

let expect_error handler ~what query ~code =
  let req = { Protocol.id = 2; deadline_ms = None; query } in
  let* body = round_trip handler req in
  match body with
  | Error (c, _) when c = code -> Ok ()
  | Error (c, _) ->
      Error
        (Printf.sprintf "%s: expected error %s, got %s" what (Protocol.code_to_string code)
           (Protocol.code_to_string c))
  | Ok _ ->
      Error (Printf.sprintf "%s: expected error %s, got a payload" what
           (Protocol.code_to_string code))

let probe (e : Registry.entry) ~size ~seed =
  let handler = Handler.create ~entries:[ e ] () in
  let direct = e.Registry.make ~size ~seed () in
  let n = direct.Registry.t_n in
  let problem = e.Registry.name in
  let* () =
    expect_payload handler ~what:"solve"
      (Protocol.Solve { problem; size; seed })
      ~direct:(Protocol.solve_payload ~problem ~n (direct.Registry.run_solvers ()))
  in
  let origins = List.sort_uniq compare [ 0; n / 2; n - 1 ] in
  let* () =
    List.fold_left
      (fun acc origin ->
        let* () = acc in
        let* summary =
          Result.map_error (fun m -> "direct probe: " ^ m)
            (direct.Registry.probe_origin ~origin ())
        in
        let* () =
          expect_payload handler
            ~what:(Printf.sprintf "probe origin %d" origin)
            (Protocol.Probe { problem; size; seed; origin })
            ~direct:(Protocol.probe_payload ~problem ~origin summary)
        in
        let ring = Trace.ring () in
        let* tsummary =
          Result.map_error (fun m -> "direct trace: " ^ m)
            (direct.Registry.probe_origin ~trace:ring ~origin ())
        in
        expect_payload handler
          ~what:(Printf.sprintf "trace origin %d" origin)
          (Protocol.Trace { problem; size; seed; origin })
          ~direct:(Protocol.trace_payload ~problem ~origin tsummary (Trace.events ring)))
      (Ok ()) origins
  in
  let* () =
    expect_payload handler ~what:"warm"
      (Protocol.Warm { problem; size; seed })
      ~direct:(Protocol.warm_payload ~problem ~size ~n ~source:"cache")
  in
  let* () =
    expect_error handler ~what:"unknown problem"
      (Protocol.Solve { problem = "no-such-problem"; size; seed })
      ~code:Protocol.Unknown_problem
  in
  expect_error handler ~what:"out-of-range origin"
    (Protocol.Probe { problem; size; seed; origin = n })
    ~code:Protocol.Bad_origin

(* --- the sharded oracle probe ------------------------------------------------- *)

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

let read_body fd dec buf =
  let rec go () =
    match Protocol.next_frame dec with
    | Ok (Some body) -> Ok body
    | Error msg -> Error ("reply framing: " ^ msg)
    | Ok None -> (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> Error "supervisor closed the connection mid-reply"
        | n ->
            Protocol.feed dec buf n;
            go ())
  in
  go ()

(* The supervisor binds its socket after spawning workers; retry until
   it is accepting (a stale temp file connects with ECONNREFUSED or
   ENOTSOCK until then). *)
let connect_retry path =
  let rec go tries =
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Ok fd
    | exception
        Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT | Unix.ENOTSOCK), _, _) ->
        Unix.close fd;
        if tries <= 0 then Error "supervisor did not start accepting connections"
        else begin
          ignore (Unix.select [] [] [] 0.01);
          go (tries - 1)
        end
  in
  go 1000

let shard_probe ~exe ~workers (e : Registry.entry) ~size ~seed =
  let twin = Handler.create () in
  let problem = e.Registry.name in
  let* n = Result.map_error snd (Handler.instance_n twin ~problem ~size ~seed) in
  let origins = List.sort_uniq compare [ 0; n / 2; n - 1 ] in
  let corpus =
    [ Protocol.Solve { problem; size; seed }; Protocol.Warm { problem; size; seed } ]
    @ List.map (fun origin -> Protocol.Probe { problem; size; seed; origin }) origins
    @ List.map (fun origin -> Protocol.Trace { problem; size; seed; origin }) origins
    @ [
        Protocol.List;
        Protocol.Solve { problem = "no-such-problem"; size; seed };
        Protocol.Probe { problem; size; seed; origin = n };
      ]
  in
  let socket = Filename.temp_file "volcomp-shard" ".sock" in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR; Unix.O_CLOEXEC ] 0 in
  let pid =
    Unix.create_process exe
      [| exe; "serve"; "--workers"; string_of_int workers; "--socket"; socket |]
      devnull devnull Unix.stderr
  in
  Unix.close devnull;
  let conn = ref None in
  let finally () =
    (match !conn with Some fd -> (try Unix.close fd with Unix.Unix_error _ -> ()) | None -> ());
    (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
    (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
    try Unix.unlink socket with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally (fun () ->
      let* fd = connect_retry socket in
      conn := Some fd;
      let dec = Protocol.decoder () in
      let buf = Bytes.create 65536 in
      let ask id query =
        write_all fd
          (Protocol.frame
             (Json.to_string (Protocol.request_to_json { Protocol.id; deadline_ms = None; query })));
        read_body fd dec buf
      in
      (* every reply must be, byte for byte, what a single-process
         server over the full registry would have sent *)
      let* () =
        List.fold_left
          (fun acc (i, q) ->
            let* () = acc in
            let id = i + 1 in
            let expected =
              Json.to_string
                (match Handler.handle twin q with
                | Ok payload -> Protocol.ok_reply ~id payload
                | Error (code, message) -> Protocol.error_reply ~id ~code ~message)
            in
            let* got = ask id q in
            if got <> expected then
              Error
                (Printf.sprintf
                   "sharded reply %d (%s) differs from single-process bytes\n  sharded: %s\n  direct:  %s"
                   id (Protocol.kind q) got expected)
            else Ok ())
          (Ok ())
          (List.mapi (fun i q -> (i, q)) corpus)
      in
      (* the merged stats must report every worker alive *)
      let stats_id = List.length corpus + 1 in
      let* sbody = ask stats_id Protocol.Stats in
      let* sv = Json.parse sbody in
      let* reply = Protocol.reply_of_json sv in
      let* () =
        match reply.Protocol.body with
        | Error (code, msg) ->
            Error (Printf.sprintf "stats: error %s (%s)" (Protocol.code_to_string code) msg)
        | Ok payload -> (
            match Json.member payload "shards" with
            | Some (Json.List rows) when List.length rows = workers ->
                if
                  List.for_all
                    (fun row -> Json.member row "alive" = Some (Json.Bool true))
                    rows
                then Ok ()
                else Error "stats: a worker is reported dead"
            | _ -> Error (Printf.sprintf "stats: expected %d shard rows" workers))
      in
      let* _bye = ask (stats_id + 1) Protocol.Shutdown in
      Ok ())
