lib/core/promise_leaf.mli: Leaf_coloring Vc_graph Vc_lcl
