(** Versioned binary instance snapshots.

    A snapshot is a checksummed header plus raw [Iarr] (bigarray)
    segments: the CSR rows of a graph, label rows, anything flat.
    {!write} streams the segments to disk; {!load} maps the whole file
    with [Unix.map_file] and hands back zero-copy views — the O(1),
    page-lazy path the serving tier rides — while {!verify} additionally
    re-checksums every segment byte.

    Decoding is total: every malformed input — truncated file, torn
    header, bad checksum, wrong version, foreign byte order — comes back
    as a structured {!error}, never an exception or a crash. *)

module Iarr = Vc_graph.Iarr

val current_version : int

type segment = {
  seg_name : string;
  seg_off : int;  (** word offset from the start of the file *)
  seg_len : int;  (** length in words *)
  seg_sum : int64;  (** FNV-1a 64 of the segment's bytes *)
}

type header = {
  version : int;
  builder_version : string;
      (** Invalidation token: bump it whenever any instance builder's
          output changes and every existing snapshot becomes stale. *)
  problem : string;
  size : int;
  seed : int64;
  n : int;  (** node count of the snapshotted instance *)
  segments : segment list;
}

type error =
  | Truncated of string
  | Bad_magic
  | Bad_version of int
  | Bad_byte_order
  | Bad_checksum of string
  | Bad_header of string
  | Io of string

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

val fnv_string : string -> int64
(** FNV-1a 64 of a string — the checksum function used throughout the
    format, exposed for key hashing in {!Store}. *)

val encode_header : header -> string
(** The header blob (without the file preamble).  [version] is carried
    by the preamble, not the blob. *)

val decode_header : ?version:int -> string -> (header, error) result
(** Inverse of {!encode_header}; [version] (default
    {!current_version}) fills the decoded record's [version] field.
    Total: malformed blobs return [Error (Bad_header _)]. *)

val write :
  path:string ->
  builder_version:string ->
  problem:string ->
  size:int ->
  seed:int64 ->
  n:int ->
  segments:(string * Iarr.t) list ->
  (unit, error) result
(** Write a snapshot to [path] (not atomic — {!Store.publish} wraps this
    with a temp file and rename). *)

type loaded = {
  hdr : header;
  data : Iarr.t;  (** the whole file as one mapped word array *)
}

val seg_find : loaded -> string -> Iarr.t option
(** Zero-copy view of a named segment of the mapped file. *)

val load : path:string -> (loaded, error) result
(** Map the file and validate preamble, header checksum and segment
    bounds — O(1) in the payload size; segment bytes fault in lazily as
    they are touched and are shared across processes via the page
    cache.  Segment {e checksums} are not recomputed here; see
    {!verify}. *)

val inspect : path:string -> (header, error) result
(** {!load}'s validation without mapping the payload. *)

val verify : path:string -> (header, error) result
(** {!inspect} plus a byte-level re-checksum of every segment. *)
