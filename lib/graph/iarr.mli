(** Flat int arrays on [Bigarray.Array1] (int, c_layout).

    The CSR rows of {!Graph.t} and the pointer rows of {!Tree_labels.t}
    live in these so that snapshots ([lib/snap]) are raw array bytes
    loadable by [Unix.map_file]: a mapped region is itself a valid
    {!t}, shared read-only across processes through the page cache.

    Indexing supports the standard bigarray syntax [a.{i}] and
    [a.{i} <- x]; {!unsafe_get} is a single unchecked load, matching
    [Array.unsafe_get]'s cost in hot loops. *)

type t = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

val create : int -> t
(** Uninitialized. *)

val make : int -> int -> t
(** [make n x] is [n] cells all holding [x]. *)

val length : t -> int
val get : t -> int -> int
val set : t -> int -> int -> unit
val unsafe_get : t -> int -> int
val unsafe_set : t -> int -> int -> unit
val of_array : int array -> t
val to_array : t -> int array
val init : int -> (int -> int) -> t
val copy : t -> t

val sub : t -> pos:int -> len:int -> t
(** A view sharing the underlying storage (no copy). *)

val fill : t -> int -> unit
val equal : t -> t -> bool
val iter : (int -> unit) -> t -> unit
val pp : Format.formatter -> t -> unit
