(** The tail bounds of paper Section 2.6, as checkable formulas.

    Lemma 2.11 (Chernoff): for independent 0/1 summands with mean µ,
    [P(Y >= (1+δ)µ) <= exp(-µδ²/3)] and [P(Y <= (1-δ)µ) <= exp(-µδ²/2)]
    for 0 < δ < 1.

    Lemma 2.12 (negative binomial): for N ~ N(k, p) — the number of
    Bernoulli(p) trials needed to collect k successes —
    [P(N > c·k/p) <= exp(-k(c-1)²/(2c))] for c > 1.

    The paper uses Lemma 2.12 to bound the length of the RWtoLeaf random
    walk (Proposition 3.10) and Lemma 2.11 for the way-point density
    (Lemma 5.16).  The [empirical_*] estimators simulate the experiments
    so tests can verify that the bounds really dominate the observed
    tails. *)

val chernoff_upper : mu:float -> delta:float -> float
(** The bound of Lemma 2.11(3). @raise Invalid_argument unless 0 < δ < 1. *)

val chernoff_lower : mu:float -> delta:float -> float
(** The bound of Lemma 2.11(4). *)

val negative_binomial_tail : k:int -> p:float -> c:float -> float
(** The bound of Lemma 2.12. @raise Invalid_argument unless c > 1,
    k >= 1 and 0 < p <= 1. *)

val empirical_binomial_upper_tail :
  trials:int -> m:int -> p:float -> delta:float -> seed:int64 -> float
(** Estimate [P(Y >= (1+δ)µ)] for [Y = sum of m Bernoulli(p)] by
    simulation.  @raise Invalid_argument if [trials <= 0] (an empty
    sample has no empirical frequency, not frequency [nan]). *)

val empirical_binomial_lower_tail :
  trials:int -> m:int -> p:float -> delta:float -> seed:int64 -> float

val empirical_negative_binomial_tail :
  trials:int -> k:int -> p:float -> c:float -> seed:int64 -> float
(** Estimate [P(N > c·k/p)] by simulation.
    @raise Invalid_argument if [trials <= 0]. *)
