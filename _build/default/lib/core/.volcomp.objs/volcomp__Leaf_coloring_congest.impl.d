lib/core/leaf_coloring_congest.ml: Array Leaf_coloring List Probe_tree Vc_graph Vc_model
