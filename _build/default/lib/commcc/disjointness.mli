(** The set-disjointness function (paper Section 2.5).

    [disj(x, y) = 1] iff the bit vectors [x] and [y] share no common 1.
    Its randomized two-party communication complexity is Ω(N)
    (Kalyanasundaram–Schnitger; Razborov), even under the promise that
    the intersection has size at most one.  The paper reduces
    BalancedTree to disjointness: low-volume algorithms for BalancedTree
    would yield low-communication protocols for [disj]. *)

type t = {
  x : bool array;
  y : bool array;
}

val create : x:bool array -> y:bool array -> t
(** @raise Invalid_argument on length mismatch or empty vectors. *)

val size : t -> int

val eval : t -> bool
(** [eval t] is [disj(x, y)]: true iff no index has both bits set. *)

val intersection_size : t -> int

val random : n:int -> seed:int64 -> t
(** A random instance (no promise). *)

val random_promise : n:int -> intersecting:bool -> seed:int64 -> t
(** A random instance under the paper's promise: intersection size is
    exactly 0 ([intersecting = false]) or exactly 1 ([true]). *)

val pp : Format.formatter -> t -> unit
