examples/hierarchy_sweep.mli:
