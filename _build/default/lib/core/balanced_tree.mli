(** The BalancedTree problem (paper Section 4).

    Input: a balanced tree labeling (Definition 4.1) — a tree labeling
    plus lateral left/right-neighbor pointers.  The {e compatibility}
    conditions (Definition 4.2) are locally checkable and hold everywhere
    exactly when the pseudo-forest [G_T] consists of complete balanced
    binary trees whose levels are laterally stitched together.

    Output per node: a flag in {B, U} ("balanced"/"unbalanced") and a
    port (Definition 4.3).  Following the output ports from any node
    leads either up to the root of a balanced subtree (all B) or towards
    an incompatible node (U chain).

    Complexities (Theorem 4.5): R-DIST = D-DIST = Θ(log n) but
    R-VOL = D-VOL = Θ(n) — unlike LeafColoring, randomness does not help
    volume here.  The Ω(n) volume bound is by embedding set-disjointness
    (Proposition 4.9, Figure 5); {!embed_disjointness} and
    {!comm_world} implement that embedding with bit-exchange accounting
    per Theorem 2.9. *)

module TL = Vc_graph.Tree_labels
module Graph = Vc_graph.Graph

type node_input = {
  parent : TL.ptr;
  left : TL.ptr;
  right : TL.ptr;
  left_nbr : TL.ptr;
  right_nbr : TL.ptr;
}

val tree_pointers : node_input -> TL.ptr * TL.ptr * TL.ptr

val pp_node_input : Format.formatter -> node_input -> unit

type verdict = Bal | Unbal

type output = {
  verdict : verdict;
  port : TL.ptr;
}

val equal_output : output -> output -> bool
val pp_output : Format.formatter -> output -> unit

type instance = {
  graph : Graph.t;
  labels : node_input array;
}

val input : instance -> Graph.node -> node_input
val world : instance -> node_input Vc_model.World.t

(** {1 Compatibility (Definition 4.2)} *)

val compatible_gen :
  degree:(Graph.node -> int) ->
  input:(Graph.node -> node_input) ->
  follow:(Graph.node -> TL.ptr -> Graph.node) ->
  Graph.node ->
  bool
(** Evaluate compatibility through accessors ([follow] is called only
    with valid ports); reused verbatim by the global checker and by the
    probe-model solver so both pay/see exactly the same nodes. *)

val compatible : instance -> Graph.node -> bool

val status : instance -> Graph.node -> TL.status

val problem : (node_input, output) Vc_lcl.Lcl.t
(** The validity conditions of Definition 4.3.  Inconsistent nodes are
    unconstrained; when both children of a compatible internal node
    output U, pointing at either child is accepted. *)

(** {1 Instance generators} *)

val balanced_instance : depth:int -> instance
(** The fully compatible instance of Figure 5's shape: a complete binary
    tree of the given depth with all lateral pointers present.  The
    unique valid output is all-(B, P(v)). *)

val broken_pair_instance : depth:int -> break:int -> instance
(** {!balanced_instance} with the sibling pointers of leaf pair [break]
    (0-indexed from the left) erased, making that pair's parent
    incompatible. *)

val embed_disjointness : Vc_commcc.Disjointness.t -> instance
(** The embedding of Proposition 4.9: the labeling is compatible
    everywhere iff [disj(x, y) = 1].  Requires the vectors' length to be
    a power of two.  Leaf pair [i] carries bits [x_i, y_i]: the sibling
    pointers are erased iff [x_i = y_i = 1]. *)

val leaf_pair : instance -> int -> Graph.node * Graph.node
(** The [i]-th leaf pair (u_i, w_i) of an embedding instance. *)

val comm_world :
  instance -> counter:Vc_commcc.Comm_counter.t -> node_input Vc_model.World.t
(** The instance's world, instrumented for the Alice/Bob simulation of
    Theorem 2.9: each query whose answer reveals a leaf's input (the
    only labels that depend on [x, y]) is charged 2 bits; every other
    query is free. *)

val root : instance -> Graph.node

(** {1 Algorithms} *)

val solve_core :
  degree:(Graph.node -> int) ->
  input:(Graph.node -> node_input) ->
  follow:(Graph.node -> TL.ptr -> Graph.node) ->
  n:int ->
  Graph.node ->
  output
(** The Proposition 4.8 decision procedure over abstract accessors, so
    other problems (Hybrid-THC embeds BalancedTree at level 1) can run
    it against their own views.  [n] bounds the descent depth. *)

val solve_distance : (node_input, output) Vc_lcl.Lcl.solver
(** Proposition 4.8: deterministic, distance O(log n).  Volume is Θ(n)
    in the worst case — which is unavoidable (Proposition 4.9). *)

val solvers : (node_input, output) Vc_lcl.Lcl.solver list
