(* Entry point aggregating every test suite.  Each [Test_*] module
   exposes a [suites] value: a list of Alcotest (name, cases) pairs. *)

let () =
  Alcotest.run "volcomp"
    (List.concat
       [
         Test_rng.suites;
         (* Test_shard forks (supervisor child + worker grandchildren);
            it must run before any suite that spawns a domain. *)
         Test_shard.suites;
         Test_graph.suites;
         Test_model.suites;
         Test_leaf_coloring.suites;
         Test_balanced_tree.suites;
         Test_hierarchical_thc.suites;
         Test_hybrid_thc.suites;
         Test_hh_thc.suites;
         Test_aux_problems.suites;
         Test_lcl_commcc.suites;
         Test_bt_congest.suites;
         Test_measure.suites;
         Test_exec.suites;
         Test_local_tails.suites;
         Test_sinkless.suites;
         Test_robustness.suites;
         Test_cross_model.suites;
         Test_family.suites;
         Test_check.suites;
         Test_ir.suites;
         Test_snap.suites;
         Test_obs.suites;
         Test_serve.suites;
         Test_synth.suites;
       ])
