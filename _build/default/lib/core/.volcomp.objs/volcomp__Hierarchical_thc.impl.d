lib/core/hierarchical_thc.ml: Array Float Fmt Hashtbl Leaf_coloring List Option Printf Vc_graph Vc_lcl Vc_model Vc_rng
