test/test_leaf_coloring.ml: Alcotest Array Fmt Int64 List Printf QCheck QCheck_alcotest Vc_graph Vc_lcl Vc_model Vc_rng Volcomp
