(* Flat int arrays backed by [Bigarray.Array1] (c_layout).

   The graph core stores its CSR rows in these instead of [int array] so
   that an instance snapshot is nothing but raw array bytes: a mapped
   file region *is* a valid [Iarr.t], shared read-only through the page
   cache by every process that maps it.  [unsafe_get] compiles to a
   single unchecked load, so hot loops keep the exact cost profile of
   [Array.unsafe_get]. *)

type t = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

let create n : t = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n

let make n x =
  let a = create n in
  Bigarray.Array1.fill a x;
  a

let length (a : t) = Bigarray.Array1.dim a

let get (a : t) i = Bigarray.Array1.get a i
let set (a : t) i x = Bigarray.Array1.set a i x
let unsafe_get (a : t) i = Bigarray.Array1.unsafe_get a i
let unsafe_set (a : t) i x = Bigarray.Array1.unsafe_set a i x

let of_array src =
  let n = Array.length src in
  let a = create n in
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set a i (Array.unsafe_get src i)
  done;
  a

let to_array (a : t) = Array.init (length a) (fun i -> Bigarray.Array1.unsafe_get a i)

let init n f =
  let a = create n in
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set a i (f i)
  done;
  a

let copy (a : t) =
  let b = create (length a) in
  Bigarray.Array1.blit a b;
  b

let sub (a : t) ~pos ~len : t = Bigarray.Array1.sub a pos len

let fill (a : t) x = Bigarray.Array1.fill a x

let equal (a : t) (b : t) =
  length a = length b
  &&
  let ok = ref true in
  let i = ref 0 in
  let n = length a in
  while !ok && !i < n do
    if Bigarray.Array1.unsafe_get a !i <> Bigarray.Array1.unsafe_get b !i then ok := false;
    incr i
  done;
  !ok

let iter f (a : t) =
  for i = 0 to length a - 1 do
    f (Bigarray.Array1.unsafe_get a i)
  done

let pp ppf (a : t) =
  Fmt.pf ppf "[|";
  iter (fun x -> Fmt.pf ppf "%d;" x) a;
  Fmt.pf ppf "|]"
