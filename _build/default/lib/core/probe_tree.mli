(** Tree-labeling primitives for probe-model algorithms.

    The constructions of Sections 3–6 all run on inputs that contain a
    tree labeling.  Their algorithms repeatedly need the node-status
    decision of Definition 3.3 and pointer-following — paid for through
    queries.  This module adapts {!Vc_graph.Tree_labels.status_gen} to a
    {!Vc_model.Probe.ctx}: the context is charged for exactly the O(1)
    nodes the decision procedure inspects. *)

module TL = Vc_graph.Tree_labels
module Probe = Vc_model.Probe

type 'i pointers = 'i -> TL.ptr * TL.ptr * TL.ptr
(** Extract [(parent, left, right)] from a node's input. *)

val follow : 'i Probe.ctx -> Vc_graph.Graph.node -> TL.ptr -> Vc_graph.Graph.node option
(** Resolve a pointer of a visited node by querying; [None] when the
    pointer is ⊥ or not a valid port. *)

val status : pointers:'i pointers -> 'i Probe.ctx -> Vc_graph.Graph.node -> TL.status
(** Definition 3.3, via queries. *)

val is_internal : pointers:'i pointers -> 'i Probe.ctx -> Vc_graph.Graph.node -> bool

val children :
  pointers:'i pointers ->
  'i Probe.ctx ->
  Vc_graph.Graph.node ->
  (Vc_graph.Graph.node * Vc_graph.Graph.node) option
(** [G_T] children (left, right) of an internal node, [None] for
    non-internal nodes. *)

val parent :
  pointers:'i pointers -> 'i Probe.ctx -> Vc_graph.Graph.node -> Vc_graph.Graph.node option
(** [G_T] parent, as in {!Vc_graph.Tree_labels.gt_parent}. *)

val log2_ceil : int -> int
(** [log2_ceil n] is the least [k] with [2^k >= n]; the exploration radii
    of the paper's algorithms are phrased in terms of it. *)
