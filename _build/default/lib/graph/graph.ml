type node = int
type port = int

type t = {
  ids : int array;
  adj : node array array;
  id_index : (int, node) Hashtbl.t;
  max_degree : int;
}

let n g = Array.length g.ids

let degree g v = Array.length g.adj.(v)

let max_degree g = g.max_degree

let id g v = g.ids.(v)

let node_of_id g i = Hashtbl.find_opt g.id_index i

let neighbor g v p =
  if p < 1 || p > degree g v then
    invalid_arg
      (Printf.sprintf "Graph.neighbor: port %d invalid at node %d (degree %d)" p v (degree g v));
  g.adj.(v).(p - 1)

let port_to g v w =
  let d = degree g v in
  let rec loop p = if p > d then None else if g.adj.(v).(p - 1) = w then Some p else loop (p + 1) in
  loop 1

let neighbors g v = Array.copy g.adj.(v)

let validate ids adj =
  let count = Array.length ids in
  if Array.length adj <> count then invalid_arg "Graph.create: ids/adj length mismatch";
  let seen = Hashtbl.create count in
  Array.iter
    (fun i ->
      if Hashtbl.mem seen i then invalid_arg "Graph.create: duplicate identifier";
      Hashtbl.add seen i ())
    ids;
  Array.iteri
    (fun v nbrs ->
      let local = Hashtbl.create (Array.length nbrs) in
      Array.iter
        (fun w ->
          if w < 0 || w >= count then invalid_arg "Graph.create: neighbor out of range";
          if w = v then invalid_arg "Graph.create: self-loop";
          if Hashtbl.mem local w then invalid_arg "Graph.create: parallel edge";
          Hashtbl.add local w ();
          if not (Array.exists (fun u -> u = v) adj.(w)) then
            invalid_arg "Graph.create: asymmetric adjacency")
        nbrs)
    adj

let create ~ids ~adj =
  validate ids adj;
  let id_index = Hashtbl.create (Array.length ids) in
  Array.iteri (fun v i -> Hashtbl.add id_index i v) ids;
  let adj = Array.map Array.copy adj in
  let max_degree = Array.fold_left (fun acc a -> max acc (Array.length a)) 0 adj in
  { ids = Array.copy ids; adj; id_index; max_degree }

let of_edges ?ids ~n:count edges =
  let buckets = Array.make count [] in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= count || v < 0 || v >= count then
        invalid_arg "Graph.of_edges: endpoint out of range";
      buckets.(u) <- v :: buckets.(u);
      buckets.(v) <- u :: buckets.(v))
    edges;
  let adj = Array.map (fun l -> Array.of_list (List.rev l)) buckets in
  let ids = match ids with Some a -> a | None -> Array.init count (fun v -> v + 1) in
  create ~ids ~adj

let edges g =
  fst
    (Array.fold_left
       (fun (acc, v) nbrs ->
         let acc = Array.fold_left (fun acc w -> if v < w then (v, w) :: acc else acc) acc nbrs in
         (acc, v + 1))
       ([], 0) g.adj)

let nodes g = List.init (n g) Fun.id

let iter_nodes g f =
  for v = 0 to n g - 1 do
    f v
  done

let fold_nodes g ~init ~f =
  let acc = ref init in
  iter_nodes g (fun v -> acc := f !acc v);
  !acc

let is_connected g =
  let count = n g in
  if count = 0 then true
  else begin
    let seen = Array.make count false in
    let queue = Queue.create () in
    Queue.add 0 queue;
    seen.(0) <- true;
    let visited = ref 1 in
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      Array.iter
        (fun w ->
          if not seen.(w) then begin
            seen.(w) <- true;
            incr visited;
            Queue.add w queue
          end)
        g.adj.(v)
    done;
    !visited = count
  end

let relabel_ids g ~ids = create ~ids ~adj:g.adj

let shuffle_ids g ~rng =
  let count = n g in
  let perm = Array.init count (fun v -> v + 1) in
  for i = count - 1 downto 1 do
    let j = Vc_rng.Splitmix.int rng ~bound:(i + 1) in
    let tmp = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- tmp
  done;
  relabel_ids g ~ids:perm

let pp ppf g =
  iter_nodes g (fun v ->
      Fmt.pf ppf "@[node %d (id %d):" v g.ids.(v);
      Array.iteri (fun i w -> Fmt.pf ppf " %d->%d" (i + 1) w) g.adj.(v);
      Fmt.pf ppf "@]@.")
