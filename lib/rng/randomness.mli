(** Randomness regimes of the volume model (paper Sections 2.2 and 7.4).

    A {!t} assigns a random string to every node of an [n]-node graph.
    Three regimes are supported:

    - {e private}: each node has an independent stream; any algorithm that
      has visited node [v] may read [r_v] (the paper's default model);
    - {e public}: a single shared stream visible to everyone;
    - {e secret}: each node has an independent stream, but an execution
      started at [v0] may only read [r_{v0}] — querying another node does
      not reveal its randomness.

    All regimes are deterministic functions of a seed, so experiments are
    reproducible.

    {b Thread-safety.}  A [t] is {e not} safe to share across domains:
    {!stream} lazily materializes memoized {!Stream.t}s, and the streams
    themselves memoize bits on read.  Because every bit is a pure
    function of [(seed, node, index)], a parallel runner instead gives
    each domain its own {!fork} of the assignment — the forks return
    bit-identical values, so results cannot depend on which domain ran
    which execution.  ({!total_bits_consumed} then only accounts the
    bits revealed through that particular fork.) *)

type regime = Private | Public | Secret

type t

val create : ?regime:regime -> seed:int64 -> n:int -> unit -> t
(** [create ~regime ~seed ~n ()] builds the random strings for an
    [n]-node graph.  Default regime is [Private]. *)

val regime : t -> regime

val n : t -> int

val stream : t -> int -> Stream.t
(** [stream t v] is node [v]'s random string (in the [Public] regime all
    nodes share one stream).  Streams are created lazily and memoized. *)

val readable : t -> origin:int -> node:int -> bool
(** [readable t ~origin ~node] tells whether an execution initiated at
    [origin] may read [node]'s stream under [t]'s regime. *)

val total_bits_consumed : t -> int
(** Sum of {!Stream.bits_consumed} over all materialized streams: the
    total amount of randomness revealed so far (Question 7.8). *)

val reseed : t -> int64 -> t
(** [reseed t s] is a fresh assignment with the same regime and size but
    seed [s]; used to repeat randomized experiments over many seeds. *)

val fork : t -> t
(** [fork t] is an independent copy with the same regime, size {e and}
    seed, but no shared mutable state: it yields bit-for-bit the same
    strings as [t].  Parallel runners fork once per domain so that no
    stream is ever touched by two domains. *)
