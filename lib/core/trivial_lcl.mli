(** A class-A ("local") reference problem for Figures 1–2.

    DegreeParity: every node outputs the parity of its own degree.  It
    is an LCL with checkability radius 0 and is solvable with distance
    and volume Θ(1) — the paper's class A, where the four complexity
    measures coincide (Section 1.2). *)

type parity = Even | Odd

val equal_parity : parity -> parity -> bool
val pp_parity : Format.formatter -> parity -> unit

val problem : (unit, parity) Vc_lcl.Lcl.t

val solve : (unit, parity) Vc_lcl.Lcl.solver
(** Constant distance and volume: looks only at the origin. *)

val solvers : (unit, parity) Vc_lcl.Lcl.solver list
(** All conformance-tested solvers of the problem ([[solve]]). *)

val world : Vc_graph.Graph.t -> unit Vc_model.World.t
