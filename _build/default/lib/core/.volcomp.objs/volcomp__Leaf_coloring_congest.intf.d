lib/core/leaf_coloring_congest.mli: Leaf_coloring Vc_graph Vc_model
