(** The "world" an execution runs against.

    The probe model of Section 2.2 does not care whether queries are
    answered by a fixed labeled graph or by an adversary that invents the
    graph on the fly — lower-bound arguments such as the process P of
    Proposition 3.13 exploit exactly this.  A [World.t] is therefore an
    abstract query-answering service; {!of_graph} wraps a concrete
    labeled graph, while adversaries implement the record directly.

    An execution starts by calling {!start}, which fixes the origin node
    and returns a session; all queries of that execution go through the
    session.  Sessions of adversarial worlds are typically stateful.

    {b Thread-safety contract.}  A [t] destined for the parallel runner
    ({!Vc_measure.Runner.measure} with [?pool]) must be shareable across
    domains: [start] may be called concurrently, and the sessions it
    returns must not communicate through shared mutable state.  The
    {!of_graph} worlds satisfy this — {!Vc_graph.Graph.t} is immutable
    after construction and each session owns its private BFS distance
    array.  A {e session} is never shareable: it belongs to the single
    execution (and domain) that started it.  Stateful adversarial worlds
    (e.g. {!Volcomp.Adversary_leaf.world_internal}, or the
    communication-counting worlds of {!Vc_commcc}) violate the [t]
    contract by design and must be driven sequentially. *)

type 'i session = {
  view : Vc_graph.Graph.node -> 'i View.t;
      (** View of a node that has already been revealed to this
          execution (the origin, or the result of an earlier
          [resolve]). *)
  resolve : Vc_graph.Graph.node -> port:int -> Vc_graph.Graph.node;
      (** Answer [query(w, j)].  Precondition (enforced by the
          executor, not the world): [w] was revealed earlier and
          [1 <= j <= degree w].  Returns the node on the other side. *)
  dist : Vc_graph.Graph.node -> int;
      (** Graph distance from the execution's origin to a revealed node,
          used for DIST cost accounting (Definition 2.1).  Adversarial
          worlds report distances in the graph built so far; for the
          pendant-growth adversaries of the paper these distances are
          already final. *)
}

type 'i t = {
  n : int;  (** the number of nodes, given to every algorithm as input *)
  start : Vc_graph.Graph.node -> 'i session;
}

val of_graph : Vc_graph.Graph.t -> input:(Vc_graph.Graph.node -> 'i) -> 'i t
(** The standard world: a fixed graph with a fixed input labeling.
    Distances are computed by BFS from the origin once per session. *)

val of_graph_claiming :
  n:int -> Vc_graph.Graph.t -> input:(Vc_graph.Graph.node -> 'i) -> 'i t
(** Like {!of_graph} but reports [n] instead of the true node count —
    used by experiments that embed a small gadget in a nominally larger
    instance. *)
