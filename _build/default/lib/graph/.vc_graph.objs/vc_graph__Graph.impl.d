lib/graph/graph.ml: Array Fmt Fun Hashtbl List Printf Queue Vc_rng
