examples/randomness_regimes.ml: Fmt List Vc_graph Vc_lcl Vc_measure Vc_model Vc_rng Volcomp
