(** The instrumented probe executor (paper Section 2.2, Definitions
    2.1–2.2).

    An algorithm is an OCaml function over a context {!ctx}.  Through the
    context it can: look at the view of any node it has visited, issue
    [query(w, j)] probes (which extend the visited set), and read the
    private random bits of visited nodes.  The executor enforces the
    model's rules — queries only from visited nodes, random strings read
    sequentially and subject to the randomness regime — and accounts:

    - VOL: the number of distinct visited nodes (Definition 2.2);
    - DIST: the maximum graph distance from the origin over visited
      nodes (Definition 2.1);
    - the number of [query] calls and of random bits read.

    Budgets may cap volume or distance; exceeding a budget aborts the
    execution, modeling the "truncate and output arbitrarily" device of
    Remark 3.11 and the distance-limited algorithms of
    Proposition 3.12. *)

exception Illegal of string
(** Raised when an algorithm violates the model (querying from an
    unvisited node, invalid port, reading forbidden randomness). *)

type budget = {
  max_volume : int option;
  max_distance : int option;
}

val unlimited : budget

val volume_budget : int -> budget
val distance_budget : int -> budget

type 'i ctx

(** {1 Context operations (the algorithm-facing API)} *)

val origin : 'i ctx -> Vc_graph.Graph.node
val n : 'i ctx -> int
(** The number of nodes of the input graph, known to every algorithm. *)

val view : 'i ctx -> Vc_graph.Graph.node -> 'i View.t
(** View of a visited node. @raise Illegal if the node is unvisited. *)

val input : 'i ctx -> Vc_graph.Graph.node -> 'i
val degree : 'i ctx -> Vc_graph.Graph.node -> int
val id : 'i ctx -> Vc_graph.Graph.node -> int

val query : 'i ctx -> at:Vc_graph.Graph.node -> port:int -> Vc_graph.Graph.node
(** [query ctx ~at ~port] performs one probe.  The resolved node joins
    the visited set and its view becomes accessible.  Repeat queries are
    answered consistently and still count as queries (but not as new
    volume).
    @raise Illegal if [at] is unvisited or [port] is out of range. *)

val visited : 'i ctx -> Vc_graph.Graph.node -> bool

val resolved : 'i ctx -> at:Vc_graph.Graph.node -> port:int -> Vc_graph.Graph.node option
(** What an earlier [query ~at ~port] returned, if any — lets algorithms
    consult their own exploration history for free. *)

val rand_bit : 'i ctx -> Vc_graph.Graph.node -> bool
(** Read the next unread (within this execution) bit of a visited node's
    private random string.
    @raise Illegal if the node is unvisited, if the execution is
    deterministic, or if the randomness regime forbids the read. *)

val rand_bit_at : 'i ctx -> Vc_graph.Graph.node -> int -> bool
(** Read a specific index of the node's string (still counted). *)

val truncate : 'i ctx -> 'a
(** Voluntarily abort the execution: the run ends with [output = None],
    [aborted = true] and the costs accumulated so far — the same
    "truncate and output arbitrarily" device (Remark 3.11) that a budget
    overrun triggers, but under algorithm control.  Never returns. *)

val volume : 'i ctx -> int
val queries : 'i ctx -> int
val visited_nodes : 'i ctx -> Vc_graph.Graph.node list
(** In order of first visit; head is the origin. *)

(** {1 Running executions} *)

type 'o result = {
  output : 'o option;  (** [None] when a budget aborted the run *)
  volume : int;
  distance : int;
  queries : int;
  rand_bits : int;
  aborted : bool;
}

val run :
  world:'i World.t ->
  ?randomness:Vc_rng.Randomness.t ->
  ?budget:budget ->
  ?trace:Vc_obs.Trace.sink ->
  origin:Vc_graph.Graph.node ->
  ('i ctx -> 'o) ->
  'o result
(** Execute the algorithm from [origin].  When [randomness] is absent the
    execution is deterministic and {!rand_bit} raises.

    When [trace] is given, every world interaction is emitted to the sink
    in execution order as one {!Vc_obs.Trace.event} session: a
    [Session_open] and the origin's [View] first, then a [Probe] per
    query (including repeats), a [Dist] and [View] when a node is
    admitted (the [Dist] precedes a distance-budget abort; the [View]
    only follows a successful admit), a [Rand] per random bit, and
    finally a [Session_close] carrying the cost vector — also emitted,
    with [aborted = true], when a budget aborts the run.  Passing a
    {!Vc_obs.Trace.checking} sink makes the run a replay that asserts
    bit-identical behavior against a recorded transcript. *)

val run_exn :
  world:'i World.t ->
  ?randomness:Vc_rng.Randomness.t ->
  ?budget:budget ->
  ?trace:Vc_obs.Trace.sink ->
  origin:Vc_graph.Graph.node ->
  ('i ctx -> 'o) ->
  'o result
(** Like {!run} but raises [Failure] if the run aborted. *)
