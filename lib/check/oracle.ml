module Splitmix = Vc_rng.Splitmix
module Runner = Vc_measure.Runner
module Pool = Vc_exec.Pool

(* Per-trial seeds mix the entry name in, so no two problems (and no two
   trials of one problem) ever share an instance seed. *)
let trial_seed ~seed ~name i =
  Splitmix.mix (Int64.add seed (Int64.of_int ((Hashtbl.hash name * 1000003) + i)))

(* The probes a run can be restricted to, in execution-report order. *)
let probe_names =
  [
    "solvers"; "merge"; "cross"; "lazy"; "ir"; "mutate"; "replay"; "serve"; "shard"; "snap";
    "synth";
  ]

let run_entry ?pool ?serve ?shard ?synth ~want ~seed ~count ~quick (e : Registry.entry) =
  let failures = ref [] in
  let fail fmt = Fmt.kstr (fun s -> failures := s :: !failures) fmt in
  let guarded what f default =
    try f () with
    | exn ->
        fail "%s raised %s" what (Printexc.to_string exn);
        default
  in
  let sizes = if quick then e.quick_sizes else e.sizes in
  let trials =
    List.mapi (fun i size -> (size, e.make ~size ~seed:(trial_seed ~seed ~name:e.name i) ())) sizes
  in
  (* probe 1: differential solving + cost envelope *)
  let all_outcomes =
    List.map
      (fun (size, t) ->
        ( size,
          t,
          if not (want "solvers") then []
          else
            guarded
              (Fmt.str "solvers at size %d" size)
              (fun () -> t.Registry.run_solvers ?pool ())
              [] ))
      trials
  in
  List.iter
    (fun (size, t, outcomes) ->
      List.iter
        (fun (o : Registry.solver_outcome) ->
          let st = o.stats in
          if not o.valid then fail "%s: invalid output at size %d" o.solver size;
          if st.Runner.runs <> t.Registry.t_n then
            fail "%s: ran %d of %d nodes at size %d" o.solver st.Runner.runs t.Registry.t_n size;
          if st.Runner.aborted > 0 then
            fail "%s: %d aborted runs at size %d" o.solver st.Runner.aborted size;
          if st.Runner.max_volume < st.Runner.max_distance then
            fail "%s: max VOL %d < max DIST %d at size %d (violates Lemma 2.5)" o.solver
              st.Runner.max_volume st.Runner.max_distance size;
          if st.Runner.max_volume < 1 then
            fail "%s: max volume %d < 1 at size %d" o.solver st.Runner.max_volume size;
          if (not o.randomized) && st.Runner.max_rand_bits > 0 then
            fail "%s: deterministic solver consumed %d random bits at size %d" o.solver
              st.Runner.max_rand_bits size)
        outcomes)
    all_outcomes;
  let solver_aggs =
    match all_outcomes with
    | [] -> []
    | (_, _, first) :: _ ->
        List.map
          (fun (o0 : Registry.solver_outcome) ->
            List.fold_left
              (fun agg (_, _, os) ->
                match
                  List.find_opt (fun (o : Registry.solver_outcome) -> o.solver = o0.solver) os
                with
                | None -> agg
                | Some o ->
                    {
                      agg with
                      Report.s_trials = agg.Report.s_trials + 1;
                      s_valid = (agg.Report.s_valid + if o.valid then 1 else 0);
                      s_max_volume = max agg.Report.s_max_volume o.stats.Runner.max_volume;
                      s_max_distance = max agg.Report.s_max_distance o.stats.Runner.max_distance;
                      s_max_rand_bits = max agg.Report.s_max_rand_bits o.stats.Runner.max_rand_bits;
                    })
              {
                Report.s_name = o0.solver;
                s_randomized = o0.randomized;
                s_trials = 0;
                s_valid = 0;
                s_max_volume = 0;
                s_max_distance = 0;
                s_max_rand_bits = 0;
              }
              all_outcomes)
          first
  in
  (* probe 2: merge consistency, on the first (smallest) trial only *)
  let merge_consistent =
    match trials with
    | _ when not (want "merge") -> true
    | [] -> true
    | (_, t) :: _ ->
        guarded "merge consistency"
          (fun () ->
            match t.Registry.merge_consistency ~widths:[ 1; 2; 4 ] with
            | Ok () -> true
            | Error msg ->
                fail "merge: %s" msg;
                false)
          false
  in
  (* probe 3: cross-model executions, on every trial *)
  let cross_model =
    let names =
      match trials with
      | _ when not (want "cross") -> []
      | [] -> []
      | (_, t) :: _ -> List.map fst t.Registry.cross_model
    in
    List.map
      (fun name ->
        let passed =
          List.fold_left
            (fun acc (size, t) ->
              match List.assoc_opt name t.Registry.cross_model with
              | None -> acc
              | Some f ->
                  guarded
                    (Fmt.str "cross-model %s at size %d" name size)
                    (fun () ->
                      match f () with
                      | Ok () -> acc
                      | Error msg ->
                          fail "cross-model %s at size %d: %s" name size msg;
                          false)
                    false)
            true trials
        in
        (name, passed))
      names
  in
  (* probe 5: lazy vs. eager world identity, on every trial *)
  let lazy_eager =
    (not (want "lazy"))
    || List.fold_left
         (fun acc (size, t) ->
           let ok =
             guarded
               (Fmt.str "lazy/eager at size %d" size)
               (fun () ->
                 match t.Registry.lazy_vs_eager () with
                 | Ok () -> true
                 | Error msg ->
                     fail "lazy/eager at size %d: %s" size msg;
                     false)
               false
           in
           acc && ok)
         true trials
  in
  (* probe 8: IR vs. closure differential, on every trial of entries
     that carry an IR port *)
  let ir_ok =
    if not (want "ir") then None
    else
      List.fold_left
        (fun acc (size, t) ->
          match t.Registry.ir_vs_closure with
          | None -> acc
          | Some probe ->
              let ok =
                guarded
                  (Fmt.str "ir at size %d" size)
                  (fun () ->
                    match probe () with
                    | Ok () -> true
                    | Error msg ->
                        fail "ir at size %d: %s" size msg;
                        false)
                  false
              in
              Some (Option.value acc ~default:true && ok))
        None trials
  in
  (* probe 6: record -> JSON round-trip -> replay, on every trial *)
  let replay =
    (not (want "replay"))
    || List.fold_left
         (fun acc (size, t) ->
           let ok =
             guarded
               (Fmt.str "record/replay at size %d" size)
               (fun () ->
                 match t.Registry.trace_roundtrip () with
                 | Ok () -> true
                 | Error msg ->
                     fail "replay at size %d: %s" size msg;
                     false)
               false
           in
           acc && ok)
         true trials
  in
  (* probe 7: serving-layer round-trip identity, on every trial (the
     closure comes from above — lib/serve depends on this library) *)
  let serve_ok =
    match serve with
    | Some _ when not (want "serve") -> None
    | None -> None
    | Some f ->
        Some
          (List.fold_left
             (fun acc (i, size) ->
               let ok =
                 guarded
                   (Fmt.str "serve at size %d" size)
                   (fun () ->
                     match f e ~size ~seed:(trial_seed ~seed ~name:e.name i) with
                     | Ok () -> true
                     | Error msg ->
                         fail "serve at size %d: %s" size msg;
                         false)
                   false
               in
               acc && ok)
             true
             (List.mapi (fun i s -> (i, s)) sizes))
  in
  (* probe 9: sharded-tier byte identity, on the first (smallest) trial
     only — it spawns a whole supervisor + workers per invocation *)
  let shard_ok =
    match shard with
    | Some _ when not (want "shard") -> None
    | None -> None
    | Some f -> (
        match sizes with
        | [] -> None
        | size :: _ ->
            Some
              (guarded
                 (Fmt.str "shard at size %d" size)
                 (fun () ->
                   match f e ~size ~seed:(trial_seed ~seed ~name:e.name 0) with
                   | Ok () -> true
                   | Error msg ->
                       fail "shard at size %d: %s" size msg;
                       false)
                 false))
  in
  (* probe 10: snapshot byte-identity — a trial whose instance came back
     from the snapshot store must reproduce the freshly built trial's
     solver outcomes, per-origin probe cost vectors and recorded trace
     transcripts exactly, on every trial of the entry *)
  let snap_ok =
    if not (want "snap") then None
    else
      Some
        (List.fold_left
           (fun acc (i, size) ->
             let ts = trial_seed ~seed ~name:e.name i in
             let ok =
               guarded
                 (Fmt.str "snap at size %d" size)
                 (fun () ->
                   let dir = Filename.temp_file "vc-snap" "" in
                   Sys.remove dir;
                   let store = Registry.store ~dir in
                   let cleanup () =
                     List.iter
                       (fun f -> try Sys.remove f with Sys_error _ -> ())
                       (Registry.Store.files store);
                     try Unix.rmdir dir with Unix.Unix_error _ -> ()
                   in
                   Fun.protect ~finally:cleanup (fun () ->
                       let a = e.make ~size ~seed:ts () in
                       (* populate the store (publish-on-miss), then hit it *)
                       let warm_n = e.acquire ~store ~size ~seed:ts () in
                       let b = e.make ~store ~size ~seed:ts () in
                       let ok = ref true in
                       let check cond fmt =
                         Fmt.kstr
                           (fun msg ->
                             if not cond then begin
                               ok := false;
                               fail "snap at size %d: %s" size msg
                             end)
                           fmt
                       in
                       check (warm_n = a.Registry.t_n) "acquire saw %d nodes, build saw %d"
                         warm_n a.Registry.t_n;
                       check
                         (b.Registry.t_source = `Snapshot)
                         "store hit did not mark the trial as snapshot-loaded";
                       check
                         (b.Registry.t_n = a.Registry.t_n)
                         "node counts differ: built %d, snapshot %d" a.Registry.t_n
                         b.Registry.t_n;
                       check
                         (a.Registry.run_solvers ?pool () = b.Registry.run_solvers ?pool ())
                         "solver outcomes differ between built and snapshot-loaded";
                       let origins =
                         List.sort_uniq compare [ 0; a.Registry.t_n / 2; a.Registry.t_n - 1 ]
                         |> List.filter (fun o -> o >= 0 && o < a.Registry.t_n)
                       in
                       List.iter
                         (fun origin ->
                           check
                             (a.Registry.probe_origin ~origin ()
                             = b.Registry.probe_origin ~origin ())
                             "probe summaries differ at origin %d" origin)
                         origins;
                       let trace_of (t : Registry.trial) suffix =
                         let path = Filename.temp_file "vc-snap-trace" suffix in
                         Fun.protect
                           ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
                           (fun () ->
                             match
                               t.Registry.trace_record ~path ~header:Vc_obs.Json.Null
                                 ~origin:0
                             with
                             | Ok () ->
                                 let ic = open_in_bin path in
                                 Fun.protect
                                   ~finally:(fun () -> close_in_noerr ic)
                                   (fun () ->
                                     really_input_string ic (in_channel_length ic))
                             | Error msg -> Fmt.str "trace-error: %s" msg)
                       in
                       check
                         (trace_of a ".a" = trace_of b ".b")
                         "trace transcripts differ from origin 0";
                       !ok))
                 false
             in
             acc && ok)
           true
           (List.mapi (fun i s -> (i, s)) sizes))
  in
  (* probe 11: synthesis cross-check — for entries with a synthesis
     universe the injected closure must re-derive the Table-1 verdicts:
     a witness at the known-feasible volume (independently rechecked),
     a certified UNSAT below it, and consistency with the live
     adversary bound.  Injected from above because [lib/synth] depends
     on this library. *)
  let synth_ok =
    match synth with
    | Some _ when not (want "synth") -> None
    | None -> None
    | Some f ->
        guarded "synth"
          (fun () ->
            match f e with
            | None -> None
            | Some (Ok ()) -> Some true
            | Some (Error msg) ->
                fail "synth: %s" msg;
                Some false)
          (Some false)
  in
  (* probe 4: mutation fuzzing, [count] rounds round-robin over trials *)
  let kind_order = ref [] in
  let kinds : (string, Report.kind_agg) Hashtbl.t = Hashtbl.create 8 in
  let record (o : Mutate.outcome) =
    let agg =
      match Hashtbl.find_opt kinds o.kind with
      | Some a -> a
      | None ->
          kind_order := o.kind :: !kind_order;
          { Report.k_kind = o.kind; k_total = 0; k_rejected = 0; k_out_of_radius = 0 }
    in
    Hashtbl.replace kinds o.kind
      {
        agg with
        Report.k_total = agg.Report.k_total + 1;
        k_rejected = (agg.Report.k_rejected + if o.rejected then 1 else 0);
        k_out_of_radius =
          (agg.Report.k_out_of_radius + if o.rejected && not o.in_radius then 1 else 0);
      }
  in
  let ntrials = List.length trials in
  if ntrials > 0 && want "mutate" then
    for i = 0 to count - 1 do
      let _, t = List.nth trials (i mod ntrials) in
      let rng =
        Splitmix.create
          (Splitmix.mix (Int64.add (trial_seed ~seed ~name:e.name (-1)) (Int64.of_int i)))
      in
      List.iter
        (fun (o : Mutate.outcome) ->
          if o.Mutate.kind = "reference" then fail "reference output: %s" o.detail
          else begin
            record o;
            if o.rejected && not o.in_radius then
              fail "mutation %s at node %d: violation outside radius %d (%s)" o.kind o.site
                e.radius o.detail
          end)
        (guarded (Fmt.str "fuzz round %d" i) (fun () -> t.Registry.mutate rng) [])
    done;
  {
    Report.p_name = e.name;
    p_radius = e.radius;
    p_instances = List.length trials;
    p_solvers = solver_aggs;
    p_merge_consistent = merge_consistent;
    p_cross_model = cross_model;
    p_lazy_eager = lazy_eager;
    p_ir = ir_ok;
    p_replay = replay;
    p_serve = serve_ok;
    p_shard = shard_ok;
    p_snap = snap_ok;
    p_synth = synth_ok;
    p_mutations = List.rev_map (Hashtbl.find kinds) !kind_order;
    p_probes_skipped = List.filter (fun p -> not (want p)) probe_names;
    p_failures = List.rev !failures;
  }

let run ?pool ?entries ?probes ?serve ?shard ?synth ~seed ~count ~quick () =
  let entries = match entries with Some es -> es | None -> Registry.all () in
  let want =
    match probes with
    | None -> fun _ -> true
    | Some ps ->
        let ps = List.map String.lowercase_ascii ps in
        List.iter
          (fun p ->
            if not (List.mem p probe_names) then
              invalid_arg
                (Fmt.str "unknown probe %S (known: %s)" p (String.concat ", " probe_names)))
          ps;
        fun p -> List.mem p ps
  in
  let domains = match pool with None -> 1 | Some p -> Pool.domains p in
  let problems =
    List.map (run_entry ?pool ?serve ?shard ?synth ~want ~seed ~count ~quick) entries
  in
  { Report.seed; count; domains; quick; problems }

(* --- standalone trace files ------------------------------------------------ *)

module Json = Vc_obs.Json
module Trace = Vc_obs.Trace

let find_entry ?entries name =
  let entries = match entries with Some es -> es | None -> Registry.all () in
  match
    List.find_opt (fun (e : Registry.entry) -> String.lowercase_ascii e.name = String.lowercase_ascii name) entries
  with
  | Some e -> Ok e
  | None ->
      Error
        (Fmt.str "unknown problem %S (known: %s)" name
           (String.concat ", " (List.map (fun (e : Registry.entry) -> e.name) entries)))

(* The header pins down everything a later process needs to rebuild the
   instance: the trial seed is the already-mixed per-trial seed, stored
   as a string because [Splitmix.mix] spans the full int64 range. *)
let header ~problem ~size ~trial_seed ~origin =
  Json.Obj
    [
      ("volcomp_trace", Json.Int 1);
      ("problem", Json.String problem);
      ("size", Json.Int size);
      ("trial_seed", Json.String (Int64.to_string trial_seed));
      ("origin", Json.Int origin);
    ]

let record_trace ?entries ~seed ~quick ~problem ~origin ~path () =
  match find_entry ?entries problem with
  | Error _ as e -> e
  | Ok e -> (
      let sizes = if quick then e.quick_sizes else e.sizes in
      match sizes with
      | [] -> Error (Fmt.str "%s has no %s sizes" e.name (if quick then "quick" else "full"))
      | size :: _ ->
          let ts = trial_seed ~seed ~name:e.name 0 in
          let t = e.make ~size ~seed:ts () in
          let header = header ~problem:e.name ~size ~trial_seed:ts ~origin in
          t.Registry.trace_record ~path ~header ~origin)

let replay_trace ?entries ~path () =
  match Trace.load ~path with
  | Error _ as e -> e
  | Ok (header, events) -> (
      let str key = Option.bind (Json.member header key) Json.to_str in
      let int key = Option.bind (Json.member header key) Json.to_int in
      match (str "problem", int "size", Option.bind (str "trial_seed") Int64.of_string_opt, int "origin") with
      | Some problem, Some size, Some ts, Some origin -> (
          match find_entry ?entries problem with
          | Error _ as e -> e
          | Ok e ->
              let t = e.make ~size ~seed:ts () in
              t.Registry.trace_replay ~events ~origin)
      | _ -> Error (Fmt.str "%s: header is missing problem/size/trial_seed/origin" path))
