lib/core/probe_tree.mli: Vc_graph Vc_model
