(** Sinkless orientation — the open-question playground of paper
    Section 7.2 (Question 7.3).

    SO asks each node of a min-degree-3 graph to orient its incident
    edges (each edge oriented by exactly one consistent direction) so
    that no node is a sink.  Its distance complexities are the canonical
    "shattering" pair — randomized Θ(log log n), deterministic Θ(log n)
    — and the paper asks what its volume complexities are, noting that
    an answer would settle whether any LCL sits strictly between
    Θ(log* n) and o(n) deterministic volume.

    This module provides the LCL formulation (each node outputs, for
    each port, who owns the edge's direction; edge agreement and
    sinklessness are locally checkable), instance generators, a
    linear-volume global solver (orient each component's edges toward a
    cycle, then around it) as the trivial upper bound, and a
    distance-one randomized attempt whose measured failure rate
    illustrates why SO genuinely needs coordination.  The question
    itself stays open — the harness is here for experimentation. *)

module Graph = Vc_graph.Graph

type direction = Outgoing | Incoming
(** Orientation of each incident edge from the node's perspective. *)

type output = direction array
(** Indexed by port - 1. *)

val problem : (unit, output) Vc_lcl.Lcl.t
(** Validity: each edge's two endpoints disagree (one Outgoing, one
    Incoming) and every node has at least one Outgoing port. *)

val world : Graph.t -> unit Vc_model.World.t

val random_cubic : n:int -> seed:int64 -> Graph.t
(** A random connected graph with all degrees in {3, 4} (a union of a
    Hamiltonian cycle and a near-perfect matching). *)

val solve_global : (unit, output) Vc_lcl.Lcl.solver
(** The trivial Θ(n)-volume deterministic solver: explore the whole
    component, find a cycle, orient it consistently and every other
    edge towards it along a BFS forest. *)

val solvers : (unit, output) Vc_lcl.Lcl.solver list
(** The conformance-tested solvers ([[solve_global]] only —
    {!solve_one_round_random} fails by design and is excluded). *)

val solve_one_round_random : (unit, output) Vc_lcl.Lcl.solver
(** A strawman: orient each edge by comparing the endpoints' first
    private random bits (ties broken by identifier), without any
    coordination beyond distance 1.  Each node is a sink with
    probability ≈ 2^-deg, so on large graphs this {e must} fail
    somewhere — the measured failure rate is the point. *)
