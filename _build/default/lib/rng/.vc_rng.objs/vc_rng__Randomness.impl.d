lib/rng/randomness.ml: Array Int64 Splitmix Stream
