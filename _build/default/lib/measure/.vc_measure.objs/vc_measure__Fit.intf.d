lib/measure/fit.mli: Format
