type counter = { c_name : string; c_cell : int Atomic.t }

let bucket_count = 63

type histogram = { h_name : string; h_buckets : int Atomic.t array }

(* A plain ref, not an Atomic: the flag is toggled only at quiescent
   points and a racy read of a bool is well-defined in the OCaml memory
   model.  Keeping the disabled path to a single load-and-branch is the
   whole point. *)
let enabled_flag = ref false

let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

let with_enabled f =
  let prev = !enabled_flag in
  enabled_flag := true;
  Fun.protect ~finally:(fun () -> enabled_flag := prev) f

let registry_lock = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 8

let counter name =
  Mutex.lock registry_lock;
  let c =
    match Hashtbl.find_opt counters name with
    | Some c -> c
    | None ->
        let c = { c_name = name; c_cell = Atomic.make 0 } in
        Hashtbl.add counters name c;
        c
  in
  Mutex.unlock registry_lock;
  c

let histogram name =
  Mutex.lock registry_lock;
  let h =
    match Hashtbl.find_opt histograms name with
    | Some h -> h
    | None ->
        let h =
          { h_name = name; h_buckets = Array.init bucket_count (fun _ -> Atomic.make 0) }
        in
        Hashtbl.add histograms name h;
        h
  in
  Mutex.unlock registry_lock;
  h

let incr c = if !enabled_flag then ignore (Atomic.fetch_and_add c.c_cell 1 : int)
let add c n = if !enabled_flag then ignore (Atomic.fetch_and_add c.c_cell n : int)

(* Monotone high-water mark: CAS loop, so concurrent recorders never
   lose a larger observation to a smaller racing one. *)
let record_max c v =
  if !enabled_flag then begin
    let rec go () =
      let cur = Atomic.get c.c_cell in
      if v > cur && not (Atomic.compare_and_set c.c_cell cur v) then go ()
    in
    go ()
  end

(* bucket 0: v <= 0; bucket k >= 1: 2^(k-1) <= v < 2^k *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and v = ref v in
    while !v > 0 do
      b := !b + 1;
      v := !v lsr 1
    done;
    min !b (bucket_count - 1)
  end

let observe h v =
  if !enabled_flag then ignore (Atomic.fetch_and_add h.h_buckets.(bucket_of v) 1 : int)

let value c = Atomic.get c.c_cell

let reset () =
  Mutex.lock registry_lock;
  Hashtbl.iter (fun _ c -> Atomic.set c.c_cell 0) counters;
  Hashtbl.iter (fun _ h -> Array.iter (fun cell -> Atomic.set cell 0) h.h_buckets) histograms;
  Mutex.unlock registry_lock

let snapshot () =
  Mutex.lock registry_lock;
  let rows = Hashtbl.fold (fun name c acc -> (name, Atomic.get c.c_cell) :: acc) counters [] in
  Mutex.unlock registry_lock;
  List.sort compare rows

let histogram_rows h =
  let rows = ref [] in
  for b = bucket_count - 1 downto 0 do
    let count = Atomic.get h.h_buckets.(b) in
    if count > 0 then rows := ((if b = 0 then 0 else 1 lsl (b - 1)), count) :: !rows
  done;
  !rows

let snapshot_histograms () =
  Mutex.lock registry_lock;
  let rows = Hashtbl.fold (fun name h acc -> (name, histogram_rows h) :: acc) histograms [] in
  Mutex.unlock registry_lock;
  List.sort compare rows

let to_json () =
  let counters = List.map (fun (name, v) -> (name, Json.Int v)) (snapshot ()) in
  let histograms =
    List.map
      (fun (name, rows) ->
        let total = List.fold_left (fun acc (_, c) -> acc + c) 0 rows in
        ( name,
          Json.Obj
            [
              ("total", Json.Int total);
              ( "buckets",
                Json.List (List.map (fun (lo, c) -> Json.List [ Json.Int lo; Json.Int c ]) rows)
              );
            ] ))
      (snapshot_histograms ())
  in
  Json.Obj [ ("counters", Json.Obj counters); ("histograms", Json.Obj histograms) ]

let pp ppf () =
  Fmt.pf ppf "@[<v>metrics (%s):@," (if !enabled_flag then "enabled" else "disabled");
  List.iter (fun (name, v) -> Fmt.pf ppf "  %-26s %d@," name v) (snapshot ());
  List.iter
    (fun (name, rows) ->
      if rows <> [] then
        Fmt.pf ppf "  %-26s %a@," name
          Fmt.(list ~sep:(any " ") (pair ~sep:(any ":") int int))
          rows)
    (snapshot_histograms ());
  Fmt.pf ppf "@]"
