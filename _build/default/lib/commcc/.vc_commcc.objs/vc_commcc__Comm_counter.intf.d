lib/commcc/comm_counter.mli:
