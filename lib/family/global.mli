(** Whole-component gathering shared by the family reference solvers.

    The marquee problems on general families (4-colouring, maximal
    matching, MIS) ship with deterministic global reference solvers in
    the style of {e Sinkless.solve_global}: gather the origin's whole
    component (volume Θ(component), distance = origin eccentricity),
    then compute a canonical solution offline as a function of the
    component alone — so every origin assembles the same labelling and
    the merge/replay/mutation probes apply unchanged. *)

type t = {
  origin : Vc_graph.Graph.node;
  members : Vc_graph.Graph.node list;  (** in BFS-gather order, origin first *)
  root : Vc_graph.Graph.node;  (** the minimum-id member: the canonical anchor *)
  adj : Vc_graph.Graph.node -> (int * Vc_graph.Graph.node) list;
      (** resolved [(port, neighbor)] rows, free after the gather *)
  id : Vc_graph.Graph.node -> int;
}

val gather : 'i Vc_model.Probe.ctx -> t
(** Explore the origin's component ([radius = n] ball). *)

val by_id : t -> Vc_graph.Graph.node list -> Vc_graph.Graph.node list
(** Sort nodes by identifier — the canonical processing order. *)
