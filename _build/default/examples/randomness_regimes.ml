(* The three randomness regimes of paper Section 7.4 — public, private,
   secret — exercised on the same problems.

   - private (the paper's model): each node has its own string, visible
     to whoever visits it; RWtoLeaf and the way-point solvers rely on
     this "posted randomness" for coordination.
   - secret: only the origin's own string is readable; enough for the
     promise version of LeafColoring, useless for coordination.
   - public: one shared string; per-node independence disappears, so
     e.g. way-point election becomes all-or-nothing.

   Run with: dune exec examples/randomness_regimes.exe *)

module Graph = Vc_graph.Graph
module TL = Vc_graph.Tree_labels
module Probe = Vc_model.Probe
module Lcl = Vc_lcl.Lcl
module Randomness = Vc_rng.Randomness
module LC = Volcomp.Leaf_coloring
module PL = Volcomp.Promise_leaf
module Runner = Vc_measure.Runner

let () =
  let n = 257 in

  (* 1. private randomness: Algorithm 1 solves full LeafColoring *)
  let inst = LC.random_instance ~n ~seed:1L in
  let world = LC.world inst in
  let private_rand = Randomness.create ~regime:Randomness.Private ~seed:2L ~n:(Graph.n inst.LC.graph) () in
  let stats, valid =
    Runner.solve_and_check ~world ~problem:LC.problem ~graph:inst.LC.graph
      ~input:(LC.input inst) ~solver:LC.solve_random_walk ~randomness:private_rand ()
  in
  Fmt.pr "private  | RWtoLeaf on LeafColoring:        valid=%b, max volume %d@." valid
    stats.Runner.max_volume;

  (* 2. secret randomness: fails on the same instance... *)
  let secret_rand = Randomness.create ~regime:Randomness.Secret ~seed:3L ~n:(Graph.n inst.LC.graph) () in
  let s_stats, s_valid =
    Runner.solve_and_check ~world ~problem:LC.problem ~graph:inst.LC.graph
      ~input:(LC.input inst) ~solver:PL.solve_secret_walk ~randomness:secret_rand ()
  in
  Fmt.pr "secret   | secret walk on LeafColoring:     valid=%b (no coordination!)@." s_valid;
  ignore s_stats;

  (* ... but solves the promise version, where coordination is free *)
  let pinst = PL.promise_instance ~n ~leaf_color:TL.Blue ~seed:4L in
  let pworld = LC.world pinst in
  let p_stats, p_valid =
    Runner.solve_and_check ~world:pworld ~problem:LC.problem ~graph:pinst.LC.graph
      ~input:(LC.input pinst) ~solver:PL.solve_secret_walk ~randomness:secret_rand ()
  in
  Fmt.pr "secret   | secret walk on promise variant:  valid=%b, max volume %d@." p_valid
    p_stats.Runner.max_volume;

  (* 3. the model enforces secrecy: reading another node's bits raises *)
  let caught =
    (Probe.run ~world ~randomness:secret_rand ~origin:0 (fun ctx ->
         let u = Probe.query ctx ~at:0 ~port:1 in
         try
           ignore (Probe.rand_bit ctx u);
           false
         with Probe.Illegal _ -> true))
      .Probe.output
  in
  Fmt.pr "secret   | reading a neighbor's bits:       rejected=%b@."
    (caught = Some true);

  (* 4. public randomness: everyone reads the same bits *)
  let public_rand = Randomness.create ~regime:Randomness.Public ~seed:5L ~n:(Graph.n inst.LC.graph) () in
  let bits origin =
    (Probe.run ~world ~randomness:public_rand ~origin (fun ctx ->
         List.init 8 (fun i -> Probe.rand_bit_at ctx origin i)))
      .Probe.output
  in
  Fmt.pr "public   | node 0 and node %d see same bits: %b@." (n / 2)
    (bits 0 = bits (n / 2));
  Fmt.pr "@.Question 7.9 (open): are these three models strictly separated for LCLs?@."
