module Graph = Vc_graph.Graph
module Probe = Vc_model.Probe
module Lcl = Vc_lcl.Lcl

let problem : (unit, int) Lcl.t =
  let valid_at g ~input:_ ~output v =
    let c = output v in
    if c < 0 || c > 2 then Error "color out of palette {0,1,2}"
    else if
      Array.exists (fun w -> output w = c) (Graph.neighbors g v)
    then Error "neighbor shares the color"
    else Ok ()
  in
  { Lcl.name = "CycleColoring3"; radius = 1; valid_at }

(* Palette evolution of Cole–Vishkin: from K colors to 2·ceil(log2 K). *)
let next_palette k =
  let rec bits acc v = if v <= 1 then acc else bits (acc + 1) ((v + 1) / 2) in
  2 * max 1 (bits 0 k)

let rounds_needed ~n =
  let rec loop k t = if k <= 6 then t else loop (next_palette k) (t + 1) in
  loop (n + 1) 0

(* One reduction step: the new color encodes the lowest bit position in
   which a node's color differs from its predecessor's, and that bit. *)

(* Index of the lowest set bit of each nibble 1..15 (slot 0 unused): a
   nibble-at-a-time scan instead of bit-at-a-time, since [reduce] sits on
   the hot path of both the closure solver and the IR combinator. *)
let lowest_nibble = [| 0; 0; 1; 0; 2; 0; 1; 0; 3; 0; 1; 0; 2; 0; 1; 0 |]

let reduce ~own ~pred =
  let diff = own lxor pred in
  let rec lowest i v =
    let nib = v land 0xf in
    if nib <> 0 then i + Array.unsafe_get lowest_nibble nib else lowest (i + 4) (v lsr 4)
  in
  let i = lowest 0 diff in
  (2 * i) + ((own lsr i) land 1)

let solve =
  Lcl.solver ~name:"Cole-Vishkin 3-coloring" ~randomized:false (fun ctx ->
      let v0 = Probe.origin ctx in
      let t = rounds_needed ~n:(Probe.n ctx) in
      (* Collect ids along the window [-(t+3) .. +3] of the cycle
         (positive = successor direction, port 1; negative = port 2).
         Offsets, not node identities, index the window: tiny cycles
         wrap around and that is fine. *)
      let lo = -(t + 3) and hi = 3 in
      let ids = Hashtbl.create (t + 8) in
      Hashtbl.add ids 0 (Probe.id ctx v0);
      let rec walk u port offset limit =
        if offset <> limit then begin
          let w = Probe.query ctx ~at:u ~port in
          let offset = if port = 1 then offset + 1 else offset - 1 in
          Hashtbl.add ids offset (Probe.id ctx w);
          walk w port offset limit
        end
      in
      walk v0 1 0 hi;
      walk v0 2 0 lo;
      (* Reduction rounds: color after round r at offset j needs offsets
         down to j - r. *)
      let color = Hashtbl.create (t + 8) in
      for j = lo to hi do
        Hashtbl.replace color j (Hashtbl.find ids j)
      done;
      for r = 1 to t do
        let snapshot = Hashtbl.copy color in
        for j = lo + r to hi do
          let own = Hashtbl.find snapshot j and pred = Hashtbl.find snapshot (j - 1) in
          Hashtbl.replace color j (reduce ~own ~pred)
        done
      done;
      (* Conflict resolution: three synchronous rounds shrinking
         {0..5} to {0,1,2}; round for color c needs both neighbors, so
         each round trims the known window by one on each side. *)
      let window = ref (List.init 7 (fun i -> i - 3)) in
      List.iter
        (fun c ->
          let snapshot = Hashtbl.copy color in
          window := List.filter (fun j -> j > lo + t + (c - 3) && j < hi - (c - 3)) !window;
          List.iter
            (fun j ->
              let own = Hashtbl.find snapshot j in
              if own = c then begin
                let l = Hashtbl.find snapshot (j - 1) and r = Hashtbl.find snapshot (j + 1) in
                let fresh =
                  List.find (fun x -> x <> l && x <> r) [ 0; 1; 2 ]
                in
                Hashtbl.replace color j fresh
              end)
            !window)
        [ 3; 4; 5 ];
      Hashtbl.find color 0)

let world g = Vc_model.World.of_graph g ~input:(fun _ -> ())

let solvers = [ solve ]
