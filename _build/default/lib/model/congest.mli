(** A synchronous CONGEST simulator (paper Section 7.3).

    The CONGEST model refines LOCAL by charging for communication: per
    round, each node may send at most [bandwidth] bits over each incident
    edge.  We simulate synchronous rounds over a port-numbered graph,
    measure round counts and per-edge message sizes, and optionally
    enforce the bandwidth cap.  This is the substrate for Observations
    7.4–7.5 and the Example 7.6 gap experiment. *)

type 'msg outgoing = (int * 'msg) list
(** Messages to send this round, keyed by port. *)

type ('i, 'msg, 'state, 'o) algorithm = {
  init : n:int -> id:int -> degree:int -> input:'i -> 'state * 'msg outgoing;
      (** Initial state and round-1 messages.  A node knows only [n],
          its identifier, degree, and input. *)
  round :
    'state -> inbox:(int * 'msg) list -> 'state * 'msg outgoing * 'o option;
      (** One synchronous round: consume the messages that arrived on
          each port, emit next messages, optionally decide the output.
          After deciding, a node keeps participating (it may still relay
          messages) but must not change its decision. *)
  message_bits : 'msg -> int;
      (** Size accounting for bandwidth enforcement and statistics. *)
}

type 'o result = {
  outputs : 'o option array;
  rounds : int;  (** rounds executed until quiescence or all-decided *)
  max_message_bits : int;
  total_bits : int;  (** sum of message sizes over all rounds/edges *)
}

exception Bandwidth_exceeded of { round : int; bits : int; limit : int }

val run :
  graph:Vc_graph.Graph.t ->
  input:(Vc_graph.Graph.node -> 'i) ->
  ?bandwidth:int ->
  max_rounds:int ->
  ('i, 'msg, 'state, 'o) algorithm ->
  'o result
(** Run until every node has decided and no message is in flight, or
    until [max_rounds].  When [bandwidth] is given, any oversized message
    raises {!Bandwidth_exceeded}. *)
