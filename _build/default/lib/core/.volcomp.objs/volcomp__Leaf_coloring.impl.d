lib/core/leaf_coloring.ml: Array Fmt Hashtbl List Option Probe_tree Vc_graph Vc_lcl Vc_model Vc_rng
