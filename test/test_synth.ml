(* Tests for the synthesis subsystem: the home-grown CDCL core is
   checked against brute force on random small CNFs, every UNSAT
   verdict is certified by DRUP replay, DIMACS round-trips, and level-0
   propagation is compared with a naive reference propagator; above the
   SAT layer, the encoder's template validation, the end-to-end
   CEGIS verdicts on the shipped problem universes, and the
   single-instruction JSON codec the decoder rides on. *)

module Sat = Vc_synth.Sat
module Cnf = Vc_synth.Cnf
module Encode = Vc_synth.Encode
module Classify = Vc_synth.Classify
module Ir = Vc_ir.Ir
module Json = Vc_obs.Json

(* --- helpers -------------------------------------------------------------- *)

let build nv cls =
  let c = Cnf.create () in
  for _ = 1 to nv do
    ignore (Cnf.fresh c)
  done;
  List.iter (Cnf.add c) cls;
  c

let lit_true_in m l =
  let b = (m lsr (abs l - 1)) land 1 = 1 in
  if l > 0 then b else not b

let brute_sat nv cls =
  let sat = ref false in
  for m = 0 to (1 lsl nv) - 1 do
    if (not !sat) && List.for_all (List.exists (lit_true_in m)) cls then sat := true
  done;
  !sat

(* Reference unit propagation to fixpoint; returns the sorted set of
   forced literals, or [`Unsat] on a propagation conflict. *)
let naive_propagate nv cls =
  (* match the solver's clause normalization: x ∨ x ≡ x *)
  let cls = List.map (List.sort_uniq compare) cls in
  let assign = Array.make (nv + 1) 0 in
  let exception Conflict in
  try
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun c ->
          let satisfied =
            List.exists (fun l -> assign.(abs l) = if l > 0 then 1 else -1) c
          in
          if not satisfied then
            match List.filter (fun l -> assign.(abs l) = 0) c with
            | [] -> raise Conflict
            | [ l ] ->
                assign.(abs l) <- (if l > 0 then 1 else -1);
                changed := true
            | _ -> ())
        cls
    done;
    `Fixed
      (List.init nv (fun i -> i + 1)
      |> List.concat_map (fun v ->
             if assign.(v) = 1 then [ v ] else if assign.(v) = -1 then [ -v ] else []))
  with Conflict -> `Unsat

let cnf_arb =
  let open QCheck in
  let gen =
    let open Gen in
    int_range 3 9 >>= fun nv ->
    let lit =
      int_range 1 nv >>= fun v ->
      oneofl [ v; -v ]
    in
    list_size (int_range 1 40) (list_size (int_range 1 3) lit) >>= fun cls ->
    return (nv, cls)
  in
  let print (nv, cls) =
    Printf.sprintf "nv=%d cls=[%s]" nv
      (String.concat "; "
         (List.map (fun c -> String.concat " " (List.map string_of_int c)) cls))
  in
  make ~print gen

(* --- qcheck properties ----------------------------------------------------- *)

let prop_solve_matches_brute_force =
  QCheck.Test.make ~name:"CDCL verdict matches brute force; SAT models check out"
    ~count:300 cnf_arb (fun (nv, cls) ->
      let c = build nv cls in
      match Cnf.solve c with
      | Sat ->
          brute_sat nv cls
          && List.for_all
               (List.exists (fun l ->
                    let b = Cnf.value c (abs l) in
                    if l > 0 then b else not b))
               cls
      | Unsat -> (not (brute_sat nv cls)) && Cnf.certify_unsat c = Ok ())

let prop_dimacs_round_trip =
  QCheck.Test.make ~name:"DIMACS export -> import round-trips" ~count:200 cnf_arb
    (fun (nv, cls) ->
      let c = build nv cls in
      match Cnf.of_dimacs (Cnf.to_dimacs c) with
      | Error e -> QCheck.Test.fail_reportf "re-import failed: %s" e
      | Ok c' ->
          Cnf.n_vars c' = Cnf.n_vars c
          && Cnf.clauses c' = Cnf.clauses c
          && Cnf.solve c' = Cnf.solve c)

let prop_simplify_matches_naive =
  QCheck.Test.make ~name:"level-0 propagation matches naive reference" ~count:300
    cnf_arb (fun (nv, cls) ->
      let c = build nv cls in
      match (Cnf.simplify c, naive_propagate nv cls) with
      | `Unsat, `Unsat -> true
      | `Fixed got, `Fixed want -> List.sort compare got = List.sort compare want
      | `Unsat, `Fixed _ | `Fixed _, `Unsat -> false)

let prop_incremental_block_models =
  QCheck.Test.make ~name:"incremental model blocking enumerates then certifies UNSAT"
    ~count:60
    QCheck.(int_range 2 5)
    (fun nv ->
      let c = Cnf.create () in
      let vars = List.init nv (fun _ -> Cnf.fresh c) in
      Cnf.exactly_one c vars;
      let models = ref 0 in
      let continue = ref true in
      while !continue do
        match Cnf.solve c with
        | Unsat -> continue := false
        | Sat ->
            incr models;
            let blocking =
              List.map (fun v -> if Cnf.value c v then -v else v) vars
            in
            Cnf.add c blocking
      done;
      !models = nv && Cnf.certify_unsat c = Ok ())

(* --- unit tests ------------------------------------------------------------ *)

let test_pigeonhole_unsat () =
  (* 4 pigeons, 3 holes: UNSAT, and the learned-clause log certifies. *)
  let c = Cnf.create () in
  let p = Array.init 4 (fun _ -> Array.init 3 (fun _ -> Cnf.fresh c)) in
  for i = 0 to 3 do
    Cnf.add c (Array.to_list p.(i))
  done;
  for j = 0 to 2 do
    Cnf.at_most_one c (List.init 4 (fun i -> p.(i).(j)))
  done;
  Alcotest.(check bool) "unsat" true (Cnf.solve c = Unsat);
  (match Cnf.certify_unsat c with
  | Ok () -> ()
  | Error e -> Alcotest.failf "certification failed: %s" e);
  let st = Cnf.stats c in
  Alcotest.(check bool) "solver actually searched" true (st.conflicts > 0)

let test_deterministic () =
  let mk () =
    let c = Cnf.create () in
    let vars = List.init 12 (fun _ -> Cnf.fresh c) in
    List.iteri
      (fun i v ->
        let w = List.nth vars ((i + 5) mod 12) in
        Cnf.add c [ -v; w ];
        if i mod 3 = 0 then Cnf.add c [ v; -w ])
      vars;
    Cnf.exactly_one c (List.filteri (fun i _ -> i mod 2 = 0) vars);
    let verdict = Cnf.solve c in
    let model =
      if verdict = Sat then List.map (Cnf.value c) vars else []
    in
    (verdict, model, Cnf.stats c)
  in
  let a = mk () and b = mk () in
  Alcotest.(check bool) "identical runs" true (a = b)

let test_define_and () =
  let c = Cnf.create () in
  let a = Cnf.fresh c and b = Cnf.fresh c in
  let g = Cnf.define_and c [ a; -b ] in
  Cnf.add c [ g ];
  Alcotest.(check bool) "sat" true (Cnf.solve c = Sat);
  Alcotest.(check bool) "a true" true (Cnf.value c a);
  Alcotest.(check bool) "b false" false (Cnf.value c b)

let test_simplify_chain () =
  let c = Cnf.create () in
  let v = List.init 4 (fun _ -> Cnf.fresh c) in
  let a = List.nth v 0 and b = List.nth v 1 and d = List.nth v 2 in
  Cnf.add c [ a ];
  Cnf.implies c a b;
  Cnf.implies c b d;
  match Cnf.simplify c with
  | `Unsat -> Alcotest.fail "unexpected unsat"
  | `Fixed ls ->
      Alcotest.(check (list int)) "chain forced" [ a; b; d ] ls

let test_empty_clause_unsat () =
  let c = Cnf.create () in
  ignore (Cnf.fresh c);
  Cnf.add c [];
  Alcotest.(check bool) "unsat" true (Cnf.solve c = Unsat);
  Alcotest.(check bool) "certified" true (Cnf.certify_unsat c = Ok ())

(* --- instruction JSON codec ------------------------------------------------ *)

let port_sel_gen =
  QCheck.Gen.(
    oneof [ map (fun p -> Ir.P_const p) (1 -- 3); map (fun f -> Ir.P_field f) (0 -- 2) ])

let cond_gen =
  QCheck.Gen.(
    oneof
      [
        map2 (fun r k -> Ir.C_deg_le (r, k)) (0 -- 2) (0 -- 4);
        map2 (fun r k -> Ir.C_deg_eq (r, k)) (0 -- 2) (0 -- 4);
        map3 (fun r m k -> Ir.C_deg_mod (r, m, k)) (0 -- 2) (2 -- 3) (0 -- 2);
        map2 (fun r s -> Ir.C_port_ok (r, s)) (0 -- 2) port_sel_gen;
        map3 (fun r f k -> Ir.C_label_eq (r, f, k)) (0 -- 2) (0 -- 3) (0 -- 3);
        map3 (fun r f g -> Ir.C_field_eq (r, f, g)) (0 -- 2) (0 -- 3) (0 -- 3);
        map2 (fun r s -> Ir.C_node_eq (r, s)) (0 -- 2) (0 -- 2);
        map (fun r -> Ir.C_marked r) (0 -- 2);
        map (fun q -> Ir.C_queue_empty q) (0 -- 1);
      ])

let instr_gen =
  QCheck.Gen.(
    oneof
      [
        map3
          (fun at dst path -> Ir.Probe { at; path; dst })
          (0 -- 2) (0 -- 2)
          (array_size (1 -- 3) port_sel_gen);
        map (fun t -> Ir.Jump t) (0 -- 9);
        map3
          (fun cond if_true if_false -> Ir.Branch { cond; if_true; if_false })
          cond_gen (0 -- 9) (0 -- 9);
        map2 (fun src dst -> Ir.Move { src; dst }) (0 -- 2) (0 -- 2);
        map (fun r -> Ir.Mark r) (0 -- 2);
        map2 (fun queue src -> Ir.Push { queue; src }) (0 -- 1) (0 -- 2);
        map2 (fun queue dst -> Ir.Pop { queue; dst }) (0 -- 1) (0 -- 2);
        map (fun k -> Ir.Out_const k) (0 -- 3);
        map (fun k -> Ir.Out_fn k) (0 -- 3);
        return Ir.Halt;
      ])

let instr_arb =
  QCheck.make instr_gen ~print:(fun i -> Json.to_string (Ir.instr_to_json i))

let prop_instr_json_round_trip =
  QCheck.Test.make ~name:"instr JSON codec round-trips" ~count:500 instr_arb (fun i ->
      match Ir.instr_of_json (Ir.instr_to_json i) with
      | Ok i' -> i = i'
      | Error msg -> QCheck.Test.fail_reportf "decode failed: %s" msg)

let test_instr_json_rejects () =
  let bad j =
    match Ir.instr_of_json j with
    | Ok _ -> Alcotest.fail "malformed instruction decoded"
    | Error _ -> ()
  in
  bad Json.Null;
  bad (Json.Obj [ ("op", Json.String "no-such-op") ]);
  bad (Json.Obj [ ("op", Json.String "probe") ]);
  bad (Json.String "halt")

(* --- encoder and classification ------------------------------------------- *)

let test_check_template_rejects () =
  let reject what t =
    match Encode.check_template t with
    | Ok () -> Alcotest.failf "accepted template with %s" what
    | Error _ -> ()
  in
  let base ~slots =
    { Encode.t_name = "t"; n_regs = 1; obs_arity = 0; n_consts = 2; slots }
  in
  reject "empty menu" (base ~slots:[| [||]; [| Ir.Out_const 0 |] |]);
  reject "backward jump"
    (base ~slots:[| [| Ir.Jump 0 |]; [| Ir.Out_const 0 |] |]);
  reject "non-terminal last slot" (base ~slots:[| [| Ir.Jump 1 |]; [| Ir.Halt |] |]);
  reject "out-of-range const" (base ~slots:[| [| Ir.Out_const 7 |] |]);
  reject "fragment violation (Mark)"
    (base ~slots:[| [| Ir.Mark 0 |]; [| Ir.Out_const 0 |] |]);
  match
    Encode.check_template
      (base ~slots:[| [| Ir.Jump 1; Ir.Out_const 1 |]; [| Ir.Out_const 0 |] |])
  with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "rejected well-formed template: %s" msg

let spec_of name =
  match Classify.find name with
  | Some s -> s
  | None -> Alcotest.failf "spec %s not found" name

let test_find_aliases () =
  List.iter
    (fun name ->
      match Classify.find name with
      | Some _ -> ()
      | None -> Alcotest.failf "lookup %S failed" name)
    [ "degree-parity"; "DEGREE-PARITY"; "DegreeParity"; "CycleColoring3"; "LeafColoring" ];
  Alcotest.(check bool) "unknown name" true (Classify.find "no-such-problem" = None)

let test_degree_parity_sat () =
  let s = spec_of "degree-parity" in
  match Classify.run s ~volume:1 with
  | Error msg -> Alcotest.fail msg
  | Ok v -> (
      Alcotest.(check bool) "SAT at volume 1" true v.Classify.v_sat;
      match v.Classify.v_report.Encode.outcome with
      | Encode.Unsat_at_budget -> Alcotest.fail "SAT verdict without witness"
      | Encode.Synthesized p -> (
          (* the witness must survive an independent re-examination *)
          match Encode.recheck s.Classify.s_universe p with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "recheck: %s" msg))

let test_degree_parity_unsat_axiom () =
  let s = spec_of "degree-parity" in
  match Classify.run s ~volume:0 with
  | Error msg -> Alcotest.fail msg
  | Ok v ->
      Alcotest.(check bool) "UNSAT at volume 0" false v.Classify.v_sat;
      (* the VOL >= 1 axiom short-circuits before any solving *)
      Alcotest.(check int) "no CEGIS iterations" 0 v.Classify.v_report.Encode.cegis_iters

(* The probe rung (s_unsat_volume = 2) keeps certification sub-second;
   the deeper budget-3 refutation is covered by @synth-smoke, where its
   proof is not replayed (too large for the quadratic DRUP checker). *)
let test_leaf_unsat_below_bound_certified () =
  let s = spec_of "leaf-coloring" in
  let rung = s.Classify.s_unsat_volume in
  (match s.Classify.s_bound with
  | Some bound -> Alcotest.(check bool) "budget below bound" true (rung < bound)
  | None -> Alcotest.fail "leaf-coloring lost its adversary bound");
  match Classify.run ~certify:true s ~volume:rung with
  | Error msg -> Alcotest.fail msg
  | Ok v ->
      Alcotest.(check bool) "UNSAT at the probe rung" false v.Classify.v_sat;
      Alcotest.(check bool)
        "DRUP-certified" true
        (v.Classify.v_report.Encode.certified = Some true)

let test_oracle_probe_parity () =
  match Classify.oracle_probe ~registry_name:"DegreeParity" with
  | None -> Alcotest.fail "DegreeParity has a synthesis universe"
  | Some (Error msg) -> Alcotest.fail msg
  | Some (Ok ()) -> ()

let test_oracle_probe_unknown () =
  Alcotest.(check bool)
    "no universe -> None" true
    (Classify.oracle_probe ~registry_name:"SinklessOrientation" = None)

let suites =
  [
    ( "synth-sat",
      [
        Alcotest.test_case "pigeonhole 4/3 UNSAT + certify" `Quick test_pigeonhole_unsat;
        Alcotest.test_case "deterministic runs" `Quick test_deterministic;
        Alcotest.test_case "define_and semantics" `Quick test_define_and;
        Alcotest.test_case "simplify forces implication chain" `Quick test_simplify_chain;
        Alcotest.test_case "empty clause" `Quick test_empty_clause_unsat;
        QCheck_alcotest.to_alcotest prop_solve_matches_brute_force;
        QCheck_alcotest.to_alcotest prop_dimacs_round_trip;
        QCheck_alcotest.to_alcotest prop_simplify_matches_naive;
        QCheck_alcotest.to_alcotest prop_incremental_block_models;
      ] );
    ( "synth-encode",
      [
        QCheck_alcotest.to_alcotest prop_instr_json_round_trip;
        Alcotest.test_case "instr codec rejects malformed input" `Quick
          test_instr_json_rejects;
        Alcotest.test_case "check_template rejects ill-formed slots" `Quick
          test_check_template_rejects;
        Alcotest.test_case "spec lookup aliases" `Quick test_find_aliases;
        Alcotest.test_case "degree parity SAT at volume 1 + recheck" `Quick
          test_degree_parity_sat;
        Alcotest.test_case "degree parity UNSAT at volume 0 (axiom)" `Quick
          test_degree_parity_unsat_axiom;
        Alcotest.test_case "leaf coloring certified UNSAT below adversary bound" `Quick
          test_leaf_unsat_below_bound_certified;
        Alcotest.test_case "oracle probe: degree parity ok" `Quick test_oracle_probe_parity;
        Alcotest.test_case "oracle probe: no universe" `Quick test_oracle_probe_unknown;
      ] );
  ]
