module TL = Vc_graph.Tree_labels
module Graph = Vc_graph.Graph
module Probe = Vc_model.Probe
module World = Vc_model.World
module Lcl = Vc_lcl.Lcl
module Splitmix = Vc_rng.Splitmix

type node_input = Leaf_coloring.node_input

type output =
  | Chromatic of TL.color
  | Decline
  | Exempt

let equal_output a b =
  match (a, b) with
  | Chromatic x, Chromatic y -> TL.equal_color x y
  | Decline, Decline | Exempt, Exempt -> true
  | (Chromatic _ | Decline | Exempt), _ -> false

let pp_output ppf = function
  | Chromatic c -> TL.pp_color ppf c
  | Decline -> Fmt.string ppf "D"
  | Exempt -> Fmt.string ppf "X"

type instance = {
  base : Leaf_coloring.instance;
  k : int;
}

let input inst v = Leaf_coloring.input inst.base v

let graph inst = inst.base.Leaf_coloring.graph

let world inst = World.of_graph (graph inst) ~input:(input inst)

(* --- structural accessors --------------------------------------------- *)

type 'a access = {
  degree : Graph.node -> int;
  node_input : Graph.node -> node_input;
  follow : Graph.node -> TL.ptr -> Graph.node;
}

let graph_access inst =
  let g = graph inst in
  {
    degree = Graph.degree g;
    node_input = input inst;
    follow = Graph.neighbor g;
  }

let resolve a v p =
  if p = TL.bot || p < 1 || p > a.degree v then None else Some (a.follow v p)

(* A child pointer counts only when reciprocated: the target's parent
   pointer resolves back to the node.  Non-reciprocated pointers leave
   the hierarchical forest G_k without the corresponding edge. *)
let reciprocated_child a v p =
  match resolve a v p with
  | None -> None
  | Some u ->
      (match resolve a u (a.node_input u).Leaf_coloring.parent with
      | Some v' when v' = v -> Some u
      | Some _ | None -> None)

let rc_child a v = reciprocated_child a v (a.node_input v).Leaf_coloring.right

let lc_child a v = reciprocated_child a v (a.node_input v).Leaf_coloring.left

(* Definition 5.1: level 1 when the right-child pointer is ⊥ (or not a
   real edge); otherwise one above the right child's level.  Pointer
   cycles and levels beyond k are reported as k+1 ("too high"). *)
let level a ~k v =
  let rec descend v depth =
    if depth > k then k + 1
    else
      match rc_child a v with
      | None -> depth
      | Some u -> descend u (depth + 1)
  in
  descend v 1

let backbone_child a ~k v =
  match lc_child a v with
  | None -> None
  | Some u -> if level a ~k u = level a ~k v then Some u else None

let backbone_parent a ~k v =
  match resolve a v (a.node_input v).Leaf_coloring.parent with
  | None -> None
  | Some u -> (
      match lc_child a u with
      | Some v' when v' = v -> if level a ~k u = level a ~k v then Some u else None
      | Some _ | None -> None)

(* --- the LCL checker (Definition 5.5) ---------------------------------- *)


let problem ~k : (node_input, output) Lcl.t =
  let valid_at g ~input:inp ~output:out v =
    let a = { degree = Graph.degree g; node_input = inp; follow = Graph.neighbor g } in
    let l = level a ~k v in
    let chi v = (inp v).Leaf_coloring.color in
    let err fmt = Fmt.kstr (fun s -> Error s) fmt in
    if l > k then
      match out v with
      | Exempt -> Ok ()
      | o -> err "level > k must be exempt, got %a" pp_output o
    else
      let bc = backbone_child a ~k v in
      let is_leaf = bc = None in
      let rc_out = Option.map out (rc_child a v) in
      let rc_solved =
        match rc_out with
        | Some (Chromatic _ | Exempt) -> true
        | Some Decline | None -> false
      in
      let leaf_clause () =
        (* condition 2 *)
        if not is_leaf then Ok ()
        else
          match out v with
          | Chromatic c when TL.equal_color c (chi v) -> Ok ()
          | Decline | Exempt -> Ok ()
          | Chromatic c -> err "leaf must echo %a, decline or be exempt; got %a" TL.pp_color (chi v) pp_output (Chromatic c)
      in
      let copies_child () =
        match bc with
        | None -> true
        | Some u -> equal_output (out v) (out u)
      in
      let result =
        if l = 1 then
          (* condition 3 *)
          match out v with
          | Exempt -> err "level-1 nodes may not be exempt"
          | Chromatic _ | Decline ->
              if is_leaf then leaf_clause ()
              else if copies_child () then Ok ()
              else err "level-1 backbone must be unanimous"
        else if l < k then begin
          (* condition 4 (non-leaves), condition 2 (leaves) *)
          if is_leaf then
            match out v with
            | Exempt ->
                (* a leaf that exempts itself must still anchor on a
                   solved subtree (conditions 4(b)/5(a) in spirit) *)
                if rc_solved then Ok () else err "exempt leaf without solved subtree"
            | Chromatic _ | Decline -> leaf_clause ()
          else
            let u = match bc with Some u -> u | None -> assert false in
            match out v with
            | Exempt ->
                if rc_solved then Ok ()
                else err "exempt requires the hung subtree to be solved (got %a)"
                    Fmt.(option pp_output) rc_out
            | Chromatic _ | Decline -> (
                if copies_child () then Ok ()
                else
                  match out u with
                  | Exempt -> (
                      (* condition 4(c) *)
                      match out v with
                      | Chromatic c when TL.equal_color c (chi v) -> Ok ()
                      | Decline -> Ok ()
                      | o -> err "above an exempt node: input color or D, got %a" pp_output o)
                  | Chromatic _ | Decline ->
                      err "must copy backbone child (%a) or sit above an exempt node"
                        pp_output (out u))
        end
        else begin
          (* l = k: condition 5 *)
          match out v with
          | Decline -> err "level-k nodes may not decline"
          | Exempt -> if rc_solved then Ok () else err "exempt requires solved subtree (5a)"
          | Chromatic _ when is_leaf -> leaf_clause ()
          | Chromatic c -> (
              let u = match bc with Some u -> u | None -> assert false in
              match out u with
              | Exempt ->
                  if TL.equal_color c (chi v) then Ok ()
                  else err "above exempt at level k: must echo own input color"
              | (Chromatic _ | Decline) as ou ->
                  if equal_output (Chromatic c) ou then Ok ()
                  else err "level-k backbone must copy child (%a)" pp_output ou)
        end
      in
      (match result, out v with
      | Ok (), Chromatic _ when l = 1 || l = k || not is_leaf ->
          (* conditions 3(a)/5 also restrict the alphabet; chromatic is
             always allowed, nothing more to check *)
          Ok ()
      | r, _ -> r)
  in
  { Lcl.name = Printf.sprintf "Hierarchical-THC(%d)" k; radius = 2 * (k + 2); valid_at }

(* --- instance generators ------------------------------------------------ *)

(* Structural description accumulated while generating: for each node its
   parent/left/right targets as node options. *)
type builder = {
  mutable parent_of : (int * int) list;  (* (node, parent) *)
  mutable left_of : (int * int) list;
  mutable right_of : (int * int) list;
  mutable next : int;
}

let new_node b =
  let v = b.next in
  b.next <- v + 1;
  v

(* Build one level-[l] component: a backbone (path, or cycle when [cyclic])
   of [len l] nodes; every backbone node of level >= 2 hangs a fresh
   level-(l-1) component by its right pointer.  Returns the backbone
   root. *)
let rec gen_component b ~len ~cyclic l =
  let size = max 1 (len l) in
  let backbone = Array.init size (fun _ -> new_node b) in
  for i = 0 to size - 2 do
    b.left_of <- (backbone.(i), backbone.(i + 1)) :: b.left_of;
    b.parent_of <- (backbone.(i + 1), backbone.(i)) :: b.parent_of
  done;
  if cyclic && size >= 3 then begin
    b.left_of <- (backbone.(size - 1), backbone.(0)) :: b.left_of;
    b.parent_of <- (backbone.(0), backbone.(size - 1)) :: b.parent_of
  end;
  if l >= 2 then
    Array.iter
      (fun v ->
        let sub_root = gen_component b ~len ~cyclic:false (l - 1) in
        b.right_of <- (v, sub_root) :: b.right_of;
        b.parent_of <- (sub_root, v) :: b.parent_of)
      backbone;
  backbone.(0)

let finish b ~k ~seed =
  let n = b.next in
  let edges =
    List.sort_uniq compare
      (List.map
         (fun (v, u) -> (min v u, max v u))
         (b.left_of @ b.right_of))
  in
  let g = Graph.of_edges ~n edges in
  let assoc l = (let tbl = Hashtbl.create (List.length l) in
                 List.iter (fun (v, u) -> Hashtbl.replace tbl v u) l;
                 fun v -> Hashtbl.find_opt tbl v)
  in
  let parent = assoc b.parent_of and left = assoc b.left_of and right = assoc b.right_of in
  let labels = TL.of_structure g ~parent ~left ~right in
  let rng = Splitmix.create seed in
  let colors = Array.init n (fun _ -> if Splitmix.bool rng then TL.Red else TL.Blue) in
  { base = Leaf_coloring.of_tree g labels ~colors; k }

let uniform_instance ~k ~len ~seed =
  if k < 1 then invalid_arg "Hierarchical_thc.uniform_instance: k must be >= 1";
  if len < 1 then invalid_arg "Hierarchical_thc.uniform_instance: len must be >= 1";
  let b = { parent_of = []; left_of = []; right_of = []; next = 0 } in
  ignore (gen_component b ~len:(fun _ -> len) ~cyclic:false k);
  finish b ~k ~seed

let cycle_backbone_instance ~k ~len ~seed =
  if len < 3 then invalid_arg "Hierarchical_thc.cycle_backbone_instance: len must be >= 3";
  let b = { parent_of = []; left_of = []; right_of = []; next = 0 } in
  ignore (gen_component b ~len:(fun _ -> len) ~cyclic:true k);
  finish b ~k ~seed

(* The volume-hard workload.  Every backbone of the spine is deep
   (longer than the 2·n^{1/k} scan threshold) and carries a consecutive
   run of nodes whose hung subtrees are "unsolvable": their roots must
   output D, so the run's parents cannot exempt themselves and must
   search the run for an anchor, evaluating one subtree per step.

   Placement of the run matters.  At the top level the run sits in the
   middle and is shorter than the threshold, so anchors exist and the
   output stays valid (level-k declining is forbidden).  At the levels
   below, the run covers the backbone's whole prefix — longer than the
   threshold and including the root — so the hung root itself finds no
   anchor and declines, which is what propagates "unsolvable" upward
   and forces the cascade: Algorithm 2 pays Θ̃(n) volume from a top run
   node, while the way-point variant samples only O(log n) subtrees per
   segment and pays Õ(n^{1/k}). *)
let hard_instance ~k ~target_n ~seed =
  if k < 2 then invalid_arg "Hierarchical_thc.hard_instance: k must be >= 2";
  let r =
    max 8 (int_of_float (Float.round (Float.pow (float_of_int target_n) (1.0 /. float_of_int k))))
  in
  let backbone_len = 3 * r in
  let top_run_len = max 1 (r / 4) in
  let top_run_start = (backbone_len - top_run_len) / 2 in
  (* below the top, the run covers the whole backbone: every child is
     unsolvable, so the root's anchor seek runs past the threshold and
     the component declines *)
  let prefix_run_len = backbone_len in
  let shallow_len = max 1 (r / 8) in
  let b = { parent_of = []; left_of = []; right_of = []; next = 0 } in
  let rec gen_hard l =
    if l = 1 then gen_component b ~len:(fun _ -> backbone_len) ~cyclic:false 1
    else begin
      let run_start, run_len =
        if l = k then (top_run_start, top_run_len) else (0, prefix_run_len)
      in
      let backbone = Array.init backbone_len (fun _ -> new_node b) in
      for i = 0 to backbone_len - 2 do
        b.left_of <- (backbone.(i), backbone.(i + 1)) :: b.left_of;
        b.parent_of <- (backbone.(i + 1), backbone.(i)) :: b.parent_of
      done;
      Array.iteri
        (fun i v ->
          let sub_root =
            if i >= run_start && i < run_start + run_len then gen_hard (l - 1)
            else gen_component b ~len:(fun _ -> shallow_len) ~cyclic:false (l - 1)
          in
          b.right_of <- (v, sub_root) :: b.right_of;
          b.parent_of <- (sub_root, v) :: b.parent_of)
        backbone;
      backbone.(0)
    end
  in
  let top = gen_hard k in
  let inst = finish b ~k ~seed in
  (* the interesting start node: the middle of the top-level run *)
  let hot = top + top_run_start + (top_run_len / 2) in
  (inst, hot)

(* --- solvers (Algorithm 2 and its way-point variant) -------------------- *)

(* Component scan from [v] at its level: walk down through backbone
   children and up through backbone parents, at most [limit] steps each
   way, detecting backbone cycles.  Returns:
   - [`Small anchor]: the component has at most [threshold] nodes and
     [anchor] is its leaf (paths) or minimum-id node (cycles);
   - [`Deep]: it is larger. *)
let scan_component a ~k ~id ~threshold ~limit v =
  let rec down u steps acc =
    if steps > limit then `Cut acc
    else
      match backbone_child a ~k u with
      | None -> `Leaf (u, acc)
      | Some w -> if w = v then `Cycle acc else down w (steps + 1) (w :: acc)
  in
  match down v 0 [ v ] with
  | `Cycle members ->
      if List.length members <= threshold then
        let anchor =
          List.fold_left (fun best u -> if id u < id best then u else best) v members
        in
        `Small anchor
      else `Deep
  | `Cut _ -> `Deep
  | `Leaf (leaf, members) ->
      let rec up u steps acc =
        if steps > limit then `Cut acc
        else
          match backbone_parent a ~k u with
          | None -> `Root acc
          | Some w -> up w (steps + 1) (w :: acc)
      in
      (match up v 0 members with
      | `Cut _ -> `Deep
      | `Root members -> if List.length members <= threshold then `Small leaf else `Deep)

let kth_root n k =
  int_of_float (Float.ceil (Float.pow (float_of_int n) (1.0 /. float_of_int k)))

(* One deep-backbone coloring step, shared with Hybrid-THC: the node
   exempts itself if its own hung subtree is solved; otherwise it seeks
   the nearest anchors — solved nodes or backbone ends — below ([bc])
   and above ([bp]), and takes the segment color they determine; if the
   anchors are out of reach it declines (when allowed). *)
let backbone_solve ~bc ~bp ~chi ~rc_solved ~decline_allowed ~threshold v =
  if rc_solved v then Exempt
  else begin
    let rec seek step u dist =
      if u <> v && rc_solved u then Some (u, dist, `Solved)
      else
        match step u with
        | None -> Some (u, dist, `End)
        | Some u' -> if dist >= threshold + 1 then None else seek step u' (dist + 1)
    in
    let down = seek bc v 0 in
    let up = seek bp v 0 in
    match (down, up) with
    | Some (u, du, ukind), Some (_, dw, _) when du + dw <= threshold -> (
        match ukind with
        | `Solved ->
            (* u will output X; the segment takes the input color of
               the node just above u *)
            let above = match bp u with Some p -> p | None -> u in
            Chromatic (chi above)
        | `End ->
            (* u is the level leaf and will echo its input *)
            Chromatic (chi u))
    | Some _, Some _ | Some _, None | None, Some _ | None, None ->
        if decline_allowed then Decline
        else
          (* unreachable on well-formed instances (Lemma 5.11): echo
             the input color defensively *)
          Chromatic (chi v)
  end

let solve_access ~k ~is_waypoint ~access:a ~n ~id v0 =
  let threshold = 2 * kth_root n k in
  let chi v = (a.node_input v).Leaf_coloring.color in
  let rec solve v l =
    if l > k then Exempt
    else
      match scan_component a ~k ~id ~threshold ~limit:(threshold + 1) v with
      | `Small anchor -> Chromatic (chi anchor)
      | `Deep ->
          if l = 1 then Decline
          else
            let rc_solved u =
              is_waypoint u
              &&
              match rc_child a u with
              | None -> false
              | Some r -> (
                  match solve r (l - 1) with
                  | Chromatic _ | Exempt -> true
                  | Decline -> false)
            in
            backbone_solve
              ~bc:(backbone_child a ~k)
              ~bp:(backbone_parent a ~k)
              ~chi ~rc_solved
              ~decline_allowed:(l < k) ~threshold v
  in
  solve v0 (level a ~k v0)

let probe_access ctx =
  {
    degree = Probe.degree ctx;
    node_input = (fun v -> Probe.input ctx v);
    follow = (fun v p -> Probe.query ctx ~at:v ~port:p);
  }

let solve_gen ~k ~is_waypoint ctx =
  solve_access ~k ~is_waypoint ~access:(probe_access ctx) ~n:(Probe.n ctx)
    ~id:(Probe.id ctx) (Probe.origin ctx)

let solve_deterministic ~k =
  Lcl.solver
    ~name:(Printf.sprintf "RecursiveHTHC(k=%d) (Alg 2)" k)
    ~randomized:false
    (fun ctx -> solve_gen ~k ~is_waypoint:(fun _ -> true) ctx)

(* Way-point election: compare 30 private bits against p·2^30, so every
   execution that inspects a node sees the same verdict. *)
let elect_waypoint ctx ~p v =
  let scaled = int_of_float (p *. 1073741824.0) in
  let rec value i acc = if i = 30 then acc else value (i + 1) ((2 * acc) + if Probe.rand_bit_at ctx v i then 1 else 0) in
  value 0 0 < scaled

let solve_waypoint ~k ?(c = 3.0) () =
  Lcl.solver
    ~name:(Printf.sprintf "waypoint-HTHC(k=%d, c=%.1f) (Prop 5.14)" k c)
    ~randomized:true
    (fun ctx ->
      let n = Probe.n ctx in
      let p =
        Float.min 1.0
          (c *. log (float_of_int (max 2 n)) /. float_of_int (kth_root n k))
      in
      solve_gen ~k ~is_waypoint:(elect_waypoint ctx ~p) ctx)

let solvers ~k = [ solve_deterministic ~k; solve_waypoint ~k () ]
