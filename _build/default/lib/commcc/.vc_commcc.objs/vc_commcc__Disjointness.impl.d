lib/commcc/disjointness.ml: Array Fmt String Vc_rng
