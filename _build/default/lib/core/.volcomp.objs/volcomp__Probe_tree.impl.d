lib/core/probe_tree.ml: Vc_graph Vc_model
