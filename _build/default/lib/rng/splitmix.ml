type t = { mutable state : int64; seed : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* SplitMix64 finalizer (Steele, Lea, Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = seed; seed }

let copy g = { state = g.state; seed = g.seed }

let next g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let split g ~key =
  (* Derive a child seed from the parent seed (not its moving state) so
     that per-key streams are stable across the parent's usage. *)
  let child = mix (Int64.add (mix g.seed) (Int64.mul key golden_gamma)) in
  create child

let bool g = Int64.logand (next g) 1L = 1L

let int g ~bound =
  if bound <= 0 then invalid_arg "Splitmix.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let b = Int64.of_int bound in
  let rec loop () =
    let r = Int64.shift_right_logical (next g) 1 in
    let v = Int64.rem r b in
    if Int64.sub r v > Int64.sub (Int64.sub Int64.max_int b) 1L then loop ()
    else Int64.to_int v
  in
  loop ()

let float g =
  let r = Int64.shift_right_logical (next g) 11 in
  Int64.to_float r *. (1.0 /. 9007199254740992.0)
