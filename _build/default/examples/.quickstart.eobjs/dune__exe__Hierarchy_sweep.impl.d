examples/hierarchy_sweep.ml: Fmt Int64 List Vc_graph Vc_lcl Vc_model Vc_rng Volcomp
