let m_fanouts = Vc_obs.Metrics.counter "pool.fanouts"
let m_chunks = Vc_obs.Metrics.counter "pool.chunks"
let m_chunk_items = Vc_obs.Metrics.histogram "pool.chunk_items"

type t = {
  domains : int;
  queue : (unit -> unit) Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable workers : unit Domain.t list;
  mutable closed : bool;
}

let default_domains () =
  match Sys.getenv_opt "VOLCOMP_JOBS" with
  | None -> Domain.recommended_domain_count ()
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> j
      | Some _ | None ->
          invalid_arg (Printf.sprintf "VOLCOMP_JOBS must be a positive integer, got %S" s))

let rec worker_loop t =
  Mutex.lock t.lock;
  let rec next () =
    if t.closed then None
    else
      match Queue.take_opt t.queue with
      | Some job -> Some job
      | None ->
          Condition.wait t.nonempty t.lock;
          next ()
  in
  let job = next () in
  Mutex.unlock t.lock;
  match job with
  | None -> ()
  | Some job ->
      (* Jobs wrap their own exceptions; a raise here would tear the
         worker down silently, so swallow defensively. *)
      (try job () with _ -> ());
      worker_loop t

let create ?domains () =
  let domains = match domains with Some d -> d | None -> default_domains () in
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let t =
    {
      domains;
      queue = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      workers = [];
      closed = false;
    }
  in
  t.workers <- List.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let domains t = t.domains

let worker_count t = List.length t.workers

let shutdown t =
  Mutex.lock t.lock;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Chunk size depends only on the input length and the pool width, never
   on scheduling, so the chunk partition seen by [body] is reproducible
   run to run.  8 chunks per domain keeps the tail balanced without
   drowning small inputs in queue traffic. *)
let chunk_size t n = max 1 ((n + (t.domains * 8) - 1) / (t.domains * 8))

(* Run [body c start stop] for every chunk [c] covering [start, stop).
   The caller participates; [domains - 1] helper jobs are enqueued.  The
   call returns once every chunk has completed (on any domain).  [body]
   must not raise. *)
let run_chunks t ~n ~chunk body =
  if n > 0 then begin
    Vc_obs.Metrics.incr m_fanouts;
    let nchunks = (n + chunk - 1) / chunk in
    let next = Atomic.make 0 in
    let remaining = Atomic.make nchunks in
    let fin_lock = Mutex.create () in
    let fin_cond = Condition.create () in
    let finished = ref false in
    let rec participate () =
      let c = Atomic.fetch_and_add next 1 in
      if c < nchunks then begin
        let start = c * chunk and stop = min n ((c + 1) * chunk) in
        Vc_obs.Metrics.incr m_chunks;
        Vc_obs.Metrics.observe m_chunk_items (stop - start);
        body c start stop;
        if Atomic.fetch_and_add remaining (-1) = 1 then begin
          Mutex.lock fin_lock;
          finished := true;
          Condition.signal fin_cond;
          Mutex.unlock fin_lock
        end;
        participate ()
      end
    in
    if t.domains > 1 && nchunks > 1 then begin
      Mutex.lock t.lock;
      for _ = 2 to min t.domains nchunks do
        Queue.add participate t.queue
      done;
      Condition.broadcast t.nonempty;
      Mutex.unlock t.lock
    end;
    participate ();
    Mutex.lock fin_lock;
    while not !finished do
      Condition.wait fin_cond fin_lock
    done;
    Mutex.unlock fin_lock
  end

type 'b cell =
  | Pending
  | Done of 'b
  | Failed of exn * Printexc.raw_backtrace

let reraise_first cells =
  Array.iter
    (function Failed (e, bt) -> Printexc.raise_with_backtrace e bt | Pending | Done _ -> ())
    cells

(* A width-1 pool owns no workers and no queue traffic: [map] and
   [map_reduce] run entirely on the calling domain, with no atomics,
   mutexes or chunk bookkeeping.  The only observable difference from
   the parallel path is exception eagerness: the sequential path stops
   at the first raising element instead of evaluating the rest (the
   re-raised exception is the same either way). *)

let map t f xs =
  if t.domains = 1 then List.map f xs
  else begin
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let out = Array.make n Pending in
    run_chunks t ~n ~chunk:(chunk_size t n) (fun _ start stop ->
        for i = start to stop - 1 do
          out.(i) <-
            (try Done (f arr.(i)) with e -> Failed (e, Printexc.get_raw_backtrace ()))
        done);
    reraise_first out;
    List.init n (fun i -> match out.(i) with Done v -> v | Pending | Failed _ -> assert false)
  end

let map_reduce t ~map:f ~combine ~init xs =
  if t.domains = 1 then List.fold_left (fun acc x -> combine acc (f x)) init xs
  else begin
    let arr = Array.of_list xs in
    let n = Array.length arr in
    if n = 0 then init
    else begin
      let chunk = chunk_size t n in
      let nchunks = (n + chunk - 1) / chunk in
      let partials = Array.make nchunks Pending in
      run_chunks t ~n ~chunk (fun c start stop ->
          partials.(c) <-
            (try
               let acc = ref (f arr.(start)) in
               for i = start + 1 to stop - 1 do
                 acc := combine !acc (f arr.(i))
               done;
               Done !acc
             with e -> Failed (e, Printexc.get_raw_backtrace ())));
      reraise_first partials;
      Array.fold_left
        (fun acc cell ->
          match cell with Done p -> combine acc p | Pending | Failed _ -> assert false)
        init partials
    end
  end
