module Graph = Vc_graph.Graph
module Builder = Vc_graph.Builder
module TL = Vc_graph.Tree_labels
module Splitmix = Vc_rng.Splitmix
module LC = Volcomp.Leaf_coloring
module BT = Volcomp.Balanced_tree
module Hy = Volcomp.Hybrid_thc
module SO = Volcomp.Sinkless
module Family = Vc_family.Family
module Ir = Vc_ir.Ir

(* --- graph specs --------------------------------------------------------- *)

type shape = Path | Cycle | Complete_tree | Random_tree | Cubic | Torus | D_regular | Expander

let all_shapes = [ Path; Cycle; Complete_tree; Random_tree; Cubic; Torus; D_regular; Expander ]

let pp_shape ppf = function
  | Path -> Fmt.string ppf "path"
  | Cycle -> Fmt.string ppf "cycle"
  | Complete_tree -> Fmt.string ppf "complete-tree"
  | Random_tree -> Fmt.string ppf "random-tree"
  | Cubic -> Fmt.string ppf "cubic"
  | Torus -> Fmt.string ppf "torus"
  | D_regular -> Fmt.string ppf "d-regular"
  | Expander -> Fmt.string ppf "expander"

type graph_spec = {
  shape : shape;
  size : int;
  g_seed : int64;
}

let pp_spec ppf s = Fmt.pf ppf "%a(size=%d, seed=%Ld)" pp_shape s.shape s.size s.g_seed

let min_size_of = function
  | Path -> 1
  | Cycle -> 3
  | Complete_tree -> 3
  | Random_tree -> 3
  | Cubic -> 8
  | Torus -> 16
  | D_regular -> 6
  | Expander -> 5

let build spec =
  let size = max (min_size_of spec.shape) spec.size in
  match spec.shape with
  | Path -> Builder.path size
  | Cycle -> Builder.cycle size
  | Complete_tree ->
      (* the largest complete tree with at most [size] nodes *)
      let depth = max 1 (Volcomp.Probe_tree.log2_ceil (size + 2) - 1) in
      Builder.complete_binary_tree ~depth
  | Random_tree -> Builder.random_binary_tree ~n:size ~rng:(Splitmix.create spec.g_seed)
  | Cubic -> SO.random_cubic ~n:size ~seed:spec.g_seed
  | Torus -> Family.torus_of_size ~size ~seed:spec.g_seed
  | D_regular -> Family.regular_of_size ~d:4 ~size ~seed:spec.g_seed
  | Expander -> Family.expander_of_size ~size ~seed:spec.g_seed

let spec ?(shapes = all_shapes) ?(min_size = 8) ?(max_size = 64) () =
  if shapes = [] then invalid_arg "Gen.spec: shapes must be non-empty";
  let gen =
    QCheck.Gen.map3
      (fun i size g_seed -> { shape = List.nth shapes i; size; g_seed })
      (QCheck.Gen.int_range 0 (List.length shapes - 1))
      (QCheck.Gen.int_range min_size max_size)
      QCheck.Gen.int64
  in
  (* shrink towards the smallest same-shape, same-seed graph *)
  let shrink spec yield =
    let s = ref (spec.size / 2) in
    while !s >= min_size do
      yield { spec with size = !s };
      s := !s / 2
    done
  in
  QCheck.make gen ~print:(Fmt.str "%a" pp_spec) ~shrink

(* --- labeled instances ---------------------------------------------------- *)

let colored_tree ~n ~seed = LC.random_instance ~n ~seed

let pseudo_tree ~cycle_len ~seed = LC.cycle_instance ~cycle_len ~seed

(* --- garbage labelings ----------------------------------------------------- *)

let garbage_ptr rng deg = Splitmix.int rng ~bound:(deg + 3)

let garbage_color rng = if Splitmix.bool rng then TL.Red else TL.Blue

let garbage_graph rng =
  if Splitmix.bool rng then
    SO.random_cubic ~n:(20 + Splitmix.int rng ~bound:30) ~seed:(Splitmix.next rng)
  else Builder.random_binary_tree ~n:(21 + (2 * Splitmix.int rng ~bound:15)) ~rng

let garbage_leaf_input rng =
  {
    LC.parent = garbage_ptr rng 4;
    left = garbage_ptr rng 4;
    right = garbage_ptr rng 4;
    color = garbage_color rng;
  }

let garbage_balanced_input rng =
  {
    BT.parent = garbage_ptr rng 4;
    left = garbage_ptr rng 4;
    right = garbage_ptr rng 4;
    left_nbr = garbage_ptr rng 4;
    right_nbr = garbage_ptr rng 4;
  }

let garbage_hybrid_input rng =
  {
    Hy.parent = garbage_ptr rng 4;
    left = garbage_ptr rng 4;
    right = garbage_ptr rng 4;
    left_nbr = garbage_ptr rng 4;
    right_nbr = garbage_ptr rng 4;
    color = garbage_color rng;
    level = Splitmix.int rng ~bound:5;
  }

(* --- random probe programs -------------------------------------------------- *)

type program_spec = { p_blocks : int; p_seed : int64 }

let pp_program_spec ppf s = Fmt.pf ppf "ir-program(blocks=%d, seed=%Ld)" s.p_blocks s.p_seed

let ir_n_regs = 4
let ir_n_queues = 2
let ir_obs_arity = 3
let ir_consts = [| 0; 1 |]

(* Observation fields are small pseudo-random port-sized ints (0..3), so
   a [P_field] hop is valid often enough to walk and invalid often
   enough to exercise the truncation path. *)
let ir_obs i f = (((i * 0x2545f491) lsr (3 * f)) lxor (i lsr 7)) land 3

let ir_input g v = Graph.id g v

(* The one output combinator: a fold over everything the env exposes —
   origin, n, the full query log, ids, degrees, inputs, registers — so a
   batched-vs-reference divergence in any of them flips the output. *)
let ir_checksum env =
  let acc = ref ((env.Ir.e_origin * 31) + env.Ir.e_n) in
  let touch v =
    acc := (!acc * 131) + env.Ir.e_id v + (7 * env.Ir.e_degree v) + env.Ir.e_input v
  in
  for i = 0 to env.Ir.e_queries - 1 do
    touch (env.Ir.e_query i)
  done;
  for r = 0 to ir_n_regs - 1 do
    touch (env.Ir.e_reg r)
  done;
  !acc land 0xffffff

(* Programs are built from guarded blocks laid out consecutively, with
   control flowing only forward: a branch or jump targets the start of a
   strictly later block (or the exit block), and otherwise execution
   falls through — so every generated program terminates structurally,
   not just via the step cap.  Block [b]'s body is drawn from its own
   split of the seed, and forward targets are drawn against a fixed
   horizon and clamped to the exit at layout time, so the [p_blocks - 1]
   shrink of a failing program is literally its prefix. *)

type ptgt = Next_instr | Block of int

type pinstr = P of Ir.instr | PJump of ptgt | PBranch of Ir.cond * ptgt * ptgt

let block_rng seed b = Splitmix.split (Splitmix.create seed) ~key:(Int64.of_int b)

let gen_block rng b =
  let reg () = Splitmix.int rng ~bound:ir_n_regs in
  let queue () = Splitmix.int rng ~bound:ir_n_queues in
  let field () = Splitmix.int rng ~bound:ir_obs_arity in
  let sel () =
    if Splitmix.bool rng then Ir.P_const (1 + Splitmix.int rng ~bound:3)
    else Ir.P_field (field ())
  in
  let later () = Block (b + 1 + Splitmix.int rng ~bound:8) in
  let cond () =
    match Splitmix.int rng ~bound:9 with
    | 0 -> Ir.C_deg_le (reg (), Splitmix.int rng ~bound:4)
    | 1 -> Ir.C_deg_eq (reg (), Splitmix.int rng ~bound:4)
    | 2 -> Ir.C_deg_mod (reg (), 1 + Splitmix.int rng ~bound:3, Splitmix.int rng ~bound:3)
    | 3 -> Ir.C_port_ok (reg (), sel ())
    | 4 -> Ir.C_label_eq (reg (), field (), Splitmix.int rng ~bound:4)
    | 5 -> Ir.C_field_eq (reg (), field (), field ())
    | 6 -> Ir.C_node_eq (reg (), reg ())
    | 7 -> Ir.C_marked (reg ())
    | _ -> Ir.C_queue_empty (queue ())
  in
  let body = ref [] in
  let emit i = body := i :: !body in
  let len = 1 + Splitmix.int rng ~bound:3 in
  let stop = ref false in
  for _ = 1 to len do
    if not !stop then
      match Splitmix.int rng ~bound:10 with
      | 0 | 1 ->
          (* unguarded probe: free to walk an invalid port and truncate *)
          let path = Array.init (1 + Splitmix.int rng ~bound:2) (fun _ -> sel ()) in
          emit (P (Ir.Probe { at = reg (); path; dst = reg () }))
      | 2 | 3 ->
          (* guarded probe: first hop checked by [C_port_ok], else skip forward *)
          let at = reg () in
          let s = sel () in
          emit (PBranch (Ir.C_port_ok (at, s), Next_instr, later ()));
          emit (P (Ir.Probe { at; path = [| s |]; dst = reg () }))
      | 4 -> emit (P (Ir.Move { src = reg (); dst = reg () }))
      | 5 -> emit (P (Ir.Mark (reg ())))
      | 6 -> emit (P (Ir.Push { queue = queue (); src = reg () }))
      | 7 ->
          (* guarded pop: an empty queue skips forward instead of truncating *)
          let q = queue () in
          emit (PBranch (Ir.C_queue_empty q, later (), Next_instr));
          emit (P (Ir.Pop { queue = q; dst = reg () }))
      | 8 -> (
          match Splitmix.int rng ~bound:4 with
          | 0 -> emit (PJump (later ()))
          | _ -> emit (PBranch (cond (), later (), later ())))
      | _ ->
          (match Splitmix.int rng ~bound:4 with
          | 0 -> emit (P (Ir.Out_const (Splitmix.int rng ~bound:(Array.length ir_consts))))
          | 1 -> emit (P Ir.Halt)
          | _ -> emit (P (Ir.Out_fn 0)));
          stop := true
  done;
  List.rev !body

let build_ir_program { p_blocks; p_seed = seed } =
  let nblocks = max 1 p_blocks in
  let blocks = Array.init nblocks (fun b -> gen_block (block_rng seed b) b) in
  (* Exit terminal and declared envelope come from seed-only streams, so
     they survive block-count shrinking unchanged. *)
  let xr = block_rng seed (-1) in
  let exit_instr =
    match Splitmix.int xr ~bound:4 with
    | 0 -> Ir.Out_const (Splitmix.int xr ~bound:(Array.length ir_consts))
    | _ -> Ir.Out_fn 0
  in
  let br = block_rng seed (-2) in
  let declared =
    {
      Vc_model.Probe.max_volume =
        (if Splitmix.bool br then Some (1 + Splitmix.int br ~bound:12) else None);
      max_distance = (if Splitmix.bool br then Some (Splitmix.int br ~bound:6) else None);
    }
  in
  let max_steps = if Splitmix.bool br then Some (32 + Splitmix.int br ~bound:96) else None in
  let offs = Array.make (nblocks + 1) 0 in
  for b = 0 to nblocks - 1 do
    offs.(b + 1) <- offs.(b) + List.length blocks.(b)
  done;
  let exit_off = offs.(nblocks) in
  let resolve at = function
    | Next_instr -> at + 1
    | Block i -> if i >= nblocks then exit_off else offs.(i)
  in
  let code = Array.make (exit_off + 1) exit_instr in
  Array.iteri
    (fun b body ->
      List.iteri
        (fun j pre ->
          let at = offs.(b) + j in
          code.(at) <-
            (match pre with
            | P i -> i
            | PJump t -> Ir.Jump (resolve at t)
            | PBranch (c, tt, tf) ->
                Ir.Branch { cond = c; if_true = resolve at tt; if_false = resolve at tf }))
        body)
    blocks;
  {
    Ir.name = Fmt.str "gen-b%d-%Ld" nblocks seed;
    n_regs = ir_n_regs;
    n_queues = ir_n_queues;
    obs_arity = ir_obs_arity;
    n_consts = Array.length ir_consts;
    n_fns = 1;
    declared;
    max_steps;
    code;
  }

let ir_spec ps =
  { Ir.program = build_ir_program ps; obs = ir_obs; consts = ir_consts; fns = [| ir_checksum |] }

let ir_program ?(min_blocks = 1) ?(max_blocks = 8) () =
  if min_blocks < 1 || max_blocks < min_blocks then invalid_arg "Gen.ir_program: bad bounds";
  let gen =
    QCheck.Gen.map2
      (fun b s -> { p_blocks = b; p_seed = s })
      (QCheck.Gen.int_range min_blocks max_blocks)
      QCheck.Gen.int64
  in
  let shrink spec yield =
    for b = spec.p_blocks - 1 downto min_blocks do
      yield { spec with p_blocks = b }
    done
  in
  QCheck.make gen ~print:(Fmt.str "%a" pp_program_spec) ~shrink
