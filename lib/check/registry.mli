(** The conformance registry: every problem of [lib/core], packaged
    uniformly for differential checking.

    Each {!entry} knows how to build {e trials} — concrete instances at a
    given size and seed — and each trial exposes the six conformance
    probes the oracle runs:

    - {b differential solving}: run every registered solver over the same
      instance and report per-solver cost statistics plus output
      validity.  Solvers of the same problem may legitimately produce
      {e different} outputs (LCLs admit output freedom); what they must
      agree on is validity under the problem's own checker.
    - {b merge consistency}: the reference solver's {!Vc_measure.Runner}
      statistics must be bit-identical whether the start nodes are
      processed sequentially or fanned out over a {!Vc_exec.Pool} of any
      width.
    - {b cross-model checks}: where a second model implementation exists
      (the CONGEST protocols of Observation 7.4, the Example 7.6
      router), run it and verify its output against the same checker.
    - {b lazy vs. eager worlds}: every solver's {!Vc_model.Probe.result}
      must be bit-identical whether distances are answered by the lazy
      incremental BFS of {!Vc_model.World.of_graph} or by the eager
      full-graph BFS of {!Vc_model.World.of_graph_eager}.
    - {b mutation fuzzing}: perturb a valid output (or its input
      labeling) and classify the checker's reaction — see {!Mutate}.
    - {b record/replay}: record every solver's probe transcript
      ({!Vc_obs.Trace}), round-trip it through its JSONL encoding, and
      re-drive the run against the decoded transcript; the replay must be
      event-for-event and result bit-identical.
    - {b IR vs. closure} (entries with [ir = true]): the problem's
      {!Vc_ir} program must reproduce the reference closure solver's
      full {!Vc_model.Probe.result} — output {e and} cost envelope —
      from every origin, under both the reference interpreter and the
      batched executor, unbudgeted and budgeted alike.

    Heterogeneous problem types are hidden behind monomorphic closures,
    so the oracle iterates over [entry list] without knowing any
    problem's input or output type. *)

module Splitmix = Vc_rng.Splitmix
module Runner = Vc_measure.Runner
module Store = Vc_snap.Store

val builder_version : string
(** The registry's snapshot invalidation token; bumped whenever any
    instance builder's output changes, so stale snapshots become
    structured misses. *)

val store : dir:string -> Store.t
(** A snapshot store rooted at [dir], keyed with {!builder_version}. *)

type solver_outcome = {
  solver : string;
  randomized : bool;
  stats : Runner.stats;
  valid : bool;  (** the assembled output passes the problem's checker *)
}

type probe_summary = {
  pr_solver : string;  (** the reference solver that ran *)
  pr_volume : int;
  pr_distance : int;
  pr_queries : int;
  pr_rand_bits : int;
  pr_aborted : bool;
  pr_output : int;
      (** structural digest of the output, as in
          {!Vc_obs.Trace.Session_close} *)
}
(** Cost vector of one reference-solver run from one origin — the unit
    the serving layer answers [probe] requests with. *)

type trial = {
  t_n : int;  (** node count of the instance *)
  t_source : [ `Built | `Snapshot ];
      (** Whether the instance was built from scratch or decoded from a
          snapshot store hit — byte-identical either way (oracle probe
          ["snap"] is the proof), but the serving tier reports the
          distinction to operators. *)
  run_solvers : ?pool:Vc_exec.Pool.t -> unit -> solver_outcome list;
      (** Run every registered solver from every node of the instance. *)
  probe_origin :
    ?trace:Vc_obs.Trace.sink -> origin:int -> unit -> (probe_summary, string) result;
      (** Run the reference solver from a single origin (the serving
          layer's [probe]/[trace] requests).  Randomness derivation is
          identical to {!run_solvers}, so the summary is a deterministic
          function of the trial's (size, seed, origin). *)
  merge_consistency : widths:int list -> (unit, string) result;
      (** Re-run the reference solver under pools of the given widths and
          compare the stats against the sequential run. *)
  cross_model : (string * (unit -> (unit, string) result)) list;
      (** Named alternative-model executions (e.g. ["congest"]). *)
  lazy_vs_eager : unit -> (unit, string) result;
      (** Run every solver from every origin against both the trial's
          lazy world and an eager twin and compare the full
          {!Vc_model.Probe.result}s. *)
  ir_vs_closure : (unit -> (unit, string) result) option;
      (** [Some] iff the entry has [ir = true]: validate the IR program,
          then from every origin compare the reference closure solver,
          the {!Vc_ir.Exec.run} interpreter and the
          {!Vc_ir.Exec.run_batch} executor — full result records, under
          unlimited, volume-capped and distance-capped budgets. *)
  mutate : Splitmix.t -> Mutate.outcome list;
      (** One fuzzing round: apply each of the entry's mutation kinds
          once, at sites drawn from the given rng. *)
  trace_record : path:string -> header:Vc_obs.Json.t -> origin:int -> (unit, string) result;
      (** Record the reference solver's run from [origin] as a JSONL
          transcript at [path], with [header] on the first line. *)
  trace_replay : events:Vc_obs.Trace.event list -> origin:int -> (unit, string) result;
      (** Re-drive the reference solver from [origin] against a recorded
          transcript; [Error] describes the first divergence. *)
  trace_roundtrip : unit -> (unit, string) result;
      (** Record, JSON-round-trip and replay every solver from every
          origin; results must be bit-identical. *)
}

type entry = {
  name : string;
  family : string;
      (** The graph family the instances are drawn from ("tree", "cycle",
          "cubic", "torus", "d-regular", "expander") — the [--family]
          CLI filters and the [list --json] payload key off it. *)
  radius : int;  (** the problem's checkability radius *)
  sizes : int list;  (** instance sizes for the full profile *)
  quick_sizes : int list;  (** smaller sizes for the [dune runtest] profile *)
  ir : bool;  (** a {!Vc_ir} port of the reference solver exists *)
  make : ?store:Store.t -> size:int -> seed:int64 -> unit -> trial;
      (** Deterministic: the same (size, seed) builds the same trial.
          With [?store], a snapshot hit replaces the instance build with
          an mmap load (identical contents); a miss builds and
          best-effort publishes, so a configured store self-populates. *)
  acquire : ?store:Store.t -> size:int -> seed:int64 -> unit -> int;
      (** Materialize just the instance (no trial assembly, no solver
          closures) and return its node count — the store warm-up /
          benchmarking path.  Same store semantics as [make]. *)
}

val all : unit -> entry list
(** Every problem of [lib/core], in paper order — DegreeParity,
    CycleColoring3, Sinkless, LeafColoring, PromiseLeafColoring (secret
    regime), BalancedTree, Hierarchical-THC(2), Hybrid-THC(2),
    HH-THC(2,3), LeafBitCopy (Example 7.6) — followed by the
    [lib/family] marquee problems, one entry per (family, problem)
    pair: TorusColoring4, RegularColoring4, TorusMatching,
    RegularMatching, RegularMIS, ExpanderMIS, RegularSinkless. *)
