(* The randomized volume hierarchy (paper Section 5 and Theorem 5.9):
   Hierarchical-THC(k) has randomized volume ~n^{1/k} but deterministic
   volume ~n, for every k — infinitely many distinct volume classes.

   This example sweeps k in {2, 3} over growing hard instances and
   prints the measured costs from the worst start node, plus the
   way-point sampling trade-off that powers the randomized solver.

   Run with: dune exec examples/hierarchy_sweep.exe *)

module Graph = Vc_graph.Graph
module Probe = Vc_model.Probe
module Lcl = Vc_lcl.Lcl
module Randomness = Vc_rng.Randomness
module H = Volcomp.Hierarchical_thc

let () =
  List.iter
    (fun k ->
      Fmt.pr "== Hierarchical-THC(%d) on its hard instances ==@." k;
      Fmt.pr "      n    D-VOL    R-VOL    D-DIST  (n^(1/%d) = unit of distance)@." k;
      List.iter
        (fun target ->
          let inst, hot = H.hard_instance ~k ~target_n:target ~seed:(Int64.of_int target) in
          let n = Graph.n (H.graph inst) in
          let world = H.world inst in
          let det = Probe.run ~world ~origin:hot (H.solve_deterministic ~k).Lcl.solve in
          let rand = Randomness.create ~seed:5L ~n () in
          let way =
            Probe.run ~world ~randomness:rand ~origin:hot
              ((H.solve_waypoint ~k ~c:1.5 ()).Lcl.solve)
          in
          Fmt.pr "%7d %8d %8d %9d@." n det.Probe.volume way.Probe.volume det.Probe.distance)
        [ 4_000; 16_000; 64_000 ])
    [ 2; 3 ];

  (* The way-point rate trade-off (the ablation of DESIGN.md): a denser
     sampling rate costs volume but buys anchor density. *)
  Fmt.pr "@.== way-point rate c on a fixed Hierarchical-THC(2) hard instance ==@.";
  let inst, hot = H.hard_instance ~k:2 ~target_n:30_000 ~seed:9L in
  let n = Graph.n (H.graph inst) in
  let world = H.world inst in
  List.iter
    (fun c ->
      let rand = Randomness.create ~seed:11L ~n () in
      let r =
        Probe.run ~world ~randomness:rand ~origin:hot ((H.solve_waypoint ~k:2 ~c ()).Lcl.solve)
      in
      Fmt.pr "  c = %4.2f: volume %6d@." c r.Probe.volume)
    [ 0.5; 1.0; 2.0; 4.0 ];
  Fmt.pr "(validity under each c is exercised by the test suite and the ablation bench)@."
