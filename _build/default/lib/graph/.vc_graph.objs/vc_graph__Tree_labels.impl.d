lib/graph/tree_labels.ml: Array Builder Fmt Graph List Printf
