type event =
  | Session_open of { origin : int; n : int }
  | View of { node : int; id : int; degree : int; input : int }
  | Dist of { node : int; d : int }
  | Probe of { at : int; port : int; node : int }
  | Rand of { node : int; index : int; bit : bool }
  | Session_close of {
      volume : int;
      distance : int;
      queries : int;
      rand_bits : int;
      aborted : bool;
      output : int;
    }

let equal_event (a : event) (b : event) = a = b

let pp_event ppf = function
  | Session_open { origin; n } -> Fmt.pf ppf "open origin=%d n=%d" origin n
  | View { node; id; degree; input } ->
      Fmt.pf ppf "view node=%d id=%d degree=%d input=%#x" node id degree input
  | Dist { node; d } ->
      if d = max_int then Fmt.pf ppf "dist node=%d d=inf" node
      else Fmt.pf ppf "dist node=%d d=%d" node d
  | Probe { at; port; node } -> Fmt.pf ppf "probe at=%d port=%d -> %d" at port node
  | Rand { node; index; bit } -> Fmt.pf ppf "rand node=%d index=%d bit=%d" node index (Bool.to_int bit)
  | Session_close { volume; distance; queries; rand_bits; aborted; output } ->
      Fmt.pf ppf "close volume=%d distance=%d queries=%d rand_bits=%d aborted=%b output=%#x"
        volume distance queries rand_bits aborted output

(* Distances of unreachable nodes are [max_int], which depends on the word
   size; encode them as -1 so transcripts are portable. *)
let dist_to_json d = if d = max_int then Json.Int (-1) else Json.Int d
let dist_of_json d = if d = -1 then max_int else d

let event_to_json = function
  | Session_open { origin; n } ->
      Json.Obj [ ("ev", Json.String "open"); ("origin", Json.Int origin); ("n", Json.Int n) ]
  | View { node; id; degree; input } ->
      Json.Obj
        [
          ("ev", Json.String "view");
          ("node", Json.Int node);
          ("id", Json.Int id);
          ("degree", Json.Int degree);
          ("input", Json.Int input);
        ]
  | Dist { node; d } ->
      Json.Obj [ ("ev", Json.String "dist"); ("node", Json.Int node); ("d", dist_to_json d) ]
  | Probe { at; port; node } ->
      Json.Obj
        [
          ("ev", Json.String "probe");
          ("at", Json.Int at);
          ("port", Json.Int port);
          ("node", Json.Int node);
        ]
  | Rand { node; index; bit } ->
      Json.Obj
        [
          ("ev", Json.String "rand");
          ("node", Json.Int node);
          ("index", Json.Int index);
          ("bit", Json.Bool bit);
        ]
  | Session_close { volume; distance; queries; rand_bits; aborted; output } ->
      Json.Obj
        [
          ("ev", Json.String "close");
          ("volume", Json.Int volume);
          ("distance", dist_to_json distance);
          ("queries", Json.Int queries);
          ("rand_bits", Json.Int rand_bits);
          ("aborted", Json.Bool aborted);
          ("output", Json.Int output);
        ]

let event_of_json j =
  let ( let* ) o f = match o with Some v -> f v | None -> Error "malformed trace event" in
  let int key = Option.bind (Json.member j key) Json.to_int in
  let bool key = Option.bind (Json.member j key) Json.to_bool in
  let* ev = Option.bind (Json.member j "ev") Json.to_str in
  match ev with
  | "open" ->
      let* origin = int "origin" in
      let* n = int "n" in
      Ok (Session_open { origin; n })
  | "view" ->
      let* node = int "node" in
      let* id = int "id" in
      let* degree = int "degree" in
      let* input = int "input" in
      Ok (View { node; id; degree; input })
  | "dist" ->
      let* node = int "node" in
      let* d = int "d" in
      Ok (Dist { node; d = dist_of_json d })
  | "probe" ->
      let* at = int "at" in
      let* port = int "port" in
      let* node = int "node" in
      Ok (Probe { at; port; node })
  | "rand" ->
      let* node = int "node" in
      let* index = int "index" in
      let* bit = bool "bit" in
      Ok (Rand { node; index; bit })
  | "close" ->
      let* volume = int "volume" in
      let* distance = int "distance" in
      let* queries = int "queries" in
      let* rand_bits = int "rand_bits" in
      let* aborted = bool "aborted" in
      let* output = int "output" in
      Ok (Session_close { volume; distance = dist_of_json distance; queries; rand_bits; aborted; output })
  | ev -> Error (Printf.sprintf "unknown trace event kind %S" ev)

exception Replay_mismatch of string

type sink =
  | Null
  | Ring of { q : event Queue.t; capacity : int }
  | File of { oc : out_channel }
  | Check of { expect : event array; mutable cursor : int }

let null = Null
let ring ?(capacity = 1 lsl 18) () = Ring { q = Queue.create (); capacity }

let events = function
  | Ring { q; _ } -> List.of_seq (Queue.to_seq q)
  | _ -> invalid_arg "Trace.events: not a ring sink"

let to_file ~path ~header =
  let oc = open_out path in
  output_string oc (Json.to_string header);
  output_char oc '\n';
  File { oc }

let checking ~expect = Check { expect = Array.of_list expect; cursor = 0 }

let checking_result = function
  | Check { expect; cursor } ->
      if cursor = Array.length expect then Ok ()
      else
        Error
          (Printf.sprintf "replay stopped early: consumed %d of %d recorded events" cursor
             (Array.length expect))
  | _ -> invalid_arg "Trace.checking_result: not a checking sink"

let emit sink ev =
  match sink with
  | Null -> ()
  | Ring { q; capacity } ->
      if Queue.length q >= capacity then ignore (Queue.pop q : event);
      Queue.push ev q
  | File { oc } ->
      output_string oc (Json.to_string (event_to_json ev));
      output_char oc '\n'
  | Check c ->
      if c.cursor >= Array.length c.expect then
        raise
          (Replay_mismatch
             (Fmt.str "replay produced extra event #%d: %a" c.cursor pp_event ev));
      let want = c.expect.(c.cursor) in
      if not (equal_event want ev) then
        raise
          (Replay_mismatch
             (Fmt.str "replay diverged at event #%d: recorded {%a}, replayed {%a}" c.cursor
                pp_event want pp_event ev));
      c.cursor <- c.cursor + 1

let close = function
  | Null | Ring _ | Check _ -> ()
  | File { oc } -> close_out oc

let load ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents -> (
      let lines =
        String.split_on_char '\n' contents |> List.filter (fun l -> String.trim l <> "")
      in
      match lines with
      | [] -> Error (Printf.sprintf "%s: empty trace file" path)
      | header_line :: event_lines -> (
          match Json.parse header_line with
          | Error msg -> Error (Printf.sprintf "%s: bad header: %s" path msg)
          | Ok header when Json.member header "volcomp_trace" = None ->
              Error (Printf.sprintf "%s: not a volcomp trace (missing volcomp_trace field)" path)
          | Ok header ->
              let rec decode acc i = function
                | [] -> Ok (header, List.rev acc)
                | line :: rest -> (
                    match Json.parse line with
                    | Error msg -> Error (Printf.sprintf "%s: line %d: %s" path (i + 2) msg)
                    | Ok j -> (
                        match event_of_json j with
                        | Error msg -> Error (Printf.sprintf "%s: line %d: %s" path (i + 2) msg)
                        | Ok ev -> decode (ev :: acc) (i + 1) rest))
              in
              decode [] 0 event_lines))
