(* Tests for the observability subsystem: the JSON codec, the metrics
   counters/histograms, the trace sinks, and the end-to-end guarantees
   the rest of the repo relies on — instrumentation never perturbs
   behavior, and every registry problem's transcript survives a JSONL
   round-trip and replays bit-identically. *)

module Json = Vc_obs.Json
module Metrics = Vc_obs.Metrics
module Trace = Vc_obs.Trace
module Probe = Vc_model.Probe
module Lcl = Vc_lcl.Lcl
module Registry = Vc_check.Registry
module Oracle = Vc_check.Oracle
module LC = Volcomp.Leaf_coloring

(* --- JSON codec ------------------------------------------------------------ *)

let nested =
  Json.Obj
    [
      ("null", Json.Null);
      ("flag", Json.Bool true);
      ("n", Json.Int (-42));
      ("big", Json.I64 Int64.min_int);
      ("s", Json.String "quote \" backslash \\ newline \n tab \t");
      ("xs", Json.List [ Json.Int 1; Json.Float 0.5; Json.String "" ]);
      ("empty_obj", Json.Obj []);
      ("empty_list", Json.List []);
    ]

let test_json_roundtrip () =
  let s = Json.to_string nested in
  match Json.parse s with
  | Error msg -> Alcotest.failf "reparse failed: %s" msg
  | Ok v ->
      (* I64 smaller than the native-int range reparses as Int; compare
         through a second encode instead of structurally *)
      Alcotest.(check string) "encode . parse . encode is stable" s (Json.to_string v)

let test_json_rejects () =
  List.iter
    (fun src ->
      match Json.parse src with
      | Ok _ -> Alcotest.failf "accepted malformed input %S" src
      | Error _ -> ())
    [ "{"; "[1,]"; "{\"a\":1,}"; "\"\\x\""; "1 2"; ""; "nul"; "{\"a\" 1}"; "[01]" ]

let test_json_i64 () =
  List.iter
    (fun x ->
      let s = Json.to_string (Json.I64 x) in
      match Json.parse s with
      | Ok v -> (
          match Json.to_i64 v with
          | Some y -> Alcotest.(check int64) s x y
          | None -> Alcotest.failf "%s did not reparse as an integer" s)
      | Error msg -> Alcotest.failf "%s: %s" s msg)
    [ Int64.min_int; Int64.max_int; 0L; -1L; 4611686018427387904L ]

(* The parser feeds on untrusted socket bytes since lib/serve: nesting
   past Json.max_depth must be a parse error, never a Stack_overflow. *)
let test_json_depth_limit () =
  let deep n =
    String.concat "" [ String.make n '['; "1"; String.make n ']' ]
  in
  (match Json.parse (deep Json.max_depth) with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "depth %d rejected: %s" Json.max_depth msg);
  (match Json.parse (deep 100_000) with
  | Ok _ -> Alcotest.fail "100k-deep array accepted"
  | Error _ -> ()
  | exception Stack_overflow -> Alcotest.fail "100k-deep array overflowed the stack");
  let b = Buffer.create (100_000 * 6) in
  for _ = 1 to 100_000 do
    Buffer.add_string b "{\"a\":"
  done;
  Buffer.add_string b "1";
  for _ = 1 to 100_000 do
    Buffer.add_char b '}'
  done;
  match Json.parse (Buffer.contents b) with
  | Ok _ -> Alcotest.fail "100k-deep object accepted"
  | Error _ -> ()
  | exception Stack_overflow -> Alcotest.fail "100k-deep object overflowed the stack"

(* Structural round-trip: a generator restricted to values the codec
   represents canonically (no I64/NaN, no integral floats — those
   reparse as Int), so [parse (to_string v) = Ok v] holds *structurally*,
   not just up to re-encoding.  Strings include control characters,
   which encode as \u00XX escapes, plus raw UTF-8 bytes. *)
let json_structural_gen =
  let open QCheck.Gen in
  let octant =
    (* (2k+1)/8 is never integral, exactly representable, and within
       %.6g's six significant digits for |k| <= 399 *)
    map (fun k -> float_of_int ((2 * k) + 1) /. 8.) (int_range (-399) 399)
  in
  let str_char =
    frequency
      [
        (6, printable);
        (1, oneofl [ '\n'; '\t'; '\r'; '\x01'; '\x1f' ]);
        (1, oneofl [ '\xc3'; '\xa9'; '\xe2'; '\x82'; '\xac' ]);
      ]
  in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun n -> Json.Int n) (oneof [ small_signed_int; oneofl [ 0; -1; min_int; max_int ] ]);
        map (fun f -> Json.Float f) octant;
        map (fun s -> Json.String s) (string_size ~gen:str_char (int_bound 12));
      ]
  in
  let rec value depth =
    if depth = 0 then scalar
    else
      frequency
        [
          (3, scalar);
          (1, map (fun xs -> Json.List xs) (list_size (int_bound 4) (value (depth - 1))));
          ( 1,
            map
              (fun kvs -> Json.Obj (List.mapi (fun i (k, v) -> (Fmt.str "%d_%s" i k, v)) kvs))
              (list_size (int_bound 4)
                 (pair (string_size ~gen:str_char (int_bound 6)) (value (depth - 1)))) );
        ]
  in
  value 3

let qcheck_json_structural_roundtrip =
  QCheck.Test.make ~count:500 ~name:"Json: print/parse round-trip is structurally exact"
    (QCheck.make ~print:Json.to_string json_structural_gen)
    (fun v -> match Json.parse (Json.to_string v) with Ok w -> w = v | Error _ -> false)

let json_gen =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun n -> Json.Int n) small_signed_int;
        map (fun f -> Json.Float (float_of_int f /. 8.)) small_signed_int;
        map (fun s -> Json.String s) (string_size ~gen:printable (int_bound 12));
      ]
  in
  let rec value depth =
    if depth = 0 then scalar
    else
      frequency
        [
          (3, scalar);
          (1, map (fun xs -> Json.List xs) (list_size (int_bound 4) (value (depth - 1))));
          ( 1,
            map
              (fun kvs ->
                (* duplicate keys would make the round-trip ambiguous *)
                Json.Obj
                  (List.mapi (fun i (k, v) -> (Fmt.str "%d_%s" i k, v)) kvs))
              (list_size (int_bound 4)
                 (pair (string_size ~gen:printable (int_bound 6)) (value (depth - 1)))) );
        ]
  in
  value 3

let qcheck_json_roundtrip =
  QCheck.Test.make ~count:200 ~name:"Json: encode/parse round-trip is encoding-stable"
    (QCheck.make ~print:Json.to_string json_gen)
    (fun v ->
      let s = Json.to_string v in
      match Json.parse s with Ok w -> Json.to_string w = s | Error _ -> false)

(* --- metrics --------------------------------------------------------------- *)

let test_metrics_disabled_noop () =
  Metrics.set_enabled false;
  Metrics.reset ();
  let c = Metrics.counter "test.noop" in
  Metrics.incr c;
  Metrics.add c 100;
  Alcotest.(check int) "disabled updates are dropped" 0 (Metrics.value c)

let test_metrics_counting_and_reset () =
  Metrics.with_enabled (fun () ->
      Metrics.reset ();
      let c = Metrics.counter "test.count" in
      Metrics.incr c;
      Metrics.add c 41;
      Alcotest.(check int) "42 recorded" 42 (Metrics.value c);
      Alcotest.(check bool) "in snapshot" true (List.mem ("test.count", 42) (Metrics.snapshot ()));
      Metrics.reset ();
      Alcotest.(check int) "reset zeroes" 0 (Metrics.value c))

let test_histogram_buckets () =
  Metrics.with_enabled (fun () ->
      Metrics.reset ();
      let h = Metrics.histogram "test.hist" in
      List.iter (Metrics.observe h) [ 0; 1; 2; 3; 4; 7; 8; 1000 ];
      let buckets = List.assoc "test.hist" (Metrics.snapshot_histograms ()) in
      (* 0 -> bucket <=0; 1 -> [1,2); 2,3 -> [2,4); 4,7 -> [4,8); 8 -> [8,16);
         1000 -> [512,1024) *)
      Alcotest.(check (list (pair int int)))
        "power-of-two buckets"
        [ (0, 1); (1, 1); (2, 2); (4, 2); (8, 1); (512, 1) ]
        buckets)

let test_metrics_json_parses () =
  Metrics.with_enabled (fun () ->
      Metrics.reset ();
      Metrics.incr (Metrics.counter "test.json");
      Metrics.observe (Metrics.histogram "test.hist") 5;
      match Json.parse (Json.to_string (Metrics.to_json ())) with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "metrics JSON does not reparse: %s" msg)

let test_with_enabled_restores () =
  Metrics.set_enabled false;
  Metrics.with_enabled (fun () ->
      Alcotest.(check bool) "enabled inside" true (Metrics.enabled ()));
  Alcotest.(check bool) "restored after" false (Metrics.enabled ())

(* --- trace events and sinks ------------------------------------------------ *)

let sample_events =
  [
    Trace.Session_open { origin = 3; n = 15 };
    Trace.View { node = 3; id = 7; degree = 2; input = 123456789 };
    Trace.Dist { node = 3; d = 0 };
    Trace.Dist { node = 9; d = max_int };
    Trace.Probe { at = 3; port = 1; node = 4 };
    Trace.Rand { node = 3; index = 0; bit = true };
    Trace.Session_close
      { volume = 2; distance = 1; queries = 1; rand_bits = 1; aborted = false; output = 42 };
  ]

let test_event_json_roundtrip () =
  List.iter
    (fun ev ->
      match Trace.event_of_json (Trace.event_to_json ev) with
      | Ok ev' ->
          Alcotest.(check bool)
            (Fmt.str "%a round-trips" Trace.pp_event ev)
            true (Trace.equal_event ev ev')
      | Error msg -> Alcotest.failf "%a: %s" Trace.pp_event ev msg)
    sample_events

let test_ring_sink_order () =
  let sink = Trace.ring () in
  List.iter (Trace.emit sink) sample_events;
  Alcotest.(check bool)
    "ring preserves order" true
    (List.for_all2 Trace.equal_event sample_events (Trace.events sink))

let test_checking_sink () =
  let ok = Trace.checking ~expect:sample_events in
  List.iter (Trace.emit ok) sample_events;
  (match Trace.checking_result ok with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "identical replay rejected: %s" msg);
  let short = Trace.checking ~expect:sample_events in
  Trace.emit short (List.hd sample_events);
  (match Trace.checking_result short with
  | Ok () -> Alcotest.fail "truncated replay accepted"
  | Error _ -> ());
  let diverging = Trace.checking ~expect:sample_events in
  match Trace.emit diverging (Trace.Session_open { origin = 0; n = 15 }) with
  | () -> Alcotest.fail "divergent event accepted"
  | exception Trace.Replay_mismatch msg ->
      let contains s sub =
        let n = String.length sub in
        let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "mismatch message names the event" true (contains msg "event #0")

let test_file_sink_load () =
  let path = Filename.temp_file "volcomp_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let header = Json.Obj [ ("volcomp_trace", Json.Int 1); ("problem", Json.String "t") ] in
      let sink = Trace.to_file ~path ~header in
      List.iter (Trace.emit sink) sample_events;
      Trace.close sink;
      match Trace.load ~path with
      | Error msg -> Alcotest.failf "load failed: %s" msg
      | Ok (h, events) ->
          Alcotest.(check (option string))
            "header survives" (Some "t")
            (Option.bind (Json.member h "problem") Json.to_str);
          Alcotest.(check bool)
            "events survive" true
            (List.length events = List.length sample_events
            && List.for_all2 Trace.equal_event sample_events events))

(* --- end-to-end guarantees ------------------------------------------------- *)

(* Instrumentation must never perturb behavior: the same run with
   metrics off, metrics on, and metrics on + a recording sink attached
   yields bit-identical results. *)
let qcheck_instrumentation_inert =
  QCheck.Test.make ~count:25 ~name:"Probe: metrics/trace instrumentation is inert"
    QCheck.(pair (int_range 3 40) (map Int64.of_int small_signed_int))
    (fun (n, seed) ->
      let run ~metrics ~trace =
        let inst = LC.random_instance ~n ~seed in
        let world = LC.world inst in
        Metrics.set_enabled metrics;
        Fun.protect
          ~finally:(fun () -> Metrics.set_enabled false)
          (fun () ->
            Probe.run ~world ?trace ~origin:0 LC.solve_distance.Lcl.solve)
      in
      let plain = run ~metrics:false ~trace:None in
      let counted = run ~metrics:true ~trace:None in
      let traced = run ~metrics:true ~trace:(Some (Trace.ring ())) in
      plain = counted && plain = traced)

let test_registry_roundtrip_replays () =
  List.iter
    (fun (e : Registry.entry) ->
      match e.quick_sizes with
      | [] -> ()
      | size :: _ -> (
          let t = e.make ~size ~seed:77L () in
          match t.Registry.trace_roundtrip () with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "%s: %s" e.name msg))
    (Registry.all ())

let test_oracle_record_replay_file () =
  let path = Filename.temp_file "volcomp_oracle" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (match Oracle.record_trace ~seed:42L ~quick:true ~problem:"leafcoloring" ~origin:0 ~path () with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "record: %s" msg);
      match Oracle.replay_trace ~path () with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "replay: %s" msg)

let test_oracle_replay_detects_tampering () =
  let path = Filename.temp_file "volcomp_oracle" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (match Oracle.record_trace ~seed:42L ~quick:true ~problem:"leafcoloring" ~origin:0 ~path () with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "record: %s" msg);
      (* flip one probe's answer in the transcript *)
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let tampered = ref false in
      let lines =
        List.rev_map
          (fun line ->
            match Json.parse line with
            | Ok v when (not !tampered) && Option.is_some (Json.member v "ev") -> (
                match Trace.event_of_json v with
                | Ok (Trace.Probe { at; port; node }) ->
                    tampered := true;
                    Json.to_string (Trace.event_to_json (Trace.Probe { at; port; node = node + 1 }))
                | _ -> line)
            | _ -> line)
          !lines
      in
      Alcotest.(check bool) "found a probe event to tamper with" true !tampered;
      let oc = open_out path in
      List.iter (fun l -> output_string oc (l ^ "\n")) lines;
      close_out oc;
      match Oracle.replay_trace ~path () with
      | Ok () -> Alcotest.fail "tampered transcript replayed cleanly"
      | Error _ -> ())

let suites =
  [
    ( "obs:json",
      [
        Alcotest.test_case "nested round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "rejects malformed" `Quick test_json_rejects;
        Alcotest.test_case "int64 extremes" `Quick test_json_i64;
        Alcotest.test_case "depth limit" `Quick test_json_depth_limit;
        QCheck_alcotest.to_alcotest qcheck_json_roundtrip;
        QCheck_alcotest.to_alcotest qcheck_json_structural_roundtrip;
      ] );
    ( "obs:metrics",
      [
        Alcotest.test_case "disabled is a no-op" `Quick test_metrics_disabled_noop;
        Alcotest.test_case "count and reset" `Quick test_metrics_counting_and_reset;
        Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
        Alcotest.test_case "json reparses" `Quick test_metrics_json_parses;
        Alcotest.test_case "with_enabled restores" `Quick test_with_enabled_restores;
      ] );
    ( "obs:trace",
      [
        Alcotest.test_case "event json round-trip" `Quick test_event_json_roundtrip;
        Alcotest.test_case "ring order" `Quick test_ring_sink_order;
        Alcotest.test_case "checking sink" `Quick test_checking_sink;
        Alcotest.test_case "file sink load" `Quick test_file_sink_load;
      ] );
    ( "obs:replay",
      [
        QCheck_alcotest.to_alcotest qcheck_instrumentation_inert;
        Alcotest.test_case "registry round-trips" `Slow test_registry_roundtrip_replays;
        Alcotest.test_case "record/replay via file" `Quick test_oracle_record_replay_file;
        Alcotest.test_case "replay detects tampering" `Quick test_oracle_replay_detects_tampering;
      ] );
  ]
