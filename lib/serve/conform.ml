module Json = Vc_obs.Json
module Trace = Vc_obs.Trace
module Registry = Vc_check.Registry

let ( let* ) = Result.bind

(* Push one request through the same codec path the daemon uses:
   encode, frame, incremental decode, parse, handle, encode the reply,
   parse it back.  Returns the reply body. *)
let round_trip handler req =
  let wire = Protocol.frame (Json.to_string (Protocol.request_to_json req)) in
  let dec = Protocol.decoder () in
  Protocol.feed dec (Bytes.of_string wire) (String.length wire);
  let* body =
    match Protocol.next_frame dec with
    | Ok (Some body) -> Ok body
    | Ok None -> Error "request frame did not decode in one piece"
    | Error msg -> Error ("request framing: " ^ msg)
  in
  let* v = Json.parse body in
  let* parsed = Protocol.request_of_json v in
  if parsed <> req then Error "request changed across encode/decode"
  else
    let reply_json =
      match Handler.handle handler parsed.Protocol.query with
      | Ok payload -> Protocol.ok_reply ~id:parsed.Protocol.id payload
      | Error (code, message) -> Protocol.error_reply ~id:parsed.Protocol.id ~code ~message
    in
    let reply_wire = Protocol.frame (Json.to_string reply_json) in
    let rdec = Protocol.decoder () in
    Protocol.feed rdec (Bytes.of_string reply_wire) (String.length reply_wire);
    let* rbody =
      match Protocol.next_frame rdec with
      | Ok (Some b) -> Ok b
      | Ok None -> Error "reply frame did not decode in one piece"
      | Error msg -> Error ("reply framing: " ^ msg)
    in
    let* rv = Json.parse rbody in
    let* reply = Protocol.reply_of_json rv in
    if reply.Protocol.r_id <> req.Protocol.id then
      Error
        (Printf.sprintf "reply id %d for request id %d" reply.Protocol.r_id req.Protocol.id)
    else Ok reply.Protocol.body

let expect_payload handler ~what query ~direct =
  let req = { Protocol.id = 1; deadline_ms = None; query } in
  let* body = round_trip handler req in
  match body with
  | Error (code, msg) ->
      Error (Printf.sprintf "%s: error %s (%s)" what (Protocol.code_to_string code) msg)
  | Ok payload ->
      let served = Json.to_string payload in
      let wanted = Json.to_string direct in
      if served <> wanted then
        Error
          (Printf.sprintf "%s: served payload differs from direct computation\n  served: %s\n  direct: %s"
             what served wanted)
      else Ok ()

let expect_error handler ~what query ~code =
  let req = { Protocol.id = 2; deadline_ms = None; query } in
  let* body = round_trip handler req in
  match body with
  | Error (c, _) when c = code -> Ok ()
  | Error (c, _) ->
      Error
        (Printf.sprintf "%s: expected error %s, got %s" what (Protocol.code_to_string code)
           (Protocol.code_to_string c))
  | Ok _ ->
      Error (Printf.sprintf "%s: expected error %s, got a payload" what
           (Protocol.code_to_string code))

let probe (e : Registry.entry) ~size ~seed =
  let handler = Handler.create ~entries:[ e ] () in
  let direct = e.Registry.make ~size ~seed in
  let n = direct.Registry.t_n in
  let problem = e.Registry.name in
  let* () =
    expect_payload handler ~what:"solve"
      (Protocol.Solve { problem; size; seed })
      ~direct:(Protocol.solve_payload ~problem ~n (direct.Registry.run_solvers ()))
  in
  let origins = List.sort_uniq compare [ 0; n / 2; n - 1 ] in
  let* () =
    List.fold_left
      (fun acc origin ->
        let* () = acc in
        let* summary =
          Result.map_error (fun m -> "direct probe: " ^ m)
            (direct.Registry.probe_origin ~origin ())
        in
        let* () =
          expect_payload handler
            ~what:(Printf.sprintf "probe origin %d" origin)
            (Protocol.Probe { problem; size; seed; origin })
            ~direct:(Protocol.probe_payload ~problem ~origin summary)
        in
        let ring = Trace.ring () in
        let* tsummary =
          Result.map_error (fun m -> "direct trace: " ^ m)
            (direct.Registry.probe_origin ~trace:ring ~origin ())
        in
        expect_payload handler
          ~what:(Printf.sprintf "trace origin %d" origin)
          (Protocol.Trace { problem; size; seed; origin })
          ~direct:(Protocol.trace_payload ~problem ~origin tsummary (Trace.events ring)))
      (Ok ()) origins
  in
  let* () =
    expect_error handler ~what:"unknown problem"
      (Protocol.Solve { problem = "no-such-problem"; size; seed })
      ~code:Protocol.Unknown_problem
  in
  expect_error handler ~what:"out-of-range origin"
    (Protocol.Probe { problem; size; seed; origin = n })
    ~code:Protocol.Bad_origin
