(** Breadth-first search utilities: distances, balls, eccentricity.

    These are used both by algorithms (gathering the radius-[r]
    neighborhood [N_v(r)] of Section 2.1) and by the cost accountant
    (the DIST cost of Definition 2.1 is the true graph distance of the
    farthest visited node). *)

val distances : Graph.t -> Graph.node -> int array
(** [distances g v] maps every node to its distance from [v];
    unreachable nodes get [max_int]. *)

val distances_upto : Graph.t -> Graph.node -> radius:int -> (Graph.node * int) list
(** [distances_upto g v ~radius] lists the nodes at distance at most
    [radius] from [v] together with their distances, in BFS order
    (so the list starts with [(v, 0)]). *)

val ball : Graph.t -> Graph.node -> radius:int -> Graph.node list
(** [ball g v ~radius] is the node set of [N_v(radius)], in BFS order. *)

val dist : Graph.t -> Graph.node -> Graph.node -> int option
(** Pairwise distance; [None] if disconnected. *)

val eccentricity : Graph.t -> Graph.node -> int
(** Largest finite distance from the node. *)

val diameter : Graph.t -> int
(** Largest eccentricity over all nodes (0 for the empty graph).
    Quadratic time but allocation-free: one distance array and one queue
    are reused across all sources. *)
