examples/randomness_regimes.mli:
