lib/commcc/disjointness.mli: Format
