type ptr = int

let bot = 0

type t = {
  parent : Iarr.t;
  left : Iarr.t;
  right : Iarr.t;
}

type status = Internal | Leaf | Inconsistent

let equal_status a b =
  match (a, b) with
  | Internal, Internal | Leaf, Leaf | Inconsistent, Inconsistent -> true
  | (Internal | Leaf | Inconsistent), _ -> false

let pp_status ppf = function
  | Internal -> Fmt.string ppf "internal"
  | Leaf -> Fmt.string ppf "leaf"
  | Inconsistent -> Fmt.string ppf "inconsistent"

type color = Red | Blue

let equal_color a b =
  match (a, b) with Red, Red | Blue, Blue -> true | (Red | Blue), _ -> false

let pp_color ppf = function Red -> Fmt.string ppf "R" | Blue -> Fmt.string ppf "B"

let flip_color = function Red -> Blue | Blue -> Red

type colored = {
  labels : t;
  color : color array;
}

type balanced = {
  tree : t;
  left_nbr : ptr array;
  right_nbr : ptr array;
}

let make ~n = { parent = Iarr.make n bot; left = Iarr.make n bot; right = Iarr.make n bot }

let deref g lab v p =
  ignore lab;
  if p = bot || p < 1 || p > Graph.degree g v then None else Some (Graph.neighbor g v p)

(* Definition 3.3, evaluated through accessors so that probe-model
   algorithms can reuse the exact same decision procedure and be charged
   for each node it inspects. *)
let status_gen ~degree ~pointers ~follow v =
  let valid u p = p <> bot && p >= 1 && p <= degree u in
  let reciprocated_child v child_ptr =
    (* child pointer resolves, and the child's parent pointer resolves
       back to [v] *)
    valid v child_ptr
    &&
    let c = follow v child_ptr in
    let pc, _, _ = pointers c in
    valid c pc && follow c pc = v
  in
  let internal u =
    let p, l, r = pointers u in
    valid u l && valid u r && l <> r && p <> l && p <> r
    && reciprocated_child u l && reciprocated_child u r
  in
  if internal v then Internal
  else
    let p, _, _ = pointers v in
    if valid v p && internal (follow v p) then Leaf else Inconsistent

let status g lab v =
  status_gen
    ~degree:(Graph.degree g)
    ~pointers:(fun u -> (lab.parent.{u}, lab.left.{u}, lab.right.{u}))
    ~follow:(Graph.neighbor g) v

let is_internal g lab v = equal_status (status g lab v) Internal

let is_leaf g lab v = equal_status (status g lab v) Leaf

let is_consistent g lab v =
  match status g lab v with Internal | Leaf -> true | Inconsistent -> false

let gt_children g lab v =
  match status g lab v with
  | Internal ->
      let l = Graph.neighbor g v lab.left.{v} in
      let r = Graph.neighbor g v lab.right.{v} in
      Some (l, r)
  | Leaf | Inconsistent -> None

let gt_parent g lab v =
  match status g lab v with
  | Inconsistent -> None
  | Internal | Leaf -> (
      match deref g lab v lab.parent.{v} with
      | None -> None
      | Some u -> (
          match gt_children g lab u with
          | Some (l, r) when l = v || r = v -> Some u
          | Some _ | None -> None))

let gt_nodes g lab = List.filter (is_consistent g lab) (Graph.nodes g)

let of_structure g ~parent ~left ~right =
  let n = Graph.n g in
  let lab = make ~n in
  let port_of v target field =
    match target with
    | None -> ()
    | Some w -> (
        match Graph.port_to g v w with
        | Some p -> field.{v} <- p
        | None ->
            invalid_arg
              (Printf.sprintf "Tree_labels.of_structure: nodes %d and %d are not adjacent" v w))
  in
  Graph.iter_nodes g (fun v ->
      port_of v (parent v) lab.parent;
      port_of v (left v) lab.left;
      port_of v (right v) lab.right);
  lab

let of_complete_binary_tree ~depth =
  let g = Builder.complete_binary_tree ~depth in
  let lab =
    of_structure g
      ~parent:(Builder.tree_parent ~depth)
      ~left:(Builder.tree_left ~depth)
      ~right:(Builder.tree_right ~depth)
  in
  (g, lab)

let of_random_binary_tree ~n ~rng =
  let g = Builder.random_binary_tree ~n ~rng in
  (* The builder's port convention: parent first (absent at the root),
     then left then right child (absent at the leaves). *)
  let parent v = if v = 0 then None else Some (Graph.neighbor g v 1) in
  let first_child v = if v = 0 then 1 else 2 in
  let left v = if Graph.degree g v >= first_child v then Some (Graph.neighbor g v (first_child v)) else None in
  let right v =
    if Graph.degree g v >= first_child v + 1 then Some (Graph.neighbor g v (first_child v + 1))
    else None
  in
  let lab = of_structure g ~parent ~left ~right in
  (g, lab)

let copy lab =
  { parent = Iarr.copy lab.parent; left = Iarr.copy lab.left; right = Iarr.copy lab.right }
