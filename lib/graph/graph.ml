type node = int
type port = int

(* Compressed sparse row: node [v]'s neighbors, in port order, are
   [tgt.(off.(v)) .. tgt.(off.(v+1) - 1)].  [port_tbl] maps the packed
   directed edge [v * n + w] to the port of [v] leading to [w]; it doubles
   as the symmetry/parallel-edge witness during construction. *)
type t = {
  ids : int array;
  off : int array;
  tgt : node array;
  id_index : (int, node) Hashtbl.t;
  port_tbl : (int, port) Hashtbl.t;
  max_degree : int;
}

let n g = Array.length g.ids

let degree g v = g.off.(v + 1) - g.off.(v)

let max_degree g = g.max_degree

let id g v = g.ids.(v)

let node_of_id g i = Hashtbl.find_opt g.id_index i

let neighbor g v p =
  if p < 1 || p > degree g v then
    invalid_arg
      (Printf.sprintf "Graph.neighbor: port %d invalid at node %d (degree %d)" p v (degree g v));
  g.tgt.(g.off.(v) + p - 1)

let unsafe_neighbor g v p = Array.unsafe_get g.tgt (Array.unsafe_get g.off v + p - 1)

let csr_offsets g = g.off
let csr_targets g = g.tgt

let port_to g v w =
  if v < 0 || w < 0 then None else Hashtbl.find_opt g.port_tbl ((v * n g) + w)

let neighbors g v = Array.sub g.tgt g.off.(v) (degree g v)

let iter_neighbors g v f =
  let stop = g.off.(v + 1) - 1 in
  for e = g.off.(v) to stop do
    f (Array.unsafe_get g.tgt e)
  done

let fold_neighbors g v ~init ~f =
  let acc = ref init in
  iter_neighbors g v (fun w -> acc := f !acc w);
  !acc

let create ~ids ~adj =
  let count = Array.length ids in
  if Array.length adj <> count then invalid_arg "Graph.create: ids/adj length mismatch";
  let id_index = Hashtbl.create count in
  Array.iteri
    (fun v i ->
      if Hashtbl.mem id_index i then invalid_arg "Graph.create: duplicate identifier";
      Hashtbl.add id_index i v)
    ids;
  let off = Array.make (count + 1) 0 in
  for v = 0 to count - 1 do
    off.(v + 1) <- off.(v) + Array.length adj.(v)
  done;
  let m = off.(count) in
  let tgt = Array.make m 0 in
  let port_tbl = Hashtbl.create (max 16 m) in
  let max_degree = ref 0 in
  for v = 0 to count - 1 do
    let row = adj.(v) in
    let d = Array.length row in
    if d > !max_degree then max_degree := d;
    for p = 1 to d do
      let w = row.(p - 1) in
      if w < 0 || w >= count then invalid_arg "Graph.create: neighbor out of range";
      if w = v then invalid_arg "Graph.create: self-loop";
      let key = (v * count) + w in
      if Hashtbl.mem port_tbl key then invalid_arg "Graph.create: parallel edge";
      Hashtbl.add port_tbl key p;
      tgt.(off.(v) + p - 1) <- w
    done
  done;
  (* Symmetry: every directed edge must have its reverse. *)
  for v = 0 to count - 1 do
    for e = off.(v) to off.(v + 1) - 1 do
      if not (Hashtbl.mem port_tbl ((tgt.(e) * count) + v)) then
        invalid_arg "Graph.create: asymmetric adjacency"
    done
  done;
  { ids = Array.copy ids; off; tgt; id_index; port_tbl; max_degree = !max_degree }

let of_edges ?ids ~n:count edges =
  let buckets = Array.make count [] in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= count || v < 0 || v >= count then
        invalid_arg "Graph.of_edges: endpoint out of range";
      buckets.(u) <- v :: buckets.(u);
      buckets.(v) <- u :: buckets.(v))
    edges;
  let adj = Array.map (fun l -> Array.of_list (List.rev l)) buckets in
  let ids = match ids with Some a -> a | None -> Array.init count (fun v -> v + 1) in
  create ~ids ~adj

let nodes g = List.init (n g) Fun.id

let iter_nodes g f =
  for v = 0 to n g - 1 do
    f v
  done

let edges g =
  let acc = ref [] in
  iter_nodes g (fun v -> iter_neighbors g v (fun w -> if v < w then acc := (v, w) :: !acc));
  !acc

let fold_nodes g ~init ~f =
  let acc = ref init in
  iter_nodes g (fun v -> acc := f !acc v);
  !acc

let is_connected g =
  let count = n g in
  if count = 0 then true
  else begin
    let seen = Array.make count false in
    let queue = Array.make count 0 in
    seen.(0) <- true;
    let head = ref 0 and tail = ref 1 in
    while !head < !tail do
      let v = queue.(!head) in
      incr head;
      iter_neighbors g v (fun w ->
          if not seen.(w) then begin
            seen.(w) <- true;
            queue.(!tail) <- w;
            incr tail
          end)
    done;
    !tail = count
  end

let relabel_ids g ~ids =
  create ~ids ~adj:(Array.init (n g) (fun v -> neighbors g v))

let shuffle_ids g ~rng =
  let count = n g in
  let perm = Array.init count (fun v -> v + 1) in
  for i = count - 1 downto 1 do
    let j = Vc_rng.Splitmix.int rng ~bound:(i + 1) in
    let tmp = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- tmp
  done;
  relabel_ids g ~ids:perm

let pp ppf g =
  iter_nodes g (fun v ->
      Fmt.pf ppf "@[node %d (id %d):" v g.ids.(v);
      for p = 1 to degree g v do
        Fmt.pf ppf " %d->%d" p g.tgt.(g.off.(v) + p - 1)
      done;
      Fmt.pf ppf "@]@.")
