(* Tests for the conformance subsystem itself: the generator kit, the
   mutation fuzzer's classification, and end-to-end oracle runs. *)

module Graph = Vc_graph.Graph
module Lcl = Vc_lcl.Lcl
module TL = Vc_graph.Tree_labels
module Probe = Vc_model.Probe
module Gen = Vc_check.Gen
module Mutate = Vc_check.Mutate
module Registry = Vc_check.Registry
module Oracle = Vc_check.Oracle
module Report = Vc_check.Report
module LC = Volcomp.Leaf_coloring

let graph_equal a b =
  Graph.n a = Graph.n b
  && List.for_all
       (fun v ->
         Graph.id a v = Graph.id b v
         && Graph.degree a v = Graph.degree b v
         && List.for_all
              (fun p -> Graph.neighbor a v p = Graph.neighbor b v p)
              (List.init (Graph.degree a v) (fun i -> i + 1)))
       (Graph.nodes a)

(* --- the generator kit ---------------------------------------------------- *)

let test_build_deterministic () =
  List.iter
    (fun shape ->
      let spec = { Gen.shape; size = 24; g_seed = 77L } in
      Alcotest.(check bool)
        (Format.asprintf "%a deterministic" Gen.pp_shape shape)
        true
        (graph_equal (Gen.build spec) (Gen.build spec)))
    Gen.all_shapes

let test_build_well_formed () =
  (* Graph.create already validates symmetry; what build adds is size
     clamping, connectivity and the degree bound of the paper's model *)
  List.iter
    (fun shape ->
      List.iter
        (fun size ->
          let g = Gen.build { Gen.shape; size; g_seed = 5L } in
          let msg what = Format.asprintf "%a size=%d %s" Gen.pp_shape shape size what in
          Alcotest.(check bool) (msg "nonempty") true (Graph.n g >= 1);
          Alcotest.(check bool) (msg "connected") true (Graph.is_connected g);
          (* Cubic is near-cubic: odd sizes patch in one extra edge *)
          Alcotest.(check bool) (msg "degree <= 4") true (Graph.max_degree g <= 4))
        [ 1; 8; 33 ])
    Gen.all_shapes

let qcheck_spec_sizes =
  QCheck.Test.make ~count:50 ~name:"Gen.spec stays within its size bounds"
    (Gen.spec ~min_size:8 ~max_size:40 ())
    (fun s -> s.Gen.size >= 8 && s.Gen.size <= 40 && Graph.n (Gen.build s) >= 1)

let test_colored_tree_deterministic_and_solvable () =
  let a = Gen.colored_tree ~n:33 ~seed:9L in
  let b = Gen.colored_tree ~n:33 ~seed:9L in
  Alcotest.(check bool) "same graph" true (graph_equal a.LC.graph b.LC.graph);
  Alcotest.(check bool) "same inputs" true
    (List.for_all (fun v -> LC.input a v = LC.input b v) (Graph.nodes a.LC.graph));
  (* the generated labeling is an actual Definition 3.1 instance: the
     deterministic solver produces a checker-valid output on it *)
  let world = LC.world a in
  let out =
    Array.init (Graph.n a.LC.graph) (fun v ->
        match (Probe.run ~world ~origin:v LC.solve_distance.Lcl.solve).Probe.output with
        | Some c -> c
        | None -> TL.Red)
  in
  Alcotest.(check bool) "solvable to validity" true
    (Lcl.is_valid LC.problem a.LC.graph ~input:(LC.input a) ~output:(fun v -> out.(v)))

let test_pseudo_tree_builds () =
  let inst = Gen.pseudo_tree ~cycle_len:8 ~seed:3L in
  Alcotest.(check bool) "at least the cycle" true (Graph.n inst.LC.graph >= 8);
  Alcotest.(check bool) "connected" true (Graph.is_connected inst.LC.graph)

(* --- mutation classification ----------------------------------------------- *)

(* a hand-rolled LCL: every node must output its own identifier.  With
   radius 0 a mutation at [site] can only create a violation at [site]
   itself, which pins down all three outcome classes exactly. *)
let identity_problem =
  {
    Lcl.name = "identity";
    radius = 0;
    valid_at =
      (fun g ~input:_ ~output v ->
        if output v = Graph.id g v then Ok () else Error "not the id");
  }

let test_mutate_classification () =
  let g = Vc_graph.Builder.path 7 in
  let input _ = () in
  let run kind m = Mutate.check ~problem:identity_problem ~graph:g ~input ~kind m in
  let good =
    run "noop" { Mutate.site = 3; input = None; output = (fun v -> Graph.id g v) }
  in
  Alcotest.(check bool) "valid mutant accepted" false good.Mutate.rejected;
  Alcotest.(check bool) "accepted is vacuously in radius" true good.Mutate.in_radius;
  let bad =
    run "corrupt"
      { Mutate.site = 3; input = None; output = (fun v -> if v = 3 then -1 else Graph.id g v) }
  in
  Alcotest.(check bool) "invalid mutant rejected" true bad.Mutate.rejected;
  Alcotest.(check bool) "violation within radius of the site" true bad.Mutate.in_radius;
  (* a rejection whose violation is far from the claimed site must be
     flagged: that is the checker-locality property the fuzzer polices *)
  let misattributed =
    run "corrupt-far"
      { Mutate.site = 0; input = None; output = (fun v -> if v = 6 then -1 else Graph.id g v) }
  in
  Alcotest.(check bool) "far mutant still rejected" true misattributed.Mutate.rejected;
  Alcotest.(check bool) "flagged out of radius" false misattributed.Mutate.in_radius

let test_reference_failure_shape () =
  let o = Mutate.reference_failure ~msg:"solver produced junk" in
  Alcotest.(check string) "kind" "reference" o.Mutate.kind;
  Alcotest.(check int) "no site" (-1) o.Mutate.site;
  Alcotest.(check bool) "not a rejection" false o.Mutate.rejected

(* --- the oracle end to end -------------------------------------------------- *)

let test_oracle_quick_conformant () =
  let report = Oracle.run ~seed:11L ~count:6 ~quick:true () in
  Alcotest.(check int) "every registered problem checked"
    (List.length (Registry.all ()))
    (List.length report.Report.problems);
  Alcotest.(check bool) "report ok" true (Report.ok report);
  List.iter
    (fun p ->
      Alcotest.(check (list string)) (p.Report.p_name ^ ": no failures") [] p.Report.p_failures;
      Alcotest.(check bool) (p.Report.p_name ^ ": merge consistent") true p.Report.p_merge_consistent;
      Alcotest.(check bool)
        (p.Report.p_name ^ ": fuzzer rejected at least one mutant")
        true
        (Report.mutations_rejected p >= 1))
    report.Report.problems

let test_oracle_deterministic () =
  (* same seed, same verdicts, bit-identical JSON *)
  let entries = List.filteri (fun i _ -> i < 3) (Registry.all ()) in
  let r1 = Oracle.run ~entries ~seed:5L ~count:4 ~quick:true () in
  let r2 = Oracle.run ~entries ~seed:5L ~count:4 ~quick:true () in
  Alcotest.(check string) "bit-identical JSON" (Report.to_json r1) (Report.to_json r2)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_report_json_shape () =
  let report = Oracle.run ~entries:[ List.hd (Registry.all ()) ] ~seed:3L ~count:3 ~quick:true () in
  let json = Report.to_json report in
  List.iter
    (fun key -> Alcotest.(check bool) (key ^ " present") true (contains json key))
    [ "\"seed\""; "\"count\""; "\"ok\""; "\"problems\""; "\"solvers\""; "\"mutations\""; "\"by_kind\"" ];
  let path = Filename.temp_file "volcomp-check" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Report.write_json report ~path;
  let ic = open_in_bin path in
  let written = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check bool) "write_json writes to_json" true (String.trim written = String.trim json)

let suites =
  [
    ( "check:gen",
      [
        Alcotest.test_case "build deterministic" `Quick test_build_deterministic;
        Alcotest.test_case "build well-formed" `Quick test_build_well_formed;
        QCheck_alcotest.to_alcotest qcheck_spec_sizes;
        Alcotest.test_case "colored tree" `Quick test_colored_tree_deterministic_and_solvable;
        Alcotest.test_case "pseudo tree" `Quick test_pseudo_tree_builds;
      ] );
    ( "check:mutate",
      [
        Alcotest.test_case "outcome classification" `Quick test_mutate_classification;
        Alcotest.test_case "reference failure" `Quick test_reference_failure_shape;
      ] );
    ( "check:oracle",
      [
        Alcotest.test_case "quick run conformant" `Quick test_oracle_quick_conformant;
        Alcotest.test_case "deterministic" `Quick test_oracle_deterministic;
        Alcotest.test_case "json shape" `Quick test_report_json_shape;
      ] );
  ]
