lib/core/balanced_tree_congest.mli: Balanced_tree Vc_model
