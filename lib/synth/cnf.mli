(** Incremental CNF builder over {!Sat}.

    Thin layer that owns fresh-variable allocation, the usual tseitin
    helpers, and a mirror of every clause added — the mirror is what
    makes DIMACS export and the naive reference checks in the test
    suite possible without reaching into the solver's internals. *)

type t

val create : unit -> t

val fresh : t -> int
(** Allocate a fresh variable (1-based DIMACS index). *)

val n_vars : t -> int

val add : t -> int list -> unit
(** Add a clause of DIMACS literals. *)

val implies : t -> int -> int -> unit
(** [implies t a b]: a → b. *)

val implies_clause : t -> int -> int list -> unit
(** [implies_clause t a ls]: a → (l1 ∨ …).  Antecedent [a] is a
    literal, so [implies_clause t (-g) ls] encodes ¬g → (…). *)

val at_most_one : t -> int list -> unit
(** Pairwise at-most-one over literals. *)

val exactly_one : t -> int list -> unit

val define_and : t -> int list -> int
(** Fresh [g] with g ↔ (l1 ∧ …); returns [g]. *)

val solve : t -> Sat.verdict
val value : t -> int -> bool

(** Level-0 unit propagation only; see {!Sat.simplify}. *)
val simplify : t -> [ `Unsat | `Fixed of int list ]
val stats : t -> Sat.stats
val certify_unsat : ?budget:int -> t -> (unit, string) result

val n_clauses : t -> int

val clauses : t -> int list list
(** Every clause added so far, in insertion order, as given (no
    normalization). *)

val to_dimacs : t -> string
(** DIMACS CNF text for the current formula. *)

val write_dimacs : t -> string -> unit
(** [write_dimacs t path] writes {!to_dimacs} to [path]. *)

val of_dimacs : string -> (t, string) result
(** Parse DIMACS CNF text into a fresh builder: comments and the
    problem line are honoured, clauses may span lines.  Returns
    [Error] on malformed input (bad header, literal out of the
    declared range, missing terminating 0). *)
