(** 4-colouring, the marquee grid LCL (SNIPPETS.md #1, "LCL problems on
    grids"): a proper vertex colouring from a palette of four.

    Two deterministic reference solvers ship, one per family:

    - {!solve_torus} exploits the torus normal form — it replays the
      port labelling into grid coordinates and colours by coordinate
      parity, proper on even-sided tori;
    - {!solve_greedy} is the canonical greedy (ascending identifiers,
      mex colour), within the palette whenever the maximum degree is at
      most 3 — the d-regular family at d = 3.

    Both gather the whole component, so VOL is Θ(component) and DIST the
    origin's eccentricity — Θ(√n) on square tori, Θ(log n) on random
    regular graphs: exactly the seeing-far-vs-seeing-wide contrast the
    measured ladder plots. *)

type output = int
(** A colour in [0 .. 3]. *)

val palette : int

val problem : (unit, output) Vc_lcl.Lcl.t
(** Radius-1 checker: palette membership plus properness. *)

val world : Vc_graph.Graph.t -> unit Vc_model.World.t

val solve_torus : (unit, output) Vc_lcl.Lcl.solver
(** Coordinate-parity colouring via the normal-form ports; proper on
    even-sided torus grids. *)

val solve_greedy : (unit, output) Vc_lcl.Lcl.solver
(** Greedy mex in ascending-id order; proper everywhere, within the
    4-colour palette iff the maximum degree is at most 3. *)
