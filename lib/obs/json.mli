(** Minimal JSON: one value type, one compact encoder, one strict parser.

    The toolchain ships no JSON library, and before [lib/obs] existed
    every producer ([volcomp bench --json], [volcomp check --json]) kept
    its own hand-rolled escaping and float formatting.  This module is
    the single shared encoder: the float format is the ["%.6g"] (with
    [nan] rendered as [null]) that those emitters standardized on, so
    refactoring them onto {!to_string} is output-compatible.

    The parser is the strict RFC 8259 recursive descent of
    [bench/json_check.ml], extended to build values — it exists so that
    recorded probe traces ({!Trace}) can be loaded back for replay. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | I64 of int64  (** integers outside the native [int] range, e.g. trial seeds *)
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
(** JSON string-body escaping (quotes, backslash, control characters). *)

val to_string : t -> string
(** Compact rendering: no whitespace, object fields in given order,
    floats as ["%.6g"], [nan] as [null]. *)

val max_depth : int
(** Maximum container nesting {!parse} accepts (512).  Deeper input is a
    parse error, not a [Stack_overflow] — the serving layer feeds this
    parser untrusted socket bytes. *)

val parse : string -> (t, string) result
(** Strict parse of exactly one JSON value (plus surrounding
    whitespace).  Numbers become [Int] when they are integral and fit in
    a native [int], then [I64], then [Float].  Containers nested deeper
    than {!max_depth} are rejected.  Errors carry the byte offset of the
    first offending character. *)

(** {1 Accessors (for loading recorded traces)} *)

val member : t -> string -> t option
(** First binding of a field in an [Obj]; [None] otherwise. *)

val to_int : t -> int option
(** [Int] directly, [I64] when it fits. *)

val to_i64 : t -> int64 option
val to_bool : t -> bool option
val to_str : t -> string option
