lib/model/ball.mli: Probe Vc_graph
