(** The differential conformance oracle.

    For every registry entry (or a chosen subset) the oracle builds the
    entry's trials and runs the four conformance probes:

    + every registered solver solves every instance; the assembled
      output must pass the problem's own checker, and the cost envelope
      must hold — [runs = n], no aborts, [VOL >= DIST >= 0], [VOL >= 1],
      and deterministic solvers consume zero random bits;
    + {!Vc_measure.Runner} statistics are bit-identical across pool
      widths 1, 2 and 4 (merge consistency);
    + cross-model executions (CONGEST protocols) produce complete,
      valid outputs;
    + [count] mutation-fuzzing rounds, round-robin over the entry's
      trials: every rejection must be anchored within the checkability
      radius of the mutation site, and at least one mutant per problem
      must be rejected overall.

    Everything is a deterministic function of [seed]; a failing run is
    reproducible with [volcomp check --seed N]. *)

val run :
  ?pool:Vc_exec.Pool.t ->
  ?entries:Registry.entry list ->
  seed:int64 ->
  count:int ->
  quick:bool ->
  unit ->
  Report.t
(** [run ~seed ~count ~quick ()] checks [entries] (default:
    {!Registry.all}).  [quick] selects each entry's small sizes — the
    [dune runtest] profile.  [?pool] parallelizes the per-solver runs;
    the report's verdicts do not depend on it. *)
