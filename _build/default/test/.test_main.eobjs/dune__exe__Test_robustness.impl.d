test/test_robustness.ml: Alcotest Array List Printf QCheck QCheck_alcotest Vc_graph Vc_lcl Vc_model Vc_rng Volcomp
