(* Tests for the CONGEST BalancedTree protocol (paper Observation 7.4):
   O(log n) rounds and O(log n)-bit messages solve a problem whose
   volume complexity is Theta(n) — the tight side of Lemma 2.5's
   Delta^Theta(T) relation. *)

module Graph = Vc_graph.Graph
module TL = Vc_graph.Tree_labels
module Lcl = Vc_lcl.Lcl
module Congest = Vc_model.Congest
module BT = Volcomp.Balanced_tree
module BTC = Volcomp.Balanced_tree_congest
module Disjointness = Vc_commcc.Disjointness

let outputs_of inst =
  let res = BTC.run inst () in
  let out =
    Array.map
      (function Some o -> o | None -> Alcotest.fail "node did not decide")
      res.Congest.outputs
  in
  (out, res)

let check_valid inst out =
  match
    Lcl.check BT.problem inst.BT.graph ~input:(BT.input inst) ~output:(fun v -> out.(v))
  with
  | Ok () -> ()
  | Error vs -> Alcotest.failf "invalid: %a" Lcl.pp_violation (List.hd vs)

let test_balanced_instance () =
  let inst = BT.balanced_instance ~depth:4 in
  let out, _ = outputs_of inst in
  check_valid inst out;
  Alcotest.(check bool) "root balanced" true
    (match out.(0).BT.verdict with BT.Bal -> true | BT.Unbal -> false)

let test_broken_instances () =
  List.iter
    (fun break ->
      let inst = BT.broken_pair_instance ~depth:5 ~break in
      let out, _ = outputs_of inst in
      check_valid inst out;
      Alcotest.(check bool) "root unbalanced" true
        (match out.(0).BT.verdict with BT.Unbal -> true | BT.Bal -> false))
    [ 0; 7; 15 ]

let test_embedding_instances () =
  List.iter
    (fun (intersecting, seed) ->
      let disj = Disjointness.random_promise ~n:16 ~intersecting ~seed in
      let inst = BT.embed_disjointness disj in
      let out, _ = outputs_of inst in
      check_valid inst out;
      let root_balanced = match out.(0).BT.verdict with BT.Bal -> true | BT.Unbal -> false in
      Alcotest.(check bool) "root = disj" (Disjointness.eval disj) root_balanced)
    [ (true, 1L); (false, 2L) ]

let test_rounds_logarithmic () =
  let inst = BT.broken_pair_instance ~depth:7 ~break:31 in
  let n = Graph.n inst.BT.graph in
  let _, res = outputs_of inst in
  let logn = Volcomp.Probe_tree.log2_ceil n in
  Alcotest.(check bool)
    (Printf.sprintf "rounds %d <= log n + 10 (%d)" res.Congest.rounds (logn + 10))
    true
    (res.Congest.rounds <= logn + 10)

let test_messages_logarithmic_bits () =
  let inst = BT.balanced_instance ~depth:6 in
  let _, res = outputs_of inst in
  Alcotest.(check bool) "messages fit in 512 bits" true (res.Congest.max_message_bits <= 512)

let test_agrees_with_probe_solver_verdicts () =
  (* The CONGEST protocol and the probe solver may point at defects via
     different ports, but their B/U verdicts must coincide (the verdict
     is semantically forced). *)
  let inst = BT.broken_pair_instance ~depth:5 ~break:9 in
  let out_c, _ = outputs_of inst in
  let world = BT.world inst in
  Graph.iter_nodes inst.BT.graph (fun v ->
      let r = Vc_model.Probe.run ~world ~origin:v BT.solve_distance.Lcl.solve in
      match (r.Vc_model.Probe.output, BT.status inst v) with
      | Some o, (TL.Internal | TL.Leaf) ->
          Alcotest.(check bool)
            (Printf.sprintf "verdicts agree at node %d" v)
            true
            ((match o.BT.verdict with BT.Bal -> 0 | BT.Unbal -> 1)
            = (match out_c.(v).BT.verdict with BT.Bal -> 0 | BT.Unbal -> 1))
      | Some _, TL.Inconsistent | None, _ -> ())

let suites =
  [
    ( "balancedtree:congest",
      [
        Alcotest.test_case "balanced instance" `Quick test_balanced_instance;
        Alcotest.test_case "broken instances" `Quick test_broken_instances;
        Alcotest.test_case "embedding instances" `Quick test_embedding_instances;
        Alcotest.test_case "rounds O(log n)" `Quick test_rounds_logarithmic;
        Alcotest.test_case "message bits bounded" `Quick test_messages_logarithmic_bits;
        Alcotest.test_case "verdicts match probe solver" `Quick test_agrees_with_probe_solver_verdicts;
      ] );
  ]

(* --- LeafColoring in CONGEST (same Observation 7.4 phenomenon) ---------- *)

module LC = Volcomp.Leaf_coloring
module LCC = Volcomp.Leaf_coloring_congest

let lc_outputs inst =
  let res = LCC.run inst () in
  ( Array.map
      (function Some c -> c | None -> Alcotest.fail "node did not decide")
      res.Congest.outputs,
    res )

let lc_check inst out =
  match
    Lcl.check LC.problem inst.LC.graph ~input:(LC.input inst) ~output:(fun v -> out.(v))
  with
  | Ok () -> ()
  | Error vs -> Alcotest.failf "invalid: %a" Lcl.pp_violation (List.hd vs)

let test_lc_congest_random_instances () =
  List.iter
    (fun seed ->
      let inst = LC.random_instance ~n:201 ~seed in
      let out, _ = lc_outputs inst in
      lc_check inst out)
    [ 31L; 32L; 33L ]

let test_lc_congest_cycle_instance () =
  let inst = LC.cycle_instance ~cycle_len:19 ~seed:34L in
  let out, _ = lc_outputs inst in
  lc_check inst out

let test_lc_congest_forced_instance () =
  let inst = LC.hard_distance_instance ~depth:6 ~leaf_color:TL.Blue in
  let out, res = lc_outputs inst in
  lc_check inst out;
  Graph.iter_nodes inst.LC.graph (fun v ->
      Alcotest.(check bool) "everyone blue" true (TL.equal_color out.(v) TL.Blue));
  let logn = Volcomp.Probe_tree.log2_ceil (Graph.n inst.LC.graph) in
  Alcotest.(check bool) "rounds O(log n)" true (res.Congest.rounds <= logn + 10)

let suites =
  suites
  @ [
      ( "leafcoloring:congest",
        [
          Alcotest.test_case "random instances" `Quick test_lc_congest_random_instances;
          Alcotest.test_case "cycle instance" `Quick test_lc_congest_cycle_instance;
          Alcotest.test_case "forced instance" `Quick test_lc_congest_forced_instance;
        ] );
    ]
