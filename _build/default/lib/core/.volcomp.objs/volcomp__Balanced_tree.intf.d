lib/core/balanced_tree.mli: Format Vc_commcc Vc_graph Vc_lcl Vc_model
