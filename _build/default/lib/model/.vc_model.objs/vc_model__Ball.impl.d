lib/model/ball.ml: Hashtbl List Probe Queue Vc_graph
