module TL = Vc_graph.Tree_labels
module Graph = Vc_graph.Graph
module Builder = Vc_graph.Builder
module Probe = Vc_model.Probe
module World = Vc_model.World
module Lcl = Vc_lcl.Lcl
module Disjointness = Vc_commcc.Disjointness
module Comm_counter = Vc_commcc.Comm_counter

type node_input = {
  parent : TL.ptr;
  left : TL.ptr;
  right : TL.ptr;
  left_nbr : TL.ptr;
  right_nbr : TL.ptr;
}

let tree_pointers inp = (inp.parent, inp.left, inp.right)

let pp_node_input ppf i =
  Fmt.pf ppf "P=%d LC=%d RC=%d LN=%d RN=%d" i.parent i.left i.right i.left_nbr i.right_nbr

type verdict = Bal | Unbal

type output = {
  verdict : verdict;
  port : TL.ptr;
}

let equal_output a b =
  a.port = b.port && (match (a.verdict, b.verdict) with
  | Bal, Bal | Unbal, Unbal -> true
  | (Bal | Unbal), _ -> false)

let pp_output ppf o =
  Fmt.pf ppf "(%s,%d)" (match o.verdict with Bal -> "B" | Unbal -> "U") o.port

type instance = {
  graph : Graph.t;
  labels : node_input array;
}

let input inst v = inst.labels.(v)

let world inst = World.of_graph inst.graph ~input:(input inst)

(* --- compatibility (Definition 4.2) ----------------------------------- *)

let status_gen ~degree ~input ~follow v =
  TL.status_gen ~degree ~pointers:(fun u -> tree_pointers (input u)) ~follow v

(* Compatibility of a consistent node.  A non-⊥ pointer that is not a
   valid port counts as a violation.  The "leaves" condition of
   Definition 4.2 is subsumed by type preservation and therefore not
   checked separately. *)
let compatible_gen ~degree ~input ~follow v =
  let valid u p = p <> TL.bot && p >= 1 && p <= degree u in
  let target u p = if valid u p then Some (follow u p) else None in
  let status u = status_gen ~degree ~input ~follow u in
  let resolves_to u p w =
    (* pointer p of u resolves and lands on w *)
    match target u p with Some x -> x = w | None -> false
  in
  match status v with
  | TL.Inconsistent -> false
  | (TL.Internal | TL.Leaf) as st -> (
      let iv = input v in
      let lateral_ok p =
        (* type preservation + agreement for one lateral pointer [p];
           [back] extracts the reciprocal pointer of the other endpoint *)
        p = TL.bot
        ||
        match target v p with
        | None -> false
        | Some w ->
            TL.equal_status (status w) st
            && (match st with
               | TL.Internal | TL.Leaf -> true
               | TL.Inconsistent -> false)
            &&
            (* agreement: the mirror pointer of w points back at v *)
            (if p = iv.left_nbr then resolves_to w (input w).right_nbr v
             else resolves_to w (input w).left_nbr v)
      in
      let agreement_and_types = lateral_ok iv.left_nbr && lateral_ok iv.right_nbr in
      match st with
      | TL.Leaf -> agreement_and_types
      | TL.Internal ->
          agreement_and_types
          &&
          (* siblings: RN(LC(v)) = RC(v) and LN(RC(v)) = LC(v) *)
          let lc = follow v iv.left and rc = follow v iv.right in
          resolves_to lc (input lc).right_nbr rc
          && resolves_to rc (input rc).left_nbr lc
          &&
          (* persistence on the right: w = RN(v) internal (already by
             type preservation) and RN(RC(v)) = LC(w) *)
          (match target v iv.right_nbr with
          | None -> true
          | Some w -> (
              match target w (input w).left with
              | None -> false
              | Some lcw -> resolves_to rc (input rc).right_nbr lcw))
          &&
          (* persistence on the left: u = LN(v) internal and
             LN(LC(v)) = RC(u) *)
          (match target v iv.left_nbr with
          | None -> true
          | Some u -> (
              match target u (input u).right with
              | None -> false
              | Some rcu -> resolves_to lc (input lc).left_nbr rcu))
      | TL.Inconsistent -> false)

let compatible inst v =
  compatible_gen
    ~degree:(Graph.degree inst.graph)
    ~input:(input inst)
    ~follow:(Graph.neighbor inst.graph) v

let status inst v =
  status_gen
    ~degree:(Graph.degree inst.graph)
    ~input:(input inst)
    ~follow:(Graph.neighbor inst.graph) v

(* --- the LCL checker (Definition 4.3) ---------------------------------- *)

let problem : (node_input, output) Lcl.t =
  let valid_at g ~input:inp ~output:out v =
    let degree = Graph.degree g in
    let follow = Graph.neighbor g in
    let status = status_gen ~degree ~input:inp ~follow in
    let compatible = compatible_gen ~degree ~input:inp ~follow in
    let expect what o v' =
      if equal_output (out v') o then Ok ()
      else Error (Fmt.str "%s: expected %a, got %a" what pp_output o pp_output (out v'))
    in
    match status v with
    | TL.Inconsistent -> Ok ()
    | TL.Leaf ->
        if not (compatible v) then expect "incompatible node" { verdict = Unbal; port = TL.bot } v
        else expect "compatible leaf" { verdict = Bal; port = (inp v).parent } v
    | TL.Internal ->
        if not (compatible v) then expect "incompatible node" { verdict = Unbal; port = TL.bot } v
        else
          let iv = inp v in
          let lc = follow v iv.left and rc = follow v iv.right in
          let ol = out lc and o_r = out rc in
          (match (ol.verdict, o_r.verdict) with
          | Bal, Bal -> expect "children balanced" { verdict = Bal; port = iv.parent } v
          | Unbal, Bal -> expect "left child unbalanced" { verdict = Unbal; port = iv.left } v
          | Bal, Unbal -> expect "right child unbalanced" { verdict = Unbal; port = iv.right } v
          | Unbal, Unbal ->
              let o = out v in
              if (match o.verdict with Unbal -> true | Bal -> false)
                 && (o.port = iv.left || o.port = iv.right)
              then Ok ()
              else
                Error
                  (Fmt.str "both children unbalanced: expected (U,%d) or (U,%d), got %a" iv.left
                     iv.right pp_output o))
  in
  { Lcl.name = "BalancedTree"; radius = 3; valid_at }

(* --- instance construction -------------------------------------------- *)

(* Base graph of Proposition 4.9 / Figure 5: complete binary tree of
   depth [k], plus lateral edges joining consecutive nodes of each depth
   row.  Row [d] occupies node indices [2^d - 1 .. 2^(d+1) - 2]. *)
let base_graph ~depth =
  let tree = Builder.complete_binary_tree ~depth in
  let laterals =
    List.concat_map
      (fun d ->
        let first = (1 lsl d) - 1 in
        let row = 1 lsl d in
        List.init (row - 1) (fun i -> (first + i, first + i + 1)))
      (List.init depth (fun d -> d + 1))
  in
  Builder.attach tree ~extra_edges:laterals

let row_of v = Builder.tree_depth_of v

let row_range d = ((1 lsl d) - 1, (1 lsl (d + 1)) - 2)

(* Build the labeling: tree pointers from the heap structure, lateral
   pointers between consecutive row nodes except where [cut] says the
   link is erased (used for the disjointness embedding). *)
let make_instance ~depth ~cut =
  let g = base_graph ~depth in
  let n = Graph.n g in
  let port_opt v w =
    match w with
    | None -> TL.bot
    | Some w -> ( match Graph.port_to g v w with Some p -> p | None -> TL.bot)
  in
  let labels =
    Array.init n (fun v ->
        let d = row_of v in
        let first, last = row_range d in
        let left_nbr = if v > first && not (cut (v - 1) v) then Some (v - 1) else None in
        let right_nbr = if v < last && not (cut v (v + 1)) then Some (v + 1) else None in
        {
          parent = port_opt v (Builder.tree_parent ~depth v);
          left = port_opt v (Builder.tree_left ~depth v);
          right = port_opt v (Builder.tree_right ~depth v);
          left_nbr = port_opt v left_nbr;
          right_nbr = port_opt v right_nbr;
        })
  in
  { graph = g; labels }

let balanced_instance ~depth =
  if depth < 1 then invalid_arg "Balanced_tree.balanced_instance: depth must be >= 1";
  make_instance ~depth ~cut:(fun _ _ -> false)

let leaf_pair_nodes ~depth i =
  let first = (1 lsl depth) - 1 in
  (first + (2 * i), first + (2 * i) + 1)

let broken_pair_instance ~depth ~break =
  if depth < 1 then invalid_arg "Balanced_tree.broken_pair_instance: depth must be >= 1";
  let pairs = 1 lsl (depth - 1) in
  if break < 0 || break >= pairs then
    invalid_arg "Balanced_tree.broken_pair_instance: break out of range";
  let u, w = leaf_pair_nodes ~depth break in
  make_instance ~depth ~cut:(fun a b -> a = u && b = w)

let embed_disjointness disj =
  let n = Disjointness.size disj in
  let depth =
    let d = Probe_tree.log2_ceil n + 1 in
    if 1 lsl (d - 1) <> n then
      invalid_arg "Balanced_tree.embed_disjointness: vector length must be a power of two"
    else d
  in
  make_instance ~depth ~cut:(fun a b ->
      let first = (1 lsl depth) - 1 in
      (* only leaf-row sibling links (u_i, w_i) depend on the inputs *)
      a >= first && b = a + 1 && (a - first) mod 2 = 0
      &&
      let i = (a - first) / 2 in
      disj.Disjointness.x.(i) && disj.Disjointness.y.(i))

let leaf_pair inst i =
  let depth = row_of (Graph.n inst.graph - 1) in
  leaf_pair_nodes ~depth i

let comm_world inst ~counter =
  let g = inst.graph in
  let leaf_row_first = (1 lsl row_of (Graph.n g - 1)) - 1 in
  let base = world inst in
  let start origin =
    let session = base.World.start origin in
    let resolve w ~port =
      let u = session.World.resolve w ~port in
      (* Only the leaf-row labels depend on Alice's and Bob's private
         inputs; answering a query that reveals such a node costs the
         two bits (x_i, y_i).  Everything else is free. *)
      if u >= leaf_row_first then Comm_counter.charge counter ~bits:2
      else Comm_counter.free counter;
      u
    in
    { session with World.resolve }
  in
  { World.n = base.World.n; max_degree = base.World.max_degree; start }

let root _inst = 0

(* --- the distance-O(log n) solver (Proposition 4.8) -------------------- *)

let solve_core ~degree ~input ~follow ~n v0 =
  let status = status_gen ~degree ~input ~follow in
  let compatible = compatible_gen ~degree ~input ~follow in
  match status v0 with
  | TL.Inconsistent -> { verdict = Bal; port = TL.bot }
  | TL.Leaf ->
      if compatible v0 then { verdict = Bal; port = (input v0).parent }
      else { verdict = Unbal; port = TL.bot }
  | TL.Internal ->
      if not (compatible v0) then { verdict = Unbal; port = TL.bot }
      else begin
        (* Level-order descent through G_T, left children first.  Stop at
           the first level containing a leaf (depth d); report the first
           incompatible descendant found up to that level, if any. *)
        let iv = input v0 in
        let lc = follow v0 iv.left and rc = follow v0 iv.right in
        let seen = Hashtbl.create 64 in
        Hashtbl.add seen v0 ();
        let enqueue (v, hop) acc =
          if Hashtbl.mem seen v then acc
          else begin
            Hashtbl.add seen v ();
            (v, hop) :: acc
          end
        in
        let level0 = List.rev (enqueue (rc, iv.right) (enqueue (lc, iv.left) [])) in
        let cap = Probe_tree.log2_ceil n + 2 in
        let rec descend level depth_no =
          match level with
          | [] -> { verdict = Bal; port = iv.parent }
          | _ :: _ -> (
              let incompatible =
                List.find_opt (fun (v, _) -> not (compatible v)) level
              in
              match incompatible with
              | Some (_, hop) -> { verdict = Unbal; port = hop }
              | None ->
                  let has_leaf =
                    List.exists (fun (v, _) -> TL.equal_status (status v) TL.Leaf) level
                  in
                  if has_leaf || depth_no >= cap then { verdict = Bal; port = iv.parent }
                  else
                    let next =
                      List.fold_left
                        (fun acc (v, hop) ->
                          match status v with
                          | TL.Internal ->
                              let i = input v in
                              let l = follow v i.left and r = follow v i.right in
                              enqueue (r, hop) (enqueue (l, hop) acc)
                          | TL.Leaf | TL.Inconsistent -> acc)
                        [] level
                    in
                    descend (List.rev next) (depth_no + 1))
        in
        descend level0 1
      end

let solve_distance_fn ctx =
  solve_core
    ~degree:(Probe.degree ctx)
    ~input:(fun v -> Probe.input ctx v)
    ~follow:(fun v p -> Probe.query ctx ~at:v ~port:p)
    ~n:(Probe.n ctx) (Probe.origin ctx)

let solve_distance =
  Lcl.solver ~name:"descend-to-defect (Prop 4.8)" ~randomized:false solve_distance_fn

let solvers = [ solve_distance ]
