lib/rng/stream.ml: Bytes Splitmix
