module Json = Vc_obs.Json
module Splitmix = Vc_rng.Splitmix
module Registry = Vc_check.Registry

type config = {
  clients : int;
  requests : int;
  mix : (string * int) list;
  seed : int64;
  deadline_ms : int option;
  verify : bool;
  shutdown : bool;
}

let kinds = [ "solve"; "probe"; "trace"; "list"; "stats" ]
let default_mix = [ ("solve", 1); ("probe", 4); ("trace", 1); ("list", 1); ("stats", 1) ]

let parse_mix s =
  let parse_item item =
    match String.split_on_char ':' (String.trim item) with
    | [ k ] when List.mem k kinds -> Ok (k, 1)
    | [ k; w ] when List.mem k kinds -> (
        match int_of_string_opt w with
        | Some w when w > 0 -> Ok (k, w)
        | _ -> Error (Printf.sprintf "bad weight %S for kind %s" w k))
    | k :: _ -> Error (Printf.sprintf "unknown request kind %S" k)
    | [] -> Error "empty mix item"
  in
  let items = List.filter (fun s -> String.trim s <> "") (String.split_on_char ',' s) in
  if items = [] then Error "empty mix"
  else
    List.fold_left
      (fun acc item ->
        match (acc, parse_item item) with
        | Ok items, Ok it -> Ok (items @ [ it ])
        | (Error _ as e), _ | _, (Error _ as e) -> e)
      (Ok []) items

type percentiles = {
  l_count : int;
  l_p50_us : int;
  l_p95_us : int;
  l_p99_us : int;
  l_max_us : int;
}

type summary = {
  s_clients : int;
  s_requests : int;
  s_ok : int;
  s_errors : (string * int) list;
  s_mismatches : int;
  s_wall_s : float;
  s_latency : (string * percentiles) list;
  s_server_stats : Json.t option;
}

(* --- deterministic request plan ---------------------------------------------- *)

(* Two derived instance seeds: more than one so the session cache sees
   distinct keys (hits *and* evictions under a small capacity), few
   enough that instances stay warm across the run. *)
let instance_seed seed variant = Splitmix.mix (Int64.add seed (Int64.of_int (variant + 1)))

let smallest sizes = List.fold_left min (List.hd sizes) sizes

let gen_plan twin entries cfg =
  let rng = Splitmix.create cfg.seed in
  let total_weight = List.fold_left (fun a (_, w) -> a + w) 0 cfg.mix in
  let pick_kind () =
    let r = Splitmix.int rng ~bound:total_weight in
    let rec go acc = function
      | [] -> assert false
      | (k, w) :: rest -> if r < acc + w then k else go (acc + w) rest
    in
    go 0 cfg.mix
  in
  let n_entries = List.length entries in
  let pick_instance () =
    let e = List.nth entries (Splitmix.int rng ~bound:n_entries) in
    let size = smallest e.Registry.quick_sizes in
    let seed = instance_seed cfg.seed (Splitmix.int rng ~bound:2) in
    (e.Registry.name, size, seed)
  in
  List.init cfg.requests (fun _ ->
      match pick_kind () with
      | "solve" ->
          let problem, size, seed = pick_instance () in
          Protocol.Solve { problem; size; seed }
      | ("probe" | "trace") as k ->
          let problem, size, seed = pick_instance () in
          let n =
            match Handler.instance_n twin ~problem ~size ~seed with
            | Ok n -> n
            | Error (_, msg) -> failwith ("loadgen plan: " ^ msg)
          in
          let origin = Splitmix.int rng ~bound:n in
          if k = "probe" then Protocol.Probe { problem; size; seed; origin }
          else Protocol.Trace { problem; size; seed; origin }
      | "list" -> Protocol.List
      | "stats" -> Protocol.Stats
      | _ -> assert false)

(* --- wire helpers ------------------------------------------------------------- *)

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

exception Fail of string

let rec read_frame fd dec buf =
  match Protocol.next_frame dec with
  | Ok (Some body) -> body
  | Error msg -> raise (Fail ("reply framing: " ^ msg))
  | Ok None -> (
      match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 -> raise (Fail "server closed the connection mid-reply")
      | n ->
          Protocol.feed dec buf n;
          read_frame fd dec buf)

let read_reply fd dec buf =
  let body = read_frame fd dec buf in
  match Json.parse body with
  | Error msg -> raise (Fail ("reply is not JSON: " ^ msg))
  | Ok v -> (
      match Protocol.reply_of_json v with
      | Error msg -> raise (Fail ("bad reply: " ^ msg))
      | Ok r -> r)

let send fd req = write_all fd (Protocol.frame (Json.to_string (Protocol.request_to_json req)))

(* --- the closed loop ---------------------------------------------------------- *)

type client = {
  fd : Unix.file_descr;
  dec : Protocol.decoder;
  mutable todo : (int * Protocol.query) list;  (** (request id, query), in order *)
  mutable inflight : (int * Protocol.query * float) option;
}

let percentiles_of samples =
  let a = Array.of_list samples in
  Array.sort compare a;
  let n = Array.length a in
  let rank q = a.(max 0 (min (n - 1) (int_of_float (ceil (q *. float_of_int n /. 100.)) - 1))) in
  {
    l_count = n;
    l_p50_us = rank 50.;
    l_p95_us = rank 95.;
    l_p99_us = rank 99.;
    l_max_us = a.(n - 1);
  }

let run ~connect cfg =
  if cfg.clients < 1 then invalid_arg "Loadgen.run: clients must be >= 1";
  if cfg.requests < 0 then invalid_arg "Loadgen.run: requests must be >= 0";
  if cfg.mix = [] || List.exists (fun (_, w) -> w <= 0) cfg.mix then
    invalid_arg "Loadgen.run: mix must be non-empty with positive weights";
  let twin = Handler.create () in
  let entries = Registry.all () in
  match
    let plan = gen_plan twin entries cfg in
    let clients =
      List.init cfg.clients (fun _ -> { fd = connect (); dec = Protocol.decoder (); todo = []; inflight = None })
    in
    let carr = Array.of_list clients in
    List.iteri
      (fun i q ->
        let c = carr.(i mod cfg.clients) in
        c.todo <- c.todo @ [ (i + 1, q) ])
      plan;
    let buf = Bytes.create 65536 in
    let ok = ref 0 in
    let mismatches = ref 0 in
    let errors = Hashtbl.create 8 in
    let latencies : (string, int list ref) Hashtbl.t = Hashtbl.create 8 in
    let note_latency kind us =
      let cell =
        match Hashtbl.find_opt latencies kind with
        | Some c -> c
        | None ->
            let c = ref [] in
            Hashtbl.replace latencies kind c;
            c
      in
      cell := us :: !cell
    in
    let verify_payload q payload =
      match Protocol.kind q with
      | "stats" ->
          if Json.member payload "cache" = None || Json.member payload "metrics" = None then
            incr mismatches
      | _ -> (
          match Handler.handle twin q with
          | Ok expected ->
              if Json.to_string payload <> Json.to_string expected then incr mismatches
          | Error _ -> incr mismatches)
    in
    let settle c =
      match c.inflight with
      | None -> ()
      | Some (id, q, t0) ->
          let r = read_reply c.fd c.dec buf in
          note_latency (Protocol.kind q)
            (int_of_float (Float.max 0. ((Unix.gettimeofday () -. t0) *. 1e6)));
          c.inflight <- None;
          if r.Protocol.r_id <> id then
            raise (Fail (Printf.sprintf "reply id %d for request %d" r.Protocol.r_id id));
          (match r.Protocol.body with
          | Ok payload ->
              incr ok;
              if cfg.verify then verify_payload q payload
          | Error (code, _) ->
              let key = Protocol.code_to_string code in
              Hashtbl.replace errors key (1 + Option.value (Hashtbl.find_opt errors key) ~default:0))
    in
    let t_start = Unix.gettimeofday () in
    while Array.exists (fun c -> c.todo <> []) carr do
      (* write phase: every client with work sends before anyone reads,
         so concurrent requests reach the server as one batch *)
      Array.iter
        (fun c ->
          match c.todo with
          | [] -> ()
          | (id, q) :: rest ->
              c.todo <- rest;
              let t0 = Unix.gettimeofday () in
              send c.fd { Protocol.id; deadline_ms = cfg.deadline_ms; query = q };
              c.inflight <- Some (id, q, t0))
        carr;
      Array.iter settle carr
    done;
    let wall = Unix.gettimeofday () -. t_start in
    (* control requests on client 0: a stats snapshot for the report,
       then (optionally) shutdown; neither counts toward the summary *)
    let c0 = carr.(0) in
    let control id query =
      send c0.fd { Protocol.id; deadline_ms = None; query };
      read_reply c0.fd c0.dec buf
    in
    let server_stats =
      match (control (cfg.requests + 1) Protocol.Stats).Protocol.body with
      | Ok payload -> Some payload
      | Error _ -> None
    in
    if cfg.shutdown then
      ignore (control (cfg.requests + 2) Protocol.Shutdown : Protocol.reply);
    Array.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) carr;
    let sorted_assoc tbl f =
      Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    {
      s_clients = cfg.clients;
      s_requests = cfg.requests;
      s_ok = !ok;
      s_errors = sorted_assoc errors Fun.id;
      s_mismatches = !mismatches;
      s_wall_s = wall;
      s_latency = sorted_assoc latencies (fun l -> percentiles_of !l);
      s_server_stats = server_stats;
    }
  with
  | summary -> Ok summary
  | exception Fail msg -> Error msg
  | exception Failure msg -> Error msg
  | exception Unix.Unix_error (e, fn, _) ->
      Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))

(* --- reporting ---------------------------------------------------------------- *)

let summary_to_json s =
  Json.Obj
    [
      ( "loadgen",
        Json.Obj
          [
            ("clients", Json.Int s.s_clients);
            ("requests", Json.Int s.s_requests);
            ("ok", Json.Int s.s_ok);
            ("mismatches", Json.Int s.s_mismatches);
            ("wall_s", Json.Float s.s_wall_s);
            ("errors", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.s_errors));
            ( "latency_us",
              Json.Obj
                (List.map
                   (fun (kind, p) ->
                     ( kind,
                       Json.Obj
                         [
                           ("count", Json.Int p.l_count);
                           ("p50", Json.Int p.l_p50_us);
                           ("p95", Json.Int p.l_p95_us);
                           ("p99", Json.Int p.l_p99_us);
                           ("max", Json.Int p.l_max_us);
                         ] ))
                   s.s_latency) );
            ( "server_stats",
              match s.s_server_stats with Some j -> j | None -> Json.Null );
          ] );
    ]

let pp_summary ppf s =
  Format.fprintf ppf "loadgen: %d requests over %d client(s) in %.3f s@." s.s_requests
    s.s_clients s.s_wall_s;
  Format.fprintf ppf "  ok %d, errors %d, mismatches %d@." s.s_ok
    (List.fold_left (fun a (_, c) -> a + c) 0 s.s_errors)
    s.s_mismatches;
  List.iter (fun (code, c) -> Format.fprintf ppf "  error %-18s %d@." code c) s.s_errors;
  List.iter
    (fun (kind, p) ->
      Format.fprintf ppf "  %-8s count %-5d p50 %6d us   p95 %6d us   p99 %6d us   max %6d us@."
        kind p.l_count p.l_p50_us p.l_p95_us p.l_p99_us p.l_max_us)
    s.s_latency
