(* Consistent-hash ring over shard ids.

   The hash is FNV-1a (64-bit), spelled out rather than [Hashtbl.hash]
   because routing must be identical across processes and OCaml
   versions: the supervisor, the loadgen client and the fault-injection
   tests all compute shard placement independently and must agree. *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let hash64 s =
  let h = ref fnv_offset in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

(* Session keys are case-folded on problem name to match the registry's
   case-insensitive lookup: "LeafColoring" and "leafcoloring" are the
   same warm world and must land on the same shard. *)
let session_key ~problem ~size ~seed =
  Printf.sprintf "%s\x00%d\x00%Ld" (String.lowercase_ascii problem) size seed

type t = {
  points : (int64 * int) array;  (** sorted by point, unsigned *)
  shards : int list;
  vnodes : int;
}

let default_vnodes = 64

let create ?(vnodes = default_vnodes) shards =
  if shards = [] then invalid_arg "Ring.create: no shards";
  if vnodes < 1 then invalid_arg "Ring.create: vnodes must be >= 1";
  let shards = List.sort_uniq compare shards in
  let points =
    Array.of_list
      (List.concat_map
         (fun shard ->
           List.init vnodes (fun r -> (hash64 (Printf.sprintf "%d/%d" shard r), shard)))
         shards)
  in
  Array.sort
    (fun (a, sa) (b, sb) ->
      match Int64.unsigned_compare a b with 0 -> compare sa sb | c -> c)
    points;
  { points; shards; vnodes }

let shards t = t.shards
let vnodes t = t.vnodes

let remove t shard =
  let rest = List.filter (fun s -> s <> shard) t.shards in
  create ~vnodes:t.vnodes rest

(* First point with hash >= h (unsigned), wrapping to points.(0). *)
let lookup_hash t h =
  let n = Array.length t.points in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int64.unsigned_compare (fst t.points.(mid)) h < 0 then lo := mid + 1 else hi := mid
  done;
  snd t.points.(if !lo = n then 0 else !lo)

let lookup t key = lookup_hash t (hash64 key)

let lookup_session t ~problem ~size ~seed = lookup t (session_key ~problem ~size ~seed)
