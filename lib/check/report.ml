type solver_agg = {
  s_name : string;
  s_randomized : bool;
  s_trials : int;
  s_valid : int;
  s_max_volume : int;
  s_max_distance : int;
  s_max_rand_bits : int;
}

type kind_agg = {
  k_kind : string;
  k_total : int;
  k_rejected : int;
  k_out_of_radius : int;
}

type problem_report = {
  p_name : string;
  p_radius : int;
  p_instances : int;
  p_solvers : solver_agg list;
  p_merge_consistent : bool;
  p_cross_model : (string * bool) list;
  p_lazy_eager : bool;
  p_ir : bool option;
  p_replay : bool;
  p_serve : bool option;
  p_shard : bool option;
  p_snap : bool option;
  p_synth : bool option;
  p_mutations : kind_agg list;
  p_probes_skipped : string list;
  p_failures : string list;
}

type t = {
  seed : int64;
  count : int;
  domains : int;
  quick : bool;
  problems : problem_report list;
}

let mutations_total p = List.fold_left (fun acc k -> acc + k.k_total) 0 p.p_mutations

let mutations_rejected p = List.fold_left (fun acc k -> acc + k.k_rejected) 0 p.p_mutations

(* A skipped mutation probe waives the at-least-one-rejection demand —
   there were no fuzzing rounds to reject anything. *)
let problem_ok p =
  p.p_failures = []
  && (mutations_rejected p >= 1 || List.mem "mutate" p.p_probes_skipped)

let ok t = List.for_all problem_ok t.problems

(* --- human rendering ------------------------------------------------------ *)

let pp_problem ppf p =
  Fmt.pf ppf "@[<v 2>%s  [%s]@," p.p_name (if problem_ok p then "ok" else "FAIL");
  Fmt.pf ppf "instances: %d  radius: %s@," p.p_instances
    (if p.p_radius = max_int then "unbounded" else string_of_int p.p_radius);
  List.iter
    (fun s ->
      Fmt.pf ppf "solver %-28s %s  valid %d/%d  max vol %d  max dist %d  rand bits %d@,"
        s.s_name
        (if s.s_randomized then "(rand)" else "(det) ")
        s.s_valid s.s_trials s.s_max_volume s.s_max_distance s.s_max_rand_bits)
    p.p_solvers;
  Fmt.pf ppf "merge-consistent: %b@," p.p_merge_consistent;
  List.iter (fun (name, passed) -> Fmt.pf ppf "cross-model %s: %b@," name passed) p.p_cross_model;
  Fmt.pf ppf "lazy/eager identical: %b@," p.p_lazy_eager;
  (match p.p_ir with
  | None -> ()
  | Some b -> Fmt.pf ppf "ir/closure identical: %b@," b);
  Fmt.pf ppf "record/replay identical: %b@," p.p_replay;
  (match p.p_serve with
  | None -> ()
  | Some b -> Fmt.pf ppf "serve round-trip identical: %b@," b);
  (match p.p_shard with
  | None -> ()
  | Some b -> Fmt.pf ppf "sharded tier identical: %b@," b);
  (match p.p_snap with
  | None -> ()
  | Some b -> Fmt.pf ppf "snapshot identical: %b@," b);
  (match p.p_synth with
  | None -> ()
  | Some b -> Fmt.pf ppf "synthesis verdicts consistent: %b@," b);
  if p.p_probes_skipped <> [] then
    Fmt.pf ppf "probes skipped: %s@," (String.concat ", " p.p_probes_skipped);
  List.iter
    (fun k ->
      Fmt.pf ppf "mutants %-18s rejected %d/%d%s@," k.k_kind k.k_rejected k.k_total
        (if k.k_out_of_radius > 0 then Fmt.str "  OUT-OF-RADIUS %d" k.k_out_of_radius else ""))
    p.p_mutations;
  List.iter (fun f -> Fmt.pf ppf "failure: %s@," f) p.p_failures;
  Fmt.pf ppf "@]"

let pp ppf t =
  Fmt.pf ppf "@[<v>conformance check  seed=%Ld count=%d domains=%d%s@,@," t.seed t.count t.domains
    (if t.quick then " (quick)" else "");
  List.iter (fun p -> Fmt.pf ppf "%a@," pp_problem p) t.problems;
  let failed = List.filter (fun p -> not (problem_ok p)) t.problems in
  if failed = [] then Fmt.pf ppf "all %d problems conformant@." (List.length t.problems)
  else
    Fmt.pf ppf "%d/%d problems FAILED: %s@." (List.length failed) (List.length t.problems)
      (String.concat ", " (List.map (fun p -> p.p_name) failed))

(* --- JSON rendering (via the shared Vc_obs.Json encoder) ------------------- *)

module Json = Vc_obs.Json

let solver_json s =
  Json.Obj
    [
      ("name", Json.String s.s_name);
      ("randomized", Json.Bool s.s_randomized);
      ("trials", Json.Int s.s_trials);
      ("valid", Json.Int s.s_valid);
      ("max_volume", Json.Int s.s_max_volume);
      ("max_distance", Json.Int s.s_max_distance);
      ("max_rand_bits", Json.Int s.s_max_rand_bits);
    ]

let kind_json k =
  Json.Obj
    [
      ("kind", Json.String k.k_kind);
      ("total", Json.Int k.k_total);
      ("rejected", Json.Int k.k_rejected);
      ("out_of_radius", Json.Int k.k_out_of_radius);
    ]

let problem_json p =
  Json.Obj
    [
      ("problem", Json.String p.p_name);
      ("ok", Json.Bool (problem_ok p));
      ("radius", if p.p_radius = max_int then Json.String "unbounded" else Json.Int p.p_radius);
      ("instances", Json.Int p.p_instances);
      ("solvers", Json.List (List.map solver_json p.p_solvers));
      ("merge_consistent", Json.Bool p.p_merge_consistent);
      ("lazy_eager", Json.Bool p.p_lazy_eager);
      ("ir", match p.p_ir with None -> Json.Null | Some b -> Json.Bool b);
      ("replay", Json.Bool p.p_replay);
      ("serve", match p.p_serve with None -> Json.Null | Some b -> Json.Bool b);
      ("shard", match p.p_shard with None -> Json.Null | Some b -> Json.Bool b);
      ("snap", match p.p_snap with None -> Json.Null | Some b -> Json.Bool b);
      ("synth", match p.p_synth with None -> Json.Null | Some b -> Json.Bool b);
      ("cross_model", Json.Obj (List.map (fun (n, b) -> (n, Json.Bool b)) p.p_cross_model));
      ( "mutations",
        Json.Obj
          [
            ("total", Json.Int (mutations_total p));
            ("rejected", Json.Int (mutations_rejected p));
            ( "out_of_radius",
              Json.Int (List.fold_left (fun acc k -> acc + k.k_out_of_radius) 0 p.p_mutations) );
            ("by_kind", Json.List (List.map kind_json p.p_mutations));
          ] );
      ("probes_skipped", Json.List (List.map (fun s -> Json.String s) p.p_probes_skipped));
      ("failures", Json.List (List.map (fun f -> Json.String f) p.p_failures));
    ]

let to_json t =
  Json.to_string
    (Json.Obj
       [
         ("seed", Json.I64 t.seed);
         ("count", Json.Int t.count);
         ("domains", Json.Int t.domains);
         ("quick", Json.Bool t.quick);
         ("ok", Json.Bool (ok t));
         ("problems", Json.List (List.map problem_json t.problems));
       ])

let write_json t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_json t);
      output_char oc '\n')
