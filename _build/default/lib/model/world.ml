module Graph = Vc_graph.Graph
module Bfs = Vc_graph.Bfs

type 'i session = {
  view : Graph.node -> 'i View.t;
  resolve : Graph.node -> port:int -> Graph.node;
  dist : Graph.node -> int;
}

type 'i t = {
  n : int;
  start : Graph.node -> 'i session;
}

let of_graph_claiming ~n g ~input =
  let start origin =
    let distances = Bfs.distances g origin in
    {
      view =
        (fun v ->
          { View.node = v; id = Graph.id g v; degree = Graph.degree g v; input = input v });
      resolve = (fun w ~port -> Graph.neighbor g w port);
      dist = (fun v -> distances.(v));
    }
  in
  { n; start }

let of_graph g ~input = of_graph_claiming ~n:(Graph.n g) g ~input
