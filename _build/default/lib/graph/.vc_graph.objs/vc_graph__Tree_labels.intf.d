lib/graph/tree_labels.mli: Format Graph Vc_rng
