lib/rng/randomness.mli: Stream
