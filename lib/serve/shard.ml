(* Supervisor-side state of one worker: the child process, the
   socketpair channel to it, and the shard's warm-session ledger.

   The ledger is the supervisor's mirror of the worker's LRU cache: it
   records, with the same capacity and recency order, which
   (problem, size, seed) worlds the worker has resident.  It is what
   makes re-warm after a respawn possible — the dead worker's memory is
   gone, but the supervisor knows exactly which sessions to rebuild. *)

type spawn = shard:int -> fd:Unix.file_descr -> close_fds:Unix.file_descr list -> int

type t = {
  id : int;
  warm : (string, Protocol.query) Lru.t;
  mutable pid : int;
  mutable fd : Unix.file_descr;
  mutable dec : Protocol.decoder;
  mutable alive : bool;
  mutable inflight : int;
  mutable respawns : int;
}

(* The worker end of the socketpair is handed to [spawn] and closed in
   the parent either way: a forked child inherited it, an exec'd child
   got it dup2'd onto stdin.  The parent end is cloexec so later
   exec-spawned siblings don't pin it open; it is also prepended to the
   spawn's close list — a forked child that kept it would hold its own
   channel open and never see EOF when the supervisor exits. *)
let start ~spawn ~close_fds id =
  let parent, child = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_close_on_exec parent;
  let pid = spawn ~shard:id ~fd:child ~close_fds:(parent :: close_fds) in
  Unix.close child;
  (pid, parent)

let create ~spawn ~warm_capacity ~close_fds id =
  let pid, fd = start ~spawn ~close_fds id in
  {
    id;
    warm = Lru.create ~capacity:warm_capacity;
    pid;
    fd;
    dec = Protocol.decoder ();
    alive = true;
    inflight = 0;
    respawns = 0;
  }

let mark_dead t =
  if t.alive then begin
    t.alive <- false;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let rec reap t =
  match Unix.waitpid [] t.pid with
  | _ -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap t
  | exception Unix.Unix_error _ -> ()

let respawn ~spawn ~close_fds t =
  let pid, fd = start ~spawn ~close_fds t.id in
  t.pid <- pid;
  t.fd <- fd;
  t.dec <- Protocol.decoder ();
  t.alive <- true;
  t.inflight <- 0;
  t.respawns <- t.respawns + 1

(* Blocking write of one framed body; [false] means the worker is gone
   (the caller fails the route and schedules a respawn). *)
let send t body =
  t.alive
  &&
  let s = Protocol.frame body in
  try
    let len = String.length s in
    let off = ref 0 in
    while !off < len do
      off := !off + Unix.write_substring t.fd s !off (len - !off)
    done;
    true
  with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
    mark_dead t;
    false

let note_warm t ~key q = ignore (Lru.add t.warm key q : (string * Protocol.query) option)

let warm_count t = Lru.length t.warm

(* Oldest first, so re-warm rebuilds the worker's LRU in the original
   recency order. *)
let warm_queries t = List.rev_map snd (Lru.to_list t.warm)
