(** SplitMix64: a small, fast, splittable pseudo-random number generator.

    The generator is deterministic: the same seed always yields the same
    sequence.  [split] derives an independent generator from a key, which
    is how we give every node of a graph its own private random stream
    (Section 2.2 of the paper) while keeping whole experiments
    reproducible from a single seed. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator. *)

val copy : t -> t
(** [copy g] is an independent generator with the same current state. *)

val next : t -> int64
(** [next g] advances [g] and returns 64 fresh pseudo-random bits. *)

val split : t -> key:int64 -> t
(** [split g ~key] derives a new generator from [g]'s seed and [key]
    without advancing [g].  Distinct keys give statistically independent
    streams. *)

val int : t -> bound:int -> int
(** [int g ~bound] is a uniform integer in [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)

val bool : t -> bool
(** [bool g] is a uniform coin flip. *)

val float : t -> float
(** [float g] is uniform in [0, 1). *)

val mix : int64 -> int64
(** [mix z] is the SplitMix64 finalizer, usable as a standalone hash. *)
