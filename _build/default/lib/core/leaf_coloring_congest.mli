(** LeafColoring in the CONGEST model (paper Observation 7.4 applied to
    the Section 3 problem).

    Although LeafColoring costs Θ(n) deterministic volume, it is
    solvable in O(log n) CONGEST rounds with O(log n)-bit messages:
    after the constant-round status determination, every leaf announces
    its input color to its [G_T] parent and internal nodes relay the
    {e first} report they receive — which carries the color of their
    nearest descendant leaf (within log n hops by Lemma 3.8).  The
    output of a node then equals the output of the child that relayed
    to it, which is exactly Definition 3.4's validity condition. *)

type message
type state

val algorithm :
  unit ->
  (Leaf_coloring.node_input, message, state, Vc_graph.Tree_labels.color) Vc_model.Congest.algorithm

val run :
  Leaf_coloring.instance ->
  ?bandwidth:int ->
  unit ->
  Vc_graph.Tree_labels.color Vc_model.Congest.result
(** Run to quiescence (at most [log n + O(1)] rounds; default bandwidth
    256 bits). *)
