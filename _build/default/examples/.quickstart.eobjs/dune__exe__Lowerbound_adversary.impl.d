examples/lowerbound_adversary.ml: Fmt List Vc_graph Vc_lcl Vc_model Volcomp
