(** Structured probe transcripts: record every interaction an execution
    has with its world, and replay a recorded transcript against a fresh
    run, asserting bit-identical behavior.

    One {!Vc_model.Probe.run} with a sink attached produces one
    {e session}: [Session_open], then one event per world interaction in
    execution order ([Probe] for each [query], [View]/[Dist] when a node
    is admitted to the visited set, [Rand] for each random bit read),
    closed by a [Session_close] carrying the run's full cost vector and
    an output digest.  Because every solver in this repository is a
    deterministic function of (world, origin, randomness seed), the
    event sequence is itself deterministic — which is what makes the
    {!checking} sink a complete replay oracle: re-run the same solver
    with the recorded transcript as the sink and any divergence (event
    order, arguments, results, costs) raises {!Replay_mismatch} at the
    exact first divergent event.

    Inputs and outputs are recorded as structural digests
    ([Hashtbl.hash]), not serialized values: a transcript pins down the
    interaction sequence of a run, and offline replay rebuilds the
    instance deterministically from the (problem, size, seed) header —
    see {!Vc_check.Oracle.record_trace}.

    A sink belongs to a single domain; metrics, not traces, are the
    multi-domain-safe layer. *)

type event =
  | Session_open of { origin : int; n : int }
      (** [n] is the node count the world claims. *)
  | View of { node : int; id : int; degree : int; input : int }
      (** A node joined the visited set; [input] is a structural digest
          of its input label. *)
  | Dist of { node : int; d : int }
      (** The incremental BFS answered a distance demand ([max_int] for
          unreachable). *)
  | Probe of { at : int; port : int; node : int }
      (** One [query at port] and its answer (repeat queries
          included). *)
  | Rand of { node : int; index : int; bit : bool }
  | Session_close of {
      volume : int;
      distance : int;
      queries : int;
      rand_bits : int;
      aborted : bool;
      output : int;  (** structural digest of [Probe.result.output] *)
    }

val equal_event : event -> event -> bool
val pp_event : Format.formatter -> event -> unit

val event_to_json : event -> Json.t
val event_of_json : Json.t -> (event, string) result

exception Replay_mismatch of string
(** Raised by a {!checking} sink at the first divergent event. *)

type sink

val null : sink
(** Swallows everything (useful as a default). *)

val ring : ?capacity:int -> unit -> sink
(** In-memory recorder keeping the most recent [capacity] (default
    [2^18]) events. *)

val events : sink -> event list
(** Contents of a {!ring} sink, oldest first.
    @raise Invalid_argument on other sinks. *)

val to_file : path:string -> header:Json.t -> sink
(** JSONL recorder: the header object on the first line, then one event
    per line.  {!close} flushes and closes the file. *)

val checking : expect:event list -> sink
(** The replay oracle: the [k]-th emitted event must equal the [k]-th
    recorded one, else {!Replay_mismatch}. *)

val checking_result : sink -> (unit, string) result
(** For a {!checking} sink after the run: [Ok ()] iff the whole
    transcript was consumed.
    @raise Invalid_argument on other sinks. *)

val emit : sink -> event -> unit
val close : sink -> unit

val load : path:string -> (Json.t * event list, string) result
(** Read a {!to_file} transcript back: the header object and the
    events.  The header must carry a ["volcomp_trace"] field. *)
