module Graph = Vc_graph.Graph
module World = Vc_model.World
module Lcl = Vc_lcl.Lcl

type output = int

let problem : (unit, output) Lcl.t =
  let valid_at g ~input:_ ~output v =
    let p = output v in
    let deg = Graph.degree g v in
    if p < 0 || p > deg then Error (Fmt.str "match port %d out of range 0..%d" p deg)
    else if p = 0 then
      (* maximality: an unmatched node may not have an unmatched neighbor *)
      Graph.fold_neighbors g v ~init:(Ok ()) ~f:(fun acc w ->
          match acc with
          | Error _ -> acc
          | Ok () ->
              if output w = 0 then
                Error (Fmt.str "unmatched next to unmatched %d: not maximal" w)
              else Ok ())
    else
      let w = Graph.neighbor g v p in
      match Graph.port_to g w v with
      | None -> Error "malformed graph"
      | Some q ->
          if output w = q then Ok ()
          else Error (Fmt.str "partner %d does not reciprocate" w)
  in
  { Lcl.name = "MaximalMatching"; radius = 1; valid_at }

let world g = World.of_graph g ~input:(fun _ -> ())

(* Canonical greedy matching: edges in ascending (min id, max id) order,
   matched when both endpoints are still free. *)
let solve_greedy_fn ctx =
  let c = Global.gather ctx in
  let id = c.Global.id in
  let edges =
    List.concat_map
      (fun v ->
        List.filter_map
          (fun (_, w) -> if id v < id w then Some (v, w) else None)
          (c.Global.adj v))
      c.Global.members
  in
  let edges =
    List.sort (fun (a, b) (u, v) -> compare (id a, id b) (id u, id v)) edges
  in
  let partner = Hashtbl.create 64 in
  List.iter
    (fun (a, b) ->
      if not (Hashtbl.mem partner a) && not (Hashtbl.mem partner b) then begin
        Hashtbl.replace partner a b;
        Hashtbl.replace partner b a
      end)
    edges;
  match Hashtbl.find_opt partner c.Global.origin with
  | None -> 0
  | Some w -> (
      match
        List.find_opt (fun (_, u) -> u = w) (c.Global.adj c.Global.origin)
      with
      | Some (p, _) -> p
      | None -> 0)

let solve_greedy = Lcl.solver ~name:"global greedy matching" ~randomized:false solve_greedy_fn

let solvers = [ solve_greedy ]
