examples/congest_vs_volume.mli:
