(** What a query reveals about a node (paper Section 2.2).

    Answering [query(w, j)] reveals the identity of the resolved node,
    its degree, and its entire (problem-specific) input.  Nothing else:
    in particular the node's own port numbering is not revealed — an
    algorithm that wants to know which port of [u] leads back to [w] has
    to query [u]'s ports one by one. *)

type 'i t = {
  node : Vc_graph.Graph.node;  (** dense index, the simulator's handle *)
  id : int;  (** the unique identifier visible to the algorithm *)
  degree : int;
  input : 'i;
}

val pp : (Format.formatter -> 'i -> unit) -> Format.formatter -> 'i t -> unit
