(** Automatic Table-1 classification: drive {!Encode.synthesize} down a
    volume ladder per reference problem, reporting the minimal feasible
    volume on the problem's certificate corpus and the first infeasible
    budget below it — the machine-made analogue of the paper's
    hand-derived table.

    Three problem universes ship:

    - [degree-parity] (registry [DegreeParity]): class A; a 3-slot
      branch-on-degree template, feasible at volume 1 (the origin
      alone), infeasible at 0 by the VOL ≥ 1 axiom.
    - [cycle-coloring] (registry [CycleColoring3]): class B {e after
      normalization} — the input carries a proper 4-coloring (what
      Θ(log* n) rounds of Cole–Vishkin have already paid for; a
      finite-volume one-shot program cannot express the unbounded
      reduction itself), the output must be a proper 3-coloring.
      Feasible at volume 3 (own color + both neighbors, the mex rule)
      and infeasible at 2: every volume-2 behavior is "probe one
      neighbor, output f(own, seen)", and the corpus is a crafted cycle
      family whose induced constraints on f are non-3-colorable for
      every probe-direction map — the solver refutes them all.  That
      refutation costs ~10^5 conflicts, so {!spec.s_unsat_volume} pins
      the instant certified volume-1 rung (f injective from four colors
      into three) for the per-check probe; the CLI ladder still reaches
      the budget-2 UNSAT.
    - [leaf-coloring] (registry [LeafColoring]): class-B/C separation
      witness; the corpus is the Proposition 3.12 certificate family
      (depth-3 complete trees, internal red, all leaves one color).
      Feasible at volume 4 (descend to a leaf), infeasible at 3: within
      volume 3 the red and blue instances are indistinguishable from
      the root.  Both the budget-3 and budget-2 UNSATs sit strictly
      below the Proposition 3.13 adversary bound ⌈n/3⌉ = 5 at n = 15;
      the budget-3 proof is too large for the quadratic DRUP replay to
      certify quickly, so {!spec.s_unsat_volume} pins the sub-second
      certified budget-2 rung for the per-check probe (the budget-3
      refutation is exercised by the smoke rules and the CLI ladder).
      {!oracle_probe} re-derives the adversary bound live with
      {!Volcomp.Adversary_leaf.duel} so the SAT verdicts and the
      adversary subsystem cross-check each other. *)

type spec = {
  s_name : string;  (** CLI name, e.g. ["degree-parity"] *)
  s_registry : string;  (** the {!Vc_check.Registry} problem it mirrors *)
  s_family : string;
      (** the graph family of the certificate corpus, matching the
          {!Vc_check.Registry.entry} family tags ("cubic", "cycle",
          "tree", …) — the seam for family-filtered synthesis runs *)
  s_radius : int;  (** synthesis distance cap *)
  s_volume : int;  (** known-feasible volume (Table 1 / corpus minimal) *)
  s_unsat_volume : int;  (** first budget expected infeasible *)
  s_bound : int option;  (** proven adversary volume lower bound, if any *)
  s_universe : Encode.universe;
  s_template : Encode.template;
}

val specs : unit -> spec list
val find : string -> spec option
(** By {!spec.s_name} (case-insensitive); also accepts the registry name. *)

val specs_for : family:string -> spec list
(** The specs whose certificate corpus lives on [family]
    (case-insensitive exact match on {!spec.s_family}); no new verdicts
    — the same ladders, restricted to one graph family. *)

type verdict = {
  v_problem : string;
  v_volume : int;
  v_radius : int;
  v_sat : bool;
  v_report : Encode.report;
}

val run :
  ?certify:bool ->
  ?dimacs_out:string ->
  spec ->
  volume:int ->
  (verdict, string) result
(** One rung of the ladder: synthesize at exactly [volume]. *)

val ladder : ?certify:bool -> spec -> (verdict list, string) result
(** From [s_volume] downward until the first UNSAT (inclusive), so the
    head is the minimal-feasible witness rung and the last rung is the
    infeasibility certificate. *)

val verdict_json : verdict -> Vc_obs.Json.t
(** Machine-readable verdict: problem, budget, outcome, witness program
    (when SAT), solver statistics, CEGIS accounting. *)

val table_json : verdict list -> Vc_obs.Json.t

val pp_verdict : Format.formatter -> verdict -> unit

val oracle_probe : registry_name:string -> (unit, string) result option
(** Oracle probe 11, keyed by registry problem name ([None] for
    problems without a synthesis universe).  Synthesizes at [s_volume]
    and re-checks the witness independently (validates, byte-compares
    [Exec.run] vs [Exec.run_batch] per origin, runs the LCL checker),
    proves UNSAT at [s_unsat_volume] with a DRUP-certified proof, and
    for [LeafColoring] re-runs the {!Volcomp.Adversary_leaf} duel to
    confirm the UNSAT budget sits strictly below the live adversary
    bound. *)
