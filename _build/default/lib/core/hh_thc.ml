module TL = Vc_graph.Tree_labels
module Graph = Vc_graph.Graph
module Builder = Vc_graph.Builder
module Probe = Vc_model.Probe
module World = Vc_model.World
module Lcl = Vc_lcl.Lcl
module H = Hierarchical_thc
module Hy = Hybrid_thc
module LC = Leaf_coloring

type node_input = {
  hy : Hy.node_input;
  bit : bool;
}

type output = Hy.output

type instance = {
  graph : Graph.t;
  labels : node_input array;
  k : int;
  l : int;
}

let input inst v = inst.labels.(v)

let world inst = World.of_graph inst.graph ~input:(input inst)

(* --- bit-masked views ----------------------------------------------------

   Definition 6.4 evaluates each side on its induced subgraph, so a
   pointer whose target carries the other bit is treated as ⊥. *)

let masked_ptr ~degree ~follow ~bit_of v my_bit p =
  if p = TL.bot || p < 1 || p > degree v then p
  else if bit_of (follow v p) = my_bit then p
  else TL.bot

(* The bit-0 (Hierarchical-THC) view: a colored tree labeling. *)
let lc_view ~degree ~node_input ~follow v : LC.node_input =
  let i = (node_input v : node_input) in
  let m = masked_ptr ~degree ~follow ~bit_of:(fun u -> (node_input u).bit) v i.bit in
  {
    LC.parent = m i.hy.Hy.parent;
    left = m i.hy.Hy.left;
    right = m i.hy.Hy.right;
    color = i.hy.Hy.color;
  }

(* The bit-1 (Hybrid-THC) view. *)
let hy_view ~degree ~node_input ~follow v : Hy.node_input =
  let i = (node_input v : node_input) in
  let m = masked_ptr ~degree ~follow ~bit_of:(fun u -> (node_input u).bit) v i.bit in
  {
    i.hy with
    Hy.parent = m i.hy.Hy.parent;
    left = m i.hy.Hy.left;
    right = m i.hy.Hy.right;
    left_nbr = m i.hy.Hy.left_nbr;
    right_nbr = m i.hy.Hy.right_nbr;
  }

(* --- checker (Definition 6.4) --------------------------------------------- *)

let problem ~k ~l : (node_input, output) Lcl.t =
  if k > l then invalid_arg "Hh_thc.problem: requires k <= l";
  let valid_at g ~input:inp ~output:out v =
    let degree = Graph.degree g and follow = Graph.neighbor g in
    if (inp v).bit then
      (Hy.problem ~k).Lcl.valid_at g ~input:(hy_view ~degree ~node_input:inp ~follow) ~output:out v
    else
      let sym u =
        (* bit-0 nodes only ever reference bit-0 neighbors through the
           masked pointers, and those must carry symbol outputs *)
        match out u with Hy.Sym s -> s | Hy.Solved _ -> H.Decline
      in
      (H.problem ~k:l).Lcl.valid_at g
        ~input:(lc_view ~degree ~node_input:inp ~follow)
        ~output:sym v
  in
  { Lcl.name = Printf.sprintf "HH-THC(%d,%d)" k l; radius = 2 * (l + 2); valid_at }

(* --- instances -------------------------------------------------------------- *)

let mixed_instance ~hier ~hybrid =
  if hier.H.k < hybrid.Hy.k then invalid_arg "Hh_thc.mixed_instance: requires l >= k";
  let hg = H.graph hier in
  let graph, off = Builder.disjoint_union [ hg; hybrid.Hy.graph ] in
  let n = Graph.n graph in
  let labels =
    Array.init n (fun v ->
        if v < off.(1) then
          let i = H.input hier v in
          {
            hy =
              {
                Hy.parent = i.LC.parent;
                left = i.LC.left;
                right = i.LC.right;
                left_nbr = TL.bot;
                right_nbr = TL.bot;
                color = i.LC.color;
                level = 1;
              };
            bit = false;
          }
        else { hy = Hy.input hybrid (v - off.(1)); bit = true })
  in
  { graph; labels; k = hybrid.Hy.k; l = hier.H.k }

let uniform_instance ~k ~l ~size_hint ~seed =
  if k > l then invalid_arg "Hh_thc.uniform_instance: requires k <= l";
  let half = max 16 (size_hint / 2) in
  let hlen =
    max 2 (int_of_float (Float.round (Float.pow (float_of_int half) (1.0 /. float_of_int l))))
  in
  let hier = H.uniform_instance ~k:l ~len:hlen ~seed in
  (* hybrid side: level-k..2 backbones of length [blen], depth-2 trees *)
  let blen =
    max 2
      (int_of_float
         (Float.round (Float.pow (float_of_int (half / 8)) (1.0 /. float_of_int (k - 1)))))
  in
  let hybrid = Hy.uniform_instance ~k ~len:blen ~bt_depth:2 ~seed:(Int64.add seed 1L) in
  mixed_instance ~hier ~hybrid

(* --- solvers ------------------------------------------------------------------ *)

let probe_lc_access ctx : LC.node_input H.access =
  {
    H.degree = Probe.degree ctx;
    node_input =
      (fun v ->
        lc_view ~degree:(Probe.degree ctx)
          ~node_input:(fun u -> Probe.input ctx u)
          ~follow:(fun u p -> Probe.query ctx ~at:u ~port:p)
          v);
    follow = (fun v p -> Probe.query ctx ~at:v ~port:p);
  }

let probe_hy_access ctx : Hy.node_input Hy.access =
  {
    Hy.degree = Probe.degree ctx;
    node_input =
      (fun v ->
        hy_view ~degree:(Probe.degree ctx)
          ~node_input:(fun u -> Probe.input ctx u)
          ~follow:(fun u p -> Probe.query ctx ~at:u ~port:p)
          v);
    follow = (fun v p -> Probe.query ctx ~at:v ~port:p);
  }

let elect_waypoint ctx ~p v =
  let scaled = int_of_float (p *. 1073741824.0) in
  let rec value i acc =
    if i = 30 then acc else value (i + 1) ((2 * acc) + if Probe.rand_bit_at ctx v i then 1 else 0)
  in
  value 0 0 < scaled

let dispatch ~l ~h_waypoint ~hy_solve name ~randomized =
  Lcl.solver ~name ~randomized (fun ctx ->
      let v0 = Probe.origin ctx in
      if (Probe.input ctx v0).bit then hy_solve ctx v0
      else
        Hy.Sym
          (H.solve_access ~k:l
             ~is_waypoint:(h_waypoint ctx)
             ~access:(probe_lc_access ctx) ~n:(Probe.n ctx) ~id:(Probe.id ctx) v0))

let solve_distance ~k ~l =
  dispatch ~l
    ~h_waypoint:(fun _ctx _ -> true)
    ~hy_solve:(fun ctx v0 ->
      Hy.solve_distance_access ~k ~access:(probe_hy_access ctx) ~n:(Probe.n ctx) v0)
    (Printf.sprintf "HH(%d,%d) distance dispatch" k l)
    ~randomized:false

let solve_volume_deterministic ~k ~l =
  dispatch ~l
    ~h_waypoint:(fun _ctx _ -> true)
    ~hy_solve:(fun ctx v0 ->
      Hy.solve_volume_access ~k
        ~is_waypoint:(fun _ -> true)
        ~access:(probe_hy_access ctx) ~n:(Probe.n ctx) ~id:(Probe.id ctx) v0)
    (Printf.sprintf "HH(%d,%d) volume dispatch, deterministic" k l)
    ~randomized:false

let waypoint_probability ~c ~n ~root_of =
  Float.min 1.0 (c *. log (float_of_int (max 2 n)) /. float_of_int root_of)

let solve_volume_waypoint ~k ~l ?(c = 3.0) () =
  dispatch ~l
    ~h_waypoint:(fun ctx ->
      let n = Probe.n ctx in
      let p = waypoint_probability ~c ~n ~root_of:(H.kth_root n l) in
      elect_waypoint ctx ~p)
    ~hy_solve:(fun ctx v0 ->
      let n = Probe.n ctx in
      let p = waypoint_probability ~c ~n ~root_of:(H.kth_root n k) in
      Hy.solve_volume_access ~k
        ~is_waypoint:(elect_waypoint ctx ~p)
        ~access:(probe_hy_access ctx) ~n ~id:(Probe.id ctx) v0)
    (Printf.sprintf "HH(%d,%d) volume dispatch, way-point (c=%.1f)" k l c)
    ~randomized:true

let solvers ~k ~l =
  [ solve_distance ~k ~l; solve_volume_deterministic ~k ~l; solve_volume_waypoint ~k ~l () ]
