(** A self-contained CDCL SAT solver — the engine under the synthesis
    pipeline ({!Encode}, {!Classify}).

    Classic conflict-driven clause learning in the MiniSat lineage:
    two-watched-literal propagation, first-UIP conflict analysis with
    clause learning, VSIDS-style activity decay with an indexed heap,
    phase saving, and Luby restarts.  Everything is deterministic — no
    randomized polarity or order — so a synthesis run is a pure function
    of its CNF, which is what lets the smoke aliases pin verdicts.

    The solver is incremental in the CEGIS sense: after a [solve] you
    may allocate more variables and add more clauses, then [solve]
    again.  Assumptions are not supported (the CEGIS loop only ever
    strengthens), which keeps the UNSAT story simple: every learned
    clause is recorded in derivation order, and {!certify_unsat}
    replays the whole log as a reverse-unit-propagation (DRUP) proof
    against the original clauses with an independent counter-based
    propagator — ending with the empty clause, i.e. a verified final
    conflict under assumption-free solving. *)

type t

type stats = {
  decisions : int;
  conflicts : int;
  propagations : int;  (** literals enqueued by unit propagation *)
  learned : int;  (** clauses learned (including re-derived units) *)
  max_learned_len : int;
  restarts : int;
}

val create : unit -> t

val new_var : t -> int
(** Allocate a fresh variable; returns its 1-based DIMACS index. *)

val n_vars : t -> int

val add_clause : t -> int list -> unit
(** Add a clause of non-zero DIMACS literals ([v] positive, [-v]
    negative).  The empty clause makes the instance trivially UNSAT.
    Tautologies are dropped, duplicate literals merged.
    @raise Invalid_argument on a zero literal or an out-of-range
    variable. *)

type verdict = Sat | Unsat

val solve : t -> verdict
(** Solve the clauses added so far.  Deterministic.  After [Sat] the
    model is frozen in {!value} (later [add_clause]/[solve] calls do
    not disturb it until the next [solve]). *)

val value : t -> int -> bool
(** Model value of a variable after a [Sat] verdict.
    @raise Invalid_argument out of range or before any [Sat]. *)

val stats : t -> stats
(** Cumulative across all [solve] calls on this solver. *)

val simplify : t -> [ `Unsat | `Fixed of int list ]
(** Attach pending clauses and run unit propagation at decision level 0
    only — no decisions, no learning.  Returns the literals forced by
    propagation (DIMACS-signed, in propagation order), or [`Unsat] if
    level-0 propagation already conflicts.  Exposed so tests can check
    propagation equivalence against a naive reference propagator. *)

val certify_unsat : ?budget:int -> t -> (unit, string) result
(** After an [Unsat] verdict: replay the learned-clause log as a DRUP
    proof.  Each learned clause in derivation order — and finally the
    empty clause — must be derivable by unit propagation from the
    original clauses plus the earlier learned clauses, checked with an
    independent (non-watched, counter-based) propagator.  The replay
    is quadratic in proof x database, so it is practical for proofs up
    to a few thousand clauses and hopeless around 10^5.  [budget] caps
    total clause-literal visits (default 200 million, a few seconds of
    replay — sized so the pinned {!Classify} probe rungs certify with
    ~2x headroom); exceeding it returns [Error], never a false [Ok]. *)
