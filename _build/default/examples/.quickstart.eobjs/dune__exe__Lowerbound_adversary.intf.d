examples/lowerbound_adversary.mli:
