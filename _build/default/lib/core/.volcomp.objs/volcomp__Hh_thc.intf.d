lib/core/hh_thc.mli: Hierarchical_thc Hybrid_thc Vc_graph Vc_lcl Vc_model
