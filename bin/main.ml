(* volcomp — command-line driver.

   Subcommands:
     experiments  run the paper-reproduction experiments (all or by substring)
     solve        build an instance of a problem, run a solver from every
                  node, validate the assembled output, print cost stats
     adversary    run the Proposition 3.13 interactive adversary
     congest      run the Example 7.6 CONGEST routing experiment
     check        differential conformance + fuzzing oracle
     trace        record a probe transcript, or replay one bit-for-bit
     export       render an instance (optionally with a traced ball) as DOT
     list         print the conformance registry (problems, radii, sizes)
     family       list the graph-family builders, or build + validate an instance
     ir           list/dump/validate/run the shipped probe-program IR
     synth        SAT-based probe-program synthesis + volume classification
     serve        query-serving daemon over a Unix-domain (or TCP) socket
     loadgen      closed-loop load generator + verifier for the daemon *)

open Cmdliner

module Graph = Vc_graph.Graph
module Probe = Vc_model.Probe
module Lcl = Vc_lcl.Lcl
module Randomness = Vc_rng.Randomness
module TL = Vc_graph.Tree_labels
module LC = Volcomp.Leaf_coloring
module BT = Volcomp.Balanced_tree
module H = Volcomp.Hierarchical_thc
module Hy = Volcomp.Hybrid_thc
module Adv = Volcomp.Adversary_leaf
module Gap = Volcomp.Gap_example
module Runner = Vc_measure.Runner
module Experiments = Vc_measure.Experiments
module Disjointness = Vc_commcc.Disjointness
module Pool = Vc_exec.Pool
module Json = Vc_obs.Json
module Trace = Vc_obs.Trace
module Metrics = Vc_obs.Metrics
module Ir = Vc_ir.Ir
module Ir_exec = Vc_ir.Exec
module Ir_lib = Vc_ir.Library
module Family = Vc_family.Family
module F4 = Vc_family.Coloring4
module FM = Vc_family.Matching
module FI = Vc_family.Mis

(* --- worker domains (-j / VOLCOMP_JOBS) ------------------------------------ *)

let jobs_term =
  let doc =
    "Number of worker domains for the parallel runner (default: $(b,VOLCOMP_JOBS) if set, \
     else the recommended domain count).  Results are identical at any value."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let with_jobs jobs f =
  let domains = match jobs with Some j -> j | None -> Pool.default_domains () in
  if domains < 1 then invalid_arg "-j must be a positive integer";
  if domains > 1 then Pool.with_pool ~domains (fun pool -> f (Some pool)) else f None

(* --- metrics (--metrics) --------------------------------------------------- *)

let metrics_term =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Collect the $(b,lib/obs) counters during the run and print them afterwards.")

let with_metrics enabled f =
  if not enabled then f ()
  else
    Metrics.with_enabled (fun () ->
        let r = f () in
        Fmt.pr "@.%a@." Metrics.pp ();
        r)

(* --- case-insensitive substring match (--only / --family filters) ---------- *)

let contains hay needle =
  let hay = String.lowercase_ascii hay and needle = String.lowercase_ascii needle in
  let rec go i =
    i + String.length needle <= String.length hay
    && (String.sub hay i (String.length needle) = needle || go (i + 1))
  in
  go 0

let family_term =
  Arg.(
    value & opt (some string) None
    & info [ "family" ] ~docv:"SUBSTR"
        ~doc:
          "Only consider problems whose graph family contains $(docv) (case-insensitive; \
           families: tree, cycle, cubic, torus, d-regular, expander).")

(* --- experiments ---------------------------------------------------------- *)

let experiments_cmd =
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Use the shortened size ladders.")
  in
  let deep =
    Arg.(
      value & flag
      & info [ "deep" ]
          ~doc:
            "Extend every ladder beyond the standard profile (multi-million-node instances; \
             ignored with $(b,--quick)).")
  in
  let filter =
    Arg.(
      value & pos 0 (some string) None
      & info [] ~docv:"FILTER" ~doc:"Only run reports whose title contains \\$(docv).")
  in
  let run quick deep filter jobs =
    let reports = with_jobs jobs (fun pool -> Experiments.all ?pool ~deep ~quick ()) in
    let selected =
      match filter with
      | None -> reports
      | Some f ->
          List.filter
            (fun r ->
              let lower s = String.lowercase_ascii s in
              let rec contains i =
                i + String.length (lower f) <= String.length (lower r.Experiments.title)
                && (String.sub (lower r.Experiments.title) i (String.length f) = lower f
                   || contains (i + 1))
              in
              contains 0)
            reports
    in
    List.iter (fun r -> Fmt.pr "%a@." Experiments.pp_report r) selected;
    if List.for_all Experiments.all_agree selected then 0 else 1
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Reproduce the paper's tables and figures.")
    Term.(const run $ quick $ deep $ filter $ jobs_term)

(* --- solve ----------------------------------------------------------------- *)

let report_solution name stats valid =
  Fmt.pr "%s: %a@." name Runner.pp_stats stats;
  Fmt.pr "assembled output %s@." (if valid then "VALID" else "INVALID");
  if valid then 0 else 1

(* [--trace PATH] on solve: record the solver's run from node 0 as a
   JSONL transcript.  Solve instances are built ad hoc (not through the
   conformance registry), so these transcripts are for inspection and
   DOT ball rendering; `volcomp trace` records registry-backed
   transcripts that `volcomp trace --replay` can re-drive. *)
let write_solve_trace ~path ~problem ~n ~seed ~world ?randomness (solver : (_, _) Lcl.solver) =
  let header =
    Json.Obj
      [
        ("volcomp_trace", Json.Int 1);
        ("problem", Json.String ("solve:" ^ problem));
        ("solver", Json.String solver.Lcl.solver_name);
        ("size", Json.Int n);
        ("trial_seed", Json.String (Int64.to_string seed));
        ("origin", Json.Int 0);
      ]
  in
  let sink = Trace.to_file ~path ~header in
  Fun.protect
    ~finally:(fun () -> Trace.close sink)
    (fun () ->
      ignore (Probe.run ~world ?randomness ~trace:sink ~origin:0 solver.Lcl.solve : _ Probe.result));
  Fmt.pr "wrote transcript %s@." path

let solve_cmd =
  let problem =
    Arg.(
      required
      & pos 0 (some (enum
                       [ ("leafcoloring", `Leaf); ("balancedtree", `Bt); ("hthc", `Hthc);
                         ("hybrid", `Hybrid); ("sinkless", `Sinkless); ("coloring4", `C4);
                         ("matching", `Matching); ("mis", `Mis) ])) None
      & info [] ~docv:"PROBLEM"
          ~doc:
            "One of leafcoloring, balancedtree, hthc, hybrid, sinkless, coloring4, \
             matching, mis.")
  in
  let n = Arg.(value & opt int 255 & info [ "n" ] ~doc:"Approximate instance size.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Instance and randomness seed.") in
  let k = Arg.(value & opt int 2 & info [ "k" ] ~doc:"Hierarchy parameter for hthc/hybrid.") in
  let randomized =
    Arg.(value & flag & info [ "randomized"; "r" ] ~doc:"Use the randomized solver.")
  in
  let family =
    Arg.(
      value & opt (some string) None
      & info [ "family" ] ~docv:"FAMILY"
          ~doc:
            "Graph family for coloring4/matching/mis/sinkless — torus, d-regular or \
             expander (defaults: coloring4 torus; matching/mis d-regular; sinkless its \
             original cubic builder).")
  in
  let trace =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"PATH"
          ~doc:"Also record the solver's run from node 0 as a JSONL transcript at $(docv).")
  in
  let run problem n seed k randomized family trace metrics jobs =
    let seed64 = Int64.of_int seed in
    with_metrics metrics @@ fun () ->
    with_jobs jobs @@ fun pool ->
    (* [lib/family] problems share one unit-input shape; d is the regular
       family's degree (3 keeps greedy colouring inside the 4-palette) *)
    let family_builder fam ~d =
      match fam with
      | "torus" -> Some (fun () -> Family.torus_of_size ~size:n ~seed:seed64)
      | "d-regular" -> Some (fun () -> Family.regular_of_size ~d ~size:n ~seed:seed64)
      | "expander" -> Some (fun () -> Family.expander_of_size ~size:n ~seed:seed64)
      | _ -> None
    in
    let bad_family fam allowed =
      Fmt.epr "solve: family %S not supported for this problem (allowed: %s)@." fam
        (String.concat ", " allowed);
      2
    in
    let run_family ~problem ~solver ~world_of ~name g =
      let world = world_of g in
      let stats, valid =
        Runner.solve_and_check ~world ~problem ~graph:g ~input:(fun _ -> ()) ~solver ?pool ()
      in
      Option.iter
        (fun path ->
          write_solve_trace ~path ~problem:name ~n:(Graph.n g) ~seed:seed64 ~world solver)
        trace;
      report_solution solver.Lcl.solver_name stats valid
    in
    match problem with
    | `Leaf ->
        let inst = LC.random_instance ~n ~seed:seed64 in
        let world = LC.world inst in
        let solver = if randomized then LC.solve_random_walk else LC.solve_distance in
        let randomness =
          if randomized then
            Some (Randomness.create ~seed:(Int64.add seed64 1L) ~n:(Graph.n inst.LC.graph) ())
          else None
        in
        let stats, valid =
          Runner.solve_and_check ~world ~problem:LC.problem ~graph:inst.LC.graph
            ~input:(LC.input inst) ~solver ?randomness ?pool ()
        in
        Option.iter
          (fun path ->
            write_solve_trace ~path ~problem:"leafcoloring" ~n:(Graph.n inst.LC.graph)
              ~seed:seed64 ~world ?randomness solver)
          trace;
        report_solution solver.Lcl.solver_name stats valid
    | `Bt ->
        let bits = max 4 (n / 4) in
        let pow2 = 1 lsl Volcomp.Probe_tree.log2_ceil bits in
        let disj = Disjointness.random_promise ~n:pow2 ~intersecting:(seed mod 2 = 1) ~seed:seed64 in
        let inst = BT.embed_disjointness disj in
        let world = BT.world inst in
        let stats, valid =
          Runner.solve_and_check ~world ~problem:BT.problem
            ~graph:inst.BT.graph ~input:(BT.input inst) ~solver:BT.solve_distance ?pool ()
        in
        Fmt.pr "disjointness instance (disj = %b): %a@." (Disjointness.eval disj)
          Disjointness.pp disj;
        Option.iter
          (fun path ->
            write_solve_trace ~path ~problem:"balancedtree" ~n:(Graph.n inst.BT.graph)
              ~seed:seed64 ~world BT.solve_distance)
          trace;
        report_solution BT.solve_distance.Lcl.solver_name stats valid
    | `Hthc ->
        let inst, _ = H.hard_instance ~k ~target_n:n ~seed:seed64 in
        let world = H.world inst in
        let solver = if randomized then H.solve_waypoint ~k () else H.solve_deterministic ~k in
        let randomness =
          if randomized then
            Some (Randomness.create ~seed:(Int64.add seed64 1L) ~n:(Graph.n (H.graph inst)) ())
          else None
        in
        let stats, valid =
          Runner.solve_and_check ~world ~problem:(H.problem ~k) ~graph:(H.graph inst)
            ~input:(H.input inst) ~solver ?randomness ?pool ()
        in
        Option.iter
          (fun path ->
            write_solve_trace ~path ~problem:"hthc" ~n:(Graph.n (H.graph inst)) ~seed:seed64
              ~world ?randomness solver)
          trace;
        report_solution solver.Lcl.solver_name stats valid
    | `Sinkless -> (
        let fam = String.lowercase_ascii (Option.value family ~default:"cubic") in
        let build =
          match fam with
          | "cubic" -> Some (fun () -> Volcomp.Sinkless.random_cubic ~n ~seed:seed64)
          | "d-regular" -> family_builder fam ~d:4
          | _ -> None
        in
        match build with
        | None -> bad_family fam [ "cubic"; "d-regular" ]
        | Some build ->
            run_family ~problem:Volcomp.Sinkless.problem ~solver:Volcomp.Sinkless.solve_global
              ~world_of:Volcomp.Sinkless.world ~name:"sinkless" (build ()))
    | `C4 -> (
        let fam = String.lowercase_ascii (Option.value family ~default:"torus") in
        let solver = if fam = "torus" then F4.solve_torus else F4.solve_greedy in
        let build = if fam = "expander" then None else family_builder fam ~d:3 in
        match build with
        | None -> bad_family fam [ "torus"; "d-regular" ]
        | Some build ->
            run_family ~problem:F4.problem ~solver ~world_of:F4.world ~name:"coloring4"
              (build ()))
    | `Matching -> (
        let fam = String.lowercase_ascii (Option.value family ~default:"d-regular") in
        match family_builder fam ~d:4 with
        | None -> bad_family fam [ "torus"; "d-regular"; "expander" ]
        | Some build ->
            run_family ~problem:FM.problem ~solver:FM.solve_greedy ~world_of:FM.world
              ~name:"matching" (build ()))
    | `Mis -> (
        let fam = String.lowercase_ascii (Option.value family ~default:"d-regular") in
        match family_builder fam ~d:4 with
        | None -> bad_family fam [ "torus"; "d-regular"; "expander" ]
        | Some build ->
            run_family ~problem:FI.problem ~solver:FI.solve_greedy ~world_of:FI.world
              ~name:"mis" (build ()))
    | `Hybrid ->
        let inst, _ = Hy.hard_instance ~k ~target_n:n ~seed:seed64 in
        let world = Hy.world inst in
        let solver =
          if randomized then Hy.solve_volume_waypoint ~k () else Hy.solve_distance ~k
        in
        let randomness =
          if randomized then
            Some (Randomness.create ~seed:(Int64.add seed64 1L) ~n:(Graph.n inst.Hy.graph) ())
          else None
        in
        let stats, valid =
          Runner.solve_and_check ~world ~problem:(Hy.problem ~k) ~graph:inst.Hy.graph
            ~input:(Hy.input inst) ~solver ?randomness ?pool ()
        in
        Option.iter
          (fun path ->
            write_solve_trace ~path ~problem:"hybrid" ~n:(Graph.n inst.Hy.graph) ~seed:seed64
              ~world ?randomness solver)
          trace;
        report_solution solver.Lcl.solver_name stats valid
  in
  Cmd.v
    (Cmd.info "solve"
       ~doc:"Solve a random instance from every node and validate the assembled output.")
    Term.(
      const run $ problem $ n $ seed $ k $ randomized $ family $ trace $ metrics_term
      $ jobs_term)

(* --- adversary -------------------------------------------------------------- *)

let adversary_cmd =
  let n = Arg.(value & opt int 300 & info [ "n" ] ~doc:"Claimed instance size.") in
  let impatient =
    Arg.(value & flag & info [ "impatient" ] ~doc:"Duel the hasty solver instead of the honest one.")
  in
  let run n impatient =
    let solver =
      if impatient then
        Lcl.solver ~name:"impatient" ~randomized:false (fun ctx ->
            let v0 = Probe.origin ctx in
            match Volcomp.Probe_tree.status ~pointers:LC.pointers ctx v0 with
            | TL.Leaf | TL.Inconsistent -> (Probe.input ctx v0).LC.color
            | TL.Internal -> TL.Red)
      else LC.solve_distance
    in
    let verdict = Adv.duel ~claimed_n:n solver in
    Fmt.pr "dueling '%s' against the Prop 3.13 adversary (claimed n = %d):@."
      solver.Lcl.solver_name n;
    Fmt.pr "  %a@." Adv.pp_verdict verdict;
    match verdict with Adv.Survived _ -> 0 | Adv.Fooled _ -> if impatient then 0 else 1
  in
  Cmd.v
    (Cmd.info "adversary" ~doc:"Run the interactive deterministic-volume adversary.")
    Term.(const run $ n $ impatient)

(* --- congest ----------------------------------------------------------------- *)

let congest_cmd =
  let depth = Arg.(value & opt int 7 & info [ "depth" ] ~doc:"Tree depth (n = 2(2^{d+1}-1)).") in
  let bandwidth = Arg.(value & opt int 32 & info [ "bandwidth"; "B" ] ~doc:"Bits per edge per round.") in
  let run depth bandwidth =
    let inst = Gap.make ~depth ~seed:42L in
    let n = Graph.n inst.Gap.graph in
    let res = Gap.run_congest inst ~bandwidth in
    let leaf = (n / 2) - 1 in
    let query = Probe.run ~world:(Gap.world inst) ~origin:leaf Gap.solve.Lcl.solve in
    Fmt.pr "Example 7.6 on n = %d nodes:@." n;
    Fmt.pr "  query model: volume %d (O(log n))@." query.Probe.volume;
    Fmt.pr "  CONGEST (B=%d): %d rounds, max message %d bits, %d total bits@." bandwidth
      res.Vc_model.Congest.rounds res.Vc_model.Congest.max_message_bits
      res.Vc_model.Congest.total_bits;
    0
  in
  Cmd.v
    (Cmd.info "congest" ~doc:"Volume vs CONGEST rounds on the two-tree instance.")
    Term.(const run $ depth $ bandwidth)

(* --- check ----------------------------------------------------------------- *)

let check_cmd =
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Master seed for the whole run.")
  in
  let count =
    Arg.(
      value & opt int 50
      & info [ "count" ] ~docv:"N" ~doc:"Mutation-fuzzing rounds per problem.")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Use each problem's small instance sizes.")
  in
  let json =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"PATH" ~doc:"Also write the report as JSON to $(docv).")
  in
  let only =
    Arg.(
      value & opt (some string) None
      & info [ "only" ] ~docv:"SUBSTR"
          ~doc:"Only check problems whose name contains $(docv) (case-insensitive).")
  in
  let probes =
    Arg.(
      value & opt (some string) None
      & info [ "probes" ] ~docv:"LIST"
          ~doc:
            "Comma-separated oracle probes to run (of: solvers, merge, cross, lazy, ir, \
             mutate, replay, serve, shard, snap, synth); default all.  Skipped probes are \
             listed in the report and keep vacuous verdicts.")
  in
  let run seed count quick json only family probes metrics jobs =
    let entries =
      List.filter
        (fun (e : Vc_check.Registry.entry) ->
          (match only with None -> true | Some f -> contains e.name f)
          && match family with None -> true | Some f -> contains e.family f)
        (Vc_check.Registry.all ())
    in
    let probe_list =
      Option.map
        (fun s ->
          List.filter
            (fun p -> p <> "")
            (List.map (fun p -> String.lowercase_ascii (String.trim p))
               (String.split_on_char ',' s)))
        probes
    in
    let bad_probe =
      Option.bind probe_list
        (List.find_opt (fun p -> not (List.mem p Vc_check.Oracle.probe_names)))
    in
    if entries = [] then begin
      Fmt.epr "check: no problem matches the filter@.";
      2
    end
    else if bad_probe <> None then begin
      Fmt.epr "check: unknown probe %S (known: %s)@." (Option.get bad_probe)
        (String.concat ", " Vc_check.Oracle.probe_names);
      2
    end
    else begin
      let seed64 = Int64.of_int seed in
      (* when the serve probe is filtered out, don't even build the
         serving-layer closure — `--probes` is how CI skips the daemon
         round-trip on problem-focused runs *)
      let serve =
        match probe_list with
        | Some ps when not (List.mem "serve" ps) -> None
        | _ -> Some Vc_serve.Conform.probe
      in
      (* probe 9 spawns a real 4-worker tier of this very binary *)
      let shard =
        match probe_list with
        | Some ps when not (List.mem "shard" ps) -> None
        | _ -> Some (Vc_serve.Conform.shard_probe ~exe:Sys.executable_name ~workers:4)
      in
      (* probe 11 re-derives Table-1 verdicts with the SAT synthesizer;
         the synthesis layer sits above lib/check, so it is injected *)
      let synth =
        match probe_list with
        | Some ps when not (List.mem "synth" ps) -> None
        | _ ->
            Some
              (fun (e : Vc_check.Registry.entry) ->
                Vc_synth.Classify.oracle_probe ~registry_name:e.name)
      in
      with_metrics metrics @@ fun () ->
      let report =
        with_jobs jobs (fun pool ->
            Vc_check.Oracle.run ?pool ~entries ?probes:probe_list ?serve ?shard ?synth
              ~seed:seed64 ~count ~quick ())
      in
      Fmt.pr "%a@." Vc_check.Report.pp report;
      Option.iter (fun path -> Vc_check.Report.write_json report ~path) json;
      if Vc_check.Report.ok report then 0
      else begin
        (* the seed is everything needed to reproduce the failure; the
           reference transcript makes the failing trial replayable offline *)
        Fmt.epr "reproduce with: volcomp check --seed %d --count %d%s@." seed count
          (if quick then " --quick" else "");
        List.iter
          (fun (p : Vc_check.Report.problem_report) ->
            if p.p_failures <> [] then begin
              let slug =
                String.map
                  (fun c ->
                    match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c | _ -> '-')
                  (String.lowercase_ascii p.p_name)
              in
              let path = Fmt.str "check-failure-%s.trace.jsonl" slug in
              match
                Vc_check.Oracle.record_trace ~entries ~seed:seed64 ~quick ~problem:p.p_name
                  ~origin:0 ~path ()
              with
              | Ok () -> Fmt.epr "wrote reference transcript %s (volcomp trace --replay)@." path
              | Error msg -> Fmt.epr "could not record transcript for %s: %s@." p.p_name msg
            end)
          report.Vc_check.Report.problems;
        1
      end
    end
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Differential conformance and fuzzing oracle over all registered problems.")
    Term.(
      const run $ seed $ count $ quick $ json $ only $ family_term $ probes $ metrics_term
      $ jobs_term)

(* --- trace ----------------------------------------------------------------- *)

let trace_cmd =
  let problem =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"PROBLEM" ~doc:"Registry problem to record (e.g. leafcoloring).")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Master seed (as in check).")
  in
  let origin =
    Arg.(value & opt int 0 & info [ "origin" ] ~docv:"V" ~doc:"Node whose run is recorded.")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Use the problem's smallest quick size.")
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "o" ] ~docv:"PATH" ~doc:"Transcript path (default PROBLEM.trace.jsonl).")
  in
  let replay =
    Arg.(
      value & opt (some string) None
      & info [ "replay" ] ~docv:"PATH"
          ~doc:"Replay a recorded transcript instead of recording one.")
  in
  let run problem seed origin quick out replay =
    match (replay, problem) with
    | Some path, _ -> (
        match Vc_check.Oracle.replay_trace ~path () with
        | Ok () ->
            Fmt.pr "%s: replay identical@." path;
            0
        | Error msg ->
            Fmt.epr "%s: replay diverged: %s@." path msg;
            1)
    | None, None ->
        Fmt.epr "trace: expected a PROBLEM to record or --replay PATH@.";
        2
    | None, Some problem -> (
        let path = match out with Some p -> p | None -> problem ^ ".trace.jsonl" in
        match
          Vc_check.Oracle.record_trace ~seed:(Int64.of_int seed) ~quick ~problem ~origin ~path
            ()
        with
        | Ok () ->
            Fmt.pr "wrote transcript %s@." path;
            0
        | Error msg ->
            Fmt.epr "trace: %s@." msg;
            1)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Record a reference solver's probe transcript as JSONL, or replay one and assert \
          bit-identical behaviour.")
    Term.(const run $ problem $ seed $ origin $ quick $ out $ replay)

(* --- export ----------------------------------------------------------------- *)

let export_cmd =
  let problem =
    Arg.(
      required
      & pos 0 (some (enum [ ("leafcoloring", `Leaf); ("balancedtree", `Bt); ("hthc", `Hthc) ]))
          None
      & info [] ~docv:"PROBLEM" ~doc:"Instance family to render.")
  in
  let n = Arg.(value & opt int 31 & info [ "n" ] ~doc:"Approximate instance size.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Instance seed.") in
  let path = Arg.(value & opt string "instance.dot" & info [ "o" ] ~doc:"Output path.") in
  let run problem n seed path =
    let seed64 = Int64.of_int seed in
    let () =
      match problem with
      | `Leaf ->
          let inst = LC.random_instance ~n ~seed:seed64 in
          Vc_graph.Dot.to_file ~path ~name:"leafcoloring"
            ~node_label:(fun v -> Fmt.str "%a" TL.pp_color inst.LC.colors.(v))
            ~highlight:(fun v ->
              Vc_graph.Tree_labels.is_internal inst.LC.graph inst.LC.labels v)
            inst.LC.graph
      | `Bt ->
          let depth = max 2 (Volcomp.Probe_tree.log2_ceil (n + 1) - 1) in
          let inst = BT.balanced_instance ~depth in
          Vc_graph.Dot.to_file ~path ~name:"balancedtree" inst.BT.graph
      | `Hthc ->
          let inst = H.uniform_instance ~k:2 ~len:4 ~seed:seed64 in
          let a = H.graph_access inst in
          Vc_graph.Dot.to_file ~path ~name:"hthc"
            ~node_label:(fun v -> Fmt.str "L%d" (H.level a ~k:2 v))
            (H.graph inst)
    in
    Fmt.pr "wrote %s@." path;
    0
  in
  Cmd.v (Cmd.info "export" ~doc:"Export an instance as Graphviz DOT.")
    Term.(const run $ problem $ n $ seed $ path)

(* --- list ------------------------------------------------------------------- *)

let list_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the registry as JSON (the serve protocol's $(b,list) payload).")
  in
  let run json =
    let entries = Vc_check.Registry.all () in
    if json then
      print_string (Json.to_string (Vc_serve.Protocol.list_payload entries) ^ "\n")
    else begin
      Fmt.pr "%-28s %-10s %-10s %-24s %-14s %s@." "problem" "family" "radius" "sizes"
        "quick sizes" "ir";
      List.iter
        (fun (e : Vc_check.Registry.entry) ->
          let ints l = String.concat "," (List.map string_of_int l) in
          Fmt.pr "%-28s %-10s %-10s %-24s %-14s %b@." e.name e.family
            (if e.radius = max_int then "unbounded" else string_of_int e.radius)
            (ints e.sizes) (ints e.quick_sizes) e.ir)
        entries
    end;
    0
  in
  Cmd.v
    (Cmd.info "list" ~doc:"Print the conformance registry: problems, radii, instance sizes.")
    Term.(const run $ json)

(* --- ir --------------------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let ir_cmd =
  let action =
    Arg.(
      required
      & pos 0
          (some
             (enum
                [ ("list", `List); ("dump", `Dump); ("validate", `Validate); ("run", `Run) ]))
          None
      & info [] ~docv:"ACTION" ~doc:"One of list, dump, validate, run.")
  in
  let name_arg =
    Arg.(
      value & pos 1 (some string) None
      & info [] ~docv:"PROGRAM" ~doc:"Shipped program name (see $(b,ir list)).")
  in
  let n =
    Arg.(
      value & opt int 1024
      & info [ "n" ] ~docv:"N"
          ~doc:
            "Claimed instance size used to instantiate size-dependent programs \
             (cycle-coloring's walk length is $(b,rounds_needed n + 3)).")
  in
  let size =
    Arg.(value & opt int 63 & info [ "size" ] ~docv:"N" ~doc:"Instance size for $(b,run).")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Instance seed for $(b,run).")
  in
  let origin =
    Arg.(
      value & opt (some int) None
      & info [ "origin" ] ~docv:"V"
          ~doc:"Run from this node only (default: batch over every node).")
  in
  let file =
    Arg.(
      value & opt (some string) None
      & info [ "file" ] ~docv:"PATH"
          ~doc:"Validate a JSON-encoded program from $(docv) instead of a shipped one.")
  in
  let all = Arg.(value & flag & info [ "all" ] ~doc:"Validate every shipped program.") in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit JSON.") in
  let run_ir action name n size seed origin file all json jobs =
    let fail fmt =
      Fmt.kstr
        (fun s ->
          Fmt.epr "ir: %s@." s;
          2)
        fmt
    in
    let unknown nm =
      fail "unknown program %S (known: %s)" nm (String.concat ", " (Ir_lib.names ()))
    in
    match action with
    | `List ->
        let progs =
          List.filter_map
            (fun nm -> Option.map (fun p -> (nm, p)) (Ir_lib.program ~name:nm ~n))
            (Ir_lib.names ())
        in
        if json then
          print_string
            (Json.to_string
               (Json.Obj
                  [
                    ( "programs",
                      Json.List
                        (List.map
                           (fun (nm, (p : Ir.program)) ->
                             Json.Obj
                               [
                                 ("name", Json.String nm);
                                 ("instructions", Json.Int (Array.length p.Ir.code));
                                 ("regs", Json.Int p.Ir.n_regs);
                                 ("queues", Json.Int p.Ir.n_queues);
                                 ("obs_arity", Json.Int p.Ir.obs_arity);
                               ])
                           progs) );
                  ])
            ^ "\n")
        else begin
          Fmt.pr "%-20s %6s %5s %6s %9s@." "program" "instrs" "regs" "queues" "obs arity";
          List.iter
            (fun (nm, (p : Ir.program)) ->
              Fmt.pr "%-20s %6d %5d %6d %9d@." nm (Array.length p.Ir.code) p.Ir.n_regs
                p.Ir.n_queues p.Ir.obs_arity)
            progs
        end;
        0
    | `Dump -> (
        match name with
        | None -> fail "dump: expected a PROGRAM name"
        | Some nm -> (
            match Ir_lib.program ~name:nm ~n with
            | None -> unknown nm
            | Some p ->
                if json then print_string (Json.to_string (Ir.program_to_json p) ^ "\n")
                else Fmt.pr "%a@." Ir.pp_program p;
                0))
    | `Validate ->
        let of_name nm =
          match Ir_lib.program ~name:nm ~n with
          | None -> (nm, Error "unknown program")
          | Some p -> (nm, Ir.validate p)
        in
        let of_file path =
          ( path,
            match (try Ok (read_file path) with Sys_error e -> Error e) with
            | Error e -> Error e
            | Ok s -> (
                match Json.parse s with
                | Error e -> Error ("parse: " ^ e)
                | Ok j -> Result.map (fun (_ : Ir.program) -> ()) (Ir.program_of_json j)) )
        in
        let results =
          match (file, all, name) with
          | Some path, _, _ -> [ of_file path ]
          | None, true, _ -> List.map of_name (Ir_lib.names ())
          | None, false, Some nm -> [ of_name nm ]
          | None, false, None -> []
        in
        if results = [] then fail "validate: expected a PROGRAM, --all or --file PATH"
        else begin
          let ok = List.for_all (fun (_, r) -> r = Ok ()) results in
          if json then
            print_string
              (Json.to_string
                 (Json.Obj
                    [
                      ("ok", Json.Bool ok);
                      ( "programs",
                        Json.List
                          (List.map
                             (fun (nm, r) ->
                               Json.Obj
                                 [
                                   ("name", Json.String nm);
                                   ("ok", Json.Bool (r = Ok ()));
                                   ( "error",
                                     match r with
                                     | Ok () -> Json.Null
                                     | Error e -> Json.String e );
                                 ])
                             results) );
                    ])
              ^ "\n")
          else
            List.iter
              (fun (nm, r) ->
                match r with
                | Ok () -> Fmt.pr "%s: ok@." nm
                | Error e -> Fmt.pr "%s: INVALID: %s@." nm e)
              results;
          if ok then 0 else 1
        end
    | `Run -> (
        match name with
        | None -> fail "run: expected a PROGRAM name"
        | Some nm -> (
            match Ir_lib.instance ~name:nm ~size ~seed:(Int64.of_int seed) with
            | None -> unknown nm
            | Some (Ir_lib.Packed { spec; graph; input; world; solver; pp_output }) -> (
                let nn = Graph.n graph in
                match origin with
                | Some v when v < 0 || v >= nn ->
                    fail "origin %d out of range (instance has %d nodes)" v nn
                | _ ->
                    let origins =
                      match origin with
                      | Some v -> [| v |]
                      | None -> Array.init nn (fun v -> v)
                    in
                    let results =
                      with_jobs jobs (fun pool ->
                          Ir_exec.run_batch ?pool spec ~graph ~input ~origins)
                    in
                    (* every run is also an oracle check: the closure
                       solver must agree bit for bit under the program's
                       declared budget *)
                    let budget = spec.Ir.program.Ir.declared in
                    let identical = ref true in
                    Array.iteri
                      (fun i v ->
                        if Probe.run ~world ~budget ~origin:v solver.Lcl.solve <> results.(i)
                        then identical := false)
                      origins;
                    let agg f init = Array.fold_left f init results in
                    let max_of get = agg (fun m r -> max m (get r)) 0 in
                    let aborted =
                      agg (fun c (r : _ Probe.result) -> if r.Probe.aborted then c + 1 else c) 0
                    in
                    let total_queries = agg (fun s r -> s + r.Probe.queries) 0 in
                    if json then begin
                      let base =
                        [
                          ("program", Json.String nm);
                          ("n", Json.Int nn);
                          ("size", Json.Int size);
                          ("seed", Json.Int seed);
                          ("runs", Json.Int (Array.length origins));
                          ("aborted", Json.Int aborted);
                          ("max_volume", Json.Int (max_of (fun r -> r.Probe.volume)));
                          ("max_distance", Json.Int (max_of (fun r -> r.Probe.distance)));
                          ("max_queries", Json.Int (max_of (fun r -> r.Probe.queries)));
                          ("total_queries", Json.Int total_queries);
                          ("oracle_identical", Json.Bool !identical);
                        ]
                      in
                      let fields =
                        match origin with
                        | Some v ->
                            base
                            @ [
                                ("origin", Json.Int v);
                                ( "output",
                                  match results.(0).Probe.output with
                                  | None -> Json.Null
                                  | Some o -> Json.String (Fmt.str "%a" pp_output o) );
                              ]
                        | None -> base
                      in
                      print_string (Json.to_string (Json.Obj fields) ^ "\n")
                    end
                    else begin
                      Fmt.pr "%s: n=%d size=%d seed=%d@." nm nn size seed;
                      (match origin with
                      | Some v ->
                          Fmt.pr "origin %d: output %a@." v
                            (Fmt.option ~none:(Fmt.any "aborted") pp_output)
                            results.(0).Probe.output
                      | None -> ());
                      Fmt.pr
                        "runs %d  aborted %d  max volume %d  max distance %d  max queries %d  \
                         total queries %d@."
                        (Array.length origins) aborted
                        (max_of (fun r -> r.Probe.volume))
                        (max_of (fun r -> r.Probe.distance))
                        (max_of (fun r -> r.Probe.queries))
                        total_queries;
                      Fmt.pr "oracle identical: %b@." !identical
                    end;
                    if !identical then 0 else 1)))
  in
  Cmd.v
    (Cmd.info "ir"
       ~doc:
         "Inspect and execute the shipped probe-program IR: list the catalogue, dump a \
          program (text or JSON), validate programs (shipped or from a JSON file), or run \
          one through the batched executor with the closure solver as oracle.")
    Term.(
      const run_ir $ action $ name_arg $ n $ size $ seed $ origin $ file $ all $ json
      $ jobs_term)

(* --- snap ------------------------------------------------------------------- *)

let snap_cmd =
  let action =
    let actions = [ ("build", `Build); ("ls", `Ls); ("verify", `Verify); ("rm", `Rm) ] in
    Arg.(
      required
      & pos 0 (some (enum actions)) None
      & info [] ~docv:"ACTION" ~doc:"One of $(b,build), $(b,ls), $(b,verify), $(b,rm).")
  in
  let dir =
    Arg.(
      value & opt string "volcomp-snaps"
      & info [ "dir" ] ~docv:"DIR" ~doc:"Snapshot store directory.")
  in
  let only =
    Arg.(
      value & opt (some string) None
      & info [ "only" ] ~docv:"SUBSTR"
          ~doc:
            "Restrict to problems ($(b,build)) or store files ($(b,rm)) whose name contains \
             $(docv) (case-insensitive).")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"With $(b,build): use each problem's small instance sizes.")
  in
  let size =
    Arg.(
      value & opt (some int) None
      & info [ "size" ] ~docv:"N"
          ~doc:"With $(b,build): snapshot only this instance size (default: every registry \
                size).")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N" ~doc:"With $(b,build): instance seed to snapshot.")
  in
  let run action dir only family quick size seed =
    let store = Vc_check.Registry.store ~dir in
    match action with
    | `Build ->
        let entries =
          List.filter
            (fun (e : Vc_check.Registry.entry) ->
              (match only with None -> true | Some f -> contains e.name f)
              && match family with None -> true | Some f -> contains e.family f)
            (Vc_check.Registry.all ())
        in
        if entries = [] then begin
          Fmt.epr "snap build: no problem matches the filter@.";
          2
        end
        else begin
          let seed64 = Int64.of_int seed in
          let total = ref 0 in
          List.iter
            (fun (e : Vc_check.Registry.entry) ->
              let sizes =
                match size with
                | Some s -> [ s ]
                | None -> if quick then e.quick_sizes else e.sizes
              in
              List.iter
                (fun size ->
                  (* acquire with the store attached: a miss builds and
                     publishes, a hit is a no-op — build is idempotent *)
                  let n = e.acquire ~store ~size ~seed:seed64 () in
                  incr total;
                  Fmt.pr "%-28s size %-6d seed %Ld  n %d@." e.name size seed64 n)
                sizes)
            entries;
          Fmt.pr "%d snapshot(s) resident in %s@." !total dir;
          0
        end
    | `Ls ->
        let files = Vc_check.Registry.Store.files store in
        List.iter
          (fun path ->
            match Vc_snap.Snap.inspect ~path with
            | Ok h ->
                let bytes = (Unix.stat path).Unix.st_size in
                Fmt.pr "%-44s %-28s size %-6d seed %-20Ld n %-8d %d segment(s)  %d bytes@."
                  (Filename.basename path) h.Vc_snap.Snap.problem h.Vc_snap.Snap.size
                  h.Vc_snap.Snap.seed h.Vc_snap.Snap.n
                  (List.length h.Vc_snap.Snap.segments)
                  bytes
            | Error e ->
                Fmt.pr "%-44s INVALID: %s@." (Filename.basename path)
                  (Vc_snap.Snap.error_to_string e))
          files;
        Fmt.pr "%d file(s) in %s@." (List.length files) dir;
        0
    | `Verify ->
        let files = Vc_check.Registry.Store.files store in
        let bad = ref 0 in
        List.iter
          (fun path ->
            match Vc_snap.Snap.verify ~path with
            | Ok h ->
                Fmt.pr "%-44s ok  (%s, %d segment(s))@." (Filename.basename path)
                  h.Vc_snap.Snap.problem
                  (List.length h.Vc_snap.Snap.segments)
            | Error e ->
                incr bad;
                Fmt.pr "%-44s FAIL: %s@." (Filename.basename path)
                  (Vc_snap.Snap.error_to_string e))
          files;
        if !bad = 0 then begin
          Fmt.pr "all %d file(s) verify@." (List.length files);
          0
        end
        else begin
          Fmt.epr "%d of %d file(s) failed verification@." !bad (List.length files);
          1
        end
    | `Rm ->
        let files =
          List.filter
            (fun path ->
              match only with
              | None -> true
              | Some f -> contains (Filename.basename path) f)
            (Vc_check.Registry.Store.files store)
        in
        List.iter
          (fun path ->
            match Sys.remove path with
            | () -> Fmt.pr "removed %s@." path
            | exception Sys_error msg -> Fmt.epr "rm: %s@." msg)
          files;
        Fmt.pr "%d file(s) removed@." (List.length files);
        0
  in
  Cmd.v
    (Cmd.info "snap"
       ~doc:
         "Manage the instance snapshot store: $(b,build) snapshots for registry problems, \
          $(b,ls) and $(b,verify) (full byte-level re-checksum) resident files, $(b,rm) \
          stale ones.  The same store plugs into $(b,volcomp serve --snap-dir).")
    Term.(const run $ action $ dir $ only $ family_term $ quick $ size $ seed)

(* --- family ------------------------------------------------------------------ *)

let family_cmd =
  let action =
    Arg.(
      required
      & pos 0 (some (enum [ ("list", `List); ("build", `Build) ])) None
      & info [] ~docv:"ACTION" ~doc:"One of $(b,list), $(b,build).")
  in
  let fam_name =
    Arg.(
      value & pos 1 (some string) None
      & info [] ~docv:"FAMILY" ~doc:"Family to build (see $(b,family list)).")
  in
  let size =
    Arg.(
      value & opt int 36
      & info [ "size" ] ~docv:"N" ~doc:"Approximate instance size for $(b,build).")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Instance seed for $(b,build).")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit JSON.") in
  let problems_of fam =
    List.filter
      (fun (e : Vc_check.Registry.entry) -> e.family = fam)
      (Vc_check.Registry.all ())
  in
  let run action fam_name size seed json jobs =
    match action with
    | `List ->
        if json then begin
          let fams =
            List.map
              (fun (i : Family.info) ->
                Json.Obj
                  [
                    ("name", Json.String i.Family.f_name);
                    ("description", Json.String i.Family.f_description);
                    ("min_size", Json.Int i.Family.f_min_size);
                    ("max_degree", Json.Int i.Family.f_max_degree);
                    ( "problems",
                      Json.List
                        (List.map
                           (fun (e : Vc_check.Registry.entry) -> Json.String e.name)
                           (problems_of i.Family.f_name)) );
                  ])
              Family.all
          in
          print_string (Json.to_string (Json.Obj [ ("families", Json.List fams) ]) ^ "\n")
        end
        else
          List.iter
            (fun (i : Family.info) ->
              Fmt.pr "%-12s min size %-4d max degree %-3d %s@." i.Family.f_name
                i.Family.f_min_size i.Family.f_max_degree i.Family.f_description;
              List.iter
                (fun (e : Vc_check.Registry.entry) -> Fmt.pr "  %s@." e.name)
                (problems_of i.Family.f_name))
            Family.all;
        0
    | `Build -> (
        match fam_name with
        | None ->
            Fmt.epr "family build: expected a FAMILY (see $(b,volcomp family list))@.";
            2
        | Some nm -> (
            match Family.find nm with
            | None ->
                Fmt.epr "family: unknown family %S (known: %s)@." nm
                  (String.concat ", "
                     (List.map (fun (i : Family.info) -> i.Family.f_name) Family.all));
                2
            | Some info ->
                let seed64 = Int64.of_int seed in
                let g = info.Family.f_build ~size ~seed:seed64 in
                let entries = problems_of info.Family.f_name in
                (* each registry entry rebuilds through its own (size, seed)
                   mapping — RegularColoring4's d = 3 instance is smaller
                   than the family's d = 4 flagship, hence per-problem n *)
                let rows =
                  with_jobs jobs (fun pool ->
                      List.map
                        (fun (e : Vc_check.Registry.entry) ->
                          let trial = e.make ~size ~seed:seed64 () in
                          let outcomes =
                            trial.Vc_check.Registry.run_solvers ?pool ()
                          in
                          (e, trial.Vc_check.Registry.t_n, outcomes))
                        entries)
                in
                let all_valid =
                  List.for_all
                    (fun (_, _, outcomes) ->
                      List.for_all
                        (fun (o : Vc_check.Registry.solver_outcome) ->
                          o.Vc_check.Registry.valid)
                        outcomes)
                    rows
                in
                if json then begin
                  let problems =
                    List.map
                      (fun ((e : Vc_check.Registry.entry), n, outcomes) ->
                        Json.Obj
                          [
                            ("name", Json.String e.name);
                            ("n", Json.Int n);
                            ( "valid",
                              Json.Bool
                                (List.for_all
                                   (fun (o : Vc_check.Registry.solver_outcome) ->
                                     o.Vc_check.Registry.valid)
                                   outcomes) );
                            ( "solvers",
                              Json.List
                                (List.map
                                   (fun (o : Vc_check.Registry.solver_outcome) ->
                                     Json.Obj
                                       [
                                         ("name", Json.String o.Vc_check.Registry.solver);
                                         ("valid", Json.Bool o.Vc_check.Registry.valid);
                                         ( "max_volume",
                                           Json.Int
                                             o.Vc_check.Registry.stats.Runner.max_volume );
                                         ( "max_distance",
                                           Json.Int
                                             o.Vc_check.Registry.stats.Runner.max_distance );
                                       ])
                                   outcomes) );
                          ])
                      rows
                  in
                  print_string
                    (Json.to_string
                       (Json.Obj
                          [
                            ("family", Json.String info.Family.f_name);
                            ("size", Json.Int size);
                            ("seed", Json.String (Int64.to_string seed64));
                            ("n", Json.Int (Graph.n g));
                            ("max_degree", Json.Int (Graph.max_degree g));
                            ("problems", Json.List problems);
                          ])
                    ^ "\n")
                end
                else begin
                  Fmt.pr "family %s: n %d, max degree %d (size %d, seed %Ld)@."
                    info.Family.f_name (Graph.n g) (Graph.max_degree g) size seed64;
                  List.iter
                    (fun ((e : Vc_check.Registry.entry), n, outcomes) ->
                      List.iter
                        (fun (o : Vc_check.Registry.solver_outcome) ->
                          Fmt.pr "%-28s n %-6d %-24s volume %-6d distance %-4d %s@." e.name n
                            o.Vc_check.Registry.solver
                            o.Vc_check.Registry.stats.Runner.max_volume
                            o.Vc_check.Registry.stats.Runner.max_distance
                            (if o.Vc_check.Registry.valid then "VALID" else "INVALID"))
                        outcomes)
                    rows
                end;
                if all_valid then 0 else 1))
  in
  Cmd.v
    (Cmd.info "family"
       ~doc:
         "Graph families beyond paths and trees: $(b,list) the builders and their \
          registered problems, or $(b,build) a seeded instance and run + validate every \
          problem of the family on it.")
    Term.(const run $ action $ fam_name $ size $ seed $ json $ jobs_term)

(* --- serve ------------------------------------------------------------------- *)

let socket_term =
  Arg.(
    value & opt string "volcomp.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let tcp_term =
  Arg.(
    value & opt (some int) None
    & info [ "tcp" ] ~docv:"PORT"
        ~doc:"Use TCP on 127.0.0.1:$(docv) instead of the Unix-domain socket.")

let serve_cmd =
  let cache =
    Arg.(
      value & opt int 8
      & info [ "cache" ] ~docv:"N" ~doc:"Capacity of the warm (problem, size, seed) session cache.")
  in
  let queue_depth =
    Arg.(
      value & opt int 64
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:"Bound on accepted-but-undispatched requests; beyond it the daemon sheds load \
                with structured $(b,overloaded) errors.")
  in
  let workers =
    Arg.(
      value & opt int 0
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Shard the daemon across $(docv) worker processes: requests are routed by a \
             consistent hash of their (problem, size, seed) session key, a dead worker is \
             respawned and its warm sessions rebuilt.  0 (the default) serves in-process.")
  in
  let worker =
    Arg.(
      value & flag
      & info [ "worker" ]
          ~doc:
            "Internal: run as a supervisor's worker, serving the connection on stdin until \
             EOF.  Used by $(b,--workers); not meant to be invoked by hand.")
  in
  let snap_dir =
    Arg.(
      value & opt (some string) None
      & info [ "snap-dir" ] ~docv:"DIR"
          ~doc:
            "Snapshot store directory: session cache misses load instances by mmap from \
             $(docv) (populating it on first build) instead of rebuilding, and with \
             $(b,--workers) every shard worker shares the same store — including post-crash \
             re-warms.")
  in
  let run socket tcp cache queue_depth workers worker snap_dir jobs =
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    (* the daemon always accounts: request counters and latency
       histograms feed the stats request and the loadgen report *)
    Metrics.set_enabled true;
    let store = Option.map (fun dir -> Vc_check.Registry.store ~dir) snap_dir in
    if worker then begin
      let handler = Vc_serve.Handler.create ~cache_capacity:cache ?store () in
      ignore
        (with_jobs jobs (fun pool ->
             Vc_serve.Server.run_conn ~handler ?pool ~queue_depth ~fd:Unix.stdin ())
          : int);
      0
    end
    else begin
      let listen =
        match tcp with
        | Some port -> Vc_serve.Server.listen_tcp ~port
        | None -> Vc_serve.Server.listen_unix ~path:socket
      in
      (match tcp with
      | Some port -> Fmt.pr "volcomp serve: listening on 127.0.0.1:%d@." port
      | None -> Fmt.pr "volcomp serve: listening on %s@." socket);
      let answered =
        if workers > 0 then begin
          Fmt.pr "volcomp serve: %d shard worker(s)@." workers;
          let spawn =
            Vc_serve.Supervisor.exec_spawn
              ~jobs:(Option.value jobs ~default:1)
              ?snap_dir ~cache ~queue_depth Sys.executable_name
          in
          Vc_serve.Supervisor.run ~workers ~cache_capacity:cache ~queue_depth ~spawn
            ~listen ()
        end
        else
          with_jobs jobs (fun pool ->
              Vc_serve.Server.run
                ~handler:(Vc_serve.Handler.create ~cache_capacity:cache ?store ())
                ?pool ~queue_depth ~listen ())
      in
      if tcp = None then (try Unix.unlink socket with Unix.Unix_error _ -> ());
      Fmt.pr "volcomp serve: answered %d request(s)@." answered;
      0
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve solve/probe/trace/list/stats queries over a socket, with a warm session \
          cache, request batching across worker domains, per-request deadlines, explicit \
          load shedding, and optional multi-process sharding ($(b,--workers)).")
    Term.(
      const run $ socket_term $ tcp_term $ cache $ queue_depth $ workers $ worker $ snap_dir
      $ jobs_term)

(* --- loadgen ----------------------------------------------------------------- *)

let loadgen_cmd =
  let spawn =
    Arg.(
      value & flag
      & info [ "spawn" ]
          ~doc:"Start a private $(b,volcomp serve) on the socket, drive it, shut it down.")
  in
  let spawn_workers =
    Arg.(
      value & opt int 0
      & info [ "workers" ] ~docv:"N"
          ~doc:"With $(b,--spawn): start the private server sharded across $(docv) workers.")
  in
  let clients =
    Arg.(value & opt int 4 & info [ "clients" ] ~docv:"N" ~doc:"Concurrent closed-loop clients.")
  in
  let rate =
    Arg.(
      value & opt (some float) None
      & info [ "rate" ] ~docv:"RPS"
          ~doc:
            "Open-loop mode: requests arrive as a Poisson process at $(docv) requests/s \
             (exponential inter-arrivals) regardless of reply speed, fanned out over \
             non-blocking connections.  Reports achieved throughput and shed rate.")
  in
  let conns =
    Arg.(
      value & opt (some int) None
      & info [ "conns" ] ~docv:"N"
          ~doc:
            "Open-loop connection fan-out (default: one per shard the server reports, 1 \
             for a single-process server).")
  in
  let requests =
    Arg.(value & opt int 64 & info [ "requests" ] ~docv:"N" ~doc:"Total requests to send.")
  in
  let mix =
    Arg.(
      value & opt string "solve:1,probe:4,trace:1,list:1,stats:1"
      & info [ "mix" ] ~docv:"SPEC"
          ~doc:"Weighted request mix, e.g. $(b,probe:4,solve:1) (kinds: solve, probe, trace, \
                warm, list, stats).")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Seed for the request plan.")
  in
  let deadline =
    Arg.(
      value & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Attach this deadline to every request (0 expires deterministically).")
  in
  let no_verify =
    Arg.(
      value & flag
      & info [ "no-verify" ]
          ~doc:"Skip the byte-identity check against in-process computation.")
  in
  let prewarm =
    Arg.(
      value & flag
      & info [ "prewarm" ]
          ~doc:
            "Open-loop mode: issue a $(b,warm) query for every session in the plan before \
             the measured phase, so instance construction is never charged to the first \
             unlucky request of a session.  The summary reports how many sessions were \
             cold.")
  in
  let json =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"PATH" ~doc:"Also write the summary as JSON to $(docv).")
  in
  let run socket tcp spawn spawn_workers clients requests rate conns mix_s seed deadline
      no_verify prewarm json =
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    match Vc_serve.Loadgen.parse_mix mix_s with
    | Error msg ->
        Fmt.epr "loadgen: bad --mix: %s@." msg;
        2
    | Ok mix -> (
        let addr =
          match tcp with
          | Some port -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)
          | None -> Unix.ADDR_UNIX socket
        in
        let connect () =
          let dom = match tcp with Some _ -> Unix.PF_INET | None -> Unix.PF_UNIX in
          let fd = Unix.socket dom Unix.SOCK_STREAM 0 in
          Unix.connect fd addr;
          fd
        in
        let server_pid =
          if not spawn then None
          else begin
            let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
            let args =
              (match tcp with
              | Some port -> [ Sys.executable_name; "serve"; "--tcp"; string_of_int port ]
              | None -> [ Sys.executable_name; "serve"; "--socket"; socket ])
              @ (if spawn_workers > 0 then [ "--workers"; string_of_int spawn_workers ]
                 else [])
            in
            let pid =
              Unix.create_process Sys.executable_name (Array.of_list args) Unix.stdin
                devnull devnull
            in
            Unix.close devnull;
            (* wait until the daemon accepts connections *)
            let rec wait tries =
              if tries = 0 then begin
                (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
                ignore (Unix.waitpid [] pid);
                failwith "spawned server did not come up within 10 s"
              end
              else
                match connect () with
                | fd -> Unix.close fd
                | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
                    Unix.sleepf 0.01;
                    wait (tries - 1)
            in
            wait 1000;
            Some pid
          end
        in
        let reap result =
          (match (result, server_pid) with
          | Ok _, Some pid ->
              (* loadgen already sent shutdown; reap the daemon *)
              ignore (Unix.waitpid [] pid)
          | Error _, Some pid ->
              (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
              ignore (Unix.waitpid [] pid)
          | _, None -> ());
          if spawn && tcp = None then (try Unix.unlink socket with Unix.Unix_error _ -> ())
        in
        let write_json to_json s path =
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () ->
              output_string oc (Json.to_string (to_json s));
              output_char oc '\n');
          Fmt.pr "wrote %s@." path
        in
        match rate with
        | None -> (
            let cfg =
              {
                Vc_serve.Loadgen.clients;
                requests;
                mix;
                seed = Int64.of_int seed;
                deadline_ms = deadline;
                verify = not no_verify;
                shutdown = spawn;
              }
            in
            let result = Vc_serve.Loadgen.run ~connect cfg in
            reap result;
            match result with
            | Error msg ->
                Fmt.epr "loadgen: %s@." msg;
                1
            | Ok s ->
                Fmt.pr "%a" Vc_serve.Loadgen.pp_summary s;
                Option.iter (write_json Vc_serve.Loadgen.summary_to_json s) json;
                if s.Vc_serve.Loadgen.s_mismatches = 0 then 0 else 1)
        | Some o_rate -> (
            let cfg =
              {
                Vc_serve.Loadgen.o_rate;
                o_requests = requests;
                o_conns = conns;
                o_mix = mix;
                o_seed = Int64.of_int seed;
                o_verify = not no_verify;
                o_shutdown = spawn;
                o_prewarm = prewarm;
              }
            in
            let result = Vc_serve.Loadgen.run_open ~connect cfg in
            reap result;
            match result with
            | Error msg ->
                Fmt.epr "loadgen: %s@." msg;
                1
            | Ok s ->
                Fmt.pr "%a" Vc_serve.Loadgen.pp_open_summary s;
                Option.iter (write_json Vc_serve.Loadgen.open_summary_to_json s) json;
                if s.Vc_serve.Loadgen.os_mismatches = 0 then 0 else 1))
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Drive a serving daemon with a deterministic request mix — closed-loop by default, \
          open-loop Poisson arrivals with $(b,--rate) — verify every reply byte-for-byte \
          against in-process computation, and report p50/p95/p99 latency per request kind \
          (plus achieved throughput and shed rate in open-loop mode).")
    Term.(
      const run $ socket_term $ tcp_term $ spawn $ spawn_workers $ clients $ requests $ rate
      $ conns $ mix $ seed $ deadline $ no_verify $ prewarm $ json)

(* --- synth ------------------------------------------------------------------ *)

let synth_cmd =
  let module Classify = Vc_synth.Classify in
  let module Encode = Vc_synth.Encode in
  let problem =
    Arg.(
      value & opt (some string) None
      & info [ "problem" ] ~docv:"NAME"
          ~doc:
            "Problem universe to synthesize for (degree-parity, cycle-coloring, \
             leaf-coloring; registry names also accepted); default: all three.")
  in
  let volume =
    Arg.(
      value & opt (some int) None
      & info [ "volume" ] ~docv:"V"
          ~doc:
            "Synthesize at exactly this volume budget.  Without it, descend the ladder \
             from the known-feasible budget down to the first UNSAT.")
  in
  let radius =
    Arg.(
      value & opt (some int) None
      & info [ "radius" ] ~docv:"R" ~doc:"Override the spec's distance cap.")
  in
  let sizes =
    Arg.(
      value & opt (some string) None
      & info [ "sizes" ] ~docv:"LIST"
          ~doc:
            "Comma-separated node counts: keep only corpus instances with that many \
             nodes (default: the full pinned corpus).")
  in
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Deterministically shuffle the CEGIS corpus order ($(b,0) keeps the pinned \
             order).  Verdicts must not depend on it; witnesses and iteration counts may.")
  in
  let certify =
    Arg.(
      value & flag
      & info [ "certify" ] ~doc:"Replay the DRUP proof log on every UNSAT verdict.")
  in
  let expect =
    Arg.(
      value
      & opt (some (enum [ ("sat", true); ("unsat", false) ])) None
      & info [ "expect" ] ~docv:"VERDICT"
          ~doc:"Exit non-zero unless every verdict is $(docv) (sat or unsat).")
  in
  let json =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"PATH" ~doc:"Write the verdict table as JSON to $(docv).")
  in
  let dimacs_out =
    Arg.(
      value & opt (some string) None
      & info [ "dimacs-out" ] ~docv:"PATH"
          ~doc:
            "Write the final CNF as DIMACS to $(docv) for external cross-checking \
             (single $(b,--volume) runs only).")
  in
  let run problem volume radius sizes seed certify expect json dimacs_out =
    let all = Classify.specs () in
    let specs =
      match problem with
      | None -> all
      | Some p -> ( match Classify.find p with Some s -> [ s ] | None -> [])
    in
    if specs = [] then begin
      Fmt.epr "synth: unknown problem %S (known: %s)@."
        (Option.value problem ~default:"")
        (String.concat ", " (List.map (fun s -> s.Classify.s_name) all));
      2
    end
    else begin
      let size_list =
        Option.map
          (fun s ->
            List.filter_map int_of_string_opt (String.split_on_char ',' s))
          sizes
      in
      (* --sizes trims the pinned corpus; --seed permutes what is left.
         Both act on the certificate family only — the encoding and the
         verdict logic are untouched, so a verdict flip under either flag
         is a finding about the corpus, not a bug knob. *)
      let restrict (s : Classify.spec) =
        let s = match radius with None -> s | Some r -> { s with Classify.s_radius = r } in
        let (Encode.U u) = s.Classify.s_universe in
        let keep (_, g, _) =
          match size_list with None -> true | Some szs -> List.mem (Graph.n g) szs
        in
        let insts = Array.of_list (List.filter keep (Array.to_list u.instances)) in
        if seed <> 0 then begin
          let rng = Vc_rng.Splitmix.create (Int64.of_int seed) in
          for i = Array.length insts - 1 downto 1 do
            let j = Vc_rng.Splitmix.int rng ~bound:(i + 1) in
            let t = insts.(i) in
            insts.(i) <- insts.(j);
            insts.(j) <- t
          done
        end;
        { s with Classify.s_universe = Encode.U { u with instances = insts } }
      in
      let outcome =
        List.fold_left
          (fun acc spec ->
            match acc with
            | Error _ as e -> e
            | Ok verdicts -> (
                let spec = restrict spec in
                let (Encode.U u) = spec.Classify.s_universe in
                if Array.length u.instances = 0 then
                  Error
                    (Printf.sprintf "%s: no corpus instance matches --sizes"
                       spec.Classify.s_name)
                else
                  match volume with
                  | Some v ->
                      Result.map
                        (fun vd -> verdicts @ [ vd ])
                        (Classify.run ~certify ?dimacs_out spec ~volume:v)
                  | None ->
                      Result.map (fun vs -> verdicts @ vs)
                        (Classify.ladder ~certify spec)))
          (Ok []) specs
      in
      match outcome with
      | Error msg ->
          Fmt.epr "synth: %s@." msg;
          2
      | Ok verdicts ->
          List.iter (fun v -> Fmt.pr "%a@." Classify.pp_verdict v) verdicts;
          Option.iter
            (fun path ->
              let oc = open_out path in
              output_string oc (Json.to_string (Classify.table_json verdicts));
              output_char oc '\n';
              close_out oc;
              Fmt.pr "wrote %s@." path)
            json;
          (match expect with
          | None -> 0
          | Some want ->
              if List.for_all (fun v -> v.Classify.v_sat = want) verdicts then 0
              else begin
                Fmt.epr "synth: verdict mismatch (expected %s)@."
                  (if want then "sat" else "unsat");
                1
              end)
    end
  in
  Cmd.v
    (Cmd.info "synth"
       ~doc:
         "SAT-based probe-program synthesis: find a minimal-volume IR program passing \
          each problem's checker on its certificate corpus, or prove the budget \
          infeasible.")
    Term.(
      const run $ problem $ volume $ radius $ sizes $ seed $ certify $ expect $ json
      $ dimacs_out)

let () =
  let doc = "Volume complexity of local graph problems (Rosenbaum & Suomela, PODC 2020)" in
  let info = Cmd.info "volcomp" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            experiments_cmd;
            solve_cmd;
            adversary_cmd;
            congest_cmd;
            check_cmd;
            trace_cmd;
            export_cmd;
            list_cmd;
            family_cmd;
            ir_cmd;
            synth_cmd;
            snap_cmd;
            serve_cmd;
            loadgen_cmd;
          ]))
