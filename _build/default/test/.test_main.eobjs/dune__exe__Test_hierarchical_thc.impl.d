test/test_hierarchical_thc.ml: Alcotest Array Float Fmt Int64 List Printf QCheck QCheck_alcotest Vc_graph Vc_lcl Vc_model Vc_rng Volcomp
