module TL = Vc_graph.Tree_labels
module Graph = Vc_graph.Graph
module Builder = Vc_graph.Builder
module Probe = Vc_model.Probe
module World = Vc_model.World
module Lcl = Vc_lcl.Lcl
module Splitmix = Vc_rng.Splitmix

type node_input = {
  parent : TL.ptr;
  left : TL.ptr;
  right : TL.ptr;
  color : TL.color;
}

let pointers inp = (inp.parent, inp.left, inp.right)

let pp_node_input ppf i =
  Fmt.pf ppf "P=%d LC=%d RC=%d chi=%a" i.parent i.left i.right TL.pp_color i.color

type instance = {
  graph : Graph.t;
  labels : TL.t;
  colors : TL.color array;
}

let input inst v =
  {
    parent = inst.labels.TL.parent.{v};
    left = inst.labels.TL.left.{v};
    right = inst.labels.TL.right.{v};
    color = inst.colors.(v);
  }

let world inst = World.of_graph inst.graph ~input:(input inst)

(* Status decision evaluated directly over the checker's [input]
   function, so checking a node costs O(1) rather than O(n). *)
let status_of g ~input v =
  TL.status_gen ~degree:(Graph.degree g)
    ~pointers:(fun u -> pointers (input u))
    ~follow:(Graph.neighbor g) v

let problem : (node_input, TL.color) Lcl.t =
  let valid_at g ~input ~output v =
    match status_of g ~input v with
    | TL.Leaf | TL.Inconsistent ->
        if TL.equal_color (output v) (input v).color then Ok ()
        else
          Error
            (Fmt.str "leaf/inconsistent node must echo input color %a, got %a" TL.pp_color
               (input v).color TL.pp_color (output v))
    | TL.Internal ->
        let lc = Graph.neighbor g v (input v).left in
        let rc = Graph.neighbor g v (input v).right in
        if TL.equal_color (output v) (output lc) || TL.equal_color (output v) (output rc) then
          Ok ()
        else
          Error
            (Fmt.str "internal node output %a matches neither child (%a, %a)" TL.pp_color
               (output v) TL.pp_color (output lc) TL.pp_color (output rc))
  in
  { Lcl.name = "LeafColoring"; radius = 2; valid_at }

(* --- Generators ------------------------------------------------------ *)

let of_tree graph labels ~colors =
  if Array.length colors <> Graph.n graph then
    invalid_arg "Leaf_coloring.of_tree: color array size mismatch";
  { graph; labels; colors }

let random_colors ~n ~rng = Array.init n (fun _ -> if Splitmix.bool rng then TL.Red else TL.Blue)

let random_instance ~n ~seed =
  let rng = Splitmix.create seed in
  let graph, labels = TL.of_random_binary_tree ~n ~rng in
  let colors = random_colors ~n:(Graph.n graph) ~rng in
  { graph; labels; colors }

let hard_distance_instance ~depth ~leaf_color =
  let graph, labels = TL.of_complete_binary_tree ~depth in
  let colors =
    Array.init (Graph.n graph) (fun v ->
        if Graph.degree graph v = 1 && depth > 0 then leaf_color else TL.Red)
  in
  { graph; labels; colors }

let cycle_instance ~cycle_len ~seed =
  if cycle_len < 3 then invalid_arg "Leaf_coloring.cycle_instance: cycle_len must be >= 3";
  let m = cycle_len in
  let n = 2 * m in
  (* Nodes 0..m-1 form the directed cycle; node m+i is the pendant leaf
     of cycle node i. *)
  let edges =
    List.init m (fun i -> (i, (i + 1) mod m)) @ List.init m (fun i -> (i, m + i))
  in
  let graph = Graph.of_edges ~n edges in
  let labels =
    TL.of_structure graph
      ~parent:(fun v -> if v < m then Some ((v + m - 1) mod m) else Some (v - m))
      ~left:(fun v -> if v < m then Some ((v + 1) mod m) else None)
      ~right:(fun v -> if v < m then Some (v + m) else None)
  in
  let colors = random_colors ~n ~rng:(Splitmix.create seed) in
  { graph; labels; colors }

let figure4_instance =
  (* A pseudo-tree with a 3-cycle, a proper depth-2 tree, and two
     inconsistent nodes, mirroring the flavor of Figure 4. *)
  let cyc = cycle_instance ~cycle_len:3 ~seed:0L in
  let tree_g, tree_lab = TL.of_complete_binary_tree ~depth:2 in
  let incons = Builder.path 2 in
  let graph, off = Builder.disjoint_union [ cyc.graph; tree_g; incons ] in
  let n = Graph.n graph in
  let labels = TL.make ~n in
  let copy_labels src ~at =
    for v = 0 to Vc_graph.Iarr.length src.TL.parent - 1 do
      labels.TL.parent.{at + v} <- src.TL.parent.{v};
      labels.TL.left.{at + v} <- src.TL.left.{v};
      labels.TL.right.{at + v} <- src.TL.right.{v}
    done
  in
  copy_labels cyc.labels ~at:off.(0);
  copy_labels tree_lab ~at:off.(1);
  let colors =
    Array.init n (fun v -> if v mod 3 = 0 then TL.Blue else TL.Red)
  in
  { graph; labels; colors }

let root _inst = 0

(* --- Algorithms ------------------------------------------------------ *)

let status ctx v = Probe_tree.status ~pointers ctx v

let children ctx v = Probe_tree.children ~pointers ctx v

(* Proposition 3.9: explore downward in G_T, breadth-first, expanding
   left children before right children so that the first non-internal
   node encountered is the left-most nearest descendant leaf.  Output its
   input color. *)
let solve_distance_fn ctx =
  let v0 = Probe.origin ctx in
  match status ctx v0 with
  | TL.Leaf | TL.Inconsistent -> (Probe.input ctx v0).color
  | TL.Internal ->
      let seen = Hashtbl.create 64 in
      Hashtbl.add seen v0 ();
      let rec search frontier =
        match frontier with
        | [] ->
            (* Unreachable on well-formed inputs: Lemma 3.8 guarantees a
               descendant leaf.  Fall back defensively. *)
            (Probe.input ctx v0).color
        | _ :: _ ->
            let rec scan = function
              | [] -> None
              | u :: rest -> (
                  match status ctx u with
                  | TL.Leaf | TL.Inconsistent -> Some u
                  | TL.Internal -> scan rest)
            in
            (match scan frontier with
            | Some leaf -> (Probe.input ctx leaf).color
            | None ->
                let next =
                  List.concat_map
                    (fun u ->
                      match children ctx u with
                      | None -> []
                      | Some (lc, rc) ->
                          let fresh w =
                            if Hashtbl.mem seen w then []
                            else begin
                              Hashtbl.add seen w ();
                              [ w ]
                            end
                          in
                          fresh lc @ fresh rc)
                    frontier
                in
                search next)
      in
      (match children ctx v0 with
      | None -> (Probe.input ctx v0).color
      | Some (lc, rc) ->
          Hashtbl.add seen lc ();
          if not (Hashtbl.mem seen rc) then Hashtbl.add seen rc ();
          search (if lc = rc then [ lc ] else [ lc; rc ]))

let solve_distance = Lcl.solver ~name:"nearest-leaf (Prop 3.9)" ~randomized:false solve_distance_fn

(* Algorithm 1, RWtoLeaf: a directed random walk towards the leaves.
   Each internal node steers all walks through it with bit 0 of its
   private random string; when the walk returns to its origin the bit is
   flipped, which pushes the walk off the (unique) cycle. *)
let rw_to_leaf ctx ~flip_on_revisit =
  let v0 = Probe.origin ctx in
  let n = Probe.n ctx in
  let step_cap = (4 * n) + 16 in
  let rec walk v ~steps =
    if steps > step_cap then (Probe.input ctx v0).color
    else
      match status ctx v with
      | TL.Leaf | TL.Inconsistent -> (Probe.input ctx v).color
      | TL.Internal -> (
          let bit = Probe.rand_bit_at ctx v 0 in
          let revisit = v = v0 && steps > 0 in
          let go_right = if flip_on_revisit && revisit then not bit else bit in
          match children ctx v with
          | None -> (Probe.input ctx v).color
          | Some (lc, rc) -> walk (if go_right then rc else lc) ~steps:(steps + 1))
  in
  walk v0 ~steps:0

let solve_random_walk =
  Lcl.solver ~name:"RWtoLeaf (Alg 1)" ~randomized:true (rw_to_leaf ~flip_on_revisit:true)

let solve_random_walk_no_flip =
  Lcl.solver ~name:"RWtoLeaf without revisit flip (ablation)" ~randomized:true
    (rw_to_leaf ~flip_on_revisit:false)

let solvers = [ solve_distance; solve_random_walk ]

(* --- Forced outputs --------------------------------------------------- *)

let unique_valid_output inst =
  let g = inst.graph in
  let n = Graph.n g in
  let forced = Array.make n None in
  Graph.iter_nodes g (fun v ->
      match TL.status g inst.labels v with
      | TL.Leaf | TL.Inconsistent -> forced.(v) <- Some inst.colors.(v)
      | TL.Internal -> ());
  let changed = ref true in
  while !changed do
    changed := false;
    Graph.iter_nodes g (fun v ->
        if forced.(v) = None then
          match TL.gt_children g inst.labels v with
          | Some (lc, rc) -> (
              match (forced.(lc), forced.(rc)) with
              | Some a, Some b when TL.equal_color a b ->
                  forced.(v) <- Some a;
                  changed := true
              | Some _, Some _ | Some _, None | None, Some _ | None, None -> ())
          | None -> ())
  done;
  if Array.for_all Option.is_some forced then
    Some (Array.map (function Some c -> c | None -> assert false) forced)
  else None
