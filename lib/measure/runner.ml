module Graph = Vc_graph.Graph
module Probe = Vc_model.Probe
module Lcl = Vc_lcl.Lcl
module Splitmix = Vc_rng.Splitmix
module Randomness = Vc_rng.Randomness
module Pool = Vc_exec.Pool

let m_probe_runs = Vc_obs.Metrics.counter "runner.probe_runs"

type stats = {
  runs : int;
  max_volume : int;
  sum_volume : int;
  max_distance : int;
  sum_distance : int;
  max_queries : int;
  max_rand_bits : int;
  aborted : int;
}

let mean_volume s = if s.runs = 0 then 0.0 else float_of_int s.sum_volume /. float_of_int s.runs

let mean_distance s =
  if s.runs = 0 then 0.0 else float_of_int s.sum_distance /. float_of_int s.runs

let pp_stats ppf s =
  Fmt.pf ppf "runs=%d vol(max=%d mean=%.1f) dist(max=%d mean=%.1f) queries<=%d bits<=%d aborted=%d"
    s.runs s.max_volume (mean_volume s) s.max_distance (mean_distance s) s.max_queries
    s.max_rand_bits s.aborted

let empty =
  {
    runs = 0;
    max_volume = 0;
    sum_volume = 0;
    max_distance = 0;
    sum_distance = 0;
    max_queries = 0;
    max_rand_bits = 0;
    aborted = 0;
  }

let add stats (r : _ Probe.result) =
  {
    runs = stats.runs + 1;
    max_volume = max stats.max_volume r.Probe.volume;
    sum_volume = stats.sum_volume + r.Probe.volume;
    max_distance = max stats.max_distance r.Probe.distance;
    sum_distance = stats.sum_distance + r.Probe.distance;
    max_queries = max stats.max_queries r.Probe.queries;
    max_rand_bits = max stats.max_rand_bits r.Probe.rand_bits;
    aborted = (stats.aborted + if r.Probe.aborted then 1 else 0);
  }

let merge a b =
  {
    runs = a.runs + b.runs;
    max_volume = max a.max_volume b.max_volume;
    sum_volume = a.sum_volume + b.sum_volume;
    max_distance = max a.max_distance b.max_distance;
    sum_distance = a.sum_distance + b.sum_distance;
    max_queries = max a.max_queries b.max_queries;
    max_rand_bits = max a.max_rand_bits b.max_rand_bits;
    aborted = a.aborted + b.aborted;
  }

let measure_seq ~world ~solver ?randomness ?budget ~origins () =
  let stats = ref empty in
  let outputs = ref [] in
  List.iter
    (fun v ->
      Vc_obs.Metrics.incr m_probe_runs;
      let r = Probe.run ~world ?randomness ?budget ~origin:v solver.Lcl.solve in
      stats := add !stats r;
      match r.Probe.output with
      | Some o -> outputs := (v, o) :: !outputs
      | None -> ())
    origins;
  (!stats, List.rev !outputs)

(* Every cost and every output of a probe run is a deterministic function
   of (world, solver, origin, randomness seed), and [merge] is an exact
   integer monoid, so fanning the origins out across domains and folding
   the per-chunk partials in chunk order is bit-identical to the
   sequential left fold.  Each domain works on its own [Randomness.fork]
   because streams memoize mutably (see Vc_rng.Randomness).  Graph-backed
   worlds keep their incremental-BFS scratch in Domain.DLS keyed by node
   count, so across this fan-out each domain reuses one set of scratch
   arrays for every origin instead of allocating per session (see
   Vc_model.World). *)
let measure_par ~pool ~world ~solver ?randomness ?budget ~origins () =
  let fork_key = Domain.DLS.new_key (fun () -> Option.map Randomness.fork randomness) in
  Pool.map_reduce pool
    ~map:(fun v ->
      let randomness = Domain.DLS.get fork_key in
      Vc_obs.Metrics.incr m_probe_runs;
      let r = Probe.run ~world ?randomness ?budget ~origin:v solver.Lcl.solve in
      let out = match r.Probe.output with Some o -> [ (v, o) ] | None -> [] in
      (add empty r, out))
    ~combine:(fun (s1, o1) (s2, o2) -> (merge s1 s2, o1 @ o2))
    ~init:(empty, []) origins

type ('i, 'o) ir_target = {
  ir_spec : ('i, 'o) Vc_ir.Ir.spec;
  ir_graph : Graph.t;
  ir_input : Graph.node -> 'i;
}

(* The IR fast path.  Oracle probe 8 guarantees the batched executor
   produces the exact per-origin result record the closure solver would,
   so folding the batch with [add] in origin order reproduces the
   closure path's stats and outputs bit for bit — while thousands of
   origins ride one flat loop over the CSR arrays instead of re-entering
   a closure per query. *)
let measure_ir ~world ~(ir : _ ir_target) ?budget ?pool ~origins () =
  let origins = Array.of_list origins in
  Vc_obs.Metrics.add m_probe_runs (Array.length origins);
  let results =
    Vc_ir.Exec.run_batch ~claimed_n:world.Vc_model.World.n ?budget ?pool ir.ir_spec
      ~graph:ir.ir_graph ~input:ir.ir_input ~origins
  in
  let stats = ref empty in
  let outputs = ref [] in
  Array.iteri
    (fun i (r : _ Probe.result) ->
      stats := add !stats r;
      match r.Probe.output with
      | Some o -> outputs := (origins.(i), o) :: !outputs
      | None -> ())
    results;
  (!stats, List.rev !outputs)

let measure ~world ~solver ?randomness ?budget ?pool ?ir ~origins () =
  match (ir, randomness) with
  | Some ir, None -> measure_ir ~world ~ir ?budget ?pool ~origins ()
  | _ -> (
      match pool with
      | Some pool when Pool.domains pool > 1 ->
          measure_par ~pool ~world ~solver ?randomness ?budget ~origins ()
      | Some _ | None -> measure_seq ~world ~solver ?randomness ?budget ~origins ())

let solve_and_check ~world ~problem ~graph ~input ~solver ?randomness ?pool ?ir () =
  let origins = Graph.nodes graph in
  let stats, outputs = measure ~world ~solver ?randomness ?pool ?ir ~origins () in
  let tbl = Hashtbl.create (Graph.n graph) in
  List.iter (fun (v, o) -> Hashtbl.replace tbl v o) outputs;
  let valid =
    List.length outputs = Graph.n graph
    && Lcl.is_valid problem graph ~input ~output:(Hashtbl.find tbl)
  in
  (stats, valid)

let sample_origins g ~count ~seed =
  if count <= 0 then invalid_arg "Runner.sample_origins: count must be positive";
  let n = Graph.n g in
  if count >= n then Graph.nodes g
  else begin
    (* Partial Fisher-Yates: exactly [count] draws, no rejection loop
       even when [count] approaches [n]. *)
    let rng = Splitmix.create seed in
    let nodes = Array.init n Fun.id in
    for i = 0 to count - 1 do
      let j = i + Splitmix.int rng ~bound:(n - i) in
      let tmp = nodes.(i) in
      nodes.(i) <- nodes.(j);
      nodes.(j) <- tmp
    done;
    Array.to_list (Array.sub nodes 0 count)
  end
