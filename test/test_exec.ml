(* Tests for the execution engine: Pool.map/map_reduce semantics and the
   bit-identical determinism guarantee of the parallel runner. *)

module Pool = Vc_exec.Pool
module Runner = Vc_measure.Runner
module Graph = Vc_graph.Graph
module Randomness = Vc_rng.Randomness
module TL = Vc_graph.Tree_labels
module LC = Volcomp.Leaf_coloring
module BT = Volcomp.Balanced_tree
module H = Volcomp.Hierarchical_thc
module Disjointness = Vc_commcc.Disjointness

let widths = [ 1; 2; 4 ]

let with_width w f = Pool.with_pool ~domains:w f

(* --- Pool.map semantics --------------------------------------------------- *)

let test_map_matches_list_map () =
  List.iter
    (fun w ->
      with_width w (fun pool ->
          List.iter
            (fun n ->
              let xs = List.init n (fun i -> i) in
              let f x = (x * x) - (3 * x) in
              Alcotest.(check (list int))
                (Printf.sprintf "map n=%d domains=%d" n w)
                (List.map f xs) (Pool.map pool f xs))
            [ 0; 1; 2; 7; 100; 1000 ]))
    widths

let test_map_exception_propagation () =
  List.iter
    (fun w ->
      with_width w (fun pool ->
          let f x = if x mod 10 = 3 then failwith (Printf.sprintf "boom-%d" x) else x in
          let xs = List.init 50 (fun i -> i) in
          (* List.map on pure inputs raises for the first failing element;
             Pool.map promises the same exception. *)
          let got =
            match Pool.map pool f xs with
            | _ -> None
            | exception Failure m -> Some m
          in
          Alcotest.(check (option string))
            (Printf.sprintf "first failure wins (domains=%d)" w)
            (Some "boom-3") got))
    widths

let test_map_reduce_matches_fold () =
  List.iter
    (fun w ->
      with_width w (fun pool ->
          List.iter
            (fun n ->
              let xs = List.init n (fun i -> i + 1) in
              let f x = (2 * x) + 1 in
              Alcotest.(check int)
                (Printf.sprintf "sum n=%d domains=%d" n w)
                (List.fold_left (fun acc x -> acc + f x) 0 xs)
                (Pool.map_reduce pool ~map:f ~combine:( + ) ~init:0 xs);
              Alcotest.(check int)
                (Printf.sprintf "max n=%d domains=%d" n w)
                (List.fold_left (fun acc x -> max acc (f x)) min_int xs)
                (Pool.map_reduce pool ~map:f ~combine:max ~init:min_int xs))
            [ 0; 1; 5; 64; 513 ]))
    widths

let test_nested_map () =
  with_width 4 (fun pool ->
      let expected = List.init 20 (fun i -> List.init 20 (fun j -> i * j)) in
      let got =
        Pool.map pool
          (fun i -> Pool.map pool (fun j -> i * j) (List.init 20 (fun j -> j)))
          (List.init 20 (fun i -> i))
      in
      Alcotest.(check (list (list int))) "nested maps" expected got)

let test_width1_sequential_fast_path () =
  (* a width-1 pool must not spawn any Domain and must run everything on
     the caller's domain, bypassing the worker queue *)
  let pool = Pool.create ~domains:1 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  Alcotest.(check int) "no worker domain spawned" 0 (Pool.worker_count pool);
  let self = Domain.self () in
  let seen = ref [] in
  let res =
    Pool.map pool
      (fun x ->
        seen := Domain.self () :: !seen;
        x * 2)
      [ 1; 2; 3 ]
  in
  Alcotest.(check (list int)) "map result" [ 2; 4; 6 ] res;
  Alcotest.(check bool) "all work on the calling domain" true
    (List.for_all (fun d -> d = self) !seen);
  Alcotest.(check int) "map_reduce result" 10
    (Pool.map_reduce pool ~map:Fun.id ~combine:( + ) ~init:0 [ 1; 2; 3; 4 ]);
  (* sequential exception semantics: evaluation stops at the raising
     element, like List.map *)
  let evals = ref 0 in
  (try
     ignore
       (Pool.map pool
          (fun x ->
            incr evals;
            if x = 1 then failwith "stop" else x)
          [ 0; 1; 2; 3 ])
   with Failure _ -> ());
  Alcotest.(check int) "stops at the raising element" 2 !evals;
  (* contrast: a width-4 pool does own 3 workers *)
  with_width 4 (fun p -> Alcotest.(check int) "width 4 spawns 3 workers" 3 (Pool.worker_count p))

let test_create_rejects_nonpositive () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Pool.create ~domains:0 ());
       false
     with Invalid_argument _ -> true)

(* qcheck: Pool.map agrees with List.map for arbitrary functions/inputs. *)
let qcheck_map_equals_list_map =
  QCheck.Test.make ~count:60 ~name:"Pool.map = List.map (arbitrary f, xs)"
    QCheck.(pair (fun1 Observable.int small_int) (small_list int))
    (fun (f, xs) ->
      let f = QCheck.Fn.apply f in
      List.for_all
        (fun w -> with_width w (fun pool -> Pool.map pool f xs = List.map f xs))
        [ 2; 3 ])

(* --- parallel runner determinism ------------------------------------------ *)

let stats_t = Alcotest.testable Runner.pp_stats (fun a b -> a = b)

(* solve_and_check with ~pool at every width must return stats, outputs
   and validity bit-identical to the sequential path. *)
let check_solve_determinism ~msg ~world ~problem ~graph ~input ~solver ?randomness () =
  let seq_stats, seq_valid =
    Runner.solve_and_check ~world ~problem ~graph ~input ~solver ?randomness ()
  in
  let seq_outputs =
    snd (Runner.measure ~world ~solver ?randomness ~origins:(Graph.nodes graph) ())
  in
  List.iter
    (fun w ->
      with_width w (fun pool ->
          let stats, valid =
            Runner.solve_and_check ~world ~problem ~graph ~input ~solver ?randomness ~pool ()
          in
          Alcotest.check stats_t (Printf.sprintf "%s: stats (domains=%d)" msg w) seq_stats stats;
          Alcotest.(check bool) (Printf.sprintf "%s: valid (domains=%d)" msg w) seq_valid valid;
          let outputs =
            snd
              (Runner.measure ~world ~solver ?randomness ~pool ~origins:(Graph.nodes graph) ())
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s: outputs (domains=%d)" msg w)
            true
            (outputs = seq_outputs)))
    widths

let test_determinism_leafcoloring () =
  let inst = LC.hard_distance_instance ~depth:7 ~leaf_color:TL.Blue in
  check_solve_determinism ~msg:"leafcoloring/deterministic" ~world:(LC.world inst)
    ~problem:LC.problem ~graph:inst.LC.graph ~input:(LC.input inst) ~solver:LC.solve_distance ()

let test_determinism_leafcoloring_randomized () =
  let inst = LC.random_instance ~n:201 ~seed:7L in
  let randomness = Randomness.create ~seed:11L ~n:(Graph.n inst.LC.graph) () in
  check_solve_determinism ~msg:"leafcoloring/random-walk" ~world:(LC.world inst)
    ~problem:LC.problem ~graph:inst.LC.graph ~input:(LC.input inst) ~solver:LC.solve_random_walk
    ~randomness ()

let test_determinism_balancedtree () =
  let disj = Disjointness.random_promise ~n:64 ~intersecting:false ~seed:5L in
  let inst = BT.embed_disjointness disj in
  check_solve_determinism ~msg:"balancedtree" ~world:(BT.world inst) ~problem:BT.problem
    ~graph:inst.BT.graph ~input:(BT.input inst) ~solver:BT.solve_distance ()

let test_determinism_hierarchical_thc () =
  let k = 2 in
  let inst, _ = H.hard_instance ~k ~target_n:600 ~seed:3L in
  let n = Graph.n (H.graph inst) in
  let randomness = Randomness.create ~seed:17L ~n () in
  check_solve_determinism ~msg:"hierarchical-thc/waypoint" ~world:(H.world inst)
    ~problem:(H.problem ~k) ~graph:(H.graph inst) ~input:(H.input inst)
    ~solver:(H.solve_waypoint ~k ()) ~randomness ()

let test_measure_budget_parallel () =
  (* aborts are counted identically through the pool *)
  let g = Vc_graph.Builder.path 9 in
  let world = Volcomp.Trivial_lcl.world g in
  let greedy =
    Vc_lcl.Lcl.solver ~name:"greedy" ~randomized:false (fun ctx ->
        let rec go v =
          let d = Vc_model.Probe.degree ctx v in
          go (Vc_model.Probe.query ctx ~at:v ~port:d)
        in
        go (Vc_model.Probe.origin ctx))
  in
  let seq =
    Runner.measure ~world ~solver:greedy ~budget:(Vc_model.Probe.volume_budget 2)
      ~origins:[ 0; 4 ] ()
  in
  with_width 2 (fun pool ->
      let par =
        Runner.measure ~world ~solver:greedy ~budget:(Vc_model.Probe.volume_budget 2) ~pool
          ~origins:[ 0; 4 ] ()
      in
      Alcotest.check stats_t "aborted stats" (fst seq) (fst par);
      Alcotest.(check int) "no outputs" 0 (List.length (snd par)))

let test_sample_origins_rejects_nonpositive () =
  let g = Vc_graph.Builder.cycle 10 in
  List.iter
    (fun count ->
      Alcotest.(check bool)
        (Printf.sprintf "count=%d raises" count)
        true
        (try
           ignore (Runner.sample_origins g ~count ~seed:1L);
           false
         with Invalid_argument _ -> true))
    [ 0; -3 ]

let test_sample_origins_near_n () =
  (* the old rejection loop degenerated as count -> n; the partial
     Fisher-Yates must stay exact and cheap *)
  let g = Vc_graph.Builder.cycle 500 in
  List.iter
    (fun count ->
      let sample = Runner.sample_origins g ~count ~seed:9L in
      Alcotest.(check int) (Printf.sprintf "count=%d size" count) count (List.length sample);
      Alcotest.(check int)
        (Printf.sprintf "count=%d distinct" count)
        count
        (List.length (List.sort_uniq compare sample));
      List.iter (fun v -> assert (v >= 0 && v < 500)) sample)
    [ 1; 250; 498; 499 ]

let suites =
  [
    ( "exec:pool",
      [
        Alcotest.test_case "map = List.map" `Quick test_map_matches_list_map;
        Alcotest.test_case "exception propagation" `Quick test_map_exception_propagation;
        Alcotest.test_case "map_reduce = fold" `Quick test_map_reduce_matches_fold;
        Alcotest.test_case "nested maps" `Quick test_nested_map;
        Alcotest.test_case "width-1 sequential fast path" `Quick test_width1_sequential_fast_path;
        Alcotest.test_case "rejects domains < 1" `Quick test_create_rejects_nonpositive;
        QCheck_alcotest.to_alcotest qcheck_map_equals_list_map;
      ] );
    ( "exec:determinism",
      [
        Alcotest.test_case "leafcoloring det" `Quick test_determinism_leafcoloring;
        Alcotest.test_case "leafcoloring rand" `Quick test_determinism_leafcoloring_randomized;
        Alcotest.test_case "balancedtree" `Quick test_determinism_balancedtree;
        Alcotest.test_case "hierarchical-thc" `Slow test_determinism_hierarchical_thc;
        Alcotest.test_case "budget aborts" `Quick test_measure_budget_parallel;
        Alcotest.test_case "sample_origins rejects <= 0" `Quick
          test_sample_origins_rejects_nonpositive;
        Alcotest.test_case "sample_origins near n" `Quick test_sample_origins_near_n;
      ] );
  ]
