(** Full-information LOCAL simulation (paper Remark 2.3).

    In the LOCAL model, after [T] synchronous rounds a node can know its
    entire radius-[T] neighborhood.  {!gather} runs that flooding
    protocol over the {!Congest} engine with unbounded messages: each
    round every node broadcasts everything it has learned, so the
    per-node {!knowledge} after [T] rounds is exactly the radius-[T]
    ball (with all edges incident to its interior).

    {!world_of_knowledge} turns a node's knowledge into a {!World.t}, so
    {e the very same probe-model algorithm} can be replayed against what
    the node learned by message passing.  This makes Remark 2.3 an
    executable theorem: an algorithm with DIST cost at most [T-1]
    produces identical output against the true world and against any
    node's [T]-round knowledge (the replay raises if the algorithm
    strays outside the ball).

    The measured message sizes also exhibit the Δ^Θ(T) growth that
    separates LOCAL from CONGEST (Observations 7.4–7.5). *)

type 'i knowledge

val nodes_known : 'i knowledge -> int

type 'i gathering = {
  views : 'i knowledge array;
  rounds : int;
  max_message_bits : int;  (** grows like Δ^T·log n: the LOCAL/CONGEST gap *)
}

val gather :
  graph:Vc_graph.Graph.t -> input:(Vc_graph.Graph.node -> 'i) -> rounds:int -> 'i gathering
(** Flood knowledge for the given number of rounds. *)

exception Outside_ball of Vc_graph.Graph.node
(** Raised by a knowledge-backed world when an algorithm tries to
    resolve a port of a node whose neighborhood was not learned. *)

val world_of_knowledge : n:int -> origin:Vc_graph.Graph.node -> 'i knowledge -> 'i World.t
(** A world answering queries from the knowledge; [n] is the true node
    count (known to every algorithm).  Distances are reported within
    the knowledge subgraph, which agrees with the true graph distances
    inside the ball. *)
