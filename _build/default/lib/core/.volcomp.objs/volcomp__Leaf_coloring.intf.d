lib/core/leaf_coloring.mli: Format Vc_graph Vc_lcl Vc_model
