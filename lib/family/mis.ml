module Graph = Vc_graph.Graph
module World = Vc_model.World
module Lcl = Vc_lcl.Lcl

type output = bool

let problem : (unit, output) Lcl.t =
  let valid_at g ~input:_ ~output v =
    if output v then
      Graph.fold_neighbors g v ~init:(Ok ()) ~f:(fun acc w ->
          match acc with
          | Error _ -> acc
          | Ok () ->
              if output w then Error (Fmt.str "adjacent node %d is also in the set" w)
              else Ok ())
    else if Graph.fold_neighbors g v ~init:false ~f:(fun acc w -> acc || output w) then
      Ok ()
    else Error "excluded with no neighbor in the set: not maximal"
  in
  { Lcl.name = "MIS"; radius = 1; valid_at }

let world g = World.of_graph g ~input:(fun _ -> ())

(* The lexicographically-first MIS: ascending-id scan, join unless a
   smaller-id neighbor already joined. *)
let solve_greedy_fn ctx =
  let c = Global.gather ctx in
  let in_set = Hashtbl.create 64 in
  List.iter
    (fun v ->
      let blocked =
        List.exists
          (fun (_, w) -> Hashtbl.find_opt in_set w = Some true)
          (c.Global.adj v)
      in
      Hashtbl.replace in_set v (not blocked))
    (Global.by_id c c.Global.members);
  Hashtbl.find in_set c.Global.origin

let solve_greedy = Lcl.solver ~name:"global greedy MIS" ~randomized:false solve_greedy_fn

let solvers = [ solve_greedy ]
