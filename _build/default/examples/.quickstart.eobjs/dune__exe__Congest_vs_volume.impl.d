examples/congest_vs_volume.ml: Fmt List Vc_graph Vc_lcl Vc_model Volcomp
