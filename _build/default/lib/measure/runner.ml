module Graph = Vc_graph.Graph
module Probe = Vc_model.Probe
module Lcl = Vc_lcl.Lcl
module Splitmix = Vc_rng.Splitmix

type stats = {
  runs : int;
  max_volume : int;
  mean_volume : float;
  max_distance : int;
  mean_distance : float;
  max_queries : int;
  max_rand_bits : int;
  aborted : int;
}

let pp_stats ppf s =
  Fmt.pf ppf "runs=%d vol(max=%d mean=%.1f) dist(max=%d mean=%.1f) queries<=%d bits<=%d aborted=%d"
    s.runs s.max_volume s.mean_volume s.max_distance s.mean_distance s.max_queries
    s.max_rand_bits s.aborted

let empty =
  {
    runs = 0;
    max_volume = 0;
    mean_volume = 0.0;
    max_distance = 0;
    mean_distance = 0.0;
    max_queries = 0;
    max_rand_bits = 0;
    aborted = 0;
  }

let add stats (r : _ Probe.result) =
  {
    runs = stats.runs + 1;
    max_volume = max stats.max_volume r.Probe.volume;
    mean_volume = stats.mean_volume +. float_of_int r.Probe.volume;
    max_distance = max stats.max_distance r.Probe.distance;
    mean_distance = stats.mean_distance +. float_of_int r.Probe.distance;
    max_queries = max stats.max_queries r.Probe.queries;
    max_rand_bits = max stats.max_rand_bits r.Probe.rand_bits;
    aborted = (stats.aborted + if r.Probe.aborted then 1 else 0);
  }

let finalize stats =
  if stats.runs = 0 then stats
  else
    {
      stats with
      mean_volume = stats.mean_volume /. float_of_int stats.runs;
      mean_distance = stats.mean_distance /. float_of_int stats.runs;
    }

let measure ~world ~solver ?randomness ?budget ~origins () =
  let stats = ref empty in
  let outputs = ref [] in
  List.iter
    (fun v ->
      let r = Probe.run ~world ?randomness ?budget ~origin:v solver.Lcl.solve in
      stats := add !stats r;
      match r.Probe.output with
      | Some o -> outputs := (v, o) :: !outputs
      | None -> ())
    origins;
  (finalize !stats, List.rev !outputs)

let solve_and_check ~world ~problem ~graph ~input ~solver ?randomness () =
  let origins = Graph.nodes graph in
  let stats, outputs = measure ~world ~solver ?randomness ~origins () in
  let tbl = Hashtbl.create (Graph.n graph) in
  List.iter (fun (v, o) -> Hashtbl.replace tbl v o) outputs;
  let valid =
    List.length outputs = Graph.n graph
    && Lcl.is_valid problem graph ~input ~output:(Hashtbl.find tbl)
  in
  (stats, valid)

let sample_origins g ~count ~seed =
  let n = Graph.n g in
  if count >= n then Graph.nodes g
  else begin
    let rng = Splitmix.create seed in
    let chosen = Hashtbl.create count in
    let rec pick acc remaining =
      if remaining = 0 then acc
      else
        let v = Splitmix.int rng ~bound:n in
        if Hashtbl.mem chosen v then pick acc remaining
        else begin
          Hashtbl.add chosen v ();
          pick (v :: acc) (remaining - 1)
        end
    in
    pick [] count
  end
