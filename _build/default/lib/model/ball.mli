(** Ball gathering: simulating distance-bounded (LOCAL) algorithms in the
    probe model (paper Remark 2.3 and Lemma 2.5).

    A LOCAL algorithm with round complexity [T] is a function of the
    radius-[T] neighborhood [N_v(T)].  In the probe model, that
    neighborhood is gathered by a BFS that queries every port of every
    node it reaches — paying volume at most [Δ^T + 1] — after which the
    output can be computed offline from the explored view.  These helpers
    implement that simulation and give algorithms structured access to
    the explored region. *)

val gather : 'i Probe.ctx -> radius:int -> (Vc_graph.Graph.node * int) list
(** [gather ctx ~radius] explores the ball of the given radius around the
    origin by querying all ports in BFS order.  Returns the visited nodes
    with their BFS depth, origin first.  Radii are measured in the
    explored graph, which for balls around the origin coincides with true
    graph distance. *)

val gather_from :
  'i Probe.ctx -> from:Vc_graph.Graph.node -> radius:int -> (Vc_graph.Graph.node * int) list
(** Same, centered on an already-visited node. *)

val adjacency :
  'i Probe.ctx -> Vc_graph.Graph.node -> (int * Vc_graph.Graph.node) list
(** [(port, neighbor)] pairs already resolved at a visited node (free:
    consults the execution history only). *)
