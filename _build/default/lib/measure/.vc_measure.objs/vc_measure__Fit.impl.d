lib/measure/fit.ml: Float Fmt List
