lib/lcl/lcl.ml: Fmt List Result Vc_graph Vc_model
