module TL = Vc_graph.Tree_labels
module Probe = Vc_model.Probe

type 'i pointers = 'i -> TL.ptr * TL.ptr * TL.ptr

let follow ctx v p =
  if p = TL.bot || p < 1 || p > Probe.degree ctx v then None
  else Some (Probe.query ctx ~at:v ~port:p)

let status ~pointers ctx v =
  TL.status_gen
    ~degree:(Probe.degree ctx)
    ~pointers:(fun u -> pointers (Probe.input ctx u))
    ~follow:(fun u p -> Probe.query ctx ~at:u ~port:p)
    v

let is_internal ~pointers ctx v = TL.equal_status (status ~pointers ctx v) TL.Internal

let children ~pointers ctx v =
  match status ~pointers ctx v with
  | TL.Internal ->
      let _, l, r = pointers (Probe.input ctx v) in
      let lc = Probe.query ctx ~at:v ~port:l in
      let rc = Probe.query ctx ~at:v ~port:r in
      Some (lc, rc)
  | TL.Leaf | TL.Inconsistent -> None

let parent ~pointers ctx v =
  match status ~pointers ctx v with
  | TL.Inconsistent -> None
  | TL.Internal | TL.Leaf -> (
      let p, _, _ = pointers (Probe.input ctx v) in
      match follow ctx v p with
      | None -> None
      | Some u -> (
          match children ~pointers ctx u with
          | Some (l, r) when l = v || r = v -> Some u
          | Some _ | None -> None))

let log2_ceil n =
  if n <= 1 then 0
  else
    let rec loop k pow = if pow >= n then k else loop (k + 1) (2 * pow) in
    loop 0 1
