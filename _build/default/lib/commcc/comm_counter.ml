type t = {
  mutable queries : int;
  mutable charged : int;
  mutable bits : int;
  mutable max_bits : int;
}

let create () = { queries = 0; charged = 0; bits = 0; max_bits = 0 }

let charge t ~bits =
  if bits < 0 then invalid_arg "Comm_counter.charge: negative bits";
  t.queries <- t.queries + 1;
  if bits > 0 then begin
    t.charged <- t.charged + 1;
    t.bits <- t.bits + bits;
    if bits > t.max_bits then t.max_bits <- bits
  end

let free t = t.queries <- t.queries + 1

let queries t = t.queries

let charged_queries t = t.charged

let bits t = t.bits

let max_bits_per_query t = t.max_bits

let implied_query_lower_bound t ~comm_lower_bound =
  let b = max 1 t.max_bits in
  comm_lower_bound / b
