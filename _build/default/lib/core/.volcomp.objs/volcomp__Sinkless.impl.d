lib/core/sinkless.ml: Array Fmt Fun Hashtbl List Queue Vc_graph Vc_lcl Vc_model Vc_rng
