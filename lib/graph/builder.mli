(** Constructors for the graph families used throughout the paper.

    All builders produce validated {!Graph.t} values.  Where the paper
    fixes a particular port convention (e.g. the complete binary tree of
    Proposition 3.12: parent on port 1, children on ports 2 and 3, root
    id 1, breadth-first ids), the builder follows it exactly. *)

val path : int -> Graph.t
(** [path n] is the path on [n >= 1] nodes [0 - 1 - ... - n-1]. *)

val cycle : int -> Graph.t
(** [cycle n] is the cycle on [n >= 3] nodes.  Port 1 of node [v] leads
    to [(v+1) mod n] and port 2 to [(v-1) mod n], giving a consistent
    orientation (used by the class-B cycle-coloring problem). *)

val torus : w:int -> h:int -> Graph.t
(** [torus ~w ~h] is the 2-d torus grid on [w * h >= 9] nodes
    ([w, h >= 3], so wraparound never creates a parallel edge).  Node
    [(x, y)] is index [y*w + x]; the port numbering is the grid normal
    form the grid-LCL constructions rely on: port 1 leads east to
    [(x+1 mod w, y)], port 2 west, port 3 north to [(x, y+1 mod h)],
    port 4 south — a globally consistent orientation labelling, the
    torus analogue of {!cycle}'s successor/predecessor ports. *)

val complete_binary_tree : depth:int -> Graph.t
(** [complete_binary_tree ~depth] is the complete rooted binary tree of
    the given depth ([depth >= 0]), with [2^(depth+1) - 1] nodes.  Node 0
    is the root; node [v]'s children are [2v+1] (left) and [2v+2]
    (right).  Ports follow Proposition 3.12: port 1 to the parent
    (non-root), the next two ports to the left and right child
    (non-leaf).  Identifiers are breadth-first starting at 1, so the root
    has id 1. *)

val tree_root : Graph.t -> Graph.node
(** Root of a tree built by {!complete_binary_tree} (always node 0). *)

val tree_parent : depth:int -> Graph.node -> Graph.node option
val tree_left : depth:int -> Graph.node -> Graph.node option
val tree_right : depth:int -> Graph.node -> Graph.node option
(** Structural accessors for {!complete_binary_tree} node numbering;
    [None] at the boundary (root has no parent, leaves no children). *)

val tree_depth_of : Graph.node -> int
(** Depth of a node in the {!complete_binary_tree} numbering (root 0). *)

val leaves_of_complete_tree : depth:int -> Graph.node list
(** Left-to-right list of the [2^depth] leaves. *)

val random_binary_tree : n:int -> rng:Vc_rng.Splitmix.t -> Graph.t
(** A randomly grown rooted binary tree in which every internal node has
    exactly two children.  Such a tree has an odd number of nodes; the
    builder returns exactly [2*m + 1] nodes where [m = (n-1)/2], i.e. [n]
    rounded down to the nearest odd count.  Node 0 is the root; ports
    follow the {!complete_binary_tree} convention (parent first, then
    left and right child). *)

val disjoint_union : Graph.t list -> Graph.t * int array
(** [disjoint_union gs] packs the graphs side by side.  Returns the
    packed graph and the offset of each component's node 0.  Identifiers
    are re-assigned to [1..n] in packing order. *)

val attach : Graph.t -> extra_edges:(Graph.node * Graph.node) list -> Graph.t
(** Add edges to an existing graph.  New edges get the next free ports
    on both endpoints, in list order. *)
