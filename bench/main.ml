(* Benchmark harness.

   Two layers, as promised in DESIGN.md:

   1. the reproduction experiments (vc_measure.Experiments): one report
      per paper table/figure, printing measured cost curves and their
      fitted growth classes against the paper's Θ claims;

   2. Bechamel wall-clock microbenchmarks: one Test.make per paper
      artifact, timing a representative solver execution;

   3. lazy-vs-eager world microbenchmarks (`world-session/*`,
      `probe-hot-path/*`): the before/after evidence that a probe run on
      a lazy world costs Θ(ball), not Θ(n);

   4. batched-IR microbenchmarks (`batched-ir/*`): per-origin throughput
      of Vc_ir.Exec.run_batch against the per-origin closure path, gated
      at >= 10x on the probe-bound rows.

   `dune exec bench/main.exe` runs all three; pass `--quick` (or set
   VOLCOMP_QUICK=1) for the shortened ladders, `--deep` to extend each
   ladder past the standard profile, `--no-wallclock` to skip the
   Bechamel pass, `--micro` to run only layer 3 (the bench-smoke mode),
   `--family SUBSTR` to restrict the report pass to the graph-family
   ladders whose title contains SUBSTR (case-insensitive),
   `--metrics` to collect and print the Vc_obs counters for the whole
   run, `-j N` (or VOLCOMP_JOBS) to size the domain pool, and
   `--json PATH` to also record everything machine-readably (including
   a sequential-vs-parallel speedup entry with the detected core count,
   the serving-layer rows, the instrumentation-overhead row and a
   metrics snapshot).  Exits non-zero when any report has a [MISMATCH]
   fitted class, a world-session microbenchmark falls below a 10x
   lazy-vs-eager speedup, the parallel speedup entry loses to the
   sequential run on a multi-core box (reported but not gated on 1
   core), or the metrics-disabled hot path exceeds its 5% overhead
   gate, so CI can gate on the reproduction, the cost model and the
   observability layer at once. *)

open Bechamel

module Graph = Vc_graph.Graph
module Builder = Vc_graph.Builder
module TL = Vc_graph.Tree_labels
module Probe = Vc_model.Probe
module World = Vc_model.World
module Lcl = Vc_lcl.Lcl
module Randomness = Vc_rng.Randomness
module LC = Volcomp.Leaf_coloring
module BT = Volcomp.Balanced_tree
module H = Volcomp.Hierarchical_thc
module Hy = Volcomp.Hybrid_thc
module HH = Volcomp.Hh_thc
module Adv = Volcomp.Adversary_leaf
module CC = Volcomp.Cycle_coloring
module Gap = Volcomp.Gap_example
module Trivial = Volcomp.Trivial_lcl
module Disjointness = Vc_commcc.Disjointness
module Experiments = Vc_measure.Experiments
module Runner = Vc_measure.Runner
module Fit = Vc_measure.Fit
module Pool = Vc_exec.Pool

let title_contains hay needle =
  let hay = String.lowercase_ascii hay and needle = String.lowercase_ascii needle in
  let rec go i =
    i + String.length needle <= String.length hay
    && (String.sub hay i (String.length needle) = needle || go (i + 1))
  in
  go 0
module Ir_exec = Vc_ir.Exec
module Ir_lib = Vc_ir.Library
module Json = Vc_obs.Json
module Metrics = Vc_obs.Metrics

let run_solver ~world ?randomness ~origin (solver : (_, _) Lcl.solver) () =
  let r = Probe.run ~world ?randomness ~origin solver.Lcl.solve in
  assert (not r.Probe.aborted)

(* One wall-clock microbenchmark per paper artifact. *)
let wallclock_tests () =
  let t1_leaf =
    let inst = LC.hard_distance_instance ~depth:10 ~leaf_color:TL.Blue in
    let world = LC.world inst in
    let rand = Randomness.create ~seed:1L ~n:(Graph.n inst.LC.graph) () in
    Test.make ~name:"table1/leafcoloring/rwtoleaf"
      (Staged.stage (run_solver ~world ~randomness:rand ~origin:0 LC.solve_random_walk))
  in
  let t1_bt =
    let disj = Disjointness.random_promise ~n:64 ~intersecting:false ~seed:2L in
    let inst = BT.embed_disjointness disj in
    let world = BT.world inst in
    Test.make ~name:"table1/balancedtree/descend"
      (Staged.stage (run_solver ~world ~origin:0 BT.solve_distance))
  in
  let t1_hthc2 =
    let inst, hot = H.hard_instance ~k:2 ~target_n:8_000 ~seed:3L in
    let world = H.world inst in
    let rand = Randomness.create ~seed:4L ~n:(Graph.n (H.graph inst)) () in
    Test.make ~name:"table1/hthc2/waypoint"
      (Staged.stage (run_solver ~world ~randomness:rand ~origin:hot (H.solve_waypoint ~k:2 ())))
  in
  let t1_hthc3 =
    let inst, hot = H.hard_instance ~k:3 ~target_n:8_000 ~seed:5L in
    let world = H.world inst in
    Test.make ~name:"table1/hthc3/deterministic"
      (Staged.stage (run_solver ~world ~origin:hot (H.solve_deterministic ~k:3)))
  in
  let t1_hybrid =
    let inst, hot = Hy.hard_instance ~k:2 ~target_n:8_000 ~seed:6L in
    let world = Hy.world inst in
    Test.make ~name:"table1/hybrid/distance"
      (Staged.stage (run_solver ~world ~origin:hot (Hy.solve_distance ~k:2)))
  in
  let t1_hh =
    let inst = HH.uniform_instance ~k:2 ~l:3 ~size_hint:4_000 ~seed:7L in
    let world = HH.world inst in
    Test.make ~name:"table1/hhthc/dispatch"
      (Staged.stage (run_solver ~world ~origin:0 (HH.solve_distance ~k:2 ~l:3)))
  in
  let fig12 =
    let g = Builder.cycle 65536 in
    let world = CC.world g in
    Test.make ~name:"fig1-2/cycle-coloring"
      (Staged.stage (run_solver ~world ~origin:0 CC.solve))
  in
  let fig8 =
    Test.make ~name:"fig8/adversary-duel"
      (Staged.stage (fun () -> ignore (Adv.duel ~claimed_n:1200 LC.solve_distance)))
  in
  let ex76_query =
    let inst = Gap.make ~depth:9 ~seed:8L in
    let world = Gap.world inst in
    let leaf = (Graph.n inst.Gap.graph / 2) - 1 in
    Test.make ~name:"ex7.6/query-climb"
      (Staged.stage (run_solver ~world ~origin:leaf Gap.solve))
  in
  let ex76_congest =
    let inst = Gap.make ~depth:6 ~seed:9L in
    Test.make ~name:"ex7.6/congest-route"
      (Staged.stage (fun () -> ignore (Gap.run_congest inst ~bandwidth:64)))
  in
  let obs74_congest_bt =
    let inst = BT.broken_pair_instance ~depth:7 ~break:31 in
    Test.make ~name:"obs7.4/balancedtree-congest"
      (Staged.stage (fun () -> ignore (Volcomp.Balanced_tree_congest.run inst ())))
  in
  let rem23_local =
    let inst = LC.random_instance ~n:201 ~seed:10L in
    Test.make ~name:"rem2.3/local-gather"
      (Staged.stage (fun () ->
           ignore
             (Vc_model.Local.gather ~graph:inst.LC.graph ~input:(LC.input inst) ~rounds:6)))
  in
  let q73_sinkless =
    let g = Volcomp.Sinkless.random_cubic ~n:120 ~seed:11L in
    let world = Volcomp.Sinkless.world g in
    Test.make ~name:"q7.3/sinkless-global"
      (Staged.stage (run_solver ~world ~origin:0 Volcomp.Sinkless.solve_global))
  in
  Test.make_grouped ~name:"volcomp"
    [
      t1_leaf; t1_bt; t1_hthc2; t1_hthc3; t1_hybrid; t1_hh; fig12; fig8; ex76_query;
      ex76_congest; obs74_congest_bt; rem23_local; q73_sinkless;
    ]

let run_wallclock () =
  let tests = wallclock_tests () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Bechamel.Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (est :: _) -> est
          | Some [] | None -> nan
        in
        (name, ns) :: acc)
      results []
  in
  let rows = List.sort compare rows in
  Fmt.pr "@.== Wall-clock microbenchmarks (one per paper artifact) ==@.";
  List.iter (fun (name, ns) -> Fmt.pr "  %-40s %12.0f ns/run@." name ns) rows;
  rows

(* --- sequential vs parallel speedup --------------------------------------- *)

type speedup = {
  workload : string;
  sp_domains : int;
  sp_cores : int;  (* detected cores: the gate is meaningless on 1 *)
  seq_seconds : float;
  par_seconds : float;
  speedup : float;
}

(* A parallel run must not lose to the sequential one — but only where
   parallelism is physically possible.  On a 1-core box (CI containers)
   the criterion is reported and skipped, not gated. *)
let speedup_gated s = s.sp_cores >= 2 && s.sp_domains >= 2
let speedup_ok s = (not (speedup_gated s)) || s.speedup >= 1.0

(* Full-graph solve_and_check: n independent probe runs, each paying a
   session BFS — the embarrassingly parallel hot loop of every report. *)
let measure_speedup ~pool ~quick =
  let depth = if quick then 10 else 12 in
  let inst = LC.hard_distance_instance ~depth ~leaf_color:TL.Blue in
  let world = LC.world inst in
  let solve pool =
    Runner.solve_and_check ~world ~problem:LC.problem ~graph:inst.LC.graph
      ~input:(LC.input inst) ~solver:LC.solve_distance ?pool ()
  in
  let time pool =
    let t0 = Unix.gettimeofday () in
    let stats, valid = solve pool in
    let dt = Unix.gettimeofday () -. t0 in
    (dt, stats, valid)
  in
  let seq_seconds, seq_stats, seq_valid = time None in
  let par_seconds, par_stats, par_valid = time pool in
  if not (seq_valid && par_valid && seq_stats = par_stats) then
    failwith "speedup workload: parallel run diverged from sequential run";
  let sp_domains = match pool with Some p -> Pool.domains p | None -> 1 in
  {
    workload = Printf.sprintf "leafcoloring/solve_and_check/depth-%d" depth;
    sp_domains;
    sp_cores = Domain.recommended_domain_count ();
    seq_seconds;
    par_seconds;
    speedup = seq_seconds /. par_seconds;
  }

(* --- lazy vs eager world microbenchmarks ----------------------------------- *)

type micro_row = {
  m_name : string;
  m_lazy_ns : float;
  m_eager_ns : float option;  (* None for rows without an eager twin *)
  m_gate : bool;
      (* enforce the >= 10x lazy-vs-eager bar; off for control rows whose
         solver explores nearly the whole graph, where the two worlds
         must merely tie *)
}

let micro_speedup r = Option.map (fun eager -> eager /. r.m_lazy_ns) r.m_eager_ns

(* Adaptive wall-clock timing: after one warm-up call, grow the
   repetition count geometrically until a batch takes >= 50ms, then
   report ns per repetition.  Bechamel would be overkill here — these
   rows only need enough resolution to witness an order-of-magnitude
   gap. *)
let time_ns f =
  f ();
  let rec go reps =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      f ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if dt >= 0.05 then dt *. 1e9 /. float_of_int reps else go (reps * 4)
  in
  go 1

(* The before/after evidence for the lazy-world rewrite.  Each probe run
   opens a fresh session; on an eager world that costs a full-graph BFS,
   on a lazy world only the ball the solver actually explores.  Sizes
   are pinned at the largest quick-ladder rungs so the quick and full
   profiles measure the same workloads. *)
let run_micro () =
  let probe ~world ?randomness ~origin (solver : (_, _) Lcl.solver) () =
    let r = Probe.run ~world ?randomness ~origin solver.Lcl.solve in
    assert (not r.Probe.aborted)
  in
  let cycle =
    (* The acceptance row: Cole–Vishkin touches a log*-sized ball of the
       largest quick-ladder cycle, so per-session cost is the session
       setup itself. *)
    let n = 65536 in
    let g = Builder.cycle n in
    let lazy_world = CC.world g in
    let eager_world = World.of_graph_eager g ~input:(fun _ -> ()) in
    {
      m_name = Printf.sprintf "world-session/cycle-coloring-%d" n;
      m_lazy_ns = time_ns (probe ~world:lazy_world ~origin:0 CC.solve);
      m_eager_ns = Some (time_ns (probe ~world:eager_world ~origin:0 CC.solve));
      m_gate = true;
    }
  in
  let parity =
    (* Class A's DegreeParity (Figures 1–2): volume and distance are
       Θ(1), so the whole probe run is session setup — the purest
       measurement of per-session cost on a 2^16-node tree. *)
    let depth = 15 in
    let g = Builder.complete_binary_tree ~depth in
    let lazy_world = Trivial.world g in
    let eager_world = World.of_graph_eager g ~input:(fun _ -> ()) in
    {
      m_name = Printf.sprintf "world-session/degree-parity-%d" (Graph.n g);
      m_lazy_ns = time_ns (probe ~world:lazy_world ~origin:0 Trivial.solve);
      m_eager_ns = Some (time_ns (probe ~world:eager_world ~origin:0 Trivial.solve));
      m_gate = true;
    }
  in
  let leaf_control =
    (* Control: RWtoLeaf's distance solver explores nearly the whole
       hard instance, so laziness cannot win — it must only not lose. *)
    let inst = LC.hard_distance_instance ~depth:10 ~leaf_color:TL.Blue in
    let lazy_world = LC.world inst in
    let eager_world = World.of_graph_eager inst.LC.graph ~input:(LC.input inst) in
    {
      m_name = "world-session/leafcoloring-depth-10";
      m_lazy_ns = time_ns (probe ~world:lazy_world ~origin:0 LC.solve_distance);
      m_eager_ns = Some (time_ns (probe ~world:eager_world ~origin:0 LC.solve_distance));
      m_gate = false;
    }
  in
  let hot_path =
    let steps = 256 in
    let g = Builder.cycle 65536 in
    let world = CC.world g in
    (* March [steps] hops around the cycle, never backtracking, so every
       query lands on a fresh node: a pure exercise of the query ->
       admit -> incremental-BFS path with no solver logic on top. *)
    let walk ctx =
      let prev = ref (-1) in
      let at = ref (Probe.origin ctx) in
      for _ = 1 to steps do
        let a = Probe.query ctx ~at:!at ~port:1 in
        let next = if a <> !prev then a else Probe.query ctx ~at:!at ~port:2 in
        prev := !at;
        at := next
      done;
      !at
    in
    {
      m_name = Printf.sprintf "probe-hot-path/cycle-walk-%d" steps;
      m_lazy_ns = time_ns (fun () -> ignore (Probe.run ~world ~origin:0 walk : Graph.node Probe.result));
      m_eager_ns = None;
      m_gate = false;
    }
  in
  [ cycle; parity; leaf_control; hot_path ]

let pp_micro rows =
  Fmt.pr "@.== Lazy vs eager world microbenchmarks ==@.";
  List.iter
    (fun r ->
      match (r.m_eager_ns, micro_speedup r) with
      | Some eager, Some s ->
          Fmt.pr "  %-38s lazy %10.0f ns/run   eager %12.0f ns/run   speedup %8.1fx%s@." r.m_name
            r.m_lazy_ns eager s
            (if r.m_gate then "" else "   (solver-bound control)")
      | _ -> Fmt.pr "  %-38s lazy %10.0f ns/run@." r.m_name r.m_lazy_ns)
    rows

let micro_ok rows =
  List.for_all
    (fun r ->
      if not r.m_gate then true
      else match micro_speedup r with Some s -> s >= 10.0 | None -> true)
    rows

(* --- batched-IR vs closure microbenchmarks ---------------------------------- *)

type ir_row = {
  i_name : string;
  i_batched_ns : float;  (* Vc_ir.Exec.run_batch, ns per origin *)
  i_closure_ns : float;  (* one Probe.run per origin, ns per origin *)
  i_gate : bool;
      (* enforce the >= 10x batched-vs-closure bar; off for control rows
         whose solver is ball-bound (the executor pays the same BFS the
         closure does, so batching can only shave dispatch) *)
}

let ir_speedup r = r.i_closure_ns /. r.i_batched_ns

(* The perf evidence for the IR port: on probe-bound problems — O(1) or
   O(log* n) queries per origin, so the closure path is dominated by
   per-origin session setup, closure dispatch and allocation — the
   allocation-free executor must clear 10x.  Both sides run the
   registry-checked oracle pairs (probe 8 proves them result-identical),
   so this is a pure same-answer throughput comparison: one
   [run_batch_into] over a sink versus one [Probe.run] per origin. *)
let run_ir_micro () =
  let row ~name ~gate ~none spec ~graph ~input ~world ~(solver : (_, _) Lcl.solver) ~count =
    let origins = Array.of_list (Runner.sample_origins graph ~count ~seed:7L) in
    let snk = Ir_exec.sink ~none (Array.length origins) in
    let batched () = Ir_exec.run_batch_into spec ~graph ~input ~origins ~sink:snk in
    let closure () =
      Array.iter
        (fun v -> ignore (Probe.run ~world ~origin:v solver.Lcl.solve : _ Probe.result))
        origins
    in
    let k = float_of_int (Array.length origins) in
    (* Min-of-3 per side (the [measure_obs_overhead] pattern): the min of
       repeated >= 50ms windows discards GC pauses and scheduler
       interference, which otherwise wobble the gated ratio by +-15% on a
       busy host. *)
    let min3 f = Float.min (time_ns f) (Float.min (time_ns f) (time_ns f)) in
    {
      i_name = name;
      i_batched_ns = min3 batched /. k;
      i_closure_ns = min3 closure /. k;
      i_gate = gate;
    }
  in
  let parity =
    let g = Builder.complete_binary_tree ~depth:15 in
    row
      ~name:(Printf.sprintf "batched-ir/degree-parity-%d" (Graph.n g))
      ~gate:true ~none:Trivial.Even Ir_lib.degree_parity ~graph:g
      ~input:(fun _ -> ())
      ~world:(Trivial.world g) ~solver:Trivial.solve ~count:65535
  in
  let cycle =
    let n = 65536 in
    let g = Builder.cycle n in
    row
      ~name:(Printf.sprintf "batched-ir/cycle-coloring-%d" n)
      ~gate:true ~none:0 (Ir_lib.cycle_coloring ~n) ~graph:g
      ~input:(fun _ -> ())
      ~world:(CC.world g) ~solver:CC.solve ~count:n
  in
  let status =
    let inst = LC.random_instance ~n:65535 ~seed:1L in
    row ~name:"batched-ir/probe-tree-status-65535" ~gate:false ~none:TL.Internal
      Ir_lib.probe_tree_status ~graph:inst.LC.graph ~input:(LC.input inst)
      ~world:(LC.world inst) ~solver:Ir_lib.status_solver ~count:16384
  in
  let leaf_control =
    let inst = LC.random_instance ~n:2047 ~seed:1L in
    row ~name:"batched-ir/leaf-coloring-2047" ~gate:false ~none:TL.Red Ir_lib.leaf_coloring
      ~graph:inst.LC.graph ~input:(LC.input inst) ~world:(LC.world inst)
      ~solver:LC.solve_distance ~count:256
  in
  [ parity; cycle; status; leaf_control ]

let pp_ir_micro rows =
  Fmt.pr "@.== Batched-IR vs closure microbenchmarks ==@.";
  List.iter
    (fun r ->
      Fmt.pr "  %-38s batched %8.0f ns/origin   closure %10.0f ns/origin   speedup %8.1fx%s@."
        r.i_name r.i_batched_ns r.i_closure_ns (ir_speedup r)
        (if r.i_gate then "" else "   (ball-bound control)"))
    rows

let ir_micro_ok rows = List.for_all (fun r -> (not r.i_gate) || ir_speedup r >= 10.0) rows

let ir_micro_json rows =
  Json.List
    (List.map
       (fun r ->
         Json.Obj
           [
             ("name", Json.String r.i_name);
             ("batched_ns", Json.Float r.i_batched_ns);
             ("closure_ns", Json.Float r.i_closure_ns);
             ("speedup", Json.Float (ir_speedup r));
             ("gated", Json.Bool r.i_gate);
           ])
       rows)

(* --- serving-layer microbenchmarks ------------------------------------------- *)

type serve_row = { sv_name : string; sv_ns : float }

(* Steady-state cost of one served request, without the socket: the
   warm-cache row is a cache hit plus one reference probe run plus the
   payload encode (the daemon's per-request compute), the codec row is
   encode → frame → incremental decode → parse of a representative
   request (the pure protocol overhead a request pays on top). *)
let run_serve_micro () =
  let module P = Vc_serve.Protocol in
  let entries = Vc_check.Registry.all () in
  let handler = Vc_serve.Handler.create ~entries () in
  let e = List.hd entries in
  let size = List.fold_left min (List.hd e.Vc_check.Registry.quick_sizes) e.Vc_check.Registry.quick_sizes in
  let problem = e.Vc_check.Registry.name in
  let probe_q = P.Probe { problem; size; seed = 1L; origin = 0 } in
  (match Vc_serve.Handler.handle handler probe_q with
  | Ok _ -> ()
  | Error (_, msg) -> failwith ("serve micro warm-up: " ^ msg));
  let warm =
    {
      sv_name = Printf.sprintf "serve/probe-warm-cache/%s" problem;
      sv_ns =
        time_ns (fun () ->
            match Vc_serve.Handler.handle handler probe_q with
            | Ok _ -> ()
            | Error _ -> assert false);
    }
  in
  let req = { P.id = 1; deadline_ms = Some 1000; query = probe_q } in
  let codec =
    {
      sv_name = "serve/request-codec";
      sv_ns =
        time_ns (fun () ->
            let wire = P.frame (Json.to_string (P.request_to_json req)) in
            let dec = P.decoder () in
            P.feed dec (Bytes.of_string wire) (String.length wire);
            match P.next_frame dec with
            | Ok (Some body) -> (
                match Result.bind (Json.parse body) P.request_of_json with
                | Ok _ -> ()
                | Error _ -> assert false)
            | _ -> assert false);
    }
  in
  [ warm; codec ]

let pp_serve rows =
  Fmt.pr "@.== Serving-layer microbenchmarks ==@.";
  List.iter (fun r -> Fmt.pr "  %-38s %10.0f ns/request@." r.sv_name r.sv_ns) rows

let serve_json rows =
  Json.List
    (List.map
       (fun r ->
         Json.Obj [ ("name", Json.String r.sv_name); ("ns_per_request", Json.Float r.sv_ns) ])
       rows)

(* --- snapshot-load vs cold-build microbenchmarks ----------------------------- *)

type snap_row = {
  sn_name : string;
  sn_build_ns : float;  (* cold Registry.make, no store: full instance build *)
  sn_load_ns : float;  (* Registry.make against a warm store: one mmap load *)
  sn_bytes : int;  (* on-disk snapshot size *)
}

let snap_gate = 10.0
let snap_speedup r = r.sn_build_ns /. r.sn_load_ns
let snap_ok rows = List.for_all (fun r -> snap_speedup r >= snap_gate) rows

(* The perf evidence for the snapshot tier: warming a session from the
   store must beat building the instance from scratch by >= 10x on the
   two largest ladder sizes of each benched problem.  Both paths go
   through the same [Registry.make] entry point (oracle probe 10 proves
   them byte-identical), so this is a pure same-answer cost comparison:
   graph construction + labelling versus one [Unix.map_file] plus a
   header checksum — the load side is O(1) in the instance, which is
   the whole point. *)
let run_snap_micro ~quick =
  let module R = Vc_check.Registry in
  let entry name = List.find (fun (e : R.entry) -> e.R.name = name) (R.all ()) in
  let row (e : R.entry) ~size =
    let dir = Filename.temp_file "volcomp-snapbench" "" in
    Sys.remove dir;
    let store = R.store ~dir in
    Fun.protect
      ~finally:(fun () ->
        List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) (R.Store.files store);
        try Unix.rmdir dir with Unix.Unix_error _ -> ())
      (fun () ->
        let seed = 42L in
        (* publish once so the timed path below is a pure store hit *)
        ignore (e.R.acquire ~store ~size ~seed () : int);
        let bytes =
          List.fold_left (fun acc p -> acc + (Unix.stat p).Unix.st_size) 0 (R.Store.files store)
        in
        let min3 f = Float.min (time_ns f) (Float.min (time_ns f) (time_ns f)) in
        let build () = ignore (e.R.make ~size ~seed () : R.trial) in
        let load () =
          let t = e.R.make ~store ~size ~seed () in
          assert (t.R.t_source = `Snapshot)
        in
        {
          sn_name = Printf.sprintf "snap/%s-%d" e.R.name size;
          sn_build_ns = min3 build;
          sn_load_ns = min3 load;
          sn_bytes = bytes;
        })
  in
  (* the two largest sizes of each problem's bench ladder; --quick drops
     rungs so the smoke run stays fast without leaving the regime where
     building dominates loading — LeafColoring below 4095 brushes the
     gate on a loaded single-CPU box, so quick starts there *)
  let cycle_sizes = if quick then [ 1 lsl 15; 1 lsl 16 ] else [ 1 lsl 17; 1 lsl 18 ] in
  let leaf_sizes = if quick then [ 4095; 8191 ] else [ 8191; 16383 ] in
  List.map (fun size -> row (entry "CycleColoring3") ~size) cycle_sizes
  @ List.map (fun size -> row (entry "LeafColoring") ~size) leaf_sizes

let pp_snap rows =
  Fmt.pr "@.== Snapshot-load vs cold-build microbenchmarks (gate %.0fx) ==@." snap_gate;
  List.iter
    (fun r ->
      Fmt.pr "  %-38s build %11.0f ns   load %9.0f ns   %9d bytes   speedup %8.1fx   [%s]@."
        r.sn_name r.sn_build_ns r.sn_load_ns r.sn_bytes (snap_speedup r)
        (if snap_speedup r >= snap_gate then "ok" else "FAIL"))
    rows

let snap_json rows =
  Json.List
    (List.map
       (fun r ->
         Json.Obj
           [
             ("name", Json.String r.sn_name);
             ("build_ns", Json.Float r.sn_build_ns);
             ("load_ns", Json.Float r.sn_load_ns);
             ("bytes", Json.Int r.sn_bytes);
             ("speedup", Json.Float (snap_speedup r));
             ("ok", Json.Bool (snap_speedup r >= snap_gate));
           ])
       rows)

(* --- session re-warm through the serving layer -------------------------------- *)

type rewarm_row = {
  rw_problem : string;
  rw_size : int;
  rw_build_ns : float;  (* fresh handler, no store: the warm rebuilds *)
  rw_snap_ns : float;  (* fresh handler over a warm store: snapshot load *)
}

(* What a respawned shard worker pays per warm-ledger entry: a fresh
   handler's first [Warm] of the session.  The same build-vs-load
   comparison as the snap rows, one layer up — through
   [Handler.handle] — so it carries the cache and payload overhead a
   worker actually sees.  Each sample needs a fresh handler (a repeat
   window would hit the session cache), so this is single-shot wall
   timing, best of 5.  Report-only: the 10x gate lives on the snap
   rows, and the fork-level version is asserted end to end by
   @shard-smoke and @snap-smoke. *)
let run_rewarm_micro ~quick =
  let module R = Vc_check.Registry in
  let module Handler = Vc_serve.Handler in
  let module Protocol = Vc_serve.Protocol in
  let problem = "CycleColoring3" in
  let size = if quick then 1 lsl 15 else 1 lsl 17 in
  let seed = 42L in
  let dir = Filename.temp_file "volcomp-rewarmbench" "" in
  Sys.remove dir;
  let store = R.store ~dir in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) (R.Store.files store);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      let e = List.find (fun (e : R.entry) -> e.R.name = problem) (R.all ()) in
      ignore (e.R.acquire ~store ~size ~seed () : int);
      let warm_once ?store () =
        let h = Handler.create ?store () in
        let t0 = Unix.gettimeofday () in
        (match Handler.handle h (Protocol.Warm { problem; size; seed }) with
        | Ok _ -> ()
        | Error (_, msg) -> failwith ("rewarm micro: " ^ msg));
        (Unix.gettimeofday () -. t0) *. 1e9
      in
      let best f = List.fold_left (fun acc () -> Float.min acc (f ())) (f ()) [ (); (); (); () ] in
      {
        rw_problem = problem;
        rw_size = size;
        rw_build_ns = best (fun () -> warm_once ());
        rw_snap_ns = best (fun () -> warm_once ~store ());
      })

let pp_rewarm r =
  Fmt.pr "@.== Session re-warm through the serving layer (report-only) ==@.";
  Fmt.pr "  rewarm/%s-%d %26s %11.0f ns   snapshot %9.0f ns   speedup %8.1fx@." r.rw_problem
    r.rw_size "rebuild" r.rw_build_ns r.rw_snap_ns (r.rw_build_ns /. r.rw_snap_ns)

let rewarm_json r =
  Json.Obj
    [
      ("problem", Json.String r.rw_problem);
      ("size", Json.Int r.rw_size);
      ("rebuild_ns", Json.Float r.rw_build_ns);
      ("snapshot_ns", Json.Float r.rw_snap_ns);
      ("speedup", Json.Float (r.rw_build_ns /. r.rw_snap_ns));
    ]

(* --- instrumentation-overhead gate ------------------------------------------ *)

type obs_overhead = {
  oo_workload : string;
  oo_baseline_ns : float;
  oo_disabled_ns : float;
  oo_enabled_ns : float;
}

let obs_gate = 1.05

let obs_ok o = o.oo_disabled_ns <= (obs_gate *. o.oo_baseline_ns)

(* The metrics counters compile into every hot path, so a literally
   uninstrumented binary no longer exists to time against.  What the 5%
   gate asserts instead is that the *disabled* path is free: baseline and
   disabled interleave min-of-3 timings of the identical machine code
   (collection off), so a gap above noise would mean the enabled-flag
   branch is not the whole disabled-path cost.  The enabled timing rides
   along for the report and also populates the counters behind the JSON
   [metrics] section. *)
let measure_obs_overhead () =
  let n = 65536 in
  let g = Builder.cycle n in
  let world = CC.world g in
  let workload () =
    let r = Probe.run ~world ~origin:0 CC.solve.Lcl.solve in
    assert (not r.Probe.aborted)
  in
  let prev = Metrics.enabled () in
  Metrics.set_enabled false;
  let baseline = ref infinity and disabled = ref infinity and enabled = ref infinity in
  for _ = 1 to 3 do
    baseline := Float.min !baseline (time_ns workload);
    disabled := Float.min !disabled (time_ns workload);
    Metrics.set_enabled true;
    enabled := Float.min !enabled (time_ns workload);
    Metrics.set_enabled false
  done;
  Metrics.set_enabled prev;
  {
    oo_workload = Printf.sprintf "world-session/cycle-coloring-%d" n;
    oo_baseline_ns = !baseline;
    oo_disabled_ns = !disabled;
    oo_enabled_ns = !enabled;
  }

let pp_obs o =
  Fmt.pr "@.== Instrumentation overhead (metrics disabled must be within %.0f%%) ==@."
    ((obs_gate -. 1.0) *. 100.0);
  Fmt.pr "  %-38s baseline %8.0f ns/run   disabled %8.0f ns/run   enabled %8.0f ns/run   [%s]@."
    o.oo_workload o.oo_baseline_ns o.oo_disabled_ns o.oo_enabled_ns
    (if obs_ok o then "ok" else "FAIL")

(* --- SAT-synthesis cost rows -------------------------------------------------- *)

type synth_row = {
  sy_problem : string;
  sy_volume : int;
  sy_sat : bool;
  sy_cegis : int;
  sy_conflicts : int;
  sy_propagations : int;
  sy_vars : int;
  sy_clauses : int;
  sy_wall_s : float;
}

(* Report-only: wall clock and solver effort for the cheap rungs of each
   problem's classification ladder — the SAT rung at the known-feasible
   volume and the UNSAT rung pinned by the spec.  (The deep cycle
   budget-2 refutation stays out of the bench: ~10^5 conflicts, minutes
   of one-core CPU; see EXPERIMENTS.md.)  The verdicts themselves are
   enforced by oracle probe "synth" and @synth-smoke; these rows track
   what obtaining them costs. *)
let run_synth_micro () =
  let module C = Vc_synth.Classify in
  let module E = Vc_synth.Encode in
  List.concat_map
    (fun (s : C.spec) ->
      List.map
        (fun volume ->
          match C.run s ~volume with
          | Error msg -> failwith (Printf.sprintf "synth bench %s: %s" s.C.s_name msg)
          | Ok v ->
              let r = v.C.v_report in
              {
                sy_problem = s.C.s_name;
                sy_volume = volume;
                sy_sat = v.C.v_sat;
                sy_cegis = r.E.cegis_iters;
                sy_conflicts = r.E.sat_stats.Vc_synth.Sat.conflicts;
                sy_propagations = r.E.sat_stats.Vc_synth.Sat.propagations;
                sy_vars = r.E.n_vars;
                sy_clauses = r.E.n_clauses;
                sy_wall_s = r.E.wall_s;
              })
        [ s.C.s_volume; s.C.s_unsat_volume ])
    (C.specs ())

let pp_synth rows =
  Fmt.pr "@.== SAT-synthesis cost (report-only; verdicts gated by @synth-smoke) ==@.";
  List.iter
    (fun r ->
      Fmt.pr
        "  %-16s vol<=%d  %-5s  cegis %2d  conflicts %8d  props %10d  vars %7d  clauses \
         %8d  %7.3fs@."
        r.sy_problem r.sy_volume
        (if r.sy_sat then "SAT" else "UNSAT")
        r.sy_cegis r.sy_conflicts r.sy_propagations r.sy_vars r.sy_clauses r.sy_wall_s)
    rows

let synth_json rows =
  Json.List
    (List.map
       (fun r ->
         Json.Obj
           [
             ("problem", Json.String r.sy_problem);
             ("volume", Json.Int r.sy_volume);
             ("sat", Json.Bool r.sy_sat);
             ("cegis", Json.Int r.sy_cegis);
             ("conflicts", Json.Int r.sy_conflicts);
             ("propagations", Json.Int r.sy_propagations);
             ("vars", Json.Int r.sy_vars);
             ("clauses", Json.Int r.sy_clauses);
             ("wall_s", Json.Float r.sy_wall_s);
           ])
       rows)

(* --- machine-readable output (via the shared Vc_obs.Json encoder) ----------- *)

let measurement_json m =
  Json.Obj
    [
      ("quantity", Json.String m.Experiments.quantity);
      ("paper_claim", Json.String m.Experiments.paper_claim);
      ("fitted", Json.String (Fmt.str "%a" Fit.pp_model (Experiments.fitted m)));
      ("agrees", Json.Bool (Experiments.agrees m));
      ( "points",
        Json.List
          (List.map (fun (n, y) -> Json.List [ Json.Int n; Json.Float y ]) m.Experiments.points)
      );
    ]

let report_json r =
  Json.Obj
    [
      ("title", Json.String r.Experiments.title);
      ("all_agree", Json.Bool (Experiments.all_agree r));
      ("measurements", Json.List (List.map measurement_json r.Experiments.measurements));
    ]

let micro_json rows =
  Json.List
    (List.map
       (fun r ->
         let opt = function Some v -> Json.Float v | None -> Json.Null in
         Json.Obj
           [
             ("name", Json.String r.m_name);
             ("lazy_ns", Json.Float r.m_lazy_ns);
             ("eager_ns", opt r.m_eager_ns);
             ("speedup", opt (micro_speedup r));
           ])
       rows)

let obs_json o =
  Json.Obj
    [
      ("workload", Json.String o.oo_workload);
      ("baseline_ns", Json.Float o.oo_baseline_ns);
      ("disabled_ns", Json.Float o.oo_disabled_ns);
      ("enabled_ns", Json.Float o.oo_enabled_ns);
      ("gate", Json.Float obs_gate);
      ("ok", Json.Bool (obs_ok o));
    ]

(* --- open-loop saturation of the sharded tier -------------------------------- *)

type sat_step = { st_rate : float; st_achieved : float; st_shed : float }

type saturation = {
  sat_workers : int;
  sat_steps : sat_step list;
  sat_rps : float;  (** highest achieved throughput with shed below the gate *)
}

let sat_shed_gate = 0.01

(* Spawn a real 2-worker sharded tier of the CLI binary and ramp an
   open-loop Poisson arrival rate through it.  The saturation figure is
   the highest *achieved* throughput among steps that shed less than 1%
   of arrivals — past the knee the supervisor sheds instead of queueing
   without bound, so achieved throughput flattens while shed climbs. *)
let measure_saturation ~exe ~quick =
  let workers = 2 in
  let socket = Filename.temp_file "volcomp-sat" ".sock" in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let pid =
    Unix.create_process exe
      [| exe; "serve"; "--workers"; string_of_int workers; "--socket"; socket |]
      devnull devnull Unix.stderr
  in
  Unix.close devnull;
  let connect () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX socket);
    fd
  in
  let rec wait tries =
    if tries = 0 then failwith "saturation: sharded server did not come up within 10 s"
    else
      match connect () with
      | fd -> Unix.close fd
      | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT | Unix.ENOTSOCK), _, _)
        ->
          Unix.sleepf 0.01;
          wait (tries - 1)
  in
  wait 1000;
  let rates =
    if quick then [ 250.; 1000.; 4000. ] else [ 250.; 500.; 1000.; 2000.; 4000.; 8000. ]
  in
  let last = List.length rates - 1 in
  let steps =
    List.mapi
      (fun i rate ->
        let requests = min 400 (max 120 (int_of_float (rate /. 4.))) in
        let cfg =
          {
            Vc_serve.Loadgen.o_rate = rate;
            o_requests = requests;
            o_conns = None;
            o_mix = Vc_serve.Loadgen.default_mix;
            o_seed = 42L;
            o_verify = false;
            o_shutdown = i = last;
            o_prewarm = true;
          }
        in
        match Vc_serve.Loadgen.run_open ~connect cfg with
        | Ok s ->
            {
              st_rate = rate;
              st_achieved = s.Vc_serve.Loadgen.os_achieved;
              st_shed =
                float_of_int s.Vc_serve.Loadgen.os_shed
                /. float_of_int (max 1 s.Vc_serve.Loadgen.os_requests);
            }
        | Error msg ->
            (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
            failwith ("saturation: " ^ msg))
      rates
  in
  ignore (Unix.waitpid [] pid);
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let sat_rps =
    List.fold_left
      (fun acc st -> if st.st_shed < sat_shed_gate then Float.max acc st.st_achieved else acc)
      0. steps
  in
  { sat_workers = workers; sat_steps = steps; sat_rps }

let pp_saturation s =
  Fmt.pr "@.== Open-loop saturation (%d shard workers, shed gate %.0f%%) ==@." s.sat_workers
    (sat_shed_gate *. 100.);
  List.iter
    (fun st ->
      Fmt.pr "  target %7.0f rps   achieved %8.1f rps   shed %5.1f%%@." st.st_rate
        st.st_achieved (st.st_shed *. 100.))
    s.sat_steps;
  Fmt.pr "  saturation throughput: %.1f rps@." s.sat_rps

let saturation_json = function
  | None -> Json.Null
  | Some s ->
      Json.Obj
        [
          ("workers", Json.Int s.sat_workers);
          ("shed_gate", Json.Float sat_shed_gate);
          ("saturation_rps", Json.Float s.sat_rps);
          ( "steps",
            Json.List
              (List.map
                 (fun st ->
                   Json.Obj
                     [
                       ("rate_rps", Json.Float st.st_rate);
                       ("achieved_rps", Json.Float st.st_achieved);
                       ("shed", Json.Float st.st_shed);
                     ])
                 s.sat_steps) );
        ]

let write_json ~path ~quick ~domains ~reports ~families ~wallclock ~speedup ~micro ~ir_micro
    ~snap ~rewarm ~serve ~saturation ~obs ~synth =
  let wallclock_json =
    match wallclock with
    | None -> Json.Null
    | Some rows ->
        Json.List
          (List.map
             (fun (name, ns) ->
               Json.Obj [ ("name", Json.String name); ("ns_per_run", Json.Float ns) ])
             rows)
  in
  let speedup_json =
    match speedup with
    | None -> Json.Null
    | Some s ->
        Json.Obj
          [
            ("workload", Json.String s.workload);
            ("domains", Json.Int s.sp_domains);
            ("cores", Json.Int s.sp_cores);
            ("seq_seconds", Json.Float s.seq_seconds);
            ("par_seconds", Json.Float s.par_seconds);
            ("speedup", Json.Float s.speedup);
            ("gated", Json.Bool (speedup_gated s));
            ("ok", Json.Bool (speedup_ok s));
          ]
  in
  let doc =
    Json.Obj
      [
        ("quick", Json.Bool quick);
        ("domains", Json.Int domains);
        ("reports", Json.List (List.map report_json reports));
        ("families", Json.List (List.map report_json families));
        ("wallclock", wallclock_json);
        ("speedup", speedup_json);
        ("micro", micro_json micro);
        ("ir_micro", ir_micro_json ir_micro);
        ("snap", snap_json snap);
        ("rewarm", rewarm_json rewarm);
        ("serve", serve_json serve);
        ("saturation", saturation_json saturation);
        ("synth", (match synth with None -> Json.Null | Some rows -> synth_json rows));
        ("obs_overhead", obs_json obs);
        ("metrics", Metrics.to_json ());
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc

(* --- entry ------------------------------------------------------------------ *)

let parse_args () =
  let argv = Sys.argv in
  let quick = ref (Sys.getenv_opt "VOLCOMP_QUICK" = Some "1") in
  let deep = ref false in
  let micro = ref false in
  let synth = ref false in
  let wallclock = ref true in
  let metrics = ref false in
  let json = ref None in
  let jobs = ref None in
  let serve_exe = ref None in
  let family = ref None in
  let i = ref 1 in
  while !i < Array.length argv do
    (match argv.(!i) with
    | "--quick" -> quick := true
    | "--deep" -> deep := true
    | "--micro" -> micro := true
    | "--synth" -> synth := true
    | "--no-wallclock" -> wallclock := false
    | "--metrics" -> metrics := true
    | "--json" ->
        incr i;
        if !i >= Array.length argv then failwith "--json requires a path";
        json := Some argv.(!i)
    | "--serve-exe" ->
        incr i;
        if !i >= Array.length argv then failwith "--serve-exe requires a path";
        serve_exe := Some argv.(!i)
    | "--family" ->
        incr i;
        if !i >= Array.length argv then failwith "--family requires a substring";
        family := Some argv.(!i)
    | "-j" | "--jobs" ->
        incr i;
        let bad () = failwith "-j requires a positive integer" in
        if !i >= Array.length argv then bad ();
        (match int_of_string_opt argv.(!i) with
        | Some j when j >= 1 -> jobs := Some j
        | Some _ | None -> bad ())
    | arg -> failwith (Printf.sprintf "unknown argument %S" arg));
    incr i
  done;
  (!quick, !deep, !micro, !synth, !wallclock, !metrics, !json, !jobs, !serve_exe, !family)

let () =
  let quick, deep, micro_only, synth_flag, wallclock, metrics, json, jobs, serve_exe, family =
    parse_args ()
  in
  if metrics then Metrics.set_enabled true;
  let domains = match jobs with Some j -> j | None -> Pool.default_domains () in
  let pool = if domains > 1 then Some (Pool.create ~domains ()) else None in
  Fmt.pr "volcomp benchmark harness — reproducing every table and figure of@.";
  Fmt.pr "\"Seeing Far vs. Seeing Wide\" (Rosenbaum & Suomela, PODC 2020)%s [%d domain%s]@.@."
    (if micro_only then " [microbenchmarks only]"
     else if deep then " [deep ladders]"
     else if quick then " [quick ladders]"
     else "")
    domains
    (if domains = 1 then "" else "s");
  let reports =
    if micro_only then []
    else begin
      let reports =
        match family with
        | Some f ->
            (* family mode: only the graph-family ladders, filtered by title *)
            List.filter
              (fun r -> title_contains r.Experiments.title f)
              (Experiments.family_ladders ?pool ~deep ~quick ())
        | None -> Experiments.all ?pool ~deep ~quick ()
      in
      List.iter (fun r -> Fmt.pr "%a@." Experiments.pp_report r) reports;
      let agreements = List.filter Experiments.all_agree reports in
      Fmt.pr "== Summary: %d/%d reports have every fitted class within the paper's claim ==@."
        (List.length agreements) (List.length reports);
      reports
    end
  in
  (* the families JSON section is always present, even under --micro (the
     bench-smoke profile): the quick family ladders cost well under a
     second, so the smoke JSON still carries Question 7.3's measured
     sinkless-orientation rungs for json_check to validate *)
  let families =
    if micro_only then begin
      let fams = Experiments.family_ladders ?pool ~quick:true () in
      List.iter (fun r -> Fmt.pr "%a@." Experiments.pp_report r) fams;
      fams
    end
    else List.filter (fun r -> title_contains r.Experiments.title "Families:") reports
  in
  let wallclock_rows = if wallclock && not micro_only then Some (run_wallclock ()) else None in
  let micro = run_micro () in
  pp_micro micro;
  let ir_micro = run_ir_micro () in
  pp_ir_micro ir_micro;
  let snap = run_snap_micro ~quick in
  pp_snap snap;
  let rewarm = run_rewarm_micro ~quick in
  pp_rewarm rewarm;
  let serve = run_serve_micro () in
  pp_serve serve;
  (* the saturation ramp needs a real CLI binary to spawn the sharded
     tier from; without --serve-exe the entry is null in the JSON *)
  let saturation = Option.map (fun exe -> measure_saturation ~exe ~quick) serve_exe in
  Option.iter pp_saturation saturation;
  let synth = if synth_flag then Some (run_synth_micro ()) else None in
  Option.iter pp_synth synth;
  let obs = measure_obs_overhead () in
  pp_obs obs;
  if metrics then Fmt.pr "@.%a@." Metrics.pp ();
  let speedup =
    if micro_only || json = None then None else Some (measure_speedup ~pool ~quick)
  in
  Option.iter
    (fun s ->
      Fmt.pr "@.== Speedup: %s — %.2fs sequential, %.2fs on %d domain%s (%.2fx)%s ==@."
        s.workload s.seq_seconds s.par_seconds s.sp_domains
        (if s.sp_domains = 1 then "" else "s")
        s.speedup
        (if speedup_gated s then ""
         else Printf.sprintf " [gate skipped: %d core%s, %d domain%s]" s.sp_cores
             (if s.sp_cores = 1 then "" else "s")
             s.sp_domains
             (if s.sp_domains = 1 then "" else "s")))
    speedup;
  (match json with
  | None -> ()
  | Some path ->
      write_json ~path ~quick ~domains ~reports ~families ~wallclock:wallclock_rows ~speedup
        ~micro ~ir_micro ~snap ~rewarm ~serve ~saturation ~obs ~synth;
      Fmt.pr "wrote %s@." path);
  Option.iter Pool.shutdown pool;
  let mismatch =
    List.exists (fun r -> not (Experiments.all_agree r)) (reports @ families)
  in
  let speedup_failed = match speedup with Some s -> not (speedup_ok s) | None -> false in
  if not (micro_ok micro) then
    Fmt.pr "== FAIL: a world-session microbenchmark fell below the 10x lazy-vs-eager bar ==@.";
  if not (ir_micro_ok ir_micro) then
    Fmt.pr "== FAIL: a batched-IR microbenchmark fell below the 10x batched-vs-closure bar ==@.";
  if not (snap_ok snap) then
    Fmt.pr "== FAIL: a snapshot load fell below the 10x load-vs-build bar ==@.";
  if speedup_failed then
    Fmt.pr "== FAIL: the parallel run lost to the sequential run on a multi-core box ==@.";
  if not (obs_ok obs) then
    Fmt.pr "== FAIL: the metrics-disabled hot path exceeded the %.0f%% overhead gate ==@."
      ((obs_gate -. 1.0) *. 100.0);
  if mismatch || not (micro_ok micro) || not (ir_micro_ok ir_micro) || not (snap_ok snap)
     || speedup_failed || not (obs_ok obs)
  then exit 1
