test/test_cross_model.ml: Array Int64 List QCheck QCheck_alcotest Vc_graph Vc_lcl Vc_model Vc_rng Volcomp
