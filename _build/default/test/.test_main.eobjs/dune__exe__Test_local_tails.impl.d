test/test_local_tails.ml: Alcotest Array Int64 List Printf Vc_graph Vc_lcl Vc_measure Vc_model Vc_rng Volcomp
