(* Tests for Hybrid-THC(k) (paper Section 6): the Definition 6.1
   checker, the O(log n)-distance strategy, the volume solvers and the
   distance-vs-volume decoupling that motivates the construction. *)

module TL = Vc_graph.Tree_labels
module Graph = Vc_graph.Graph
module Probe = Vc_model.Probe
module Lcl = Vc_lcl.Lcl
module Hy = Volcomp.Hybrid_thc
module H = Volcomp.Hierarchical_thc
module Randomness = Vc_rng.Randomness

let solve_all ?randomness inst (solver : (Hy.node_input, Hy.output) Lcl.solver) =
  let world = Hy.world inst in
  let n = Graph.n inst.Hy.graph in
  let costs = ref [] in
  let out =
    Array.init n (fun v ->
        let r = Probe.run ~world ?randomness ~origin:v solver.Lcl.solve in
        costs := r :: !costs;
        match r.Probe.output with Some o -> o | None -> Alcotest.fail "solver aborted")
  in
  (out, !costs)

let check_valid inst out =
  match
    Lcl.check (Hy.problem ~k:inst.Hy.k) inst.Hy.graph ~input:(Hy.input inst)
      ~output:(fun v -> out.(v))
  with
  | Ok () -> ()
  | Error vs ->
      Alcotest.failf "invalid (%d violations), first: %a" (List.length vs) Lcl.pp_violation
        (List.hd vs)

let rand_for inst seed = Randomness.create ~seed ~n:(Graph.n inst.Hy.graph) ()

(* --- structure ------------------------------------------------------------ *)

let test_uniform_levels () =
  let inst = Hy.uniform_instance ~k:2 ~len:4 ~bt_depth:2 ~seed:1L in
  (* 4 backbone nodes, each hanging a depth-2 BT of 7 nodes *)
  Alcotest.(check int) "n" 32 (Graph.n inst.Hy.graph);
  let levels = Array.map (fun (i : Hy.node_input) -> i.Hy.level) inst.Hy.labels in
  Alcotest.(check int) "level-2 count" 4
    (Array.fold_left (fun acc l -> if l = 2 then acc + 1 else acc) 0 levels);
  Alcotest.(check int) "level-1 count" 28
    (Array.fold_left (fun acc l -> if l = 1 then acc + 1 else acc) 0 levels)

(* --- distance solver -------------------------------------------------------- *)

let test_distance_solver_valid () =
  List.iter
    (fun (k, len, bt_depth) ->
      let inst = Hy.uniform_instance ~k ~len ~bt_depth ~seed:2L in
      let out, _ = solve_all inst (Hy.solve_distance ~k) in
      check_valid inst out)
    [ (2, 4, 2); (2, 6, 3); (3, 3, 2) ]

let test_distance_solver_logarithmic () =
  (* Even with a large BalancedTree below, DIST stays O(log n): the
     level-1 nodes run the O(log n)-distance BalancedTree solver and the
     rest exempt themselves after an O(1) look. *)
  let inst = Hy.uniform_instance ~k:2 ~len:4 ~bt_depth:7 ~seed:3L in
  let n = Graph.n inst.Hy.graph in
  let _, costs = solve_all inst (Hy.solve_distance ~k:2) in
  let logn = Volcomp.Probe_tree.log2_ceil n in
  List.iter
    (fun (r : Hy.output Probe.result) ->
      Alcotest.(check bool)
        (Printf.sprintf "distance %d <= log n + 6 (%d)" r.Probe.distance (logn + 6))
        true
        (r.Probe.distance <= logn + 6))
    costs

let test_distance_solver_on_broken_bt () =
  (* Break one BalancedTree's sibling pointers: its nodes flip to U
     outputs; levels >= 2 may still exempt (U counts as solved). *)
  let inst = Hy.uniform_instance ~k:2 ~len:4 ~bt_depth:3 ~seed:4L in
  let labels = Array.copy inst.Hy.labels in
  (* find a level-1 node with both lateral pointers and cut them *)
  let cut = ref None in
  Array.iteri
    (fun v (i : Hy.node_input) ->
      if !cut = None && i.Hy.level = 1 && i.Hy.left_nbr <> TL.bot && i.Hy.right_nbr <> TL.bot
      then begin
        cut := Some v;
        labels.(v) <- { i with Hy.left_nbr = TL.bot }
      end)
    inst.Hy.labels;
  Alcotest.(check bool) "found a node to break" true (!cut <> None);
  let inst = { inst with Hy.labels } in
  let out, _ = solve_all inst (Hy.solve_distance ~k:2) in
  check_valid inst out;
  Alcotest.(check bool) "some node reports unbalanced" true
    (Array.exists
       (function Hy.Solved { Volcomp.Balanced_tree.verdict = Volcomp.Balanced_tree.Unbal; _ } -> true | _ -> false)
       out)

(* --- volume solvers ---------------------------------------------------------- *)

let test_volume_deterministic_valid () =
  let inst = Hy.uniform_instance ~k:2 ~len:4 ~bt_depth:2 ~seed:5L in
  let out, _ = solve_all inst (Hy.solve_volume_deterministic ~k:2) in
  check_valid inst out

let test_volume_deterministic_hard () =
  let inst, _ = Hy.hard_instance ~k:2 ~target_n:300 ~seed:6L in
  let out, _ = solve_all inst (Hy.solve_volume_deterministic ~k:2) in
  check_valid inst out

let test_volume_waypoint_valid () =
  List.iter
    (fun seed ->
      let inst, _ = Hy.hard_instance ~k:2 ~target_n:300 ~seed in
      let rand = rand_for inst (Int64.add seed 31L) in
      let out, _ = solve_all ~randomness:rand inst (Hy.solve_volume_waypoint ~k:2 ()) in
      check_valid inst out)
    [ 7L; 8L ]

let test_deep_bt_declines () =
  (* In the hard instance, the run's big BalancedTrees exceed the scan
     threshold, so the volume solver declines them unanimously. *)
  let inst, hot = Hy.hard_instance ~k:2 ~target_n:300 ~seed:9L in
  let out, _ = solve_all inst (Hy.solve_volume_deterministic ~k:2) in
  check_valid inst out;
  let a = Volcomp.Hybrid_thc.input inst in
  ignore a;
  ignore hot;
  Alcotest.(check bool) "some level-1 node declines" true
    (Array.exists
       (fun i -> i = Hy.Sym H.Decline)
       (Array.mapi
          (fun v o -> if (Hy.input inst v).Hy.level = 1 then o else Hy.Sym H.Exempt)
          out))

(* --- the distance/volume decoupling (Table 1 row 4) -------------------------- *)

let test_distance_vs_volume_decoupling () =
  (* On the hard instance: the distance solver answers every node within
     O(log n) distance, while any solver that answers from the hot node
     with small volume must be the way-point one; the deterministic
     volume solver pays a constant fraction of n. *)
  let inst, hot = Hy.hard_instance ~k:2 ~target_n:20_000 ~seed:10L in
  let world = Hy.world inst in
  let n = Graph.n inst.Hy.graph in
  let logn = Volcomp.Probe_tree.log2_ceil n in
  let dist_run = Probe.run ~world ~origin:hot (Hy.solve_distance ~k:2).Lcl.solve in
  Alcotest.(check bool) "distance solver: O(log n) distance" true
    (dist_run.Probe.distance <= logn + 6);
  let det = Probe.run ~world ~origin:hot (Hy.solve_volume_deterministic ~k:2).Lcl.solve in
  let rand = rand_for inst 11L in
  let way =
    Probe.run ~world ~randomness:rand ~origin:hot
      ((Hy.solve_volume_waypoint ~k:2 ~c:1.5 ()).Lcl.solve)
  in
  Alcotest.(check bool)
    (Printf.sprintf "deterministic volume %d = Ω(n), n=%d" det.Probe.volume n)
    true
    (det.Probe.volume * 6 >= n);
  Alcotest.(check bool)
    (Printf.sprintf "way-point volume %d well below deterministic %d" way.Probe.volume
       det.Probe.volume)
    true
    (way.Probe.volume * 3 <= det.Probe.volume)

let prop_distance_solver_valid =
  QCheck.Test.make ~name:"hybrid: distance solver valid on uniform instances" ~count:8
    QCheck.(pair (int_range 2 3) (int_range 2 4))
    (fun (k, len) ->
      let inst = Hy.uniform_instance ~k ~len ~bt_depth:2 ~seed:(Int64.of_int ((k * 10) + len)) in
      let out, _ = solve_all inst (Hy.solve_distance ~k) in
      Lcl.is_valid (Hy.problem ~k) inst.Hy.graph ~input:(Hy.input inst) ~output:(fun v -> out.(v)))

let suites =
  [
    ( "hybrid:structure",
      [ Alcotest.test_case "uniform levels" `Quick test_uniform_levels ] );
    ( "hybrid:distance",
      [
        Alcotest.test_case "valid" `Quick test_distance_solver_valid;
        Alcotest.test_case "O(log n) distance" `Quick test_distance_solver_logarithmic;
        Alcotest.test_case "broken BT handled" `Quick test_distance_solver_on_broken_bt;
      ] );
    ( "hybrid:volume",
      [
        Alcotest.test_case "deterministic uniform" `Quick test_volume_deterministic_valid;
        Alcotest.test_case "deterministic hard" `Quick test_volume_deterministic_hard;
        Alcotest.test_case "way-point hard" `Quick test_volume_waypoint_valid;
        Alcotest.test_case "deep BT declines" `Quick test_deep_bt_declines;
        Alcotest.test_case "distance/volume decoupling" `Quick test_distance_vs_volume_decoupling;
      ] );
    ( "hybrid:properties", [ QCheck_alcotest.to_alcotest prop_distance_solver_valid ] );
  ]
