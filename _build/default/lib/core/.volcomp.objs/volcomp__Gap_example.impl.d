lib/core/gap_example.ml: Array Bool Fmt List Vc_graph Vc_lcl Vc_model Vc_rng
