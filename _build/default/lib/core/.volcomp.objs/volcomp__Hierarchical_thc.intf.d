lib/core/hierarchical_thc.mli: Format Leaf_coloring Vc_graph Vc_lcl Vc_model
