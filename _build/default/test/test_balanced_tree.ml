(* Tests for BalancedTree (paper Section 4): compatibility, the checker,
   the O(log n)-distance solver, and the disjointness embedding with
   communication accounting (Proposition 4.9). *)

module TL = Vc_graph.Tree_labels
module Graph = Vc_graph.Graph
module Probe = Vc_model.Probe
module Lcl = Vc_lcl.Lcl
module BT = Volcomp.Balanced_tree
module Disjointness = Vc_commcc.Disjointness
module Comm_counter = Vc_commcc.Comm_counter

let output_t = Alcotest.testable BT.pp_output BT.equal_output

let solve_all inst (solver : (BT.node_input, BT.output) Lcl.solver) =
  let world = BT.world inst in
  let n = Graph.n inst.BT.graph in
  let costs = ref [] in
  let out =
    Array.init n (fun v ->
        let r = Probe.run ~world ~origin:v solver.Lcl.solve in
        costs := r :: !costs;
        match r.Probe.output with Some o -> o | None -> Alcotest.fail "solver aborted")
  in
  (out, !costs)

let check_valid inst out =
  match
    Lcl.check BT.problem inst.BT.graph ~input:(BT.input inst) ~output:(fun v -> out.(v))
  with
  | Ok () -> ()
  | Error vs -> Alcotest.failf "invalid: %a" Fmt.(list ~sep:comma Lcl.pp_violation) vs

(* --- compatibility ------------------------------------------------------ *)

let test_balanced_instance_fully_compatible () =
  let inst = BT.balanced_instance ~depth:4 in
  Graph.iter_nodes inst.BT.graph (fun v ->
      Alcotest.(check bool) (Printf.sprintf "node %d compatible" v) true (BT.compatible inst v))

let test_broken_pair_incompatibility_localized () =
  let depth = 4 in
  let break = 3 in
  let inst = BT.broken_pair_instance ~depth ~break in
  let u, w = BT.leaf_pair inst break in
  let parent = (u - 1) / 2 in
  (* Exactly the pair's parent fails the siblings condition. *)
  Alcotest.(check bool) "parent incompatible" false (BT.compatible inst parent);
  Graph.iter_nodes inst.BT.graph (fun v ->
      if v <> parent then
        Alcotest.(check bool)
          (Printf.sprintf "node %d still compatible" v)
          true (BT.compatible inst v));
  ignore w

let test_missing_lateral_breaks_sibling_parents () =
  (* Cutting an internal-row lateral link breaks persistence at the
     neighbors' parents (or agreement at the endpoints). *)
  let inst = BT.balanced_instance ~depth:3 in
  (* erase the lateral pointers between internal row-2 nodes 3 and 4 *)
  let labels = Array.copy inst.BT.labels in
  labels.(3) <- { (labels.(3)) with BT.right_nbr = TL.bot };
  labels.(4) <- { (labels.(4)) with BT.left_nbr = TL.bot };
  let inst' = { inst with BT.labels } in
  Alcotest.(check bool) "some node incompatible" true
    (Graph.fold_nodes inst'.BT.graph ~init:false ~f:(fun acc v ->
         acc || not (BT.compatible inst' v)))

(* --- checker ------------------------------------------------------------- *)

let test_checker_accepts_all_balanced () =
  let inst = BT.balanced_instance ~depth:3 in
  let out = Array.map (fun (i : BT.node_input) -> { BT.verdict = BT.Bal; port = i.BT.parent }) inst.BT.labels in
  check_valid inst out

let test_checker_rejects_unfounded_unbalanced () =
  let inst = BT.balanced_instance ~depth:3 in
  let out = Array.map (fun (i : BT.node_input) -> { BT.verdict = BT.Bal; port = i.BT.parent }) inst.BT.labels in
  out.(0) <- { BT.verdict = BT.Unbal; port = TL.bot };
  Alcotest.(check bool) "rejected" false
    (Lcl.is_valid BT.problem inst.BT.graph ~input:(BT.input inst) ~output:(fun v -> out.(v)))

(* --- solver -------------------------------------------------------------- *)

let test_solver_on_balanced () =
  let inst = BT.balanced_instance ~depth:5 in
  let out, _ = solve_all inst BT.solve_distance in
  check_valid inst out;
  Alcotest.check output_t "root says balanced" { BT.verdict = BT.Bal; port = TL.bot } out.(0)

let test_solver_on_broken () =
  let depth = 5 in
  List.iter
    (fun break ->
      let inst = BT.broken_pair_instance ~depth ~break in
      let out, _ = solve_all inst BT.solve_distance in
      check_valid inst out;
      Alcotest.(check bool) "root says unbalanced" true
        (match out.(0).BT.verdict with BT.Unbal -> true | BT.Bal -> false))
    [ 0; 5; 15 ]

let test_solver_distance_logarithmic () =
  let inst = BT.broken_pair_instance ~depth:7 ~break:17 in
  let n = Graph.n inst.BT.graph in
  let _, costs = solve_all inst BT.solve_distance in
  let logn = Volcomp.Probe_tree.log2_ceil n in
  List.iter
    (fun (r : BT.output Probe.result) ->
      Alcotest.(check bool) "distance O(log n)" true (r.Probe.distance <= logn + 4))
    costs

let test_unbalanced_chain_points_to_defect () =
  (* Following the output ports from the root must reach the
     incompatible node. *)
  let depth = 5 in
  let break = 9 in
  let inst = BT.broken_pair_instance ~depth ~break in
  let u, _ = BT.leaf_pair inst break in
  let defect = (u - 1) / 2 in
  let out, _ = solve_all inst BT.solve_distance in
  let rec chase v steps =
    if steps > Graph.n inst.BT.graph then Alcotest.fail "output chain does not terminate"
    else
      match out.(v).BT.verdict with
      | BT.Bal -> Alcotest.fail "chain reached a balanced node before the defect"
      | BT.Unbal ->
          if out.(v).BT.port = TL.bot then v
          else chase (Graph.neighbor inst.BT.graph v out.(v).BT.port) (steps + 1)
  in
  Alcotest.(check int) "chain ends at the defect" defect (chase 0 0)

(* --- disjointness embedding (Proposition 4.9) ---------------------------- *)

let test_embedding_reflects_disjointness () =
  List.iter
    (fun (intersecting, seed) ->
      let disj = Disjointness.random_promise ~n:16 ~intersecting ~seed in
      let inst = BT.embed_disjointness disj in
      let out, _ = solve_all inst BT.solve_distance in
      check_valid inst out;
      let root_balanced =
        match out.(0).BT.verdict with BT.Bal -> true | BT.Unbal -> false
      in
      Alcotest.(check bool) "root output = disj(x,y)" (Disjointness.eval disj) root_balanced)
    [ (true, 1L); (true, 2L); (false, 3L); (false, 4L) ]

let test_embedding_communication_linear () =
  (* Solving from the root on a disjoint instance requires inspecting
     every leaf pair: the Alice/Bob simulation must exchange 2 bits per
     pair, i.e. 2N bits total at least. *)
  let n = 64 in
  let disj = Disjointness.random_promise ~n ~intersecting:false ~seed:9L in
  let inst = BT.embed_disjointness disj in
  let counter = Comm_counter.create () in
  let world = BT.comm_world inst ~counter in
  let r = Probe.run ~world ~origin:0 BT.solve_distance.Lcl.solve in
  (match r.Probe.output with
  | Some o ->
      Alcotest.(check bool) "root balanced" true
        (match o.BT.verdict with BT.Bal -> true | BT.Unbal -> false)
  | None -> Alcotest.fail "aborted");
  Alcotest.(check bool)
    (Printf.sprintf "bits %d >= 2N = %d" (Comm_counter.bits counter) (2 * n))
    true
    (Comm_counter.bits counter >= 2 * n);
  Alcotest.(check int) "per-query cost B = 2" 2 (Comm_counter.max_bits_per_query counter);
  (* Theorem 2.9: queries >= R(disj)/B; with R(disj) >= N the implied
     bound is N/2, and the observed query count must respect it. *)
  let implied = Comm_counter.implied_query_lower_bound counter ~comm_lower_bound:n in
  Alcotest.(check bool) "observed queries >= implied bound" true (r.Probe.queries >= implied)

let test_embedding_volume_linear () =
  (* The measured volume of the solver from the root grows linearly in n
     on disjoint embeddings — the shape of Theorem 4.5's Θ(n). *)
  let vol_for n =
    let disj = Disjointness.random_promise ~n ~intersecting:false ~seed:11L in
    let inst = BT.embed_disjointness disj in
    let r = Probe.run ~world:(BT.world inst) ~origin:0 BT.solve_distance.Lcl.solve in
    (r.Probe.volume, Graph.n inst.BT.graph)
  in
  let v1, n1 = vol_for 32 in
  let v2, n2 = vol_for 128 in
  let ratio = float_of_int v2 /. float_of_int v1 in
  let nratio = float_of_int n2 /. float_of_int n1 in
  Alcotest.(check bool)
    (Printf.sprintf "volume scales linearly (%.2f vs %.2f)" ratio nratio)
    true
    (ratio > 0.5 *. nratio)

let prop_embedding_valid_any_bits =
  QCheck.Test.make ~name:"balancedtree: embedding solvable and valid for arbitrary bit vectors"
    ~count:12
    QCheck.(pair (list_of_size (Gen.return 8) bool) (list_of_size (Gen.return 8) bool))
    (fun (x, y) ->
      let disj =
        Disjointness.create ~x:(Array.of_list x) ~y:(Array.of_list y)
      in
      let inst = BT.embed_disjointness disj in
      let out, _ = solve_all inst BT.solve_distance in
      Lcl.is_valid BT.problem inst.BT.graph ~input:(BT.input inst) ~output:(fun v -> out.(v)))

let suites =
  [
    ( "balancedtree:compatibility",
      [
        Alcotest.test_case "balanced fully compatible" `Quick test_balanced_instance_fully_compatible;
        Alcotest.test_case "broken pair localized" `Quick test_broken_pair_incompatibility_localized;
        Alcotest.test_case "missing lateral detected" `Quick test_missing_lateral_breaks_sibling_parents;
      ] );
    ( "balancedtree:checker",
      [
        Alcotest.test_case "accepts all-balanced" `Quick test_checker_accepts_all_balanced;
        Alcotest.test_case "rejects unfounded U" `Quick test_checker_rejects_unfounded_unbalanced;
      ] );
    ( "balancedtree:solver",
      [
        Alcotest.test_case "balanced instance" `Quick test_solver_on_balanced;
        Alcotest.test_case "broken instances" `Quick test_solver_on_broken;
        Alcotest.test_case "distance O(log n)" `Quick test_solver_distance_logarithmic;
        Alcotest.test_case "chain points to defect" `Quick test_unbalanced_chain_points_to_defect;
      ] );
    ( "balancedtree:disjointness",
      [
        Alcotest.test_case "embedding reflects disj" `Quick test_embedding_reflects_disjointness;
        Alcotest.test_case "communication linear" `Quick test_embedding_communication_linear;
        Alcotest.test_case "volume linear" `Quick test_embedding_volume_linear;
        QCheck_alcotest.to_alcotest prop_embedding_valid_any_bits;
      ] );
  ]
