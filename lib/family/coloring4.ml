module Graph = Vc_graph.Graph
module World = Vc_model.World
module Lcl = Vc_lcl.Lcl

type output = int

let palette = 4

let problem : (unit, output) Lcl.t =
  let valid_at g ~input:_ ~output v =
    let c = output v in
    if c < 0 || c >= palette then
      Error (Fmt.str "colour %d outside the %d-colour palette" c palette)
    else
      Graph.fold_neighbors g v ~init:(Ok ()) ~f:(fun acc w ->
          match acc with
          | Error _ -> acc
          | Ok () ->
              if output w = c then Error (Fmt.str "neighbor %d shares colour %d" w c)
              else Ok ())
  in
  { Lcl.name = "Coloring4"; radius = 1; valid_at }

let world g = World.of_graph g ~input:(fun _ -> ())

(* Derive torus coordinates by replaying the normal-form ports (1 = +x,
   2 = -x, 3 = +y, 4 = -y) along a BFS from the minimum-id node, then
   colour by coordinate parity.  Any two derivations of a node's
   coordinates differ by multiples of the (even) side lengths, so the
   parities — and hence the colouring — are well-defined and proper
   across the wraparound. *)
let solve_torus_fn ctx =
  let c = Global.gather ctx in
  let coords = Hashtbl.create 64 in
  Hashtbl.replace coords c.Global.root (0, 0);
  let queue = Queue.create () in
  Queue.add c.Global.root queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    let x, y = Hashtbl.find coords v in
    List.iter
      (fun (p, w) ->
        if not (Hashtbl.mem coords w) then begin
          let cw =
            match p with
            | 1 -> (x + 1, y)
            | 2 -> (x - 1, y)
            | 3 -> (x, y + 1)
            | _ -> (x, y - 1)
          in
          Hashtbl.replace coords w cw;
          Queue.add w queue
        end)
      (c.Global.adj v)
  done;
  let x, y = Hashtbl.find coords c.Global.origin in
  let parity z = ((z mod 2) + 2) mod 2 in
  (2 * parity x) + parity y

let solve_torus = Lcl.solver ~name:"torus parity colouring" ~randomized:false solve_torus_fn

(* Greedy mex in ascending-id order: at most [max_degree + 1] colours,
   so within the palette on families of maximum degree 3. *)
let solve_greedy_fn ctx =
  let c = Global.gather ctx in
  let colour = Hashtbl.create 64 in
  List.iter
    (fun v ->
      let used =
        List.filter_map (fun (_, w) -> Hashtbl.find_opt colour w) (c.Global.adj v)
      in
      let rec mex k = if List.mem k used then mex (k + 1) else k in
      Hashtbl.replace colour v (mex 0))
    (Global.by_id c c.Global.members);
  Hashtbl.find colour c.Global.origin

let solve_greedy = Lcl.solver ~name:"global greedy colouring" ~randomized:false solve_greedy_fn
