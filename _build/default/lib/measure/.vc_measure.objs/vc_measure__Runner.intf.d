lib/measure/runner.mli: Format Vc_graph Vc_lcl Vc_model Vc_rng
