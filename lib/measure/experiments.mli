(** Reproduction experiments: one entry per table/figure of the paper.

    Each experiment measures cost curves over a geometric ladder of
    instance sizes and classifies them with {!Fit}.  The reproduction
    claim is about {e shape}: the fitted growth class must be the class
    the paper states (Table 1, Theorems 3.6, 4.5, 5.9, 6.3, 6.5), not
    that absolute constants match.  [quick] shrinks the ladders for CI
    use; the bench executable runs the full ladders, and [deep] extends
    each ladder one or two rungs beyond the standard profile (multi-
    million-node instances) for long calibration runs — affordable since
    lazy world sessions made probe cost Θ(ball·Δ), leaving instance
    construction as the dominant expense.

    [?pool] distributes each ladder's independent rows — and, within a
    row, the origin fan-out of {!Runner.measure} — over worker domains.
    Every run is seed-deterministic and {!Runner.merge} is exact, so a
    report is byte-for-byte identical at any pool width. *)

type measurement = {
  quantity : string;  (** e.g. "R-VOL" *)
  paper_claim : string;  (** the paper's Θ statement, verbatim *)
  expected : Fit.model list;
      (** acceptable fitted classes; the head is the nominal one
          (polylog-suppressed Θ̃ rows accept the adjacent class) *)
  points : (int * float) list;  (** (n, measured cost) *)
}

val fitted : measurement -> Fit.model

val agrees : measurement -> bool
(** The fitted class is among the expected ones. *)

type report = {
  title : string;
  measurements : measurement list;
  notes : string list;
}

val pp_report : Format.formatter -> report -> unit

val all_agree : report -> bool

(** {1 Table 1 (one report per row)} *)

val table1_leafcoloring : ?pool:Vc_exec.Pool.t -> ?deep:bool -> quick:bool -> unit -> report
val table1_balancedtree : ?pool:Vc_exec.Pool.t -> ?deep:bool -> quick:bool -> unit -> report

val table1_hierarchical_thc :
  ?pool:Vc_exec.Pool.t -> ?deep:bool -> quick:bool -> k:int -> unit -> report

val table1_hybrid_thc : ?pool:Vc_exec.Pool.t -> ?deep:bool -> quick:bool -> unit -> report
val table1_hh_thc : ?pool:Vc_exec.Pool.t -> ?deep:bool -> quick:bool -> unit -> report

(** {1 Figures} *)

val figure12_classes : ?pool:Vc_exec.Pool.t -> ?deep:bool -> quick:bool -> unit -> report
(** Figures 1–2: the class-A and class-B reference problems measured in
    both distance and volume (classes C/D are covered by Table 1). *)

val figure3_lines : quick:bool -> report list -> report
(** Figure 3: renders the volume↔distance line of each Table 1 row from
    the already-computed reports. *)

val figure8_adversary : ?pool:Vc_exec.Pool.t -> ?deep:bool -> quick:bool -> unit -> report
(** Proposition 3.13 / Figure 8 flavor: interactive adversary duels —
    the honest solver pays ≥ n/3 volume (linear series); a hasty solver
    is fooled outright. *)

val congest_gap : ?pool:Vc_exec.Pool.t -> ?deep:bool -> quick:bool -> unit -> report
(** Observations 7.4–7.5 and Example 7.6: query volume O(log n) vs
    CONGEST rounds Θ(n/B). *)

val congest_balancedtree : ?pool:Vc_exec.Pool.t -> ?deep:bool -> quick:bool -> unit -> report
(** Observation 7.4's other direction: BalancedTree (volume Θ(n)) solved
    in O(log n) CONGEST rounds by the flooding protocol of
    {!Volcomp.Balanced_tree_congest} — Lemma 2.5's Δ^Θ(T) is tight. *)

(** {1 Graph families (Question 7.3 playground)} *)

val family_torus : ?pool:Vc_exec.Pool.t -> ?deep:bool -> quick:bool -> unit -> report
(** 2-d torus grid: 4-colouring and maximal matching ladders — the
    whole-component canonical solvers pay VOL Θ(n) at DIST Θ(√n)
    ("seeing far"). *)

val family_regular : ?pool:Vc_exec.Pool.t -> ?deep:bool -> quick:bool -> unit -> report
(** Random 4-regular graphs and shift expanders: MIS and — Question
    7.3's — sinkless-orientation ladders; VOL Θ(n) at DIST Θ(log n)
    ("seeing wide"). *)

val family_ladders : ?pool:Vc_exec.Pool.t -> ?deep:bool -> quick:bool -> unit -> report list
(** Both family reports, in presentation order — the list the bench
    harness embeds as its [families] JSON section. *)

(** {1 Ablations (DESIGN.md design choices)} *)

val ablation_waypoint_rate : ?pool:Vc_exec.Pool.t -> quick:bool -> unit -> report
(** Sweep the way-point constant [c]: volume against validity failures
    (Lemmas 5.16/5.18 trade-off). *)

val ablation_walk_flip : quick:bool -> unit -> report
(** RWtoLeaf with and without the revisit-flip rule on cycle-bearing
    instances: failure rates over seeds (Algorithm 1 lines 4–5). *)

val all : ?pool:Vc_exec.Pool.t -> ?deep:bool -> quick:bool -> unit -> report list
(** Every experiment, in presentation order (Figure 3 last, derived
    from the Table 1 reports). *)
