test/test_model.ml: Alcotest Array List Option Vc_graph Vc_lcl Vc_model Vc_rng
