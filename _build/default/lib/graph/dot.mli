(** Graphviz DOT export, for inspecting instances by eye.

    Nodes are labeled with their identifiers (and an optional per-node
    annotation, e.g. an input color or a solver output); edges carry
    their port numbers on both ends so that labelings can be read off
    the picture. *)

val to_string :
  ?name:string ->
  ?node_label:(Graph.node -> string) ->
  ?highlight:(Graph.node -> bool) ->
  Graph.t ->
  string
(** Render as an undirected [graph]; [node_label]'s text is appended to
    the identifier; highlighted nodes are drawn filled. *)

val to_file :
  path:string ->
  ?name:string ->
  ?node_label:(Graph.node -> string) ->
  ?highlight:(Graph.node -> bool) ->
  Graph.t ->
  unit
