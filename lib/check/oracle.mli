(** The differential conformance oracle.

    For every registry entry (or a chosen subset) the oracle builds the
    entry's trials and runs the conformance probes:

    + every registered solver solves every instance; the assembled
      output must pass the problem's own checker, and the cost envelope
      must hold — [runs = n], no aborts, [VOL >= DIST >= 0], [VOL >= 1],
      and deterministic solvers consume zero random bits;
    + {!Vc_measure.Runner} statistics are bit-identical across pool
      widths 1, 2 and 4 (merge consistency);
    + cross-model executions (CONGEST protocols) produce complete,
      valid outputs;
    + [count] mutation-fuzzing rounds, round-robin over the entry's
      trials: every rejection must be anchored within the checkability
      radius of the mutation site, and at least one mutant per problem
      must be rejected overall;
    + record/replay determinism: every solver's probe transcript
      ({!Vc_obs.Trace}) must survive a JSONL round-trip and re-drive the
      run bit-identically;
    + IR vs. closure: entries with an IR port must reproduce the
      reference closure solver bit for bit — outputs and cost envelopes
      — under both {!Vc_ir.Exec} executors, budgeted and not.

    Everything is a deterministic function of [seed]; a failing run is
    reproducible with [volcomp check --seed N], and the CLI writes the
    failing problem's reference transcript for offline {!replay_trace}. *)

val probe_names : string list
(** The probe identifiers accepted by {!run}'s [?probes]:
    ["solvers"; "merge"; "cross"; "lazy"; "ir"; "mutate"; "replay";
    "serve"; "shard"; "snap"; "synth"]. *)

val run :
  ?pool:Vc_exec.Pool.t ->
  ?entries:Registry.entry list ->
  ?probes:string list ->
  ?serve:(Registry.entry -> size:int -> seed:int64 -> (unit, string) result) ->
  ?shard:(Registry.entry -> size:int -> seed:int64 -> (unit, string) result) ->
  ?synth:(Registry.entry -> (unit, string) result option) ->
  seed:int64 ->
  count:int ->
  quick:bool ->
  unit ->
  Report.t
(** [run ~seed ~count ~quick ()] checks [entries] (default:
    {!Registry.all}).  [quick] selects each entry's small sizes — the
    [dune runtest] profile.  [?pool] parallelizes the per-solver runs;
    the report's verdicts do not depend on it.

    [?probes] restricts the run to the named probes (default: all of
    {!probe_names}; case-insensitive).  Skipped probes keep their
    vacuous defaults and are listed in
    {!Report.problem_report.p_probes_skipped}; skipping ["mutate"]
    waives the at-least-one-rejection requirement.  Raises
    [Invalid_argument] on an unknown probe name.

    [?serve] is the seventh probe, injected from above because the
    serving layer depends on this library: given an entry and one
    trial's (size, seed), it must round-trip the trial's queries through
    the [lib/serve] wire codec and in-process handler and verify the
    payloads are byte-identical to direct computation ([Error] describes
    the first divergence).  When absent, reports carry
    [p_serve = None].

    [?shard] is the ninth probe, likewise injected from above: given an
    entry and one trial's (size, seed) it must drive a fixed corpus
    through a real multi-process sharded tier and verify the replies are
    byte-identical to a single-process server's.  It runs on the first
    (smallest) trial only — each invocation spawns a supervisor and its
    workers.  When absent, reports carry [p_shard = None].

    [?synth] is the eleventh probe, injected from above because the
    synthesis subsystem depends on this library: given an entry it
    returns [None] when the problem has no synthesis universe, else the
    outcome of re-deriving the problem's volume classification with the
    SAT pipeline — a witness at the known-feasible budget that passes an
    independent recheck, a DRUP-certified UNSAT below it, and (where a
    proven adversary bound exists) a live re-derivation of that bound
    strictly above the UNSAT budget.  When absent, reports carry
    [p_synth = None]. *)

val find_entry :
  ?entries:Registry.entry list -> string -> (Registry.entry, string) result
(** Case-insensitive lookup of a registry entry by problem name. *)

val record_trace :
  ?entries:Registry.entry list ->
  seed:int64 ->
  quick:bool ->
  problem:string ->
  origin:int ->
  path:string ->
  unit ->
  (unit, string) result
(** Build the named problem's first trial (at its first quick or full
    size, with the same per-trial seed derivation as {!run}) and record
    the reference solver's run from [origin] as a JSONL transcript at
    [path].  The header pins down (problem, size, trial seed, origin), so
    the file alone suffices to replay. *)

val replay_trace :
  ?entries:Registry.entry list -> path:string -> unit -> (unit, string) result
(** Load a transcript written by {!record_trace}, deterministically
    rebuild its instance from the header, and re-drive the reference
    solver against the recorded events.  [Error] pinpoints the first
    divergence. *)
