examples/quickstart.mli:
