lib/model/world.mli: Vc_graph View
