lib/model/view.mli: Format Vc_graph
