(** The volume-vs-CONGEST gap of paper Example 7.6.

    Two complete binary trees of depth [k] are joined by an edge between
    their roots.  The leaves of the V-tree hold input bits; every leaf
    of the U-tree must output the bit held by the V-leaf with the same
    left-to-right position.

    In the query model each U-leaf climbs to its root, crosses, and
    descends the mirrored path: volume O(log n).  In CONGEST, all
    [2^k = Θ(n)] bits must cross the single root edge, so any algorithm
    needs Ω(n/B) rounds with [B]-bit messages; {!congest_route} is a
    pipelined router that attains O(n/B + log n) rounds, giving the
    matching measured upper bound.  This problem is {e not} an LCL (its
    checkability radius grows with [n]); the paper uses it to show the
    ∆^Θ(D) CONGEST-vs-volume gap is attainable for general problems
    (Observation 7.5). *)

module Graph = Vc_graph.Graph

type side = U | V

type node_input = {
  side : side;
  index : int;  (** heap index within the node's own tree *)
  depth : int;  (** tree depth [k], same for every node *)
  bit : bool option;  (** [Some b] exactly at V-leaves *)
}

type instance = {
  graph : Graph.t;
  inputs : node_input array;
  bits : bool array;  (** the V-leaf bits, left to right *)
}

val make : depth:int -> seed:int64 -> instance
(** Random bits; [n = 2·(2^{depth+1} - 1)] nodes. *)

val input : instance -> Graph.node -> node_input
val world : instance -> node_input Vc_model.World.t

val problem : (node_input, bool option) Vc_lcl.Lcl.t
(** U-leaf [i] must output [Some bits.(i)]; everyone else [None]. *)

val solve : (node_input, bool option) Vc_lcl.Lcl.solver
(** The O(log n)-volume climb-cross-descend query algorithm. *)

val solvers : (node_input, bool option) Vc_lcl.Lcl.solver list
(** All conformance-tested solvers of the problem ([[solve]]). *)

type router_state

val congest_route :
  bandwidth:int ->
  (node_input, (int * bool) list, router_state, bool option) Vc_model.Congest.algorithm
(** Pipelined CONGEST routing under the given per-edge bandwidth: V-leaf
    bits flow up the V-tree, across the root edge, and down the U-tree,
    at most [bandwidth] bits per edge per round. *)

val run_congest : instance -> bandwidth:int -> bool option Vc_model.Congest.result
(** Run {!congest_route} and return outputs plus the measured round
    count (expected shape: Θ(n/bandwidth + log n)). *)
