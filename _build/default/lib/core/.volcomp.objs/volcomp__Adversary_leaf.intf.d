lib/core/adversary_leaf.mli: Format Leaf_coloring Vc_graph Vc_lcl Vc_model
