type regime = Private | Public | Secret

type t = {
  regime : regime;
  seed : int64;
  n : int;
  streams : Stream.t option array; (* lazily created; Public uses slot 0 *)
}

let create ?(regime = Private) ~seed ~n () =
  if n <= 0 then invalid_arg "Randomness.create: n must be positive";
  { regime; seed; n; streams = Array.make n None }

let regime t = t.regime

let n t = t.n

let slot t v =
  match t.regime with
  | Public -> 0
  | Private | Secret ->
      if v < 0 || v >= t.n then invalid_arg "Randomness.stream: node out of range";
      v

let stream t v =
  let i = slot t v in
  match t.streams.(i) with
  | Some s -> s
  | None ->
      let root = Splitmix.create t.seed in
      let s = Stream.create (Splitmix.split root ~key:(Int64.of_int i)) in
      t.streams.(i) <- Some s;
      s

let readable t ~origin ~node =
  match t.regime with
  | Private | Public -> true
  | Secret -> origin = node

let total_bits_consumed t =
  Array.fold_left
    (fun acc s -> match s with None -> acc | Some s -> acc + Stream.bits_consumed s)
    0 t.streams

let reseed t s = create ~regime:t.regime ~seed:s ~n:t.n ()

let fork t = create ~regime:t.regime ~seed:t.seed ~n:t.n ()
