(* Benchmark harness.

   Two layers, as promised in DESIGN.md:

   1. the reproduction experiments (vc_measure.Experiments): one report
      per paper table/figure, printing measured cost curves and their
      fitted growth classes against the paper's Θ claims;

   2. Bechamel wall-clock microbenchmarks: one Test.make per paper
      artifact, timing a representative solver execution.

   `dune exec bench/main.exe` runs both; pass `--quick` (or set
   VOLCOMP_QUICK=1) for the shortened ladders, `--no-wallclock` to skip
   the Bechamel pass. *)

open Bechamel

module Graph = Vc_graph.Graph
module Builder = Vc_graph.Builder
module TL = Vc_graph.Tree_labels
module Probe = Vc_model.Probe
module Lcl = Vc_lcl.Lcl
module Randomness = Vc_rng.Randomness
module LC = Volcomp.Leaf_coloring
module BT = Volcomp.Balanced_tree
module H = Volcomp.Hierarchical_thc
module Hy = Volcomp.Hybrid_thc
module HH = Volcomp.Hh_thc
module Adv = Volcomp.Adversary_leaf
module CC = Volcomp.Cycle_coloring
module Gap = Volcomp.Gap_example
module Disjointness = Vc_commcc.Disjointness
module Experiments = Vc_measure.Experiments

let run_solver ~world ?randomness ~origin (solver : (_, _) Lcl.solver) () =
  let r = Probe.run ~world ?randomness ~origin solver.Lcl.solve in
  assert (not r.Probe.aborted)

(* One wall-clock microbenchmark per paper artifact. *)
let wallclock_tests () =
  let t1_leaf =
    let inst = LC.hard_distance_instance ~depth:10 ~leaf_color:TL.Blue in
    let world = LC.world inst in
    let rand = Randomness.create ~seed:1L ~n:(Graph.n inst.LC.graph) () in
    Test.make ~name:"table1/leafcoloring/rwtoleaf"
      (Staged.stage (run_solver ~world ~randomness:rand ~origin:0 LC.solve_random_walk))
  in
  let t1_bt =
    let disj = Disjointness.random_promise ~n:64 ~intersecting:false ~seed:2L in
    let inst = BT.embed_disjointness disj in
    let world = BT.world inst in
    Test.make ~name:"table1/balancedtree/descend"
      (Staged.stage (run_solver ~world ~origin:0 BT.solve_distance))
  in
  let t1_hthc2 =
    let inst, hot = H.hard_instance ~k:2 ~target_n:8_000 ~seed:3L in
    let world = H.world inst in
    let rand = Randomness.create ~seed:4L ~n:(Graph.n (H.graph inst)) () in
    Test.make ~name:"table1/hthc2/waypoint"
      (Staged.stage (run_solver ~world ~randomness:rand ~origin:hot (H.solve_waypoint ~k:2 ())))
  in
  let t1_hthc3 =
    let inst, hot = H.hard_instance ~k:3 ~target_n:8_000 ~seed:5L in
    let world = H.world inst in
    Test.make ~name:"table1/hthc3/deterministic"
      (Staged.stage (run_solver ~world ~origin:hot (H.solve_deterministic ~k:3)))
  in
  let t1_hybrid =
    let inst, hot = Hy.hard_instance ~k:2 ~target_n:8_000 ~seed:6L in
    let world = Hy.world inst in
    Test.make ~name:"table1/hybrid/distance"
      (Staged.stage (run_solver ~world ~origin:hot (Hy.solve_distance ~k:2)))
  in
  let t1_hh =
    let inst = HH.uniform_instance ~k:2 ~l:3 ~size_hint:4_000 ~seed:7L in
    let world = HH.world inst in
    Test.make ~name:"table1/hhthc/dispatch"
      (Staged.stage (run_solver ~world ~origin:0 (HH.solve_distance ~k:2 ~l:3)))
  in
  let fig12 =
    let g = Builder.cycle 65536 in
    let world = CC.world g in
    Test.make ~name:"fig1-2/cycle-coloring"
      (Staged.stage (run_solver ~world ~origin:0 CC.solve))
  in
  let fig8 =
    Test.make ~name:"fig8/adversary-duel"
      (Staged.stage (fun () -> ignore (Adv.duel ~claimed_n:1200 LC.solve_distance)))
  in
  let ex76_query =
    let inst = Gap.make ~depth:9 ~seed:8L in
    let world = Gap.world inst in
    let leaf = (Graph.n inst.Gap.graph / 2) - 1 in
    Test.make ~name:"ex7.6/query-climb"
      (Staged.stage (run_solver ~world ~origin:leaf Gap.solve))
  in
  let ex76_congest =
    let inst = Gap.make ~depth:6 ~seed:9L in
    Test.make ~name:"ex7.6/congest-route"
      (Staged.stage (fun () -> ignore (Gap.run_congest inst ~bandwidth:64)))
  in
  let obs74_congest_bt =
    let inst = BT.broken_pair_instance ~depth:7 ~break:31 in
    Test.make ~name:"obs7.4/balancedtree-congest"
      (Staged.stage (fun () -> ignore (Volcomp.Balanced_tree_congest.run inst ())))
  in
  let rem23_local =
    let inst = LC.random_instance ~n:201 ~seed:10L in
    Test.make ~name:"rem2.3/local-gather"
      (Staged.stage (fun () ->
           ignore
             (Vc_model.Local.gather ~graph:inst.LC.graph ~input:(LC.input inst) ~rounds:6)))
  in
  let q73_sinkless =
    let g = Volcomp.Sinkless.random_cubic ~n:120 ~seed:11L in
    let world = Volcomp.Sinkless.world g in
    Test.make ~name:"q7.3/sinkless-global"
      (Staged.stage (run_solver ~world ~origin:0 Volcomp.Sinkless.solve_global))
  in
  Test.make_grouped ~name:"volcomp"
    [
      t1_leaf; t1_bt; t1_hthc2; t1_hthc3; t1_hybrid; t1_hh; fig12; fig8; ex76_query;
      ex76_congest; obs74_congest_bt; rem23_local; q73_sinkless;
    ]

let run_wallclock () =
  let tests = wallclock_tests () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Bechamel.Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (est :: _) -> est
          | Some [] | None -> nan
        in
        (name, ns) :: acc)
      results []
  in
  Fmt.pr "@.== Wall-clock microbenchmarks (one per paper artifact) ==@.";
  List.iter
    (fun (name, ns) -> Fmt.pr "  %-40s %12.0f ns/run@." name ns)
    (List.sort compare rows)

let () =
  let args = Array.to_list Sys.argv in
  let quick = List.mem "--quick" args || Sys.getenv_opt "VOLCOMP_QUICK" = Some "1" in
  let wallclock = not (List.mem "--no-wallclock" args) in
  Fmt.pr "volcomp benchmark harness — reproducing every table and figure of@.";
  Fmt.pr "\"Seeing Far vs. Seeing Wide\" (Rosenbaum & Suomela, PODC 2020)%s@.@."
    (if quick then " [quick ladders]" else "");
  let reports = Experiments.all ~quick in
  List.iter (fun r -> Fmt.pr "%a@." Experiments.pp_report r) reports;
  let agreements = List.filter Experiments.all_agree reports in
  Fmt.pr "== Summary: %d/%d reports have every fitted class within the paper's claim ==@."
    (List.length agreements) (List.length reports);
  if wallclock then run_wallclock ()
