lib/measure/runner.ml: Fmt Hashtbl List Vc_graph Vc_lcl Vc_model Vc_rng
