lib/graph/graph.mli: Format Vc_rng
